// The §2 message-drop server: how over-relaxed replay deceives the
// developer. The server's true defect is a race on the receive buffer, but
// the same "messages lost" symptom can arise from network congestion —
// which is outside the developer's control. A failure-deterministic
// replayer only promises the same failure, so it may synthesize the
// congestion explanation and the real bug survives.
package main

import (
	"context"
	"fmt"
	"log"

	"debugdet"
)

func main() {
	ctx := context.Background()
	eng := debugdet.New()
	s, err := eng.ByName("msgdrop")
	if err != nil {
		log.Fatal(err)
	}

	// The original production run: the race loses messages, the network
	// behaves.
	origEv, err := eng.Evaluate(ctx, s, debugdet.Failure, debugdet.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original failing run’s root causes: ", origEv.Fidelity.OrigCauses)
	fmt.Println("failure-deterministic replay found:  ", origEv.Fidelity.ReplayCauses)
	fmt.Printf("debugging fidelity: DF = %.2f (two possible root causes)\n\n", origEv.Utility.DF)

	// Debug determinism on the same run: the forced thread schedule pins
	// the racy interleaving; the recorded control inputs pin the
	// network's behaviour. The race is reproduced, not guessed.
	rcseEv, err := eng.Evaluate(ctx, s, debugdet.DebugRCSE, debugdet.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("debug-deterministic replay found:    ", rcseEv.Fidelity.ReplayCauses)
	fmt.Printf("debugging fidelity: DF = %.2f at %.2fx recording overhead (vs %.2fx for value determinism)\n",
		rcseEv.Utility.DF, rcseEv.Overhead, valueOverhead(ctx, eng, s))
}

func valueOverhead(ctx context.Context, eng *debugdet.Engine, s *debugdet.Scenario) float64 {
	ev, err := eng.Evaluate(ctx, s, debugdet.Value, debugdet.Options{})
	if err != nil {
		return 0
	}
	return ev.Overhead
}

// The paper's §4 case study, end to end: the Hypertable-like store loses
// rows to a commit-vs-migration race, and the three determinism models the
// paper compares — value determinism, failure determinism, and debug
// determinism via RCSE — are evaluated on the same production run. The
// output is the data behind the paper's Figure 2: RCSE escapes the
// relaxation trade-off with near-failure-determinism overhead and
// value-determinism fidelity.
package main

import (
	"context"
	"fmt"
	"log"

	"debugdet"
)

func main() {
	eng := debugdet.New()
	s, err := eng.ByName("hyperkv-dataloss")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hypertable issue 63 reproduction:", s.Description)
	fmt.Println()

	// The three models stream through the batch engine in job order;
	// cells evaluate concurrently across the worker pool.
	models := []debugdet.Model{debugdet.Value, debugdet.Failure, debugdet.DebugRCSE}
	jobs := debugdet.GridJobs([]string{s.Name}, models)
	for res, err := range eng.EvaluateBatch(context.Background(), jobs) {
		if err != nil {
			log.Fatal(err)
		}
		ev := res.Evaluation
		fmt.Printf("%-11s overhead=%5.2fx  log=%7dB  DF=%.3f  original cause=[%s]  replayed cause=[%s]\n",
			ev.Model, ev.Overhead, ev.LogBytes, ev.Utility.DF,
			join(ev.Fidelity.OrigCauses), join(ev.Fidelity.ReplayCauses))
	}

	fmt.Println()
	fmt.Println("Reading the rows:")
	fmt.Println(" - value determinism reproduces the race but pays ~2.5x at runtime;")
	fmt.Println(" - failure determinism is free at runtime but synthesizes any of the")
	fmt.Println("   three possible root causes (here: a slave crash) — DF = 1/3;")
	fmt.Println(" - debug determinism (RCSE) records the thread schedule plus the")
	fmt.Println("   control plane and reproduces the true root cause at ~1.25x.")
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += x
	}
	return out
}

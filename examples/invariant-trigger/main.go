// Data-based selection (§3.1.2) in action: train likely invariants on the
// healthy build, monitor them in production, and dial recording fidelity
// up the moment one is violated — so the root cause of the impending
// failure is captured at high determinism.
package main

import (
	"context"
	"fmt"
	"log"

	"debugdet"
)

func main() {
	eng := debugdet.New()
	s, err := eng.ByName("bank")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: train on the healthy (fixed) build — this is what ships
	// through testing. The probe at bank.audit observes the total after
	// every transfer; training learns it is constant.
	set := debugdet.TrainInvariants(s, []int64{100, 101, 102}, nil)
	fmt.Println("invariants learned from the healthy build:")
	fmt.Print(set.Describe(nil))

	// Step 2: production runs the racy build with the monitor attached as
	// an RCSE trigger. Evaluate wires this up via the InvariantTrigger
	// option: the first conservation violation dials fidelity up.
	ev, err := eng.Evaluate(context.Background(), s, debugdet.DebugRCSE, debugdet.Options{
		RCSE: debugdet.RCSEOptions{
			InvariantTrigger:     true,
			DisableCodeSelection: false,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("production run recorded under RCSE: %s\n", ev.Recording.Summary())
	if ev.RCSESetup != nil && ev.RCSESetup.InvariantTrigger != nil {
		fmt.Printf("invariant trigger fired %d times (violations of conservation)\n",
			ev.RCSESetup.InvariantTrigger.Fired())
	}
	fmt.Printf("replay fidelity: DF = %.2f — the lost-update root cause is reproduced\n", ev.Utility.DF)
}

// Quickstart: record a crashing production run under perfect determinism,
// persist the recording, load it back, and replay it — the classic
// record/replay loop a developer starts from.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"debugdet"
)

func main() {
	ctx := context.Background()
	eng := debugdet.New()

	// The overflow scenario is the paper's §3 example: a server copies
	// requests into a fixed buffer without a length check; an oversized
	// request crashes it.
	s, err := eng.ByName("overflow")
	if err != nil {
		log.Fatal(err)
	}

	// Record a production run that crashes. Perfect determinism persists
	// every event: expensive (≈3x runtime) but replayable in one shot.
	rec, orig, err := eng.Record(ctx, s, debugdet.Perfect, debugdet.Options{})
	if err != nil {
		log.Fatal(err)
	}
	failed, sig := s.Failure.Check(orig)
	fmt.Printf("original run: outcome=%-8s failed=%v sig=%q\n", orig.Result.Outcome, failed, sig)
	fmt.Printf("recording:    %s\n", rec.Summary())

	// Recordings round-trip through a compact binary format.
	var buf bytes.Buffer
	if err := debugdet.SaveRecording(&buf, rec); err != nil {
		log.Fatal(err)
	}
	persisted := buf.Len()
	loaded, err := debugdet.LoadRecording(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted:    %d bytes on disk\n", persisted)

	// Replay: the forced schedule and forced inputs reproduce the crash
	// deterministically.
	res, err := eng.Replay(ctx, s, loaded, debugdet.ReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Ok || res.View == nil {
		log.Fatalf("replay failed: %s", res.Note)
	}
	rFailed, rSig := s.Failure.Check(res.View)
	fmt.Printf("replayed run: outcome=%-8s failed=%v sig=%q (%s)\n",
		res.View.Result.Outcome, rFailed, rSig, res.Note)
	fmt.Printf("root causes in replay: %v\n", s.PresentCauses(res.View))
}

package debugdet

import (
	"context"
	"runtime"

	"debugdet/internal/core"
	"debugdet/internal/flightrec"
	"debugdet/internal/replay"
	"debugdet/internal/workload"
	"debugdet/scen"
)

// Engine is the SDK's entry point: a scenario registry plus the
// record/replay/evaluate pipeline, with one worker budget shared by every
// parallel axis (batch grids and replay-inference pools). Engines are
// cheap — each holds only its registry and defaults — and safe for
// concurrent use.
type Engine struct {
	reg          *scen.Registry
	workers      int
	replayBudget int
	builtins     bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the engine's worker budget: the number of batch cells
// (EvaluateBatch) or inference candidates (Evaluate, Replay,
// ExploreCauses) run concurrently. 0 means GOMAXPROCS, 1 is sequential.
// Every result is identical for every worker count.
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithReplayBudget sets the default inference budget for search-based
// replay (default 200). Options.ReplayBudget overrides it per call.
func WithReplayBudget(n int) Option { return func(e *Engine) { e.replayBudget = n } }

// WithoutBuiltins starts the engine with an empty registry instead of the
// built-in corpus — for test rigs that want full control of the catalog.
func WithoutBuiltins() Option { return func(e *Engine) { e.builtins = false } }

// New builds an engine. The registry comes pre-loaded with the built-in
// corpus — the paper's motivating examples, the §4 Hypertable case study
// and the Dynamo-style replication family, plus their fixed variants —
// unless WithoutBuiltins is given.
func New(opts ...Option) *Engine {
	e := &Engine{reg: scen.NewRegistry(), builtins: true}
	for _, o := range opts {
		o(e)
	}
	if e.builtins {
		for _, s := range workload.All() {
			e.reg.MustRegister(s)
		}
		if err := e.reg.RegisterVariants(workload.Variants()...); err != nil {
			panic(err)
		}
	}
	return e
}

// Registry returns the engine's scenario registry, for direct catalog
// manipulation; Register, ByName, Names and Scenarios are conveniences
// over it.
func (e *Engine) Registry() *scen.Registry { return e.reg }

// Register adds a user-authored scenario (and optionally its healthy
// variants) to the engine's registry. Names must not collide with
// built-ins or earlier registrations.
func (e *Engine) Register(s *Scenario, variants ...*Scenario) error {
	return e.reg.Register(s, variants...)
}

// ByName resolves a scenario or variant; unknown names get a
// nearest-match suggestion and the list of available names.
func (e *Engine) ByName(name string) (*Scenario, error) { return e.reg.ByName(name) }

// Names lists every resolvable scenario name, sorted.
func (e *Engine) Names() []string { return e.reg.Names() }

// Scenarios returns the corpus (registered scenarios minus healthy
// variants) in registration order.
func (e *Engine) Scenarios() []*Scenario { return e.reg.Scenarios() }

// effectiveWorkers resolves the engine's worker budget.
func (e *Engine) effectiveWorkers() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// fill applies the engine defaults and the call's context to per-call
// options. The returned cleanup must run when the call finishes; it
// releases the merged-context plumbing.
func (e *Engine) fill(ctx context.Context, o Options) (Options, func()) {
	merged, stop := mergeCtx(ctx, o.Ctx)
	o.Ctx = merged
	if o.ReplayBudget == 0 {
		o.ReplayBudget = e.replayBudget
	}
	if o.Workers == 0 {
		o.Workers = e.effectiveWorkers()
	}
	return o, stop
}

// mergeCtx reconciles the method's context argument with a context the
// caller may have set on the options struct (the deprecated one-shot API
// honors Options.Ctx, so the Engine must not silently drop it): when both
// are meaningful, the merged context is canceled as soon as either is.
// The returned cleanup detaches the merged context from its parents; run
// it when the call completes or the child leaks until a parent ends.
func mergeCtx(arg, opt context.Context) (context.Context, func()) {
	noop := func() {}
	if opt == nil || opt == context.Background() {
		if arg == nil {
			return context.Background(), noop
		}
		return arg, noop
	}
	if arg == nil || arg == context.Background() {
		return opt, noop
	}
	merged, cancel := context.WithCancel(arg)
	stopAfter := context.AfterFunc(opt, cancel)
	return merged, func() {
		stopAfter()
		cancel()
	}
}

// Record runs the scenario once under the model's recorder — the
// production run — and returns the recording together with the original
// run view. For DebugRCSE it first performs the RCSE preparation the
// paper describes (plane-classification profiling, invariant training,
// trigger arming), configured by o.RCSE; the other models ignore o.RCSE.
// o.Seed selects the run (0 = scenario default).
func (e *Engine) Record(ctx context.Context, s *Scenario, model Model, o Options) (*Recording, *RunView, error) {
	o, stop := e.fill(ctx, o)
	defer stop()
	rec, view, _, err := core.RecordOnly(s, model, o)
	return rec, view, err
}

// RecordStreaming runs the scenario once with the flight recorder
// attached — the always-on production-run mode. Instead of accumulating a
// monolithic in-memory Recording, events rotate through a bounded segment
// ring and spill to o.FlightRecorder.SpillDir as checkpoint-delimited
// .ddseg files plus a feed log and manifest; recorder memory stays O(ring)
// no matter how long the run is. The returned result carries the reopened
// SegmentStore, which Seek, segmented replay and Debug consume via
// SeekStore, ReplaySegmentedStore and DebugStore. Streaming recording is
// always perfect-model.
func (e *Engine) RecordStreaming(ctx context.Context, s *Scenario, o Options) (*FlightRecording, error) {
	o, stop := e.fill(ctx, o)
	defer stop()
	return core.RecordStreaming(s, o)
}

// OpenSegmentStore opens a flight recorder's spill directory for replay.
func OpenSegmentStore(dir string) (*DiskSegmentStore, error) {
	return flightrec.Open(dir)
}

// Replay reconstructs an execution from a recording under the recording's
// model semantics. Cancelling ctx aborts the inference search between
// candidate executions and returns the context error.
func (e *Engine) Replay(ctx context.Context, s *Scenario, rec *Recording, o ReplayOptions) (*ReplayResult, error) {
	merged, stop := mergeCtx(ctx, o.Ctx)
	defer stop()
	o.Ctx = merged
	if o.Budget == 0 {
		o.Budget = e.replayBudget
	}
	if o.Workers == 0 {
		o.Workers = e.effectiveWorkers()
	}
	res := replay.Replay(s, rec, o)
	if res.Err != nil {
		return nil, res.Err
	}
	return res, nil
}

// Seek opens a replay positioned at the target event of a recording: the
// nearest checkpoint at or before the target is restored and only the
// remainder is re-executed, so seek latency on a checkpointed recording
// is bounded by the checkpoint interval instead of the trace length.
// Recordings without checkpoints (older files, or Options without
// CheckpointInterval) fall back to replaying from the start. The session
// must be finished with RunToEnd or released with Close. Seek requires a
// perfect-model recording; see replay.ErrSeekUnsupported.
func (e *Engine) Seek(ctx context.Context, s *Scenario, rec *Recording, target uint64, o ReplayOptions) (*SeekSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return replay.Seek(s, rec, target, o)
}

// SeekStore is Seek over a segment store — typically a flight recorder's
// spill directory (OpenSegmentStore). Targets inside the retained tail
// restore the nearest boundary snapshot; earlier targets fall back to a
// full replay from the start, which the store's feed log always supports.
func (e *Engine) SeekStore(ctx context.Context, s *Scenario, st SegmentStore, target uint64, o ReplayOptions) (*SeekSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return replay.SeekStore(s, st, target, o)
}

// ReplaySegmented validates a perfect recording by replaying its
// checkpoint-delimited trace segments concurrently across the engine's
// worker budget (o.Workers overrides). The result is deep-equal for every
// worker count — the same sequential-equivalence contract as EvaluateBatch
// — and reports the first event, if any, where the replay departs from the
// recording.
func (e *Engine) ReplaySegmented(ctx context.Context, s *Scenario, rec *Recording, o ReplayOptions) (*SegmentedResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if o.Workers == 0 {
		o.Workers = e.effectiveWorkers()
	}
	return replay.Segmented(s, rec, o)
}

// ReplaySegmentedStore is ReplaySegmented over a segment store: it
// replays and validates the store's retained segments concurrently. Over
// a spill directory under retention that is the retained tail of the run.
func (e *Engine) ReplaySegmentedStore(ctx context.Context, s *Scenario, st SegmentStore, o ReplayOptions) (*SegmentedResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if o.Workers == 0 {
		o.Workers = e.effectiveWorkers()
	}
	return replay.SegmentedStore(s, st, o)
}

// Debug opens an interactive time-travel session over a perfect-model
// recording: step forward, seek to any event, step backward, and inspect
// thread, cell, lock, channel and stream state at the cursor — the API the
// replaydbg debug REPL drives. Recordings without checkpoints get
// in-memory ones materialized by a single full replay, so navigation is
// fast either way. Close the session to release its replay machine.
func (e *Engine) Debug(ctx context.Context, s *Scenario, rec *Recording, o DebugOptions) (*DebugSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return replay.NewDebugger(s, rec, o)
}

// DebugStore is Debug over a segment store. The cursor spans the whole
// recorded execution; positions before the store's retained tail replay
// from the start via the feed log, and event inspection is available
// inside the retained range.
func (e *Engine) DebugStore(ctx context.Context, s *Scenario, st SegmentStore, o DebugOptions) (*DebugSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return replay.NewStoreDebugger(s, st, o)
}

// Evaluate runs the full pipeline — record, replay, metrics — for one
// scenario under one model. Cancelling ctx aborts at phase boundaries and
// between inference candidates.
func (e *Engine) Evaluate(ctx context.Context, s *Scenario, model Model, o Options) (*Evaluation, error) {
	o, stop := e.fill(ctx, o)
	defer stop()
	return core.Evaluate(s, model, o)
}

// ExploreCauses implements the paper's §5 extension: starting from only a
// failure signature (what failure determinism records), synthesize one
// execution per declared root cause that can explain the failure. On
// cancellation the partial exploration gathered so far is returned
// together with the context error; causes not yet searched are reported
// missing.
func (e *Engine) ExploreCauses(ctx context.Context, s *Scenario, signature string, o Options) (*CauseExploration, error) {
	o, stop := e.fill(ctx, o)
	defer stop()
	ex := core.ExploreCauses(s, signature, o)
	return ex, ex.Err
}

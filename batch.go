package debugdet

import (
	"context"
	"iter"
	"sync"

	"debugdet/internal/core"
)

// Job is one cell of an evaluation grid: a scenario (by registry name)
// evaluated under one determinism model from one production seed.
type Job struct {
	// Scenario is the registry name of the scenario to evaluate.
	Scenario string
	// Model is the determinism model.
	Model Model
	// Seed identifies the production run (0 = scenario default).
	Seed int64
	// Params override scenario defaults (nil keeps them).
	Params Params
	// Options optionally carries the full evaluation options for this
	// cell — RCSE heuristics, shrink parameters, budgets. Seed and
	// Params above take precedence over the embedded fields when set,
	// and the batch always pins the cell's inner search sequential and
	// supplies its own context, so a cell with Options equals the same
	// standalone Evaluate call.
	Options *Options
}

// JobResult pairs a job with its evaluation. Evaluation is nil when the
// job failed (its error is yielded alongside).
type JobResult struct {
	Job        Job
	Evaluation *Evaluation
}

// GridJobs builds the cross product of scenarios × models × seeds in grid
// order (scenario-major), ready for EvaluateBatch. No seeds means one job
// per (scenario, model) at the scenario's default seed.
func GridJobs(scenarios []string, models []Model, seeds ...int64) []Job {
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	jobs := make([]Job, 0, len(scenarios)*len(models)*len(seeds))
	for _, sc := range scenarios {
		for _, m := range models {
			for _, sd := range seeds {
				jobs = append(jobs, Job{Scenario: sc, Model: m, Seed: sd})
			}
		}
	}
	return jobs
}

// EvaluateBatch evaluates a (scenario, model, seed) grid across the
// engine's worker budget and streams results as cells finish, in job
// order: a result is yielded as soon as the frontier job completes, while
// later cells keep computing in the background. Each cell is evaluated
// with its inner replay search pinned sequential — the grid is the
// parallel axis — so every cell's result is identical to what a lone
// Evaluate would produce, for every worker count.
//
// A failed cell yields (JobResult{Job: job}, err) and the batch
// continues; cancelling ctx stops the batch after surfacing the context
// error. Breaking out of the range loop stops the remaining work.
func (e *Engine) EvaluateBatch(ctx context.Context, jobs []Job) iter.Seq2[JobResult, error] {
	return func(yield func(JobResult, error) bool) {
		if len(jobs) == 0 {
			return
		}
		ictx, cancel := context.WithCancel(ctx)
		defer cancel()

		type slot struct {
			ev  *Evaluation
			err error
		}
		results := make([]chan slot, len(jobs))
		for i := range results {
			results[i] = make(chan slot, 1)
		}
		workers := e.effectiveWorkers()
		if workers > len(jobs) {
			workers = len(jobs)
		}
		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					ev, err := e.runJob(ictx, jobs[i])
					results[i] <- slot{ev, err}
				}
			}()
		}
		go func() {
			defer close(idxCh)
			for i := range jobs {
				select {
				case idxCh <- i:
				case <-ictx.Done():
					return
				}
			}
		}()
		// Cancel and drain the pool whichever way the consumer leaves.
		defer wg.Wait()
		defer cancel()

		for i := range jobs {
			// Check cancellation before draining: completed cells may
			// already be buffered, and a canceled batch must stop rather
			// than stream them out.
			if err := ctx.Err(); err != nil {
				yield(JobResult{Job: jobs[i]}, err)
				return
			}
			var s slot
			select {
			case s = <-results[i]:
			case <-ctx.Done():
				yield(JobResult{Job: jobs[i]}, ctx.Err())
				return
			}
			if !yield(JobResult{Job: jobs[i], Evaluation: s.ev}, s.err) {
				return
			}
		}
	}
}

// runJob resolves and evaluates one batch cell.
func (e *Engine) runJob(ctx context.Context, j Job) (*Evaluation, error) {
	s, err := e.reg.ByName(j.Scenario)
	if err != nil {
		return nil, err
	}
	var o Options
	if j.Options != nil {
		o = *j.Options
	}
	merged, stop := mergeCtx(ctx, o.Ctx)
	defer stop()
	o.Ctx = merged
	if j.Seed != 0 {
		o.Seed = j.Seed
	}
	if j.Params != nil {
		o.Params = j.Params
	}
	if o.ReplayBudget == 0 {
		o.ReplayBudget = e.replayBudget
	}
	// The grid is the parallel axis; each cell's inner search stays
	// sequential so cells are identical to standalone evaluations.
	o.Workers = 1
	return core.Evaluate(s, j.Model, o)
}

package trace

import (
	"io"

	itrace "debugdet/internal/trace"
)

// Identifier types.
type (
	// ThreadID identifies a virtual thread within one machine. The main
	// thread is always 0; children are numbered in spawn order.
	ThreadID = itrace.ThreadID
	// SiteID identifies a static program location (an instrumentation
	// site), registered by name in a SiteTable.
	SiteID = itrace.SiteID
	// ObjID identifies a dynamic object: a memory cell, mutex, channel or
	// input/output stream, depending on the event kind.
	ObjID = itrace.ObjID
)

// NoSite is the SiteID used for machine-internal events that have no
// corresponding program location.
const NoSite = itrace.NoSite

// EventKind enumerates the observable operation classes of the VM.
type EventKind = itrace.EventKind

// Event kinds. The comment after each kind states what Obj and Val hold.
const (
	EvNone     = itrace.EvNone
	EvSpawn    = itrace.EvSpawn    // Obj: child ThreadID; Val: child name
	EvExit     = itrace.EvExit     // thread terminated normally
	EvLoad     = itrace.EvLoad     // Obj: cell; Val: value read
	EvStore    = itrace.EvStore    // Obj: cell; Val: value written
	EvLock     = itrace.EvLock     // Obj: mutex
	EvUnlock   = itrace.EvUnlock   // Obj: mutex
	EvSend     = itrace.EvSend     // Obj: channel; Val: value sent
	EvRecv     = itrace.EvRecv     // Obj: channel; Val: value received
	EvInput    = itrace.EvInput    // Obj: stream; Val: value obtained from environment
	EvOutput   = itrace.EvOutput   // Obj: stream; Val: value emitted
	EvYield    = itrace.EvYield    // voluntary scheduling point
	EvSleep    = itrace.EvSleep    // timed pause
	EvObserve  = itrace.EvObserve  // Obj: probe id; Val: observed value
	EvFail     = itrace.EvFail     // Val: failure message (program-detected)
	EvCrash    = itrace.EvCrash    // Val: crash message (fault)
	EvDeadlock = itrace.EvDeadlock // machine-detected deadlock

	// Simulated-disk operations (DESIGN.md §7).
	EvDiskWrite   = itrace.EvDiskWrite   // Obj: disk; Val: record appended (volatile until fsync)
	EvDiskRead    = itrace.EvDiskRead    // Obj: disk; Val: record read (Nil past end of log)
	EvDiskFsync   = itrace.EvDiskFsync   // Obj: disk; Val: durable watermark after the fsync
	EvDiskBarrier = itrace.EvDiskBarrier // Obj: disk; Val: durable watermark (never reordered)
	EvDiskCrash   = itrace.EvDiskCrash   // Obj: disk; Val: records surviving the crash
)

// Taint is a small bit set describing the provenance of a value: which
// input classes it was (transitively) derived from.
type Taint = itrace.Taint

// Taint bits.
const (
	TaintNone    = itrace.TaintNone
	TaintData    = itrace.TaintData    // derived from bulk data input (payloads)
	TaintControl = itrace.TaintControl // derived from control input (config, metadata)
	TaintEnv     = itrace.TaintEnv     // derived from environment events (timers, faults)
)

// Event is one observable VM operation.
type Event = itrace.Event

// ValueKind discriminates Value payloads.
type ValueKind = itrace.ValueKind

// Value kinds.
const (
	VNil    = itrace.VNil
	VInt    = itrace.VInt
	VString = itrace.VString
	VBytes  = itrace.VBytes
)

// Value is the single dynamic value type of the VM: every cell, channel
// slot, input and output carries one.
type Value = itrace.Value

// Int builds an integer value.
func Int(v int64) Value { return itrace.Int(v) }

// Bool builds a boolean value (encoded as 0/1).
func Bool(v bool) Value { return itrace.Bool(v) }

// Str builds a string value.
func Str(s string) Value { return itrace.Str(s) }

// Bytes builds a byte-slice value.
func Bytes(b []byte) Value { return itrace.Bytes_(b) }

// SiteTable interns static program locations.
type SiteTable = itrace.SiteTable

// NewSiteTable returns an empty site table.
func NewSiteTable() *SiteTable { return itrace.NewSiteTable() }

// Header carries a log's run identity.
type Header = itrace.Header

// Log is an ordered event sequence with its header and site table.
type Log = itrace.Log

// NewLog returns an empty log with the given header.
func NewLog(h Header) *Log { return itrace.NewLog(h) }

// Encode writes the log in the compact binary format, returning the byte
// count.
func Encode(w io.Writer, l *Log) (int64, error) { return itrace.Encode(w, l) }

// Decode reads a log written by Encode.
func Decode(r io.Reader) (*Log, error) { return itrace.Decode(r) }

// EncodedSize returns the encoded byte count without writing.
func EncodedSize(l *Log) int64 { return itrace.EncodedSize(l) }

// WriteJSON writes the log as JSON, for external tooling.
func WriteJSON(w io.Writer, l *Log) error { return itrace.WriteJSON(w, l) }

// OutputsEqual reports whether two logs emitted the same output sequences.
func OutputsEqual(a, b *Log) bool { return itrace.OutputsEqual(a, b) }

// EventsEqual reports whether two logs contain the same events, optionally
// ignoring virtual timestamps.
func EventsEqual(a, b *Log, ignoreTime bool) bool { return itrace.EventsEqual(a, b, ignoreTime) }

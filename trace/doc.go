// Package trace is the public execution-event model of the debugdet SDK:
// the events, values and codecs shared by the virtual machine (debugdet/sim),
// the workload contract (debugdet/scen) and the record/replay engines.
//
// An execution of a program on the deterministic VM is fully described by
// the ordered sequence of events it emits; the relaxed determinism models
// of the paper correspond to persisting progressively smaller projections
// of that sequence. Every type here is an alias for the engine-internal
// definition, so values flow between user code and the internal machinery
// without conversion.
//
// Architecture: DESIGN.md §1 explains how the VM emits this event model;
// DESIGN.md §2 maps the determinism spectrum onto projections of it.
package trace

package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"debugdet/trace"
)

// sampleLog builds a small log through the public surface only: a site
// table, a header and one event of each value kind.
func sampleLog() *trace.Log {
	l := trace.NewLog(trace.Header{
		Scenario: "sample",
		Seed:     7,
		Params:   map[string]int64{"n": 3},
	})
	l.Sites = trace.NewSiteTable()
	sA := l.Sites.Register("prog.a")
	sB := l.Sites.Register("prog.b")
	l.Append(trace.Event{Seq: 0, Time: 1, TID: 0, Kind: trace.EvSpawn, Site: trace.NoSite, Obj: 1, Val: trace.Str("worker")})
	l.Append(trace.Event{Seq: 1, Time: 3, TID: 1, Kind: trace.EvStore, Site: sA, Obj: 0, Val: trace.Int(42), Taint: trace.TaintData})
	l.Append(trace.Event{Seq: 2, Time: 5, TID: 1, Kind: trace.EvInput, Site: sB, Obj: 2, Val: trace.Bool(true), Taint: trace.TaintControl})
	l.Append(trace.Event{Seq: 3, Time: 8, TID: 1, Kind: trace.EvOutput, Site: sB, Obj: 3, Val: trace.Bytes([]byte{1, 2, 3})})
	l.Append(trace.Event{Seq: 4, Time: 9, TID: 0, Kind: trace.EvExit})
	return l
}

// TestValueConstructors pins the public value model: each constructor
// yields the right kind and round-trips through the accessors.
func TestValueConstructors(t *testing.T) {
	cases := []struct {
		v    trace.Value
		kind trace.ValueKind
	}{
		{trace.Int(-5), trace.VInt},
		{trace.Str("hi"), trace.VString},
		{trace.Bytes([]byte("raw")), trace.VBytes},
	}
	for i, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("case %d: kind = %v, want %v", i, c.v.Kind, c.kind)
		}
	}
	if trace.Int(-5).AsInt() != -5 {
		t.Error("Int round trip failed")
	}
	if trace.Bool(true).AsInt() != 1 || trace.Bool(false).AsInt() != 0 {
		t.Error("Bool encoding is not 0/1")
	}
	if trace.Bool(true).IsNil() {
		t.Error("Bool value reports nil")
	}
	if !trace.Str("x").Equal(trace.Str("x")) || trace.Str("x").Equal(trace.Str("y")) {
		t.Error("string equality broken")
	}
	if trace.Int(1).Equal(trace.Str("1")) {
		t.Error("cross-kind values compare equal")
	}
}

// TestCodecRoundTrip pins the public codec: Encode → Decode preserves the
// header, the site table and every event; EncodedSize matches the bytes
// actually written.
func TestCodecRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	n, err := trace.Encode(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	if sz := trace.EncodedSize(l); sz != n {
		t.Fatalf("EncodedSize = %d, encoded = %d", sz, n)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Scenario != "sample" || got.Header.Seed != 7 || got.Header.Params["n"] != 3 {
		t.Fatalf("header mangled: %+v", got.Header)
	}
	if !trace.EventsEqual(l, got, false) {
		t.Fatal("decoded events differ from original")
	}
	sA, sB := l.Events[1].Site, l.Events[2].Site
	if got.SiteName(sA) != "prog.a" || got.SiteName(sB) != "prog.b" {
		t.Fatalf("site table mangled: %q %q", got.SiteName(sA), got.SiteName(sB))
	}
}

// TestLogComparisons pins the public comparison helpers.
func TestLogComparisons(t *testing.T) {
	a, b := sampleLog(), sampleLog()
	if !trace.EventsEqual(a, b, false) {
		t.Fatal("identical logs compare unequal")
	}
	// A time-only perturbation is ignored with ignoreTime, caught without.
	b.Events[1].Time += 100
	if trace.EventsEqual(a, b, false) {
		t.Fatal("timestamp change not detected")
	}
	if !trace.EventsEqual(a, b, true) {
		t.Fatal("ignoreTime did not ignore timestamps")
	}
	if !trace.OutputsEqual(a, b) {
		t.Fatal("outputs should be unaffected by timestamps")
	}
	// An output-value change flips OutputsEqual.
	b.Events[3].Val = trace.Bytes([]byte{9})
	if trace.OutputsEqual(a, b) {
		t.Fatal("output change not detected")
	}
}

// TestWriteJSON pins the JSON export for external tooling.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, sampleLog()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sample", "prog.a", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON export missing %q:\n%s", want, out)
		}
	}
}

package sim

import (
	"debugdet/internal/vm"
	"debugdet/trace"
)

// Machine is one deterministic virtual machine instance. Scenario build
// functions receive a fresh machine, register objects and sites on it, and
// return the main thread body.
type Machine = vm.Machine

// Config parameterizes a Machine.
type Config = vm.Config

// New builds a machine. Most users never call this directly — the scenario
// contract (scen.Scenario.Exec) builds machines — but analysis passes and
// tests can drive one by hand.
func New(cfg Config) *Machine { return vm.New(cfg) }

// Thread is a virtual thread: the handle workload code uses for every
// interposed operation (Load/Store/Lock/Send/Recv/Input/Output/Spawn/...).
type Thread = vm.Thread

// Result describes a finished execution.
type Result = vm.Result

// Outcome classifies how an execution ended.
type Outcome = vm.Outcome

// Outcomes.
const (
	OutcomeOK       = vm.OutcomeOK       // all threads exited normally
	OutcomeFailed   = vm.OutcomeFailed   // a thread reported a failure
	OutcomeCrashed  = vm.OutcomeCrashed  // a thread crashed
	OutcomeDeadlock = vm.OutcomeDeadlock // no thread runnable, none sleeping
	OutcomeDiverged = vm.OutcomeDiverged // replay scheduler could not follow its log
	OutcomeAborted  = vm.OutcomeAborted  // step limit exceeded
)

// Scheduler picks the next thread at every scheduling point.
type Scheduler = vm.Scheduler

// Stock schedulers.
type (
	// RoundRobinScheduler cycles through enabled threads.
	RoundRobinScheduler = vm.RoundRobinScheduler
	// RandomScheduler picks uniformly from a seed.
	RandomScheduler = vm.RandomScheduler
	// PCTScheduler implements probabilistic concurrency testing:
	// priority-based scheduling with seeded change points.
	PCTScheduler = vm.PCTScheduler
	// ReplayScheduler forces a complete recorded schedule.
	ReplayScheduler = vm.ReplayScheduler
	// SketchScheduler forces scheduling decisions at selected sequence
	// numbers over a base scheduler.
	SketchScheduler = vm.SketchScheduler
)

// NewRoundRobinScheduler returns a round-robin scheduler.
func NewRoundRobinScheduler() *RoundRobinScheduler { return vm.NewRoundRobinScheduler() }

// NewRandomScheduler returns a seeded uniform-random scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler { return vm.NewRandomScheduler(seed) }

// NewPCTScheduler returns a PCT scheduler with the given expected run
// length and number of priority change points.
func NewPCTScheduler(seed int64, expectedLen uint64, changePoints int) *PCTScheduler {
	return vm.NewPCTScheduler(seed, expectedLen, changePoints)
}

// NewReplayScheduler returns a scheduler that forces a recorded schedule.
func NewReplayScheduler(schedule []trace.ThreadID) *ReplayScheduler {
	return vm.NewReplayScheduler(schedule)
}

// NewSketchScheduler returns a scheduler forcing the given (sequence →
// thread) decisions over base.
func NewSketchScheduler(forced map[uint64]trace.ThreadID, base Scheduler) *SketchScheduler {
	return vm.NewSketchScheduler(forced, base)
}

// Observer sees every event as it is emitted and returns the extra virtual
// cycles its processing costs (recorders, monitors, detectors).
type Observer = vm.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = vm.ObserverFunc

// InputSource supplies environment values by (stream, index).
type InputSource = vm.InputSource

// InputSourceFunc adapts a function to the InputSource interface.
type InputSourceFunc = vm.InputSourceFunc

// MapInputs forces recorded per-stream values over a base source.
type MapInputs = vm.MapInputs

// ZeroInputs returns zero for every request.
var ZeroInputs = vm.ZeroInputs

// SeededInputs returns a deterministic hash-based input source drawing
// small non-negative integers below limit.
func SeededInputs(seed int64, limit int64) InputSource { return vm.SeededInputs(seed, limit) }

// HashValue is the deterministic (seed, stream, index) hash SeededInputs
// draws from, exposed for custom input sources.
func HashValue(seed int64, stream string, index int) int64 { return vm.HashValue(seed, stream, index) }

// CostModel assigns virtual-cycle costs to operations.
type CostModel = vm.CostModel

// DefaultCostModel returns the standard cost model.
func DefaultCostModel() CostModel { return vm.DefaultCostModel() }

// PendingOp describes the operation a thread will perform at its next
// scheduling point (for schedule-aware analyses).
type PendingOp = vm.PendingOp

// Snapshot machinery (time-travel replay; see DESIGN.md §5). Snapshots are
// deterministic captures of machine state at an event boundary: the
// substrate of checkpointed seek (Engine.Seek), segmented parallel replay
// (Engine.ReplaySegmented) and the interactive debugger (Engine.Debug).
type (
	// Snapshot is one deterministic VM state capture.
	Snapshot = vm.Snapshot
	// ThreadSnap is a snapshotted thread's metadata.
	ThreadSnap = vm.ThreadSnap
	// SlotSnap is a snapshotted value with its provenance.
	SlotSnap = vm.SlotSnap
	// ChanSnap is a snapshotted channel buffer.
	ChanSnap = vm.ChanSnap
	// StreamSnap is a snapshotted environment stream.
	StreamSnap = vm.StreamSnap
	// FeedEntry is one recorded operation outcome, consumed by Restore.
	FeedEntry = vm.FeedEntry
	// ThreadInfo describes one thread of a paused machine for inspection.
	ThreadInfo = vm.ThreadInfo
)

// NoRunningThread marks a snapshot taken on a paused machine, where every
// live thread is parked with a valid pending operation.
const NoRunningThread = vm.NoRunningThread

// Restore reconstructs a machine mid-execution from a snapshot plus the
// per-thread operation feeds derived from the recorded trace prefix. The
// returned machine is paused at the snapshot's event; drive it with
// Machine.Continue and Machine.Finish.
func Restore(cfg Config, setup func(*Machine) func(*Thread), snap *Snapshot, feeds [][]FeedEntry) (*Machine, error) {
	return vm.Restore(cfg, setup, snap, feeds)
}

// OpName renders a ThreadSnap.PendingCode as its operation name.
func OpName(code uint8) string { return vm.OpName(code) }

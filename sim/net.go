package sim

import (
	"debugdet/internal/simnet"
	"debugdet/trace"
)

// Network is the simulated message network for distributed scenarios: a
// set of named nodes connected by directed links with deterministic,
// input-stream-driven latency and drop behaviour. It runs entirely on the
// machine's threads and channels, so network non-determinism is ordinary
// VM non-determinism — recordable and replayable like everything else.
type Network = simnet.Network

// NetworkOptions configures a Network.
type NetworkOptions = simnet.Options

// LinkConfig describes one directed link's delivery behaviour.
type LinkConfig = simnet.LinkConfig

// Node is one network endpoint.
type Node = simnet.Node

// Message is the wire format of the simulated network.
type Message = simnet.Message

// NewNetwork builds a network on the machine. Add nodes and links, then
// Build before the machine runs and Start from the main thread.
func NewNetwork(m *Machine, opts NetworkOptions) *Network { return simnet.New(m, opts) }

// DecodeMessage decodes a message from its encoded Value form.
func DecodeMessage(v trace.Value) (Message, error) { return simnet.DecodeMessage(v) }

// MustDecodeMessage decodes a message, panicking on malformed input (for
// workload code whose messages are machine-generated).
func MustDecodeMessage(v trace.Value) Message { return simnet.MustDecode(v) }

package sim_test

import (
	"testing"

	"debugdet/sim"
	"debugdet/trace"
)

// TestDiskEndToEnd drives the public simulated-disk surface as a workload
// author would: a WAL of framed records, a group fsync, an injected torn
// write at crash, and a recovery scan that detects the torn tail.
func TestDiskEndToEnd(t *testing.T) {
	m := sim.New(sim.Config{Seed: 5, CollectTrace: true})
	d := m.NewDisk("wal", sim.DiskFaults{TornBytes: 12})
	site := m.Site("disk.op")

	var recovered, torn int
	res := m.Run(func(th *sim.Thread) {
		sim.AppendRecord(th, site, d, 1, 100)
		sim.AppendRecord(th, site, d, 2, 200)
		th.DiskFsync(site, d)
		sim.AppendRecord(th, site, d, 3, 300) // volatile: torn at crash
		th.DiskCrash(site, d)
		for _, raw := range sim.ScanDisk(th, site, d) {
			if fields, ok := sim.DecodeRecord(raw); ok {
				if len(fields) != 2 {
					t.Errorf("record has %d fields, want 2", len(fields))
				}
				recovered++
			} else {
				torn++
			}
		}
	})
	if res.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if recovered != 2 || torn != 1 {
		t.Fatalf("recovered %d whole + %d torn records, want 2 + 1", recovered, torn)
	}

	// Inspection surface: name, length, durable watermark, records.
	id, ok := m.DiskID("wal")
	if !ok || id != d {
		t.Fatal("DiskID lookup failed")
	}
	if m.DiskName(d) != "wal" {
		t.Fatalf("DiskName = %q", m.DiskName(d))
	}
	// Crash survivors (including the torn record) are durable: they are
	// what a reboot finds on the device.
	if m.DiskLen(d) != 3 || m.DiskDurable(d) != 3 {
		t.Fatalf("len=%d durable=%d, want 3/3", m.DiskLen(d), m.DiskDurable(d))
	}
	recs := m.DiskRecords(d)
	if len(recs) != 3 || len(recs[2].Bytes) != 12 {
		t.Fatalf("records = %v", recs)
	}

	// The disk image flows through the public snapshot surface.
	snap := m.Snapshot(sim.NoRunningThread)
	if len(snap.Disks) != 1 {
		t.Fatalf("snapshot carries %d disks, want 1", len(snap.Disks))
	}
	var ds sim.DiskSnap = snap.Disks[0]
	if ds.Durable != 3 || ds.Fsyncs != 1 || len(ds.Recs) != 3 {
		t.Fatalf("disk snapshot = %+v", ds)
	}
	// A whole record round-trips through the public codec.
	if fields, ok := sim.DecodeRecord(sim.EncodeRecord(9, 9)); !ok || len(fields) != 2 {
		t.Fatal("EncodeRecord/DecodeRecord round trip failed")
	}
	// Disk operations appear in the collected trace as first-class events.
	seen := 0
	for _, e := range res.Trace.Events {
		switch e.Kind {
		case trace.EvDiskWrite, trace.EvDiskRead, trace.EvDiskFsync, trace.EvDiskCrash:
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no disk events in the trace")
	}
}

package sim

import (
	"debugdet/internal/simdisk"
	"debugdet/internal/vm"
	"debugdet/trace"
)

// Simulated-disk surface (DESIGN.md §7). A disk is a VM resource created
// with Machine.NewDisk: an append-only record store whose write, read,
// fsync, barrier and crash operations are scheduled, costed and traced
// like every other VM operation, so storage-dependent executions record
// and replay under every determinism model. The fault plane (DiskFaults)
// and the crash operation make durability bugs — torn writes, dropped
// un-fsynced records, reordered fsyncs — deterministic functions of the
// seed.
//
// Inspect disk state through the Machine methods DiskID, DiskName,
// DiskLen, DiskDurable and DiskRecords; snapshots carry the full disk
// image (DiskSnap), so checkpointed Seek restores storage exactly.

// DiskFaults configures a disk's injectable fault plane. The zero value
// is a fault-free disk.
type DiskFaults = vm.DiskFaults

// DiskSnap is a snapshotted disk image: records, durable watermark and
// lifetime fsync count.
type DiskSnap = vm.DiskSnap

// EncodeRecord frames int64 fields as one checksummed WAL record
// (simdisk framing). Torn prefixes of the encoding fail DecodeRecord.
func EncodeRecord(fields ...int64) []byte { return simdisk.Encode(fields...) }

// DecodeRecord unframes a WAL record, verifying its checksum trailer; ok
// is false for torn or corrupt records.
func DecodeRecord(b []byte) (fields []int64, ok bool) { return simdisk.Decode(b) }

// AppendRecord frames the fields and writes them as one record on the
// disk. The write is volatile until an fsync or barrier.
func AppendRecord(t *Thread, site trace.SiteID, disk trace.ObjID, fields ...int64) {
	simdisk.Append(t, site, disk, fields...)
}

// ScanDisk reads every record off the disk, oldest first. Raw bytes are
// returned — possibly torn — for DecodeRecord to interpret.
func ScanDisk(t *Thread, site trace.SiteID, disk trace.ObjID) [][]byte {
	return simdisk.Scan(t, site, disk)
}

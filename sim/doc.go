// Package sim is the public workload-programming surface of the debugdet
// SDK: the deterministic virtual machine its scenarios run on.
//
// Programs are written against the Thread API — cells, mutexes, channels,
// input/output streams — and every shared-state operation is interposed by
// the machine, so executions are bit-reproducible from a seed: the
// property recorders and replayers need and a native Go scheduler cannot
// provide. The companion types in debugdet/scen describe a program plus
// its failure specification as a Scenario; debugdet/trace carries the
// event model.
//
// Every type is an alias for the engine-internal definition, so
// user-authored workloads interoperate with the built-in corpus and the
// record/replay engines without conversion.
//
// Architecture: DESIGN.md §1 (the deterministic VM) covers the execution
// model and the baton protocol; DESIGN.md §5 (time-travel replay) covers
// the snapshot/restore machinery this package also exposes.
package sim

package sim_test

import (
	"testing"

	"debugdet/sim"
	"debugdet/trace"
)

// TestMachineEndToEnd drives the public machine surface exactly as a
// workload author would: cells, a mutex, a channel and spawned threads
// running a tiny producer/consumer program, bit-reproducible from a seed.
func TestMachineEndToEnd(t *testing.T) {
	run := func() *sim.Result {
		m := sim.New(sim.Config{Seed: 11, CollectTrace: true})
		total := m.NewCell("total", trace.Int(0))
		mu := m.NewMutex("mu")
		ch := m.NewChan("ch", 2)
		done := m.NewChan("done", 1)
		out := m.Stream("sum.out")
		sOp := m.Site("op")
		sSpawn := m.Site("spawn")

		producer := func(t *sim.Thread) {
			for i := int64(1); i <= 4; i++ {
				t.Send(sOp, ch, trace.Int(i))
			}
		}
		consumer := func(t *sim.Thread) {
			for i := 0; i < 4; i++ {
				v := t.Recv(sOp, ch).AsInt()
				t.Lock(sOp, mu)
				cur := t.Load(sOp, total).AsInt()
				t.Store(sOp, total, trace.Int(cur+v))
				t.Unlock(sOp, mu)
			}
			t.Send(sOp, done, trace.Int(1))
		}
		res := m.Run(func(t *sim.Thread) {
			t.Spawn(sSpawn, "producer", producer)
			t.Spawn(sSpawn, "consumer", consumer)
			t.Recv(sOp, done)
			t.Output(sOp, out, m.CellValue(total))
		})
		return res
	}

	res := run()
	if res.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if got := res.Outputs["sum.out"]; len(got) != 1 || got[0].AsInt() != 10 {
		t.Fatalf("outputs = %v, want [10]", got)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no oracle trace collected")
	}
	// Bit-reproducibility: the same seed yields the same event sequence.
	again := run()
	if !trace.EventsEqual(res.Trace, again.Trace, false) {
		t.Fatal("two runs from the same seed differ")
	}
}

// TestSchedulersAndInputs exercises the stock scheduler constructors and
// input sources through the aliases.
func TestSchedulersAndInputs(t *testing.T) {
	if sim.NewRoundRobinScheduler() == nil || sim.NewRandomScheduler(1) == nil ||
		sim.NewPCTScheduler(1, 128, 2) == nil {
		t.Fatal("stock scheduler constructor returned nil")
	}
	if sim.NewReplayScheduler([]trace.ThreadID{0, 0}) == nil {
		t.Fatal("replay scheduler constructor returned nil")
	}
	if sim.NewSketchScheduler(map[uint64]trace.ThreadID{0: 0}, sim.NewRoundRobinScheduler()) == nil {
		t.Fatal("sketch scheduler constructor returned nil")
	}
	if v := sim.SeededInputs(3, 10).Next("s", 0).AsInt(); v < 0 || v >= 10 {
		t.Fatalf("SeededInputs out of range: %d", v)
	}
	if a, b := sim.HashValue(3, "s", 0), sim.HashValue(3, "s", 0); a != b {
		t.Fatal("HashValue not deterministic")
	}
	m := sim.New(sim.Config{
		Seed:      5,
		Scheduler: sim.NewRoundRobinScheduler(),
		Inputs: sim.InputSourceFunc(func(stream string, index int) trace.Value {
			return trace.Int(int64(index) + 40)
		}),
		CollectTrace: true,
	})
	in := m.DeclareStream("env", trace.TaintControl)
	s := m.Site("read")
	res := m.Run(func(t *sim.Thread) {
		if got := t.Input(s, in).AsInt(); got != 40 {
			t.Fail(s, "input = %d, want 40", got)
		}
	})
	if res.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Terminal.Val)
	}
	if got := res.InputsUsed["env"]; len(got) != 1 || got[0].AsInt() != 40 {
		t.Fatalf("InputsUsed = %v", got)
	}
}

// TestNetworkEndToEnd runs a minimal two-node simnet exchange through the
// public aliases: build, start, send, receive, decode.
func TestNetworkEndToEnd(t *testing.T) {
	m := sim.New(sim.Config{Seed: 9, CollectTrace: true})
	net := sim.NewNetwork(m, sim.NetworkOptions{
		DefaultLink:   sim.LinkConfig{LatencyBase: 3},
		InboxCapacity: 4,
	})
	net.AddNode("a")
	net.AddNode("b")
	net.Build()
	net.SetLink("a", "b", sim.LinkConfig{LatencyBase: 1})

	got := m.NewCell("got", trace.Int(-1))
	sOp := m.Site("op")
	res := m.Run(func(t *sim.Thread) {
		net.Start(t)
		net.Send(t, sOp, "a", "b", sim.Message{Kind: "ping", From: "a", Nums: []int64{42}})
		msg := net.Recv(t, sOp, "b")
		t.Store(sOp, got, trace.Int(msg.Num(0)))
	})
	if res.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if v := m.CellValue(got).AsInt(); v != 42 {
		t.Fatalf("delivered payload = %d, want 42", v)
	}
	if net.Delivered() != 1 || net.Dropped() != 0 {
		t.Fatalf("delivered/dropped = %d/%d", net.Delivered(), net.Dropped())
	}
	// Encode/decode round trip through the public message helpers.
	enc := sim.Message{Kind: "k", From: "a", Args: []string{"x"}, Nums: []int64{7}}.Encode()
	dec, err := sim.DecodeMessage(enc)
	if err != nil || dec.Kind != "k" || dec.Num(0) != 7 {
		t.Fatalf("decode: %v %+v", err, dec)
	}
	if d := sim.MustDecodeMessage(enc); d.Arg(0) != "x" {
		t.Fatalf("must-decode: %+v", d)
	}
}

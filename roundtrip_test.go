package debugdet_test

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"debugdet"
)

// normalizeRecording maps nil and empty slices/maps to a canonical form so
// a recording can be compared with its decoded round-trip, which
// reconstructs absent collections as empty ones (or vice versa).
func normalizeRecording(r *debugdet.Recording) *debugdet.Recording {
	c := *r
	if len(c.Params) == 0 {
		c.Params = nil
	}
	if len(c.Full) == 0 {
		c.Full = nil
	}
	if len(c.Sched) == 0 {
		c.Sched = nil
	}
	if len(c.Streams) == 0 {
		c.Streams = nil
	}
	if len(c.Checkpoints) == 0 {
		c.Checkpoints = nil
	}
	return &c
}

// TestRecordingRoundTripAllModels is the persistence property test: for a
// recording from every determinism model — including RCSE, whose policy is
// built by the engine's preparation pipeline — SaveRecording followed by
// LoadRecording reproduces every field. The only tolerated difference is
// Overhead, which the format quantizes to 1/1000.
func TestRecordingRoundTripAllModels(t *testing.T) {
	eng := debugdet.New()
	if err := eng.Register(newTicketScenario()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, scenarioName := range []string{"overflow", "ticket-oversell"} {
		s, err := eng.ByName(scenarioName)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range debugdet.Models() {
			rec, _, err := eng.Record(ctx, s, model, debugdet.Options{})
			if err != nil {
				t.Fatalf("%s/%s: record: %v", scenarioName, model, err)
			}
			var buf bytes.Buffer
			if err := debugdet.SaveRecording(&buf, rec); err != nil {
				t.Fatalf("%s/%s: save: %v", scenarioName, model, err)
			}
			loaded, err := debugdet.LoadRecording(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/%s: load: %v", scenarioName, model, err)
			}

			if math.Abs(loaded.Overhead-rec.Overhead) > 0.001 {
				t.Errorf("%s/%s: overhead %v -> %v, drift beyond quantization",
					scenarioName, model, rec.Overhead, loaded.Overhead)
			}
			want, got := normalizeRecording(rec), normalizeRecording(loaded)
			want.Overhead, got.Overhead = 0, 0
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: round-trip not lossless:\nwant %+v\ngot  %+v",
					scenarioName, model, want, got)
			}
		}
	}
}

// TestRecordingTruncatedStream pins clean failure: every strict prefix of
// a valid recording stream must produce an error from LoadRecording —
// never a panic, and never a silently truncated recording.
func TestRecordingTruncatedStream(t *testing.T) {
	eng := debugdet.New()
	s, err := eng.ByName("overflow")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range debugdet.Models() {
		rec, _, err := eng.Record(context.Background(), s, model, debugdet.Options{})
		if err != nil {
			t.Fatalf("%s: record: %v", model, err)
		}
		var buf bytes.Buffer
		if err := debugdet.SaveRecording(&buf, rec); err != nil {
			t.Fatalf("%s: save: %v", model, err)
		}
		data := buf.Bytes()
		for n := 0; n < len(data); n++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: LoadRecording panicked on %d/%d-byte prefix: %v",
							model, n, len(data), r)
					}
				}()
				if _, err := debugdet.LoadRecording(bytes.NewReader(data[:n])); err == nil {
					t.Errorf("%s: %d/%d-byte prefix loaded without error", model, n, len(data))
				}
			}()
		}
	}
}

// TestCheckpointedRecordingRoundTripSeek drives the persistence → time
// travel pipeline end to end through the public SDK: record with
// checkpoints, save, load, then seek the loaded recording — state
// inspection and suffix replay must work on what came off disk, and a
// target before the first checkpoint must fall back to replay-from-start.
func TestCheckpointedRecordingRoundTripSeek(t *testing.T) {
	eng := debugdet.New()
	ctx := context.Background()
	s, err := eng.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := eng.Record(ctx, s, debugdet.Perfect, debugdet.Options{CheckpointInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Checkpoints) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	var buf bytes.Buffer
	if err := debugdet.SaveRecording(&buf, rec); err != nil {
		t.Fatal(err)
	}
	loaded, err := debugdet.LoadRecording(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Checkpoints) != len(rec.Checkpoints) {
		t.Fatalf("checkpoints %d -> %d across save/load", len(rec.Checkpoints), len(loaded.Checkpoints))
	}

	target := loaded.EventCount * 3 / 4
	sess, err := eng.Seek(ctx, s, loaded, target, debugdet.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.FromCheckpoint {
		t.Error("seek on a checkpointed recording did not use a checkpoint")
	}
	if sess.Pos() != target {
		t.Errorf("seek landed at %d, want %d", sess.Pos(), target)
	}
	if view, ok := sess.RunToEnd(); !ok {
		t.Errorf("suffix replay from loaded recording not ok (outcome %s)", view.Result.Outcome)
	}

	// A target before the first checkpoint replays from the start.
	early, err := eng.Seek(ctx, s, loaded, 10, debugdet.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer early.Close()
	if early.FromCheckpoint {
		t.Error("seek before the first checkpoint claimed to use one")
	}
}

package debugdet_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"debugdet"
	"debugdet/scen"
)

// TestCustomScenarioSDK is the SDK acceptance test: a scenario authored
// with only the public packages (see newTicketScenario) registers on an
// engine, and EvaluateBatch across it × every determinism model completes
// with deterministic results — identical for any worker count.
func TestCustomScenarioSDK(t *testing.T) {
	run := func(workers int) []string {
		eng := debugdet.New(debugdet.WithWorkers(workers), debugdet.WithReplayBudget(120))
		if err := eng.Register(newTicketScenario()); err != nil {
			t.Fatal(err)
		}
		jobs := debugdet.GridJobs([]string{"ticket-oversell"}, debugdet.Models())
		var got []string
		for res, err := range eng.EvaluateBatch(context.Background(), jobs) {
			if err != nil {
				t.Fatalf("workers=%d %s/%s: %v", workers, res.Job.Scenario, res.Job.Model, err)
			}
			got = append(got, res.Evaluation.Summary())
		}
		return got
	}

	seq := run(1)
	if len(seq) != len(debugdet.Models()) {
		t.Fatalf("batch yielded %d results, want %d", len(seq), len(debugdet.Models()))
	}
	for _, line := range seq {
		if !strings.Contains(line, "DF=1.000") {
			t.Errorf("expected DF=1.000 in every cell, got %q", line)
		}
	}
	par := run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("cell %d differs between workers=1 and workers=4:\nseq: %s\npar: %s",
				i, seq[i], par[i])
		}
	}
}

// TestEvaluateBatchCancellation pins context plumbing: a batch whose
// context is canceled stops streaming and surfaces the context error.
func TestEvaluateBatchCancellation(t *testing.T) {
	eng := debugdet.New(debugdet.WithWorkers(2))
	jobs := debugdet.GridJobs(
		[]string{"sum", "overflow", "msgdrop", "bank"}, debugdet.Models())

	ctx, cancel := context.WithCancel(context.Background())
	var errs []error
	n := 0
	for _, err := range eng.EvaluateBatch(ctx, jobs) {
		n++
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if n >= 2 {
			cancel() // cancel mid-stream; the batch must stop shortly after
		}
	}
	cancel()
	if n >= len(jobs) {
		t.Fatalf("canceled batch streamed all %d results", n)
	}
	if len(errs) == 0 {
		t.Fatal("canceled batch surfaced no error")
	}
	for _, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("batch error = %v, want context.Canceled", err)
		}
	}
}

// TestEngineMethodsCanceled pins that every engine method honors an
// already-canceled context.
func TestEngineMethodsCanceled(t *testing.T) {
	eng := debugdet.New()
	s, err := eng.ByName("overflow")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := eng.Record(ctx, s, debugdet.Perfect, debugdet.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Record error = %v, want context.Canceled", err)
	}
	if _, err := eng.Evaluate(ctx, s, debugdet.Failure, debugdet.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluate error = %v, want context.Canceled", err)
	}
	rec, _, err := eng.Record(context.Background(), s, debugdet.Output, debugdet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Replay(ctx, s, rec, debugdet.ReplayOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Replay error = %v, want context.Canceled", err)
	}
	if ex, err := eng.ExploreCauses(ctx, s, "overflow:segfault", debugdet.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ExploreCauses error = %v, want context.Canceled", err)
	} else if len(ex.Missing) != len(s.RootCauses) {
		t.Errorf("canceled exploration reported %d missing causes, want all %d",
			len(ex.Missing), len(s.RootCauses))
	}

	// A context set on the options struct (the deprecated API's channel)
	// must be honored too, not silently overwritten by the argument.
	if _, err := eng.Evaluate(context.Background(), s, debugdet.Failure,
		debugdet.Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluate with canceled Options.Ctx error = %v, want context.Canceled", err)
	}
	if _, err := eng.Replay(context.Background(), s, rec,
		debugdet.ReplayOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("Replay with canceled Options.Ctx error = %v, want context.Canceled", err)
	}
}

// TestBatchJobOptions pins that a batch cell carrying full evaluation
// options (here: the invariant-trigger RCSE heuristic) produces exactly
// the result of the equivalent standalone Evaluate call.
func TestBatchJobOptions(t *testing.T) {
	eng := debugdet.New(debugdet.WithReplayBudget(80))
	s, err := eng.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	opts := debugdet.Options{
		ReplayBudget: 80,
		RCSE:         debugdet.RCSEOptions{InvariantTrigger: true},
	}
	want, err := eng.Evaluate(context.Background(), s, debugdet.DebugRCSE, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.RCSESetup == nil || want.RCSESetup.InvariantTrigger == nil ||
		want.RCSESetup.InvariantTrigger.Fired() == 0 {
		t.Fatal("standalone evaluation did not arm/fire the invariant trigger")
	}

	jobs := []debugdet.Job{{Scenario: "bank", Model: debugdet.DebugRCSE, Options: &opts}}
	for res, err := range eng.EvaluateBatch(context.Background(), jobs) {
		if err != nil {
			t.Fatal(err)
		}
		got := res.Evaluation
		if got.Summary() != want.Summary() {
			t.Errorf("batch cell differs from standalone evaluation:\nbatch:      %s\nstandalone: %s",
				got.Summary(), want.Summary())
		}
		if got.RCSESetup == nil || got.RCSESetup.InvariantTrigger == nil ||
			got.RCSESetup.InvariantTrigger.Fired() != want.RCSESetup.InvariantTrigger.Fired() {
			t.Error("batch cell dropped the RCSE options")
		}
	}
}

// TestRegistryRules pins the catalog contract: built-ins pre-registered,
// duplicates rejected, variants resolvable but excluded from the corpus,
// and unknown names answered with a nearest-match suggestion.
func TestRegistryRules(t *testing.T) {
	eng := debugdet.New()

	if _, err := eng.ByName("hyperkv-fixed"); err != nil {
		t.Errorf("variant not resolvable: %v", err)
	}
	for _, s := range eng.Scenarios() {
		if strings.HasSuffix(s.Name, "-fixed") {
			t.Errorf("corpus contains variant %q", s.Name)
		}
	}

	// Duplicate names — against built-ins and against user scenarios.
	if err := eng.Register(&scen.Scenario{Name: "overflow", Build: newTicketScenario().Build}); err == nil {
		t.Error("registering a scenario shadowing a built-in succeeded")
	}
	if err := eng.Register(newTicketScenario()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(newTicketScenario()); err == nil {
		t.Error("duplicate user registration succeeded")
	}

	// Nearest-match suggestions, from both the registry and the
	// deprecated workload-backed path.
	_, err := eng.ByName("dynokv-stale")
	if err == nil || !strings.Contains(err.Error(), `did you mean "dynokv-staleread"?`) {
		t.Errorf("registry suggestion missing: %v", err)
	}
	if !strings.Contains(err.Error(), "ticket-oversell") {
		t.Errorf("error does not list available names: %v", err)
	}
	_, err = debugdet.ScenarioByName("overfow")
	if err == nil || !strings.Contains(err.Error(), `did you mean "overflow"?`) {
		t.Errorf("workload suggestion missing: %v", err)
	}

	// An engine without builtins starts empty.
	if n := len(debugdet.New(debugdet.WithoutBuiltins()).Names()); n != 0 {
		t.Errorf("WithoutBuiltins engine has %d names", n)
	}
}

// TestBatchUnknownScenario pins per-job error streaming: an unknown name
// fails its own cell and the batch continues.
func TestBatchUnknownScenario(t *testing.T) {
	eng := debugdet.New(debugdet.WithReplayBudget(60))
	jobs := []debugdet.Job{
		{Scenario: "nope", Model: debugdet.Perfect},
		{Scenario: "overflow", Model: debugdet.Perfect},
	}
	var errCount, okCount int
	for res, err := range eng.EvaluateBatch(context.Background(), jobs) {
		if err != nil {
			errCount++
			if !strings.Contains(err.Error(), "unknown scenario") {
				t.Errorf("unexpected error: %v", err)
			}
			continue
		}
		okCount++
		if res.Evaluation == nil || res.Evaluation.Scenario != "overflow" {
			t.Errorf("unexpected result %+v", res)
		}
	}
	if errCount != 1 || okCount != 1 {
		t.Errorf("errCount=%d okCount=%d, want 1/1", errCount, okCount)
	}
}

// TestSDKOptionValidation pins option validation at the public surface:
// negative worker counts and fork knobs are rejected with a clear error
// before any run executes, and the checkpoint-forked replay mode yields
// an evaluation identical to the from-scratch one.
func TestSDKOptionValidation(t *testing.T) {
	eng := debugdet.New(debugdet.WithReplayBudget(80))
	s := newTicketScenario()
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	model, err := debugdet.ParseModel("failure")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, o := range map[string]debugdet.Options{
		"workers":       {Workers: -2},
		"budget":        {ReplayBudget: -1},
		"fork-interval": {ForkReplay: true, ForkInterval: -8},
		"fork-paths":    {ForkReplay: true, ForkPaths: -1},
	} {
		if _, err := eng.Evaluate(ctx, s, model, o); err == nil {
			t.Errorf("%s: negative knob accepted", name)
		} else if !strings.Contains(err.Error(), "infer:") {
			t.Errorf("%s: error %q does not identify the source", name, err)
		}
	}

	base, err := eng.Evaluate(ctx, s, model, debugdet.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	forked, err := eng.Evaluate(ctx, s, model, debugdet.Options{Workers: 1, ForkReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Summary() != forked.Summary() {
		t.Errorf("forked evaluation differs:\nscratch: %s\nforked:  %s", base.Summary(), forked.Summary())
	}
}

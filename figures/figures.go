package figures

import (
	"debugdet/internal/eval"
)

// Options tunes experiment cost: inference budget per cell, corpus
// restriction, grid worker count, and a cancellation context.
type Options = eval.Options

// Cell is one (scenario, model) measurement.
type Cell = eval.Cell

// Fig1Row aggregates one determinism model over the corpus.
type Fig1Row = eval.Fig1Row

// PlaneRow is one scenario's classification-accuracy measurement.
type PlaneRow = eval.PlaneRow

// TrigRow is one RCSE-configuration ablation measurement.
type TrigRow = eval.TrigRow

// DynoKVScenarios lists the Dynamo-style replication family measured by
// TableDynoKV.
func DynoKVScenarios() []string { return append([]string(nil), eval.DynoKVScenarios...) }

// Fig1 reproduces Figure 1: the relaxation trend over the corpus.
func Fig1(o Options) ([]Fig1Row, error) { return eval.Fig1(o) }

// RenderFig1 prints the Fig. 1 series.
func RenderFig1(rows []Fig1Row) string { return eval.RenderFig1(rows) }

// Fig2 reproduces Figure 2: the Hypertable data-loss case study.
func Fig2(o Options) ([]Cell, error) { return eval.Fig2(o) }

// RenderFig2 prints the Fig. 2 points.
func RenderFig2(cells []Cell) string { return eval.RenderFig2(cells) }

// TableDF reproduces the §4 fidelity numbers (T-DF) from Fig. 2 cells.
func TableDF(cells []Cell) string { return eval.TableDF(cells) }

// TableOverhead reproduces the §4 recording-overhead comparison (T-OVH).
func TableOverhead(cells []Cell) string { return eval.TableOverhead(cells) }

// TableDynoKV evaluates every determinism model on the replication family
// (T-DYNO).
func TableDynoKV(o Options) ([]Cell, error) { return eval.TableDynoKV(o) }

// RenderTableDynoKV prints T-DYNO.
func RenderTableDynoKV(cells []Cell) string { return eval.RenderTableDynoKV(cells) }

// DiskScenarios lists the durability family measured by TableDisk.
func DiskScenarios() []string { return append([]string(nil), eval.DiskScenarios...) }

// TableDisk evaluates every determinism model on the durability family
// (T-DISK): crash-restart bugs on the simulated disk.
func TableDisk(o Options) ([]Cell, error) { return eval.TableDisk(o) }

// RenderTableDisk prints T-DISK.
func RenderTableDisk(cells []Cell) string { return eval.RenderTableDisk(cells) }

// FuzzScenarios lists the generated fuzz family measured by TableFuzz.
func FuzzScenarios() []string { return append([]string(nil), eval.FuzzScenarios...) }

// TableFuzz evaluates every determinism model on the generated scenario
// family (T-FUZZ). A nil gen keeps each family's pinned failing default;
// any pointed-to value — including 0 and negative raw fuzzer seeds —
// regenerates all four programs from that generator seed: the hook for
// rerunning a seed found by go test -fuzz through the full evaluation
// pipeline.
func TableFuzz(o Options, gen *int64) ([]Cell, error) { return eval.TableFuzz(o, gen) }

// RenderTableFuzz prints T-FUZZ.
func RenderTableFuzz(cells []Cell, gen *int64) string { return eval.RenderTableFuzz(cells, gen) }

// TablePlane evaluates the control-plane classifier against ground truth
// (T-PLANE).
func TablePlane(o Options) ([]PlaneRow, error) { return eval.TablePlane(o) }

// RenderTablePlane prints T-PLANE.
func RenderTablePlane(rows []PlaneRow) string { return eval.RenderTablePlane(rows) }

// TableDU renders the corpus-wide DU = DF×DE comparison (T-DU).
func TableDU(rows []Fig1Row, shrink Cell) string { return eval.TableDU(rows, shrink) }

// ShrinkCell evaluates failure determinism with shrink parameters,
// demonstrating DE > 1 (§3.2's execution-synthesis observation).
func ShrinkCell(o Options) (Cell, error) { return eval.ShrinkCell(o) }

// TableTriggers runs the §3.1 selector ablation (T-TRIG).
func TableTriggers(o Options) ([]TrigRow, error) { return eval.TableTriggers(o) }

// RenderTableTriggers prints T-TRIG.
func RenderTableTriggers(rows []TrigRow) string { return eval.RenderTableTriggers(rows) }

// CkptRow is one point of the checkpoint-interval trade-off (T-CKPT).
type CkptRow = eval.CkptRow

// TableCheckpoint measures the checkpoint-interval vs recording-size vs
// seek-latency trade-off (T-CKPT).
func TableCheckpoint(o Options) ([]CkptRow, error) { return eval.TableCheckpoint(o) }

// RenderTableCheckpoint prints T-CKPT.
func RenderTableCheckpoint(rows []CkptRow) string { return eval.RenderTableCheckpoint(rows) }

// StatRow is one deadlock-family measurement of static search seeding.
type StatRow = eval.StatRow

// StatScenarios lists the deadlock family measured by TableStat.
func StatScenarios() []string { return append([]string(nil), eval.StatScenarios...) }

// TableStat measures how detlint's static lock-order triage seeds the
// failure-determinism search (T-STAT): same accepted execution, less work.
func TableStat(o Options) ([]StatRow, error) { return eval.TableStat(o) }

// RenderTableStat prints T-STAT.
func RenderTableStat(rows []StatRow) string { return eval.RenderTableStat(rows) }

// ForkRow is one measurement of checkpoint-forked candidate execution.
type ForkRow = eval.ForkRow

// TableFork measures checkpoint-forked candidate execution (T-FORK):
// same outcome and attempts as from-scratch search, less executed work.
func TableFork(o Options) ([]ForkRow, error) { return eval.TableFork(o) }

// RenderTableFork prints T-FORK.
func RenderTableFork(rows []ForkRow) string { return eval.RenderTableFork(rows) }

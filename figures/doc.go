// Package figures is the public experiment harness of the debugdet SDK:
// it regenerates every figure and table of the paper's evaluation (see
// DESIGN.md §3 for the experiment index) over the built-in corpus. Each
// experiment returns structured rows and has a text renderer that prints
// the series the paper plots.
//
// The types are aliases for the engine-internal harness, so rows flow to
// external plotting tools unchanged. For ad-hoc grids over user-registered
// scenarios use Engine.EvaluateBatch instead — this package exists for the
// paper's fixed experiment set.
//
// Architecture: DESIGN.md §3 (experiment index) lists every figure and
// table this package regenerates and the paper claims each one checks.
package figures

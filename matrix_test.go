package debugdet

import (
	"testing"
)

// TestFullMatrix pins the qualitative outcome of every (scenario, model)
// cell: the repository's complete expected-results table. Any change that
// shifts a cell's debugging fidelity away from the documented value —
// recorder policies, replayer strategies, search behaviour, workload
// tuning — fails here first.
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is a long test")
	}
	// Expected DF per scenario and model, from EXPERIMENTS.md.
	expect := map[string]map[Model]float64{
		"sum": {
			Perfect: 1, Value: 1, Output: 0, Failure: 1, DebugRCSE: 1,
		},
		"overflow": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"msgdrop": {
			Perfect: 1, Value: 1, Output: 0.5, Failure: 0.5, DebugRCSE: 1,
		},
		"hyperkv-dataloss": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1.0 / 3.0, DebugRCSE: 1,
		},
		"bank": {
			Perfect: 1, Value: 1, Output: 0, Failure: 1, DebugRCSE: 1,
		},
		"deadlock": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
	}
	for name, models := range expect {
		name, models := name, models
		t.Run(name, func(t *testing.T) {
			s, err := ScenarioByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for model, wantDF := range models {
				ev, err := Evaluate(s, model, Options{ReplayBudget: 200})
				if err != nil {
					t.Fatalf("%s: %v", model, err)
				}
				got := ev.Utility.DF
				if diff := got - wantDF; diff > 0.001 || diff < -0.001 {
					t.Errorf("%s/%s: DF = %.3f, want %.3f (%s)",
						name, model, got, wantDF, ev.Fidelity)
				}
				// Universal invariants of the framework, checked on
				// every cell:
				if ev.Overhead < 1.0 {
					t.Errorf("%s/%s: overhead %v below 1.0", name, model, ev.Overhead)
				}
				if model == Failure && ev.LogBytes != 0 {
					t.Errorf("%s/failure: recorded %d bytes, want 0", name, ev.LogBytes)
				}
				if model == Perfect && ev.Replay.Attempts != 1 {
					t.Errorf("%s/perfect: %d attempts", name, ev.Replay.Attempts)
				}
			}
		})
	}
}

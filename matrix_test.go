package debugdet

import (
	"strings"
	"testing"
)

// TestFullMatrix pins the qualitative outcome of every (scenario, model)
// cell: the repository's complete expected-results table. Any change that
// shifts a cell's debugging fidelity away from the documented value —
// recorder policies, replayer strategies, search behaviour, workload
// tuning — fails here first.
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is a long test")
	}
	// Expected DF per scenario and model, from EXPERIMENTS.md.
	expect := map[string]map[Model]float64{
		"sum": {
			Perfect: 1, Value: 1, Output: 0, Failure: 1, DebugRCSE: 1,
		},
		"overflow": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"msgdrop": {
			Perfect: 1, Value: 1, Output: 0.5, Failure: 0.5, DebugRCSE: 1,
		},
		"hyperkv-dataloss": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1.0 / 3.0, DebugRCSE: 1,
		},
		"bank": {
			Perfect: 1, Value: 1, Output: 0, Failure: 1, DebugRCSE: 1,
		},
		"deadlock": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		// The dynokv replication family: output determinism lands on the
		// environment explanation for the stale read (DF 1/2); the other
		// cells reproduce the original cause.
		"dynokv-staleread": {
			Perfect: 1, Value: 1, Output: 0.5, Failure: 1, DebugRCSE: 1,
		},
		"dynokv-resurrect": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"dynokv-losthint": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		// The durability family (simulated-disk crash-restart bugs): the
		// fsync-reordering loss is the interesting row — output and failure
		// determinism satisfy their contracts with a device-loss
		// explanation (DF 1/2) while value determinism and RCSE reproduce
		// the real reordering.
		"disk-tornwal": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"disk-fsyncloss": {
			Perfect: 1, Value: 1, Output: 0.5, Failure: 0.5, DebugRCSE: 1,
		},
		"disk-snapres": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		// The generated fuzz family (internal/progen): small programs with
		// pinned failing defaults, so every model converges within budget;
		// the differential oracles in internal/progen sweep the wider seed
		// space where the relaxed models start missing.
		"fuzz-atomicity": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"fuzz-deadlock": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"fuzz-lostmsg": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"fuzz-oversell": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
		"fuzz-crashpoint": {
			Perfect: 1, Value: 1, Output: 1, Failure: 1, DebugRCSE: 1,
		},
	}
	if len(expect) != len(Scenarios()) {
		t.Fatalf("matrix covers %d scenarios, corpus has %d", len(expect), len(Scenarios()))
	}
	for name, models := range expect {
		name, models := name, models
		t.Run(name, func(t *testing.T) {
			s, err := ScenarioByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for model, wantDF := range models {
				ev, err := Evaluate(s, model, Options{ReplayBudget: 200})
				if err != nil {
					t.Fatalf("%s: %v", model, err)
				}
				got := ev.Utility.DF
				if diff := got - wantDF; diff > 0.001 || diff < -0.001 {
					t.Errorf("%s/%s: DF = %.3f, want %.3f (%s)",
						name, model, got, wantDF, ev.Fidelity)
				}
				// Universal invariants of the framework, checked on
				// every cell:
				if ev.Overhead < 1.0 {
					t.Errorf("%s/%s: overhead %v below 1.0", name, model, ev.Overhead)
				}
				if model == Failure && ev.LogBytes != 0 {
					t.Errorf("%s/failure: recorded %d bytes, want 0", name, ev.LogBytes)
				}
				if model == Perfect && ev.Replay.Attempts != 1 {
					t.Errorf("%s/perfect: %d attempts", name, ev.Replay.Attempts)
				}
			}
		})
	}
}

// TestDynoKVRCSEBeatsFailureDeterminism pins the family-level claim the
// replication scenarios were added to make: on genuinely distributed root
// causes, debug determinism via RCSE is at least as useful as failure
// determinism (DU = DF × DE) while recording at near-native overhead.
func TestDynoKVRCSEBeatsFailureDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluations are long tests")
	}
	for _, name := range ScenarioNames() {
		if !strings.HasPrefix(name, "dynokv-") || strings.HasSuffix(name, "-fixed") {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := ScenarioByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rcse, err := Evaluate(s, DebugRCSE, Options{ReplayBudget: 200})
			if err != nil {
				t.Fatal(err)
			}
			fail, err := Evaluate(s, Failure, Options{ReplayBudget: 200})
			if err != nil {
				t.Fatal(err)
			}
			if rcse.Utility.DU < fail.Utility.DU {
				t.Errorf("RCSE DU %.3f < failure DU %.3f", rcse.Utility.DU, fail.Utility.DU)
			}
			if rcse.Utility.DF != 1 {
				t.Errorf("RCSE DF = %.3f, want 1", rcse.Utility.DF)
			}
			// The sweet spot also requires near-native recording cost:
			// RCSE must record strictly less than value determinism.
			value, err := Evaluate(s, Value, Options{ReplayBudget: 200})
			if err != nil {
				t.Fatal(err)
			}
			if rcse.LogBytes >= value.LogBytes {
				t.Errorf("RCSE log %d bytes >= value log %d bytes", rcse.LogBytes, value.LogBytes)
			}
			if rcse.Overhead >= value.Overhead {
				t.Errorf("RCSE overhead %.2f >= value overhead %.2f", rcse.Overhead, value.Overhead)
			}
		})
	}
}

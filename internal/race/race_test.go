package race

import (
	"testing"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// buildRacy runs two threads that load+store a shared cell with no locking.
func buildRacy(seed int64, locked bool) *vm.Result {
	m := vm.New(vm.Config{Seed: seed, CollectTrace: true})
	c := m.NewCell("shared", trace.Int(0))
	mu := m.NewMutex("mu")
	s := m.Site("w.access")
	sl := m.Site("w.lock")
	sp := m.Site("main.spawn")
	w := func(t *vm.Thread) {
		for i := 0; i < 10; i++ {
			if locked {
				t.Lock(sl, mu)
			}
			v := t.Load(s, c)
			t.Store(s, c, trace.Int(v.AsInt()+1))
			if locked {
				t.Unlock(sl, mu)
			}
		}
	}
	return m.Run(func(t *vm.Thread) {
		t.Spawn(sp, "a", w)
		t.Spawn(sp, "b", w)
	})
}

func TestDetectsRaceOnUnlockedCounter(t *testing.T) {
	found := false
	for seed := int64(0); seed < 10; seed++ {
		res := buildRacy(seed, false)
		if len(Analyze(res.Trace)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no race detected on unlocked counter across 10 seeds")
	}
}

func TestNoRaceWithLocking(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := buildRacy(seed, true)
		if rs := Analyze(res.Trace); len(rs) > 0 {
			t.Fatalf("seed %d: false positive on locked counter: %v", seed, rs[0])
		}
	}
}

func TestNoRaceOnChannelHandoff(t *testing.T) {
	// Producer writes a cell, sends a token; consumer receives, then reads
	// the cell. The channel edge orders the accesses.
	for seed := int64(0); seed < 10; seed++ {
		m := vm.New(vm.Config{Seed: seed, CollectTrace: true})
		c := m.NewCell("data", trace.Int(0))
		ch := m.NewChan("tok", 1)
		s := m.Site("s")
		sp := m.Site("spawn")
		res := m.Run(func(t *vm.Thread) {
			t.Spawn(sp, "prod", func(t *vm.Thread) {
				t.Store(s, c, trace.Int(99))
				t.Send(s, ch, trace.Int(1))
			})
			t.Spawn(sp, "cons", func(t *vm.Thread) {
				t.Recv(s, ch)
				t.Load(s, c)
			})
		})
		if rs := Analyze(res.Trace); len(rs) > 0 {
			t.Fatalf("seed %d: false positive across channel handoff: %v", seed, rs[0])
		}
	}
}

func TestNoRaceAcrossSpawnEdge(t *testing.T) {
	// Parent writes before spawning; child reads. Spawn orders them.
	m := vm.New(vm.Config{Seed: 1, CollectTrace: true})
	c := m.NewCell("init", trace.Int(0))
	s := m.Site("s")
	sp := m.Site("spawn")
	res := m.Run(func(t *vm.Thread) {
		t.Store(s, c, trace.Int(7))
		t.Spawn(sp, "child", func(t *vm.Thread) {
			t.Load(s, c)
		})
	})
	if rs := Analyze(res.Trace); len(rs) > 0 {
		t.Fatalf("false positive across spawn edge: %v", rs[0])
	}
}

func TestWriteWriteRaceDetected(t *testing.T) {
	found := false
	for seed := int64(0); seed < 10; seed++ {
		m := vm.New(vm.Config{Seed: seed, CollectTrace: true})
		c := m.NewCell("cell", trace.Int(0))
		s := m.Site("s")
		sp := m.Site("spawn")
		res := m.Run(func(t *vm.Thread) {
			t.Spawn(sp, "a", func(t *vm.Thread) { t.Store(s, c, trace.Int(1)) })
			t.Spawn(sp, "b", func(t *vm.Thread) { t.Store(s, c, trace.Int(2)) })
		})
		if len(Analyze(res.Trace)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("write-write race never detected")
	}
}

func TestSameThreadAccessesNeverRace(t *testing.T) {
	m := vm.New(vm.Config{Seed: 0, CollectTrace: true})
	c := m.NewCell("cell", trace.Int(0))
	s := m.Site("s")
	res := m.Run(func(t *vm.Thread) {
		for i := 0; i < 20; i++ {
			t.Store(s, c, trace.Int(int64(i)))
			t.Load(s, c)
		}
	})
	if rs := Analyze(res.Trace); len(rs) > 0 {
		t.Fatalf("single-threaded program reported a race: %v", rs[0])
	}
}

func TestOnlineDetectorChargesCostAndFiresCallback(t *testing.T) {
	fired := 0
	var res *vm.Result
	for seed := int64(0); seed < 20 && fired == 0; seed++ {
		d := NewDetector(Options{SampleRate: 1, CheckCost: 25, OnRace: func(Race) { fired++ }})
		m := vm.New(vm.Config{Seed: seed, CollectTrace: true})
		c := m.NewCell("shared", trace.Int(0))
		s := m.Site("s")
		sp := m.Site("spawn")
		m.Attach(d)
		w := func(t *vm.Thread) {
			for i := 0; i < 10; i++ {
				v := t.Load(s, c)
				t.Store(s, c, trace.Int(v.AsInt()+1))
			}
		}
		res = m.Run(func(t *vm.Thread) {
			t.Spawn(sp, "a", w)
			t.Spawn(sp, "b", w)
		})
	}
	if fired == 0 {
		t.Fatal("online detector never fired on racy program")
	}
	if res.RecordCycles == 0 {
		t.Fatal("online detection charged no cost")
	}
}

func TestSamplingReducesChecks(t *testing.T) {
	run := func(rate uint64) uint64 {
		d := NewDetector(Options{SampleRate: rate})
		m := vm.New(vm.Config{Seed: 5, CollectTrace: false})
		c := m.NewCell("c", trace.Int(0))
		s := m.Site("s")
		m.Attach(d)
		m.Run(func(t *vm.Thread) {
			for i := 0; i < 100; i++ {
				t.Store(s, c, trace.Int(int64(i)))
			}
		})
		return d.Checked()
	}
	full, sampled := run(1), run(10)
	if sampled >= full {
		t.Fatalf("sampling did not reduce checks: full=%d sampled=%d", full, sampled)
	}
}

func TestRaceDeduplication(t *testing.T) {
	// The same racy site pair executed many times must be reported once.
	var all []Race
	for seed := int64(0); seed < 20; seed++ {
		res := buildRacy(seed, false)
		rs := Analyze(res.Trace)
		if len(rs) > 0 {
			all = rs
			break
		}
	}
	if len(all) == 0 {
		t.Skip("no race observed in sweep")
	}
	keys := make(map[string]int)
	for _, r := range all {
		keys[r.Key()]++
	}
	for k, n := range keys {
		if n > 1 {
			t.Fatalf("race %s reported %d times", k, n)
		}
	}
}

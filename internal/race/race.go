// Package race implements a happens-before data-race detector over VM
// event streams.
//
// The detector maintains vector clocks per thread, per mutex and per
// channel message, and checks every pair of conflicting memory accesses
// (same cell, at least one store) for concurrency. It runs in two roles:
//
//   - offline, over a recorded oracle trace, to enumerate the racy pairs an
//     execution actually contained (used when enumerating potential root
//     causes and when measuring debugging fidelity), and
//   - online, attached to a machine as an Observer with optional access
//     sampling, where it is the paper's §3.1.3 "potential-bug detector"
//     trigger: detecting a race dials recording fidelity up.
//
// The online mode models DataCollider-style low-overhead detection [10]:
// synchronization is always tracked (cheap), while memory-access checking
// is sampled at a configurable rate, trading detection probability for
// runtime cost.
package race

import (
	"fmt"
	"sort"

	"debugdet/internal/trace"
	"debugdet/internal/vclock"
)

// Race is one detected racy pair: two accesses to the same cell, not
// ordered by happens-before, at least one of which is a store.
type Race struct {
	Obj    trace.ObjID // the cell raced on
	First  trace.Event // earlier access in the observed order
	Second trace.Event // later access
}

// Key returns a stable identity for deduplication: races are reported once
// per (object, site pair) regardless of how many dynamic instances occur.
func (r Race) Key() string {
	a, b := r.First.Site, r.Second.Site
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("%d:%d-%d", r.Obj, a, b)
}

// String renders the race for diagnostics.
func (r Race) String() string {
	return fmt.Sprintf("race on obj %d: %s/%s at seq %d vs %s/%s at seq %d",
		r.Obj, r.First.Kind, raceRole(r.First), r.First.Seq,
		r.Second.Kind, raceRole(r.Second), r.Second.Seq)
}

func raceRole(e trace.Event) string {
	if e.Kind == trace.EvStore {
		return "write"
	}
	return "read"
}

// Options configures a Detector.
type Options struct {
	// SampleRate samples memory-access checking: 1 checks every access
	// (full detection), k > 1 checks roughly one in k accesses,
	// deterministically by sequence number. Synchronization tracking is
	// never sampled. 0 means 1.
	SampleRate uint64
	// CheckCost is the virtual-cycle cost charged per checked access when
	// the detector runs online. Offline analysis passes 0.
	CheckCost uint64
	// OnRace, when set, is invoked once per deduplicated race as it is
	// discovered (the RCSE trigger hook).
	OnRace func(Race)
}

type access struct {
	ev trace.Event
	vc vclock.VC
}

type cellHistory struct {
	lastWrite *access
	reads     []access // reads since the last write
}

// Detector is a happens-before race detector. It implements vm.Observer.
type Detector struct {
	opts Options

	threadVC map[trace.ThreadID]vclock.VC
	lockVC   map[trace.ObjID]vclock.VC
	chanVC   map[trace.ObjID][]vclock.VC // FIFO of pending send clocks
	spawnVC  map[trace.ThreadID]vclock.VC

	cells map[trace.ObjID]*cellHistory

	seen    map[string]bool
	races   []Race
	checked uint64
}

// NewDetector returns a detector with the given options.
func NewDetector(opts Options) *Detector {
	if opts.SampleRate == 0 {
		opts.SampleRate = 1
	}
	return &Detector{
		opts:     opts,
		threadVC: make(map[trace.ThreadID]vclock.VC),
		lockVC:   make(map[trace.ObjID]vclock.VC),
		chanVC:   make(map[trace.ObjID][]vclock.VC),
		spawnVC:  make(map[trace.ThreadID]vclock.VC),
		cells:    make(map[trace.ObjID]*cellHistory),
		seen:     make(map[string]bool),
	}
}

// Races returns the deduplicated races found so far, in discovery order.
func (d *Detector) Races() []Race { return d.races }

// Checked returns how many memory accesses were actually checked (after
// sampling), for overhead accounting in the trigger-ablation experiments.
func (d *Detector) Checked() uint64 { return d.checked }

// clock returns the thread's current clock, initializing from a pending
// spawn edge if this is the thread's first event.
func (d *Detector) clock(tid trace.ThreadID) vclock.VC {
	if vc, ok := d.threadVC[tid]; ok {
		return vc
	}
	var vc vclock.VC
	if parent, ok := d.spawnVC[tid]; ok {
		vc = parent.Clone()
		delete(d.spawnVC, tid)
	} else {
		vc = vclock.New(int(tid) + 1)
	}
	d.threadVC[tid] = vc
	return vc
}

// OnEvent implements vm.Observer. The returned cost models the online
// detector's runtime overhead; it is zero for pure synchronization events
// and for skipped (unsampled) accesses.
func (d *Detector) OnEvent(e *trace.Event) uint64 {
	if e.TID < 0 {
		return 0
	}
	tid := e.TID
	vc := d.clock(tid)
	var cost uint64

	//lint:exhaustive-default vector clocks advance only on sync and memory events; the remaining kinds are thread-local and cannot race
	switch e.Kind {
	case trace.EvLock:
		if rel, ok := d.lockVC[e.Obj]; ok {
			vc = vc.Join(rel)
		}
	case trace.EvUnlock:
		d.lockVC[e.Obj] = vc.Clone()
	case trace.EvSend:
		d.chanVC[e.Obj] = append(d.chanVC[e.Obj], vc.Clone())
	case trace.EvRecv:
		if q := d.chanVC[e.Obj]; len(q) > 0 {
			vc = vc.Join(q[0])
			d.chanVC[e.Obj] = q[1:]
		}
	case trace.EvSpawn:
		// Child's initial clock is the parent's at the spawn point.
		child := trace.ThreadID(e.Obj)
		d.spawnVC[child] = vc.Clone()
	case trace.EvLoad, trace.EvStore:
		if e.Seq%d.opts.SampleRate == 0 {
			d.checkAccess(e, vc)
			d.checked++
			cost = d.opts.CheckCost
		}
	}

	vc = vc.Tick(int(tid))
	d.threadVC[tid] = vc
	return cost
}

// checkAccess compares the access against the cell's history and records
// any races.
func (d *Detector) checkAccess(e *trace.Event, vc vclock.VC) {
	h := d.cells[e.Obj]
	if h == nil {
		h = &cellHistory{}
		d.cells[e.Obj] = h
	}
	cur := access{ev: *e, vc: vc.Clone()}

	if e.Kind == trace.EvStore {
		if h.lastWrite != nil && !h.lastWrite.vc.HappensBefore(vc) && h.lastWrite.ev.TID != e.TID {
			d.report(Race{Obj: e.Obj, First: h.lastWrite.ev, Second: *e})
		}
		for i := range h.reads {
			r := &h.reads[i]
			if r.ev.TID != e.TID && !r.vc.HappensBefore(vc) {
				d.report(Race{Obj: e.Obj, First: r.ev, Second: *e})
			}
		}
		h.lastWrite = &cur
		h.reads = h.reads[:0]
		return
	}
	// Load: races only with the last write.
	if h.lastWrite != nil && h.lastWrite.ev.TID != e.TID && !h.lastWrite.vc.HappensBefore(vc) {
		d.report(Race{Obj: e.Obj, First: h.lastWrite.ev, Second: *e})
	}
	h.reads = append(h.reads, cur)
}

func (d *Detector) report(r Race) {
	k := r.Key()
	if d.seen[k] {
		return
	}
	d.seen[k] = true
	d.races = append(d.races, r)
	if d.opts.OnRace != nil {
		d.opts.OnRace(r)
	}
}

// Analyze runs full (unsampled) detection over a recorded trace and returns
// the deduplicated races sorted by first occurrence.
func Analyze(l *trace.Log) []Race {
	d := NewDetector(Options{SampleRate: 1})
	for i := range l.Events {
		d.OnEvent(&l.Events[i])
	}
	rs := d.Races()
	sort.Slice(rs, func(i, j int) bool { return rs[i].Second.Seq < rs[j].Second.Seq })
	return rs
}

// RacesOnObject filters races to those on a specific cell.
func RacesOnObject(rs []Race, obj trace.ObjID) []Race {
	var out []Race
	for _, r := range rs {
		if r.Obj == obj {
			out = append(out, r)
		}
	}
	return out
}

// Package sdkpurity implements the determinism suite's SDK-boundary
// analyzer: commands and examples must build against the public SDK
// (debugdet, debugdet/scen, debugdet/sim, debugdet/trace,
// debugdet/figures) and never reach into debugdet/internal. The check
// replaces the old CI grep gate (`grep -rn '"debugdet/internal' cmd
// examples`) with a type-aware pass that understands allowlists and
// reports positions.
//
// The boundary keeps the examples honest: everything a demo does must be
// possible for an external user of the SDK, so an internal capability a
// demo needs is a missing public API, not an import to sneak in.
package sdkpurity

import (
	"strings"

	"debugdet/internal/lint/analysis"
)

// ClientRoots are the package-path prefixes whose packages must stay on
// the public SDK. Tests override this for fixture trees.
var ClientRoots = []string{"debugdet/cmd", "debugdet/examples"}

// InternalPrefix is the forbidden import subtree.
var InternalPrefix = "debugdet/internal"

// Allow maps a client package to the internal prefixes it may import,
// each with a written justification. cmd/detlint is the lint driver
// itself — it exists to run internal/lint and is not an SDK client.
var Allow = map[string]map[string]string{
	"debugdet/cmd/detlint": {
		"debugdet/internal/lint": "the lint driver fronts internal/lint; it is tooling, not an SDK client",
	},
}

// Analyzer is the sdkpurity pass.
var Analyzer = &analysis.Analyzer{
	Name: "sdkpurity",
	Doc:  "commands and examples must import only the public SDK, never debugdet/internal",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	client := false
	for _, root := range ClientRoots {
		if pass.PkgPath == root || strings.HasPrefix(pass.PkgPath, root+"/") {
			client = true
			break
		}
	}
	if !client {
		return nil, nil
	}
	allowed := Allow[pass.PkgPath]
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != InternalPrefix && !strings.HasPrefix(p, InternalPrefix+"/") {
				continue
			}
			if allowedPrefix(allowed, p) {
				continue
			}
			pass.Reportf(imp.Pos(),
				"%s imports internal package %s; commands and examples must use the public SDK (or add an allowlisted justification in sdkpurity.Allow)",
				pass.PkgPath, p)
		}
	}
	return nil, nil
}

// allowedPrefix reports whether the import path falls under an allowlisted
// prefix for this package.
func allowedPrefix(allowed map[string]string, p string) bool {
	for prefix := range allowed {
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			return true
		}
	}
	return false
}

// Package guts is fixture internals that clients must not import.
package guts

// V exists so imports of this package type-check.
var V = 1

// Command tool is a fixture client that reaches into internals.
package main

import _ "clientfix/internal/guts" // want `imports internal package clientfix/internal/guts`

func main() {}

// Command okcmd is a fixture client with an allowlisted internal import —
// the cmd/detlint arrangement.
package main

import _ "clientfix/internal/guts"

func main() {}

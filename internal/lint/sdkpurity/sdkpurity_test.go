package sdkpurity_test

import (
	"testing"

	"debugdet/internal/lint/analysistest"
	"debugdet/internal/lint/sdkpurity"
)

func TestFixtures(t *testing.T) {
	defer func(roots []string, prefix string, allow map[string]map[string]string) {
		sdkpurity.ClientRoots, sdkpurity.InternalPrefix, sdkpurity.Allow = roots, prefix, allow
	}(sdkpurity.ClientRoots, sdkpurity.InternalPrefix, sdkpurity.Allow)
	sdkpurity.ClientRoots = []string{"clientfix/cmd"}
	sdkpurity.InternalPrefix = "clientfix/internal"
	sdkpurity.Allow = map[string]map[string]string{
		"clientfix/cmd/okcmd": {
			"clientfix/internal/guts": "fixture stand-in for the detlint allowance",
		},
	}
	analysistest.Run(t, analysistest.Testdata(), sdkpurity.Analyzer,
		"clientfix/cmd/tool", "clientfix/cmd/okcmd", "clientfix/internal/guts")
}

// Package evexhaustive implements the determinism suite's exhaustiveness
// analyzer: every switch over a registered enum type (trace.EventKind,
// trace.ValueKind, vm's opCode) must handle every constant of the type, or
// carry a default clause annotated with a justified
// //lint:exhaustive-default directive.
//
// The repo threads EventKind by hand through codec, JSON, race, plane,
// recorder, value-replay, flight-recorder and VM cost/peek/snapshot
// switches; a new event family that silently skips one of those layers is
// exactly the bug class this analyzer turns into a compile-time error
// (PR 7 wired five disk kinds through every one of those switches by
// hand).
package evexhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"debugdet/internal/lint/analysis"
)

// Directive is the annotation name that justifies a partial switch.
const Directive = "exhaustive-default"

// EnumTypes lists the enum types whose switches must be exhaustive, as
// "pkgpath.TypeName". Tests override it to point at fixture types.
var EnumTypes = []string{
	"debugdet/internal/trace.EventKind",
	"debugdet/internal/trace.ValueKind",
	"debugdet/internal/vm.opCode",
}

// Analyzer is the evexhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name: "evexhaustive",
	Doc: "switches over trace event/value kinds (and vm op codes) must handle " +
		"every constant or justify their default with //lint:exhaustive-default",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	enums := make(map[string]bool, len(EnumTypes))
	for _, e := range EnumTypes {
		enums[e] = true
	}
	for _, f := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named := analysis.NamedType(tv.Type)
			if named == nil || !enums[analysis.TypePath(named)] {
				return true
			}
			checkSwitch(pass, dirs, sw, named)
			return true
		})
	}
	return nil, nil
}

// checkSwitch verifies one enum switch.
func checkSwitch(pass *analysis.Pass, dirs *analysis.Directives, sw *ast.SwitchStmt, enum *types.Named) {
	wanted := enumConstants(enum)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil {
				continue
			}
			if k, exact := constant.Uint64Val(tv.Value); exact {
				delete(wanted, k)
			}
		}
	}
	if len(wanted) == 0 {
		return
	}
	missing := missingNames(wanted)
	typeName := enum.Obj().Name()
	if dir, ok := directiveFor(pass, dirs, sw, defaultClause); ok {
		if dir.Justification == "" {
			pos := sw.Pos()
			if defaultClause != nil {
				pos = defaultClause.Pos()
			}
			pass.Reportf(pos,
				"//lint:%s needs a justification for the unhandled %s constants (%s)",
				Directive, typeName, missing)
		}
		return
	}
	if defaultClause != nil {
		pass.Reportf(defaultClause.Pos(),
			"default clause hides unhandled %s constants %s; handle them or annotate the default with //lint:%s <why>",
			typeName, missing, Directive)
		return
	}
	pass.Reportf(sw.Pos(),
		"switch on %s does not handle %s; add cases or annotate the switch with //lint:%s <why>",
		typeName, missing, Directive)
}

// directiveFor looks for the exhaustive-default annotation on the switch
// statement or on the default clause (nil when the switch has none).
func directiveFor(pass *analysis.Pass, dirs *analysis.Directives, sw *ast.SwitchStmt, def *ast.CaseClause) (analysis.Directive, bool) {
	if def != nil {
		if d, ok := dirs.At(pass.Fset, def.Pos(), Directive); ok {
			return d, true
		}
	}
	return dirs.At(pass.Fset, sw.Pos(), Directive)
}

// enumConstants collects the constants of the enum declared in its
// package, keyed by value so aliased constants collapse. Unexported
// sentinels (kindCount-style) are excluded when the enum has exported
// constants; fully-unexported enums include everything.
func enumConstants(enum *types.Named) map[uint64]string {
	scope := enum.Obj().Pkg().Scope()
	hasExported := false
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok &&
			types.Identical(c.Type(), enum) && token.IsExported(name) {
			hasExported = true
			break
		}
	}
	out := make(map[uint64]string)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), enum) {
			continue
		}
		if hasExported && !token.IsExported(name) {
			continue
		}
		if k, exact := constant.Uint64Val(c.Val()); exact {
			if _, dup := out[k]; !dup {
				out[k] = name
			}
		}
	}
	return out
}

// missingNames renders the unhandled constants deterministically, in value
// order.
func missingNames(wanted map[uint64]string) string {
	keys := make([]uint64, 0, len(wanted))
	for k := range wanted {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	names := make([]string, len(keys))
	for i, k := range keys {
		names[i] = wanted[k]
	}
	return fmt.Sprintf("[%s]", strings.Join(names, " "))
}

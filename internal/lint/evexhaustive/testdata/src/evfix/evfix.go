// Package evfix is the evexhaustive golden fixture: a miniature
// trace.EventKind with codec-style switches in every shape the analyzer
// distinguishes.
package evfix

// Kind mirrors trace.EventKind's shape.
type Kind uint8

// Fixture kinds: exported constants plus an unexported sentinel that
// exhaustiveness must ignore (the kindCount pattern).
const (
	KNone Kind = iota
	KRead
	KWrite
	kCount
)

// full handles every kind: clean.
func full(k Kind) int {
	switch k {
	case KNone:
		return 0
	case KRead:
		return 1
	case KWrite:
		return 2
	}
	return -1
}

// codecWrite is the seeded regression: KWrite was added to the enum but
// never wired through this codec switch.
func codecWrite(k Kind) int {
	switch k { // want `switch on Kind does not handle \[KWrite\]`
	case KNone:
		return 0
	case KRead:
		return 1
	}
	return -1
}

// hiddenDefault silently swallows two kinds.
func hiddenDefault(k Kind) int {
	switch k {
	case KNone:
		return 0
	default: // want `default clause hides unhandled Kind constants \[KRead KWrite\]`
		return -1
	}
}

// justifiedDefault carries the annotation with a reason: clean.
func justifiedDefault(k Kind) int {
	switch k {
	case KRead, KWrite:
		return 1
	//lint:exhaustive-default KNone is filtered out by the caller
	default:
		return 0
	}
}

// justifiedSwitch annotates a filter switch with no default: clean.
func justifiedSwitch(k Kind) bool {
	//lint:exhaustive-default only the payload kinds matter to this filter
	switch k {
	case KRead, KWrite:
		return true
	}
	return false
}

// bareDirective has the annotation but no reason.
func bareDirective(k Kind) int {
	switch k {
	case KNone:
		return 0
	//lint:exhaustive-default
	default: // want `needs a justification`
		return -1
	}
}

var _ = []interface{}{full, codecWrite, hiddenDefault, justifiedDefault, justifiedSwitch, bareDirective}

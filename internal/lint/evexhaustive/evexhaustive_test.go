package evexhaustive_test

import (
	"testing"

	"debugdet/internal/lint/analysistest"
	"debugdet/internal/lint/evexhaustive"
)

func TestFixtures(t *testing.T) {
	defer func(old []string) { evexhaustive.EnumTypes = old }(evexhaustive.EnumTypes)
	evexhaustive.EnumTypes = []string{"evfix.Kind"}
	analysistest.Run(t, analysistest.Testdata(), evexhaustive.Analyzer, "evfix")
}

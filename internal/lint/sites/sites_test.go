package sites

import (
	"testing"

	"debugdet/internal/workload"
)

// lockOrderFamily is the triage ground truth: the corpus scenarios whose
// programs contain a genuine lock-order inversion. It mirrors the
// RootCause IDs the workload catalog declares, and the sweep below holds
// the dynamic triage to it — the same bar the static lockorder analyzer's
// fixtures are held to.
var lockOrderFamily = map[string]bool{
	"deadlock":      true,
	"fuzz-deadlock": true,
}

// TestCorpusSweep runs lock-order triage over the full corpus: the two
// deadlock-family scenarios are flagged, every other scenario stays
// clean. This is the static/dynamic agreement check — a triage false
// positive here would poison the search seeding downstream.
func TestCorpusSweep(t *testing.T) {
	all := workload.All()
	if len(all) < 10 {
		t.Fatalf("corpus unexpectedly small: %d scenarios", len(all))
	}
	for _, s := range all {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			suspects, runs := TriageSeeds(s, s.DefaultSeed+1, 0, nil)
			if runs == 0 {
				t.Fatal("triage spent no runs")
			}
			if lockOrderFamily[s.Name] {
				if len(suspects) == 0 {
					t.Fatalf("lock-order scenario not flagged")
				}
			} else if len(suspects) != 0 {
				t.Fatalf("clean scenario flagged: %v", suspects)
			}
		})
	}
}

// TestTriageSuspectShape pins the triaged suspect for the hand-written
// deadlock scenario: the mutex pair, both locker threads, and at least
// one acquisition site.
func TestTriageSuspectShape(t *testing.T) {
	s, err := workload.ByName("deadlock")
	if err != nil {
		t.Fatal(err)
	}
	suspects, _ := TriageSeeds(s, s.DefaultSeed+1, 0, nil)
	if len(suspects) != 1 {
		t.Fatalf("suspects = %v, want exactly one", suspects)
	}
	got := suspects[0]
	if got.Locks != [2]string{"A", "B"} {
		t.Errorf("locks = %v, want [A B]", got.Locks)
	}
	if len(got.Threads) != 2 || got.Threads[0] != "ab" || got.Threads[1] != "ba" {
		t.Errorf("threads = %v, want [ab ba]", got.Threads)
	}
	if len(got.Sites) == 0 {
		t.Error("no acquisition sites recorded")
	}
	if got.Objs[0] == got.Objs[1] {
		t.Errorf("lock objects not distinct: %v", got.Objs)
	}
}

// Package sites turns lock-order evidence into search hints: it runs the
// same Goodlock graph the detlint lockorder analyzer uses over a recorded
// execution and emits Suspects — lock pairs acquired in opposite orders
// without a common gate — that the inference engine (internal/infer) and
// the RCSE recorder (internal/rcse) use to prioritize their work.
//
// The static analyzer sees source; the VM sees traces. Both feed the one
// lockorder.Graph, so a pair flagged here is exactly a pair the analyzer
// would flag if it could see through the scenario's closures — and the
// corpus sweep test holds the two views to the same ground truth.
package sites

import (
	"fmt"
	"sort"

	"debugdet/internal/lint/lockorder"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Suspect is one implicated lock pair: two locks some contexts acquired
// in opposite orders with no shared gate lock — the ABBA precondition.
type Suspect struct {
	// Locks are the two lock names, sorted.
	Locks [2]string
	// Objs are the lock object IDs, aligned with Locks.
	Objs [2]trace.ObjID
	// Sites are the acquisition sites of the conflicting edges, sorted
	// and deduplicated: where full-fidelity recording pays off.
	Sites []trace.SiteID
	// Threads are the names of the acquiring contexts, sorted and
	// deduplicated.
	Threads []string
}

// String renders the suspect for reports.
func (s Suspect) String() string {
	return fmt.Sprintf("%s<->%s (threads %v)", s.Locks[0], s.Locks[1], s.Threads)
}

// Triage feeds one run's lock discipline through the Goodlock graph and
// returns the suspect lock pairs. A single run only exhibits a cycle when
// it happened to interleave both acquisition orders before finishing (or
// deadlocking); TriageSeeds composes several runs for robust evidence.
func Triage(v *scenario.RunView) []Suspect {
	g := lockorder.NewGraph()
	feed(g, v, 0)
	return FromCycles(g.Cycles())
}

// TriageSeeds triages s across several executions: it runs tries seeds
// starting at seed (0 = 16), feeds every run — completed or deadlocked —
// into one shared lock-order graph, and returns the combined suspects.
// Accumulating across runs is the standard Goodlock move: one run rarely
// exhibits both acquisition orders, but mutex objects and sites are
// registered deterministically, so their IDs are stable across runs of a
// scenario at fixed parameters and the evidence composes. p overrides
// scenario parameters (nil = defaults). runs is the executions spent.
func TriageSeeds(s *scenario.Scenario, seed int64, tries int, p scenario.Params) (suspects []Suspect, runs int) {
	if tries <= 0 {
		tries = 16
	}
	g := lockorder.NewGraph()
	for i := 0; i < tries; i++ {
		runs++
		feed(g, s.Exec(scenario.ExecOptions{Seed: seed + int64(i), Params: p}), i)
	}
	return FromCycles(g.Cycles()), runs
}

// runThread scopes an acquisition context to one run of the scan, so a
// deadlocked run's still-held locks cannot gate or extend another run's
// edges.
type runThread struct {
	run int
	tid trace.ThreadID
}

// feed replays one run's lock events into the graph. The VM emits EvLock
// on successful acquisition only — a thread blocked in a deadlock
// contributes no edge for the lock it never got.
func feed(g *lockorder.Graph, v *scenario.RunView, run int) {
	for i := range v.Trace.Events {
		e := &v.Trace.Events[i]
		//lint:exhaustive-default lock-order triage consumes only the mutex events; every other kind is deliberately invisible to the graph
		switch e.Kind {
		case trace.EvLock:
			g.Acquire(bodyID(v.Machine, e.TID, run), lockKey(v.Machine, e.Obj), e.Site)
		case trace.EvUnlock:
			g.Release(bodyID(v.Machine, e.TID, run), lockKey(v.Machine, e.Obj))
		}
	}
}

// FromCycles converts lock-order cycles (whose keys carry trace.ObjID
// identities, as Triage builds them) into Suspects.
func FromCycles(cycles []lockorder.Cycle) []Suspect {
	var out []Suspect
	for _, c := range cycles {
		out = append(out, fromCycle(c))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Locks[0] != out[j].Locks[0] {
			return out[i].Locks[0] < out[j].Locks[0]
		}
		return out[i].Locks[1] < out[j].Locks[1]
	})
	return out
}

func fromCycle(c lockorder.Cycle) Suspect {
	var s Suspect
	siteSeen := map[trace.SiteID]bool{}
	threadSeen := map[string]bool{}
	for i, e := range c.Edges {
		if i == 0 {
			k := [2]lockorder.Key{e.From, e.To}
			if k[1].Name < k[0].Name {
				k[0], k[1] = k[1], k[0]
			}
			for j, kk := range k {
				s.Locks[j] = kk.Name
				if id, ok := kk.Obj.(trace.ObjID); ok {
					s.Objs[j] = id
				}
			}
		}
		if id, ok := e.Tag.(trace.SiteID); ok && !siteSeen[id] {
			siteSeen[id] = true
			s.Sites = append(s.Sites, id)
		}
		if !threadSeen[e.Body.Name] {
			threadSeen[e.Body.Name] = true
			s.Threads = append(s.Threads, e.Body.Name)
		}
	}
	sort.Slice(s.Sites, func(i, j int) bool { return s.Sites[i] < s.Sites[j] })
	sort.Strings(s.Threads)
	return s
}

// bodyID is the trace-triage acquisition context: one thread of one run.
func bodyID(m *vm.Machine, tid trace.ThreadID, run int) lockorder.BodyID {
	name := m.ThreadName(tid)
	if name == "" {
		name = fmt.Sprintf("thread#%d", tid)
	}
	return lockorder.BodyID{ID: runThread{run: run, tid: tid}, Name: name}
}

// lockKey is the trace-triage lock identity: one mutex object.
func lockKey(m *vm.Machine, obj trace.ObjID) lockorder.Key {
	name := m.MutexName(obj)
	if name == "" {
		name = fmt.Sprintf("mutex#%d", obj)
	}
	return lockorder.Key{Obj: obj, Name: name}
}

// Package load turns source directories into type-checked packages for the
// detlint analyzers. It is the suite's replacement for
// golang.org/x/tools/go/packages, built on the standard library only: the
// go command expands package patterns, go/parser parses, and go/types
// checks with an importer that resolves module-local imports straight from
// the repository source tree (the stdlib "source" importer only resolves
// GOROOT packages).
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path ("debugdet/internal/vm"; fixture packages
	// use their path under the fixture root).
	PkgPath string
	// Dir is the package directory.
	Dir string
	// Files are the parsed non-test sources, with comments, in file-name
	// order.
	Files []*ast.File
	// Types and TypesInfo are the type-checker outputs.
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems (empty on a healthy
	// package). Analyzers still run over packages with type errors; the
	// driver surfaces the errors itself.
	TypeErrors []error
}

// Loader loads and caches packages. One Loader shares a FileSet and an
// import cache across every package of a run, so each dependency is
// type-checked once.
type Loader struct {
	Fset *token.FileSet
	// ModPath and ModDir map module-local import paths to directories:
	// ModPath+"/x/y" resolves to ModDir/x/y.
	ModPath string
	ModDir  string
	// ExtraRoots are additional import roots tried before the module and
	// the standard library, in order. analysistest points one at the
	// fixture tree, so fixtures can import helper packages.
	ExtraRoots []Root

	std     types.ImporterFrom
	imports map[string]*types.Package
	loading map[string]bool
}

// Root maps an import-path prefix to a directory tree. Prefix "" matches
// every path.
type Root struct {
	Prefix string
	Dir    string
}

// NewLoader returns a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		imports: make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and reads its module
// path.
func findModule(dir string) (modDir, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", abs)
		}
	}
}

// Patterns expands go package patterns (./..., specific import paths) into
// package directories using the go command, returning (dir, importPath)
// pairs in stable order.
func (l *Loader) Patterns(patterns []string) ([]Target, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModDir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("load: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var targets []Target
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var t Target
		if err := dec.Decode(&t); err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, nil
}

// Target is one package named by a pattern expansion.
type Target struct {
	Dir        string
	ImportPath string
	Name       string
}

// Load parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are excluded: the determinism contract and
// the SDK surface are properties of production code.
func (l *Loader) Load(dir, pkgPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go source in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Files: files, TypesInfo: info}
	conf := types.Config{
		Importer: (*passImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkgPath, l.Fset, files, info)
	return pkg, nil
}

// parseDir parses every non-test .go file of dir, in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %v", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// passImporter resolves imports for type-checking: extra roots first, then
// the module source tree, then the standard library.
type passImporter Loader

// Import implements types.Importer.
func (im *passImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (im *passImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(im)
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if dir, ok := l.resolve(path); ok {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		files, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: im}
		pkg, err := conf.Check(path, l.Fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("importing %s: %v", path, err)
		}
		l.imports[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.ImportFrom(path, srcDir, mode)
	if err != nil {
		return nil, err
	}
	l.imports[path] = pkg
	return pkg, nil
}

// resolve maps an import path to a source directory via the extra roots
// and the module root.
func (l *Loader) resolve(path string) (string, bool) {
	for _, r := range l.ExtraRoots {
		if r.Prefix == "" || path == r.Prefix || strings.HasPrefix(path, r.Prefix+"/") {
			dir := filepath.Join(r.Dir, strings.TrimPrefix(strings.TrimPrefix(path, r.Prefix), "/"))
			if dirHasGo(dir) {
				return dir, true
			}
		}
	}
	if path == l.ModPath {
		return l.ModDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		dir := filepath.Join(l.ModDir, filepath.FromSlash(rest))
		if dirHasGo(dir) {
			return dir, true
		}
	}
	return "", false
}

// dirHasGo reports whether dir contains at least one .go file.
func dirHasGo(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

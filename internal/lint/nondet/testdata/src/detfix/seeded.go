package detfix

import "math/rand"

// newSeeded mirrors vm.newRand: this file is allowlisted by the test, the
// way vm/sched.go and vm/observer.go are in the real configuration.
func newSeeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

var _ = newSeeded

// Package detfix is the nondet golden fixture: a stand-in for the VM with
// every violation class and every sanctioned escape.
package detfix

import (
	"sort"
	"time"
)

// clock is the seeded regression: a wall-clock read inside a deterministic
// package.
func clock() int64 {
	return time.Now().UnixNano() // want `wall-clock call time\.Now`
}

// annotatedClock is the audited escape form.
func annotatedClock() int64 {
	t := time.Now().UnixNano() //lint:nondet-ok metrics side channel; never feeds the trace
	return t
}

// spawn leaks host scheduling into the machine.
func spawn(f func()) {
	go f() // want `raw go statement`
}

// spawnOK is annotated with its safety argument.
func spawnOK(f func()) {
	//lint:nondet-ok joined before return; completion order is not observable
	go f()
}

// sum accumulates commutatively: clean.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keys collects then sorts: clean.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fill writes per-key map entries: clean.
func fill(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// count observes only the iteration count: clean.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// concat is order-sensitive: string concatenation does not commute.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `order-sensitive`
		s += k
	}
	return s
}

// concatOK carries a (fixture) justification.
func concatOK(m map[string]int) string {
	s := ""
	//lint:nondet-ok fixture: output is diagnostic-only
	for k := range m {
		s += k
	}
	return s
}

var _ = []interface{}{clock, annotatedClock, spawn, spawnOK, sum, keys, fill, count, concat, concatOK}

package detfix

import "math/rand" // want `imports math/rand`

// roll consumes an injected generator; the import itself is the finding.
func roll(r *rand.Rand) int { return r.Intn(6) }

var _ = roll

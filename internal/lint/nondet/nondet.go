// Package nondet implements the determinism suite's nondeterminism
// analyzer: inside the deterministic packages — the VM and everything
// whose output must be a pure function of (program, seed, inputs) — it
// forbids wall-clock reads, math/rand, raw go statements and
// map-iteration-order-dependent loops.
//
// Determinism here is a contract, not a convention: replay equivalence,
// checkpoint restore and the bit-identical parallel-search guarantees all
// assume that re-executing with the same seed reproduces the same events.
// A single time.Now or unsorted map walk on a result path silently breaks
// every one of them.
//
// Escapes are explicit and audited: a file hosting a seeded PRNG is listed
// in AllowRand with a justification, and an individual statement is
// annotated //lint:nondet-ok <why>.
package nondet

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"

	"debugdet/internal/lint/analysis"
)

// Directive is the annotation name that justifies an individual finding.
const Directive = "nondet-ok"

// DetPackages are the import paths under the determinism contract. Tests
// override this to point at fixture packages.
var DetPackages = []string{
	"debugdet/internal/vm",
	"debugdet/internal/replay",
	"debugdet/internal/record",
	"debugdet/internal/checkpoint",
	"debugdet/internal/flightrec",
	"debugdet/internal/simdisk",
	"debugdet/internal/simnet",
	"debugdet/internal/dynokv",
}

// AllowRand maps "pkgpath/file.go" to the justification for that file
// importing math/rand. The two VM files host the machine's seeded PRNGs
// (scheduler randomness and vm.HashValue-style derivations) — every
// generator they construct is rand.New(rand.NewSource(seed)), so the
// randomness is part of the deterministic input, not an escape from it.
var AllowRand = map[string]string{
	"debugdet/internal/vm/sched.go":    "seeded schedulers: rand.New(rand.NewSource(seed)) per execution",
	"debugdet/internal/vm/observer.go": "newRand helper: the single audited constructor for seeded PRNGs",
}

// wallClock are the time-package functions that read or wait on the host
// clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the nondet pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: "deterministic packages must not read wall clocks, use math/rand, " +
		"spawn raw goroutines or depend on map iteration order",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	det := false
	for _, p := range DetPackages {
		if pass.PkgPath == p {
			det = true
			break
		}
	}
	if !det {
		return nil, nil
	}
	for _, f := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, f)
		checkImports(pass, f)
		checkFile(pass, dirs, f)
	}
	return nil, nil
}

// checkImports flags math/rand imports outside the allowlisted PRNG files.
func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != "math/rand" && p != "math/rand/v2" {
			continue
		}
		file := path.Base(pass.Fset.Position(imp.Pos()).Filename)
		if _, ok := AllowRand[pass.PkgPath+"/"+file]; ok {
			continue
		}
		pass.Reportf(imp.Pos(),
			"deterministic package %s imports %s; use the audited seeded sources (vm.newRand) or allowlist the file in nondet.AllowRand with a justification",
			pass.PkgPath, p)
	}
}

// checkFile walks every statement list so range loops can see their
// following statement (the collect-then-sort idiom).
func checkFile(pass *analysis.Pass, dirs *analysis.Directives, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, dirs, n)
		case *ast.GoStmt:
			if !annotated(pass, dirs, n.Pos()) {
				pass.Reportf(n.Pos(),
					"raw go statement in deterministic package %s: host goroutine scheduling is outside the recorded schedule; use VM threads or annotate //lint:%s <why>",
					pass.PkgPath, Directive)
			}
		case *ast.BlockStmt:
			checkStmtList(pass, dirs, n.List)
			return true
		case *ast.CaseClause:
			checkStmtList(pass, dirs, n.Body)
			return true
		case *ast.CommClause:
			checkStmtList(pass, dirs, n.Body)
			return true
		}
		return true
	})
}

// checkCall flags wall-clock reads.
func checkCall(pass *analysis.Pass, dirs *analysis.Directives, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wallClock[sel.Sel.Name] {
		return
	}
	if annotated(pass, dirs, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"wall-clock call time.%s in deterministic package %s: use the machine's virtual clock, or annotate //lint:%s <why>",
		sel.Sel.Name, pass.PkgPath, Directive)
}

// checkStmtList examines range-over-map loops with access to the statement
// that follows each loop.
func checkStmtList(pass *analysis.Pass, dirs *analysis.Directives, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rng.X) {
			continue
		}
		if rng.Key == nil && rng.Value == nil {
			continue // iteration count only; order cannot be observed
		}
		if annotated(pass, dirs, rng.Pos()) {
			continue
		}
		var next ast.Stmt
		if i+1 < len(stmts) {
			next = stmts[i+1]
		}
		if orderInsensitive(pass, rng, next) {
			continue
		}
		pass.Reportf(rng.Pos(),
			"map iteration in deterministic package %s has an order-sensitive body: sort the keys first, or annotate //lint:%s <why>",
			pass.PkgPath, Directive)
	}
}

// annotated reports whether a justified nondet-ok directive governs pos.
// An annotation without a justification is itself a finding: the escape
// hatch must document why the site is safe.
func annotated(pass *analysis.Pass, dirs *analysis.Directives, pos token.Pos) bool {
	d, ok := dirs.At(pass.Fset, pos, Directive)
	if !ok {
		return false
	}
	if d.Justification == "" {
		pass.Reportf(pos, "//lint:%s needs a justification", Directive)
	}
	return true
}

// isMapType reports whether expr has map type.
func isMapType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderInsensitive reports whether the loop body consists only of
// operations whose combined effect does not depend on iteration order:
// writes into maps, deletes, commutative integer accumulation, and the
// collect-then-sort idiom (appends followed immediately by a sort of the
// collected slice).
func orderInsensitive(pass *analysis.Pass, rng *ast.RangeStmt, next ast.Stmt) bool {
	var appendTargets []types.Object
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if !safeAssign(pass, s, &appendTargets) {
				return false
			}
		case *ast.IncDecStmt:
			if !isIntExpr(pass, s.X) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isDelete(pass, call) {
				return false
			}
		default:
			return false
		}
	}
	if len(appendTargets) > 0 && !sortsAll(pass, next, appendTargets) {
		return false
	}
	return true
}

// safeAssign classifies one assignment inside a map-range body.
func safeAssign(pass *analysis.Pass, s *ast.AssignStmt, appendTargets *[]types.Object) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok.String() {
	case "=", ":=":
		// Map writes commute across distinct keys, and ranges visit each
		// key once.
		if ix, ok := lhs.(*ast.IndexExpr); ok && isMapType(pass, ix.X) {
			return true
		}
		// x = append(x, ...): safe only when the result is sorted right
		// after the loop.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						*appendTargets = append(*appendTargets, obj)
						return true
					}
				}
			}
		}
		return false
	case "+=", "-=", "|=", "&=", "^=":
		// Commutative on integers.
		return isIntExpr(pass, lhs)
	}
	return false
}

// sortsAll reports whether next is a sort call covering every appended
// variable (a single sort call mentioning each target).
func sortsAll(pass *analysis.Pass, next ast.Stmt, targets []types.Object) bool {
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil ||
		(obj.Pkg().Path() != "sort" && obj.Pkg().Path() != "slices") {
		return false
	}
	mentioned := make(map[types.Object]bool)
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := pass.TypesInfo.ObjectOf(id); o != nil {
					mentioned[o] = true
				}
			}
			return true
		})
	}
	for _, t := range targets {
		if !mentioned[t] {
			return false
		}
	}
	return true
}

// isDelete recognizes the builtin delete on a map.
func isDelete(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "delete" || len(call.Args) != 2 {
		return false
	}
	return isMapType(pass, call.Args[0])
}

// isIntExpr reports whether expr has integer type.
func isIntExpr(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

package nondet_test

import (
	"testing"

	"debugdet/internal/lint/analysistest"
	"debugdet/internal/lint/nondet"
)

func TestFixtures(t *testing.T) {
	defer func(pkgs []string, allow map[string]string) {
		nondet.DetPackages, nondet.AllowRand = pkgs, allow
	}(nondet.DetPackages, nondet.AllowRand)
	nondet.DetPackages = []string{"detfix"}
	nondet.AllowRand = map[string]string{
		"detfix/seeded.go": "fixture stand-in for the audited seeded constructors",
	}
	analysistest.Run(t, analysistest.Testdata(), nondet.Analyzer, "detfix")
}

// Package analysistest runs detlint analyzers over golden source fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture files
// carry "// want `regexp`" comments on the lines where diagnostics are
// expected, and the harness fails the test on any unmatched expectation or
// unexpected diagnostic.
//
// Fixtures live under <testdir>/testdata/src/<pkgpath>; imports between
// fixture packages resolve inside that root first, then against the
// enclosing module, then the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"debugdet/internal/lint/analysis"
	"debugdet/internal/lint/load"
)

// Run applies the analyzer to each fixture package (a path under
// testdata/src) and checks the diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	l, err := load.NewLoader(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l.ExtraRoots = []load.Root{{Prefix: "", Dir: root}}
	for _, pkgpath := range pkgpaths {
		dir := filepath.Join(root, filepath.FromSlash(pkgpath))
		pkg, err := l.Load(dir, pkgpath)
		if err != nil {
			t.Errorf("analysistest: %s: %v", pkgpath, err)
			continue
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: %s: type error: %v", pkgpath, terr)
		}
		findings, err := runOne(l, pkg, a)
		if err != nil {
			t.Errorf("analysistest: %s: %v", pkgpath, err)
			continue
		}
		check(t, l.Fset, pkg.Files, a.Name, findings)
	}
}

// runOne applies one analyzer to one package.
func runOne(l *load.Loader, pkg *load.Package, a *analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		PkgPath:   pkg.PkgPath,
		Dir:       pkg.Dir,
		Report:    func(d analysis.Diagnostic) { out = append(out, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}

// expectation is one want comment: a pattern expected to match a
// diagnostic on a specific line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// check compares diagnostics against want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, name string, findings []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment (patterns go in backquotes): %s",
						pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	for _, d := range findings {
		pos := fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matching %q", w.file, w.line, name, w.pattern)
		}
	}
}

// matchWant consumes the first unmatched expectation on the diagnostic's
// line whose pattern matches.
func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Testdata returns the conventional fixture root for a test file's
// package: ./testdata.
func Testdata() string { return "testdata" }

// Fprint is a debugging helper: renders diagnostics like the driver does.
func Fprint(fset *token.FileSet, findings []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range findings {
		fmt.Fprintf(&b, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return b.String()
}

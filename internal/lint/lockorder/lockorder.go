// Package lockorder implements the determinism suite's static deadlock
// triage: an intra-body lockset analysis over the VM thread API. Every
// function body (including scenario thread closures) is walked in source
// order, t.Lock/t.Unlock calls maintain a symbolic lockset, and the
// acquisition orders of all bodies are merged into a lock-order graph;
// opposing gate-disjoint edges — lock A held while taking B in one body,
// B held while taking A in another — are reported as potential ABBA
// deadlocks.
//
// The same graph core triages recorded executions (see
// internal/lint/sites), where lock identities are runtime object IDs
// rather than source expressions; that runtime form is what seeds RCSE
// search. The source analyzer is deliberately intra-body: it does not
// propagate lock arguments through call sites, so a factory closure
// instantiated with (a,b) and (b,a) is flagged by the trace triage, not
// here.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"debugdet/internal/lint/analysis"
)

// Directive is the annotation name that waives a reported cycle.
const Directive = "lockorder-ok"

// ThreadTypes are the named types whose Lock/Unlock methods the analyzer
// tracks, as "pkgpath.TypeName" of the pointer's element type. Tests
// override this to point at fixture types.
var ThreadTypes = []string{"debugdet/internal/vm.Thread"}

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "thread bodies must acquire locks in a consistent global order; " +
		"opposing acquisition orders are potential ABBA deadlocks",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := NewGraph()
	dirsByFile := make(map[string]*analysis.Directives)
	for _, f := range pass.Files {
		dirsByFile[pass.Fset.Position(f.Pos()).Filename] = analysis.FileDirectives(pass.Fset, f)
		collectBodies(pass, f, g)
	}
	for _, c := range g.Cycles() {
		if waived(pass, dirsByFile, c) {
			continue
		}
		e1, e2 := c.Edges[0], c.Edges[1]
		pass.Reportf(e1.Tag.(token.Pos),
			"potential ABBA deadlock: %s acquires %s while holding %s, but %s acquires %s while holding %s (annotate //lint:%s <why> to waive)",
			e1.Body.Name, e1.To.Name, e1.From.Name,
			e2.Body.Name, e2.To.Name, e2.From.Name, Directive)
	}
	return nil, nil
}

// waived reports whether any edge of the cycle carries the waiver
// directive.
func waived(pass *analysis.Pass, dirsByFile map[string]*analysis.Directives, c Cycle) bool {
	for _, e := range c.Edges {
		pos := e.Tag.(token.Pos)
		dirs := dirsByFile[pass.Fset.Position(pos).Filename]
		if dirs == nil {
			continue
		}
		if d, ok := dirs.At(pass.Fset, pos, Directive); ok {
			if d.Justification == "" {
				pass.Reportf(pos, "//lint:%s needs a justification", Directive)
			}
			return true
		}
	}
	return false
}

// collectBodies finds every function body in the file and feeds its
// acquisition sequence into the graph. Function literals are separate
// bodies: each closure is a candidate thread body.
func collectBodies(pass *analysis.Pass, f *ast.File, g *Graph) {
	var enclosing string
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			enclosing = n.Name.Name
			if n.Body != nil {
				walkBody(pass, g, body(pass, n.Body, n.Name.Name), enclosing, n.Body)
			}
			return true
		case *ast.FuncLit:
			line := pass.Fset.Position(n.Pos()).Line
			name := fmt.Sprintf("%s.func@%d", enclosing, line)
			walkBody(pass, g, body(pass, n.Body, name), enclosing, n.Body)
			return true
		}
		return true
	})
}

// body builds the graph context for one function body.
func body(pass *analysis.Pass, b *ast.BlockStmt, name string) BodyID {
	return BodyID{ID: b, Name: name}
}

// walkBody simulates the body's Lock/Unlock sequence in source order,
// without descending into nested function literals (they are their own
// bodies).
func walkBody(pass *analysis.Pass, g *Graph, id BodyID, enclosing string, b *ast.BlockStmt) {
	ast.Inspect(b, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != b {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, lockArg, ok := threadLockCall(pass, call)
		if !ok {
			return true
		}
		key := lockKey(pass, enclosing, lockArg)
		switch name {
		case "Lock":
			g.Acquire(id, key, call.Pos())
		case "Unlock":
			g.Release(id, key)
		}
		return true
	})
}

// threadLockCall matches t.Lock(site, lock) / t.Unlock(site, lock) on a
// tracked thread type, returning the method name and the lock argument.
func threadLockCall(pass *analysis.Pass, call *ast.CallExpr) (string, ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") || len(call.Args) != 2 {
		return "", nil, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", nil, false
	}
	t := tv.Type
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named := analysis.NamedType(t)
	if named == nil {
		return "", nil, false
	}
	path := analysis.TypePath(named)
	for _, want := range ThreadTypes {
		if path == want {
			return sel.Sel.Name, call.Args[1], true
		}
	}
	return "", nil, false
}

// lockKey canonicalizes a lock expression: plain identifiers key on their
// types.Object (shared captures match across sibling closures); composite
// expressions key on their text, scoped to the enclosing top-level
// function so unrelated functions cannot collide.
func lockKey(pass *analysis.Pass, enclosing string, expr ast.Expr) Key {
	if id, ok := expr.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return Key{Obj: obj, Name: id.Name}
		}
	}
	s := types.ExprString(expr)
	return Key{Obj: "expr:" + enclosing + ":" + s, Name: s}
}

package lockorder_test

import (
	"testing"

	"debugdet/internal/lint/analysistest"
	"debugdet/internal/lint/lockorder"
)

func TestFixtures(t *testing.T) {
	defer func(old []string) { lockorder.ThreadTypes = old }(lockorder.ThreadTypes)
	lockorder.ThreadTypes = []string{"lofix.Thread"}
	analysistest.Run(t, analysistest.Testdata(), lockorder.Analyzer, "lofix")
}

// Package lofix is the lockorder golden fixture: scenario-shaped thread
// closures over a stand-in Thread type, covering the ABBA report, the
// gate-lock refinement and the waiver directive.
package lofix

// Thread mimics vm.Thread's locking surface.
type Thread struct{}

// Lock acquires obj at site.
func (t *Thread) Lock(site string, obj int) {}

// Unlock releases obj at site.
func (t *Thread) Unlock(site string, obj int) {}

// abba builds two closures that take the same pair in opposite orders —
// the workload deadlock scenario's shape.
func abba() (func(*Thread), func(*Thread)) {
	var a, b int
	fwd := func(t *Thread) {
		t.Lock("fwd-a", a)
		t.Lock("fwd-b", b) // want `potential ABBA deadlock`
		t.Unlock("fwd-b", b)
		t.Unlock("fwd-a", a)
	}
	rev := func(t *Thread) {
		t.Lock("rev-b", b)
		t.Lock("rev-a", a)
		t.Unlock("rev-a", a)
		t.Unlock("rev-b", b)
	}
	return fwd, rev
}

// gated inverts the inner pair too, but both closures hold the same gate
// lock: the Goodlock refinement suppresses the report.
func gated() (func(*Thread), func(*Thread)) {
	var g, c, d int
	one := func(t *Thread) {
		t.Lock("gate", g)
		t.Lock("one-c", c)
		t.Lock("one-d", d)
		t.Unlock("one-d", d)
		t.Unlock("one-c", c)
		t.Unlock("gate", g)
	}
	two := func(t *Thread) {
		t.Lock("gate", g)
		t.Lock("two-d", d)
		t.Lock("two-c", c)
		t.Unlock("two-c", c)
		t.Unlock("two-d", d)
		t.Unlock("gate", g)
	}
	return one, two
}

// waived is an inversion with a justified waiver on one edge.
func waived() (func(*Thread), func(*Thread)) {
	var x, y int
	one := func(t *Thread) {
		t.Lock("w-x", x)
		//lint:lockorder-ok fixture: inversion is intentional and serialized elsewhere
		t.Lock("w-y", y)
		t.Unlock("w-y", y)
		t.Unlock("w-x", x)
	}
	two := func(t *Thread) {
		t.Lock("w-y2", y)
		t.Lock("w-x2", x)
		t.Unlock("w-x2", x)
		t.Unlock("w-y2", y)
	}
	return one, two
}

// nested releases in LIFO order with no inversion: clean.
func nested() func(*Thread) {
	var p, q int
	return func(t *Thread) {
		t.Lock("n-p", p)
		t.Lock("n-q", q)
		t.Unlock("n-q", q)
		t.Unlock("n-p", p)
	}
}

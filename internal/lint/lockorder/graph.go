package lockorder

import (
	"fmt"
	"sort"
)

// Key identifies one lock in a lock-order graph. Obj carries a comparable
// identity (a types.Object for source analysis, a trace.ObjID for trace
// triage); Name is the human-readable label diagnostics use.
type Key struct {
	Obj  any
	Name string
}

// BodyID identifies one acquisition context: a function body for source
// analysis, a thread for trace triage. Cycles whose edges all come from
// the same context are still reported — the same closure can run in two
// threads — but the context shows up in the diagnostic.
type BodyID struct {
	ID   any
	Name string
}

// Edge is one observed ordering: From was held while To was acquired.
type Edge struct {
	From, To Key
	Body     BodyID
	// Tag is caller payload describing the acquisition site of To (an AST
	// position or a trace.SiteID).
	Tag any
	// Gates are the other locks held at the acquisition. Two opposing
	// edges that share a gate lock cannot interleave into a deadlock (the
	// gate serializes them): the standard Goodlock refinement.
	Gates map[Key]bool
}

// Cycle is a set of edges forming a lock-order cycle — a potential
// deadlock.
type Cycle struct {
	Edges []Edge
}

// Locks returns the cycle's lock names, sorted.
func (c Cycle) Locks() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range c.Edges {
		if !seen[e.From.Name] {
			seen[e.From.Name] = true
			out = append(out, e.From.Name)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the cycle compactly for reports and tests.
func (c Cycle) String() string {
	s := ""
	for _, e := range c.Edges {
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("%s->%s (%s)", e.From.Name, e.To.Name, e.Body.Name)
	}
	return s
}

// Graph accumulates acquisition orders from any number of bodies and
// reports cycles. The zero value is not ready; use NewGraph.
type Graph struct {
	held  map[BodyID][]Key
	edges []Edge
}

// NewGraph returns an empty lock-order graph.
func NewGraph() *Graph {
	return &Graph{held: make(map[BodyID][]Key)}
}

// Acquire records that body acquired lock at tag, adding ordering edges
// from every lock the body already holds. Re-acquiring a held lock adds no
// edges (self-deadlock is a different bug class, caught dynamically).
func (g *Graph) Acquire(body BodyID, lock Key, tag any) {
	held := g.held[body]
	for _, h := range held {
		if h == lock {
			return
		}
	}
	for _, h := range held {
		gates := make(map[Key]bool, len(held)-1)
		for _, o := range held {
			if o != h {
				gates[o] = true
			}
		}
		g.edges = append(g.edges, Edge{From: h, To: lock, Body: body, Tag: tag, Gates: gates})
	}
	g.held[body] = append(held, lock)
}

// Release records that body released lock. Unmatched releases are
// ignored — source analysis is an approximation.
func (g *Graph) Release(body BodyID, lock Key) {
	held := g.held[body]
	for i, h := range held {
		if h == lock {
			g.held[body] = append(held[:i:i], held[i+1:]...)
			return
		}
	}
}

// Edges exposes the accumulated ordering edges (for tests and reports).
func (g *Graph) Edges() []Edge { return g.edges }

// Cycles returns the potential-deadlock cycles: pairs of gate-disjoint
// opposing edges (the ABBA class), one cycle per unordered lock pair,
// preferring the first edge pair in insertion order so reports are
// deterministic.
func (g *Graph) Cycles() []Cycle {
	reported := make(map[[2]Key]bool)
	var out []Cycle
	for i, e1 := range g.edges {
		for j := i + 1; j < len(g.edges); j++ {
			e2 := g.edges[j]
			if e1.From != e2.To || e1.To != e2.From {
				continue
			}
			pair := [2]Key{e1.From, e1.To}
			if pair[1].Name < pair[0].Name {
				pair[0], pair[1] = pair[1], pair[0]
			}
			if reported[pair] || gatesIntersect(e1.Gates, e2.Gates) {
				continue
			}
			reported[pair] = true
			out = append(out, Cycle{Edges: []Edge{e1, e2}})
		}
	}
	return out
}

// gatesIntersect reports whether the two edges share a gate lock.
func gatesIntersect(a, b map[Key]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

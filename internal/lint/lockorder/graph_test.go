package lockorder

import "testing"

func key(name string) Key    { return Key{Obj: name, Name: name} }
func bid(name string) BodyID { return BodyID{ID: name, Name: name} }

// TestGraphABBA: opposing orders across two bodies form one cycle.
func TestGraphABBA(t *testing.T) {
	g := NewGraph()
	a, b := key("a"), key("b")
	t1, t2 := bid("t1"), bid("t2")
	g.Acquire(t1, a, "s1")
	g.Acquire(t1, b, "s2")
	g.Release(t1, b)
	g.Release(t1, a)
	g.Acquire(t2, b, "s3")
	g.Acquire(t2, a, "s4")
	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1: %v", len(cycles), cycles)
	}
	got := cycles[0].Locks()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("cycle locks = %v, want [a b]", got)
	}
	if cycles[0].Edges[0].Tag != "s2" {
		t.Fatalf("first edge tag = %v, want s2 (first inserted)", cycles[0].Edges[0].Tag)
	}
}

// TestGraphGate: a shared gate lock suppresses the cycle.
func TestGraphGate(t *testing.T) {
	g := NewGraph()
	gate, a, b := key("g"), key("a"), key("b")
	t1, t2 := bid("t1"), bid("t2")
	g.Acquire(t1, gate, "g1")
	g.Acquire(t1, a, "s1")
	g.Acquire(t1, b, "s2")
	g.Release(t1, b)
	g.Release(t1, a)
	g.Release(t1, gate)
	g.Acquire(t2, gate, "g2")
	g.Acquire(t2, b, "s3")
	g.Acquire(t2, a, "s4")
	if cycles := g.Cycles(); len(cycles) != 0 {
		t.Fatalf("gated inversion reported: %v", cycles)
	}
}

// TestGraphDedup: repeated opposing edges report one cycle per lock pair,
// and a re-acquired held lock adds no edges.
func TestGraphDedup(t *testing.T) {
	g := NewGraph()
	a, b := key("a"), key("b")
	t1, t2 := bid("t1"), bid("t2")
	for i := 0; i < 3; i++ {
		g.Acquire(t1, a, "s1")
		g.Acquire(t1, b, "s2")
		g.Acquire(t1, b, "s2-re") // no-op: already held
		g.Release(t1, b)
		g.Release(t1, a)
		g.Acquire(t2, b, "s3")
		g.Acquire(t2, a, "s4")
		g.Release(t2, a)
		g.Release(t2, b)
	}
	if cycles := g.Cycles(); len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1 after dedup: %v", len(cycles), cycles)
	}
}

// TestGraphDisjointPairs: two independent inversions report two cycles.
func TestGraphDisjointPairs(t *testing.T) {
	g := NewGraph()
	t1, t2 := bid("t1"), bid("t2")
	for _, pair := range [][2]Key{{key("a"), key("b")}, {key("c"), key("d")}} {
		g.Acquire(t1, pair[0], "x")
		g.Acquire(t1, pair[1], "y")
		g.Release(t1, pair[1])
		g.Release(t1, pair[0])
		g.Acquire(t2, pair[1], "x")
		g.Acquire(t2, pair[0], "y")
		g.Release(t2, pair[0])
		g.Release(t2, pair[1])
	}
	if cycles := g.Cycles(); len(cycles) != 2 {
		t.Fatalf("cycles = %d, want 2: %v", len(cycles), cycles)
	}
}

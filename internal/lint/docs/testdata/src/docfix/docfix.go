// Package docfix is the docs golden fixture: a public-surface package with
// documented and undocumented exported symbols.
package docfix

// Documented carries godoc: clean.
const Documented = 1

const Bare = 2 // want `exported const Bare has no doc comment`

// Grouped declarations share the group comment: clean.
var (
	GroupedA = 1
	GroupedB = 2
)

var Loose = 3 // want `exported var Loose has no doc comment`

// T is documented.
type T struct{}

// Fine is documented: clean.
func (t *T) Fine() {}

func (t *T) Method() {} // want `exported method T\.Method has no doc comment`

func Exported() {} // want `exported func Exported has no doc comment`

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

// unexported symbols and methods on unexported receivers need nothing.
type hidden struct{}

func (h hidden) Exported() {}

func helper() {}

var _ = helper

package internalpkg // want `package docfix/internalpkg has no package comment`

// Exported needs no godoc here: the package is comment-only scoped.
func Exported() {}

// Package docs implements the documentation analyzer — the former
// cmd/docslint, rebased onto the shared detlint driver. Every public SDK
// package must carry a package comment and godoc on each exported symbol;
// the listed internal packages (the subsystems DESIGN.md documents) only
// need their package comment.
//
// Unlike the old command, this pass reads the parsed ASTs directly rather
// than go/doc: doc.New rewrites the syntax trees it is given, and the
// driver shares one AST per package across the whole suite. The
// documented-ness rules are the godoc ones — a symbol is documented if its
// own spec or its enclosing declaration group carries a leading doc
// comment (trailing line comments are not godoc).
package docs

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"debugdet/internal/lint/analysis"
)

// Targets maps a package import path to whether its exported symbols need
// godoc (true for the public SDK surface) or only the package comment
// (false, for documented internal subsystems). Packages not listed are
// ignored. Tests override this for fixture trees.
var Targets = map[string]bool{
	"debugdet":                     true,
	"debugdet/sim":                 true,
	"debugdet/scen":                true,
	"debugdet/trace":               true,
	"debugdet/figures":             true,
	"debugdet/internal/checkpoint": false,
	"debugdet/internal/flightrec":  false,
	"debugdet/internal/simdisk":    false,
}

// Analyzer is the docs pass.
var Analyzer = &analysis.Analyzer{
	Name: "docs",
	Doc: "public SDK packages need a package comment and godoc on every " +
		"exported symbol; listed internal packages need the package comment",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	exported, ok := Targets[pass.PkgPath]
	if !ok {
		return nil, nil
	}
	checkPackageComment(pass)
	if !exported {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			case *ast.FuncDecl:
				checkFuncDecl(pass, f, d)
			}
		}
	}
	return nil, nil
}

// checkPackageComment requires a package comment on some file of the
// package, reporting once at the first file (by name) when absent.
func checkPackageComment(pass *analysis.Pass) {
	files := append([]*ast.File(nil), pass.Files...)
	sort.Slice(files, func(i, j int) bool {
		return pass.Fset.Position(files[i].Package).Filename <
			pass.Fset.Position(files[j].Package).Filename
	})
	for _, f := range files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
	}
	if len(files) > 0 {
		pass.Reportf(files[0].Name.Pos(),
			"package %s has no package comment", pass.PkgPath)
	}
}

// checkGenDecl enforces godoc on exported consts, vars and types. A spec
// is documented if it has its own doc comment or its enclosing declaration
// group has one.
func checkGenDecl(pass *analysis.Pass, d *ast.GenDecl) {
	groupDoc := commented(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			names := exportedIdents(s.Names)
			if len(names) == 0 {
				continue
			}
			if groupDoc || commented(s.Doc) {
				continue
			}
			pass.Reportf(names[0].Pos(), "exported %s %s has no doc comment",
				kindWord(d.Tok), identNames(names))
		case *ast.TypeSpec:
			if !token.IsExported(s.Name.Name) {
				continue
			}
			if groupDoc || commented(s.Doc) {
				continue
			}
			pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
		}
	}
}

// checkFuncDecl enforces godoc on exported functions and on exported
// methods of exported types.
func checkFuncDecl(pass *analysis.Pass, f *ast.File, d *ast.FuncDecl) {
	if !token.IsExported(d.Name.Name) {
		return
	}
	label := "func " + d.Name.Name
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv := receiverTypeName(d.Recv.List[0].Type)
		if recv == "" || !token.IsExported(recv) {
			return
		}
		label = "method " + recv + "." + d.Name.Name
	}
	if commented(d.Doc) {
		return
	}
	pass.Reportf(d.Name.Pos(), "exported %s has no doc comment", label)
}

// receiverTypeName extracts the receiver's type name, unwrapping pointers
// and generics.
func receiverTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	}
	return ""
}

func commented(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

func exportedIdents(ids []*ast.Ident) []*ast.Ident {
	var out []*ast.Ident
	for _, id := range ids {
		if token.IsExported(id.Name) {
			out = append(out, id)
		}
	}
	return out
}

func identNames(ids []*ast.Ident) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = id.Name
	}
	return strings.Join(names, ", ")
}

func kindWord(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}

package docs_test

import (
	"testing"

	"debugdet/internal/lint/analysistest"
	"debugdet/internal/lint/docs"
)

func TestFixtures(t *testing.T) {
	defer func(old map[string]bool) { docs.Targets = old }(docs.Targets)
	docs.Targets = map[string]bool{
		"docfix":             true,
		"docfix/internalpkg": false,
	}
	analysistest.Run(t, analysistest.Testdata(), docs.Analyzer,
		"docfix", "docfix/internalpkg")
}

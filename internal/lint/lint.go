// Package lint assembles the repository's static-analysis suite — the
// determinism lints DESIGN.md §8 describes — and drives it over package
// patterns. cmd/detlint is the CLI wrapper; CI runs the suite over ./...
// as the static-analysis job.
//
// The suite:
//
//   - evexhaustive: every trace.EventKind / trace.ValueKind switch handles
//     every kind, or carries a justified //lint:exhaustive-default;
//   - nondet: no wall-clock time, math/rand, raw goroutines or
//     map-iteration-order-dependent loops inside the deterministic
//     packages;
//   - lockorder: intra-body lockset analysis over vm.Thread Lock/Unlock
//     sequences; inconsistent acquisition orders across thread bodies are
//     reported as potential ABBA deadlocks;
//   - sdkpurity: commands and examples build against the public SDK only;
//   - docs: the public packages carry package comments and exported-symbol
//     godoc (the former cmd/docslint, on the shared driver).
package lint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"

	"debugdet/internal/lint/analysis"
	"debugdet/internal/lint/docs"
	"debugdet/internal/lint/evexhaustive"
	"debugdet/internal/lint/load"
	"debugdet/internal/lint/lockorder"
	"debugdet/internal/lint/nondet"
	"debugdet/internal/lint/sdkpurity"
)

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		evexhaustive.Analyzer,
		nondet.Analyzer,
		lockorder.Analyzer,
		sdkpurity.Analyzer,
		docs.Analyzer,
	}
}

// ByName resolves a comma-separated analyzer filter against the suite.
func ByName(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := make(map[string]*analysis.Analyzer)
	var all []string
	for _, a := range Analyzers() {
		byName[a.Name] = a
		all = append(all, a.Name)
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(all, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Finding is one diagnostic with its source analyzer and resolved
// position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way compilers do, so editors can jump to
// it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matching patterns and applies the analyzers,
// returning every finding sorted by position. A non-nil error means the
// run itself failed (unknown pattern, unparsable or untypeable source) —
// distinct from findings, which are problems in otherwise-valid code.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	l, err := load.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	targets, err := l.Patterns(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, t := range targets {
		pkg, err := l.Load(t.Dir, t.ImportPath)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("type errors in %s (fix the build first): %v",
				t.ImportPath, pkg.TypeErrors[0])
		}
		fs, err := RunPackage(l, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunPackage applies the analyzers to one loaded package.
func RunPackage(l *load.Loader, pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			PkgPath:   pkg.PkgPath,
			Dir:       pkg.Dir,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: name,
				Pos:      l.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	return findings, nil
}

// Print writes findings one per line.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}

// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The x/tools
// module is deliberately not vendored — the container builds offline — so
// detlint carries just the slice of the API the repo's analyzers need,
// with the same shape so the suite could be rebased onto the real driver
// without touching analyzer code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Name appears in diagnostics and in
// the driver's -only filter; Doc is the one-paragraph help text.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects the package behind pass and reports findings via
	// pass.Report. The result value is unused by the driver (kept for
	// x/tools API symmetry); a non-nil error aborts the whole run.
	Run func(pass *Pass) (interface{}, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps AST positions to file:line. It is shared by every package
	// of the run.
	Fset *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg and TypesInfo are the type-checker's outputs.
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package import path ("debugdet/internal/vm").
	PkgPath string
	// Dir is the package directory on disk.
	Dir string
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the fileset of the pass.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Directive is one //lint:<name> <justification> comment, resolved to the
// line it annotates.
type Directive struct {
	Name          string
	Justification string
	Line          int
}

// DirectivePrefix starts every detlint annotation comment.
const DirectivePrefix = "//lint:"

// Directives collects the //lint: annotations of a file, keyed by the line
// they govern. A directive governs its own line (trailing comment) and,
// when it stands alone on a line, the next line — so both
//
//	t.Lock(s, a) //lint:nondet-ok reason
//
// and
//
//	//lint:exhaustive-default reason
//	default:
//
// work.
type Directives struct {
	byLine map[int][]Directive
}

// FileDirectives scans one file's comments for annotations.
func FileDirectives(fset *token.FileSet, f *ast.File) *Directives {
	d := &Directives{byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			name, just, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			dir := Directive{
				Name:          strings.TrimSpace(name),
				Justification: strings.TrimSpace(just),
				Line:          pos.Line,
			}
			d.byLine[pos.Line] = append(d.byLine[pos.Line], dir)
			// A directive alone on its line also annotates the next line.
			d.byLine[pos.Line+1] = append(d.byLine[pos.Line+1], dir)
		}
	}
	return d
}

// At returns the directive with the given name governing pos, if any.
func (d *Directives) At(fset *token.FileSet, pos token.Pos, name string) (Directive, bool) {
	line := fset.Position(pos).Line
	for _, dir := range d.byLine[line] {
		if dir.Name == name {
			return dir, true
		}
	}
	return Directive{}, false
}

// NamedType unwraps t to its named form, following aliases; nil when the
// type has no name (builtins, composites).
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n
	}
	return nil
}

// TypePath renders a named type as "pkgpath.Name" ("Name" for types in the
// universe or without a package).
func TypePath(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

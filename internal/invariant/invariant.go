// Package invariant implements dynamic invariant inference and runtime
// monitoring: the data-based selection heuristic of §3.1.2.
//
// Before release, training executions are observed and likely invariants
// are inferred over the program's probe points (the Daikon approach the
// paper cites as [7]): constancy, small value sets, integer ranges,
// non-emptiness. In production, a Monitor attached to the machine checks
// every probe against the inferred invariants; the moment a value violates
// them, the execution is likely on an error path, and the monitor's
// callback tells the RCSE recorder to dial determinism up so the root
// cause is captured at high fidelity.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"debugdet/internal/trace"
)

// Key identifies a probe point: a static site plus a probe ID within it.
type Key struct {
	Site  trace.SiteID
	Probe trace.ObjID
}

// Invariant is a predicate over values at one probe point.
type Invariant interface {
	// Holds reports whether the value satisfies the invariant.
	Holds(v trace.Value) bool
	// String renders the invariant in Daikon-like notation.
	String() string
}

// constInv: the probe always sees one value.
type constInv struct{ v trace.Value }

func (i constInv) Holds(v trace.Value) bool { return v.Equal(i.v) }
func (i constInv) String() string           { return fmt.Sprintf("x == %s", i.v) }

// oneOfInv: the probe sees a small set of values.
type oneOfInv struct{ vs []trace.Value }

func (i oneOfInv) Holds(v trace.Value) bool {
	for _, w := range i.vs {
		if v.Equal(w) {
			return true
		}
	}
	return false
}

func (i oneOfInv) String() string {
	parts := make([]string, len(i.vs))
	for j, v := range i.vs {
		parts[j] = v.String()
	}
	return "x in {" + strings.Join(parts, ", ") + "}"
}

// rangeInv: integer probes stay within the observed range.
type rangeInv struct{ min, max int64 }

func (i rangeInv) Holds(v trace.Value) bool {
	if v.Kind != trace.VInt && v.Kind != trace.VBool {
		return false
	}
	n := v.AsInt()
	return n >= i.min && n <= i.max
}

func (i rangeInv) String() string { return fmt.Sprintf("%d <= x <= %d", i.min, i.max) }

// kindInv: the probe's value kind never changes.
type kindInv struct{ kind trace.ValueKind }

func (i kindInv) Holds(v trace.Value) bool { return v.Kind == i.kind }
func (i kindInv) String() string           { return fmt.Sprintf("kind(x) == %d", i.kind) }

// observations accumulates training samples for one probe point.
type observations struct {
	count      uint64
	kinds      map[trace.ValueKind]bool
	distinct   []trace.Value // capped; nil-ed out once exceeded
	overflow   bool
	min, max   int64
	anyInt     bool
	nonNumeric bool
}

const maxDistinct = 8

func (o *observations) add(v trace.Value) {
	o.count++
	if o.kinds == nil {
		o.kinds = make(map[trace.ValueKind]bool)
	}
	o.kinds[v.Kind] = true
	if !o.overflow {
		found := false
		for _, w := range o.distinct {
			if w.Equal(v) {
				found = true
				break
			}
		}
		if !found {
			if len(o.distinct) >= maxDistinct {
				o.overflow = true
				o.distinct = nil
			} else {
				o.distinct = append(o.distinct, v)
			}
		}
	}
	if v.Kind == trace.VInt || v.Kind == trace.VBool {
		n := v.AsInt()
		if !o.anyInt {
			o.min, o.max = n, n
			o.anyInt = true
		} else {
			if n < o.min {
				o.min = n
			}
			if n > o.max {
				o.max = n
			}
		}
	} else {
		o.nonNumeric = true
	}
}

// Inferencer collects training samples and infers invariants.
type Inferencer struct {
	obs map[Key]*observations
}

// NewInferencer returns an empty inferencer.
func NewInferencer() *Inferencer {
	return &Inferencer{obs: make(map[Key]*observations)}
}

// Observe adds one training sample.
func (inf *Inferencer) Observe(k Key, v trace.Value) {
	o := inf.obs[k]
	if o == nil {
		o = &observations{}
		inf.obs[k] = o
	}
	o.add(v)
}

// AddTrace consumes every probe event (EvObserve) in a training trace.
func (inf *Inferencer) AddTrace(l *trace.Log) {
	for _, e := range l.Events {
		if e.Kind == trace.EvObserve {
			inf.Observe(Key{Site: e.Site, Probe: e.Obj}, e.Val)
		}
	}
}

// Infer produces the strongest supported invariant per probe point. The
// discipline mirrors Daikon's: constancy beats set membership beats range;
// a probe with too few samples (fewer than minSamples) yields nothing, so
// barely-exercised code does not produce spurious alarms.
func (inf *Inferencer) Infer() *Set {
	const minSamples = 2
	s := &Set{inv: make(map[Key][]Invariant)}
	for k, o := range inf.obs {
		if o.count < minSamples {
			continue
		}
		var out []Invariant
		if len(o.kinds) == 1 {
			for kind := range o.kinds {
				out = append(out, kindInv{kind: kind})
			}
		}
		switch {
		case !o.overflow && len(o.distinct) == 1:
			out = append(out, constInv{v: o.distinct[0]})
		case !o.overflow && o.count >= uint64(2*len(o.distinct)):
			vs := make([]trace.Value, len(o.distinct))
			copy(vs, o.distinct)
			out = append(out, oneOfInv{vs: vs})
		case o.anyInt && !o.nonNumeric:
			// Ranges are only sound when every training sample was
			// numeric; mixed-kind probes would flag their own
			// non-numeric training values.
			out = append(out, rangeInv{min: o.min, max: o.max})
		}
		if len(out) > 0 {
			s.inv[k] = out
		}
	}
	return s
}

// Set is a collection of inferred invariants keyed by probe point.
type Set struct {
	inv map[Key][]Invariant
}

// Len returns the number of probe points with invariants.
func (s *Set) Len() int { return len(s.inv) }

// At returns the invariants for a probe point.
func (s *Set) At(k Key) []Invariant { return s.inv[k] }

// Check returns the invariants at k that v violates (nil when all hold or
// none are known).
func (s *Set) Check(k Key, v trace.Value) []Invariant {
	var bad []Invariant
	for _, in := range s.inv[k] {
		if !in.Holds(v) {
			bad = append(bad, in)
		}
	}
	return bad
}

// Describe renders the invariant set for documentation and debugging,
// resolving site names against the given table.
func (s *Set) Describe(sites *trace.SiteTable) string {
	keys := make([]Key, 0, len(s.inv))
	for k := range s.inv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Probe < keys[j].Probe
	})
	var b strings.Builder
	for _, k := range keys {
		name := ""
		if sites != nil {
			name = sites.Name(k.Site)
		}
		for _, in := range s.inv[k] {
			fmt.Fprintf(&b, "%s/probe%d: %s\n", name, k.Probe, in)
		}
	}
	return b.String()
}

// Violation describes one runtime invariant violation.
type Violation struct {
	Key   Key
	Value trace.Value
	Inv   Invariant
	Seq   uint64
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("probe %d@site %d: value %s violates %q at seq %d",
		v.Key.Probe, v.Key.Site, v.Value, v.Inv, v.Seq)
}

// Monitor checks probe events against an invariant set at runtime. It
// implements vm.Observer; CheckCost cycles are charged per checked probe,
// modelling the production monitoring overhead.
type Monitor struct {
	Set       *Set
	CheckCost uint64
	// OnViolation fires on every violation (the RCSE dial-up hook).
	OnViolation func(Violation)

	violations []Violation
}

// NewMonitor returns a monitor over an inferred set.
func NewMonitor(set *Set, checkCost uint64, onViolation func(Violation)) *Monitor {
	return &Monitor{Set: set, CheckCost: checkCost, OnViolation: onViolation}
}

// Violations returns the violations observed so far.
func (m *Monitor) Violations() []Violation { return m.violations }

// OnEvent implements vm.Observer.
func (m *Monitor) OnEvent(e *trace.Event) uint64 {
	if e.Kind != trace.EvObserve {
		return 0
	}
	k := Key{Site: e.Site, Probe: e.Obj}
	bad := m.Set.Check(k, e.Val)
	for _, in := range bad {
		v := Violation{Key: k, Value: e.Val, Inv: in, Seq: e.Seq}
		m.violations = append(m.violations, v)
		if m.OnViolation != nil {
			m.OnViolation(v)
		}
	}
	return m.CheckCost
}

package invariant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func key(site, probe int) Key {
	return Key{Site: trace.SiteID(site), Probe: trace.ObjID(probe)}
}

func TestConstInvariant(t *testing.T) {
	inf := NewInferencer()
	for i := 0; i < 10; i++ {
		inf.Observe(key(1, 0), trace.Int(7))
	}
	set := inf.Infer()
	if set.Len() != 1 {
		t.Fatalf("Len = %d, want 1", set.Len())
	}
	if bad := set.Check(key(1, 0), trace.Int(7)); len(bad) != 0 {
		t.Fatalf("training value violates: %v", bad)
	}
	if bad := set.Check(key(1, 0), trace.Int(8)); len(bad) == 0 {
		t.Fatal("novel value did not violate constancy")
	}
}

func TestOneOfInvariant(t *testing.T) {
	inf := NewInferencer()
	for i := 0; i < 20; i++ {
		inf.Observe(key(2, 0), trace.Str([]string{"idle", "busy", "done"}[i%3]))
	}
	set := inf.Infer()
	if bad := set.Check(key(2, 0), trace.Str("busy")); len(bad) != 0 {
		t.Fatalf("member value violates: %v", bad)
	}
	if bad := set.Check(key(2, 0), trace.Str("exploded")); len(bad) == 0 {
		t.Fatal("non-member did not violate set membership")
	}
}

func TestRangeInvariant(t *testing.T) {
	inf := NewInferencer()
	for i := 0; i < 100; i++ {
		inf.Observe(key(3, 1), trace.Int(int64(10+i%50)))
	}
	set := inf.Infer()
	if bad := set.Check(key(3, 1), trace.Int(35)); len(bad) != 0 {
		t.Fatalf("in-range value violates: %v", bad)
	}
	if bad := set.Check(key(3, 1), trace.Int(500)); len(bad) == 0 {
		t.Fatal("out-of-range value did not violate")
	}
	if bad := set.Check(key(3, 1), trace.Int(5)); len(bad) == 0 {
		t.Fatal("below-range value did not violate")
	}
}

func TestKindInvariant(t *testing.T) {
	inf := NewInferencer()
	for i := 0; i < 50; i++ {
		inf.Observe(key(4, 0), trace.Int(int64(i)))
	}
	set := inf.Infer()
	if bad := set.Check(key(4, 0), trace.Str("oops")); len(bad) == 0 {
		t.Fatal("kind change did not violate")
	}
}

func TestTooFewSamplesInferNothing(t *testing.T) {
	inf := NewInferencer()
	inf.Observe(key(5, 0), trace.Int(1))
	set := inf.Infer()
	if set.Len() != 0 {
		t.Fatalf("single sample produced invariants: %d", set.Len())
	}
	if bad := set.Check(key(5, 0), trace.Int(999)); len(bad) != 0 {
		t.Fatal("unknown probe must not violate")
	}
}

// TestQuickTrainingSamplesNeverViolate is the soundness property: values
// seen during training can never be flagged in production.
func TestQuickTrainingSamplesNeverViolate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inf := NewInferencer()
		var samples []trace.Value
		n := 2 + r.Intn(60)
		for i := 0; i < n; i++ {
			var v trace.Value
			switch r.Intn(3) {
			case 0:
				v = trace.Int(int64(r.Intn(40) - 20))
			case 1:
				v = trace.Str([]string{"a", "b", "c", "d"}[r.Intn(4)])
			default:
				v = trace.Bool(r.Intn(2) == 0)
			}
			samples = append(samples, v)
			inf.Observe(key(1, 0), v)
		}
		set := inf.Infer()
		for _, v := range samples {
			if len(set.Check(key(1, 0), v)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingFromTraces(t *testing.T) {
	// Train on two healthy runs, then monitor a run that probes a value
	// outside the trained range.
	train := func(seed int64) *trace.Log {
		m := vm.New(vm.Config{Seed: seed, CollectTrace: true})
		s := m.Site("srv.reqsize")
		res := m.Run(func(t *vm.Thread) {
			for i := 0; i < 30; i++ {
				t.Observe(s, 0, trace.Int(int64(10+i%20)))
			}
		})
		return res.Trace
	}
	inf := NewInferencer()
	inf.AddTrace(train(1))
	inf.AddTrace(train(2))
	set := inf.Infer()
	if set.Len() == 0 {
		t.Fatal("no invariants inferred from traces")
	}

	var got []Violation
	mon := NewMonitor(set, 5, func(v Violation) { got = append(got, v) })
	m := vm.New(vm.Config{Seed: 3, CollectTrace: true})
	s := m.Site("srv.reqsize")
	m.Attach(mon)
	res := m.Run(func(t *vm.Thread) {
		t.Observe(s, 0, trace.Int(15))   // fine
		t.Observe(s, 0, trace.Int(9999)) // violates range
	})
	if res.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if len(got) == 0 {
		t.Fatal("monitor missed the violation")
	}
	if len(mon.Violations()) != len(got) {
		t.Fatal("Violations() disagrees with callback count")
	}
	if res.RecordCycles == 0 {
		t.Fatal("monitoring charged no cost")
	}
}

func TestDescribeListsInvariants(t *testing.T) {
	inf := NewInferencer()
	inf.Observe(key(1, 0), trace.Int(5))
	inf.Observe(key(1, 0), trace.Int(5))
	set := inf.Infer()
	sites := trace.NewSiteTable()
	sites.Register("srv.check")
	out := set.Describe(sites)
	if out == "" {
		t.Fatal("Describe produced nothing")
	}
}

// Package progen is a seeded scenario fuzzer: it generates valid
// concurrent VM workloads — threads, shared cells, locks, channels,
// simnet message exchanges and simulated-disk WALs — with an injected bug
// from one of five templates (atomicity violation, lock-order deadlock,
// lost message, oversell race, crash-point durability loss), packaged as
// ordinary scenario.Scenario values.
//
// The paper's claim that debug determinism is the sweet spot for replay
// debugging is only credible if it holds beyond a handful of hand-authored
// scenarios; progen delivers breadth mechanically. Every generated program
// is a deterministic function of a single generator seed carried in the
// scenario parameter "gen": the same seed always yields the same object
// graph, the same thread bodies and the same bug, so generated scenarios
// record, replay and evaluate exactly like the hand-written corpus. The
// five seed-parameterized scenarios (fuzz-atomicity, fuzz-deadlock,
// fuzz-lostmsg, fuzz-oversell, fuzz-crashpoint) are registered in the
// workload catalog with pinned defaults known to manifest their failures;
// any other generator seed is reproducible by overriding
// Params{"gen": seed}.
//
// The companion differential-oracle harness (oracle.go) checks the
// system's metamorphic invariants over generated programs: replay
// reproduction, DF monotonicity up the model hierarchy, worker-count
// invariance of inference, and shrink soundness. Native go test -fuzz
// targets drive both the generator and the oracles from fuzzer-provided
// seeds (fuzz_test.go).
package progen

import (
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Family identifies one bug template the generator can inject.
type Family uint8

// Bug-template families.
const (
	// Atomicity is an unlocked read-modify-write on a shared counter:
	// concurrent increments interleave in the window between load and
	// store and lose updates.
	Atomicity Family = iota
	// LockCycle is an ABBA lock-order inversion: two generated threads
	// acquire the same pair of mutexes in opposite orders.
	LockCycle
	// LostMessage is a lossy simnet link: the generated client/server
	// exchange drops messages with a seed-chosen probability.
	LostMessage
	// Oversell is a TOCTOU check-then-act race: buyer threads check a
	// shared remaining-capacity cell, yield, then decrement it, so
	// concurrent buyers oversell the capacity.
	Oversell
	// CrashPoint is an early-acknowledged WAL write: a writer appends
	// framed records to a simulated disk and acknowledges them before the
	// group fsync makes them durable; a crash injected at an input-chosen
	// point loses acknowledged records.
	CrashPoint
)

var familyNames = [...]string{"atomicity", "deadlock", "lostmsg", "oversell", "crashpoint"}

// String returns the family's short name.
func (f Family) String() string {
	if int(f) < len(familyNames) {
		return familyNames[f]
	}
	return "family(?)"
}

// ScenarioName returns the family's catalog name ("fuzz-" + name).
func (f Family) ScenarioName() string { return "fuzz-" + f.String() }

// Families lists every bug-template family.
func Families() []Family {
	return []Family{Atomicity, LockCycle, LostMessage, Oversell, CrashPoint}
}

// Program pairs a generated scenario with everything needed to execute
// it reproducibly: the family scenario, the parameter set carrying the
// generator seed, and a scheduler seed derived from it.
type Program struct {
	Family  Family
	GenSeed int64
	// Seed is the scheduler seed oracles use for the production run.
	Seed     int64
	Scenario *scenario.Scenario
	Params   scenario.Params
}

// Normalize folds a raw seed into the generator's canonical non-negative
// seed space. Every consumer of fuzzer-provided seeds (ForSeed, the
// figures -gen hook) applies the same fold, so a raw seed names the same
// program everywhere.
func Normalize(seed int64) int64 {
	if seed < 0 {
		return -(seed + 1) // fold without overflowing MinInt64
	}
	return seed
}

// ForSeed maps a raw generator seed (for example one supplied by go test
// -fuzz) onto a program: the family is the seed's residue, the generator
// seed parameterizes the family's builder, and the scheduler seed is an
// independent hash of it. Negative seeds are folded positive (Normalize)
// so fuzzers may supply arbitrary int64 values.
func ForSeed(seed int64) Program {
	g := Normalize(seed)
	f := Families()[g%int64(len(Families()))]
	return Program{
		Family:   f,
		GenSeed:  g,
		Seed:     1 + splitmix(uint64(g)^0xd1f7)%997, // small, nonzero
		Scenario: Scenario(f),
		Params:   scenario.Params{"gen": g},
	}
}

// Scenario returns a fresh instance of the family's seed-parameterized
// scenario. The Build function re-generates the program from the "gen"
// parameter, so one scenario value covers the family's whole seed space.
func Scenario(f Family) *scenario.Scenario {
	switch f {
	case Atomicity:
		return atomicityScenario()
	case LockCycle:
		return lockCycleScenario()
	case LostMessage:
		return lostMessageScenario()
	case Oversell:
		return oversellScenario()
	default:
		return crashPointScenario()
	}
}

// Corpus returns the five seed-parameterized fuzz scenarios with their
// pinned failing defaults, in family order — the generated slice of the
// workload catalog.
func Corpus() []*scenario.Scenario {
	out := make([]*scenario.Scenario, 0, len(Families()))
	for _, f := range Families() {
		out = append(out, Scenario(f))
	}
	return out
}

// FixedVariants returns the healthy builds of the fuzz families — the
// same generated programs after the fix predicate is enforced (locked
// read-modify-write, ordered lock acquisition, loss-free link, atomic
// check-then-act, ack-after-fsync). They are resolvable by name but excluded from the
// corpus, mirroring the hand-written families.
func FixedVariants() []*scenario.Scenario {
	var out []*scenario.Scenario
	for _, f := range Families() {
		s := Scenario(f)
		fixed := *s
		fixed.Name = s.Name + "-fixed"
		fixed.Description = "healthy build of " + s.Name + " (fix applied)"
		fixed.DefaultParams = s.DefaultParams.Clone(scenario.Params{"fixed": 1})
		fixed.TrainingParams = nil
		out = append(out, &fixed)
	}
	return out
}

// rng is the generator's deterministic random stream (splitmix64). Every
// structural decision a builder takes is drawn from it in a fixed order,
// so a generator seed fully determines the program.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909} }

func splitmix(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn draws a uniform value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// between draws a uniform value in [lo, hi] inclusive.
func (r *rng) between(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// hashInputs is the production input source generated scenarios share:
// deterministic in (seed, stream, index), unbounded draws.
func hashInputs(seed int64, _ scenario.Params) vm.InputSource {
	return vm.InputSourceFunc(func(stream string, index int) trace.Value {
		return trace.Int(vm.HashValue(seed, stream, index))
	})
}

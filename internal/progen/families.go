package progen

import (
	"fmt"

	"debugdet/internal/scenario"
	"debugdet/internal/simdisk"
	"debugdet/internal/simnet"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Pinned catalog defaults: a (generator seed, scheduler seed) pair per
// family whose production run manifests the injected failure. Verified by
// TestCorpusDefaultsFail and the workload-level default-seed test. Each
// gen is congruent to its family index modulo the family count, so the
// raw gens double as fuzz seeds for their own family.
const (
	atomicityGen, atomicitySeed   = 10, 3
	lockCycleGen, lockCycleSeed   = 1, 3
	lostMessageGen, lostMsgSeed   = 2, 1
	oversellGen, oversellSeedPins = 3, 2
	crashPointGen, crashPointSeed = 4, 1
)

// lastOut fetches the final value emitted on an output stream.
func lastOut(v *scenario.RunView, stream string) (int64, bool) {
	vals := v.Result.Outputs[stream]
	if len(vals) == 0 {
		return 0, false
	}
	return vals[len(vals)-1].AsInt(), true
}

// --- fuzz-atomicity -----------------------------------------------------

func atomicityScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "fuzz-atomicity",
		Description: "generated atomicity violation: seed-shaped worker pool " +
			"increments a shared counter with an unlocked load/store pair; " +
			"interleavings in the window lose updates",
		DefaultParams:  scenario.Params{"gen": atomicityGen, "fixed": 0},
		DefaultSeed:    atomicitySeed,
		TrainingParams: scenario.Params{"fixed": 1},
		Build:          buildAtomicity,
		Inputs:         hashInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: "fuzz.delta", Min: 0, Max: 4},
		},
		ControlStreams: []string{"fuzz.delta"},
		Failure: scenario.FailureSpec{
			Name: "lost-update",
			Check: func(v *scenario.RunView) (bool, string) {
				expected, okE := lastOut(v, "fuzz.expected")
				actual, okA := lastOut(v, "fuzz.actual")
				if !okE || !okA {
					return false, ""
				}
				if actual != expected {
					return true, "fuzz:lost-update"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "unlocked-rmw",
			Description: "the counter's load/store pair runs outside any lock; interleaved workers overwrite each other's increments",
			Present: func(v *scenario.RunView) bool {
				expected, _ := lastOut(v, "fuzz.expected")
				actual, _ := lastOut(v, "fuzz.actual")
				return actual != expected
			},
		}},
	}
}

func buildAtomicity(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	r := newRng(p.Get("gen", atomicityGen))
	genWorkers := r.between(2, 4)
	genIters := r.between(2, 5)
	noise := r.intn(3)
	windows := make([]int, genWorkers)
	for i := range windows {
		windows[i] = r.between(1, 2)
	}
	workers := int(p.Get("threads", int64(genWorkers)))
	iters := int(p.Get("iters", int64(genIters)))
	fixed := p.Get("fixed", 0) != 0

	counter := m.NewCell("fuzz.counter", trace.Int(0))
	applied := m.NewCells("fuzz.applied", workers, trace.Int(0))
	mu := m.NewMutex("fuzz.mu")
	done := m.NewChan("fuzz.done", workers)
	var noiseCells []trace.ObjID
	if noise > 0 {
		noiseCells = m.NewCells("fuzz.noise", noise, trace.Int(0))
	}
	deltaIn := m.DeclareStream("fuzz.delta", trace.TaintControl)

	sIn := m.Site("fuzz.delta.in")
	sRead := m.Site("fuzz.read")
	sWindow := m.Site("fuzz.window")
	sWrite := m.Site("fuzz.write")
	sLock := m.Site("fuzz.lock")
	sTally := m.Site("fuzz.tally")
	sNoise := m.Site("fuzz.noiseop")
	sDone := m.Site("fuzz.join")
	sSpawn := m.Site("main.spawn")
	sReport := m.Site("fuzz.report")

	worker := func(id int) func(*vm.Thread) {
		return func(t *vm.Thread) {
			for k := 0; k < iters; k++ {
				v := t.Input(sIn, deltaIn).AsInt()
				if v < 0 {
					v = -v
				}
				delta := 1 + v%5
				if fixed {
					t.Lock(sLock, mu)
				}
				cur := t.Load(sRead, counter).AsInt()
				if !fixed {
					for y := 0; y < windows[id%len(windows)]; y++ {
						t.Yield(sWindow)
					}
				}
				t.Store(sWrite, counter, trace.Int(cur+delta))
				if fixed {
					t.Unlock(sLock, mu)
				}
				t.Add(sTally, applied[id], delta)
				if len(noiseCells) > 0 {
					t.Add(sNoise, noiseCells[(id+k)%len(noiseCells)], 1)
				}
			}
			t.Send(sDone, done, trace.Int(int64(id)))
		}
	}

	return func(t *vm.Thread) {
		for w := 0; w < workers; w++ {
			t.Spawn(sSpawn, fmt.Sprintf("worker%d", w), worker(w))
		}
		for w := 0; w < workers; w++ {
			t.Recv(sDone, done)
		}
		var expected int64
		for _, a := range applied {
			expected += t.Load(sReport, a).AsInt()
		}
		t.Output(sReport, m.Stream("fuzz.expected"), trace.Int(expected))
		t.Output(sReport, m.Stream("fuzz.actual"), t.Load(sReport, counter))
	}
}

// --- fuzz-deadlock ------------------------------------------------------

func lockCycleScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "fuzz-deadlock",
		Description: "generated lock-order inversion: two seed-shaped locker " +
			"threads acquire the same mutex pair in opposite orders; some " +
			"interleavings deadlock",
		DefaultParams:  scenario.Params{"gen": lockCycleGen, "fixed": 0},
		DefaultSeed:    lockCycleSeed,
		TrainingParams: scenario.Params{"fixed": 1},
		Build:          buildLockCycle,
		Inputs: func(seed int64, p scenario.Params) vm.InputSource {
			return vm.ZeroInputs
		},
		Failure: scenario.FailureSpec{
			Name: "deadlock",
			Check: func(v *scenario.RunView) (bool, string) {
				if v.Result.Outcome != vm.OutcomeDeadlock {
					return false, ""
				}
				return true, "fuzz:deadlock"
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "lock-order-inversion",
			Description: "one locker takes (A, B) while the other takes (B, A); holding one while waiting for the other is exactly the machine's deadlock condition",
			Present: func(v *scenario.RunView) bool {
				return v.Result.Outcome == vm.OutcomeDeadlock
			},
		}},
	}
}

func buildLockCycle(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	r := newRng(p.Get("gen", lockCycleGen))
	genIters := r.between(1, 4)
	nLocks := r.between(2, 3)
	a := r.intn(nLocks)
	b := (a + 1 + r.intn(nLocks-1)) % nLocks
	noiseThreads := r.intn(2)
	iters := int(p.Get("iters", int64(genIters)))
	fixed := p.Get("fixed", 0) != 0

	locks := make([]trace.ObjID, nLocks)
	for i := range locks {
		locks[i] = m.NewMutex(fmt.Sprintf("fuzz.lock[%d]", i))
	}
	work := m.NewCell("fuzz.work", trace.Int(0))
	total := 2 + noiseThreads
	done := m.NewChan("fuzz.done", total)

	sLock := m.Site("fuzz.lock.acquire")
	sWork := m.Site("fuzz.work.add")
	sWindow := m.Site("fuzz.window")
	sDone := m.Site("fuzz.join")
	sSpawn := m.Site("main.spawn")
	sReport := m.Site("fuzz.report")

	locker := func(first, second trace.ObjID) func(*vm.Thread) {
		if fixed && first > second {
			first, second = second, first
		}
		return func(t *vm.Thread) {
			for i := 0; i < iters; i++ {
				t.Lock(sLock, first)
				t.Yield(sWindow)
				t.Lock(sLock, second)
				t.Add(sWork, work, 1)
				t.Unlock(sWork, second)
				t.Unlock(sWork, first)
			}
			t.Send(sDone, done, trace.Int(0))
		}
	}
	noiseBody := func(id int) func(*vm.Thread) {
		mu := m.NewMutex(fmt.Sprintf("fuzz.noiselock[%d]", id))
		cell := m.NewCell(fmt.Sprintf("fuzz.noisecell[%d]", id), trace.Int(0))
		return func(t *vm.Thread) {
			for i := 0; i < iters; i++ {
				t.Lock(sLock, mu)
				t.Add(sWork, cell, 1)
				t.Unlock(sWork, mu)
			}
			t.Send(sDone, done, trace.Int(1))
		}
	}

	noiseBodies := make([]func(*vm.Thread), noiseThreads)
	for i := range noiseBodies {
		noiseBodies[i] = noiseBody(i) // allocate VM objects before Run
	}

	return func(t *vm.Thread) {
		t.Spawn(sSpawn, "ab", locker(locks[a], locks[b]))
		t.Spawn(sSpawn, "ba", locker(locks[b], locks[a]))
		for i, body := range noiseBodies {
			t.Spawn(sSpawn, fmt.Sprintf("noise%d", i), body)
		}
		for i := 0; i < total; i++ {
			t.Recv(sDone, done)
		}
		t.Output(sReport, m.Stream("fuzz.completed"), t.Load(sReport, work))
	}
}

// --- fuzz-lostmsg -------------------------------------------------------

func lostMessageScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "fuzz-lostmsg",
		Description: "generated lossy-link exchange: a client streams " +
			"seed-shaped payload messages to a server over a simnet link " +
			"that drops with seed-chosen probability; delivered < sent",
		DefaultParams:  scenario.Params{"gen": lostMessageGen, "fixed": 0},
		DefaultSeed:    lostMsgSeed,
		TrainingParams: scenario.Params{"fixed": 1},
		Build:          buildLostMessage,
		Inputs:         hashInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: "fuzz.payload", Min: 0, Max: 999},
			{Stream: "net.drop:client->server", Min: 0, Max: 99},
			{Stream: "net.lat:client->server", Min: 0, Max: 99},
		},
		ControlStreams: []string{
			"net.drop:client->server", "net.lat:client->server",
		},
		Failure: scenario.FailureSpec{
			Name: "lost-message",
			Check: func(v *scenario.RunView) (bool, string) {
				sent, okS := lastOut(v, "fuzz.sent")
				delivered, okD := lastOut(v, "fuzz.delivered")
				if !okS || !okD {
					return false, ""
				}
				if delivered < sent {
					return true, "fuzz:lost-message"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "lossy-link",
			Description: "the client->server link drops messages; the exchange has no acknowledgement or retry",
			Present: func(v *scenario.RunView) bool {
				sent, _ := lastOut(v, "fuzz.sent")
				delivered, _ := lastOut(v, "fuzz.delivered")
				return delivered < sent
			},
		}},
	}
}

func buildLostMessage(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	r := newRng(p.Get("gen", lostMessageGen))
	genMsgs := r.between(4, 9)
	drop := int64(r.between(25, 70))
	latBase := uint64(r.between(5, 24))
	var jitter uint64
	if r.intn(3) > 0 {
		jitter = uint64(r.between(4, 15))
	}
	inboxCap := r.between(4, 15)
	pace := uint64(r.between(20, 60))
	msgs := int(p.Get("messages", int64(genMsgs)))
	if p.Get("fixed", 0) != 0 {
		drop = 0
	}

	net := simnet.New(m, simnet.Options{
		DefaultLink:   simnet.LinkConfig{LatencyBase: latBase, LatencyJitter: jitter, DropPercent: drop},
		InboxCapacity: inboxCap,
	})
	net.AddNode("client")
	net.AddNode("server")
	net.Build()

	received := m.NewCell("fuzz.received", trace.Int(0))
	done := m.NewChan("fuzz.clientdone", 1)
	payloadIn := m.DeclareStream("fuzz.payload", trace.TaintData)

	sPayload := m.Site("fuzz.payload.in")
	sSend := m.Site("fuzz.send")
	sRecv := m.Site("fuzz.recv")
	sCount := m.Site("fuzz.count")
	sPace := m.Site("fuzz.pace")
	sDone := m.Site("fuzz.join")
	sSpawn := m.Site("main.spawn")
	sReport := m.Site("fuzz.report")

	server := func(t *vm.Thread) {
		for {
			net.Recv(t, sRecv, "server")
			t.Add(sCount, received, 1)
		}
	}
	client := func(t *vm.Thread) {
		for i := 0; i < msgs; i++ {
			payload := t.Input(sPayload, payloadIn).AsInt()
			net.Send(t, sSend, "client", "server", simnet.Message{
				Kind: "msg", From: "client", Nums: []int64{payload},
			})
			t.Sleep(sPace, pace)
		}
		t.Send(sDone, done, trace.Int(0))
	}

	// Drain bound: pumps serialize deliveries, so everything in flight
	// lands within msgs * (latency + jitter + pace) cycles of the last
	// send; the slack absorbs inbox backpressure.
	drain := uint64(msgs)*(latBase+jitter+pace) + 5000

	return func(t *vm.Thread) {
		net.Start(t)
		t.SpawnDaemon(sSpawn, "server", server)
		t.Spawn(sSpawn, "client", client)
		t.Recv(sDone, done)
		t.Sleep(sPace, drain)
		t.Output(sReport, m.Stream("fuzz.sent"), trace.Int(int64(msgs)))
		t.Output(sReport, m.Stream("fuzz.delivered"), t.Load(sReport, received))
	}
}

// --- fuzz-oversell ------------------------------------------------------

func oversellScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "fuzz-oversell",
		Description: "generated TOCTOU oversell: seed-shaped buyer threads " +
			"check a shared remaining-capacity cell, yield in the window, " +
			"then decrement it; concurrent buyers sell more than capacity",
		DefaultParams:  scenario.Params{"gen": oversellGen, "fixed": 0},
		DefaultSeed:    oversellSeedPins,
		TrainingParams: scenario.Params{"fixed": 1},
		Build:          buildOversell,
		Inputs:         hashInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: "fuzz.want", Min: 0, Max: 1},
		},
		ControlStreams: []string{"fuzz.want"},
		Failure: scenario.FailureSpec{
			Name: "oversell",
			Check: func(v *scenario.RunView) (bool, string) {
				capacity, okC := lastOut(v, "fuzz.capacity")
				sold, okS := lastOut(v, "fuzz.sold")
				if !okC || !okS {
					return false, ""
				}
				if sold > capacity {
					return true, "fuzz:oversell"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "toctou-window",
			Description: "the capacity check and the decrement are separate operations; buyers interleaving in the window each see enough remaining and all sell",
			Present: func(v *scenario.RunView) bool {
				capacity, _ := lastOut(v, "fuzz.capacity")
				sold, _ := lastOut(v, "fuzz.sold")
				return sold > capacity
			},
		}},
	}
}

// --- fuzz-crashpoint ----------------------------------------------------

func crashPointScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "fuzz-crashpoint",
		Description: "generated crash-point durability loss: a seed-shaped " +
			"writer appends framed records to a simulated-disk WAL and " +
			"acknowledges each append before the group fsync; a crash at an " +
			"input-chosen point loses acknowledged records",
		DefaultParams:  scenario.Params{"gen": crashPointGen, "fixed": 0},
		DefaultSeed:    crashPointSeed,
		TrainingParams: scenario.Params{"fixed": 1},
		Build:          buildCrashPoint,
		Inputs:         hashInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: "fuzz.payload", Min: 0, Max: 999},
			{Stream: "fuzz.crashplan", Min: 0, Max: 127},
		},
		ControlStreams: []string{"fuzz.crashplan"},
		Failure: scenario.FailureSpec{
			Name: "lost-record",
			Check: func(v *scenario.RunView) (bool, string) {
				acked, okA := lastOut(v, "fuzz.acked")
				recovered, okR := lastOut(v, "fuzz.recovered")
				if !okA || !okR {
					return false, ""
				}
				if recovered < acked {
					return true, "fuzz:lost-record"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "early-ack",
			Description: "appends are acknowledged as soon as they are written, before the group fsync makes them durable; a crash inside the group window discards acknowledged records",
			Present: func(v *scenario.RunView) bool {
				acked, _ := lastOut(v, "fuzz.acked")
				recovered, _ := lastOut(v, "fuzz.recovered")
				return recovered < acked
			},
		}},
	}
}

func buildCrashPoint(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	r := newRng(p.Get("gen", crashPointGen))
	genRecs := r.between(5, 11)
	genGroup := r.between(2, 3) // a group of 1 would fsync every append and mask the bug
	noise := r.intn(3)
	recs := int(p.Get("records", int64(genRecs)))
	group := int(p.Get("group", int64(genGroup)))
	fixed := p.Get("fixed", 0) != 0

	disk := m.NewDisk("fuzz.wal", vm.DiskFaults{})
	ackTally := m.NewCell("fuzz.acktally", trace.Int(0))
	done := m.NewChan("fuzz.done", 1)
	var noiseCells []trace.ObjID
	if noise > 0 {
		noiseCells = m.NewCells("fuzz.noise", noise, trace.Int(0))
	}
	payloadIn := m.DeclareStream("fuzz.payload", trace.TaintData)
	planIn := m.DeclareStream("fuzz.crashplan", trace.TaintControl)

	sPayload := m.Site("fuzz.payload.in")
	sPlan := m.Site("fuzz.plan.in")
	sAppend := m.Site("fuzz.wal.append")
	sFsync := m.Site("fuzz.wal.fsync")
	sAck := m.Site("fuzz.ack")
	sCrash := m.Site("fuzz.crash")
	sScan := m.Site("fuzz.recover.scan")
	sNoise := m.Site("fuzz.noiseop")
	sDone := m.Site("fuzz.join")
	sSpawn := m.Site("main.spawn")
	sReport := m.Site("fuzz.report")

	writer := func(t *vm.Thread) {
		plan := t.Input(sPlan, planIn).AsInt()
		if plan < 0 {
			plan = -plan
		}
		crashAfter := 1 + int(plan)%recs
		acked, durable := 0, 0
		for i := 0; i < crashAfter; i++ {
			payload := t.Input(sPayload, payloadIn).AsInt()
			simdisk.Append(t, sAppend, disk, int64(i), payload)
			if !fixed {
				// The defect: acknowledged the moment it is written,
				// while the record is still volatile.
				acked++
				t.Add(sAck, ackTally, 1)
			}
			if (i+1)%group == 0 {
				w := int(t.DiskFsync(sFsync, disk))
				if fixed {
					t.Add(sAck, ackTally, int64(w-durable))
					acked = w
				}
				durable = w
			}
			if len(noiseCells) > 0 {
				t.Add(sNoise, noiseCells[i%len(noiseCells)], payload%7)
			}
		}
		t.DiskCrash(sCrash, disk)
		t.Send(sDone, done, trace.Int(int64(acked)))
	}

	return func(t *vm.Thread) {
		t.Spawn(sSpawn, "writer", writer)
		acked := t.Recv(sDone, done).AsInt()
		recovered := int64(0)
		for _, raw := range simdisk.Scan(t, sScan, disk) {
			if _, ok := simdisk.Decode(raw); ok {
				recovered++
			}
		}
		t.Output(sReport, m.Stream("fuzz.acked"), trace.Int(acked))
		t.Output(sReport, m.Stream("fuzz.recovered"), trace.Int(recovered))
	}
}

func buildOversell(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	r := newRng(p.Get("gen", oversellGen))
	capacity := int64(r.between(2, 5))
	genBuyers := r.between(2, 4)
	genAttempts := r.between(1, 3)
	windows := make([]int, genBuyers)
	for i := range windows {
		windows[i] = r.between(1, 2)
	}
	buyers := int(p.Get("buyers", int64(genBuyers)))
	attempts := int(p.Get("attempts", int64(genAttempts)))
	fixed := p.Get("fixed", 0) != 0

	remaining := m.NewCell("fuzz.remaining", trace.Int(capacity))
	sold := m.NewCell("fuzz.sold", trace.Int(0))
	mu := m.NewMutex("fuzz.mu")
	done := m.NewChan("fuzz.done", buyers)
	wantIn := m.DeclareStream("fuzz.want", trace.TaintControl)

	sWant := m.Site("fuzz.want.in")
	sCheck := m.Site("fuzz.check")
	sWindow := m.Site("fuzz.window")
	sTake := m.Site("fuzz.take")
	sSell := m.Site("fuzz.sell")
	sLock := m.Site("fuzz.lock")
	sDone := m.Site("fuzz.join")
	sSpawn := m.Site("main.spawn")
	sReport := m.Site("fuzz.report")

	buyer := func(id int) func(*vm.Thread) {
		return func(t *vm.Thread) {
			for a := 0; a < attempts; a++ {
				v := t.Input(sWant, wantIn).AsInt()
				if v < 0 {
					v = -v
				}
				want := 1 + v%2
				if fixed {
					t.Lock(sLock, mu)
				}
				rem := t.Load(sCheck, remaining).AsInt()
				if rem >= want {
					if !fixed {
						for y := 0; y < windows[id%len(windows)]; y++ {
							t.Yield(sWindow)
						}
					}
					t.Store(sTake, remaining, trace.Int(rem-want))
					t.Add(sSell, sold, want)
				}
				if fixed {
					t.Unlock(sLock, mu)
				}
			}
			t.Send(sDone, done, trace.Int(int64(id)))
		}
	}

	return func(t *vm.Thread) {
		for b := 0; b < buyers; b++ {
			t.Spawn(sSpawn, fmt.Sprintf("buyer%d", b), buyer(b))
		}
		for b := 0; b < buyers; b++ {
			t.Recv(sDone, done)
		}
		t.Output(sReport, m.Stream("fuzz.capacity"), trace.Int(capacity))
		t.Output(sReport, m.Stream("fuzz.sold"), t.Load(sReport, sold))
	}
}

package progen

import (
	"debugdet/internal/dynokv"
	"debugdet/internal/scenario"
	"debugdet/internal/vm"
)

// Pinned sustained defaults: a (generator seed, scheduler seed) pair whose
// production run manifests the stale read. Verified by
// TestSustainedDefaultsFail.
const sustainedGen, sustainedSeed = 1, 2

// sustainedRounds brackets the generated write/read rounds per key. The
// base dynokv-staleread run is ~2.2k events at 3 rounds and event count
// scales linearly in rounds, so 28-36 rounds lands the sustained program
// at roughly 10x the corpus scenario — long enough that a default-interval
// flight recorder rotates dozens of segments and spills past any
// plausible ring.
const sustainedRoundsLo, sustainedRoundsHi = 28, 36

// Sustained returns the fuzz-sustained template variant: the
// dynokv-staleread replication scenario under generated sustained traffic
// — seed-shaped client count, key count and a ~10x round count. It rides
// in the catalog as a variant, not a corpus member, because its runs are
// an order of magnitude longer than every corpus scenario: corpus-wide
// experiments would pay the 10x on every cell, while the flight-recorder
// paths that need a long run (segment rotation, spill, retention) resolve
// it by name. Like the other fuzz templates, any generator seed is
// reproducible via Params{"gen": seed}.
func Sustained() *scenario.Scenario {
	base := dynokv.StaleRead()
	s := *base
	s.Name = "fuzz-sustained"
	s.Description = "generated sustained replication traffic: the dynokv-staleread " +
		"cluster under a seed-shaped long-running workload (~10x the corpus " +
		"scenario's event count); exercises flight-recorder segment rotation and spill"
	s.DefaultParams = scenario.Params{"gen": sustainedGen, "fixed": 0}
	s.DefaultSeed = sustainedSeed
	s.TrainingParams = scenario.Params{"fixed": 1}
	baseBuild := base.Build
	s.Build = func(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
		return baseBuild(m, sustainedParams(p))
	}
	return &s
}

// sustainedParams derives the traffic shape from the "gen" parameter and
// overlays the caller's params on top, so explicit overrides (a pinned
// round count, the fix toggle) win over the generated shape. Quorums and
// cluster size stay at the template's defaults: the stale-read window
// needs R+W <= N, and the generator's job is traffic volume, not failure
// geometry.
func sustainedParams(p scenario.Params) scenario.Params {
	r := newRng(p.Get("gen", sustainedGen))
	shape := scenario.Params{
		"rounds":  int64(r.between(sustainedRoundsLo, sustainedRoundsHi)),
		"clients": int64(r.between(2, 4)),
		"keys":    int64(r.between(2, 3)),
	}
	return shape.Clone(p)
}

package progen

import (
	"testing"

	"debugdet/internal/flightrec"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// seedCorpus primes the fuzz target with one seed per family plus the
// catalog's pinned generator seeds (ForSeed uses the whole seed as the
// generator seed, and each pinned gen was chosen congruent to its family
// index modulo the family count, so the raw gens are their own fuzz
// seeds).
func seedCorpus(f *testing.F) {
	for s := int64(0); s < int64(len(Families())); s++ {
		f.Add(s)
	}
	for _, gen := range []int64{atomicityGen, lockCycleGen, lostMessageGen, oversellGen, crashPointGen} {
		f.Add(gen)
	}
}

// FuzzProgramGeneration drives the generator itself from fuzzer-provided
// seeds: every seed must map to a valid program — it builds, runs to a
// non-aborted outcome under a tight step limit, and regenerating it
// yields a bit-identical execution.
func FuzzProgramGeneration(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, seed int64) {
		p := ForSeed(seed)
		opts := scenario.ExecOptions{Seed: p.Seed, Params: p.Params, MaxSteps: 1 << 16}
		a := p.Scenario.Exec(opts)
		if a.Result.Outcome == vm.OutcomeAborted {
			t.Fatalf("seed %d: %s (gen=%d) hit the step limit", seed, p.Scenario.Name, p.GenSeed)
		}
		b := p.Scenario.Exec(opts)
		if !trace.EventsEqual(a.Trace, b.Trace, false) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if failed, sig := p.Scenario.CheckFailure(a); failed && sig == "" {
			t.Fatalf("seed %d: failure without a signature", seed)
		}
	})
}

// FuzzSustainedFlightRecording drives the sustained long-running template
// through the flight recorder from fuzzer-provided generator seeds: every
// generated traffic shape must rotate segments past a small ring, spill
// to disk, keep recorder memory far below the event volume, and reopen
// with the whole run retained and the event count intact.
// FuzzCrashPoint sweeps the crash-point durability template over
// fuzzer-provided (generator, environment) seed pairs — the generator
// shapes the WAL writer, the environment seed picks the crash plan. Every
// generated program must execute deterministically, a failure must always
// carry the lost-record signature, and the fixed variant — which only
// acknowledges records the fsync watermark covers — must never lose an
// acknowledged record on the same crash plan.
func FuzzCrashPoint(f *testing.F) {
	f.Add(int64(crashPointGen), int64(crashPointSeed))
	for s := int64(0); s < 6; s++ {
		f.Add(s, s*3+1)
	}
	f.Fuzz(func(t *testing.T, gen, seed int64) {
		g := Normalize(gen)
		s := Scenario(CrashPoint)
		opts := scenario.ExecOptions{Seed: seed, Params: scenario.Params{"gen": g, "fixed": 0}, MaxSteps: 1 << 16}
		a := s.Exec(opts)
		if a.Result.Outcome == vm.OutcomeAborted {
			t.Fatalf("gen %d seed %d: hit the step limit", g, seed)
		}
		b := s.Exec(opts)
		if !trace.EventsEqual(a.Trace, b.Trace, false) {
			t.Fatalf("gen %d seed %d: generation is not deterministic", g, seed)
		}
		if failed, sig := s.CheckFailure(a); failed && sig != "fuzz:lost-record" {
			t.Fatalf("gen %d seed %d: failure signature %q", g, seed, sig)
		}
		fa := s.Exec(scenario.ExecOptions{Seed: seed, Params: scenario.Params{"gen": g, "fixed": 1}, MaxSteps: 1 << 16})
		if fa.Result.Outcome == vm.OutcomeAborted {
			t.Fatalf("gen %d seed %d: fixed variant hit the step limit", g, seed)
		}
		if failed, _ := s.CheckFailure(fa); failed {
			t.Fatalf("gen %d seed %d: fixed variant lost an acknowledged record", g, seed)
		}
	})
}

func FuzzSustainedFlightRecording(f *testing.F) {
	f.Add(int64(sustainedGen))
	for s := int64(0); s < 4; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		g := Normalize(seed)
		s := Sustained()
		res, err := flightrec.Record(s, s.DefaultSeed, scenario.Params{"gen": g}, flightrec.Options{
			RingSegments: 2,
			SpillDir:     t.TempDir(),
		})
		if err != nil {
			t.Fatalf("gen %d: %v", g, err)
		}
		if res.Segments < 10 || res.Spilled < res.Segments-2 {
			t.Fatalf("gen %d: %d segments, %d spilled; sustained traffic must rotate and spill",
				g, res.Segments, res.Spilled)
		}
		if res.PeakMemBytes >= res.LogBytes/4 {
			t.Fatalf("gen %d: peak recorder memory %d vs %d event bytes; ring bound is broken",
				g, res.PeakMemBytes, res.LogBytes)
		}
		lo, hi := flightrec.Retained(res.Store)
		if lo != 0 || hi != res.Events || res.Store.Meta().EventCount != res.Events {
			t.Fatalf("gen %d: reopened store covers [%d, %d) of %d events",
				g, lo, hi, res.Events)
		}
	})
}

package progen

import (
	"strings"
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// TestGenerationDeterministic pins the generator contract: the same
// generator seed always yields the same program — two executions from the
// same (gen, scheduler seed) pair are event-identical.
func TestGenerationDeterministic(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		p := ForSeed(seed)
		a := p.Scenario.Exec(scenario.ExecOptions{Seed: p.Seed, Params: p.Params})
		b := p.Scenario.Exec(scenario.ExecOptions{Seed: p.Seed, Params: p.Params})
		if !trace.EventsEqual(a.Trace, b.Trace, false) {
			t.Fatalf("seed %d: two generations of %s differ", seed, p.Scenario.Name)
		}
	}
}

// TestForSeedCoversFamilies pins the seed → program mapping: every family
// is reachable, negative seeds fold cleanly, and the params carry the
// generator seed.
func TestForSeedCoversFamilies(t *testing.T) {
	seen := make(map[Family]bool)
	for seed := int64(-8); seed < 8; seed++ {
		p := ForSeed(seed)
		seen[p.Family] = true
		if p.GenSeed < 0 {
			t.Fatalf("seed %d: negative GenSeed %d", seed, p.GenSeed)
		}
		if p.Seed <= 0 {
			t.Fatalf("seed %d: scheduler seed %d not positive", seed, p.Seed)
		}
		if got := p.Params.Get("gen", -1); got != p.GenSeed {
			t.Fatalf("seed %d: params gen = %d, want %d", seed, got, p.GenSeed)
		}
		if !strings.HasPrefix(p.Scenario.Name, "fuzz-") {
			t.Fatalf("seed %d: scenario name %q", seed, p.Scenario.Name)
		}
	}
	if len(seen) != len(Families()) {
		t.Fatalf("only %d of %d families reachable", len(seen), len(Families()))
	}
	// Each pinned generator seed was chosen congruent to its family index
	// modulo the family count, so the raw gens double as fuzz seeds for
	// their own family (seedCorpus in fuzz_test.go relies on this).
	pins := map[Family]int64{
		Atomicity:   atomicityGen,
		LockCycle:   lockCycleGen,
		LostMessage: lostMessageGen,
		Oversell:    oversellGen,
		CrashPoint:  crashPointGen,
	}
	for f, gen := range pins {
		if got := ForSeed(gen); got.Family != f || got.GenSeed != gen {
			t.Errorf("ForSeed(%d) = %s/gen=%d, want %s/gen=%d", gen, got.Family, got.GenSeed, f, gen)
		}
	}
	if Normalize(-1) != 0 || Normalize(5) != 5 {
		t.Error("Normalize fold broken")
	}
}

// TestProgramsTerminate sweeps generator seeds: every generated program
// must finish — normally, failing, crashed or deadlocked — well under the
// VM step limit. An aborted run means the generator emitted a livelock.
func TestProgramsTerminate(t *testing.T) {
	const maxSteps = 1 << 16
	for seed := int64(0); seed < 200; seed++ {
		p := ForSeed(seed)
		v := p.Scenario.Exec(scenario.ExecOptions{Seed: p.Seed, Params: p.Params, MaxSteps: maxSteps})
		if v.Result.Outcome == vm.OutcomeAborted {
			t.Fatalf("seed %d: %s (gen=%d) hit the step limit", seed, p.Scenario.Name, p.GenSeed)
		}
	}
}

// TestCorpusDefaultsFail pins the catalog contract: each family's pinned
// (gen, scheduler seed) default manifests its failure with the declared
// root cause, and each fixed variant never fails across a seed sweep.
func TestCorpusDefaultsFail(t *testing.T) {
	wantCause := map[string]string{
		"fuzz-atomicity":  "unlocked-rmw",
		"fuzz-deadlock":   "lock-order-inversion",
		"fuzz-lostmsg":    "lossy-link",
		"fuzz-oversell":   "toctou-window",
		"fuzz-crashpoint": "early-ack",
	}
	for _, s := range Corpus() {
		v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
		failed, sig := s.CheckFailure(v)
		if !failed || sig == "" {
			t.Errorf("%s: pinned default seed %d does not fail", s.Name, s.DefaultSeed)
			continue
		}
		found := false
		for _, c := range s.PresentCauses(v) {
			if c == wantCause[s.Name] {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: cause %q absent from %v", s.Name, wantCause[s.Name], s.PresentCauses(v))
		}
	}
	for _, s := range FixedVariants() {
		for seed := int64(0); seed < 12; seed++ {
			for gen := int64(0); gen < 6; gen++ {
				v := s.Exec(scenario.ExecOptions{Seed: seed, Params: scenario.Params{"gen": gen}})
				if failed, sig := s.CheckFailure(v); failed {
					t.Fatalf("%s gen=%d seed=%d still fails with %q", s.Name, gen, seed, sig)
				}
			}
		}
	}
}

// TestFamilyDistinctness: the templates inject genuinely different
// bugs — their default failures carry distinct signatures.
func TestFamilyDistinctness(t *testing.T) {
	sigs := make(map[string]string)
	for _, s := range Corpus() {
		v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
		_, sig := s.CheckFailure(v)
		if prev, dup := sigs[sig]; dup {
			t.Fatalf("families %s and %s share signature %q", prev, s.Name, sig)
		}
		sigs[sig] = s.Name
	}
	if len(sigs) < len(Families()) {
		t.Fatalf("only %d distinct failure signatures", len(sigs))
	}
}

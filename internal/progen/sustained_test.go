package progen

import (
	"testing"

	"debugdet/internal/flightrec"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// TestSustainedDefaultsFail pins the sustained template's catalog
// defaults: the pinned (gen, seed) pair manifests the stale read, the run
// is roughly 10x the base dynokv-staleread scenario, and generation is
// deterministic in the gen parameter.
func TestSustainedDefaultsFail(t *testing.T) {
	s := Sustained()
	opts := scenario.ExecOptions{Seed: s.DefaultSeed}
	a := s.Exec(opts)
	failed, sig := s.CheckFailure(a)
	if !failed || sig == "" {
		t.Fatalf("pinned defaults (gen=%d, seed=%d) do not fail", sustainedGen, s.DefaultSeed)
	}
	if n := a.Trace.Len(); n < 20000 {
		t.Fatalf("sustained run is only %d events; want ~10x the base scenario (>= 20000)", n)
	}
	b := s.Exec(opts)
	if !trace.EventsEqual(a.Trace, b.Trace, false) {
		t.Fatal("sustained generation is not deterministic")
	}
}

// TestSustainedFixedVariantHealthy: the template's fix predicate (majority
// quorums via the shared dynokv toggle) removes the failure under
// sustained traffic too.
func TestSustainedFixedVariantHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained run in -short mode")
	}
	s := Sustained()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed, Params: scenario.Params{"fixed": 1}})
	if failed, sig := s.CheckFailure(v); failed {
		t.Fatalf("fixed sustained run still fails with %q", sig)
	}
	if v.Result.Outcome != vm.OutcomeOK {
		t.Fatalf("fixed sustained run: %v", v.Result.Outcome)
	}
}

// TestSustainedFlightRotation is the satellite contract: a sustained run
// under the flight recorder rotates well past the ring and spills, while
// recorder memory stays orders of magnitude below the event volume.
func TestSustainedFlightRotation(t *testing.T) {
	s := Sustained()
	res, err := flightrec.Record(s, s.DefaultSeed, nil, flightrec.Options{
		RingSegments: 2,
		SpillDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 20000 {
		t.Fatalf("sustained flight recording saw only %d events", res.Events)
	}
	if res.Segments < 10 {
		t.Fatalf("only %d segments sealed; rotation is not exercised", res.Segments)
	}
	if res.Spilled < res.Segments-2 {
		t.Fatalf("spilled %d of %d sealed segments; ring overflow should spill", res.Spilled, res.Segments)
	}
	if res.PeakMemBytes >= res.LogBytes/4 {
		t.Fatalf("peak recorder memory %d is not small against the %d-byte event volume",
			res.PeakMemBytes, res.LogBytes)
	}
	lo, hi := flightrec.Retained(res.Store)
	if lo != 0 || hi != res.Events {
		t.Fatalf("retained [%d, %d), want [0, %d)", lo, hi, res.Events)
	}
	if !res.Failed || res.FailureSig == "" {
		t.Fatalf("sustained flight recording lost the failure: failed=%v sig=%q", res.Failed, res.FailureSig)
	}
}

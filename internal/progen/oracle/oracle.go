// Package oracle is progen's differential harness: metamorphic
// invariants of the record/replay system that must hold on *every* valid
// program, checked over generated ones — (a) replay reproduction, (b) DF
// monotonicity up the model hierarchy, (c) worker-count invariance of
// inference, (d) fork equivalence of checkpoint-forked search, (e)
// shrink soundness. Each oracle returns nil when the invariant holds and
// a descriptive error when it is violated; Check runs all five. The oracles are deterministic functions of the program,
// so a seed that passes once passes forever — which is what lets the
// normal test suite sweep a fixed seed corpus while go test -fuzz
// explores new seeds.
//
// The harness lives one package below the generator because it drives
// the full evaluation pipeline (internal/core), which the workload
// catalog — itself a progen importer — sits underneath.
package oracle

import (
	"fmt"
	"reflect"
	"strings"

	"debugdet/internal/core"
	"debugdet/internal/infer"
	"debugdet/internal/progen"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Report summarizes one program's pass through the oracles, for corpus
// statistics (how many generated runs failed, how many shrank).
type Report struct {
	// Failed reports whether the production run manifested the injected
	// bug at the program's seed.
	Failed bool
	// Sig is the production failure signature ("" when Failed is false).
	Sig string
	// Shrunk reports whether the shrink oracle synthesized a strictly
	// shorter failing execution from a reduced parameter set.
	Shrunk bool
	// DF holds the fidelity of the perfect, value and output models, in
	// that order (the monotonicity oracle's evidence).
	DF [3]float64
}

// Check runs every oracle over the program with the given inference
// budget, returning the first violation.
func Check(p progen.Program, budget int) (Report, error) {
	rep := Report{}
	if err := CheckReplayReproduction(p, budget); err != nil {
		return rep, err
	}
	df, err := CheckDFMonotonic(p, budget)
	rep.DF = df
	if err != nil {
		return rep, err
	}
	if err := CheckWorkerInvariance(p, budget); err != nil {
		return rep, err
	}
	if err := CheckForkEquivalence(p, budget); err != nil {
		return rep, err
	}
	shrunk, failed, sig, err := CheckShrinkSoundness(p, budget)
	rep.Shrunk, rep.Failed, rep.Sig = shrunk, failed, sig
	return rep, err
}

// evalOpts builds the evaluation options for one oracle run. Every axis
// that could perturb determinism is pinned: sequential workers (the
// worker-invariance oracle varies them explicitly) and a fixed budget.
func evalOpts(p progen.Program, budget, workers int) core.Options {
	return core.Options{
		Seed:         p.Seed,
		Params:       p.Params,
		ReplayBudget: budget,
		Workers:      workers,
	}
}

// CheckReplayReproduction is oracle (a): for each deterministic replayer
// — perfect, value, debug-rcse — recording the production run and
// replaying it must reproduce the model's guaranteed observables: the
// replay is accepted, the failure identity (failed flag and signature)
// matches the recording, and a perfect replay is event-identical to the
// original modulo virtual timestamps.
//
// One exemption is deliberate: when the production run ends in a machine
// deadlock, value determinism is allowed to miss. Per-thread value logs
// carry no synchronization order — exactly the limitation the corpus's
// hand-written deadlock scenario documents — so the value-guided replay
// of a synchronization-only failure is best-effort. Its soundness is
// still checked: an accepted value replay must match the recorded
// failure identity.
func CheckReplayReproduction(p progen.Program, budget int) error {
	for _, model := range []record.Model{record.Perfect, record.Value, record.DebugRCSE} {
		rec, orig, _, err := core.RecordOnly(p.Scenario, model, evalOpts(p, budget, 1))
		if err != nil {
			return fmt.Errorf("progen: %s record: %w", model, err)
		}
		res := replay.Replay(p.Scenario, rec, replay.Options{
			Budget: budget, Workers: 1,
		})
		if res.Err != nil {
			return fmt.Errorf("progen: %s replay: %w", model, res.Err)
		}
		syncOnly := orig.Result.Outcome == vm.OutcomeDeadlock
		if !res.Ok {
			if model == record.Value && syncOnly {
				continue // documented best-effort case
			}
			return fmt.Errorf("progen: %s replay of %s (gen=%d seed=%d) not accepted: %s",
				model, p.Scenario.Name, p.GenSeed, p.Seed, res.Note)
		}
		failed, sig := p.Scenario.CheckFailure(res.View)
		if failed != rec.Failed || sig != rec.FailureSig {
			return fmt.Errorf("progen: %s replay failure identity %v/%q, recorded %v/%q",
				model, failed, sig, rec.Failed, rec.FailureSig)
		}
		if model == record.Perfect {
			if !trace.EventsEqual(orig.Trace, res.View.Trace, true) {
				return fmt.Errorf("progen: perfect replay of %s (gen=%d seed=%d) is not event-identical",
					p.Scenario.Name, p.GenSeed, p.Seed)
			}
		}
	}
	return nil
}

// CheckDFMonotonic is oracle (b): debugging fidelity must be monotone up
// the determinism-model hierarchy — a model that records strictly more
// can never debug strictly worse. Checked on the deterministic end of the
// spectrum the paper orders by information content: perfect ≥ value ≥
// output. Perfect determinism must dominate both unconditionally; the
// value ≥ output leg carries the same synchronization-only exemption as
// the reproduction oracle (on a deadlocked production run the value
// replayer makes no guarantee, while "no outputs" is a constraint the
// output search can satisfy, so the leg can legitimately invert there).
func CheckDFMonotonic(p progen.Program, budget int) ([3]float64, error) {
	models := []record.Model{record.Perfect, record.Value, record.Output}
	var df [3]float64
	syncOnly := false
	for i, model := range models {
		ev, err := core.Evaluate(p.Scenario, model, evalOpts(p, budget, 1))
		if err != nil {
			return df, fmt.Errorf("progen: %s evaluate: %w", model, err)
		}
		df[i] = ev.Utility.DF
		if model == record.Perfect {
			syncOnly = ev.Orig.Result.Outcome == vm.OutcomeDeadlock
		}
	}
	const eps = 1e-9
	if df[0]+eps < df[1] || df[0]+eps < df[2] {
		return df, fmt.Errorf("progen: perfect determinism dominated on %s (gen=%d seed=%d): perfect=%.3f value=%.3f output=%.3f",
			p.Scenario.Name, p.GenSeed, p.Seed, df[0], df[1], df[2])
	}
	if !syncOnly && df[1]+eps < df[2] {
		return df, fmt.Errorf("progen: DF not monotone on %s (gen=%d seed=%d): perfect=%.3f value=%.3f output=%.3f",
			p.Scenario.Name, p.GenSeed, p.Seed, df[0], df[1], df[2])
	}
	return df, nil
}

// CheckWorkerInvariance is oracle (c): the result of a search-based
// evaluation is a deterministic function of the program and must be
// bit-identical for every worker count. Failure determinism exercises
// the full inference pool (its accept predicate is non-trivial for every
// family).
func CheckWorkerInvariance(p progen.Program, budget int) error {
	seq, err := core.Evaluate(p.Scenario, record.Failure, evalOpts(p, budget, 1))
	if err != nil {
		return fmt.Errorf("progen: sequential evaluate: %w", err)
	}
	par, err := core.Evaluate(p.Scenario, record.Failure, evalOpts(p, budget, 3))
	if err != nil {
		return fmt.Errorf("progen: parallel evaluate: %w", err)
	}
	type fingerprint struct {
		DF, DE, DU           float64
		Ok                   bool
		Attempts             int
		WorkSteps, WorkCyc   uint64
		Note                 string
		Overhead             float64
		LogBytes             int64
		OrigCauses, RepCause []string
	}
	fp := func(ev *core.Evaluation) fingerprint {
		return fingerprint{
			DF: ev.Utility.DF, DE: ev.Utility.DE, DU: ev.Utility.DU,
			Ok: ev.Replay.Ok, Attempts: ev.Replay.Attempts,
			WorkSteps: ev.Replay.WorkSteps, WorkCyc: ev.Replay.WorkCycles,
			Note: ev.Replay.Note, Overhead: ev.Overhead, LogBytes: ev.LogBytes,
			OrigCauses: ev.Fidelity.OrigCauses, RepCause: ev.Fidelity.ReplayCauses,
		}
	}
	if a, b := fp(seq), fp(par); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("progen: worker-count variance on %s (gen=%d seed=%d):\nworkers=1: %+v\nworkers=3: %+v",
			p.Scenario.Name, p.GenSeed, p.Seed, a, b)
	}
	return nil
}

// CheckForkEquivalence is oracle (d): checkpoint-forked candidate
// execution (replay.Options.Fork / infer.Forker) must accept the
// identical candidate as the from-scratch search — same acceptance, same
// attempt count, same note, same event stream and failure identity —
// across snapshot intervals and worker counts. Only the work counters
// may legitimately differ (shrinking them is the point of forking), and
// forking must never execute more events than scratch.
func CheckForkEquivalence(p progen.Program, budget int) error {
	rec, _, _, err := core.RecordOnly(p.Scenario, record.Failure, evalOpts(p, budget, 1))
	if err != nil {
		return fmt.Errorf("progen: failure record: %w", err)
	}
	base := replay.Replay(p.Scenario, rec, replay.Options{Budget: budget, Workers: 1})
	if base.Err != nil {
		return fmt.Errorf("progen: scratch replay: %w", base.Err)
	}
	for _, cfg := range []struct {
		workers  int
		interval int64
	}{
		{1, 0}, {1, 64}, {3, 0},
	} {
		fork := replay.Replay(p.Scenario, rec, replay.Options{
			Budget:       budget,
			Workers:      cfg.workers,
			Fork:         true,
			ForkInterval: cfg.interval,
		})
		if fork.Err != nil {
			return fmt.Errorf("progen: forked replay (workers=%d interval=%d): %w",
				cfg.workers, cfg.interval, fork.Err)
		}
		if fork.Ok != base.Ok || fork.Attempts != base.Attempts || fork.Note != base.Note {
			return fmt.Errorf("progen: fork variance on %s (gen=%d seed=%d, workers=%d interval=%d): ok=%v attempts=%d note=%q vs scratch ok=%v attempts=%d note=%q",
				p.Scenario.Name, p.GenSeed, p.Seed, cfg.workers, cfg.interval,
				fork.Ok, fork.Attempts, fork.Note, base.Ok, base.Attempts, base.Note)
		}
		if (base.View == nil) != (fork.View == nil) {
			return fmt.Errorf("progen: fork variance on %s (gen=%d seed=%d): one replay has a view, the other does not",
				p.Scenario.Name, p.GenSeed, p.Seed)
		}
		if base.View != nil {
			if !trace.EventsEqual(base.View.Trace, fork.View.Trace, false) {
				return fmt.Errorf("progen: forked replay of %s (gen=%d seed=%d, workers=%d interval=%d) accepted a different event stream",
					p.Scenario.Name, p.GenSeed, p.Seed, cfg.workers, cfg.interval)
			}
			bf, bs := p.Scenario.CheckFailure(base.View)
			ff, fs := p.Scenario.CheckFailure(fork.View)
			if bf != ff || bs != fs {
				return fmt.Errorf("progen: forked replay failure identity %v/%q, scratch %v/%q",
					ff, fs, bf, bs)
			}
		}
		if fork.WorkSteps > base.WorkSteps {
			return fmt.Errorf("progen: forked replay of %s (gen=%d seed=%d, workers=%d interval=%d) executed more steps (%d) than scratch (%d)",
				p.Scenario.Name, p.GenSeed, p.Seed, cfg.workers, cfg.interval,
				fork.WorkSteps, base.WorkSteps)
		}
	}
	return nil
}

// shrinkSets returns the family's reduced parameter sets (fewer threads,
// iterations or messages), each merged over the program's own parameters
// so the generator seed is preserved.
func shrinkSets(p progen.Program) []scenario.Params {
	var overrides []scenario.Params
	switch p.Family {
	case progen.Atomicity:
		overrides = []scenario.Params{{"threads": 2, "iters": 1}, {"iters": 2}}
	case progen.LockCycle:
		overrides = []scenario.Params{{"iters": 1}}
	case progen.LostMessage:
		overrides = []scenario.Params{{"messages": 2}, {"messages": 3}}
	case progen.Oversell:
		overrides = []scenario.Params{{"buyers": 2, "attempts": 1}, {"attempts": 1}}
	default: // CrashPoint
		overrides = []scenario.Params{{"records": 3}, {"records": 4, "group": 2}}
	}
	sets := make([]scenario.Params, len(overrides))
	for i, o := range overrides {
		sets[i] = p.Params.Clone(o)
	}
	return sets
}

// CheckShrinkSoundness is oracle (e): ESD-style shrinking must be sound —
// when the failure-determinism search accepts an execution synthesized
// from a reduced parameter set, that shrunken execution still exhibits
// the original failure signature, the accepted parameters really are one
// of the supplied shrink sets, and the whole search is reproducible
// (re-running it yields the identical outcome). It returns whether a
// shrunken execution was accepted and the production run's failure
// identity.
func CheckShrinkSoundness(p progen.Program, budget int) (shrunk, failed bool, sig string, err error) {
	rec, _, _, err := core.RecordOnly(p.Scenario, record.Failure, evalOpts(p, budget, 1))
	if err != nil {
		return false, false, "", fmt.Errorf("progen: failure record: %w", err)
	}
	failed, sig = rec.Failed, rec.FailureSig
	if !rec.Failed {
		return false, false, "", nil // nothing to synthesize
	}
	accept := func(v *scenario.RunView) bool {
		f, s := p.Scenario.CheckFailure(v)
		return f && s == rec.FailureSig
	}
	o := infer.Options{
		Budget:       budget,
		BaseSeed:     7,
		Params:       p.Params,
		ShrinkParams: shrinkSets(p),
		Workers:      1,
	}
	out := infer.Search(p.Scenario, accept, o)
	again := infer.Search(p.Scenario, accept, o)
	if out.Ok != again.Ok || out.Attempts != again.Attempts ||
		out.Note != again.Note || out.WorkSteps != again.WorkSteps {
		return false, failed, sig, fmt.Errorf("progen: shrink search not reproducible on %s (gen=%d seed=%d): %q/%d vs %q/%d",
			p.Scenario.Name, p.GenSeed, p.Seed, out.Note, out.Attempts, again.Note, again.Attempts)
	}
	if !out.Ok {
		return false, failed, sig, nil // budget exhausted; nothing to verify
	}
	if f, s := p.Scenario.CheckFailure(out.View); !f || s != rec.FailureSig {
		return false, failed, sig, fmt.Errorf("progen: accepted synthesis of %s does not fail with %q (got %v/%q)",
			p.Scenario.Name, rec.FailureSig, f, s)
	}
	if strings.HasPrefix(out.Note, "shrink") {
		matched := false
		for _, sp := range shrinkSets(p) {
			if reflect.DeepEqual(out.AcceptedParams, sp) {
				matched = true
				break
			}
		}
		if !matched {
			return false, failed, sig, fmt.Errorf("progen: %s accepted %q with params %v not among the shrink sets",
				p.Scenario.Name, out.Note, out.AcceptedParams)
		}
		return true, failed, sig, nil
	}
	return false, failed, sig, nil
}

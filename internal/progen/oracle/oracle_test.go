package oracle

import (
	"testing"

	"debugdet/internal/progen"
	"debugdet/internal/scenario"
)

// oracleBudget keeps the sweep affordable: generated programs are tiny
// (tens to hundreds of events), so search-based models converge — or
// demonstrably fail — well within this many attempts.
const oracleBudget = 32

// TestDifferentialOracles is the fuzzer's main theorem: the four
// metamorphic invariants of the record/replay system — replay
// reproduction, DF monotonicity, worker-count invariance, shrink
// soundness — hold over a fixed corpus of generated programs. The sweep
// is deterministic: every program, every recording and every search is a
// pure function of the seed, so this either always passes or always
// fails. It also asserts the corpus is adversarial enough to mean
// something: every family must contribute failing production runs, and
// shrinking must trigger somewhere.
func TestDifferentialOracles(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 28
	}
	failedByFamily := make(map[progen.Family]int)
	shrunk := 0
	for seed := 0; seed < seeds; seed++ {
		p := progen.ForSeed(int64(seed))
		rep, err := Check(p, oracleBudget)
		if err != nil {
			t.Fatalf("seed %d (%s gen=%d sched=%d): %v", seed, p.Family, p.GenSeed, p.Seed, err)
		}
		if rep.Failed {
			failedByFamily[p.Family]++
		}
		if rep.Shrunk {
			shrunk++
		}
	}
	for _, f := range progen.Families() {
		if failedByFamily[f] == 0 {
			t.Errorf("family %s never failed across %d seeds; the corpus is not adversarial", f, seeds)
		}
	}
	if shrunk == 0 {
		t.Errorf("no seed produced a shrunken failing execution across %d seeds", seeds)
	}
	t.Logf("%d seeds: failures per family %v, %d shrunk", seeds, failedByFamily, shrunk)
}

// TestOraclesOnPinnedDefaults runs the oracles on the catalog's four
// pinned default programs with the full default budget — the exact cells
// the matrix and figures pipelines evaluate.
func TestOraclesOnPinnedDefaults(t *testing.T) {
	for i, s := range progen.Corpus() {
		p := progen.Program{
			Family:   progen.Families()[i],
			GenSeed:  s.DefaultParams.Get("gen", 0),
			Seed:     s.DefaultSeed,
			Scenario: s,
			Params:   scenario.Params{"gen": s.DefaultParams.Get("gen", 0)},
		}
		rep, err := Check(p, 120)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if !rep.Failed {
			t.Errorf("%s: pinned default did not fail under the oracle pipeline", s.Name)
		}
	}
}

package oracle

import (
	"testing"

	"debugdet/internal/progen"
)

// fuzzBudget keeps each fuzz execution fast so the engine can explore
// many seeds per second; the deterministic sweep in oracle_test.go uses
// the larger corpus budget.
const fuzzBudget = 16

// FuzzDifferentialOracles drives the full oracle harness from
// fuzzer-provided seeds: replay reproduction, DF monotonicity,
// worker-count invariance, fork equivalence and shrink soundness must
// hold on every generated program the engine can reach.
func FuzzDifferentialOracles(f *testing.F) {
	for s := int64(0); s < int64(len(progen.Families())); s++ {
		f.Add(s)
	}
	f.Add(int64(997)) // a deadlock-family seed whose production run completes
	f.Fuzz(func(t *testing.T, seed int64) {
		p := progen.ForSeed(seed)
		if _, err := Check(p, fuzzBudget); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzForkEquivalence focuses the fuzz budget on the fork-equivalence
// oracle alone: checkpoint-forked candidate execution must accept the
// bit-identical result as from-scratch search across snapshot intervals
// and worker counts, on every generated program. The focused target
// explores many more seeds per second than the full harness.
func FuzzForkEquivalence(f *testing.F) {
	for s := int64(0); s < int64(len(progen.Families())); s++ {
		f.Add(s)
	}
	f.Add(int64(997))
	f.Fuzz(func(t *testing.T, seed int64) {
		p := progen.ForSeed(seed)
		if err := CheckForkEquivalence(p, fuzzBudget); err != nil {
			t.Fatal(err)
		}
	})
}

// Package rcse implements root cause-driven selectivity (§3.1): the
// recording policy that makes debug determinism practical. RCSE predicts
// where the root cause of a future failure is likely to lie and records
// those portions of the execution at full fidelity while relaxing the
// rest.
//
// Three selector families are provided, mirroring the paper:
//
//   - code-based selection (§3.1.1): control-plane sites, as classified by
//     the plane package, are recorded fully; data-plane sites contribute
//     only their scheduling decision;
//   - data-based selection (§3.1.2): an invariant monitor watches probe
//     points; a violation signals a likely error path and dials fidelity
//     up from that point on;
//   - combined code/data triggers (§3.1.3): runtime predicates — a
//     low-overhead race detector, request-size thresholds, or custom
//     potential-bug detectors — fire a dial-up; after a quiet period with
//     no trigger activity, fidelity dials back down.
//
// A Policy combines any set of selectors by taking the maximum demanded
// level per event, plus the baseline thread-schedule stream that RCSE
// always keeps (§4: "recording just the data on control-plane channels and
// the thread schedule").
//
// Replaying an RCSE recording re-synthesizes the unrecorded data plane by
// search (replay.Replay, model debug-rcse). Because every candidate in
// that search shares the recording's forced schedule and control inputs,
// it benefits most from checkpoint-forked candidate execution
// (infer.Forker, replay.Options.Fork): candidates re-execute only from
// their first differing data-plane draw, and equivalent candidates are
// pruned to zero work.
package rcse

import (
	"debugdet/internal/invariant"
	"debugdet/internal/lint/sites"
	"debugdet/internal/plane"
	"debugdet/internal/race"
	"debugdet/internal/record"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Selector demands a fidelity level per event. Selectors may keep state
// (triggers dial up and down as the execution proceeds).
type Selector interface {
	Name() string
	Demand(e *trace.Event) record.Level
}

// Policy is an RCSE recording policy: the maximum level any selector
// demands, with LevelSched as the floor (the thread schedule is always
// kept).
type Policy struct {
	selectors []Selector
}

// NewPolicy combines selectors into a policy.
func NewPolicy(selectors ...Selector) *Policy {
	return &Policy{selectors: selectors}
}

// Name implements record.Policy.
func (p *Policy) Name() string { return "rcse" }

// Level implements record.Policy.
func (p *Policy) Level(e *trace.Event) record.Level {
	level := record.LevelSched
	for _, s := range p.selectors {
		if d := s.Demand(e); d > level {
			level = d
		}
	}
	return level
}

// SuspectSelector records at full fidelity around statically implicated
// lock-order suspects (detlint's lockorder analysis via sites.Triage):
// every event at a suspect acquisition site, and every lock/unlock of a
// suspect mutex. Site and mutex IDs are stable across runs of a scenario
// at fixed parameters — workloads register both deterministically — which
// is what lets a triage run's suspects select in a later recording run.
type SuspectSelector struct {
	siteSet map[trace.SiteID]bool
	objSet  map[trace.ObjID]bool
}

// NewSuspectSelector builds the selector from triaged suspects.
func NewSuspectSelector(suspects []sites.Suspect) *SuspectSelector {
	s := &SuspectSelector{
		siteSet: make(map[trace.SiteID]bool),
		objSet:  make(map[trace.ObjID]bool),
	}
	for _, sp := range suspects {
		for _, id := range sp.Sites {
			s.siteSet[id] = true
		}
		for _, id := range sp.Objs {
			s.objSet[id] = true
		}
	}
	return s
}

// Name implements Selector.
func (s *SuspectSelector) Name() string { return "suspects" }

// Demand implements Selector.
func (s *SuspectSelector) Demand(e *trace.Event) record.Level {
	if s.siteSet[e.Site] {
		return record.LevelFull
	}
	if (e.Kind == trace.EvLock || e.Kind == trace.EvUnlock) && s.objSet[e.Obj] {
		return record.LevelFull
	}
	return record.LevelSkip
}

// CodeSelector implements code-based selection over a plane
// classification: full fidelity for control-plane sites and for the
// declared control input streams, schedule-only elsewhere.
type CodeSelector struct {
	classification *plane.Classification
	controlStreams map[trace.ObjID]bool
}

// NewCodeSelector builds the selector. controlStreams are the stream
// object IDs whose inputs must always be recorded (routing metadata and
// other control inputs), independent of site classification.
func NewCodeSelector(c *plane.Classification, controlStreams map[trace.ObjID]bool) *CodeSelector {
	return &CodeSelector{classification: c, controlStreams: controlStreams}
}

// Name implements Selector.
func (s *CodeSelector) Name() string { return "code" }

// Demand implements Selector.
func (s *CodeSelector) Demand(e *trace.Event) record.Level {
	if e.Kind == trace.EvInput && s.controlStreams[e.Obj] {
		return record.LevelFull
	}
	if e.Kind.IsTerminal() {
		return record.LevelFull
	}
	if e.Site != trace.NoSite && s.classification.IsControl(e.Site) {
		return record.LevelFull
	}
	return record.LevelSched
}

// Trigger is a stateful dial-up/dial-down selector. External detectors
// (race detector, invariant monitor, threshold watchers) call Fire; from
// that point every event is recorded fully until QuietPeriod events pass
// without another firing, at which point fidelity dials back down
// (§3.1.3's "dialing down recording fidelity is also important").
type Trigger struct {
	// QuietPeriod is the number of events after the last firing at which
	// the trigger disarms. 0 means it stays up forever once fired.
	QuietPeriod uint64

	name     string
	dialed   bool
	lastFire uint64
	lastSeq  uint64
	firings  int
}

// NewTrigger returns a named trigger.
func NewTrigger(name string, quietPeriod uint64) *Trigger {
	return &Trigger{name: name, QuietPeriod: quietPeriod}
}

// Name implements Selector.
func (t *Trigger) Name() string { return t.name }

// Fire dials recording fidelity up. Safe to call from detector callbacks
// mid-event; the elevated level applies from the next event onward.
func (t *Trigger) Fire() {
	t.dialed = true
	t.lastFire = t.lastSeq
	t.firings++
}

// Fired reports how many times the trigger fired.
func (t *Trigger) Fired() int { return t.firings }

// DialedUp reports whether the trigger is currently demanding full
// fidelity.
func (t *Trigger) DialedUp() bool { return t.dialed }

// Demand implements Selector.
func (t *Trigger) Demand(e *trace.Event) record.Level {
	t.lastSeq = e.Seq
	if !t.dialed {
		return record.LevelSched
	}
	if t.QuietPeriod > 0 && e.Seq-t.lastFire > t.QuietPeriod {
		t.dialed = false
		return record.LevelSched
	}
	return record.LevelFull
}

// ThresholdSelector fires its trigger when an event matches a predicate —
// the paper's data-based selection example of recording at high fidelity
// when request sizes exceed a threshold. The selector inspects events
// inline, so it needs no separate observer.
type ThresholdSelector struct {
	*Trigger
	pred func(e *trace.Event) bool
}

// NewThresholdSelector builds a predicate-fired trigger selector.
func NewThresholdSelector(name string, quietPeriod uint64, pred func(e *trace.Event) bool) *ThresholdSelector {
	return &ThresholdSelector{Trigger: NewTrigger(name, quietPeriod), pred: pred}
}

// Demand implements Selector.
func (s *ThresholdSelector) Demand(e *trace.Event) record.Level {
	if s.pred(e) {
		s.Fire()
		return record.LevelFull
	}
	return s.Trigger.Demand(e)
}

// Config assembles a complete RCSE setup: the policy for the recorder plus
// the detector observers that must be attached to the same machine.
type Config struct {
	// Classification enables code-based selection when non-nil.
	Classification *plane.Classification
	// ControlStreams (by name) are always-recorded input streams.
	ControlStreams []string
	// RaceTrigger enables the race-detector trigger with the given
	// sampling rate and per-check cost; zero disables it.
	RaceSampleRate uint64
	RaceCheckCost  uint64
	// Invariants enables the invariant-monitor trigger when non-nil.
	Invariants    *invariant.Set
	InvariantCost uint64
	// Thresholds are additional predicate-fired selectors.
	Thresholds []*ThresholdSelector
	// QuietPeriod configures trigger dial-down (events).
	QuietPeriod uint64
	// Suspects enables full-fidelity recording around statically
	// implicated lock-order inversions when non-empty.
	Suspects []sites.Suspect
}

// Setup is the assembled RCSE machinery for one machine.
type Setup struct {
	Policy    *Policy
	Observers []vm.Observer
	// RaceTrigger and InvariantTrigger expose firing statistics (nil when
	// the corresponding detector is disabled).
	RaceTrigger      *Trigger
	InvariantTrigger *Trigger
	Detector         *race.Detector
	Monitor          *invariant.Monitor
}

// Build constructs the policy and observers for a machine on which the
// scenario's program has already been built (streams registered). It is
// used as a record.PolicyFactory body.
func (c Config) Build(m *vm.Machine) *Setup {
	var selectors []Selector
	setup := &Setup{}

	if c.Classification != nil {
		streams := make(map[trace.ObjID]bool, len(c.ControlStreams))
		for _, name := range c.ControlStreams {
			if id, ok := m.StreamID(name); ok {
				streams[id] = true
			}
		}
		selectors = append(selectors, NewCodeSelector(c.Classification, streams))
	}
	quiet := c.QuietPeriod
	if c.RaceSampleRate > 0 {
		tr := NewTrigger("race-trigger", quiet)
		setup.RaceTrigger = tr
		setup.Detector = race.NewDetector(race.Options{
			SampleRate: c.RaceSampleRate,
			CheckCost:  c.RaceCheckCost,
			OnRace:     func(race.Race) { tr.Fire() },
		})
		setup.Observers = append(setup.Observers, setup.Detector)
		selectors = append(selectors, tr)
	}
	if c.Invariants != nil {
		tr := NewTrigger("invariant-trigger", quiet)
		setup.InvariantTrigger = tr
		setup.Monitor = invariant.NewMonitor(c.Invariants, c.InvariantCost,
			func(invariant.Violation) { tr.Fire() })
		setup.Observers = append(setup.Observers, setup.Monitor)
		selectors = append(selectors, tr)
	}
	for _, th := range c.Thresholds {
		selectors = append(selectors, th)
	}
	if len(c.Suspects) > 0 {
		selectors = append(selectors, NewSuspectSelector(c.Suspects))
	}
	setup.Policy = NewPolicy(selectors...)
	return setup
}

package rcse

import (
	"testing"

	"debugdet/internal/invariant"
	"debugdet/internal/plane"
	"debugdet/internal/record"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func TestPolicyTakesMaxLevel(t *testing.T) {
	low := fixedSelector{level: record.LevelSched}
	high := fixedSelector{level: record.LevelFull}
	p := NewPolicy(low, high)
	e := trace.Event{Kind: trace.EvStore}
	if got := p.Level(&e); got != record.LevelFull {
		t.Fatalf("combined level = %v, want full", got)
	}
	if p.Name() != "rcse" {
		t.Fatalf("policy name = %q", p.Name())
	}
}

func TestPolicyFloorIsSchedule(t *testing.T) {
	p := NewPolicy() // no selectors at all
	e := trace.Event{Kind: trace.EvStore}
	if got := p.Level(&e); got != record.LevelSched {
		t.Fatalf("empty policy level = %v, want sched (RCSE always keeps the thread schedule)", got)
	}
}

type fixedSelector struct{ level record.Level }

func (f fixedSelector) Name() string                     { return "fixed" }
func (f fixedSelector) Demand(*trace.Event) record.Level { return f.level }

func TestCodeSelector(t *testing.T) {
	c := &plane.Classification{Planes: map[trace.SiteID]plane.Plane{
		1: plane.Control,
		2: plane.Data,
	}}
	sel := NewCodeSelector(c, map[trace.ObjID]bool{7: true})

	ctrl := trace.Event{Kind: trace.EvStore, Site: 1}
	if sel.Demand(&ctrl) != record.LevelFull {
		t.Fatal("control-plane site not recorded fully")
	}
	data := trace.Event{Kind: trace.EvStore, Site: 2}
	if sel.Demand(&data) != record.LevelSched {
		t.Fatal("data-plane site not relaxed")
	}
	unknown := trace.Event{Kind: trace.EvStore, Site: 99}
	if sel.Demand(&unknown) != record.LevelFull {
		t.Fatal("unknown site must default to control (recorded)")
	}
	ctlInput := trace.Event{Kind: trace.EvInput, Obj: 7, Site: 2}
	if sel.Demand(&ctlInput) != record.LevelFull {
		t.Fatal("control stream input not recorded despite data-plane site")
	}
	dataInput := trace.Event{Kind: trace.EvInput, Obj: 8, Site: 2}
	if sel.Demand(&dataInput) != record.LevelSched {
		t.Fatal("data stream input not relaxed")
	}
	terminal := trace.Event{Kind: trace.EvFail, Site: 2}
	if sel.Demand(&terminal) != record.LevelFull {
		t.Fatal("terminal events must always be recorded")
	}
}

func TestTriggerDialUpAndDown(t *testing.T) {
	tr := NewTrigger("test", 10)
	mkEvent := func(seq uint64) *trace.Event { return &trace.Event{Seq: seq, Kind: trace.EvStore} }

	if tr.Demand(mkEvent(1)) != record.LevelSched {
		t.Fatal("unfired trigger demanded elevation")
	}
	tr.Fire()
	if !tr.DialedUp() || tr.Fired() != 1 {
		t.Fatal("Fire did not arm the trigger")
	}
	if tr.Demand(mkEvent(2)) != record.LevelFull {
		t.Fatal("fired trigger did not demand full fidelity")
	}
	// Within the quiet period: still up.
	if tr.Demand(mkEvent(8)) != record.LevelFull {
		t.Fatal("trigger dialed down too early")
	}
	// Past the quiet period: dials down.
	if tr.Demand(mkEvent(50)) != record.LevelSched {
		t.Fatal("trigger did not dial down after the quiet period")
	}
	if tr.DialedUp() {
		t.Fatal("DialedUp still true after dial-down")
	}
	// Refiring re-arms relative to the latest seen event.
	tr.Fire()
	if tr.Demand(mkEvent(55)) != record.LevelFull {
		t.Fatal("refire did not re-arm")
	}
}

func TestTriggerZeroQuietPeriodStaysUp(t *testing.T) {
	tr := NewTrigger("sticky", 0)
	tr.Fire()
	e := &trace.Event{Seq: 1 << 20, Kind: trace.EvStore}
	if tr.Demand(e) != record.LevelFull {
		t.Fatal("sticky trigger dialed down")
	}
}

func TestThresholdSelector(t *testing.T) {
	sel := NewThresholdSelector("bigreq", 100, func(e *trace.Event) bool {
		return e.Kind == trace.EvInput && e.Val.AsInt() > 64
	})
	small := trace.Event{Seq: 1, Kind: trace.EvInput, Val: trace.Int(10)}
	if sel.Demand(&small) != record.LevelSched {
		t.Fatal("small request elevated")
	}
	big := trace.Event{Seq: 2, Kind: trace.EvInput, Val: trace.Int(100)}
	if sel.Demand(&big) != record.LevelFull {
		t.Fatal("big request not elevated inline")
	}
	after := trace.Event{Seq: 3, Kind: trace.EvStore}
	if sel.Demand(&after) != record.LevelFull {
		t.Fatal("post-trigger event not elevated")
	}
	if sel.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", sel.Fired())
	}
}

func TestConfigBuildWiresDetectors(t *testing.T) {
	m := vm.New(vm.Config{Seed: 1, CollectTrace: true})
	m.DeclareStream("ctl", trace.TaintControl)
	inf := invariant.NewInferencer()
	inf.Observe(invariant.Key{Site: 1, Probe: 0}, trace.Int(5))
	inf.Observe(invariant.Key{Site: 1, Probe: 0}, trace.Int(5))

	cfg := Config{
		Classification: &plane.Classification{Planes: map[trace.SiteID]plane.Plane{}},
		ControlStreams: []string{"ctl"},
		RaceSampleRate: 2,
		RaceCheckCost:  3,
		Invariants:     inf.Infer(),
		InvariantCost:  2,
		QuietPeriod:    500,
		Thresholds: []*ThresholdSelector{
			NewThresholdSelector("x", 100, func(*trace.Event) bool { return false }),
		},
	}
	setup := cfg.Build(m)
	if setup.Policy == nil {
		t.Fatal("no policy built")
	}
	if setup.Detector == nil || setup.RaceTrigger == nil {
		t.Fatal("race detector not wired")
	}
	if setup.Monitor == nil || setup.InvariantTrigger == nil {
		t.Fatal("invariant monitor not wired")
	}
	if len(setup.Observers) != 2 {
		t.Fatalf("observers = %d, want 2", len(setup.Observers))
	}
	// The race trigger must elevate the policy once fired.
	e := trace.Event{Seq: 5, Kind: trace.EvStore, Site: 3}
	before := setup.Policy.Level(&e)
	setup.RaceTrigger.Fire()
	after := setup.Policy.Level(&e)
	if before != record.LevelFull {
		// Site 3 is unclassified → control by default → already full;
		// use a data site instead for the elevation check.
		t.Logf("unclassified site recorded fully as expected")
	}
	_ = after
}

func TestRaceTriggerFiresOnRacyRun(t *testing.T) {
	m := vm.New(vm.Config{Seed: 2, CollectTrace: true})
	cell := m.NewCell("c", trace.Int(0))
	site := m.Site("w")
	sp := m.Site("spawn")

	cfg := Config{RaceSampleRate: 1, QuietPeriod: 0}
	setup := cfg.Build(m)
	for _, o := range setup.Observers {
		m.Attach(o)
	}
	w := func(t *vm.Thread) {
		for i := 0; i < 10; i++ {
			v := t.Load(site, cell)
			t.Store(site, cell, trace.Int(v.AsInt()+1))
		}
	}
	m.Run(func(t *vm.Thread) {
		t.Spawn(sp, "a", w)
		t.Spawn(sp, "b", w)
	})
	if setup.RaceTrigger.Fired() == 0 {
		t.Fatal("race trigger never fired on a racy run")
	}
}

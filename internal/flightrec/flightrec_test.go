package flightrec_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"debugdet/internal/flightrec"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// flightScenarios is the integration corpus slice: one small scenario and
// one with real message/stream traffic.
func flightScenarios(t *testing.T) []*scenario.Scenario {
	t.Helper()
	stale, err := workload.ByName("dynokv-staleread")
	if err != nil {
		t.Fatal(err)
	}
	return []*scenario.Scenario{workload.Bank(), stale}
}

// plainRecording is the reference: the monolithic perfect recording of the
// same (scenario, seed). Flight recording must not perturb the schedule,
// so its event stream is expected to be identical.
func plainRecording(t *testing.T, s *scenario.Scenario) *record.Recording {
	t.Helper()
	rec, _, err := record.Record(s, record.Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatalf("%s: record: %v", s.Name, err)
	}
	return rec
}

func flightRecord(t *testing.T, s *scenario.Scenario, o flightrec.Options) *flightrec.RecordResult {
	t.Helper()
	if o.SpillDir == "" {
		o.SpillDir = filepath.Join(t.TempDir(), "spill")
	}
	res, err := flightrec.Record(s, s.DefaultSeed, nil, o)
	if err != nil {
		t.Fatalf("%s: flight record: %v", s.Name, err)
	}
	return res
}

func assertEventsMatch(t *testing.T, ctx string, got, want []trace.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !replay.EventsMatch(&got[i], &want[i]) {
			t.Fatalf("%s: event %d differs:\ngot  %+v\nwant %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestFlightRecordMatchesRecording: a flight-recorded run reproduces the
// monolithic recording's event stream, schedule and terminal identity
// exactly — streaming changes where bytes go, not what happens.
func TestFlightRecordMatchesRecording(t *testing.T) {
	for _, s := range flightScenarios(t) {
		t.Run(s.Name, func(t *testing.T) {
			plain := plainRecording(t, s)
			interval := uint64(len(plain.Full)) / 6
			if interval < 4 {
				interval = 4
			}
			res := flightRecord(t, s, flightrec.Options{Interval: interval, RingSegments: 2})
			st := res.Store

			if res.Events != uint64(len(plain.Full)) {
				t.Fatalf("flight recorded %d events, plain recording has %d", res.Events, len(plain.Full))
			}
			if res.Failed != plain.Failed || res.FailureSig != plain.FailureSig {
				t.Fatalf("terminal identity (%v, %q), plain recording has (%v, %q)",
					res.Failed, res.FailureSig, plain.Failed, plain.FailureSig)
			}
			meta := st.Meta()
			if meta.Scenario != s.Name || meta.Model != record.Perfect || !meta.SchedComplete {
				t.Fatalf("meta %+v", meta)
			}
			if meta.EventCount != uint64(len(plain.Full)) {
				t.Fatalf("meta.EventCount %d, want %d", meta.EventCount, len(plain.Full))
			}
			if !st.Finalized() {
				t.Fatal("store not finalized")
			}

			lo, hi := flightrec.Retained(st)
			if lo != 0 || hi != meta.EventCount {
				t.Fatalf("retained [%d, %d), want [0, %d)", lo, hi, meta.EventCount)
			}
			evs, err := flightrec.EventRange(st, 0, hi)
			if err != nil {
				t.Fatal(err)
			}
			assertEventsMatch(t, "full range", evs, plain.Full)

			sched, err := st.Sched(0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sched, plain.Sched) {
				t.Fatal("schedule differs from plain recording")
			}

			// Segment table sanity: contiguous, boundaries on the interval.
			infos := st.Segments()
			if len(infos) < 3 {
				t.Fatalf("only %d segments; interval %d over %d events should rotate more", len(infos), interval, res.Events)
			}
			for i, si := range infos {
				if i > 0 && si.From != infos[i-1].To {
					t.Fatalf("segment %d starts at %d, previous ends at %d", i, si.From, infos[i-1].To)
				}
				if si.From%interval != 0 {
					t.Fatalf("segment %d starts at %d, not on interval %d", i, si.From, interval)
				}
			}
			if res.Spilled != len(infos) || res.Evicted != 0 {
				t.Fatalf("spilled %d evicted %d, store retains %d", res.Spilled, res.Evicted, len(infos))
			}
		})
	}
}

// TestFlightSeekEquivalence: seeking into a spill directory restores the
// exact machine state of the recorded run, and the suffix replayed from
// there is bit-identical to the corresponding slice of the plain
// recording (the store-backed version of the seek equivalence contract).
func TestFlightSeekEquivalence(t *testing.T) {
	for _, s := range flightScenarios(t) {
		t.Run(s.Name, func(t *testing.T) {
			plain := plainRecording(t, s)
			interval := uint64(len(plain.Full)) / 5
			if interval < 4 {
				interval = 4
			}
			res := flightRecord(t, s, flightrec.Options{Interval: interval})
			st := res.Store

			seqs := st.SnapshotSeqs()
			if len(seqs) == 0 {
				t.Fatalf("no boundary snapshots with interval %d over %d events", interval, res.Events)
			}
			for _, q := range seqs {
				// Mid-segment target: the boundary restores, then a short
				// replayed remainder lands exactly on target.
				target := q + 3
				if target > res.Events {
					target = res.Events
				}
				sess, err := replay.SeekStore(s, st, target, replay.Options{})
				if err != nil {
					t.Fatalf("seek %d: %v", target, err)
				}
				if !sess.FromCheckpoint || sess.SuffixFrom != q {
					t.Fatalf("seek %d: FromCheckpoint=%v SuffixFrom=%d, want boundary %d",
						target, sess.FromCheckpoint, sess.SuffixFrom, q)
				}
				if sess.Pos() != target {
					t.Fatalf("seek %d: positioned at %d", target, sess.Pos())
				}
				view, ok := sess.RunToEnd()
				if !ok {
					t.Fatalf("seek %d: replay did not reproduce the run", target)
				}
				assertEventsMatch(t, "suffix", view.Trace.Events, plain.Full[q:])
			}

			// Boundary state parity: the machine paused exactly at a
			// boundary equals the boundary snapshot.
			q := seqs[len(seqs)-1]
			cp, err := st.BestSnapshot(q)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := replay.SeekStore(s, st, q, replay.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := sess.Machine.Snapshot(vm.NoRunningThread)
			if err := got.EqualState(cp); err != nil {
				t.Fatalf("state at boundary %d differs from snapshot: %v", q, err)
			}
			sess.Close()
		})
	}
}

// TestFlightSegmentedWorkerInvariance: segmented replay over a spill
// directory validates, and its result is deep-equal for every worker
// count.
func TestFlightSegmentedWorkerInvariance(t *testing.T) {
	for _, s := range flightScenarios(t) {
		t.Run(s.Name, func(t *testing.T) {
			plain := plainRecording(t, s)
			interval := uint64(len(plain.Full)) / 5
			if interval < 4 {
				interval = 4
			}
			res := flightRecord(t, s, flightrec.Options{Interval: interval})
			st := res.Store

			type fingerprint struct {
				Ok        bool
				Segments  int
				Mismatch  int64
				WorkSteps uint64
				Events    []trace.Event
			}
			var base *fingerprint
			for _, workers := range []int{1, 2, 4} {
				sr, err := replay.SegmentedStore(s, st, replay.Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !sr.Ok || sr.Mismatch != -1 {
					t.Fatalf("workers=%d: Ok=%v Mismatch=%d", workers, sr.Ok, sr.Mismatch)
				}
				fp := &fingerprint{sr.Ok, sr.Segments, sr.Mismatch, sr.WorkSteps, sr.View.Trace.Events}
				if base == nil {
					base = fp
					assertEventsMatch(t, "stitched", fp.Events, plain.Full)
					continue
				}
				if !reflect.DeepEqual(fp, base) {
					t.Fatalf("workers=%d: result differs from workers=1", workers)
				}
			}
		})
	}
}

// TestFlightDegenerateLayouts pins the two degenerate segment layouts:
// a run shorter than one interval (single segment, no snapshots — seek
// falls back to replay-from-start) and a single-checkpoint run (two
// segments, one snapshot).
func TestFlightDegenerateLayouts(t *testing.T) {
	s := workload.Bank()
	plain := plainRecording(t, s)
	n := uint64(len(plain.Full))

	t.Run("checkpoint-free", func(t *testing.T) {
		res := flightRecord(t, s, flightrec.Options{Interval: 2 * n})
		st := res.Store
		if got := st.Segments(); len(got) != 1 || got[0].From != 0 || got[0].To != n {
			t.Fatalf("segments %+v, want one [0, %d)", got, n)
		}
		if seqs := st.SnapshotSeqs(); len(seqs) != 0 {
			t.Fatalf("snapshots %v, want none", seqs)
		}
		sess, err := replay.SeekStore(s, st, n/2, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sess.FromCheckpoint {
			t.Fatal("checkpoint-free store seeked from a checkpoint")
		}
		if sess.Pos() != n/2 {
			t.Fatalf("positioned at %d, want %d", sess.Pos(), n/2)
		}
		view, ok := sess.RunToEnd()
		if !ok {
			t.Fatal("fallback replay did not reproduce the run")
		}
		assertEventsMatch(t, "fallback", view.Trace.Events, plain.Full)

		sr, err := replay.SegmentedStore(s, st, replay.Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Ok || sr.Segments != 1 {
			t.Fatalf("segmented: Ok=%v Segments=%d", sr.Ok, sr.Segments)
		}
	})

	t.Run("single-checkpoint", func(t *testing.T) {
		interval := n - 2
		res := flightRecord(t, s, flightrec.Options{Interval: interval})
		st := res.Store
		if got := st.Segments(); len(got) != 2 {
			t.Fatalf("%d segments, want 2", len(got))
		}
		seqs := st.SnapshotSeqs()
		if len(seqs) != 1 || seqs[0] != interval {
			t.Fatalf("snapshots %v, want [%d]", seqs, interval)
		}
		// Before the lone boundary: falls back to the start.
		sess, err := replay.SeekStore(s, st, interval-1, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sess.FromCheckpoint {
			t.Fatal("target before the only checkpoint restored from it")
		}
		sess.Close()
		// At and past it: restores.
		sess, err = replay.SeekStore(s, st, interval, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sess.FromCheckpoint || sess.SuffixFrom != interval {
			t.Fatalf("FromCheckpoint=%v SuffixFrom=%d, want restore at %d", sess.FromCheckpoint, sess.SuffixFrom, interval)
		}
		view, ok := sess.RunToEnd()
		if !ok {
			t.Fatal("replay did not reproduce the run")
		}
		assertEventsMatch(t, "tail", view.Trace.Events, plain.Full[interval:])
	})
}

// TestFlightRetention: with a retention cap old segments are evicted from
// disk, yet the retained tail stays seekable and pre-tail targets still
// work via the never-truncated feed log.
func TestFlightRetention(t *testing.T) {
	stale, err := workload.ByName("dynokv-staleread")
	if err != nil {
		t.Fatal(err)
	}
	plain := plainRecording(t, stale)
	n := uint64(len(plain.Full))
	interval := n / 10
	if interval < 4 {
		interval = 4
	}
	res := flightRecord(t, stale, flightrec.Options{Interval: interval, RingSegments: 1, Retention: 3})
	st := res.Store

	if res.Evicted == 0 {
		t.Fatalf("retention 3 over %d segments evicted nothing", res.Segments)
	}
	if got := len(st.Segments()); got > 3 {
		t.Fatalf("store retains %d segments, cap is 3", got)
	}
	lo, hi := flightrec.Retained(st)
	if lo == 0 || hi != n {
		t.Fatalf("retained [%d, %d), want a proper tail ending at %d", lo, hi, n)
	}

	// The retained tail seeks from its boundary snapshots.
	sess, err := replay.SeekStore(stale, st, hi-1, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.FromCheckpoint || sess.SuffixFrom < lo {
		t.Fatalf("tail seek: FromCheckpoint=%v SuffixFrom=%d, retained from %d", sess.FromCheckpoint, sess.SuffixFrom, lo)
	}
	view, ok := sess.RunToEnd()
	if !ok {
		t.Fatal("tail replay did not reproduce the run")
	}
	assertEventsMatch(t, "tail suffix", view.Trace.Events, plain.Full[sess.SuffixFrom:])

	// A pre-tail target falls back to the feed log: full replay from 0.
	sess, err = replay.SeekStore(stale, st, lo/2, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.FromCheckpoint {
		t.Fatal("evicted-range target restored from a checkpoint")
	}
	if sess.Pos() != lo/2 {
		t.Fatalf("positioned at %d, want %d", sess.Pos(), lo/2)
	}
	view, ok = sess.RunToEnd()
	if !ok {
		t.Fatal("pre-tail replay did not reproduce the run")
	}
	assertEventsMatch(t, "pre-tail", view.Trace.Events, plain.Full)

	// Segmented replay validates the retained tail, worker-invariant.
	var ref *replay.SegmentedResult
	for _, workers := range []int{1, 4} {
		sr, err := replay.SegmentedStore(stale, st, replay.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sr.Ok || sr.Mismatch != -1 {
			t.Fatalf("workers=%d: Ok=%v Mismatch=%d", workers, sr.Ok, sr.Mismatch)
		}
		if ref == nil {
			ref = sr
			assertEventsMatch(t, "stitched tail", sr.View.Trace.Events, plain.Full[lo:])
			continue
		}
		if !reflect.DeepEqual(sr.View.Trace.Events, ref.View.Trace.Events) ||
			sr.Segments != ref.Segments || sr.WorkSteps != ref.WorkSteps {
			t.Fatalf("workers=%d: result differs from workers=1", workers)
		}
	}

	// EventRange outside the retained tail must refuse, not fabricate.
	if _, err := flightrec.EventRange(st, 0, lo+1); err == nil {
		t.Fatal("EventRange over the evicted prefix succeeded")
	}
}

// TestStoreDebugger drives the interactive session over a spill directory:
// cursor navigation across checkpoints, event inspection inside the
// retained range, and clamping outside it.
func TestStoreDebugger(t *testing.T) {
	s := workload.Bank()
	plain := plainRecording(t, s)
	n := uint64(len(plain.Full))
	interval := n / 4
	if interval < 4 {
		interval = 4
	}
	res := flightRecord(t, s, flightrec.Options{Interval: interval})
	st := res.Store

	d, err := replay.NewStoreDebugger(s, st, replay.DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != n {
		t.Fatalf("Len %d, want %d", d.Len(), n)
	}
	if !reflect.DeepEqual(d.Checkpoints(), st.SnapshotSeqs()) {
		t.Fatalf("Checkpoints %v, store has %v", d.Checkpoints(), st.SnapshotSeqs())
	}
	for _, target := range []uint64{0, 1, interval - 1, interval, interval + 2, n / 2, n - 1, n} {
		if err := d.SeekTo(target); err != nil {
			t.Fatalf("SeekTo %d: %v", target, err)
		}
		if d.Pos() != target {
			t.Fatalf("SeekTo %d: cursor at %d", target, d.Pos())
		}
		if target < n {
			ev, ok := d.Event()
			if !ok {
				t.Fatalf("no event at %d", target)
			}
			if !replay.EventsMatch(&ev, &plain.Full[target]) {
				t.Fatalf("event at %d differs from recording", target)
			}
		}
	}
	if err := d.Back(7); err != nil {
		t.Fatal(err)
	}
	if d.Pos() != n-7 {
		t.Fatalf("Back(7) landed at %d, want %d", d.Pos(), n-7)
	}
	evs := d.Events(0, n)
	assertEventsMatch(t, "debugger window", evs, plain.Full)
}

// TestOpenRejectsMissing: opening a directory with no manifest (or none at
// all) errors instead of inventing an empty store.
func TestOpenRejectsMissing(t *testing.T) {
	if _, err := flightrec.Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open on a nonexistent directory succeeded")
	}
	if _, err := flightrec.Open(t.TempDir()); err == nil {
		t.Fatal("Open on an empty directory succeeded")
	}
}

package flightrec_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"debugdet/internal/flightrec"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// flightScenarios is the integration corpus slice: one small scenario,
// one with real message/stream traffic, and one whose trace carries
// simulated-disk operations (crash-restart WAL recovery).
func flightScenarios(t *testing.T) []*scenario.Scenario {
	t.Helper()
	out := []*scenario.Scenario{workload.Bank()}
	for _, name := range []string{"dynokv-staleread", "disk-tornwal"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// plainRecording is the reference: the monolithic perfect recording of the
// same (scenario, seed). Flight recording must not perturb the schedule,
// so its event stream is expected to be identical.
func plainRecording(t *testing.T, s *scenario.Scenario) *record.Recording {
	t.Helper()
	rec, _, err := record.Record(s, record.Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatalf("%s: record: %v", s.Name, err)
	}
	return rec
}

func flightRecord(t *testing.T, s *scenario.Scenario, o flightrec.Options) *flightrec.RecordResult {
	t.Helper()
	if o.SpillDir == "" {
		o.SpillDir = filepath.Join(t.TempDir(), "spill")
	}
	res, err := flightrec.Record(s, s.DefaultSeed, nil, o)
	if err != nil {
		t.Fatalf("%s: flight record: %v", s.Name, err)
	}
	return res
}

func assertEventsMatch(t *testing.T, ctx string, got, want []trace.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !replay.EventsMatch(&got[i], &want[i]) {
			t.Fatalf("%s: event %d differs:\ngot  %+v\nwant %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestFlightRecordMatchesRecording: a flight-recorded run reproduces the
// monolithic recording's event stream, schedule and terminal identity
// exactly — streaming changes where bytes go, not what happens.
func TestFlightRecordMatchesRecording(t *testing.T) {
	for _, s := range flightScenarios(t) {
		t.Run(s.Name, func(t *testing.T) {
			plain := plainRecording(t, s)
			interval := uint64(len(plain.Full)) / 6
			if interval < 4 {
				interval = 4
			}
			res := flightRecord(t, s, flightrec.Options{Interval: interval, RingSegments: 2})
			st := res.Store

			if res.Events != uint64(len(plain.Full)) {
				t.Fatalf("flight recorded %d events, plain recording has %d", res.Events, len(plain.Full))
			}
			if res.Failed != plain.Failed || res.FailureSig != plain.FailureSig {
				t.Fatalf("terminal identity (%v, %q), plain recording has (%v, %q)",
					res.Failed, res.FailureSig, plain.Failed, plain.FailureSig)
			}
			meta := st.Meta()
			if meta.Scenario != s.Name || meta.Model != record.Perfect || !meta.SchedComplete {
				t.Fatalf("meta %+v", meta)
			}
			if meta.EventCount != uint64(len(plain.Full)) {
				t.Fatalf("meta.EventCount %d, want %d", meta.EventCount, len(plain.Full))
			}
			if !st.Finalized() {
				t.Fatal("store not finalized")
			}

			lo, hi := flightrec.Retained(st)
			if lo != 0 || hi != meta.EventCount {
				t.Fatalf("retained [%d, %d), want [0, %d)", lo, hi, meta.EventCount)
			}
			evs, err := flightrec.EventRange(st, 0, hi)
			if err != nil {
				t.Fatal(err)
			}
			assertEventsMatch(t, "full range", evs, plain.Full)

			sched, err := st.Sched(0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sched, plain.Sched) {
				t.Fatal("schedule differs from plain recording")
			}

			// Segment table sanity: contiguous, boundaries on the interval.
			infos := st.Segments()
			if len(infos) < 3 {
				t.Fatalf("only %d segments; interval %d over %d events should rotate more", len(infos), interval, res.Events)
			}
			for i, si := range infos {
				if i > 0 && si.From != infos[i-1].To {
					t.Fatalf("segment %d starts at %d, previous ends at %d", i, si.From, infos[i-1].To)
				}
				if si.From%interval != 0 {
					t.Fatalf("segment %d starts at %d, not on interval %d", i, si.From, interval)
				}
			}
			if res.Spilled != len(infos) || res.Evicted != 0 {
				t.Fatalf("spilled %d evicted %d, store retains %d", res.Spilled, res.Evicted, len(infos))
			}
		})
	}
}

// TestFlightSeekEquivalence: seeking into a spill directory restores the
// exact machine state of the recorded run, and the suffix replayed from
// there is bit-identical to the corresponding slice of the plain
// recording (the store-backed version of the seek equivalence contract).
func TestFlightSeekEquivalence(t *testing.T) {
	for _, s := range flightScenarios(t) {
		t.Run(s.Name, func(t *testing.T) {
			plain := plainRecording(t, s)
			interval := uint64(len(plain.Full)) / 5
			if interval < 4 {
				interval = 4
			}
			res := flightRecord(t, s, flightrec.Options{Interval: interval})
			st := res.Store

			seqs := st.SnapshotSeqs()
			if len(seqs) == 0 {
				t.Fatalf("no boundary snapshots with interval %d over %d events", interval, res.Events)
			}
			for _, q := range seqs {
				// Mid-segment target: the boundary restores, then a short
				// replayed remainder lands exactly on target.
				target := q + 3
				if target > res.Events {
					target = res.Events
				}
				sess, err := replay.SeekStore(s, st, target, replay.Options{})
				if err != nil {
					t.Fatalf("seek %d: %v", target, err)
				}
				if !sess.FromCheckpoint || sess.SuffixFrom != q {
					t.Fatalf("seek %d: FromCheckpoint=%v SuffixFrom=%d, want boundary %d",
						target, sess.FromCheckpoint, sess.SuffixFrom, q)
				}
				if sess.Pos() != target {
					t.Fatalf("seek %d: positioned at %d", target, sess.Pos())
				}
				view, ok := sess.RunToEnd()
				if !ok {
					t.Fatalf("seek %d: replay did not reproduce the run", target)
				}
				assertEventsMatch(t, "suffix", view.Trace.Events, plain.Full[q:])
			}

			// Boundary state parity: the machine paused exactly at a
			// boundary equals the boundary snapshot.
			q := seqs[len(seqs)-1]
			cp, err := st.BestSnapshot(q)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := replay.SeekStore(s, st, q, replay.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := sess.Machine.Snapshot(vm.NoRunningThread)
			if err := got.EqualState(cp); err != nil {
				t.Fatalf("state at boundary %d differs from snapshot: %v", q, err)
			}
			sess.Close()
		})
	}
}

// TestFlightSegmentedWorkerInvariance: segmented replay over a spill
// directory validates, and its result is deep-equal for every worker
// count.
func TestFlightSegmentedWorkerInvariance(t *testing.T) {
	for _, s := range flightScenarios(t) {
		t.Run(s.Name, func(t *testing.T) {
			plain := plainRecording(t, s)
			interval := uint64(len(plain.Full)) / 5
			if interval < 4 {
				interval = 4
			}
			res := flightRecord(t, s, flightrec.Options{Interval: interval})
			st := res.Store

			type fingerprint struct {
				Ok        bool
				Segments  int
				Mismatch  int64
				WorkSteps uint64
				Events    []trace.Event
			}
			var base *fingerprint
			for _, workers := range []int{1, 2, 4} {
				sr, err := replay.SegmentedStore(s, st, replay.Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !sr.Ok || sr.Mismatch != -1 {
					t.Fatalf("workers=%d: Ok=%v Mismatch=%d", workers, sr.Ok, sr.Mismatch)
				}
				fp := &fingerprint{sr.Ok, sr.Segments, sr.Mismatch, sr.WorkSteps, sr.View.Trace.Events}
				if base == nil {
					base = fp
					assertEventsMatch(t, "stitched", fp.Events, plain.Full)
					continue
				}
				if !reflect.DeepEqual(fp, base) {
					t.Fatalf("workers=%d: result differs from workers=1", workers)
				}
			}
		})
	}
}

// TestFlightDegenerateLayouts pins the two degenerate segment layouts:
// a run shorter than one interval (single segment, no snapshots — seek
// falls back to replay-from-start) and a single-checkpoint run (two
// segments, one snapshot).
func TestFlightDegenerateLayouts(t *testing.T) {
	s := workload.Bank()
	plain := plainRecording(t, s)
	n := uint64(len(plain.Full))

	t.Run("checkpoint-free", func(t *testing.T) {
		res := flightRecord(t, s, flightrec.Options{Interval: 2 * n})
		st := res.Store
		if got := st.Segments(); len(got) != 1 || got[0].From != 0 || got[0].To != n {
			t.Fatalf("segments %+v, want one [0, %d)", got, n)
		}
		if seqs := st.SnapshotSeqs(); len(seqs) != 0 {
			t.Fatalf("snapshots %v, want none", seqs)
		}
		sess, err := replay.SeekStore(s, st, n/2, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sess.FromCheckpoint {
			t.Fatal("checkpoint-free store seeked from a checkpoint")
		}
		if sess.Pos() != n/2 {
			t.Fatalf("positioned at %d, want %d", sess.Pos(), n/2)
		}
		view, ok := sess.RunToEnd()
		if !ok {
			t.Fatal("fallback replay did not reproduce the run")
		}
		assertEventsMatch(t, "fallback", view.Trace.Events, plain.Full)

		sr, err := replay.SegmentedStore(s, st, replay.Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Ok || sr.Segments != 1 {
			t.Fatalf("segmented: Ok=%v Segments=%d", sr.Ok, sr.Segments)
		}
	})

	t.Run("single-checkpoint", func(t *testing.T) {
		interval := n - 2
		res := flightRecord(t, s, flightrec.Options{Interval: interval})
		st := res.Store
		if got := st.Segments(); len(got) != 2 {
			t.Fatalf("%d segments, want 2", len(got))
		}
		seqs := st.SnapshotSeqs()
		if len(seqs) != 1 || seqs[0] != interval {
			t.Fatalf("snapshots %v, want [%d]", seqs, interval)
		}
		// Before the lone boundary: falls back to the start.
		sess, err := replay.SeekStore(s, st, interval-1, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sess.FromCheckpoint {
			t.Fatal("target before the only checkpoint restored from it")
		}
		sess.Close()
		// At and past it: restores.
		sess, err = replay.SeekStore(s, st, interval, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sess.FromCheckpoint || sess.SuffixFrom != interval {
			t.Fatalf("FromCheckpoint=%v SuffixFrom=%d, want restore at %d", sess.FromCheckpoint, sess.SuffixFrom, interval)
		}
		view, ok := sess.RunToEnd()
		if !ok {
			t.Fatal("replay did not reproduce the run")
		}
		assertEventsMatch(t, "tail", view.Trace.Events, plain.Full[interval:])
	})
}

// TestFlightRetention: with a retention cap old segments are evicted from
// disk, yet the retained tail stays seekable and pre-tail targets still
// work via the never-truncated feed log.
func TestFlightRetention(t *testing.T) {
	stale, err := workload.ByName("dynokv-staleread")
	if err != nil {
		t.Fatal(err)
	}
	plain := plainRecording(t, stale)
	n := uint64(len(plain.Full))
	interval := n / 10
	if interval < 4 {
		interval = 4
	}
	res := flightRecord(t, stale, flightrec.Options{Interval: interval, RingSegments: 1, Retention: 3})
	st := res.Store

	if res.Evicted == 0 {
		t.Fatalf("retention 3 over %d segments evicted nothing", res.Segments)
	}
	if got := len(st.Segments()); got > 3 {
		t.Fatalf("store retains %d segments, cap is 3", got)
	}
	lo, hi := flightrec.Retained(st)
	if lo == 0 || hi != n {
		t.Fatalf("retained [%d, %d), want a proper tail ending at %d", lo, hi, n)
	}

	// The retained tail seeks from its boundary snapshots.
	sess, err := replay.SeekStore(stale, st, hi-1, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.FromCheckpoint || sess.SuffixFrom < lo {
		t.Fatalf("tail seek: FromCheckpoint=%v SuffixFrom=%d, retained from %d", sess.FromCheckpoint, sess.SuffixFrom, lo)
	}
	view, ok := sess.RunToEnd()
	if !ok {
		t.Fatal("tail replay did not reproduce the run")
	}
	assertEventsMatch(t, "tail suffix", view.Trace.Events, plain.Full[sess.SuffixFrom:])

	// A pre-tail target falls back to the feed log: full replay from 0.
	sess, err = replay.SeekStore(stale, st, lo/2, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.FromCheckpoint {
		t.Fatal("evicted-range target restored from a checkpoint")
	}
	if sess.Pos() != lo/2 {
		t.Fatalf("positioned at %d, want %d", sess.Pos(), lo/2)
	}
	view, ok = sess.RunToEnd()
	if !ok {
		t.Fatal("pre-tail replay did not reproduce the run")
	}
	assertEventsMatch(t, "pre-tail", view.Trace.Events, plain.Full)

	// Segmented replay validates the retained tail, worker-invariant.
	var ref *replay.SegmentedResult
	for _, workers := range []int{1, 4} {
		sr, err := replay.SegmentedStore(stale, st, replay.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sr.Ok || sr.Mismatch != -1 {
			t.Fatalf("workers=%d: Ok=%v Mismatch=%d", workers, sr.Ok, sr.Mismatch)
		}
		if ref == nil {
			ref = sr
			assertEventsMatch(t, "stitched tail", sr.View.Trace.Events, plain.Full[lo:])
			continue
		}
		if !reflect.DeepEqual(sr.View.Trace.Events, ref.View.Trace.Events) ||
			sr.Segments != ref.Segments || sr.WorkSteps != ref.WorkSteps {
			t.Fatalf("workers=%d: result differs from workers=1", workers)
		}
	}

	// EventRange outside the retained tail must refuse, not fabricate.
	if _, err := flightrec.EventRange(st, 0, lo+1); err == nil {
		t.Fatal("EventRange over the evicted prefix succeeded")
	}
}

// TestStoreDebugger drives the interactive session over a spill directory:
// cursor navigation across checkpoints, event inspection inside the
// retained range, and clamping outside it.
func TestStoreDebugger(t *testing.T) {
	s := workload.Bank()
	plain := plainRecording(t, s)
	n := uint64(len(plain.Full))
	interval := n / 4
	if interval < 4 {
		interval = 4
	}
	res := flightRecord(t, s, flightrec.Options{Interval: interval})
	st := res.Store

	d, err := replay.NewStoreDebugger(s, st, replay.DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != n {
		t.Fatalf("Len %d, want %d", d.Len(), n)
	}
	if !reflect.DeepEqual(d.Checkpoints(), st.SnapshotSeqs()) {
		t.Fatalf("Checkpoints %v, store has %v", d.Checkpoints(), st.SnapshotSeqs())
	}
	for _, target := range []uint64{0, 1, interval - 1, interval, interval + 2, n / 2, n - 1, n} {
		if err := d.SeekTo(target); err != nil {
			t.Fatalf("SeekTo %d: %v", target, err)
		}
		if d.Pos() != target {
			t.Fatalf("SeekTo %d: cursor at %d", target, d.Pos())
		}
		if target < n {
			ev, ok := d.Event()
			if !ok {
				t.Fatalf("no event at %d", target)
			}
			if !replay.EventsMatch(&ev, &plain.Full[target]) {
				t.Fatalf("event at %d differs from recording", target)
			}
		}
	}
	if err := d.Back(7); err != nil {
		t.Fatal(err)
	}
	if d.Pos() != n-7 {
		t.Fatalf("Back(7) landed at %d, want %d", d.Pos(), n-7)
	}
	evs := d.Events(0, n)
	assertEventsMatch(t, "debugger window", evs, plain.Full)
}

// TestOpenRejectsMissing: opening a directory with no manifest (or none at
// all) errors instead of inventing an empty store.
func TestOpenRejectsMissing(t *testing.T) {
	if _, err := flightrec.Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open on a nonexistent directory succeeded")
	}
	if _, err := flightrec.Open(t.TempDir()); err == nil {
		t.Fatal("Open on an empty directory succeeded")
	}
}

// TestOptionsValidate pins the validation contract: negative ring and
// retention knobs are rejected by Validate and by Record — before the
// spill directory is created, so a rejected recording leaves no artifact.
func TestOptionsValidate(t *testing.T) {
	if err := (flightrec.Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if err := (flightrec.Options{RingSegments: -1}).Validate(); err == nil || !strings.Contains(err.Error(), "RingSegments") {
		t.Fatalf("negative RingSegments: err = %v", err)
	}
	if err := (flightrec.Options{Retention: -1}).Validate(); err == nil || !strings.Contains(err.Error(), "Retention") {
		t.Fatalf("negative Retention: err = %v", err)
	}
	s := workload.Bank()
	dir := filepath.Join(t.TempDir(), "spill")
	if _, err := flightrec.Record(s, s.DefaultSeed, nil, flightrec.Options{SpillDir: dir, Retention: -5}); err == nil || !strings.Contains(err.Error(), "Retention") {
		t.Fatalf("Record with negative Retention: err = %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("rejected Record still created %s", dir)
	}
}

// retainedRecording flight-records dynokv-staleread with the given
// retention cap and enough segments that eviction actually happens.
func retainedRecording(t *testing.T, retention int) (*scenario.Scenario, *record.Recording, *flightrec.RecordResult) {
	t.Helper()
	s, err := workload.ByName("dynokv-staleread")
	if err != nil {
		t.Fatal(err)
	}
	plain := plainRecording(t, s)
	interval := uint64(len(plain.Full)) / 10
	if interval < 4 {
		interval = 4
	}
	res := flightRecord(t, s, flightrec.Options{Interval: interval, RingSegments: 1, Retention: retention})
	if res.Evicted == 0 {
		t.Fatalf("retention %d over %d segments evicted nothing", retention, res.Segments)
	}
	return s, plain, res
}

// TestRetentionOne pins the most aggressive retention cap: a single
// retained segment. Seeks into that segment restore from its boundary
// snapshot; anything earlier falls back to the feed log and replays from
// the start — nothing is fabricated from the evicted prefix.
func TestRetentionOne(t *testing.T) {
	s, plain, res := retainedRecording(t, 1)
	st := res.Store
	n := uint64(len(plain.Full))
	segs := st.Segments()
	if len(segs) != 1 {
		t.Fatalf("store retains %d segments, cap is 1", len(segs))
	}
	lo, hi := flightrec.Retained(st)
	if lo != segs[0].From || hi != n {
		t.Fatalf("retained [%d, %d), manifest tail is [%d, %d)", lo, hi, segs[0].From, n)
	}

	// A target at the very first retained event seeks from the segment's
	// own boundary snapshot.
	sess, err := replay.SeekStore(s, st, lo, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.FromCheckpoint || sess.SuffixFrom != lo {
		t.Fatalf("oldest-retained seek: FromCheckpoint=%v SuffixFrom=%d, want snapshot at %d", sess.FromCheckpoint, sess.SuffixFrom, lo)
	}
	view, ok := sess.RunToEnd()
	if !ok {
		t.Fatal("tail replay did not reproduce the run")
	}
	assertEventsMatch(t, "retention-1 tail", view.Trace.Events, plain.Full[lo:])

	// One event earlier is evicted: full replay from 0, same events.
	sess, err = replay.SeekStore(s, st, lo-1, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.FromCheckpoint {
		t.Fatal("evicted-range target restored from a checkpoint")
	}
	if view, ok = sess.RunToEnd(); !ok {
		t.Fatal("pre-tail replay did not reproduce the run")
	}
	assertEventsMatch(t, "retention-1 full", view.Trace.Events, plain.Full)
}

// TestSeekRacesEviction pins what happens when retention evicts the
// oldest retained segment between a debugger's manifest read and its
// segment read (the recorder and a debugger share the spill directory, so
// this interleaving is reachable). A seek that already loaded the segment
// keeps working from the cache; a seek that has not errors cleanly.
func TestSeekRacesEviction(t *testing.T) {
	s, plain, res := retainedRecording(t, 3)
	st := res.Store
	oldest := st.Segments()[0]
	target := oldest.From

	// Load the oldest retained segment into the store's cache, then evict
	// its file out from under the store.
	if _, err := st.Events(0); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(st.Dir(), oldest.File)); err != nil {
		t.Fatal(err)
	}

	// The cached store is immune to the eviction.
	sess, err := replay.SeekStore(s, st, target, replay.Options{})
	if err != nil {
		t.Fatalf("seek after cached eviction: %v", err)
	}
	view, ok := sess.RunToEnd()
	if !ok {
		t.Fatal("cached-segment replay did not reproduce the run")
	}
	assertEventsMatch(t, "cached tail", view.Trace.Events, plain.Full[sess.SuffixFrom:])

	// A store opened after the eviction sees the stale manifest: the same
	// seek must fail with a clear error, not fabricate events.
	st2, err := flightrec.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.SeekStore(s, st2, target, replay.Options{}); err == nil || !strings.Contains(err.Error(), oldest.File) {
		t.Fatalf("seek into evicted segment: err = %v, want mention of %s", err, oldest.File)
	}
}

// TestManifestWithEvictedSegment: a manifest entry whose .ddseg is gone
// (deleted out of band, or a crash between eviction and manifest rewrite)
// keeps the store openable — the manifest alone is intact — but reads of
// the missing segment error cleanly and the surviving segments still
// serve events.
func TestManifestWithEvictedSegment(t *testing.T) {
	_, plain, res := retainedRecording(t, 3)
	st := res.Store
	segs := st.Segments()
	if len(segs) < 2 {
		t.Fatalf("need at least 2 retained segments, have %d", len(segs))
	}
	gone := segs[0]
	if err := os.Remove(filepath.Join(st.Dir(), gone.File)); err != nil {
		t.Fatal(err)
	}

	st2, err := flightrec.Open(st.Dir())
	if err != nil {
		t.Fatalf("open with dangling manifest entry: %v", err)
	}
	if _, err := st2.Events(0); err == nil || !strings.Contains(err.Error(), "open segment") {
		t.Fatalf("Events on evicted segment: err = %v", err)
	}
	last := len(segs) - 1
	evs, err := st2.Events(last)
	if err != nil {
		t.Fatalf("Events on surviving segment: %v", err)
	}
	assertEventsMatch(t, "surviving segment", evs, plain.Full[segs[last].From:segs[last].To])
	if _, err := st2.BestSnapshot(gone.To - 1); err == nil {
		t.Fatal("BestSnapshot inside the evicted segment succeeded")
	}
}

package flightrec

import (
	"debugdet/internal/scenario"
	"debugdet/internal/vm"
)

// RecordResult is the outcome of one flight-recorded run: the opened
// disk-backed store plus the recorder's accounting. Unlike a monolithic
// Recording, the run's data lives in the spill directory; the result
// carries only bounded state.
type RecordResult struct {
	// Store is the spill directory, opened for replay.
	Store *DiskStore
	// View is the finished run (no oracle trace: streaming recording
	// runs with trace collection off, that is the point).
	View *scenario.RunView
	// Events is the total number of events recorded.
	Events uint64
	// LogBytes is the recorded event volume, priced exactly as the
	// stock full-level recorder prices it.
	LogBytes int64
	// CheckpointBytes is the encoded volume of the boundary snapshots.
	CheckpointBytes int64
	// FeedBytes is the feed log's on-disk size.
	FeedBytes int64
	// PeakMemBytes is the recorder's in-memory high-water mark — the
	// measured O(ring) bound.
	PeakMemBytes int64
	// Segments, Spilled and Evicted count the sealed segments, how many
	// reached disk, and how many retention deleted again.
	Segments, Spilled, Evicted int
	// Failed and FailureSig are the run's terminal condition.
	Failed     bool
	FailureSig string
}

// Record runs one execution of s under the perfect determinism model with
// the flight recorder attached, then finalizes and reopens the spill
// directory. Trace collection is disabled — the event stream goes to the
// segment ring and feed log instead of an unbounded in-memory log — so
// the run's memory is O(ring) regardless of length.
func Record(s *scenario.Scenario, seed int64, params scenario.Params, o Options) (*RecordResult, error) {
	p := s.DefaultParams.Clone(params)
	m := vm.New(vm.Config{
		Seed:   seed,
		Inputs: s.Inputs(seed, p),
	})
	main := s.Build(m, p)
	rec, err := NewRecorder(m, s.Name, seed, p, o)
	if err != nil {
		return nil, err
	}
	m.Attach(rec)
	res := m.Run(main)
	view := &scenario.RunView{Machine: m, Result: res}
	failed, sig := s.CheckFailure(view)
	if err := rec.Finalize(failed, sig); err != nil {
		return nil, err
	}
	store, err := Open(o.SpillDir)
	if err != nil {
		return nil, err
	}
	return &RecordResult{
		Store:           store,
		View:            view,
		Events:          rec.Events(),
		LogBytes:        rec.Bytes(),
		CheckpointBytes: rec.CheckpointBytes(),
		FeedBytes:       rec.FeedBytes(),
		PeakMemBytes:    rec.PeakMemBytes(),
		Segments:        rec.Segments(),
		Spilled:         rec.Spilled(),
		Evicted:         rec.Evicted(),
		Failed:          failed,
		FailureSig:      sig,
	}, nil
}

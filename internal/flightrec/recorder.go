package flightrec

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// DefaultRingSegments is how many sealed segments stay in memory when
// Options.RingSegments is zero: enough that a short seek back never
// touches disk, small enough that the ring stays a few segments of RAM.
const DefaultRingSegments = 4

// Options configures the flight recorder.
type Options struct {
	// Interval is the checkpoint/segment-rotation interval in events
	// (0 = checkpoint.DefaultInterval). Each rotation seals the current
	// segment at a boundary snapshot.
	Interval uint64
	// RingSegments is how many sealed segments stay in memory before the
	// oldest spills to disk (0 = DefaultRingSegments). Peak recorder
	// memory is O((RingSegments+2) · segment size): the ring, the
	// building segment, and the segment being encoded for spill.
	RingSegments int
	// SpillDir is the directory receiving sealed segments, the manifest
	// and the feed log. Required: restoring a boundary snapshot needs
	// the complete operation-outcome prefix of the run, which only the
	// disk-backed feed log retains once segments rotate out of memory.
	SpillDir string
	// Retention caps how many sealed segments are kept on disk; older
	// .ddseg files are deleted as newer ones spill (0 = keep all). The
	// feed log is never truncated — it is the seekability floor — so
	// disk still grows linearly in the run, with a small constant.
	Retention int
}

// Validate rejects option values that would otherwise be silently
// reinterpreted: a negative ring size would disable sealing entirely and
// a negative retention would evict every spilled segment.
func (o Options) Validate() error {
	if o.RingSegments < 0 {
		return fmt.Errorf("flightrec: Options.RingSegments must not be negative (got %d; use 0 for the default ring of %d)", o.RingSegments, DefaultRingSegments)
	}
	if o.Retention < 0 {
		return fmt.Errorf("flightrec: Options.Retention must not be negative (got %d; use 0 to keep all segments)", o.Retention)
	}
	return nil
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = checkpoint.DefaultInterval
	}
	if o.RingSegments == 0 {
		o.RingSegments = DefaultRingSegments
	}
	return o
}

// Recorder is the streaming perfect-model recorder: a vm.Observer that
// rotates checkpoint-delimited segments through a bounded in-memory ring
// and spills sealed segments to the spill directory. Costs are charged
// exactly as the stock full-level recorder plus checkpoint writer charge
// them — per-event RecordCost of the event's encoded size, plus the
// snapshot's encoded size at each boundary — so a flight-recorded run and
// a checkpointed monolithic recording of the same (scenario, seed) share
// one virtual schedule. The feed log and manifest are bookkeeping
// projections of already-priced data and are tracked in the stats but not
// charged again.
//
// I/O errors inside OnEvent cannot propagate through the observer
// interface; the first one is retained and recording degrades to a no-op
// until Finalize reports it.
type Recorder struct {
	m    *vm.Machine
	o    Options
	cost *vm.CostModel
	ckpt *checkpoint.Writer

	meta Meta

	feedF  *os.File
	feedCW *countingWriter
	feedW  *bufio.Writer

	cur       *Segment
	curSnapB  int64
	ring      []*Segment
	ringSnapB []int64
	spilled   []SegmentInfo
	evicted   int
	nextIndex int

	events   uint64
	bytes    int64
	memBytes int64
	peakMem  int64
	sealed   int

	err       error
	finished  bool
	finalized bool
}

// NewRecorder creates a flight recorder for machine m recording scenario
// identity (name, seed, params) under the perfect model. Attach the
// returned recorder to m before running; call Finalize after the run.
func NewRecorder(m *vm.Machine, name string, seed int64, params scenario.Params, o Options) (*Recorder, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	if o.SpillDir == "" {
		return nil, fmt.Errorf("flightrec: Options.SpillDir is required (the feed log has no in-memory fallback)")
	}
	if err := os.MkdirAll(o.SpillDir, 0o755); err != nil {
		return nil, fmt.Errorf("flightrec: spill dir: %w", err)
	}
	f, err := os.Create(filepath.Join(o.SpillDir, feedLogName))
	if err != nil {
		return nil, fmt.Errorf("flightrec: feed log: %w", err)
	}
	r := &Recorder{
		m:    m,
		o:    o,
		cost: m.Cost(),
		meta: Meta{
			Scenario:      name,
			Model:         record.Perfect,
			Seed:          seed,
			Params:        params,
			SchedComplete: true,
			Interval:      o.Interval,
		},
		feedF:     f,
		cur:       &Segment{},
		nextIndex: 1,
	}
	r.feedCW = &countingWriter{w: f}
	r.feedW = bufio.NewWriterSize(r.feedCW, 1<<16)
	writeFeedHeader(r.feedW)
	r.ckpt = checkpoint.NewStreamingWriter(m, o.Interval, r.rotate)
	return r, nil
}

// OnEvent implements vm.Observer: appends the event to the feed log and
// the building segment, and returns the recording cost (event bytes, plus
// the boundary snapshot's bytes when the embedded checkpoint writer
// fires, which also rotates the segment).
func (r *Recorder) OnEvent(e *trace.Event) uint64 {
	if r.err != nil || r.finished {
		return 0
	}
	writeFeedEntry(r.feedW, e)
	r.events++
	r.cur.Events = append(r.cur.Events, *e)
	b := record.FullEventBytes(e)
	r.bytes += int64(b) + 1
	r.memBytes += int64(b) + 1
	cost := r.cost.RecordCost(b)
	cost += r.ckpt.OnEvent(e)
	if r.memBytes > r.peakMem {
		r.peakMem = r.memBytes
	}
	return cost
}

// rotate is the checkpoint writer's sink: seal the building segment at
// the boundary snapshot and open the next one.
func (r *Recorder) rotate(snap *vm.Snapshot) {
	if r.err != nil || r.finished {
		return
	}
	// Drop the captured stream histories before taking ownership: they
	// are projections of the event prefix and are rehydrated from the
	// feed log at open. Holding them would make ring memory proportional
	// to the whole run, not the ring.
	for i := range snap.Streams {
		snap.Streams[i].Inputs = nil
		snap.Streams[i].Outputs = nil
	}
	r.seal(snap.Seq)
	r.cur = &Segment{
		SegmentInfo: SegmentInfo{Index: r.nextIndex, From: snap.Seq, To: snap.Seq},
		Snap:        snap,
	}
	r.nextIndex++
	r.curSnapB = checkpoint.SnapshotSize(snap)
	r.memBytes += r.curSnapB
	if r.memBytes > r.peakMem {
		r.peakMem = r.memBytes
	}
}

// seal closes the building segment at `to`, pushes it into the ring and
// spills the ring's oldest segment if it overflows.
func (r *Recorder) seal(to uint64) {
	seg := r.cur
	seg.To = to
	if uint64(len(seg.Events)) != seg.To-seg.From {
		r.fail(fmt.Errorf("flightrec: segment [%d, %d) sealed with %d events", seg.From, seg.To, len(seg.Events)))
		return
	}
	r.ring = append(r.ring, seg)
	r.ringSnapB = append(r.ringSnapB, r.curSnapB)
	r.curSnapB = 0
	r.sealed++
	for len(r.ring) > r.o.RingSegments {
		r.spillOldest()
	}
}

// spillOldest encodes the ring's oldest segment to its .ddseg file,
// applies retention, and rewrites the manifest.
func (r *Recorder) spillOldest() {
	seg := r.ring[0]
	snapB := r.ringSnapB[0]
	r.ring = r.ring[1:]
	r.ringSnapB = r.ringSnapB[1:]
	if err := r.spill(seg); err != nil {
		r.fail(err)
		return
	}
	var evBytes int64
	for i := range seg.Events {
		evBytes += int64(record.FullEventBytes(&seg.Events[i])) + 1
	}
	r.memBytes -= evBytes + snapB
	r.trimRetention()
	if err := r.writeManifest(); err != nil {
		r.fail(err)
	}
}

// spill encodes one sealed segment to disk and appends it to the spilled
// table.
func (r *Recorder) spill(seg *Segment) error {
	name := fmt.Sprintf("seg-%06d.ddseg", seg.Index)
	path := filepath.Join(r.o.SpillDir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flightrec: spill %s: %w", name, err)
	}
	n, err := EncodeSegment(f, seg)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("flightrec: spill %s: %w", name, err)
	}
	seg.Bytes = n
	seg.File = name
	r.spilled = append(r.spilled, seg.SegmentInfo)
	return nil
}

// trimRetention deletes the oldest spilled segments beyond the cap.
func (r *Recorder) trimRetention() {
	if r.o.Retention <= 0 {
		return
	}
	for len(r.spilled) > r.o.Retention {
		old := r.spilled[0]
		r.spilled = r.spilled[1:]
		r.evicted++
		if err := os.Remove(filepath.Join(r.o.SpillDir, old.File)); err != nil {
			r.fail(fmt.Errorf("flightrec: evict %s: %w", old.File, err))
			return
		}
	}
}

// OnFinish implements vm.FinishObserver: seal the final partial segment,
// spill the whole ring, flush the feed log and write the manifest. The
// terminal condition is stamped later by Finalize, once the scenario's
// failure spec has inspected the finished run.
func (r *Recorder) OnFinish(vm.Outcome) {
	if r.finished {
		return
	}
	r.finished = true
	if r.err != nil {
		return
	}
	if len(r.cur.Events) > 0 || (len(r.ring) == 0 && len(r.spilled) == 0) {
		r.seal(r.cur.From + uint64(len(r.cur.Events)))
	}
	for len(r.ring) > 0 {
		r.spillOldest()
	}
	if err := r.feedW.Flush(); err != nil {
		r.fail(fmt.Errorf("flightrec: feed log: %w", err))
		return
	}
	if err := r.writeManifest(); err != nil {
		r.fail(err)
	}
}

// Finalize stamps the run's terminal condition (from the scenario's
// failure spec) into the manifest, closes the feed log, and reports the
// first I/O error the recorder swallowed during the run, if any. It must
// be called after the machine finished.
func (r *Recorder) Finalize(failed bool, sig string) error {
	if !r.finished {
		return fmt.Errorf("flightrec: Finalize before the machine finished")
	}
	if r.finalized {
		return r.err
	}
	r.finalized = true
	if r.feedF != nil {
		if err := r.feedW.Flush(); err != nil && r.err == nil {
			r.err = fmt.Errorf("flightrec: feed log: %w", err)
		}
		if err := r.feedF.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("flightrec: feed log: %w", err)
		}
		r.feedF = nil
	}
	if r.err != nil {
		return r.err
	}
	r.meta.Failed = failed
	r.meta.FailureSig = sig
	if err := r.writeManifestFinal(true); err != nil {
		r.fail(err)
	}
	return r.err
}

// fail retains the first error; the recorder is inert afterwards.
func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// writeManifest rewrites the manifest mid-run (finalized flag off).
func (r *Recorder) writeManifest() error { return r.writeManifestFinal(false) }

// writeManifestFinal rewrites the manifest atomically (temp + rename).
func (r *Recorder) writeManifestFinal(final bool) error {
	meta := r.meta
	meta.EventCount = r.events
	meta.Streams = r.m.StreamNames()
	man := &manifest{
		Meta:      meta,
		Finalized: final,
		FeedCount: r.events,
		FeedBytes: r.feedCW.n,
		Segments:  r.spilled,
	}
	path := filepath.Join(r.o.SpillDir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("flightrec: manifest: %w", err)
	}
	err = encodeManifest(f, man)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("flightrec: manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("flightrec: manifest: %w", err)
	}
	return nil
}

// Events returns how many events the recorder observed.
func (r *Recorder) Events() uint64 { return r.events }

// Bytes returns the recorded event-log volume (the same accounting as the
// stock full-level recorder: event bytes plus one schedule byte each).
func (r *Recorder) Bytes() int64 { return r.bytes }

// CheckpointBytes returns the encoded volume of the boundary snapshots.
func (r *Recorder) CheckpointBytes() int64 { return r.ckpt.Bytes() }

// FeedBytes returns the feed log's size on disk so far.
func (r *Recorder) FeedBytes() int64 { return r.feedCW.n }

// MemBytes returns the recorder's current in-memory footprint (building
// segment + ring, in encoded-size units).
func (r *Recorder) MemBytes() int64 { return r.memBytes }

// PeakMemBytes returns the high-water mark of MemBytes over the run —
// the measured O(ring) bound the soak test asserts.
func (r *Recorder) PeakMemBytes() int64 { return r.peakMem }

// Spilled returns how many segments were written to disk.
func (r *Recorder) Spilled() int { return len(r.spilled) + r.evicted }

// Evicted returns how many spilled segments retention deleted.
func (r *Recorder) Evicted() int { return r.evicted }

// Segments returns how many segments the run sealed in total.
func (r *Recorder) Segments() int { return r.sealed }

// Err returns the first I/O error the recorder swallowed, if any.
func (r *Recorder) Err() error { return r.err }

// Spill-directory file names.
const (
	feedLogName  = "feeds.ddfl"
	manifestName = "manifest.ddmf"
)

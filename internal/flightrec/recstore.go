package flightrec

import (
	"sync"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// RecordingStore adapts an in-memory *record.Recording to the Store
// interface, so the store-backed replay entry points subsume the
// monolithic ones: a recording is simply a store that retains everything.
// Derived state (the input source, the shared feed plan) is built lazily
// and exactly once, then shared read-only — segmented replay workers all
// slice the same plan, as they did before the interface existed.
type RecordingStore struct {
	rec    *record.Recording
	bounds []uint64

	inputsOnce sync.Once
	inputs     vm.InputSource

	planOnce sync.Once
	plan     *checkpoint.FeedPlan
	planErr  error
}

// NewRecordingStore wraps rec. The recording is shared, not copied, and
// must not be mutated while the store is in use.
func NewRecordingStore(rec *record.Recording) *RecordingStore {
	return &RecordingStore{rec: rec, bounds: rec.SegmentBounds()}
}

// Recording returns the wrapped recording.
func (rs *RecordingStore) Recording() *record.Recording { return rs.rec }

// Meta implements Store.
func (rs *RecordingStore) Meta() Meta {
	rec := rs.rec
	var interval uint64
	if len(rec.Checkpoints) > 0 {
		interval = rec.Checkpoints[0].Seq
	}
	return Meta{
		Scenario:      rec.Scenario,
		Model:         rec.Model,
		Seed:          rec.Seed,
		Params:        rec.Params,
		Streams:       rec.Streams,
		SchedComplete: rec.SchedComplete,
		Failed:        rec.Failed,
		FailureSig:    rec.FailureSig,
		// The retained horizon, not rec.EventCount: replay bounds index
		// into Full, and relaxed models record fewer events than they
		// observe.
		EventCount: uint64(len(rec.Full)),
		Interval:   interval,
	}
}

// Segments implements Store: one segment per checkpoint-delimited bound.
func (rs *RecordingStore) Segments() []SegmentInfo {
	segs := make([]SegmentInfo, len(rs.bounds))
	for i, from := range rs.bounds {
		to := uint64(len(rs.rec.Full))
		if i+1 < len(rs.bounds) {
			to = rs.bounds[i+1]
		}
		segs[i] = SegmentInfo{Index: i, From: from, To: to}
	}
	return segs
}

// Events implements Store; the returned slice aliases the recording.
func (rs *RecordingStore) Events(i int) ([]trace.Event, error) {
	from := rs.bounds[i]
	to := uint64(len(rs.rec.Full))
	if i+1 < len(rs.bounds) {
		to = rs.bounds[i+1]
	}
	return rs.rec.Full[from:to], nil
}

// BestSnapshot implements Store over the recording's checkpoints. Note
// that a checkpoint landing exactly at the end of the event stream is a
// valid snapshot even though it delimits no segment.
func (rs *RecordingStore) BestSnapshot(target uint64) (*vm.Snapshot, error) {
	return checkpoint.Best(rs.rec.Checkpoints, target), nil
}

// SnapshotSeqs implements Store.
func (rs *RecordingStore) SnapshotSeqs() []uint64 {
	seqs := make([]uint64, len(rs.rec.Checkpoints))
	for i, cp := range rs.rec.Checkpoints {
		seqs[i] = cp.Seq
	}
	return seqs
}

// Feeds implements Store by slicing the lazily built shared feed plan,
// falling back to a direct derivation for snapshots the plan does not
// cover (e.g. materialized mid-debug).
func (rs *RecordingStore) Feeds(snap *vm.Snapshot) ([][]vm.FeedEntry, error) {
	rs.planOnce.Do(func() {
		rs.plan, rs.planErr = checkpoint.PlanFeeds(rs.rec.Full, rs.rec.Checkpoints)
	})
	if rs.planErr == nil && rs.plan != nil {
		if feeds, err := rs.plan.At(snap); err == nil {
			return feeds, nil
		}
	}
	return checkpoint.Feeds(rs.rec.Full, snap.Seq, len(snap.Threads))
}

// Sched implements Store; the returned slice aliases the recording.
func (rs *RecordingStore) Sched(from uint64) ([]trace.ThreadID, error) {
	if from >= uint64(len(rs.rec.Sched)) {
		return nil, nil
	}
	return rs.rec.Sched[from:], nil
}

// Inputs implements Store: the recorded per-stream input sequences, over
// a zero base (replay beyond the recorded horizon reads zeros, exactly as
// the pre-store seek did).
func (rs *RecordingStore) Inputs() (vm.InputSource, error) {
	rs.inputsOnce.Do(func() {
		rs.inputs = &vm.MapInputs{Values: rs.rec.InputsByStream(), Base: vm.ZeroInputs}
	})
	return rs.inputs, nil
}

package flightrec

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// recordCheckpointed builds a checkpointed perfect recording for codec
// fixtures (same shape core.RecordOnly produces).
func recordCheckpointed(t *testing.T, s *scenario.Scenario, interval uint64) *record.Recording {
	t.Helper()
	var w *checkpoint.Writer
	factory := func(m *vm.Machine) (record.Policy, []vm.Observer) {
		w = checkpoint.NewWriter(m, interval)
		return record.PolicyFor(record.Perfect), []vm.Observer{w}
	}
	rec, _, err := record.RecordWithPolicy(s, record.Perfect, factory, s.DefaultSeed, nil)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	rec.Checkpoints = w.Snapshots()
	rec.CheckpointBytes = w.Bytes()
	return rec
}

// segmentFixture builds a realistic segment: a real boundary snapshot
// (histories stripped, as the recorder spills them) plus its events.
func segmentFixture(t *testing.T) *Segment {
	t.Helper()
	s := workload.Bank()
	rec := recordCheckpointed(t, s, 64)
	if len(rec.Checkpoints) == 0 {
		t.Fatal("bank recording captured no checkpoints")
	}
	cp := rec.Checkpoints[0]
	snap := *cp
	snap.Streams = append([]vm.StreamSnap(nil), cp.Streams...)
	for i := range snap.Streams {
		snap.Streams[i].Inputs = nil
		snap.Streams[i].Outputs = nil
	}
	to := cp.Seq + 64
	if to > uint64(len(rec.Full)) {
		to = uint64(len(rec.Full))
	}
	return &Segment{
		SegmentInfo: SegmentInfo{Index: 1, From: cp.Seq, To: to},
		Snap:        &snap,
		Events:      rec.Full[cp.Seq:to],
	}
}

func TestSegmentRoundtrip(t *testing.T) {
	seg := segmentFixture(t)
	var buf bytes.Buffer
	n, err := EncodeSegment(&buf, seg)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("encode reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := DecodeSegment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Index != seg.Index || got.From != seg.From || got.To != seg.To {
		t.Fatalf("info roundtrip: got %+v want %+v", got.SegmentInfo, seg.SegmentInfo)
	}
	if !reflect.DeepEqual(got.Events, seg.Events) {
		t.Fatalf("events differ after roundtrip")
	}
	if got.Snap == nil {
		t.Fatal("snapshot lost in roundtrip")
	}
	if err := got.Snap.EqualState(seg.Snap); err != nil {
		t.Fatalf("snapshot differs after roundtrip: %v", err)
	}
}

func TestSegmentRoundtripNoSnapshot(t *testing.T) {
	seg := segmentFixture(t)
	seg.Snap = nil
	seg.Index, seg.From, seg.To = 0, 0, uint64(len(seg.Events))
	for i := range seg.Events {
		seg.Events[i].Seq = uint64(i)
	}
	var buf bytes.Buffer
	if _, err := EncodeSegment(&buf, seg); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSegment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Snap != nil {
		t.Fatal("snapshot materialized from nothing")
	}
	if !reflect.DeepEqual(got.Events, seg.Events) {
		t.Fatalf("events differ after roundtrip")
	}
}

// TestSegmentRejectsTruncation mirrors the .ddrc suite: every strict
// prefix of a segment file errors — never panics, never half-loads.
func TestSegmentRejectsTruncation(t *testing.T) {
	seg := segmentFixture(t)
	var buf bytes.Buffer
	if _, err := EncodeSegment(&buf, seg); err != nil {
		t.Fatalf("encode: %v", err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeSegment(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

func TestSegmentRejectsCorruptKind(t *testing.T) {
	seg := segmentFixture(t)
	seg.Events = append([]trace.Event(nil), seg.Events...)
	seg.Events[0].Kind = trace.EventKind(200)
	var buf bytes.Buffer
	if _, err := EncodeSegment(&buf, seg); err != nil {
		t.Fatalf("encode: %v", err)
	}
	_, err := DecodeSegment(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad kind decoded with err=%v, want ErrCorrupt", err)
	}
}

func manifestFixture() *manifest {
	return &manifest{
		Meta: Meta{
			Scenario:      "bank",
			Model:         record.Perfect,
			Seed:          7,
			Params:        scenario.Params{"transfers": 40, "accounts": 3},
			Streams:       []string{"in", "out"},
			SchedComplete: true,
			Failed:        true,
			FailureSig:    "imbalance",
			EventCount:    1234,
			Interval:      256,
		},
		Finalized: true,
		FeedCount: 1234,
		FeedBytes: 9876,
		Segments: []SegmentInfo{
			{Index: 2, From: 512, To: 768, Bytes: 1000, File: "seg-000002.ddseg"},
			{Index: 3, From: 768, To: 1234, Bytes: 1700, File: "seg-000003.ddseg"},
		},
	}
}

func TestManifestRoundtrip(t *testing.T) {
	man := manifestFixture()
	var buf bytes.Buffer
	if err := encodeManifest(&buf, man); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("manifest roundtrip:\ngot  %+v\nwant %+v", got, man)
	}
}

func TestManifestRejectsTruncation(t *testing.T) {
	man := manifestFixture()
	var buf bytes.Buffer
	if err := encodeManifest(&buf, man); err != nil {
		t.Fatalf("encode: %v", err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeManifest(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestFeedLogRoundtrip checks that a feed log written from a recording's
// event stream reproduces exactly the feeds checkpoint.Feeds derives from
// the same events, plus the schedule stream.
func TestFeedLogRoundtrip(t *testing.T) {
	s := workload.Bank()
	rec := recordCheckpointed(t, s, 64)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	writeFeedHeader(bw)
	for i := range rec.Full {
		writeFeedEntry(bw, &rec.Full[i])
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	threads := maxTID(rec.Full) + 1
	var perThread [][]vm.FeedEntry = make([][]vm.FeedEntry, threads)
	var sched []trace.ThreadID
	count, err := readFeedLog(bytes.NewReader(buf.Bytes()), func(i uint64, fe *feedEntry) error {
		perThread[fe.TID] = append(perThread[fe.TID], fe.feed())
		sched = append(sched, fe.TID)
		return nil
	})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if count != uint64(len(rec.Full)) {
		t.Fatalf("read %d entries, wrote %d", count, len(rec.Full))
	}
	want, err := checkpoint.Feeds(rec.Full, uint64(len(rec.Full)), threads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(perThread, want) {
		t.Fatal("feed-log feeds differ from checkpoint.Feeds derivation")
	}
	if !reflect.DeepEqual(sched, rec.Sched) {
		t.Fatal("feed-log schedule differs from recorded schedule")
	}
}

// TestFeedLogTruncation: any strict prefix either errors (cut mid-entry)
// or yields fewer entries than written (cut at an entry boundary) — the
// manifest's declared count catches the latter at open time.
func TestFeedLogTruncation(t *testing.T) {
	s := workload.Bank()
	rec := recordCheckpointed(t, s, 64)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	writeFeedHeader(bw)
	for i := range rec.Full {
		writeFeedEntry(bw, &rec.Full[i])
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	total := uint64(len(rec.Full))
	for cut := 0; cut < len(full); cut++ {
		count, err := readFeedLog(bytes.NewReader(full[:cut]), func(uint64, *feedEntry) error { return nil })
		if err == nil && count >= total {
			t.Fatalf("prefix of %d/%d bytes read all %d entries without error", cut, len(full), total)
		}
	}
}

func maxTID(events []trace.Event) int {
	max := 0
	for i := range events {
		if int(events[i].TID) > max {
			max = int(events[i].TID)
		}
	}
	return max
}

package flightrec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// On-disk formats of the flight recorder, following the house codec
// style: 4-byte magic + version byte, uvarint/zigzag-varint integers,
// delta-encoded sequences, values via the trace codec, counts bounded so
// corrupt input fails fast, and truncation reported as errors wrapping
// ErrCorrupt — never panics.
//
// Segment file (.ddseg):
//
//	magic    "DDSG" (4 bytes), version u8
//	index, from, to  uvarints
//	snapshot section (checkpoint codec, 0 or 1 snapshots): the boundary
//	         snapshot at `from`; absent for a run's first segment
//	events   uvarint count (== to-from), then per event: seq delta,
//	         time delta uvarints; tid zigzag; kind u8; site uvarint;
//	         obj uvarint; taint u8; value
//
// Manifest (manifest.ddmf):
//
//	magic    "DDMF" (4 bytes), version u8
//	scenario, model strings; seed zigzag
//	params   uvarint count, then (key string, value zigzag), sorted
//	streams  uvarint count, then names (index = stream ObjID)
//	interval uvarint; eventCount uvarint
//	flags    u8 (schedComplete|failed|finalized)
//	failureSig string
//	feedCount, feedBytes uvarints
//	segments uvarint count, then per segment: index, from, to, bytes
//	         uvarints and file string
//
// Feed log (feeds.ddfl):
//
//	magic    "DDFL" (4 bytes), version u8
//	entries until EOF, one per event of the whole run, in order:
//	         tid zigzag; kind u8; then by kind —
//	         Load/Recv/DiskRead: value, taint u8 · Input: obj uvarint,
//	         value, taint u8 · Store/DiskWrite/DiskFsync/DiskBarrier/
//	         DiskCrash: value · Output: obj uvarint, value ·
//	         Spawn: obj uvarint · anything else: no payload
const (
	segMagic      = "DDSG"
	segVersion    = 1
	manMagic      = "DDMF"
	manVersion    = 1
	feedMagic     = "DDFL"
	feedVersion   = 1
	flagSchedDone = 1
	flagFailed    = 2
	flagFinalized = 4
)

// ErrCorrupt reports a malformed flight-recorder file.
var ErrCorrupt = errors.New("flightrec: malformed flight-recorder file")

// implausibleCount bounds decoded counts, as in the other codecs.
const implausibleCount = 1 << 28

// Segment is one checkpoint-delimited slice of the event stream: the
// boundary snapshot that opens it (nil for the run's first segment) and
// the fully recorded events of [From, To).
type Segment struct {
	SegmentInfo
	Snap   *vm.Snapshot
	Events []trace.Event
}

// EncodeSegment writes the segment in the .ddseg format and returns the
// bytes written.
func EncodeSegment(w io.Writer, seg *Segment) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	bw.WriteString(segMagic)
	bw.WriteByte(segVersion)
	writeUvarint(bw, uint64(seg.Index))
	writeUvarint(bw, seg.From)
	writeUvarint(bw, seg.To)
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	var snaps []*vm.Snapshot
	if seg.Snap != nil {
		snaps = []*vm.Snapshot{seg.Snap}
	}
	if _, err := checkpoint.EncodeSnapshots(cw, snaps); err != nil {
		return cw.n, err
	}
	writeUvarint(bw, uint64(len(seg.Events)))
	var prevSeq, prevTime uint64
	for i := range seg.Events {
		e := &seg.Events[i]
		writeUvarint(bw, e.Seq-prevSeq)
		writeUvarint(bw, e.Time-prevTime)
		prevSeq, prevTime = e.Seq, e.Time
		writeVarint(bw, int64(e.TID))
		bw.WriteByte(byte(e.Kind))
		writeUvarint(bw, uint64(e.Site))
		writeUvarint(bw, uint64(e.Obj))
		bw.WriteByte(byte(e.Taint))
		trace.WriteValue(bw, e.Val)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// DecodeSegment reads a .ddseg segment. The boundary snapshot comes back
// as persisted — stream histories empty — and must be rehydrated from the
// feed log before it can be restored.
func DecodeSegment(r io.Reader) (*Segment, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, segMagic, segVersion); err != nil {
		return nil, err
	}
	seg := &Segment{}
	idx, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if idx > implausibleCount {
		return nil, fmt.Errorf("%w: implausible segment index %d", ErrCorrupt, idx)
	}
	seg.Index = int(idx)
	if seg.From, err = readUvarint(br); err != nil {
		return nil, err
	}
	if seg.To, err = readUvarint(br); err != nil {
		return nil, err
	}
	if seg.To < seg.From || seg.To-seg.From > implausibleCount {
		return nil, fmt.Errorf("%w: bad segment range [%d, %d)", ErrCorrupt, seg.From, seg.To)
	}
	snaps, err := checkpoint.DecodeSnapshots(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(snaps) > 1 {
		return nil, fmt.Errorf("%w: segment carries %d snapshots", ErrCorrupt, len(snaps))
	}
	if len(snaps) == 1 {
		seg.Snap = snaps[0]
		if seg.Snap.Seq != seg.From {
			return nil, fmt.Errorf("%w: boundary snapshot at %d, segment starts at %d", ErrCorrupt, seg.Snap.Seq, seg.From)
		}
	}
	count, err := readBoundedCount(br, "event")
	if err != nil {
		return nil, err
	}
	if count != seg.To-seg.From {
		return nil, fmt.Errorf("%w: segment [%d, %d) holds %d events", ErrCorrupt, seg.From, seg.To, count)
	}
	seg.Events = make([]trace.Event, 0, count)
	var prevSeq, prevTime uint64
	for i := uint64(0); i < count; i++ {
		var e trace.Event
		dSeq, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		dTime, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		prevSeq += dSeq
		prevTime += dTime
		e.Seq, e.Time = prevSeq, prevTime
		tid, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		e.TID = trace.ThreadID(tid)
		kb, err := readByte(br)
		if err != nil {
			return nil, err
		}
		if !trace.EventKind(kb).Valid() {
			return nil, fmt.Errorf("%w: bad event kind %d", ErrCorrupt, kb)
		}
		e.Kind = trace.EventKind(kb)
		site, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		e.Site = trace.SiteID(site)
		obj, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		e.Obj = trace.ObjID(obj)
		tb, err := readByte(br)
		if err != nil {
			return nil, err
		}
		e.Taint = trace.Taint(tb)
		if e.Val, err = readValue(br); err != nil {
			return nil, err
		}
		seg.Events = append(seg.Events, e)
	}
	if count > 0 && seg.Events[0].Seq != seg.From {
		return nil, fmt.Errorf("%w: first event seq %d, segment starts at %d", ErrCorrupt, seg.Events[0].Seq, seg.From)
	}
	return seg, nil
}

// manifest is the decoded manifest.ddmf: the store's Meta plus the feed
// log accounting and the retained segment table.
type manifest struct {
	Meta      Meta
	Finalized bool
	FeedCount uint64
	FeedBytes int64
	Segments  []SegmentInfo
}

// encodeManifest writes the manifest format to w.
func encodeManifest(w io.Writer, m *manifest) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(manMagic)
	bw.WriteByte(manVersion)
	writeString(bw, m.Meta.Scenario)
	writeString(bw, m.Meta.Model.String())
	writeVarint(bw, m.Meta.Seed)
	keys := make([]string, 0, len(m.Meta.Params))
	for k := range m.Meta.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeUvarint(bw, uint64(len(keys)))
	for _, k := range keys {
		writeString(bw, k)
		writeVarint(bw, m.Meta.Params[k])
	}
	writeUvarint(bw, uint64(len(m.Meta.Streams)))
	for _, name := range m.Meta.Streams {
		writeString(bw, name)
	}
	writeUvarint(bw, m.Meta.Interval)
	writeUvarint(bw, m.Meta.EventCount)
	var flags byte
	if m.Meta.SchedComplete {
		flags |= flagSchedDone
	}
	if m.Meta.Failed {
		flags |= flagFailed
	}
	if m.Finalized {
		flags |= flagFinalized
	}
	bw.WriteByte(flags)
	writeString(bw, m.Meta.FailureSig)
	writeUvarint(bw, m.FeedCount)
	writeUvarint(bw, uint64(m.FeedBytes))
	writeUvarint(bw, uint64(len(m.Segments)))
	for _, si := range m.Segments {
		writeUvarint(bw, uint64(si.Index))
		writeUvarint(bw, si.From)
		writeUvarint(bw, si.To)
		writeUvarint(bw, uint64(si.Bytes))
		writeString(bw, si.File)
	}
	return bw.Flush()
}

// decodeManifest reads a manifest written by encodeManifest.
func decodeManifest(r io.Reader) (*manifest, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, manMagic, manVersion); err != nil {
		return nil, err
	}
	m := &manifest{}
	var err error
	if m.Meta.Scenario, err = readString(br); err != nil {
		return nil, err
	}
	modelName, err := readString(br)
	if err != nil {
		return nil, err
	}
	// A manifest's model is part of the replay contract, not a label:
	// fail on names this build cannot interpret.
	model, err := record.ParseModel(modelName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	m.Meta.Model = model
	if m.Meta.Seed, err = readVarint(br); err != nil {
		return nil, err
	}
	n, err := readBoundedCount(br, "param")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Meta.Params = make(scenario.Params, n)
	}
	for i := uint64(0); i < n; i++ {
		k, err := readString(br)
		if err != nil {
			return nil, err
		}
		v, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		m.Meta.Params[k] = v
	}
	if n, err = readBoundedCount(br, "stream"); err != nil {
		return nil, err
	}
	m.Meta.Streams = make([]string, n)
	for i := range m.Meta.Streams {
		if m.Meta.Streams[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	if m.Meta.Interval, err = readUvarint(br); err != nil {
		return nil, err
	}
	if m.Meta.EventCount, err = readUvarint(br); err != nil {
		return nil, err
	}
	flags, err := readByte(br)
	if err != nil {
		return nil, err
	}
	m.Meta.SchedComplete = flags&flagSchedDone != 0
	m.Meta.Failed = flags&flagFailed != 0
	m.Finalized = flags&flagFinalized != 0
	if m.Meta.FailureSig, err = readString(br); err != nil {
		return nil, err
	}
	if m.FeedCount, err = readUvarint(br); err != nil {
		return nil, err
	}
	fb, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	m.FeedBytes = int64(fb)
	if n, err = readBoundedCount(br, "segment"); err != nil {
		return nil, err
	}
	m.Segments = make([]SegmentInfo, n)
	for i := range m.Segments {
		si := &m.Segments[i]
		idx, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if idx > implausibleCount {
			return nil, fmt.Errorf("%w: implausible segment index %d", ErrCorrupt, idx)
		}
		si.Index = int(idx)
		if si.From, err = readUvarint(br); err != nil {
			return nil, err
		}
		if si.To, err = readUvarint(br); err != nil {
			return nil, err
		}
		b, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		si.Bytes = int64(b)
		if si.File, err = readString(br); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// feedEntry is one decoded feed-log record: the event's thread and kind
// plus the kind-specific payload vm.Restore feeds and the replay input
// source need.
type feedEntry struct {
	TID   trace.ThreadID
	Kind  trace.EventKind
	Obj   trace.ObjID
	Val   trace.Value
	Taint trace.Taint
}

// writeFeedHeader writes the feed-log magic and version.
func writeFeedHeader(bw *bufio.Writer) {
	bw.WriteString(feedMagic)
	bw.WriteByte(feedVersion)
}

// writeFeedEntry appends one event's feed record.
func writeFeedEntry(bw *bufio.Writer, e *trace.Event) {
	writeVarint(bw, int64(e.TID))
	bw.WriteByte(byte(e.Kind))
	//lint:exhaustive-default payloadless kinds encode as the kind byte alone; readFeedLog mirrors this set
	switch e.Kind {
	case trace.EvLoad, trace.EvRecv, trace.EvDiskRead:
		trace.WriteValue(bw, e.Val)
		bw.WriteByte(byte(e.Taint))
	case trace.EvInput:
		writeUvarint(bw, uint64(e.Obj))
		trace.WriteValue(bw, e.Val)
		bw.WriteByte(byte(e.Taint))
	case trace.EvStore, trace.EvDiskWrite, trace.EvDiskFsync,
		trace.EvDiskBarrier, trace.EvDiskCrash:
		trace.WriteValue(bw, e.Val)
	case trace.EvOutput:
		writeUvarint(bw, uint64(e.Obj))
		trace.WriteValue(bw, e.Val)
	case trace.EvSpawn:
		writeUvarint(bw, uint64(e.Obj))
	}
}

// readFeedLog decodes a feed log, invoking fn for every entry in event
// order. It validates the magic and stops at clean EOF; a partial entry
// is corruption.
func readFeedLog(r io.Reader, fn func(i uint64, fe *feedEntry) error) (uint64, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, feedMagic, feedVersion); err != nil {
		return 0, err
	}
	var count uint64
	for {
		tid, err := binary.ReadVarint(br)
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, fmt.Errorf("%w: feed entry %d: %v", ErrCorrupt, count, err)
		}
		fe := feedEntry{TID: trace.ThreadID(tid)}
		kb, err := readByte(br)
		if err != nil {
			return count, err
		}
		if !trace.EventKind(kb).Valid() {
			return count, fmt.Errorf("%w: feed entry %d: bad kind %d", ErrCorrupt, count, kb)
		}
		fe.Kind = trace.EventKind(kb)
		//lint:exhaustive-default mirrors writeFeedEntry: payloadless kinds have no record body to read
		switch fe.Kind {
		case trace.EvLoad, trace.EvRecv, trace.EvDiskRead:
			if fe.Val, err = readValue(br); err != nil {
				return count, err
			}
			tb, err := readByte(br)
			if err != nil {
				return count, err
			}
			fe.Taint = trace.Taint(tb)
		case trace.EvInput:
			obj, err := readUvarint(br)
			if err != nil {
				return count, err
			}
			fe.Obj = trace.ObjID(obj)
			if fe.Val, err = readValue(br); err != nil {
				return count, err
			}
			tb, err := readByte(br)
			if err != nil {
				return count, err
			}
			fe.Taint = trace.Taint(tb)
		case trace.EvStore, trace.EvDiskWrite, trace.EvDiskFsync,
			trace.EvDiskBarrier, trace.EvDiskCrash:
			if fe.Val, err = readValue(br); err != nil {
				return count, err
			}
		case trace.EvOutput:
			obj, err := readUvarint(br)
			if err != nil {
				return count, err
			}
			fe.Obj = trace.ObjID(obj)
			if fe.Val, err = readValue(br); err != nil {
				return count, err
			}
		case trace.EvSpawn:
			obj, err := readUvarint(br)
			if err != nil {
				return count, err
			}
			fe.Obj = trace.ObjID(obj)
		}
		if err := fn(count, &fe); err != nil {
			return count, err
		}
		count++
	}
}

// feed derives the vm.FeedEntry of one feed-log record, mirroring
// checkpoint.Feeds' per-kind rules exactly.
func (fe *feedEntry) feed() vm.FeedEntry {
	out := vm.FeedEntry{Kind: fe.Kind, OK: true}
	//lint:exhaustive-default mirrors checkpoint.Feeds: kinds without replay payloads keep the zero FeedEntry fields
	switch fe.Kind {
	case trace.EvLoad, trace.EvRecv, trace.EvInput, trace.EvDiskRead:
		out.Val = fe.Val
		out.Taint = fe.Taint
	case trace.EvStore, trace.EvDiskWrite, trace.EvDiskFsync,
		trace.EvDiskBarrier, trace.EvDiskCrash:
		out.Val = fe.Val
	case trace.EvSpawn:
		out.Val = trace.Int(int64(fe.Obj))
	case trace.EvYield:
		out.OK = false
	}
	return out
}

// Shared low-level helpers, in the style of the checkpoint codec.

func expectMagic(br *bufio.Reader, magic string, version byte) error {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("%w: magic: %v", ErrCorrupt, err)
	}
	if string(got) != magic {
		return fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, got, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: version: %v", ErrCorrupt, err)
	}
	if ver != version {
		return fmt.Errorf("%w: unsupported %s version %d (want %d)", ErrCorrupt, magic, ver, version)
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readByte(br *bufio.Reader) (byte, error) {
	b, err := br.ReadByte()
	if err != nil {
		return 0, corrupt(err)
	}
	return b, nil
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, corrupt(err)
	}
	return v, nil
}

func readVarint(br *bufio.Reader) (int64, error) {
	v, err := binary.ReadVarint(br)
	if err != nil {
		return 0, corrupt(err)
	}
	return v, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readBoundedCount(br, "string byte")
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", corrupt(err)
	}
	return string(b), nil
}

func readValue(br *bufio.Reader) (trace.Value, error) {
	v, err := trace.ReadValue(br)
	if err != nil {
		return trace.Value{}, corrupt(err)
	}
	return v, nil
}

func readBoundedCount(br *bufio.Reader, what string) (uint64, error) {
	n, err := readUvarint(br)
	if err != nil {
		return 0, err
	}
	if n > implausibleCount {
		return 0, fmt.Errorf("%w: implausible %s count %d", ErrCorrupt, what, n)
	}
	return n, nil
}

func corrupt(err error) error {
	if errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// Package flightrec is the flight recorder: always-on, bounded-memory
// deterministic recording with a disk-backed segment store.
//
// The paper's premise is that debug-deterministic recording must be cheap
// enough to leave on in production. The stock recorder satisfies the
// runtime half of that bargain (its log volume and overhead are small) but
// not the memory half: it accumulates one unbounded in-memory Recording.
// The flight recorder closes the gap by streaming. Checkpoints — the
// periodic VM snapshots of package checkpoint — delimit the event stream
// into segments; sealed segments rotate through a fixed-size in-memory
// ring, and when the ring overflows the oldest segment is encoded to a
// compact .ddseg file in the spill directory. Recording therefore runs
// indefinitely at O(ring) memory, and the spill directory always holds the
// most recent tail of the execution, time-travel-ready.
//
// On-disk layout of a spill directory:
//
//   - seg-NNNNNN.ddseg — one sealed segment: its boundary snapshot plus
//     the delta/varint-encoded events of [From, To).
//   - feeds.ddfl — the append-only feed log: one compact entry per event
//     of the whole run (thread, kind, and the operation outcome needed by
//     vm.Restore). It is never truncated, because restoring any snapshot
//     needs the complete operation-outcome prefix; it is the seekability
//     floor that keeps retained snapshots restorable after older event
//     segments are evicted.
//   - manifest.ddmf — run identity (scenario, model, seed, params,
//     streams), terminal condition, and the segment table. Rewritten
//     atomically (write-temp-then-rename) on every spill and at finish.
//
// Retention caps how many sealed segments stay on disk; older .ddseg
// files are deleted as newer ones spill. The feed log still grows
// linearly with the run — at a few bytes per event, a deliberate trade:
// memory is the bounded resource while recording, disk is cheap, and
// without the full feed prefix no checkpoint would be restorable.
//
// The Store interface is the replay-side contract: replay.SeekStore,
// replay.SegmentedStore and the store-backed Debugger consume it in place
// of a monolithic *record.Recording. NewRecordingStore adapts an in-memory
// Recording, Open a spill directory, so every replay entry point works
// identically over both.
package flightrec

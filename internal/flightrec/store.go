package flightrec

import (
	"fmt"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Meta is the run identity a segment store carries: what was recorded,
// under which determinism model, and how the run ended. It is the
// information replay needs before touching any event data.
type Meta struct {
	Scenario string
	Model    record.Model
	Seed     int64
	Params   scenario.Params
	// Streams maps stream object IDs to names (index = ObjID), as in
	// Recording.Streams.
	Streams []string
	// SchedComplete reports whether the store's schedule covers every
	// event of the run (required for seek and segmented replay).
	SchedComplete bool
	// Failed and FailureSig are the run's terminal condition per the
	// scenario's failure specification.
	Failed     bool
	FailureSig string
	// EventCount is the total number of events the run applied —
	// including events whose segments have been evicted from disk.
	EventCount uint64
	// Interval is the checkpoint/rotation interval the store was
	// recorded with (0 when the source recording had no checkpoints).
	Interval uint64
}

// SegmentInfo describes one checkpoint-delimited segment.
type SegmentInfo struct {
	// Index is the segment's rotation number within the whole run. For a
	// store under retention the first retained segment's Index is > 0.
	Index int
	// From and To delimit the segment's event range [From, To). A
	// segment with From > 0 begins at its boundary snapshot's Seq.
	From, To uint64
	// Bytes is the encoded size of the segment (0 when unknown, e.g. for
	// the in-memory recording adapter).
	Bytes int64
	// File is the spill file name, relative to the store directory
	// ("" for in-memory segments).
	File string
}

// Events returns the number of events in the segment.
func (si SegmentInfo) Events() uint64 { return si.To - si.From }

// Store is the segment-store contract replay consumes in place of a
// monolithic *record.Recording: run identity, the retained segments and
// their events, the boundary snapshots with everything vm.Restore needs
// (feeds, schedule suffix, inputs). Implementations must be safe for
// concurrent readers — segmented replay shares one store across workers.
type Store interface {
	// Meta returns the run identity.
	Meta() Meta
	// Segments returns the retained segments in event order. Their
	// ranges are contiguous; the last segment's To equals the retained
	// horizon (Meta().EventCount for a complete store).
	Segments() []SegmentInfo
	// Events returns the events of segment i (an index into Segments()).
	// The slice is read-only shared state: callers must not mutate it.
	Events(i int) ([]trace.Event, error)
	// BestSnapshot returns the latest boundary snapshot with Seq ≤
	// target, or nil when none qualifies (the caller replays from the
	// start). Snapshots are returned restore-ready: stream histories
	// rehydrated.
	BestSnapshot(target uint64) (*vm.Snapshot, error)
	// SnapshotSeqs lists the sequence numbers of the available boundary
	// snapshots, ascending.
	SnapshotSeqs() []uint64
	// Feeds returns the per-thread operation outcomes of the first
	// snap.Seq events — the vm.Restore feed input for a snapshot
	// obtained from this store. The returned slices are read-only.
	Feeds(snap *vm.Snapshot) ([][]vm.FeedEntry, error)
	// Sched returns the schedule stream from event `from` on (nil when
	// from is at or past the end). The slice is read-only.
	Sched(from uint64) ([]trace.ThreadID, error)
	// Inputs returns the recorded per-stream input source, for replays
	// to re-obtain every environment value the run consumed.
	Inputs() (vm.InputSource, error)
}

// Retained returns the contiguous event range [lo, hi) covered by the
// store's segments. An empty store returns (0, 0).
func Retained(st Store) (lo, hi uint64) {
	segs := st.Segments()
	if len(segs) == 0 {
		return 0, 0
	}
	return segs[0].From, segs[len(segs)-1].To
}

// EventRange collects the recorded events in [lo, hi) from the store's
// retained segments into a fresh slice. It returns an error when the
// range is not fully retained.
func EventRange(st Store, lo, hi uint64) ([]trace.Event, error) {
	if hi < lo {
		return nil, fmt.Errorf("flightrec: bad event range [%d, %d)", lo, hi)
	}
	if lo == hi {
		return nil, nil
	}
	rlo, rhi := Retained(st)
	if lo < rlo || hi > rhi {
		return nil, fmt.Errorf("flightrec: events [%d, %d) not retained (store holds [%d, %d))", lo, hi, rlo, rhi)
	}
	out := make([]trace.Event, 0, hi-lo)
	for i, si := range st.Segments() {
		if si.To <= lo || si.From >= hi {
			continue
		}
		evs, err := st.Events(i)
		if err != nil {
			return nil, err
		}
		a, b := uint64(0), uint64(len(evs))
		if lo > si.From {
			a = lo - si.From
		}
		if hi < si.To {
			b = hi - si.From
		}
		out = append(out, evs[a:b]...)
	}
	return out, nil
}

// snapOverlay decorates a store with externally materialized snapshots —
// how the debugger retrofits checkpoints onto a checkpoint-free store
// after replaying it once with a checkpoint writer attached. Feeds are
// derived from the store's own retained events, so the overlay only works
// when the store retains the full prefix of every overlay snapshot (true
// for checkpoint-free stores, which hold one segment from 0).
type snapOverlay struct {
	Store
	snaps []*vm.Snapshot
}

// WithSnapshots returns a view of st whose snapshots are snaps (in trace
// order), replacing whatever snapshots st itself offers.
func WithSnapshots(st Store, snaps []*vm.Snapshot) Store {
	return &snapOverlay{Store: st, snaps: snaps}
}

// BestSnapshot implements Store over the overlay snapshots.
func (o *snapOverlay) BestSnapshot(target uint64) (*vm.Snapshot, error) {
	return checkpoint.Best(o.snaps, target), nil
}

// SnapshotSeqs implements Store over the overlay snapshots.
func (o *snapOverlay) SnapshotSeqs() []uint64 {
	seqs := make([]uint64, len(o.snaps))
	for i, s := range o.snaps {
		seqs[i] = s.Seq
	}
	return seqs
}

// Feeds implements Store by deriving feeds from the retained events.
func (o *snapOverlay) Feeds(snap *vm.Snapshot) ([][]vm.FeedEntry, error) {
	events, err := EventRange(o.Store, 0, snap.Seq)
	if err != nil {
		return nil, err
	}
	return checkpoint.Feeds(events, snap.Seq, len(snap.Threads))
}

package flightrec

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// DiskStore is a spill directory opened for replay. The manifest is read
// eagerly; segment files lazily (and cached); the feed log on first
// demand, in one pass that derives everything vm.Restore and the replay
// configuration need: the full per-thread feeds, per-boundary feed
// counts, the schedule stream, the absolute per-stream input sequences,
// and the input/output records that rehydrate boundary snapshots' stream
// histories. Opening a store therefore costs O(run) memory at debug time
// — the bounded resource is the recorder's memory at record time, not the
// debugger's.
//
// A DiskStore is safe for concurrent readers.
type DiskStore struct {
	dir string
	man *manifest

	mu   sync.Mutex
	segs map[int]*Segment // by position in man.Segments

	feedOnce sync.Once
	feedErr  error
	feeds    *feedData
}

// feedData is everything one scan of the feed log yields.
type feedData struct {
	perThread [][]vm.FeedEntry
	counts    map[uint64][]int // boundary seq → events per thread before it
	sched     []trace.ThreadID
	inputs    map[string][]trace.Value
	ios       []ioRec
}

// ioRec is one input/output event of the run, for stream-history
// rehydration: event index, direction, stream and value.
type ioRec struct {
	idx uint64
	in  bool
	obj trace.ObjID
	val trace.Value
}

// Open reads the manifest of a spill directory and returns the store.
func Open(dir string) (*DiskStore, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("flightrec: open store: %w", err)
	}
	defer f.Close()
	man, err := decodeManifest(f)
	if err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", manifestName, err)
	}
	for i := 1; i < len(man.Segments); i++ {
		if man.Segments[i].From != man.Segments[i-1].To {
			return nil, fmt.Errorf("%w: segments not contiguous at %d ([..., %d) then [%d, ...))",
				ErrCorrupt, i, man.Segments[i-1].To, man.Segments[i].From)
		}
	}
	if n := len(man.Segments); man.Finalized && n > 0 && man.Segments[n-1].To != man.Meta.EventCount {
		return nil, fmt.Errorf("%w: last segment ends at %d, run has %d events",
			ErrCorrupt, man.Segments[n-1].To, man.Meta.EventCount)
	}
	return &DiskStore{dir: dir, man: man, segs: make(map[int]*Segment)}, nil
}

// Dir returns the spill directory path.
func (ds *DiskStore) Dir() string { return ds.dir }

// Finalized reports whether the run finished and stamped its terminal
// condition (an unfinalized manifest is a crash artifact: readable, but
// Failed/FailureSig are not authoritative).
func (ds *DiskStore) Finalized() bool { return ds.man.Finalized }

// FeedCount returns the number of feed-log entries the manifest declares.
func (ds *DiskStore) FeedCount() uint64 { return ds.man.FeedCount }

// FeedBytes returns the feed log's size per the manifest.
func (ds *DiskStore) FeedBytes() int64 { return ds.man.FeedBytes }

// Meta implements Store.
func (ds *DiskStore) Meta() Meta { return ds.man.Meta }

// Segments implements Store.
func (ds *DiskStore) Segments() []SegmentInfo {
	return append([]SegmentInfo(nil), ds.man.Segments...)
}

// Events implements Store.
func (ds *DiskStore) Events(i int) ([]trace.Event, error) {
	seg, err := ds.segment(i)
	if err != nil {
		return nil, err
	}
	return seg.Events, nil
}

// segment loads (or returns the cached) segment at position i, with its
// boundary snapshot rehydrated and restore-ready.
func (ds *DiskStore) segment(i int) (*Segment, error) {
	if i < 0 || i >= len(ds.man.Segments) {
		return nil, fmt.Errorf("flightrec: segment %d of %d", i, len(ds.man.Segments))
	}
	ds.mu.Lock()
	if seg, ok := ds.segs[i]; ok {
		ds.mu.Unlock()
		return seg, nil
	}
	ds.mu.Unlock()
	si := ds.man.Segments[i]
	f, err := os.Open(filepath.Join(ds.dir, si.File))
	if err != nil {
		return nil, fmt.Errorf("flightrec: open segment: %w", err)
	}
	seg, err := DecodeSegment(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", si.File, err)
	}
	if seg.From != si.From || seg.To != si.To || seg.Index != si.Index {
		return nil, fmt.Errorf("%w: %s holds segment %d [%d, %d), manifest says %d [%d, %d)",
			ErrCorrupt, si.File, seg.Index, seg.From, seg.To, si.Index, si.From, si.To)
	}
	seg.Bytes, seg.File = si.Bytes, si.File
	if seg.Snap != nil {
		if err := ds.rehydrate(seg.Snap); err != nil {
			return nil, err
		}
	}
	ds.mu.Lock()
	if cached, ok := ds.segs[i]; ok {
		seg = cached // another reader won the race; share its copy
	} else {
		ds.segs[i] = seg
	}
	ds.mu.Unlock()
	return seg, nil
}

// rehydrate rebuilds a boundary snapshot's per-stream histories from the
// feed log's input/output records (the codec persists only the cursor).
func (ds *DiskStore) rehydrate(snap *vm.Snapshot) error {
	fd, err := ds.feedData()
	if err != nil {
		return err
	}
	for _, io := range fd.ios {
		if io.idx >= snap.Seq {
			break
		}
		if int(io.obj) >= len(snap.Streams) {
			return fmt.Errorf("%w: stream %d in feed log, snapshot at %d has %d streams",
				ErrCorrupt, io.obj, snap.Seq, len(snap.Streams))
		}
		st := &snap.Streams[io.obj]
		if io.in {
			st.Inputs = append(st.Inputs, io.val)
		} else {
			st.Outputs = append(st.Outputs, io.val)
		}
	}
	for i := range snap.Streams {
		st := &snap.Streams[i]
		if len(st.Inputs) != st.InIndex {
			return fmt.Errorf("%w: snapshot at %d stream %q rebuilt %d inputs, cursor is %d",
				ErrCorrupt, snap.Seq, st.Name, len(st.Inputs), st.InIndex)
		}
	}
	return nil
}

// BestSnapshot implements Store: the latest retained boundary snapshot
// with Seq ≤ target.
func (ds *DiskStore) BestSnapshot(target uint64) (*vm.Snapshot, error) {
	best := -1
	for i, si := range ds.man.Segments {
		if si.From > 0 && si.From <= target {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	seg, err := ds.segment(best)
	if err != nil {
		return nil, err
	}
	if seg.Snap == nil {
		return nil, fmt.Errorf("%w: segment [%d, %d) has no boundary snapshot", ErrCorrupt, seg.From, seg.To)
	}
	return seg.Snap, nil
}

// SnapshotSeqs implements Store.
func (ds *DiskStore) SnapshotSeqs() []uint64 {
	var seqs []uint64
	for _, si := range ds.man.Segments {
		if si.From > 0 {
			seqs = append(seqs, si.From)
		}
	}
	return seqs
}

// Feeds implements Store: slices of the shared full-feed arrays, using
// the per-boundary counts precomputed during the feed-log scan (with an
// O(seq) recount as fallback for seqs that are not segment boundaries).
func (ds *DiskStore) Feeds(snap *vm.Snapshot) ([][]vm.FeedEntry, error) {
	fd, err := ds.feedData()
	if err != nil {
		return nil, err
	}
	counts, ok := fd.counts[snap.Seq]
	if !ok {
		if snap.Seq > uint64(len(fd.sched)) {
			return nil, fmt.Errorf("flightrec: feeds need %d events, log has %d", snap.Seq, len(fd.sched))
		}
		counts = make([]int, len(fd.perThread))
		for _, tid := range fd.sched[:snap.Seq] {
			counts[tid]++
		}
	}
	feeds := make([][]vm.FeedEntry, len(snap.Threads))
	for tid := range feeds {
		if tid < len(counts) && tid < len(fd.perThread) {
			feeds[tid] = fd.perThread[tid][:counts[tid]]
		}
	}
	return feeds, nil
}

// Sched implements Store.
func (ds *DiskStore) Sched(from uint64) ([]trace.ThreadID, error) {
	fd, err := ds.feedData()
	if err != nil {
		return nil, err
	}
	if from >= uint64(len(fd.sched)) {
		return nil, nil
	}
	return fd.sched[from:], nil
}

// Inputs implements Store.
func (ds *DiskStore) Inputs() (vm.InputSource, error) {
	fd, err := ds.feedData()
	if err != nil {
		return nil, err
	}
	return &vm.MapInputs{Values: fd.inputs, Base: vm.ZeroInputs}, nil
}

// feedData scans the feed log once and caches the result.
func (ds *DiskStore) feedData() (*feedData, error) {
	ds.feedOnce.Do(func() {
		ds.feeds, ds.feedErr = ds.scanFeeds()
	})
	return ds.feeds, ds.feedErr
}

// scanFeeds is the single feed-log pass.
func (ds *DiskStore) scanFeeds() (*feedData, error) {
	f, err := os.Open(filepath.Join(ds.dir, feedLogName))
	if err != nil {
		return nil, fmt.Errorf("flightrec: feed log: %w", err)
	}
	defer f.Close()
	fd := &feedData{
		counts: make(map[uint64][]int),
		inputs: make(map[string][]trace.Value),
	}
	bounds := ds.SnapshotSeqs()
	next := 0
	perTID := []int{}
	streams := ds.man.Meta.Streams
	count, err := readFeedLog(f, func(i uint64, fe *feedEntry) error {
		for next < len(bounds) && bounds[next] == i {
			fd.counts[i] = append([]int(nil), perTID...)
			next++
		}
		tid := int(fe.TID)
		if tid < 0 {
			return fmt.Errorf("%w: feed entry %d has thread %d", ErrCorrupt, i, tid)
		}
		for tid >= len(fd.perThread) {
			fd.perThread = append(fd.perThread, nil)
			perTID = append(perTID, 0)
		}
		fd.perThread[tid] = append(fd.perThread[tid], fe.feed())
		perTID[tid]++
		fd.sched = append(fd.sched, fe.TID)
		//lint:exhaustive-default only stream events feed the rehydrated inputs and io index; other kinds are schedule-only here
		switch fe.Kind {
		case trace.EvInput:
			if int(fe.Obj) >= len(streams) {
				return fmt.Errorf("%w: feed entry %d reads stream %d, manifest has %d streams", ErrCorrupt, i, fe.Obj, len(streams))
			}
			fd.inputs[streams[fe.Obj]] = append(fd.inputs[streams[fe.Obj]], fe.Val)
			fd.ios = append(fd.ios, ioRec{idx: i, in: true, obj: fe.Obj, val: fe.Val})
		case trace.EvOutput:
			if int(fe.Obj) >= len(streams) {
				return fmt.Errorf("%w: feed entry %d writes stream %d, manifest has %d streams", ErrCorrupt, i, fe.Obj, len(streams))
			}
			fd.ios = append(fd.ios, ioRec{idx: i, in: false, obj: fe.Obj, val: fe.Val})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for next < len(bounds) && bounds[next] == count {
		fd.counts[count] = append([]int(nil), perTID...)
		next++
	}
	if count != ds.man.FeedCount {
		return nil, fmt.Errorf("%w: feed log has %d entries, manifest declares %d", ErrCorrupt, count, ds.man.FeedCount)
	}
	return fd, nil
}

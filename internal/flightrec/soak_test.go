package flightrec_test

import (
	"testing"

	"debugdet/internal/core"
	"debugdet/internal/flightrec"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/workload"
)

// soakOptions is the flight-recorder configuration the soak runs use: a
// segment every 4096 events, a two-segment ring, eight segments of disk
// retention.
func soakOptions(dir string) flightrec.Options {
	return flightrec.Options{Interval: 4096, RingSegments: 2, Retention: 8, SpillDir: dir}
}

// fullEventBytes prices a monolithic recording's event log the same way
// the recorders do — the serialized-size estimate of every event held in
// memory.
func fullEventBytes(rec *record.Recording) int64 {
	var n int64
	for i := range rec.Full {
		n += int64(record.FullEventBytes(&rec.Full[i]))
	}
	return n
}

// TestSoakMillionEventRecording is the tentpole acceptance soak: a dynokv
// run scaled past a million events records through the flight recorder at
// O(ring) peak memory, and seeking into the retained tail reproduces the
// recorded suffix exactly, with segmented validation invariant across
// worker counts.
func TestSoakMillionEventRecording(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event soak in -short mode")
	}
	s, err := workload.ByName("dynokv-staleread")
	if err != nil {
		t.Fatal(err)
	}
	res, err := flightrec.Record(s, s.DefaultSeed, scenario.Params{"rounds": 1500}, soakOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 1_000_000 {
		t.Fatalf("soak run is only %d events; want >= 1M", res.Events)
	}

	// Peak recorder memory must be O(ring): bounded by the ring plus the
	// building and spilling segments, with 2x headroom — and in no
	// relation to the run's total event volume.
	avgSeg := res.LogBytes / int64(res.Segments)
	ring := soakOptions("").RingSegments
	ringBound := 2 * int64(ring+2) * avgSeg // ring + building + spilling segments, then 2x headroom
	if res.PeakMemBytes > ringBound {
		t.Fatalf("peak recorder memory %d exceeds the ring bound %d (avg segment %d bytes, %d segments)",
			res.PeakMemBytes, ringBound, avgSeg, res.Segments)
	}
	if res.PeakMemBytes*20 > res.LogBytes {
		t.Fatalf("peak recorder memory %d is not small against the %d-byte run", res.PeakMemBytes, res.LogBytes)
	}

	st := res.Store
	lo, hi := flightrec.Retained(st)
	if hi != res.Events || lo == 0 {
		t.Fatalf("retention kept [%d, %d) of %d events; want a proper tail ending at the run's end", lo, hi, res.Events)
	}

	// Seek into the retained tail: the session must restore from a
	// boundary snapshot and its replayed suffix must be logically
	// identical to the recorded events of the same range.
	target := lo + (hi-lo)*3/4
	sess, err := replay.SeekStore(s, st, target, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.FromCheckpoint || sess.SuffixFrom < lo {
		t.Fatalf("tail seek did not restore from a retained checkpoint: fromCkpt=%v suffixFrom=%d lo=%d",
			sess.FromCheckpoint, sess.SuffixFrom, lo)
	}
	if sess.Pos() != target {
		t.Fatalf("seek landed at %d, want %d", sess.Pos(), target)
	}
	view, ok := sess.RunToEnd()
	if !ok {
		t.Fatal("tail seek replay did not reproduce the recorded terminal identity")
	}
	want, err := flightrec.EventRange(st, sess.SuffixFrom, hi)
	if err != nil {
		t.Fatal(err)
	}
	assertEventsMatch(t, "soak tail suffix", view.Trace.Events, want)

	// Segmented validation of the retained tail is worker-count
	// invariant: same verdict, same segment count, same work.
	var first *replay.SegmentedResult
	for _, workers := range []int{1, 4} {
		sres, err := replay.SegmentedStore(s, st, replay.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sres.Ok {
			t.Fatalf("workers=%d: segmented replay diverged at %d", workers, sres.Mismatch)
		}
		if first == nil {
			first = sres
			continue
		}
		if sres.Segments != first.Segments || sres.WorkSteps != first.WorkSteps {
			t.Fatalf("worker-count variance: %d segments / %d steps vs %d / %d",
				sres.Segments, sres.WorkSteps, first.Segments, first.WorkSteps)
		}
	}
}

// TestSoakMemoryGrowthContrast is the bounded-memory claim measured: as
// the run doubles, the monolithic recorder's in-memory event log doubles
// with it, while the flight recorder's peak memory stays flat at the ring
// bound.
func TestSoakMemoryGrowthContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("soak contrast in -short mode")
	}
	s, err := workload.ByName("dynokv-staleread")
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		events    uint64
		monoBytes int64
		peak      int64
	}
	var pts []point
	for _, rounds := range []int64{100, 200} {
		p := scenario.Params{"rounds": rounds}
		rec, _, _, err := core.RecordOnly(s, record.Perfect, core.Options{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		res, err := flightrec.Record(s, s.DefaultSeed, p, soakOptions(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Events != rec.EventCount {
			t.Fatalf("rounds=%d: flight run saw %d events, monolithic %d", rounds, res.Events, rec.EventCount)
		}
		pts = append(pts, point{rec.EventCount, fullEventBytes(rec), res.PeakMemBytes})
	}
	evRatio := float64(pts[1].events) / float64(pts[0].events)
	monoRatio := float64(pts[1].monoBytes) / float64(pts[0].monoBytes)
	if monoRatio < 0.9*evRatio || monoRatio > 1.1*evRatio {
		t.Fatalf("monolithic memory is not linear in the run: %.0f%% growth for %.0f%% more events",
			(monoRatio-1)*100, (evRatio-1)*100)
	}
	peakRatio := float64(pts[1].peak) / float64(pts[0].peak)
	if peakRatio > 1.5 {
		t.Fatalf("flight-recorder peak grew %.0f%% when the run doubled; the ring bound is broken",
			(peakRatio-1)*100)
	}
	if pts[1].peak*4 > pts[1].monoBytes {
		t.Fatalf("flight-recorder peak %d is not small against the %d-byte monolithic log",
			pts[1].peak, pts[1].monoBytes)
	}
}

// Package checkpoint implements time-travel support for recorded
// executions (DESIGN.md §5): periodic deterministic snapshots of VM state
// captured while a run is recorded or replayed, a binary codec that
// persists them inside the .ddrc recording format, and the feed
// derivation that lets vm.Restore rebuild a machine mid-trace from a
// snapshot plus the recorded event prefix.
//
// Checkpoints are what make replay latency independent of where in a long
// trace the developer wants to look: seeking to event k costs one restore
// (cheap feed replay of each thread, no scheduling) plus a scheduled
// replay of at most one checkpoint interval, instead of a full replay of
// k events. The same machinery partitions a trace into segments that
// replay and validate concurrently (replay.Segmented).
//
// Checkpoints require complete knowledge of the prefix — every event with
// its value — so they are captured for perfect-determinism recordings;
// relaxed models fall back to replay-from-start seeks.
package checkpoint

package checkpoint

import (
	"fmt"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// DefaultInterval is the event interval between snapshots when none is
// configured: small enough that a seek replays a short suffix, large
// enough that checkpoint volume stays a fraction of the event log.
const DefaultInterval = 256

// Writer is a vm.Observer that captures a state snapshot every interval
// events. Attach it to the recording (or replaying) machine alongside the
// recorder; the snapshots become Recording.Checkpoints. The capture work
// is priced like any recording work — each snapshot charges its encoded
// size against the machine's cost model, so checkpointed recordings
// report honestly higher overhead.
type Writer struct {
	m        *vm.Machine
	interval uint64
	cost     *vm.CostModel
	snaps    []*vm.Snapshot
	bytes    int64
	sink     func(*vm.Snapshot)
}

// NewWriter returns a writer capturing every interval events on m
// (0 = DefaultInterval).
func NewWriter(m *vm.Machine, interval uint64) *Writer {
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Writer{m: m, interval: interval, cost: m.Cost()}
}

// NewStreamingWriter returns a writer that hands each captured snapshot to
// sink instead of retaining it. Capture timing and cost accounting are
// identical to NewWriter — a streamed run charges the same RecordCycles as
// a retained run — but ownership of every snapshot moves to the sink, so a
// bounded-memory consumer (the flight recorder's segment ring) does not
// pay for a second, unbounded copy in the writer. Snapshots returns nil
// for a streaming writer; Bytes still accumulates.
func NewStreamingWriter(m *vm.Machine, interval uint64, sink func(*vm.Snapshot)) *Writer {
	w := NewWriter(m, interval)
	w.sink = sink
	return w
}

// OnEvent implements vm.Observer: on interval boundaries it snapshots the
// machine and returns the virtual-cycle cost of persisting the snapshot.
func (w *Writer) OnEvent(e *trace.Event) uint64 {
	if e.Kind.IsTerminal() {
		return 0
	}
	if w.m.Seq()%w.interval != 0 {
		return 0
	}
	s := w.m.Snapshot(e.TID)
	n := SnapshotSize(s)
	w.bytes += n
	if w.sink != nil {
		w.sink(s)
	} else {
		w.snaps = append(w.snaps, s)
	}
	return w.cost.RecordCost(int(n))
}

// Snapshots returns the captured checkpoints, in trace order.
func (w *Writer) Snapshots() []*vm.Snapshot { return w.snaps }

// Bytes returns the total encoded size of the captured checkpoints.
func (w *Writer) Bytes() int64 { return w.bytes }

// Interval returns the configured capture interval.
func (w *Writer) Interval() uint64 { return w.interval }

// Best returns the latest checkpoint whose sequence number is ≤ target,
// or nil when none qualifies (seek must fall back to replay-from-start).
// The slice may be in any order: merged or overlaid snapshot sources (a
// flight recorder's segment ring spliced with retained disk segments, or
// flightrec.WithSnapshots overlays) do not guarantee trace order, so Best
// scans the whole slice for the maximum qualifying Seq instead of
// assuming it can stop at the first Seq > target.
func Best(snaps []*vm.Snapshot, target uint64) *vm.Snapshot {
	var best *vm.Snapshot
	for _, s := range snaps {
		if s.Seq <= target && (best == nil || s.Seq > best.Seq) {
			best = s
		}
	}
	return best
}

// Feeds derives the per-thread operation outcomes of the first seq events
// of a fully recorded trace: the input vm.Restore needs to rebuild each
// thread's position by feed replay. events must be the complete event
// prefix (every event, with values — a perfect-model recording's Full
// stream); threads is the thread count of the snapshot being restored.
func Feeds(events []trace.Event, seq uint64, threads int) ([][]vm.FeedEntry, error) {
	if uint64(len(events)) < seq {
		return nil, fmt.Errorf("checkpoint: prefix needs %d events, recording has %d", seq, len(events))
	}
	feeds := make([][]vm.FeedEntry, threads)
	for i := uint64(0); i < seq; i++ {
		e := &events[i]
		if e.Seq != i {
			return nil, fmt.Errorf("checkpoint: event %d has seq %d; prefix is not a complete event stream", i, e.Seq)
		}
		if e.TID < 0 || int(e.TID) >= threads {
			return nil, fmt.Errorf("checkpoint: event %d belongs to thread %d, snapshot has %d threads", i, e.TID, threads)
		}
		fe := vm.FeedEntry{Kind: e.Kind, OK: true}
		//lint:exhaustive-default kinds without replay payloads need no feed fields; the zero FeedEntry is correct for them
		switch e.Kind {
		case trace.EvLoad, trace.EvRecv, trace.EvInput, trace.EvDiskRead:
			// The event's taint is the provenance of the value read — the
			// operation's contribution to the thread's taint register.
			fe.Val = e.Val
			fe.Taint = e.Taint
		case trace.EvStore, trace.EvDiskWrite, trace.EvDiskFsync,
			trace.EvDiskBarrier, trace.EvDiskCrash:
			// Disk events carry the operation's result as their value —
			// the same invariant memory events obey.
			fe.Val = e.Val
		case trace.EvSpawn:
			// A spawn's result is the child thread ID, carried in Obj.
			fe.Val = trace.Int(int64(e.Obj))
		case trace.EvYield:
			// Yields cover failed try-sends/try-receives and expired
			// timeouts; their second result is false. Plain yields ignore
			// the outcome entirely.
			fe.OK = false
		}
		feeds[e.TID] = append(feeds[e.TID], fe)
	}
	return feeds, nil
}

// FeedPlan is the shared feed derivation for a whole recording: the full
// per-thread operation outcomes, plus each checkpoint's per-thread
// position, computed in one pass. Segmented replay restores many
// checkpoints of the same recording; slicing one plan instead of
// re-deriving per segment keeps the non-replay work linear in the trace.
// The backing arrays are shared between slices and must be treated as
// read-only, which makes a plan safe for concurrent use.
type FeedPlan struct {
	full   [][]vm.FeedEntry
	counts map[uint64][]int // checkpoint seq → events per thread before it
}

// PlanFeeds builds the shared feed plan covering every given checkpoint
// (they must be in trace order, as captured).
func PlanFeeds(events []trace.Event, cps []*vm.Snapshot) (*FeedPlan, error) {
	if len(cps) == 0 {
		return &FeedPlan{counts: map[uint64][]int{}}, nil
	}
	last := cps[len(cps)-1]
	full, err := Feeds(events, last.Seq, len(last.Threads))
	if err != nil {
		return nil, err
	}
	plan := &FeedPlan{full: full, counts: make(map[uint64][]int, len(cps))}
	counts := make([]int, len(last.Threads))
	next := 0
	for i := uint64(0); next < len(cps); i++ {
		for next < len(cps) && cps[next].Seq == i {
			plan.counts[i] = append([]int(nil), counts[:len(cps[next].Threads)]...)
			next++
		}
		if i < uint64(len(events)) && next < len(cps) {
			counts[events[i].TID]++
		}
	}
	return plan, nil
}

// At returns the per-thread feeds for restoring the given checkpoint,
// sliced out of the shared plan.
func (p *FeedPlan) At(cp *vm.Snapshot) ([][]vm.FeedEntry, error) {
	counts, ok := p.counts[cp.Seq]
	if !ok || len(counts) != len(cp.Threads) {
		return nil, fmt.Errorf("checkpoint: feed plan does not cover checkpoint at %d", cp.Seq)
	}
	feeds := make([][]vm.FeedEntry, len(cp.Threads))
	for tid := range feeds {
		feeds[tid] = p.full[tid][:counts[tid]]
	}
	return feeds, nil
}

// RehydrateStreams rebuilds the per-stream history portion of decoded
// snapshots from the recording's event prefix: the consumed input and
// emitted output sequences are projections of the full event stream, so
// the codec does not persist them (checkpoint volume stays proportional
// to live state, not trace length). It validates the rebuilt histories
// against the persisted input cursors.
func RehydrateStreams(snaps []*vm.Snapshot, events []trace.Event) error {
	for _, s := range snaps {
		if uint64(len(events)) < s.Seq {
			return fmt.Errorf("checkpoint: rehydrate needs %d events, recording has %d", s.Seq, len(events))
		}
		for i := range s.Streams {
			s.Streams[i].Inputs = nil
			s.Streams[i].Outputs = nil
		}
		for i := uint64(0); i < s.Seq; i++ {
			e := &events[i]
			//lint:exhaustive-default only stream events rebuild Inputs/Outputs; other kinds do not touch streams
			switch e.Kind {
			case trace.EvInput, trace.EvOutput:
				if int(e.Obj) >= len(s.Streams) {
					return fmt.Errorf("checkpoint: event %d touches stream %d, snapshot has %d", i, e.Obj, len(s.Streams))
				}
				st := &s.Streams[e.Obj]
				if e.Kind == trace.EvInput {
					st.Inputs = append(st.Inputs, e.Val)
				} else {
					st.Outputs = append(st.Outputs, e.Val)
				}
			}
		}
		for i := range s.Streams {
			if len(s.Streams[i].Inputs) != s.Streams[i].InIndex {
				return fmt.Errorf("checkpoint: stream %q rebuilt %d inputs, cursor says %d",
					s.Streams[i].Name, len(s.Streams[i].Inputs), s.Streams[i].InIndex)
			}
		}
	}
	return nil
}

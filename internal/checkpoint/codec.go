package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Snapshot section binary format, embedded in .ddrc recordings (v2+):
//
//	magic   "DDCP" (4 bytes)
//	count   uvarint number of snapshots, then per snapshot:
//	        seq, clock, recordCycles, schedPos, live, liveNonDaemon uvarints
//	        threads: uvarint count, then name (string), flags u8
//	                 (daemon|done|pendingValid), taint u8, pendingCode u8,
//	                 pendingObj uvarint, pendingDeadline uvarint
//	        cells:   uvarint count, then value + taint u8
//	        mutexes: uvarint count, then owner (zigzag varint)
//	        chans:   uvarint count, then per chan uvarint slot count and
//	                 value + taint u8 slots
//	        streams: uvarint count, then name (string) and inIndex uvarint
//	                 (histories are rehydrated from the event prefix)
//	        disks:   uvarint count, then per disk uvarint record count and
//	                 value + taint u8 records, durable uvarint, fsyncs uvarint
//
// Values reuse the trace codec's encoding (trace.WriteValue/ReadValue).

const snapMagic = "DDCP"

// ErrBadSnapshot reports a malformed snapshot section.
var ErrBadSnapshot = errors.New("checkpoint: malformed snapshot section")

// implausible bounds a decoded count so corrupt input fails fast instead
// of allocating gigabytes.
const implausible = 1 << 28

// EncodeSnapshots writes the snapshot section (possibly empty) to w and
// returns the bytes written.
func EncodeSnapshots(w io.Writer, snaps []*vm.Snapshot) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	bw.WriteString(snapMagic)
	writeUvarint(bw, uint64(len(snaps)))
	for _, s := range snaps {
		encodeSnapshot(bw, s)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// SnapshotSize returns the encoded size of one snapshot — its body
// alone, without the section header EncodeSnapshots writes once per
// recording — so the capture cost model and Recording.CheckpointBytes
// sum to what the .ddrc section actually stores for the snapshots.
func SnapshotSize(s *vm.Snapshot) int64 {
	cw := &countingWriter{w: io.Discard}
	bw := bufio.NewWriter(cw)
	encodeSnapshot(bw, s)
	bw.Flush()
	return cw.n
}

func encodeSnapshot(bw *bufio.Writer, s *vm.Snapshot) {
	writeUvarint(bw, s.Seq)
	writeUvarint(bw, s.Clock)
	writeUvarint(bw, s.RecordCycles)
	writeUvarint(bw, s.SchedPos)
	writeUvarint(bw, uint64(s.Live))
	writeUvarint(bw, uint64(s.LiveNonDaemon))

	writeUvarint(bw, uint64(len(s.Threads)))
	for i := range s.Threads {
		t := &s.Threads[i]
		writeString(bw, t.Name)
		var flags byte
		if t.Daemon {
			flags |= 1
		}
		if t.Done {
			flags |= 2
		}
		if t.PendingValid {
			flags |= 4
		}
		bw.WriteByte(flags)
		bw.WriteByte(byte(t.Taint))
		bw.WriteByte(t.PendingCode)
		writeUvarint(bw, uint64(t.PendingObj))
		writeUvarint(bw, t.PendingDeadline)
	}

	writeUvarint(bw, uint64(len(s.Cells)))
	for i := range s.Cells {
		trace.WriteValue(bw, s.Cells[i].Val)
		bw.WriteByte(byte(s.Cells[i].Taint))
	}

	writeUvarint(bw, uint64(len(s.Mutexes)))
	for _, owner := range s.Mutexes {
		writeVarint(bw, int64(owner))
	}

	writeUvarint(bw, uint64(len(s.Chans)))
	for i := range s.Chans {
		slots := s.Chans[i].Slots
		writeUvarint(bw, uint64(len(slots)))
		for _, sl := range slots {
			trace.WriteValue(bw, sl.Val)
			bw.WriteByte(byte(sl.Taint))
		}
	}

	// Stream histories (consumed inputs, emitted outputs) are NOT
	// persisted: they are projections of the event prefix the recording
	// already stores in full, so the loader rehydrates them (see
	// RehydrateStreams). Persisting only the cursor keeps checkpoint
	// volume proportional to live state, not to trace length.
	writeUvarint(bw, uint64(len(s.Streams)))
	for i := range s.Streams {
		st := &s.Streams[i]
		writeString(bw, st.Name)
		writeUvarint(bw, uint64(st.InIndex))
	}

	// Disk records are live state, not a trace projection: the volatile
	// tail and the torn survivor of a crash exist nowhere in the event
	// stream, so the full log is persisted.
	writeUvarint(bw, uint64(len(s.Disks)))
	for i := range s.Disks {
		d := &s.Disks[i]
		writeUvarint(bw, uint64(len(d.Recs)))
		for _, sl := range d.Recs {
			trace.WriteValue(bw, sl.Val)
			bw.WriteByte(byte(sl.Taint))
		}
		writeUvarint(bw, uint64(d.Durable))
		writeUvarint(bw, uint64(d.Fsyncs))
	}
}

// DecodeSnapshots reads a snapshot section written by EncodeSnapshots.
// Truncated or corrupt input returns an error wrapping ErrBadSnapshot;
// it never panics.
func DecodeSnapshots(br *bufio.Reader) ([]*vm.Snapshot, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic)
	}
	count, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > implausible {
		return nil, fmt.Errorf("%w: implausible snapshot count %d", ErrBadSnapshot, count)
	}
	var snaps []*vm.Snapshot
	for i := uint64(0); i < count; i++ {
		s, err := decodeSnapshot(br)
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", i, err)
		}
		snaps = append(snaps, s)
	}
	return snaps, nil
}

func decodeSnapshot(br *bufio.Reader) (*vm.Snapshot, error) {
	s := &vm.Snapshot{}
	var err error
	if s.Seq, err = readUvarint(br); err != nil {
		return nil, err
	}
	if s.Clock, err = readUvarint(br); err != nil {
		return nil, err
	}
	if s.RecordCycles, err = readUvarint(br); err != nil {
		return nil, err
	}
	if s.SchedPos, err = readUvarint(br); err != nil {
		return nil, err
	}
	live, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	liveND, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	s.Live, s.LiveNonDaemon = int(live), int(liveND)

	n, err := readCount(br, "threads")
	if err != nil {
		return nil, err
	}
	s.Threads = make([]vm.ThreadSnap, n)
	for i := range s.Threads {
		t := &s.Threads[i]
		if t.Name, err = readString(br); err != nil {
			return nil, err
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, corrupt(err)
		}
		t.Daemon = flags&1 != 0
		t.Done = flags&2 != 0
		t.PendingValid = flags&4 != 0
		taint, err := br.ReadByte()
		if err != nil {
			return nil, corrupt(err)
		}
		t.Taint = trace.Taint(taint)
		if t.PendingCode, err = br.ReadByte(); err != nil {
			return nil, corrupt(err)
		}
		obj, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		t.PendingObj = trace.ObjID(obj)
		if t.PendingDeadline, err = readUvarint(br); err != nil {
			return nil, err
		}
	}

	if s.Cells, err = readSlots(br, "cells"); err != nil {
		return nil, err
	}

	n, err = readCount(br, "mutexes")
	if err != nil {
		return nil, err
	}
	s.Mutexes = make([]trace.ThreadID, n)
	for i := range s.Mutexes {
		owner, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		s.Mutexes[i] = trace.ThreadID(owner)
	}

	n, err = readCount(br, "chans")
	if err != nil {
		return nil, err
	}
	s.Chans = make([]vm.ChanSnap, n)
	for i := range s.Chans {
		slots, err := readSlots(br, "chan slots")
		if err != nil {
			return nil, err
		}
		if len(slots) == 0 {
			slots = nil
		}
		s.Chans[i].Slots = slots
	}

	n, err = readCount(br, "streams")
	if err != nil {
		return nil, err
	}
	s.Streams = make([]vm.StreamSnap, n)
	for i := range s.Streams {
		st := &s.Streams[i]
		if st.Name, err = readString(br); err != nil {
			return nil, err
		}
		idx, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		st.InIndex = int(idx)
	}

	n, err = readCount(br, "disks")
	if err != nil {
		return nil, err
	}
	s.Disks = make([]vm.DiskSnap, n)
	for i := range s.Disks {
		d := &s.Disks[i]
		if d.Recs, err = readSlots(br, "disk records"); err != nil {
			return nil, err
		}
		durable, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		d.Durable = int(durable)
		fsyncs, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		d.Fsyncs = int(fsyncs)
	}
	return s, nil
}

func readSlots(br *bufio.Reader, what string) ([]vm.SlotSnap, error) {
	n, err := readCount(br, what)
	if err != nil {
		return nil, err
	}
	slots := make([]vm.SlotSnap, n)
	for i := range slots {
		if slots[i].Val, err = trace.ReadValue(br); err != nil {
			return nil, corrupt(err)
		}
		taint, err := br.ReadByte()
		if err != nil {
			return nil, corrupt(err)
		}
		slots[i].Taint = trace.Taint(taint)
	}
	return slots, nil
}

func readCount(br *bufio.Reader, what string) (uint64, error) {
	n, err := readUvarint(br)
	if err != nil {
		return 0, err
	}
	if n > implausible {
		return 0, fmt.Errorf("%w: implausible %s count %d", ErrBadSnapshot, what, n)
	}
	return n, nil
}

func corrupt(err error) error {
	if errors.Is(err, ErrBadSnapshot) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, corrupt(err)
	}
	return v, nil
}

func readVarint(r *bufio.Reader) (int64, error) {
	v, err := binary.ReadVarint(r)
	if err != nil {
		return 0, corrupt(err)
	}
	return v, nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readCount(r, "string bytes")
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", corrupt(err)
	}
	return string(b), nil
}

package checkpoint_test

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// capture records the bank scenario under the perfect model with a
// checkpoint writer attached and returns the recording plus the writer.
func capture(t *testing.T, interval uint64) (*record.Recording, *checkpoint.Writer) {
	t.Helper()
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	var w *checkpoint.Writer
	factory := func(m *vm.Machine) (record.Policy, []vm.Observer) {
		w = checkpoint.NewWriter(m, interval)
		return record.PolicyFor(record.Perfect), []vm.Observer{w}
	}
	rec, _, err := record.RecordWithPolicy(s, record.Perfect, factory, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Checkpoints = w.Snapshots()
	rec.CheckpointBytes = w.Bytes()
	return rec, w
}

func TestWriterCapturesAtInterval(t *testing.T) {
	rec, w := capture(t, 50)
	if len(rec.Checkpoints) == 0 {
		t.Fatalf("no checkpoints over %d events", rec.EventCount)
	}
	want := rec.EventCount / 50
	if max := rec.EventCount; rec.EventCount%50 == 0 && max > 0 {
		// A checkpoint can land exactly on the final event boundary.
		want = max / 50
	}
	if uint64(len(rec.Checkpoints)) != want {
		t.Errorf("captured %d checkpoints over %d events at interval 50, want %d",
			len(rec.Checkpoints), rec.EventCount, want)
	}
	for i, cp := range rec.Checkpoints {
		if cp.Seq != uint64(50*(i+1)) {
			t.Errorf("checkpoint %d at seq %d, want %d", i, cp.Seq, 50*(i+1))
		}
		if cp.SchedPos != cp.Seq {
			t.Errorf("checkpoint %d schedpos %d != seq %d", i, cp.SchedPos, cp.Seq)
		}
	}
	if w.Bytes() <= 0 {
		t.Error("writer reports no checkpoint volume")
	}
	if w.Interval() != 50 {
		t.Errorf("interval = %d", w.Interval())
	}
}

func TestBest(t *testing.T) {
	rec, _ := capture(t, 50)
	snaps := rec.Checkpoints
	if got := checkpoint.Best(snaps, 0); got != nil {
		t.Errorf("checkpoint.Best(0) = seq %d, want nil", got.Seq)
	}
	if got := checkpoint.Best(snaps, 49); got != nil {
		t.Errorf("checkpoint.Best(49) = seq %d, want nil", got.Seq)
	}
	if got := checkpoint.Best(snaps, 50); got == nil || got.Seq != 50 {
		t.Errorf("checkpoint.Best(50) = %v, want seq 50", got)
	}
	if got := checkpoint.Best(snaps, 149); got == nil || got.Seq != 100 {
		t.Errorf("checkpoint.Best(149) = %v, want seq 100", got)
	}
	if got := checkpoint.Best(snaps, 1<<40); got != snaps[len(snaps)-1] {
		t.Errorf("checkpoint.Best(huge) is not the last checkpoint")
	}
}

// TestBestUnordered pins that Best selects the maximum Seq ≤ target
// regardless of slice order: merged or overlaid snapshot sources (e.g.
// flightrec.WithSnapshots over a spliced segment ring) do not guarantee
// trace order, and the old early-break scan returned a stale — or nil —
// snapshot on such inputs.
func TestBestUnordered(t *testing.T) {
	rec, _ := capture(t, 50)
	if len(rec.Checkpoints) < 3 {
		t.Fatalf("need at least 3 checkpoints, have %d", len(rec.Checkpoints))
	}
	// A deterministic shuffle: rotate then swap ends, so the first element
	// has Seq > target for small targets (the early-break trap) and the
	// best qualifying snapshot sits after a larger one.
	snaps := make([]*vm.Snapshot, 0, len(rec.Checkpoints))
	snaps = append(snaps, rec.Checkpoints[len(rec.Checkpoints)-1])
	for i := len(rec.Checkpoints) - 2; i >= 0; i-- {
		snaps = append(snaps, rec.Checkpoints[i])
	}
	for _, target := range []uint64{0, 49, 50, 99, 149, 1 << 40} {
		want := checkpoint.Best(rec.Checkpoints, target)
		got := checkpoint.Best(snaps, target)
		switch {
		case want == nil && got != nil:
			t.Errorf("Best(shuffled, %d) = seq %d, want nil", target, got.Seq)
		case want != nil && got == nil:
			t.Errorf("Best(shuffled, %d) = nil, want seq %d", target, want.Seq)
		case want != nil && got != nil && got.Seq != want.Seq:
			t.Errorf("Best(shuffled, %d) = seq %d, want seq %d", target, got.Seq, want.Seq)
		}
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	rec, _ := capture(t, 50)
	var buf bytes.Buffer
	n, err := checkpoint.EncodeSnapshots(&buf, rec.Checkpoints)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := checkpoint.DecodeSnapshots(bufioReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The codec persists live state only; stream histories come back via
	// rehydration from the event prefix.
	if err := checkpoint.RehydrateStreams(got, rec.Full); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Checkpoints, got) {
		t.Fatalf("round-trip not lossless:\nwant %+v\ngot  %+v", rec.Checkpoints[0], got[0])
	}
}

func TestSnapshotCodecTruncation(t *testing.T) {
	rec, _ := capture(t, 50)
	var buf bytes.Buffer
	if _, err := checkpoint.EncodeSnapshots(&buf, rec.Checkpoints); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := checkpoint.DecodeSnapshots(bufioReader(full[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
		if !errors.Is(err, checkpoint.ErrBadSnapshot) && !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: unexpected error class: %v", cut, err)
		}
	}
}

func TestFeedsValidation(t *testing.T) {
	rec, _ := capture(t, 50)
	cp := rec.Checkpoints[0]
	feeds, err := checkpoint.Feeds(rec.Full, cp.Seq, len(cp.Threads))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range feeds {
		total += len(f)
	}
	if uint64(total) != cp.Seq {
		t.Errorf("feeds cover %d ops, prefix has %d events", total, cp.Seq)
	}
	// Spawn feed entries must resolve to the child ID, and input-like
	// entries must carry their taint.
	for i := uint64(0); i < cp.Seq; i++ {
		e := rec.Full[i]
		if e.Kind == trace.EvSpawn {
			found := false
			for _, fe := range feeds[e.TID] {
				if fe.Kind == trace.EvSpawn && fe.Val.AsInt() == int64(e.Obj) {
					found = true
				}
			}
			if !found {
				t.Fatalf("spawn of thread %d missing from feed", e.Obj)
			}
		}
	}

	// Too short a prefix errors.
	if _, err := checkpoint.Feeds(rec.Full[:10], 50, len(cp.Threads)); err == nil {
		t.Error("short prefix accepted")
	}
	// A gappy event stream (value-model shaped) errors.
	gappy := append([]trace.Event(nil), rec.Full[:50]...)
	gappy[7].Seq = 99
	if _, err := checkpoint.Feeds(gappy, 50, len(cp.Threads)); err == nil {
		t.Error("gappy prefix accepted")
	}
	// An out-of-range thread errors.
	if _, err := checkpoint.Feeds(rec.Full, cp.Seq, 1); err == nil {
		t.Error("out-of-range thread accepted")
	}
}

// bufioReader wraps bytes in the reader type the decoder takes.
func bufioReader(b []byte) *bufio.Reader { return bufio.NewReader(bytes.NewReader(b)) }

// TestRestoreRejectsCorruptFeeds pins the restore error path: a feed that
// disagrees with the program must produce an error — promptly, with every
// already-started thread released — never a hang or a silently divergent
// machine. (A regression here deadlocks the test and trips the go test
// timeout.)
func TestRestoreRejectsCorruptFeeds(t *testing.T) {
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := capture(t, 100)
	cp := rec.Checkpoints[len(rec.Checkpoints)-1]
	feeds, err := checkpoint.Feeds(rec.Full, cp.Seq, len(cp.Threads))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a mid-feed entry of a later thread, so earlier threads have
	// already parked when the failure surfaces — the path that must
	// release them before returning.
	victim := -1
	for tid := len(feeds) - 1; tid > 0; tid-- {
		if len(feeds[tid]) > 1 {
			victim = tid
			break
		}
	}
	if victim < 0 {
		t.Fatal("no thread with a multi-entry feed")
	}
	bad := make([]vm.FeedEntry, len(feeds[victim]))
	copy(bad, feeds[victim])
	bad[len(bad)/2].Kind = trace.EvExit
	feeds[victim] = bad

	cfg := vm.Config{
		Seed:      rec.Seed,
		Scheduler: vm.NewReplayScheduler(nil),
		RelaxTime: true,
	}
	setup := func(m *vm.Machine) func(*vm.Thread) {
		return s.Build(m, s.DefaultParams)
	}
	if _, err := vm.Restore(cfg, setup, cp, feeds); err == nil {
		t.Fatal("restore accepted a corrupted feed")
	}
}

// Package simnet provides a virtual message-passing network on top of the
// deterministic VM: named nodes with inboxes, point-to-point links with
// configurable latency and loss, and a structured message codec.
//
// Delivery delay and message loss are environment non-determinism: pump
// threads draw them from VM input streams (tainted TaintEnv), so they are
// part of the recorded execution under high-fidelity models and part of
// the search space for inference-based models. That is exactly the
// mechanism behind the paper's §2 message-drop example, where an
// over-relaxed replayer can attribute a buffer race to network congestion:
// both explanations live in the same input space.
package simnet

import (
	"encoding/binary"
	"fmt"

	"debugdet/internal/trace"
)

// Message is a structured network message. Fields are positional by
// convention of each protocol (see the hyperkv package for an example).
type Message struct {
	Kind string   // message type tag
	From string   // sender node name
	Args []string // string arguments
	Nums []int64  // numeric arguments
	Blob []byte   // bulk payload
}

// String renders the message for diagnostics.
func (m Message) String() string {
	return fmt.Sprintf("%s from=%s args=%v nums=%v blob=%dB",
		m.Kind, m.From, m.Args, m.Nums, len(m.Blob))
}

// Encode serializes the message into a VM value (a byte blob). The
// encoding is length-prefixed and deterministic.
func (m Message) Encode() trace.Value {
	var b []byte
	b = appendString(b, m.Kind)
	b = appendString(b, m.From)
	b = binary.AppendUvarint(b, uint64(len(m.Args)))
	for _, a := range m.Args {
		b = appendString(b, a)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Nums)))
	for _, n := range m.Nums {
		b = binary.AppendVarint(b, n)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Blob)))
	b = append(b, m.Blob...)
	return trace.Bytes_(b)
}

// DecodeMessage parses a value produced by Encode. It returns an error for
// malformed input rather than panicking, since messages may be synthesized
// by the inference engine.
func DecodeMessage(v trace.Value) (Message, error) {
	if v.Kind != trace.VBytes {
		return Message{}, fmt.Errorf("simnet: message value has kind %d, want bytes", v.Kind)
	}
	b := v.Bytes
	var m Message
	var err error
	if m.Kind, b, err = takeString(b); err != nil {
		return Message{}, fmt.Errorf("simnet: kind: %w", err)
	}
	if m.From, b, err = takeString(b); err != nil {
		return Message{}, fmt.Errorf("simnet: from: %w", err)
	}
	nArgs, b, err := takeUvarint(b)
	if err != nil {
		return Message{}, fmt.Errorf("simnet: argc: %w", err)
	}
	for i := uint64(0); i < nArgs; i++ {
		var a string
		if a, b, err = takeString(b); err != nil {
			return Message{}, fmt.Errorf("simnet: arg %d: %w", i, err)
		}
		m.Args = append(m.Args, a)
	}
	nNums, b, err := takeUvarint(b)
	if err != nil {
		return Message{}, fmt.Errorf("simnet: numc: %w", err)
	}
	for i := uint64(0); i < nNums; i++ {
		var n int64
		if n, b, err = takeVarint(b); err != nil {
			return Message{}, fmt.Errorf("simnet: num %d: %w", i, err)
		}
		m.Nums = append(m.Nums, n)
	}
	nBlob, b, err := takeUvarint(b)
	if err != nil {
		return Message{}, fmt.Errorf("simnet: blob size: %w", err)
	}
	if uint64(len(b)) < nBlob {
		return Message{}, fmt.Errorf("simnet: blob truncated: have %d want %d", len(b), nBlob)
	}
	if nBlob > 0 {
		m.Blob = b[:nBlob]
	}
	return m, nil
}

// MustDecode decodes a message the caller knows is well-formed (one it
// received from a link its own protocol feeds); malformed input panics.
func MustDecode(v trace.Value) Message {
	m, err := DecodeMessage(v)
	if err != nil {
		panic(err)
	}
	return m
}

// Arg returns Args[i] or "" when absent.
func (m Message) Arg(i int) string {
	if i < len(m.Args) {
		return m.Args[i]
	}
	return ""
}

// Num returns Nums[i] or 0 when absent.
func (m Message) Num(i int) int64 {
	if i < len(m.Nums) {
		return m.Nums[i]
	}
	return 0
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, b[n:], nil
}

func takeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad varint")
	}
	return v, b[n:], nil
}

func takeString(b []byte) (string, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("string truncated")
	}
	return string(rest[:n]), rest[n:], nil
}

package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func TestMessageRoundTrip(t *testing.T) {
	msg := Message{
		Kind: "commit",
		From: "client-1",
		Args: []string{"users", "row-42"},
		Nums: []int64{7, -3, 0},
		Blob: []byte("payload bytes"),
	}
	got, err := DecodeMessage(msg.Encode())
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if got.Kind != msg.Kind || got.From != msg.From {
		t.Fatalf("header mismatch: %v", got)
	}
	if len(got.Args) != 2 || got.Arg(0) != "users" || got.Arg(1) != "row-42" {
		t.Fatalf("args mismatch: %v", got.Args)
	}
	if len(got.Nums) != 3 || got.Num(1) != -3 {
		t.Fatalf("nums mismatch: %v", got.Nums)
	}
	if string(got.Blob) != "payload bytes" {
		t.Fatalf("blob mismatch: %q", got.Blob)
	}
}

func TestMessageAccessorsOutOfRange(t *testing.T) {
	var m Message
	if m.Arg(3) != "" || m.Num(9) != 0 {
		t.Fatal("out-of-range accessors must return zero values")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := DecodeMessage(trace.Int(5)); err == nil {
		t.Fatal("accepted non-bytes value")
	}
	if _, err := DecodeMessage(trace.Bytes_([]byte{0xff})); err == nil {
		t.Fatal("accepted truncated bytes")
	}
	good := Message{Kind: "k", From: "f", Blob: []byte("xyz")}.Encode()
	for cut := 1; cut < len(good.Bytes); cut++ {
		if _, err := DecodeMessage(trace.Bytes_(good.Bytes[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Message{Kind: randStr(r), From: randStr(r)}
		for i := 0; i < r.Intn(5); i++ {
			m.Args = append(m.Args, randStr(r))
		}
		for i := 0; i < r.Intn(5); i++ {
			m.Nums = append(m.Nums, r.Int63()-r.Int63())
		}
		if r.Intn(2) == 0 {
			m.Blob = make([]byte, r.Intn(100))
			r.Read(m.Blob)
		}
		got, err := DecodeMessage(m.Encode())
		if err != nil {
			return false
		}
		if got.Kind != m.Kind || got.From != m.From || len(got.Args) != len(m.Args) ||
			len(got.Nums) != len(m.Nums) || len(got.Blob) != len(m.Blob) {
			return false
		}
		for i := range m.Args {
			if got.Args[i] != m.Args[i] {
				return false
			}
		}
		for i := range m.Nums {
			if got.Nums[i] != m.Nums[i] {
				return false
			}
		}
		for i := range m.Blob {
			if got.Blob[i] != m.Blob[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randStr(r *rand.Rand) string {
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// pingPong builds a two-node network where A sends n pings and B echoes.
func pingPong(seed int64, n int, cfg LinkConfig) (*vm.Result, *Network) {
	m := vm.New(vm.Config{Seed: seed, Inputs: vm.SeededInputs(seed, 1000), CollectTrace: true})
	net := New(m, Options{DefaultLink: cfg})
	net.AddNode("a")
	net.AddNode("b")
	net.Build()
	sA := m.Site("a.loop")
	sB := m.Site("b.loop")
	sp := m.Site("main")
	out := m.Stream("a.got")

	res := m.Run(func(t *vm.Thread) {
		net.Start(t)
		t.SpawnDaemon(sp, "b", func(t *vm.Thread) {
			for {
				msg := net.Recv(t, sB, "b")
				net.Send(t, sB, "b", "a", Message{Kind: "pong", From: "b", Nums: []int64{msg.Num(0)}})
			}
		})
		t.Spawn(sp, "a", func(t *vm.Thread) {
			got := 0
			for i := 0; i < n; i++ {
				net.Send(t, sA, "a", "b", Message{Kind: "ping", From: "a", Nums: []int64{int64(i)}})
			}
			for got < n {
				msg, ok := net.RecvTimeout(t, sA, "a", 200000)
				if !ok {
					break
				}
				_ = msg
				got++
			}
			t.Output(sA, out, trace.Int(int64(got)))
		})
	})
	return res, net
}

func TestPingPongReliableDeliversAll(t *testing.T) {
	res, net := pingPong(3, 20, LinkConfig{LatencyBase: 50})
	if res.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Terminal)
	}
	if got := res.Outputs["a.got"][0].AsInt(); got != 20 {
		t.Fatalf("received %d pongs, want 20", got)
	}
	if net.Dropped() != 0 {
		t.Fatalf("reliable link dropped %d", net.Dropped())
	}
}

func TestLossyLinkDropsSome(t *testing.T) {
	dropped := false
	for seed := int64(0); seed < 5 && !dropped; seed++ {
		_, net := pingPong(seed, 40, LinkConfig{LatencyBase: 10, DropPercent: 30})
		dropped = net.Dropped() > 0
	}
	if !dropped {
		t.Fatal("30% lossy link never dropped across 5 seeds")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	fast, _ := pingPong(1, 10, LinkConfig{LatencyBase: 1})
	slow, _ := pingPong(1, 10, LinkConfig{LatencyBase: 5000})
	if slow.Cycles <= fast.Cycles {
		t.Fatalf("latency had no effect: fast=%d slow=%d", fast.Cycles, slow.Cycles)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	r1, _ := pingPong(9, 15, LinkConfig{LatencyBase: 20, LatencyJitter: 100, DropPercent: 10})
	r2, _ := pingPong(9, 15, LinkConfig{LatencyBase: 20, LatencyJitter: 100, DropPercent: 10})
	if !trace.EventsEqual(r1.Trace, r2.Trace, false) {
		t.Fatal("identical network runs diverged")
	}
}

func TestPumpsDoNotKeepMachineAlive(t *testing.T) {
	// A network with running pumps must not deadlock the machine once the
	// program threads finish.
	res, _ := pingPong(2, 5, LinkConfig{})
	if res.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v, want ok", res.Outcome)
	}
}

package simnet

import (
	"testing"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// oneShot sends a single message a→b and reports the delivery time.
func oneShot(t *testing.T, configure func(n *Network)) (uint64, *vm.Result) {
	t.Helper()
	m := vm.New(vm.Config{Seed: 1, Inputs: vm.SeededInputs(1, 100), CollectTrace: true})
	net := New(m, Options{})
	net.AddNode("a")
	net.AddNode("b")
	net.Build()
	if configure != nil {
		configure(net)
	}
	s := m.Site("test")
	var at uint64
	res := m.Run(func(t *vm.Thread) {
		net.Start(t)
		t.Spawn(s, "a", func(t *vm.Thread) {
			net.Send(t, s, "a", "b", Message{Kind: "x", From: "a"})
		})
		t.Spawn(s, "b", func(t *vm.Thread) {
			net.Recv(t, s, "b")
			at = t.Now()
		})
	})
	return at, res
}

func TestSetLinkOverridesDefault(t *testing.T) {
	fast, r1 := oneShot(t, nil)
	slow, r2 := oneShot(t, func(n *Network) {
		n.SetLink("a", "b", LinkConfig{LatencyBase: 50000})
	})
	if r1.Outcome != vm.OutcomeOK || r2.Outcome != vm.OutcomeOK {
		t.Fatalf("outcomes: %v %v", r1.Outcome, r2.Outcome)
	}
	if slow <= fast {
		t.Fatalf("per-link latency override inert: fast=%d slow=%d", fast, slow)
	}
}

func TestJitterDrawsFromEnvStream(t *testing.T) {
	_, res := oneShot(t, func(n *Network) {
		n.SetLink("a", "b", LinkConfig{LatencyBase: 10, LatencyJitter: 500})
	})
	if res.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome %v", res.Outcome)
	}
	// The jitter must appear as an env-tainted input event on the link's
	// latency stream.
	found := false
	for _, e := range res.Trace.Events {
		if e.Kind == trace.EvInput && e.Taint&trace.TaintEnv != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no env-tainted latency input consumed")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	m := vm.New(vm.Config{})
	n := New(m, Options{})
	n.AddNode("x")
	n.AddNode("x")
}

func TestUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNode on unknown node did not panic")
		}
	}()
	m := vm.New(vm.Config{})
	n := New(m, Options{})
	n.MustNode("ghost")
}

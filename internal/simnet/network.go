package simnet

import (
	"fmt"
	"sort"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// LinkConfig describes one directed link's delivery behaviour.
type LinkConfig struct {
	// LatencyBase is the minimum delivery delay in cycles.
	LatencyBase uint64
	// LatencyJitter adds a data-dependent delay in [0, LatencyJitter),
	// drawn from the link's latency input stream.
	LatencyJitter uint64
	// DropPercent is the probability (0-100) that a message is dropped,
	// decided by the link's drop input stream. Dropped messages vanish;
	// the protocols above are expected to tolerate or detect this.
	DropPercent int64
}

// Options configures a Network.
type Options struct {
	// DefaultLink applies to links without an explicit configuration.
	DefaultLink LinkConfig
	// InboxCapacity is each node's inbox channel capacity (default 64).
	InboxCapacity int
}

// Node is one network endpoint.
type Node struct {
	Name  string
	Inbox trace.ObjID // channel carrying encoded messages
}

type link struct {
	from, to string
	cfg      LinkConfig
	ch       trace.ObjID // staging channel feeding the pump
	latIn    trace.ObjID // input stream for jitter
	dropIn   trace.ObjID // input stream for drop decisions
}

// Network is a virtual network bound to one machine. Build the topology
// before Run; call Start from the program's main thread to launch the pump
// daemons.
type Network struct {
	m     *vm.Machine
	opts  Options
	nodes map[string]*Node
	links map[string]*link

	sPumpRecv trace.SiteID
	sPumpSend trace.SiteID
	sPumpLat  trace.SiteID
	sPumpDrop trace.SiteID
	sSend     trace.SiteID

	delivered uint64
	dropped   uint64
}

// New creates a network on the machine.
func New(m *vm.Machine, opts Options) *Network {
	if opts.InboxCapacity == 0 {
		opts.InboxCapacity = 64
	}
	return &Network{
		m:         m,
		opts:      opts,
		nodes:     make(map[string]*Node),
		links:     make(map[string]*link),
		sPumpRecv: m.Site("simnet.pump.recv"),
		sPumpSend: m.Site("simnet.pump.deliver"),
		sPumpLat:  m.Site("simnet.pump.latency"),
		sPumpDrop: m.Site("simnet.pump.drop"),
		sSend:     m.Site("simnet.send"),
	}
}

// AddNode registers a node and returns it. Node registration order must be
// deterministic (it allocates VM objects).
func (n *Network) AddNode(name string) *Node {
	if _, ok := n.nodes[name]; ok {
		panic("simnet: duplicate node " + name)
	}
	node := &Node{
		Name:  name,
		Inbox: n.m.NewChan("inbox:"+name, n.opts.InboxCapacity),
	}
	n.nodes[name] = node
	return node
}

// MustNode returns a registered node.
func (n *Network) MustNode(name string) *Node {
	node, ok := n.nodes[name]
	if !ok {
		panic("simnet: unknown node " + name)
	}
	return node
}

// SetLink overrides the configuration of the directed link from → to.
// Links are created lazily on first configuration or first send.
func (n *Network) SetLink(from, to string, cfg LinkConfig) {
	l := n.getLink(from, to)
	l.cfg = cfg
}

func (n *Network) getLink(from, to string) *link {
	key := from + "\x00" + to
	if l, ok := n.links[key]; ok {
		return l
	}
	name := fmt.Sprintf("link:%s->%s", from, to)
	l := &link{
		from:   from,
		to:     to,
		cfg:    n.opts.DefaultLink,
		ch:     n.m.NewChan(name, n.opts.InboxCapacity),
		latIn:  n.m.DeclareStream("net.lat:"+from+"->"+to, trace.TaintEnv),
		dropIn: n.m.DeclareStream("net.drop:"+from+"->"+to, trace.TaintEnv),
	}
	n.links[key] = l
	return l
}

// Build pre-creates all point-to-point links between registered nodes.
// Call it after AddNode calls and before Run, so that VM object allocation
// does not depend on message order.
func (n *Network) Build() {
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, from := range names {
		for _, to := range names {
			if from != to {
				n.getLink(from, to)
			}
		}
	}
}

// Start launches one pump daemon per link. Call from the main thread after
// Build. Pumps are daemons: they do not keep the machine alive.
func (n *Network) Start(t *vm.Thread) {
	keys := make([]string, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := n.links[k]
		t.SpawnDaemon(n.sPumpSend, "pump:"+l.from+">"+l.to, func(t *vm.Thread) {
			n.pump(t, l)
		})
	}
}

// pump moves messages across one link, applying drop and latency drawn
// from the link's environment streams.
func (n *Network) pump(t *vm.Thread, l *link) {
	dst := n.MustNode(l.to).Inbox
	for {
		v := t.Recv(n.sPumpRecv, l.ch)
		if l.cfg.DropPercent > 0 {
			roll := t.Input(n.sPumpDrop, l.dropIn).AsInt() % 100
			if roll < l.cfg.DropPercent {
				n.dropped++
				continue
			}
		}
		delay := l.cfg.LatencyBase
		if l.cfg.LatencyJitter > 0 {
			j := t.Input(n.sPumpLat, l.latIn).AsInt()
			if j < 0 {
				j = -j
			}
			delay += uint64(j) % l.cfg.LatencyJitter
		}
		if delay > 0 {
			t.Sleep(n.sPumpLat, delay)
		}
		t.Send(n.sPumpSend, dst, v)
		n.delivered++
	}
}

// Send transmits a message from the calling thread's node to another node.
// The send is asynchronous: it stages the message on the link and returns
// once the link accepts it.
func (n *Network) Send(t *vm.Thread, site trace.SiteID, from, to string, msg Message) {
	if site == trace.NoSite {
		site = n.sSend
	}
	l := n.getLink(from, to)
	t.Send(site, l.ch, msg.Encode())
}

// Recv blocks on the node's inbox and decodes the next message.
func (n *Network) Recv(t *vm.Thread, site trace.SiteID, node string) Message {
	v := t.Recv(site, n.MustNode(node).Inbox)
	return MustDecode(v)
}

// RecvTimeout is Recv with a deadline; ok is false on timeout.
func (n *Network) RecvTimeout(t *vm.Thread, site trace.SiteID, node string, d uint64) (Message, bool) {
	v, ok := t.RecvTimeout(site, n.MustNode(node).Inbox, d)
	if !ok {
		return Message{}, false
	}
	return MustDecode(v), true
}

// Delivered returns how many messages completed delivery.
func (n *Network) Delivered() uint64 { return n.delivered }

// Dropped returns how many messages the network dropped.
func (n *Network) Dropped() uint64 { return n.dropped }

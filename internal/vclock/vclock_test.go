package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroClockBehaviour(t *testing.T) {
	var a, b VC
	if a.HappensBefore(b) || b.HappensBefore(a) {
		t.Fatal("zero clocks must not happen-before each other")
	}
	if !a.Equal(b) {
		t.Fatal("zero clocks must be equal")
	}
	if a.Concurrent(b) {
		t.Fatal("equal clocks must not be concurrent")
	}
}

func TestTickCreatesHappensBefore(t *testing.T) {
	a := New(3)
	b := a.Clone().Tick(1)
	if !a.HappensBefore(b) {
		t.Fatal("clock must happen before its tick")
	}
	if b.HappensBefore(a) {
		t.Fatal("tick must not happen before its origin")
	}
}

func TestConcurrentTicks(t *testing.T) {
	base := New(2)
	a := base.Clone().Tick(0)
	b := base.Clone().Tick(1)
	if !a.Concurrent(b) {
		t.Fatalf("independent ticks must be concurrent: %v vs %v", a, b)
	}
}

func TestJoinOrdersBothInputs(t *testing.T) {
	a := New(2).Tick(0).Tick(0)
	b := New(2).Tick(1)
	j := a.Clone().Join(b)
	if !a.HappensBefore(j.Clone().Tick(0)) {
		t.Fatal("a must happen before a successor of join(a,b)")
	}
	if j.HappensBefore(a) || j.HappensBefore(b) {
		t.Fatal("join must not happen before its inputs")
	}
	if a.HappensBefore(j) == b.HappensBefore(j) && !a.Equal(b) {
		// Both strictly below join unless one dominates; just sanity.
		if !(a.HappensBefore(j) && b.HappensBefore(j)) {
			t.Fatalf("inputs not ordered below join: a=%v b=%v j=%v", a, b, j)
		}
	}
}

func TestGrowthAcrossLengths(t *testing.T) {
	short := VC{5}
	long := VC{5, 0, 0}
	if !short.Equal(long) {
		t.Fatal("trailing zeros must not affect equality")
	}
	longer := long.Clone().Tick(2)
	if !short.HappensBefore(longer) {
		t.Fatal("shorter clock must order below grown tick")
	}
}

// genVC builds a random clock from quick's random source.
func genVC(r *rand.Rand) VC {
	n := 1 + r.Intn(5)
	c := New(n)
	for i := range c {
		c[i] = uint64(r.Intn(8))
	}
	return c
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		return a.Clone().Join(b).Equal(b.Clone().Join(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genVC(r), genVC(r), genVC(r)
		l := a.Clone().Join(b).Join(c)
		rr := a.Clone().Join(b.Clone().Join(c))
		return l.Equal(rr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genVC(r)
		return a.Clone().Join(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHappensBeforeIrreflexiveAndAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		if a.HappensBefore(a) {
			return false
		}
		if a.HappensBefore(b) && b.HappensBefore(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHappensBeforeTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genVC(r)
		b := a.Clone().Join(genVC(r)).Tick(int(r.Intn(4)))
		c := b.Clone().Join(genVC(r)).Tick(int(r.Intn(4)))
		// a < b and b < c by construction (tick after join dominates).
		if !a.HappensBefore(b) || !b.HappensBefore(c) {
			return true // construction degenerate; skip
		}
		return a.HappensBefore(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExactlyOneRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		n := 0
		if a.HappensBefore(b) {
			n++
		}
		if b.HappensBefore(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		if a.Concurrent(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendersNonzero(t *testing.T) {
	c := VC{0, 3, 0, 1}
	if got := c.String(); got != "<t1:3 t3:1>" {
		t.Fatalf("String() = %q", got)
	}
}

// Package vclock implements vector clocks for tracking the happens-before
// partial order among virtual threads.
//
// A vector clock maps a thread index to the number of logical steps that
// thread had completed when the clock was taken. Clocks are compared
// component-wise: C1 happens-before C2 iff every component of C1 is <= the
// corresponding component of C2 and at least one is strictly smaller.
// Two clocks where neither happens before the other are concurrent; that is
// the condition under which two memory accesses can race.
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock. The zero value is a valid clock at the origin
// (all components zero). Indexes are thread IDs; the vector grows on demand.
type VC []uint64

// New returns a clock with capacity for n threads, all components zero.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of c.
func (c VC) Clone() VC {
	d := make(VC, len(c))
	copy(d, c)
	return d
}

// Get returns component i, treating missing components as zero.
func (c VC) Get(i int) uint64 {
	if i < 0 || i >= len(c) {
		return 0
	}
	return c[i]
}

// Tick increments component i, growing the vector if needed, and returns
// the (possibly reallocated) clock. Callers must use the return value, as
// with append.
func (c VC) Tick(i int) VC {
	c = c.ensure(i + 1)
	c[i]++
	return c
}

// Set sets component i to v, growing the vector if needed.
func (c VC) Set(i int, v uint64) VC {
	c = c.ensure(i + 1)
	c[i] = v
	return c
}

func (c VC) ensure(n int) VC {
	if len(c) >= n {
		return c
	}
	d := make(VC, n)
	copy(d, c)
	return d
}

// Join merges other into c component-wise (pointwise maximum) and returns
// the merged clock. Neither input is modified if reallocation occurs; use
// the return value.
func (c VC) Join(other VC) VC {
	c = c.ensure(len(other))
	for i, v := range other {
		if v > c[i] {
			c[i] = v
		}
	}
	return c
}

// HappensBefore reports whether c happens strictly before other.
func (c VC) HappensBefore(other VC) bool {
	le := true
	lt := false
	n := len(c)
	if len(other) > n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		a, b := c.Get(i), other.Get(i)
		if a > b {
			le = false
			break
		}
		if a < b {
			lt = true
		}
	}
	return le && lt
}

// Concurrent reports whether c and other are incomparable under
// happens-before. Equal clocks are not concurrent.
func (c VC) Concurrent(other VC) bool {
	return !c.HappensBefore(other) && !other.HappensBefore(c) && !c.Equal(other)
}

// Equal reports whether the two clocks are component-wise equal, treating
// missing components as zero.
func (c VC) Equal(other VC) bool {
	n := len(c)
	if len(other) > n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if c.Get(i) != other.Get(i) {
			return false
		}
	}
	return true
}

// String renders the clock as "<t0:3 t2:1>" listing only nonzero components.
func (c VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	first := true
	for i, v := range c {
		if v == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "t%d:%d", i, v)
	}
	b.WriteByte('>')
	return b.String()
}

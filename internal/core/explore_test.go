package core

import (
	"testing"

	"debugdet/internal/workload"
)

// TestExploreCausesFindsAllThreeHypertableExplanations exercises the §5
// extension: starting from nothing but the failure signature, the
// exploration synthesizes an execution for every possible root cause of
// the data loss — the race, the slave crash, and the client OOM.
func TestExploreCausesFindsAllThreeHypertableExplanations(t *testing.T) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		t.Fatal(err)
	}
	ex := ExploreCauses(s, "hyperkv:dataloss", Options{ReplayBudget: 250})
	for _, want := range []string{"migration-race", "slave-crash", "client-oom"} {
		v, ok := ex.Found[want]
		if !ok {
			t.Fatalf("cause %q not synthesized (%s)", want, ex.Summary())
		}
		failed, sig := s.CheckFailure(v)
		if !failed || sig != "hyperkv:dataloss" {
			t.Fatalf("synthesized run for %q has wrong identity: %v/%q", want, failed, sig)
		}
		present := false
		for _, c := range s.PresentCauses(v) {
			if c == want {
				present = true
			}
		}
		if !present {
			t.Fatalf("synthesized run for %q does not exhibit it: %v", want, s.PresentCauses(v))
		}
	}
	if len(ex.Missing) != 0 {
		t.Fatalf("missing causes: %v", ex.Missing)
	}
}

// TestExploreCausesReportsUnreachable: causes that cannot produce the
// signature stay in Missing rather than being faked.
func TestExploreCausesReportsUnreachable(t *testing.T) {
	s, err := workload.ByName("sum")
	if err != nil {
		t.Fatal(err)
	}
	ex := ExploreCauses(s, "sum:no-such-signature", Options{ReplayBudget: 10})
	if len(ex.Found) != 0 {
		t.Fatalf("synthesized an impossible signature: %s", ex.Summary())
	}
	if len(ex.Missing) != len(s.RootCauses) {
		t.Fatalf("missing = %v", ex.Missing)
	}
}

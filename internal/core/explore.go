package core

import (
	"fmt"
	"sort"
	"strings"

	"debugdet/internal/infer"
	"debugdet/internal/scenario"
)

// CauseExploration is the result of the §5 extension: for a recorded
// failure signature, one synthesized execution per root cause that can
// explain it. The paper poses this as the ideal beyond debug determinism —
// "a system that records just the failure and finds all root
// cause-equivalent executions that exhibit the failure" — and notes the
// challenge is scale; the exploration shares one search budget across
// causes and reports what it could and could not reach.
type CauseExploration struct {
	Signature string
	// Found maps root-cause ID → a synthesized execution exhibiting the
	// failure through that cause.
	Found map[string]*scenario.RunView
	// Missing lists causes the budget could not synthesize. A cause can
	// be missing either because it cannot produce this signature or
	// because the search ran dry — the report cannot distinguish, which
	// is exactly the scaling challenge the paper names.
	Missing []string
	// Attempts and WorkSteps account the total search effort.
	Attempts  int
	WorkSteps uint64
	// Err is the context error when the exploration was canceled before
	// every cause was searched, nil otherwise.
	Err error
}

// Summary renders the exploration.
func (c *CauseExploration) Summary() string {
	var found []string
	for id := range c.Found {
		found = append(found, id)
	}
	sort.Strings(found)
	return fmt.Sprintf("sig=%q found=[%s] missing=[%s] attempts=%d",
		c.Signature, strings.Join(found, ","), strings.Join(c.Missing, ","), c.Attempts)
}

// ExploreCauses synthesizes, for each of the scenario's declared root
// causes, an execution that exhibits the given failure signature through
// that cause. It needs nothing but the failure signature — the
// failure-determinism recording — making it the "record just the failure,
// then enumerate explanations" workflow of §5.
func ExploreCauses(s *scenario.Scenario, signature string, o Options) *CauseExploration {
	o = o.withDefaults()
	out := &CauseExploration{
		Signature: signature,
		Found:     make(map[string]*scenario.RunView),
	}
	perCause := o.ReplayBudget
	for i, rc := range s.RootCauses {
		if err := o.Ctx.Err(); err != nil {
			// Causes not yet searched are reported missing; Err records
			// that the budget was cut short rather than exhausted.
			out.Err = err
			for _, rest := range s.RootCauses[i:] {
				out.Missing = append(out.Missing, rest.ID)
			}
			return out
		}
		rc := rc
		res := infer.Search(s, func(v *scenario.RunView) bool {
			failed, sig := s.CheckFailure(v)
			return failed && sig == signature && rc.Present(v)
		}, infer.Options{
			Ctx:      o.Ctx,
			Budget:   perCause,
			BaseSeed: o.SearchSeed + int64(i)*1000003,
			Params:   o.Params,
			MaxSteps: o.MaxSteps,
			Workers:  o.Workers,
		})
		out.Attempts += res.Attempts
		out.WorkSteps += res.WorkSteps
		if res.Ok {
			out.Found[rc.ID] = res.View
		} else {
			out.Missing = append(out.Missing, rc.ID)
		}
		if res.Err != nil {
			out.Err = res.Err
			for _, rest := range s.RootCauses[i+1:] {
				out.Missing = append(out.Missing, rest.ID)
			}
			return out
		}
	}
	return out
}

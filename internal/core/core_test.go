package core

import (
	"testing"

	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/workload"
)

// TestFig2Shape pins the paper's §4 case-study results: the relative
// positions of the three determinism models on the Hypertable bug.
func TestFig2Shape(t *testing.T) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		t.Fatal(err)
	}
	get := func(m record.Model) *Evaluation {
		ev, err := Evaluate(s, m, Options{ReplayBudget: 150})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		return ev
	}
	value := get(record.Value)
	failure := get(record.Failure)
	rcse := get(record.DebugRCSE)

	// Fidelity: value = 1, RCSE = 1, failure = 1/3 (three possible root
	// causes — the paper's exact numbers).
	if value.Utility.DF != 1 {
		t.Errorf("value DF = %v, want 1 (%s)", value.Utility.DF, value.Fidelity)
	}
	if rcse.Utility.DF != 1 {
		t.Errorf("rcse DF = %v, want 1 (%s)", rcse.Utility.DF, rcse.Fidelity)
	}
	if failure.Utility.DF <= 0.3 || failure.Utility.DF >= 0.4 {
		t.Errorf("failure DF = %v, want 1/3 (%s)", failure.Utility.DF, failure.Fidelity)
	}

	// Overhead: failure ≈ 1.0 < RCSE << value (Fig. 2's y-axis shape).
	if failure.Overhead != 1.0 {
		t.Errorf("failure overhead = %v, want exactly 1.0 (records nothing)", failure.Overhead)
	}
	if !(rcse.Overhead > 1.0 && rcse.Overhead < 1.6) {
		t.Errorf("rcse overhead = %v, want slightly above 1.0", rcse.Overhead)
	}
	if !(value.Overhead > 2.0) {
		t.Errorf("value overhead = %v, want > 2.0", value.Overhead)
	}
	if !(rcse.Overhead < value.Overhead/1.5) {
		t.Errorf("rcse (%vx) not well below value (%vx)", rcse.Overhead, value.Overhead)
	}

	// Log volume: RCSE records an order of magnitude less than value.
	if rcse.LogBytes*4 > value.LogBytes {
		t.Errorf("rcse log %dB not well below value log %dB", rcse.LogBytes, value.LogBytes)
	}

	// The failure-deterministic replay must have landed on a WRONG root
	// cause (that is what 1/3 fidelity means here).
	if failure.Fidelity.SharedCause {
		t.Error("failure determinism accidentally reproduced the true cause; expected an alternative")
	}
}

// TestPerfectBeatsEverythingOnFidelityAndCost pins the conservative
// baseline's properties.
func TestPerfectDeterminismBaseline(t *testing.T) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(s, record.Perfect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Utility.DF != 1 {
		t.Fatalf("perfect DF = %v", ev.Utility.DF)
	}
	if ev.Replay.Attempts != 1 {
		t.Fatalf("perfect replay attempts = %d", ev.Replay.Attempts)
	}
	if ev.Overhead < 2.0 {
		t.Fatalf("perfect overhead = %v, expected the most expensive recording", ev.Overhead)
	}
}

// TestOutputDeterminismSumHazard pins §2: output determinism on the sum
// bug reproduces the output through innocent inputs — fidelity zero.
func TestOutputDeterminismSumHazard(t *testing.T) {
	s, err := workload.ByName("sum")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(s, record.Output, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Utility.DF != 0 {
		t.Fatalf("output-determinism DF on sum = %v, want 0 (the 2+2=5 hazard)", ev.Utility.DF)
	}
	if !ev.Replay.Ok {
		t.Fatal("output replay should have found an output-matching execution")
	}
	if ev.Fidelity.ReplayFailed {
		t.Fatal("the output-matching execution should not be a failure")
	}
}

// TestMsgDropWrongCause pins §2's second hazard: relaxed replay attributes
// the loss to network congestion instead of the buffer race.
func TestMsgDropWrongCause(t *testing.T) {
	s, err := workload.ByName("msgdrop")
	if err != nil {
		t.Fatal(err)
	}
	fail, err := Evaluate(s, record.Failure, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fail.Utility.DF != 0.5 {
		t.Fatalf("failure DF on msgdrop = %v, want 0.5 (wrong cause of two)", fail.Utility.DF)
	}
	rcse, err := Evaluate(s, record.DebugRCSE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rcse.Utility.DF != 1 {
		t.Fatalf("rcse DF on msgdrop = %v, want 1", rcse.Utility.DF)
	}
}

// TestShrinkGivesEfficiencyAboveOne pins §3.2's DE > 1 observation.
func TestShrinkGivesEfficiencyAboveOne(t *testing.T) {
	s, err := workload.ByName("overflow")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(s, record.Failure, Options{
		ShrinkParams: []scenario.Params{{"requests": 2}, {"requests": 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Replay.Ok {
		t.Fatalf("shrinking replay failed: %s", ev.Replay.Note)
	}
	if ev.Utility.DE <= 1 {
		t.Fatalf("DE with shrinking = %v, want > 1 (synthesized shorter execution)", ev.Utility.DE)
	}
	if ev.Utility.DF != 1 {
		t.Fatalf("shrunk replay DF = %v", ev.Utility.DF)
	}
}

// TestRCSEWithAllTriggers exercises the full RCSE configuration end to
// end.
func TestRCSEWithAllTriggers(t *testing.T) {
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(s, record.DebugRCSE, Options{
		RCSE: RCSEOptions{RaceTrigger: true, InvariantTrigger: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.RCSESetup == nil {
		t.Fatal("no RCSE setup exposed")
	}
	if ev.RCSESetup.InvariantTrigger.Fired() == 0 {
		t.Fatal("invariant trigger never fired on the drifting bank")
	}
	if ev.RCSESetup.RaceTrigger.Fired() == 0 {
		t.Fatal("race trigger never fired on the racy bank")
	}
	if ev.Utility.DF != 1 {
		t.Fatalf("bank RCSE DF = %v", ev.Utility.DF)
	}
}

// TestEvaluateUnknownModel checks error paths.
func TestEvaluateUnknownModel(t *testing.T) {
	s, err := workload.ByName("sum")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(s, record.Model(42), Options{}); err == nil {
		t.Fatal("Evaluate accepted an unknown model")
	}
}

// TestEvaluationsAreDeterministic: two identical evaluations must agree on
// every number.
func TestEvaluationsAreDeterministic(t *testing.T) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Evaluate(s, record.DebugRCSE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(s, record.DebugRCSE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Overhead != b.Overhead || a.LogBytes != b.LogBytes ||
		a.Utility != b.Utility || a.Replay.Attempts != b.Replay.Attempts {
		t.Fatalf("identical evaluations differ:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// Package core orchestrates the full record → replay → evaluate pipeline:
// the paper's experimental loop. Given a scenario and a determinism model
// it produces one Evaluation — the recorded artifact, the replayed
// execution, and the §3.2 metrics (debugging fidelity, debugging
// efficiency, debugging utility) together with the recording overhead and
// log volume.
//
// For the debug-determinism model the pipeline also performs the RCSE
// preparation the paper describes: a profiling run classifies sites into
// control and data plane (code-based selection), training runs infer
// invariants (data-based selection), and the race-detector trigger is
// armed (combined selection). All of that happens before the "production"
// run that gets recorded.
package core

import (
	"context"
	"fmt"

	"debugdet/internal/checkpoint"
	"debugdet/internal/flightrec"
	"debugdet/internal/invariant"
	"debugdet/internal/lint/sites"
	"debugdet/internal/metrics"
	"debugdet/internal/plane"
	"debugdet/internal/rcse"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/vm"
)

// RCSEOptions selects which RCSE heuristics are armed for a
// debug-determinism recording.
type RCSEOptions struct {
	// CodeSelection classifies sites from a profiling run and records
	// control-plane sites fully (§3.1.1). On by default (disable only
	// for ablations).
	DisableCodeSelection bool
	// RaceTrigger arms the sampling race detector (§3.1.3).
	RaceTrigger bool
	// RaceSampleRate is the detector's access sampling rate (default 4).
	RaceSampleRate uint64
	// InvariantTrigger trains invariants on healthy runs and arms the
	// monitor (§3.1.2).
	InvariantTrigger bool
	// TrainingRuns is the number of healthy executions to train
	// invariants on (default 3).
	TrainingRuns int
	// QuietPeriod dials triggers down after this many quiet events
	// (default 2000; 0 keeps them up forever).
	QuietPeriod uint64
	// Thresholds adds custom predicate triggers.
	Thresholds []*rcse.ThresholdSelector
}

// Options parameterizes one evaluation.
type Options struct {
	// Ctx cancels the evaluation at phase boundaries and between
	// candidate executions of the replay-inference pool (nil =
	// context.Background()). A canceled evaluation returns the context
	// error.
	Ctx context.Context
	// Seed identifies the production run to record.
	Seed int64
	// Params override scenario defaults.
	Params scenario.Params
	// ProfileSeed drives the RCSE profiling run (default Seed+101).
	ProfileSeed int64
	// ReplayBudget bounds inference attempts (default 200).
	ReplayBudget int
	// SearchSeed perturbs inference randomness (default 7).
	SearchSeed int64
	// ShrinkParams lets failure-determinism replay synthesize shorter
	// executions (ESD).
	ShrinkParams []scenario.Params
	// RCSE configures the debug-determinism heuristics.
	RCSE RCSEOptions
	// MaxSteps bounds every execution (0 = VM default).
	MaxSteps uint64
	// CheckpointInterval captures a VM state snapshot into the recording
	// every that many events, enabling checkpointed seek and segmented
	// parallel replay on the recording. Zero means off — no checkpoints
	// are captured, and seek falls back to replaying from the start.
	// Negative values are rejected with an error rather than silently
	// disabling checkpoints. Checkpoints need the complete event stream,
	// so the interval only applies to the perfect model; other models
	// ignore it. Capture work is charged to the recording overhead like
	// any other recording work.
	CheckpointInterval int64
	// Workers sets the replay-inference worker-pool size (0 =
	// GOMAXPROCS, 1 = sequential; negative rejected). The evaluation
	// result is identical for every worker count.
	Workers int
	// ForkReplay enables checkpoint-forked candidate execution in the
	// replay-inference search: candidates sharing a prefix with an
	// earlier candidate re-execute only their suffix from a VM snapshot,
	// and equivalent candidates are pruned. The replayed execution,
	// acceptance and attempt counts are bit-identical to the from-scratch
	// search; only the executed work (and with it DE's denominator)
	// shrinks. See infer.Options.Fork and the T-FORK table.
	ForkReplay bool
	// ForkInterval is the snapshot interval for forked replay execution
	// (0 = checkpoint default; negative rejected).
	ForkInterval int64
	// ForkPaths bounds the forked prefix forest (0 = 8; negative
	// rejected).
	ForkPaths int
	// FlightRecorder configures RecordStreaming's always-on bounded-memory
	// recording: the spill directory, the in-memory ring size and the
	// on-disk retention cap. Only RecordStreaming reads it; Record and
	// Evaluate build monolithic recordings and ignore it.
	FlightRecorder *flightrec.Options
	// Suspects are statically implicated lock-order inversions (detlint's
	// lockorder analysis via sites.Triage). They seed failure-determinism
	// replay search (PCT candidates first; see infer.Options.Suspects)
	// and arm the RCSE suspect selector for debug-determinism recordings.
	Suspects []sites.Suspect
}

// validate rejects option values that would otherwise be silently
// reinterpreted. The replay-facing knobs (Workers, the fork knobs)
// delegate to replay.Options.Validate, so the SDK surface rejects the
// same domains the engine does.
func (o Options) validate() error {
	if o.CheckpointInterval < 0 {
		return fmt.Errorf("core: Options.CheckpointInterval must not be negative (got %d; use 0 to disable checkpoints)", o.CheckpointInterval)
	}
	if err := o.replayOptions().Validate(); err != nil {
		return err
	}
	if o.FlightRecorder != nil {
		if err := o.FlightRecorder.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// replayOptions assembles the replay configuration the evaluation uses.
func (o Options) replayOptions() replay.Options {
	return replay.Options{
		Ctx:          o.Ctx,
		Budget:       o.ReplayBudget,
		SearchSeed:   o.SearchSeed,
		ShrinkParams: o.ShrinkParams,
		MaxSteps:     o.MaxSteps,
		Workers:      o.Workers,
		Suspects:     o.Suspects,
		Fork:         o.ForkReplay,
		ForkInterval: o.ForkInterval,
		ForkPaths:    o.ForkPaths,
	}
}

func (o Options) withDefaults() Options {
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.ProfileSeed == 0 {
		o.ProfileSeed = o.Seed + 101
	}
	if o.ReplayBudget == 0 {
		o.ReplayBudget = 200
	}
	if o.SearchSeed == 0 {
		o.SearchSeed = 7
	}
	if o.RCSE.RaceSampleRate == 0 {
		o.RCSE.RaceSampleRate = 4
	}
	if o.RCSE.TrainingRuns == 0 {
		o.RCSE.TrainingRuns = 3
	}
	if o.RCSE.QuietPeriod == 0 {
		o.RCSE.QuietPeriod = 2000
	}
	return o
}

// Evaluation is the complete result of one (scenario, model) cell.
type Evaluation struct {
	Scenario  string
	Model     record.Model
	Seed      int64
	Recording *record.Recording
	Orig      *scenario.RunView
	Replay    *replay.Result
	Fidelity  metrics.Fidelity
	Utility   metrics.Utility

	// Overhead and LogBytes restate the recording's production cost.
	Overhead float64
	LogBytes int64

	// RCSESetup exposes trigger statistics for RCSE runs (nil otherwise).
	RCSESetup *rcse.Setup
}

// Summary renders the evaluation as one report line.
func (e *Evaluation) Summary() string {
	return fmt.Sprintf("%-18s %-10s overhead=%5.2fx bytes=%8d DF=%.3f DE=%7.3f DU=%7.3f attempts=%d",
		e.Scenario, e.Model, e.Overhead, e.LogBytes,
		e.Utility.DF, e.Utility.DE, e.Utility.DU, e.Replay.Attempts)
}

// RecordOnly runs the scenario once under the model's recorder — the
// "production run" of the pipeline — and returns the recording with the
// original run. For DebugRCSE it first performs the RCSE preparation the
// paper describes (profiling, training, trigger arming) according to
// o.RCSE, and additionally returns the armed setup for trigger
// statistics (nil for the other models).
func RecordOnly(s *scenario.Scenario, model record.Model, o Options) (*record.Recording, *scenario.RunView, *rcse.Setup, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, nil, nil, err
	}
	if o.Seed == 0 {
		o.Seed = s.DefaultSeed
	}
	if err := o.Ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	var factory record.PolicyFactory
	var setup *rcse.Setup
	switch model {
	case record.DebugRCSE:
		cfg, err := PrepareRCSE(s, o)
		if err != nil {
			return nil, nil, nil, err
		}
		factory = func(m *vm.Machine) (record.Policy, []vm.Observer) {
			setup = cfg.Build(m)
			return setup.Policy, setup.Observers
		}
	default:
		policy := record.PolicyFor(model)
		if policy == nil {
			return nil, nil, nil, fmt.Errorf("core: no stock policy for %s", model)
		}
		factory = record.FactoryFor(policy)
	}

	var ckpt *checkpoint.Writer
	if o.CheckpointInterval > 0 && model == record.Perfect {
		inner := factory
		factory = func(m *vm.Machine) (record.Policy, []vm.Observer) {
			policy, obs := inner(m)
			ckpt = checkpoint.NewWriter(m, uint64(o.CheckpointInterval))
			return policy, append(obs, ckpt)
		}
	}

	rec, orig, err := record.RecordWithPolicy(s, model, factory, o.Seed, o.Params)
	if err != nil {
		return nil, nil, nil, err
	}
	if ckpt != nil {
		// The capture work already entered the machine's recording cycles
		// (and hence rec.Overhead); attach the artifacts and their volume.
		rec.Checkpoints = ckpt.Snapshots()
		rec.CheckpointBytes = ckpt.Bytes()
	}
	return rec, orig, setup, nil
}

// RecordStreaming runs the scenario once with the flight recorder
// attached: an always-on, bounded-memory production run whose segments
// rotate through a fixed-size ring and spill to o.FlightRecorder.SpillDir,
// instead of accumulating a monolithic in-memory Recording. The run is
// always a perfect-model recording — streaming needs the complete event
// stream, and the spill directory replays through the same seek, segmented
// and debug paths as a checkpointed recording.
//
// The rotation interval is o.FlightRecorder.Interval; when zero it falls
// back to o.CheckpointInterval, then to the checkpoint default.
func RecordStreaming(s *scenario.Scenario, o Options) (*flightrec.RecordResult, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Seed == 0 {
		o.Seed = s.DefaultSeed
	}
	if err := o.Ctx.Err(); err != nil {
		return nil, err
	}
	if o.FlightRecorder == nil || o.FlightRecorder.SpillDir == "" {
		return nil, fmt.Errorf("core: streaming recording needs Options.FlightRecorder with a SpillDir")
	}
	fo := *o.FlightRecorder
	if fo.Interval == 0 && o.CheckpointInterval > 0 {
		fo.Interval = uint64(o.CheckpointInterval)
	}
	return flightrec.Record(s, o.Seed, o.Params, fo)
}

// Evaluate runs the full pipeline for one scenario under one model.
func Evaluate(s *scenario.Scenario, model record.Model, o Options) (*Evaluation, error) {
	o = o.withDefaults()
	if o.Seed == 0 {
		o.Seed = s.DefaultSeed
	}

	rec, orig, setup, err := RecordOnly(s, model, o)
	if err != nil {
		return nil, err
	}
	if err := o.Ctx.Err(); err != nil {
		return nil, err
	}

	rep := replay.Replay(s, rec, o.replayOptions())
	if rep.Err != nil {
		return nil, rep.Err
	}
	if err := o.Ctx.Err(); err != nil {
		return nil, err
	}

	var repView *scenario.RunView
	if rep.Ok {
		repView = rep.View
	}
	fid := metrics.ComputeFidelity(s, orig, repView)
	// DE's numerator is the original's intrinsic duration; its
	// denominator is everything the tool executed to produce the replay.
	// Both are measured in events, not cycles: the virtual clock jumps
	// over idle waits, which replays legitimately skip, and counting
	// those jumps would inflate DE for no analysis work.
	de := metrics.Efficiency(orig.Result.Steps, rep.WorkSteps)
	if repView == nil {
		de = 0
	}

	return &Evaluation{
		Scenario:  s.Name,
		Model:     model,
		Seed:      o.Seed,
		Recording: rec,
		Orig:      orig,
		Replay:    rep,
		Fidelity:  fid,
		Utility:   metrics.ComputeUtility(fid, de),
		Overhead:  rec.Overhead,
		LogBytes:  rec.LogBytes,
		RCSESetup: setup,
	}, nil
}

// PrepareRCSE performs the before-production steps of root cause-driven
// selectivity: profiling for plane classification and training for
// invariants. The returned config builds the policy for the recording
// machine.
func PrepareRCSE(s *scenario.Scenario, o Options) (rcse.Config, error) {
	o = o.withDefaults()
	cfg := rcse.Config{
		ControlStreams: s.ControlStreams,
		QuietPeriod:    o.RCSE.QuietPeriod,
		Thresholds:     o.RCSE.Thresholds,
		Suspects:       o.Suspects,
	}
	if !o.RCSE.DisableCodeSelection {
		if err := o.Ctx.Err(); err != nil {
			return cfg, err
		}
		prof := s.Exec(scenario.ExecOptions{Seed: o.ProfileSeed, Params: o.Params})
		if prof.Trace == nil {
			return cfg, fmt.Errorf("core: profiling run produced no trace")
		}
		cfg.Classification = plane.ClassifyTrace(prof.Trace, plane.Options{})
	}
	if o.RCSE.RaceTrigger {
		cfg.RaceSampleRate = o.RCSE.RaceSampleRate
		cfg.RaceCheckCost = 2
	}
	if o.RCSE.InvariantTrigger {
		inf := invariant.NewInferencer()
		trainParams := s.DefaultParams.Clone(o.Params).Clone(s.TrainingParams)
		for i := 0; i < o.RCSE.TrainingRuns; i++ {
			if err := o.Ctx.Err(); err != nil {
				return cfg, err
			}
			v := s.Exec(scenario.ExecOptions{Seed: o.ProfileSeed + 1 + int64(i), Params: trainParams})
			if v.Trace != nil {
				inf.AddTrace(v.Trace)
			}
		}
		cfg.Invariants = inf.Infer()
		cfg.InvariantCost = 2
	}
	return cfg, nil
}

package hyperkv

import (
	"testing"

	"debugdet/internal/race"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func TestDefaultSeedManifestsRace(t *testing.T) {
	s := Scenario()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	failed, sig := s.CheckFailure(v)
	if !failed || sig != "hyperkv:dataloss" {
		t.Fatalf("default seed %d: failed=%v sig=%q — pick a new seed", s.DefaultSeed, failed, sig)
	}
	causes := s.PresentCauses(v)
	if len(causes) != 1 || causes[0] != "migration-race" {
		t.Fatalf("default seed causes = %v, want exactly [migration-race]", causes)
	}
	if RaceLostRows(v) == 0 {
		t.Fatal("no race-lost rows despite failure")
	}
	if v.Result.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v; the loss must be silent (no crash, no error)", v.Result.Outcome)
	}
}

func TestFixedVariantNeverLosesRows(t *testing.T) {
	f := FixedScenario()
	for seed := int64(0); seed < 25; seed++ {
		v := f.Exec(scenario.ExecOptions{Seed: seed})
		if v.Result.Outcome != vm.OutcomeOK {
			t.Fatalf("fixed seed %d: outcome %v (%v)", seed, v.Result.Outcome, v.Result.Terminal)
		}
		if failed, _ := f.CheckFailure(v); failed {
			t.Fatalf("fixed seed %d: lost rows despite the lock (%s)", seed, Stats(v))
		}
	}
}

func TestFixedVariantHasNoRaceOnStore(t *testing.T) {
	// The fix predicate (§3): holding the range lock across
	// check+commit/migrate removes the races on the ownership map and on
	// the row cells.
	f := FixedScenario()
	v := f.Exec(scenario.ExecOptions{Seed: 19})
	rs := race.Analyze(v.Trace)
	for _, r := range rs {
		name1 := v.Machine.CellName(r.Obj)
		if len(name1) >= 5 && (name1[:5] == "owned" || name1[:4] == "rows") {
			t.Fatalf("fixed build still races on %s: %v", name1, r)
		}
	}
}

func TestBuggyVariantHasRaceOnOwnership(t *testing.T) {
	s := Scenario()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	rs := race.Analyze(v.Trace)
	found := false
	for _, r := range rs {
		name := v.Machine.CellName(r.Obj)
		if len(name) >= 5 && name[:5] == "owned" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("happens-before analysis found no race on the ownership map in the failing run")
	}
}

func TestClusterRunIsDeterministic(t *testing.T) {
	s := Scenario()
	a := s.Exec(scenario.ExecOptions{Seed: 19})
	b := s.Exec(scenario.ExecOptions{Seed: 19})
	if !trace.EventsEqual(a.Trace, b.Trace, false) {
		t.Fatal("identical cluster runs produced different traces")
	}
}

func TestCrashInjectionProducesSlaveCrashCause(t *testing.T) {
	s := Scenario()
	// Force the crash input for rs0 while keeping everything else healthy
	// and race-free (a seed where the race does not manifest).
	prod := productionInputs(0, s.DefaultParams)
	v := s.Exec(scenario.ExecOptions{
		Seed: 0,
		Inputs: vm.InputSourceFunc(func(stream string, index int) trace.Value {
			if stream == StreamCrash+"rs0" {
				return trace.Int(crashDomain - 1)
			}
			return prod.Next(stream, index)
		}),
	})
	failed, sig := s.CheckFailure(v)
	if !failed || sig != "hyperkv:dataloss" {
		t.Fatalf("crash injection: failed=%v sig=%q (%s)", failed, sig, Stats(v))
	}
	causes := s.PresentCauses(v)
	if len(causes) != 1 || causes[0] != "slave-crash" {
		t.Fatalf("crash injection causes = %v, want [slave-crash]", causes)
	}
	if RaceLostRows(v) != 0 {
		t.Fatal("crash injection must not count as race loss")
	}
}

func TestOOMInjectionProducesClientOOMCause(t *testing.T) {
	s := Scenario()
	prod := productionInputs(0, s.DefaultParams)
	v := s.Exec(scenario.ExecOptions{
		Seed: 0,
		Inputs: vm.InputSourceFunc(func(stream string, index int) trace.Value {
			if stream == StreamMem {
				return trace.Int(0)
			}
			return prod.Next(stream, index)
		}),
	})
	failed, _ := s.CheckFailure(v)
	if !failed {
		t.Fatalf("OOM injection did not fail (%s)", Stats(v))
	}
	causes := s.PresentCauses(v)
	if len(causes) != 1 || causes[0] != "client-oom" {
		t.Fatalf("OOM injection causes = %v, want [client-oom]", causes)
	}
}

func TestVisibleRowsAccounting(t *testing.T) {
	s := Scenario()
	// A healthy run: everything acked is visible.
	v := s.Exec(scenario.ExecOptions{Seed: 0})
	if failed, _ := s.CheckFailure(v); failed {
		t.Skip("seed 0 fails now; accounting check needs a healthy run")
	}
	if VisibleRows(v) != AckedRows(v) {
		t.Fatalf("healthy run: visible=%d acked=%d", VisibleRows(v), AckedRows(v))
	}
	// The failing run: the gap equals the dump's shortfall.
	f := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	outs := f.Result.Outputs
	dumped := outs[OutDumpRows][0].AsInt()
	acked := outs[OutAcked][0].AsInt()
	if VisibleRows(f) != dumped {
		t.Fatalf("visible=%d but dump returned %d", VisibleRows(f), dumped)
	}
	if RaceLostRows(f) != acked-dumped {
		t.Fatalf("raceLost=%d, want %d", RaceLostRows(f), acked-dumped)
	}
}

func TestAllClientsAlwaysAcked(t *testing.T) {
	// The paper stresses the loss is silent: clients always succeed.
	s := Scenario()
	for seed := int64(0); seed < 10; seed++ {
		v := s.Exec(scenario.ExecOptions{Seed: seed})
		total := s.DefaultParams.Get("clients", 0) * s.DefaultParams.Get("rows", 0)
		if AckedRows(v) != total {
			t.Fatalf("seed %d: acked %d of %d — client saw an error", seed, AckedRows(v), total)
		}
	}
}

func TestScalesWithParameters(t *testing.T) {
	s := Scenario()
	small := s.Exec(scenario.ExecOptions{Seed: 1, Params: scenario.Params{"clients": 2, "rows": 4}})
	big := s.Exec(scenario.ExecOptions{Seed: 1, Params: scenario.Params{"clients": 4, "rows": 32}})
	if small.Result.Outcome != vm.OutcomeOK && small.Result.Outcome != vm.OutcomeFailed {
		t.Fatalf("small outcome %v", small.Result.Outcome)
	}
	if big.Result.Steps <= small.Result.Steps {
		t.Fatalf("workload does not scale: %d vs %d steps", big.Result.Steps, small.Result.Steps)
	}
	if AckedRows(big) != 128 {
		t.Fatalf("big config acked %d, want 128", AckedRows(big))
	}
}

func TestRangeMath(t *testing.T) {
	cfg := Config{Servers: 3, Clients: 3, RowsPerCli: 16, Ranges: 6}.Norm()
	n := cfg.TotalRows()
	seen := make(map[int]int)
	for k := 0; k < n; k++ {
		r := cfg.rangeOf(k)
		if r < 0 || r >= cfg.Ranges {
			t.Fatalf("key %d maps to range %d outside [0,%d)", k, r, cfg.Ranges)
		}
		seen[r]++
	}
	if len(seen) != cfg.Ranges {
		t.Fatalf("only %d of %d ranges populated", len(seen), cfg.Ranges)
	}
	// keysOfRange must partition the key space consistently with rangeOf.
	total := 0
	for r := 0; r < cfg.Ranges; r++ {
		keys := cfg.keysOfRange(r)
		total += len(keys)
		for _, k := range keys {
			if cfg.rangeOf(k) != r {
				t.Fatalf("keysOfRange(%d) contains key %d of range %d", r, k, cfg.rangeOf(k))
			}
		}
	}
	if total != n {
		t.Fatalf("keysOfRange covers %d keys, want %d", total, n)
	}
}

func TestInitialOwnership(t *testing.T) {
	cfg := Config{Servers: 3, Ranges: 6}.Norm()
	for r := 0; r < cfg.Ranges; r++ {
		o := cfg.initialOwner(r)
		if o < 0 || o >= cfg.Servers {
			t.Fatalf("range %d has invalid initial owner %d", r, o)
		}
	}
}

func TestMigrationsActuallyMoveRanges(t *testing.T) {
	s := Scenario()
	v := s.Exec(scenario.ExecOptions{Seed: 1})
	// After the run, at least one range must be owned by a non-initial
	// server (the master performed migrations).
	cfg := configFromParams(scenario.Params(v.Trace.Header.Params))
	moved := false
	for r := 0; r < cfg.Ranges; r++ {
		owner := int(v.Machine.CellByName(
			// routing reflects completed migrations
			routingName(r)).AsInt())
		if owner != cfg.initialOwner(r) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no range changed owner; migrations are inert")
	}
}

func routingName(r int) string { return fmtRouting(r) }

package hyperkv

import (
	"fmt"

	"debugdet/internal/scenario"
)

// paramsOf recovers the cluster configuration of a finished run from its
// trace header (Exec and the recorders both stamp it).
func paramsOf(v *scenario.RunView) scenario.Params {
	if v.Trace != nil && v.Trace.Header.Params != nil {
		return scenario.Params(v.Trace.Header.Params)
	}
	return nil
}

// VisibleRows computes, from the final machine state, how many distinct
// rows a complete, healthy dump would return: rows present on a server
// that currently owns their range. This is independent of whether the
// run's dump actually completed (crash, OOM), so it isolates the
// migration race: a row that was acked but is visible nowhere was
// committed to a server that no longer hosted its range and silently
// dropped — no other mechanism in the system unhosts a committed row.
func VisibleRows(v *scenario.RunView) int64 {
	cfg := configFromParams(paramsOf(v))
	m := v.Machine
	var visible int64
	for key := 0; key < cfg.TotalRows(); key++ {
		r := cfg.rangeOf(key)
		for s := 0; s < cfg.Servers; s++ {
			ownName := fmt.Sprintf("owned[%s][%d]", serverName(s), r)
			if m.CellByName(ownName).AsInt() == 0 {
				continue
			}
			rowName := fmt.Sprintf("rows[%s][%d]", serverName(s), key)
			if !m.CellByName(rowName).IsNil() {
				visible++
				break
			}
		}
	}
	return visible
}

// AckedRows reads the final acked counter.
func AckedRows(v *scenario.RunView) int64 {
	return v.Machine.CellByName(CellAcked).AsInt()
}

// RaceLostRows returns how many acked rows are visible on no owning
// server: the rows the migration race destroyed.
func RaceLostRows(v *scenario.RunView) int64 {
	lost := AckedRows(v) - VisibleRows(v)
	if lost < 0 {
		return 0
	}
	return lost
}

// fmtRouting returns the routing cell name for a range (shared with
// tests).
func fmtRouting(r int) string { return fmt.Sprintf("routing[%d]", r) }

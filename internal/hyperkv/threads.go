package hyperkv

import (
	"debugdet/internal/simnet"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// rowBlob derives a fixed-size row payload from an input integer. Replays
// that re-draw data inputs produce different contents of identical shape.
func rowBlob(seedVal int64) []byte {
	b := make([]byte, RowSize)
	x := uint64(seedVal)*2654435761 + 12345
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// clientThread loads the client's shard of rows, routing each commit to
// the range's current owner and retrying on not-owner rejections.
func (cl *Cluster) clientThread(t *vm.Thread, c int) {
	cfg := cl.Cfg
	st := &cl.sites
	me := clientName(c)
	lo, hi := c*cfg.RowsPerCli, (c+1)*cfg.RowsPerCli

	for key := lo; key < hi; key++ {
		r := cfg.rangeOf(key)
		// The payload is data-plane input; everything after ClearTaint
		// carries only the payload's provenance until routing is read.
		t.ClearTaint()
		seedVal := t.Input(st.cliDataIn, t.Machine().Stream(StreamRowData)).AsInt()
		blob := rowBlob(seedVal)

		for {
			owner := int(t.Load(st.cliRoute, cl.routing[r]).AsInt())
			cl.Net.Send(t, st.cliSend, me, dataNode(owner), simnet.Message{
				Kind: MsgCommit,
				From: me,
				Nums: []int64{int64(key)},
				Blob: blob,
			})
			reply := cl.Net.Recv(t, st.cliReply, me)
			if reply.Kind == MsgAck {
				t.Add(st.cliAckCount, cl.acked, 1)
				break
			}
			// Not the owner anymore: the routing table will catch up
			// with the migration; pause briefly and retry.
			t.Sleep(st.cliRoute, 200)
		}
	}
	t.Send(cl.sites.done, cl.doneCh, trace.Int(int64(c)))
}

// dataThread is a range server's commit-and-dump worker. It shares the
// store with the admin thread; when the cluster is not Fixed, the
// ownership check and the row store race against migrations.
func (cl *Cluster) dataThread(t *vm.Thread, s int) {
	cfg := cl.Cfg
	st := &cl.sites
	me := dataNode(s)
	for {
		t.ClearTaint()
		msg := cl.Net.Recv(t, st.rsRecv, me)
		switch msg.Kind {
		case MsgCommit:
			cl.handleCommit(t, s, msg)
		case MsgDump:
			if t.Load(st.rsCrashMark, cl.crashFlag[s]).AsInt() != 0 {
				continue // already dead: never replies
			}
			// The fault switch models a server that crashes after the
			// upload but before serving dumps — one of the paper's
			// three possible root causes for the data-loss signature.
			crash := t.Input(st.rsCrashIn, t.Machine().Stream(StreamCrash+serverName(s))).AsInt()
			if crash >= cfg.CrashDomain && cfg.CrashDomain > 0 {
				t.Store(st.rsCrashMark, cl.crashFlag[s], trace.Int(1))
				t.Add(st.rsCrashMark, cl.crashed, 1)
				continue // crashed: no reply, dumper times out
			}
			count := cl.scanOwnedRows(t, s)
			cl.Net.Send(t, st.rsDumpReply, me, msg.From, simnet.Message{
				Kind: MsgDumpResp,
				From: me,
				Nums: []int64{count},
			})
		}
	}
}

// handleCommit performs the ownership check and the row store — the
// paper's racy window lives between them when Fixed is false.
func (cl *Cluster) handleCommit(t *vm.Thread, s int, msg simnet.Message) {
	cfg := cl.Cfg
	st := &cl.sites
	key := int(msg.Num(0))
	r := cfg.rangeOf(key)

	if cfg.Fixed {
		t.Lock(st.rsLock, cl.lock[s])
	}
	owned := t.Load(st.rsCheck, cl.owned[s][r]).AsInt()
	if owned == 0 {
		if cfg.Fixed {
			t.Unlock(st.rsUnlock, cl.lock[s])
		}
		cl.Net.Send(t, st.rsReply, dataNode(s), msg.From, simnet.Message{
			Kind: MsgNack, From: dataNode(s), Nums: []int64{int64(key)},
		})
		return
	}
	if !cfg.Fixed {
		// The unprotected window: a migration can mark the range
		// not-owned and snapshot its rows right here.
		t.Yield(st.rsWindow)
	}
	t.Store(st.rsStore, cl.rows[s][key], trace.Bytes_(msg.Blob))
	// Oracle accounting (not part of the store's logic): if the range was
	// migrated away and its snapshot already completed, this row just
	// vanished — committed to a server that will ignore it.
	stillOwned := t.Load(st.rsOracle, cl.owned[s][r]).AsInt()
	snapDone := t.Load(st.rsOracle, cl.snapdone[s][r]).AsInt()
	if stillOwned == 0 && snapDone == 1 {
		t.Add(st.rsOracle, cl.lostByRace, 1)
	}
	if cfg.Fixed {
		t.Unlock(st.rsUnlock, cl.lock[s])
	}
	cl.Net.Send(t, st.rsReply, dataNode(s), msg.From, simnet.Message{
		Kind: MsgAck, From: dataNode(s), Nums: []int64{int64(key)},
	})
}

// scanOwnedRows counts the rows the server would return in a dump: only
// rows in ranges it currently owns. Mistakenly committed rows are merely
// ignored — the silent-loss mechanism.
func (cl *Cluster) scanOwnedRows(t *vm.Thread, s int) int64 {
	cfg := cl.Cfg
	st := &cl.sites
	var count int64
	for r := 0; r < cfg.Ranges; r++ {
		if t.Load(st.rsDumpScan, cl.owned[s][r]).AsInt() == 0 {
			continue
		}
		for _, key := range cfg.keysOfRange(r) {
			if !t.Load(st.rsDumpScan, cl.rows[s][key]).IsNil() {
				count++
			}
		}
	}
	return count
}

// keysOfRange enumerates the keys belonging to a range.
func (c Config) keysOfRange(r int) []int {
	var keys []int
	for k := 0; k < c.TotalRows(); k++ {
		if c.rangeOf(k) == r {
			keys = append(keys, k)
		}
	}
	return keys
}

// adminThread handles migrations on a range server: outgoing snapshots and
// incoming transfers.
func (cl *Cluster) adminThread(t *vm.Thread, s int) {
	cfg := cl.Cfg
	st := &cl.sites
	me := adminNode(s)
	for {
		t.ClearTaint()
		msg := cl.Net.Recv(t, st.admRecv, me)
		switch msg.Kind {
		case MsgMigrate:
			r := int(msg.Num(0))
			dst := int(msg.Num(1))
			if cfg.Fixed {
				t.Lock(st.rsLock, cl.lock[s])
			}
			t.Store(st.admMark, cl.owned[s][r], trace.Int(0))
			var keys []int64
			var blob []byte
			for _, key := range cfg.keysOfRange(r) {
				v := t.Load(st.admSnap, cl.rows[s][key])
				if v.IsNil() {
					continue
				}
				keys = append(keys, int64(key))
				blob = append(blob, v.Bytes...)
			}
			t.Store(st.admSnapDone, cl.snapdone[s][r], trace.Int(1))
			if cfg.Fixed {
				t.Unlock(st.rsUnlock, cl.lock[s])
			}
			nums := append([]int64{int64(r)}, keys...)
			cl.Net.Send(t, st.admXfer, me, adminNode(dst), simnet.Message{
				Kind: MsgTransfer, From: me, Nums: nums, Blob: blob,
			})
		case MsgTransfer:
			r := int(msg.Num(0))
			if cfg.Fixed {
				t.Lock(st.rsLock, cl.lock[s])
			}
			for i, key := range msg.Nums[1:] {
				row := msg.Blob[i*RowSize : (i+1)*RowSize]
				t.Store(st.admInstall, cl.rows[s][key], trace.Bytes_(row))
			}
			t.Store(st.admOwn, cl.owned[s][r], trace.Int(1))
			t.Store(st.admOwn, cl.snapdone[s][r], trace.Int(0))
			if cfg.Fixed {
				t.Unlock(st.rsUnlock, cl.lock[s])
			}
			cl.Net.Send(t, st.admConfirm, me, "master", simnet.Message{
				Kind: MsgMigrated, From: me, Nums: []int64{int64(r), int64(s)},
			})
		}
	}
}

// masterThread paces a few migrations through the cluster while the load
// is in flight, updating the client routing table as each completes.
func (cl *Cluster) masterThread(t *vm.Thread) {
	cfg := cl.Cfg
	st := &cl.sites
	plan := t.Machine().Stream(StreamPlan)
	for g := 0; g < cfg.Migrations; g++ {
		// Pace migrations into the middle of the load phase.
		t.Sleep(st.mstSleep, 1500)
		pick := t.Input(st.mstPlan, plan).AsInt()
		r := int(pick) % cfg.Ranges
		src := int(t.Load(st.mstRoute, cl.routing[r]).AsInt())
		dst := (src + 1 + int(pick>>8)%(cfg.Servers-1)) % cfg.Servers
		if dst == src {
			dst = (src + 1) % cfg.Servers
		}
		cl.Net.Send(t, st.mstSend, "master", adminNode(src), simnet.Message{
			Kind: MsgMigrate, From: "master", Nums: []int64{int64(r), int64(dst)},
		})
		// Wait for completion, then repoint clients.
		for {
			conf := cl.Net.Recv(t, st.mstRecv, "master")
			if conf.Kind == MsgMigrated && int(conf.Num(0)) == r {
				t.Store(st.mstRoute, cl.routing[r], trace.Int(conf.Num(1)))
				break
			}
		}
	}
	t.Send(cl.sites.done, cl.doneCh, trace.Int(-1))
}

// dump runs the paper's verification phase: query every server for its
// owned rows and compare against the acked count. The dump client itself
// has a possible failure mode — running out of memory partway — which is
// the third root-cause candidate.
func (cl *Cluster) dump(t *vm.Thread) {
	cfg := cl.Cfg
	st := &cl.sites
	mem := t.Input(st.dmpMem, t.Machine().Stream(StreamMem)).AsInt()
	var total int64
	for s := 0; s < cfg.Servers; s++ {
		cl.Net.Send(t, st.dmpSend, "dumper", dataNode(s), simnet.Message{
			Kind: MsgDump, From: "dumper",
		})
		resp, ok := cl.Net.RecvTimeout(t, st.dmpRecv, "dumper", 60000)
		if ok && resp.Kind == MsgDumpResp {
			total += resp.Num(0)
		}
		if mem == 0 && s == 0 {
			// Out of memory after the first server's rows: the dump
			// aborts and reports what it has.
			t.Store(st.dmpOracle, cl.oomCell, trace.Int(1))
			break
		}
	}
	t.Output(st.dmpOut, cl.outRows, trace.Int(total))
	t.Output(st.dmpOut, cl.outAcked, t.Load(st.dmpOut, cl.acked))
}

package hyperkv

import (
	"fmt"

	"debugdet/internal/plane"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// crashDomain is the size of the crash input's search domain; an input
// equal to crashDomain-1 crashes the server, so inference synthesizes a
// crash with probability 1/crashDomain per server per dump.
const crashDomain = 4

// configFromParams maps scenario parameters onto a cluster config.
func configFromParams(p scenario.Params) Config {
	return Config{
		Servers:     int(p.Get("servers", 3)),
		Clients:     int(p.Get("clients", 3)),
		RowsPerCli:  int(p.Get("rows", 16)),
		Ranges:      int(p.Get("ranges", 6)),
		Migrations:  int(p.Get("migrations", 2)),
		Fixed:       p.Get("fixed", 0) != 0,
		CrashDomain: crashDomain - 1,
	}.Norm()
}

// Scenario returns the §4 case-study scenario: the Hypertable data-loss
// bug. DefaultSeed is a scheduler seed under which the migration race
// manifests (verified by the scenario tests).
func Scenario() *scenario.Scenario {
	s := &scenario.Scenario{
		Name: "hyperkv-dataloss",
		Description: "Hypertable issue 63: concurrent loads lose rows when a range " +
			"migrates while a recently received row in the migrated range is being " +
			"committed. The load appears to succeed; subsequent dumps silently " +
			"return fewer rows.",
		DefaultParams: scenario.Params{
			"servers": 3, "clients": 3, "rows": 16,
			"ranges": 6, "migrations": 2, "fixed": 0,
		},
		DefaultSeed: 19, // verified by TestDefaultSeedManifestsRace
		Build: func(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
			cl := Build(m, configFromParams(p))
			return cl.Main()
		},
		Inputs:       productionInputs,
		InputDomains: inputDomains(),
		Stats:        Stats,
		Failure: scenario.FailureSpec{
			Name:  "dataloss",
			Check: checkDataLoss,
		},
		RootCauses: []scenario.RootCause{
			{
				ID: "migration-race",
				Description: "race between row commit and range migration: the row is " +
					"committed to a server that no longer hosts its range and is " +
					"silently ignored by dumps",
				Present: func(v *scenario.RunView) bool {
					return RaceLostRows(v) > 0
				},
			},
			{
				ID: "slave-crash",
				Description: "a range server crashes after the upload and before the " +
					"dump, so its rows are missing from the dump (expected behaviour)",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellCrashed).AsInt() > 0
				},
			},
			{
				ID: "client-oom",
				Description: "the dump client runs out of memory before finishing, " +
					"returning a truncated row set that looks like corruption",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellOOM).AsInt() > 0
				},
			},
		},
		// Ground truth follows the cited study's definition [3]: code
		// regions that process table data at high rate (the per-row
		// commit path) are data plane, including their ownership check;
		// administrative code that runs rarely (migration, the master,
		// the dump protocol) is control plane even where it copies row
		// data, because it executes at low rate and is metadata-driven.
		PlaneTruth: map[string]plane.Plane{
			"client.datain":       plane.Data,
			"client.commit.send":  plane.Data,
			"rs.commit.recv":      plane.Data,
			"rs.commit.check":     plane.Data,
			"rs.commit.store":     plane.Data,
			"rs.migrate.mark":     plane.Control,
			"rs.migrate.snapshot": plane.Control,
			"rs.migrate.snapdone": plane.Control,
			"rs.migrate.transfer": plane.Control,
			"rs.transfer.install": plane.Control,
			"rs.transfer.own":     plane.Control,
			"client.route":        plane.Control,
			"master.plan":         plane.Control,
			"master.migrate.send": plane.Control,
			"master.recv":         plane.Control,
			"master.route.update": plane.Control,
			"dump.memcheck":       plane.Control,
			"dump.send":           plane.Control,
			"dump.output":         plane.Control,
		},
		ControlStreams: controlStreams(3),
	}
	return s
}

// controlStreams lists the streams RCSE must record for a cluster of the
// given server count: the master's plan, the environment fault switches
// and the dump client's memory headroom. Row payloads are data plane.
func controlStreams(servers int) []string {
	out := []string{StreamPlan, StreamMem}
	for s := 0; s < servers; s++ {
		out = append(out, StreamCrash+serverName(s))
	}
	// Network latency/jitter/drop streams are environment control inputs
	// too; the default link config uses fixed latency so none are
	// consumed, but declare the intent for configurations that do.
	return out
}

// productionInputs models the real world during the recorded run: healthy
// servers (no crashes), a well-provisioned dump client, payloads and
// migration picks derived from the seed.
func productionInputs(seed int64, p scenario.Params) vm.InputSource {
	return vm.InputSourceFunc(func(stream string, index int) trace.Value {
		h := vm.HashValue(seed, stream, index)
		switch {
		case stream == StreamRowData:
			return trace.Int(h % 1024)
		case stream == StreamPlan:
			return trace.Int(h)
		case stream == StreamMem:
			return trace.Int(1 + h%7) // never 0: no OOM in production
		case len(stream) > len(StreamCrash) && stream[:len(StreamCrash)] == StreamCrash:
			return trace.Int(0) // healthy servers in production
		}
		return trace.Int(h % 256)
	})
}

// inputDomains declares the search space inference draws from when a
// stream's values were not recorded. Crash and OOM become reachable here:
// that is precisely how under-constrained inference lands on the wrong
// root cause.
func inputDomains() []scenario.InputDomain {
	domains := []scenario.InputDomain{
		{Stream: StreamRowData, Min: 0, Max: 1023},
		{Stream: StreamPlan, Min: 0, Max: 1 << 30},
		{Stream: StreamMem, Min: 0, Max: 7},
	}
	for s := 0; s < 8; s++ { // cover any plausible server count
		domains = append(domains, scenario.InputDomain{
			Stream: StreamCrash + serverName(s), Min: 0, Max: crashDomain - 1,
		})
	}
	return domains
}

// checkDataLoss is the failure specification: the dump returned fewer rows
// than the load acked, with no error reported anywhere.
func checkDataLoss(v *scenario.RunView) (bool, string) {
	outs := v.Result.Outputs
	dumped, okD := lastInt(outs[OutDumpRows])
	acked, okA := lastInt(outs[OutAcked])
	if !okD || !okA {
		return false, ""
	}
	if acked > 0 && dumped < acked {
		return true, "hyperkv:dataloss"
	}
	return false, ""
}

func lastInt(vs []trace.Value) (int64, bool) {
	if len(vs) == 0 {
		return 0, false
	}
	return vs[len(vs)-1].AsInt(), true
}

// FixedScenario returns the same system with the lock in place — the
// program after the paper's fix predicate is enforced. Used by tests to
// show the failure (and the race root cause) disappear.
func FixedScenario() *scenario.Scenario {
	s := Scenario()
	s.Name = "hyperkv-fixed"
	s.DefaultParams = s.DefaultParams.Clone(scenario.Params{"fixed": 1})
	return s
}

// Stats summarizes a finished run for CLI output.
func Stats(v *scenario.RunView) string {
	outs := v.Result.Outputs
	dumped, _ := lastInt(outs[OutDumpRows])
	acked, _ := lastInt(outs[OutAcked])
	return fmt.Sprintf("acked=%d dumped=%d raceLost=%d crashed=%d oom=%d outcome=%s",
		acked, dumped,
		RaceLostRows(v),
		v.Machine.CellByName(CellCrashed).AsInt(),
		v.Machine.CellByName(CellOOM).AsInt(),
		v.Result.Outcome)
}

// Package hyperkv implements a Hypertable-like distributed key-value store
// on the deterministic VM and virtual network: the substrate for the
// paper's §4 case study (Hypertable issue 63).
//
// The system has a master, K range servers and M loader clients. The key
// space is split into ranges; each range is owned by one server, and the
// master migrates ranges between servers while clients are loading rows.
// Each range server runs two threads sharing its in-memory store: a data
// thread that commits rows and serves dumps, and an admin thread that
// performs migrations.
//
// The injected defect is the paper's: the data thread checks range
// ownership and then commits the row as two separate steps with no lock
// (when the "fixed" parameter is 0). If a migration marks the range
// not-owned and snapshots its rows inside that window, the row is
// committed to a server that is no longer responsible for it. The load
// appears to succeed — the client receives an ack, no error is logged —
// but subsequent dumps ignore rows outside the server's owned ranges, so
// the table silently loses data.
//
// The same failure signature ("dump returns fewer rows than were acked")
// has two more possible root causes, as in the paper: a range server that
// crashes after the upload but before the dump, and a dump client that
// runs out of memory partway through. Both are modelled as environment
// inputs, so inference-based replay can (wrongly) synthesize them.
package hyperkv

import (
	"fmt"

	"debugdet/internal/simnet"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Message kinds on the wire.
const (
	MsgCommit   = "commit"   // client → rs.data: Nums[key], Blob[row bytes]
	MsgAck      = "ack"      // rs.data → client: Nums[key]
	MsgNack     = "nack"     // rs.data → client: Nums[key] (not owner)
	MsgDump     = "dump"     // dumper → rs.data
	MsgDumpResp = "dumpresp" // rs.data → dumper: Nums[row count]
	MsgMigrate  = "migrate"  // master → rs.admin: Nums[range, dstServer]
	MsgTransfer = "transfer" // rs.admin → rs.admin: Nums[range, keys...], Blob[rows]
	MsgMigrated = "migrated" // rs.admin → master: Nums[range, dstServer]
	MsgDone     = "done"     // internal completion token
)

// Input stream names. Fault and memory streams are the environment
// non-determinism behind the two alternative root causes.
const (
	StreamRowData = "client.rowdata" // per-row payload content (data plane)
	StreamPlan    = "master.plan"    // which ranges migrate where (control)
	StreamMem     = "client.mem"     // dump client memory headroom (env)
	// StreamCrash is the per-server fault switch; the full stream name is
	// StreamCrash + server name, e.g. "fault.crash.rs1".
	StreamCrash = "fault.crash."
)

// Oracle cells: ground-truth accounting the evaluation reads after a run.
// They are part of the program (their updates are ordinary VM operations)
// but no recorder is ever required to persist them.
const (
	CellLostByRace = "oracle.lostByRace"
	CellCrashed    = "oracle.crashed"
	CellOOM        = "oracle.oom"
	CellAcked      = "oracle.acked"
)

// Output streams: the observable behaviour a bug report quotes.
const (
	OutDumpRows = "dump.rows"
	OutAcked    = "load.acked"
)

// RowSize is the fixed row payload size in bytes.
const RowSize = 64

// Config sizes one cluster instance.
type Config struct {
	Servers     int   // range servers (K)
	Clients     int   // loader clients (M)
	RowsPerCli  int   // rows each client loads
	Ranges      int   // number of key ranges
	Migrations  int   // migrations the master performs
	Fixed       bool  // true = proper locking (bug absent)
	CrashDomain int64 // crash input values < this count as "no crash"
}

// Norm applies defaults.
func (c Config) Norm() Config {
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.RowsPerCli == 0 {
		c.RowsPerCli = 16
	}
	if c.Ranges == 0 {
		c.Ranges = c.Servers * 2
	}
	if c.Migrations == 0 {
		c.Migrations = 2
	}
	return c
}

// TotalRows returns the number of rows the workload loads.
func (c Config) TotalRows() int { return c.Clients * c.RowsPerCli }

// Cluster is one built instance: all VM object handles plus topology.
type Cluster struct {
	Cfg Config
	Net *simnet.Network

	// routing[r] is the client-visible owner (server index) of range r,
	// maintained by the master.
	routing []trace.ObjID
	// owned[s][r] is server s's own view of whether it owns range r.
	owned [][]trace.ObjID
	// snapdone[s][r] marks that a migration snapshot of range r on
	// server s completed (oracle for precise loss attribution).
	snapdone [][]trace.ObjID
	// rows[s][k] is server s's stored row k (Nil = absent).
	rows [][]trace.ObjID
	// lock[s] serializes commit/migrate on server s (used when Fixed).
	lock []trace.ObjID

	lostByRace trace.ObjID
	crashed    trace.ObjID
	oomCell    trace.ObjID
	acked      trace.ObjID
	crashFlag  []trace.ObjID // per-server "has crashed" flag

	doneCh trace.ObjID

	outRows  trace.ObjID
	outAcked trace.ObjID

	sites sites
	m     *vm.Machine
}

// sites holds every instrumentation site, named for the plane classifier.
type sites struct {
	cliRoute, cliDataIn, cliSend, cliReply, cliAckCount         trace.SiteID
	rsRecv, rsCheck, rsWindow, rsStore, rsOracle, rsReply       trace.SiteID
	rsLock, rsUnlock                                            trace.SiteID
	rsDumpRecv, rsDumpScan, rsDumpReply, rsCrashIn, rsCrashMark trace.SiteID
	admRecv, admMark, admSnap, admSnapDone, admXfer, admInstall trace.SiteID
	admOwn, admConfirm                                          trace.SiteID
	mstPlan, mstSend, mstRecv, mstRoute, mstSleep               trace.SiteID
	dmpMem, dmpSend, dmpRecv, dmpOut, dmpOracle                 trace.SiteID
	spawn, done                                                 trace.SiteID
}

func registerSites(m *vm.Machine) sites {
	return sites{
		cliRoute:    m.Site("client.route"),
		cliDataIn:   m.Site("client.datain"),
		cliSend:     m.Site("client.commit.send"),
		cliReply:    m.Site("client.reply"),
		cliAckCount: m.Site("client.ackcount"),
		rsRecv:      m.Site("rs.commit.recv"),
		rsCheck:     m.Site("rs.commit.check"),
		rsWindow:    m.Site("rs.commit.window"),
		rsStore:     m.Site("rs.commit.store"),
		rsOracle:    m.Site("rs.commit.oracle"),
		rsReply:     m.Site("rs.commit.reply"),
		rsLock:      m.Site("rs.lock"),
		rsUnlock:    m.Site("rs.unlock"),
		rsDumpRecv:  m.Site("rs.dump.recv"),
		rsDumpScan:  m.Site("rs.dump.scan"),
		rsDumpReply: m.Site("rs.dump.reply"),
		rsCrashIn:   m.Site("rs.dump.crashcheck"),
		rsCrashMark: m.Site("rs.dump.crashmark"),
		admRecv:     m.Site("rs.admin.recv"),
		admMark:     m.Site("rs.migrate.mark"),
		admSnap:     m.Site("rs.migrate.snapshot"),
		admSnapDone: m.Site("rs.migrate.snapdone"),
		admXfer:     m.Site("rs.migrate.transfer"),
		admInstall:  m.Site("rs.transfer.install"),
		admOwn:      m.Site("rs.transfer.own"),
		admConfirm:  m.Site("rs.transfer.confirm"),
		mstPlan:     m.Site("master.plan"),
		mstSend:     m.Site("master.migrate.send"),
		mstRecv:     m.Site("master.recv"),
		mstRoute:    m.Site("master.route.update"),
		mstSleep:    m.Site("master.pace"),
		dmpMem:      m.Site("dump.memcheck"),
		dmpSend:     m.Site("dump.send"),
		dmpRecv:     m.Site("dump.recv"),
		dmpOut:      m.Site("dump.output"),
		dmpOracle:   m.Site("dump.oracle"),
		spawn:       m.Site("main.spawn"),
		done:        m.Site("main.done"),
	}
}

// serverName returns the base node name of server s.
func serverName(s int) string { return fmt.Sprintf("rs%d", s) }

// dataNode and adminNode are the two inboxes of one range server.
func dataNode(s int) string  { return serverName(s) + ".data" }
func adminNode(s int) string { return serverName(s) + ".admin" }

func clientName(c int) string { return fmt.Sprintf("c%d", c) }

// rangeOf maps a key to its range.
func (c Config) rangeOf(key int) int {
	n := c.TotalRows()
	if n == 0 {
		return 0
	}
	r := key * c.Ranges / n
	if r >= c.Ranges {
		r = c.Ranges - 1
	}
	return r
}

// initialOwner is the range's owner before any migration.
func (c Config) initialOwner(r int) int { return r % c.Servers }

// Build constructs the cluster's objects and topology on a machine. Call
// before vm.Run; registration order is deterministic.
func Build(m *vm.Machine, cfg Config) *Cluster {
	cfg = cfg.Norm()
	cl := &Cluster{Cfg: cfg, m: m, sites: registerSites(m)}

	cl.Net = simnet.New(m, simnet.Options{
		DefaultLink:   simnet.LinkConfig{LatencyBase: 20},
		InboxCapacity: 128,
	})
	cl.Net.AddNode("master")
	cl.Net.AddNode("dumper")
	for s := 0; s < cfg.Servers; s++ {
		cl.Net.AddNode(dataNode(s))
		cl.Net.AddNode(adminNode(s))
	}
	for c := 0; c < cfg.Clients; c++ {
		cl.Net.AddNode(clientName(c))
	}
	cl.Net.Build()

	n := cfg.TotalRows()
	cl.routing = make([]trace.ObjID, cfg.Ranges)
	for r := 0; r < cfg.Ranges; r++ {
		cl.routing[r] = m.NewCell(fmt.Sprintf("routing[%d]", r), trace.Int(int64(cfg.initialOwner(r))))
	}
	cl.owned = make([][]trace.ObjID, cfg.Servers)
	cl.snapdone = make([][]trace.ObjID, cfg.Servers)
	cl.rows = make([][]trace.ObjID, cfg.Servers)
	cl.lock = make([]trace.ObjID, cfg.Servers)
	cl.crashFlag = make([]trace.ObjID, cfg.Servers)
	for s := 0; s < cfg.Servers; s++ {
		cl.owned[s] = make([]trace.ObjID, cfg.Ranges)
		cl.snapdone[s] = make([]trace.ObjID, cfg.Ranges)
		for r := 0; r < cfg.Ranges; r++ {
			init := int64(0)
			if cfg.initialOwner(r) == s {
				init = 1
			}
			cl.owned[s][r] = m.NewCell(fmt.Sprintf("owned[%s][%d]", serverName(s), r), trace.Int(init))
			cl.snapdone[s][r] = m.NewCell(fmt.Sprintf("snapdone[%s][%d]", serverName(s), r), trace.Int(0))
		}
		cl.rows[s] = make([]trace.ObjID, n)
		for k := 0; k < n; k++ {
			cl.rows[s][k] = m.NewCell(fmt.Sprintf("rows[%s][%d]", serverName(s), k), trace.Nil)
		}
		cl.lock[s] = m.NewMutex("rangelock:" + serverName(s))
		cl.crashFlag[s] = m.NewCell("crashflag:"+serverName(s), trace.Int(0))
	}

	cl.lostByRace = m.NewCell(CellLostByRace, trace.Int(0))
	cl.crashed = m.NewCell(CellCrashed, trace.Int(0))
	cl.oomCell = m.NewCell(CellOOM, trace.Int(0))
	cl.acked = m.NewCell(CellAcked, trace.Int(0))

	cl.doneCh = m.NewChan("phase.done", cfg.Clients+1)

	m.DeclareStream(StreamRowData, trace.TaintData)
	m.DeclareStream(StreamPlan, trace.TaintControl)
	m.DeclareStream(StreamMem, trace.TaintEnv)
	for s := 0; s < cfg.Servers; s++ {
		m.DeclareStream(StreamCrash+serverName(s), trace.TaintEnv)
	}
	cl.outRows = m.Stream(OutDumpRows)
	cl.outAcked = m.Stream(OutAcked)
	return cl
}

// Main returns the main-thread body: it starts the network and all system
// threads, waits for the load phase, performs the dump and emits the
// outputs.
func (cl *Cluster) Main() func(*vm.Thread) {
	return func(t *vm.Thread) {
		cl.Net.Start(t)
		for s := 0; s < cl.Cfg.Servers; s++ {
			s := s
			t.SpawnDaemon(cl.sites.spawn, dataNode(s), func(t *vm.Thread) { cl.dataThread(t, s) })
			t.SpawnDaemon(cl.sites.spawn, adminNode(s), func(t *vm.Thread) { cl.adminThread(t, s) })
		}
		t.Spawn(cl.sites.spawn, "master", cl.masterThread)
		for c := 0; c < cl.Cfg.Clients; c++ {
			c := c
			t.Spawn(cl.sites.spawn, clientName(c), func(t *vm.Thread) { cl.clientThread(t, c) })
		}
		// Wait for every client and the master to finish.
		for i := 0; i < cl.Cfg.Clients+1; i++ {
			t.Recv(cl.sites.done, cl.doneCh)
		}
		cl.dump(t)
	}
}

package infer

import (
	"testing"

	"debugdet/internal/lint/sites"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

func TestSearchFindsFailureSignature(t *testing.T) {
	s := workload.Overflow()
	out := Search(s, func(v *scenario.RunView) bool {
		failed, sig := s.CheckFailure(v)
		return failed && sig == "overflow:segfault"
	}, Options{Budget: 100})
	if !out.Ok {
		t.Fatalf("search failed after %d attempts: %s", out.Attempts, out.Note)
	}
	if out.View == nil || out.WorkSteps == 0 || out.WorkCycles == 0 {
		t.Fatal("accepted outcome missing view or work accounting")
	}
}

func TestSearchBudgetExhaustion(t *testing.T) {
	s := workload.Sum()
	out := Search(s, func(*scenario.RunView) bool { return false }, Options{Budget: 17})
	if out.Ok || out.View != nil {
		t.Fatal("unsatisfiable search claimed success")
	}
	if out.Attempts != 17 {
		t.Fatalf("attempts = %d, want 17", out.Attempts)
	}
	if out.Note != "budget exhausted" {
		t.Fatalf("note = %q", out.Note)
	}
}

func TestSearchTriesShrinkFirst(t *testing.T) {
	s := workload.Overflow()
	sawShrink := false
	out := Search(s, func(v *scenario.RunView) bool {
		if v.Trace.Header.Params["requests"] == 1 {
			sawShrink = true
		}
		failed, _ := s.CheckFailure(v)
		return failed
	}, Options{
		Budget:       64,
		ShrinkParams: []scenario.Params{{"requests": 1}},
	})
	if !out.Ok {
		t.Fatalf("search failed: %s", out.Note)
	}
	if !sawShrink {
		t.Fatal("shrunken parameters were never attempted")
	}
	if out.AcceptedParams.Get("requests", -1) == 1 && out.View.Result.Steps >= 200 {
		t.Fatal("shrunken acceptance is implausibly long")
	}
}

func TestSearchIsDeterministicInSeed(t *testing.T) {
	s := workload.Overflow()
	accept := func(v *scenario.RunView) bool {
		failed, _ := s.CheckFailure(v)
		return failed
	}
	a := Search(s, accept, Options{Budget: 50, BaseSeed: 5})
	b := Search(s, accept, Options{Budget: 50, BaseSeed: 5})
	if a.Attempts != b.Attempts || a.WorkCycles != b.WorkCycles {
		t.Fatalf("same-seed searches diverged: %d/%d vs %d/%d",
			a.Attempts, a.WorkCycles, b.Attempts, b.WorkCycles)
	}
}

func TestForcedInputsAreRespected(t *testing.T) {
	s := workload.Sum()
	forced := map[string][]trace.Value{
		"in.a": {trace.Int(2)},
		"in.b": {trace.Int(2)},
	}
	out := Search(s, func(v *scenario.RunView) bool {
		// Every candidate must consume the forced inputs.
		a := v.Result.InputsUsed["in.a"]
		b := v.Result.InputsUsed["in.b"]
		if len(a) != 1 || a[0].AsInt() != 2 || len(b) != 1 || b[0].AsInt() != 2 {
			t.Fatalf("candidate ignored forced inputs: a=%v b=%v", a, b)
		}
		failed, _ := s.CheckFailure(v)
		return failed
	}, Options{Budget: 5, ForcedInputs: forced})
	if !out.Ok {
		t.Fatal("forced-input search did not accept the (2,2) failure")
	}
	if out.Attempts != 1 {
		t.Fatalf("forced-input search took %d attempts, want 1", out.Attempts)
	}
}

func TestForcedScheduleReplaysDeterministically(t *testing.T) {
	// Record a run, then search with the complete forced schedule: the
	// first candidate must already match.
	s := workload.Bank()
	v := s.Exec(scenario.ExecOptions{Seed: 3})
	sched := v.Trace.Schedule()
	total := v.Result.Outputs["bank.total"][0].AsInt()

	out := Search(s, func(c *scenario.RunView) bool {
		outs := c.Result.Outputs["bank.total"]
		return len(outs) == 1 && outs[0].AsInt() == total
	}, Options{
		Budget:   3,
		Schedule: sched,
		ForcedInputs: map[string][]trace.Value{
			"xfer.pick": v.Result.InputsUsed["xfer.pick"],
		},
	})
	if !out.Ok || out.Attempts != 1 {
		t.Fatalf("forced-schedule search: ok=%v attempts=%d (%s)", out.Ok, out.Attempts, out.Note)
	}
}

func TestCandidateSchedulerDiversity(t *testing.T) {
	// The search must mix PCT candidates in (every third attempt).
	o := Options{BaseSeed: 1}
	var names []string
	for i := int64(0); i < 6; i++ {
		names = append(names, candidateScheduler(o, i).Name())
	}
	sawPCT, sawRandom := false, false
	for _, n := range names {
		if n == "pct" {
			sawPCT = true
		}
		if n == "random" {
			sawRandom = true
		}
	}
	if !sawPCT || !sawRandom {
		t.Fatalf("scheduler mix missing a strategy: %v", names)
	}
}

func TestMixDistributes(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(0); i < 100; i++ {
		v := mix(7, i)
		if v < 0 {
			t.Fatalf("mix produced negative seed %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Fatalf("mix collides too much: %d distinct of 100", len(seen))
	}
}

var _ = vm.ZeroInputs // silence unused-import lint in minimal builds

// TestPrioritizeStablePartition checks the static-seeding reorder: with
// suspects and no forced schedule, non-PCT candidates come first, each
// class keeps its relative order, every original index survives exactly
// once, and candidate identity rides on idx rather than position.
func TestPrioritizeStablePartition(t *testing.T) {
	s := &scenario.Scenario{DefaultParams: scenario.Params{}}
	o := Options{Budget: 20, Suspects: []sites.Suspect{{Locks: [2]string{"A", "B"}}}}
	plan := buildPlan(s, o)
	if len(plan) != 20 {
		t.Fatalf("plan length = %d, want 20", len(plan))
	}
	split := -1
	for i, pt := range plan {
		if usesPCT(int64(pt.idx)) {
			if split == -1 {
				split = i
			}
		} else if split != -1 {
			t.Fatalf("random candidate idx %d after PCT block started at %d", pt.idx, split)
		}
	}
	if split == -1 {
		t.Fatal("no PCT candidates in plan")
	}
	seen := make(map[int]bool)
	prev := -1
	for i, pt := range plan {
		if seen[pt.idx] {
			t.Fatalf("idx %d duplicated", pt.idx)
		}
		seen[pt.idx] = true
		if i == split {
			prev = -1 // order resets at the class boundary
		}
		if pt.idx <= prev {
			t.Fatalf("relative order broken at position %d: idx %d after %d", i, pt.idx, prev)
		}
		prev = pt.idx
	}
	for i := 0; i < 20; i++ {
		if !seen[i] {
			t.Fatalf("idx %d missing from seeded plan", i)
		}
	}

	// No suspects, or a forced schedule, leaves the plan untouched.
	for _, o := range []Options{
		{Budget: 20},
		{Budget: 20, Suspects: o.Suspects, Schedule: []trace.ThreadID{0}},
	} {
		for i, pt := range buildPlan(s, o) {
			if pt.idx != i {
				t.Fatalf("unseeded plan reordered: position %d has idx %d", i, pt.idx)
			}
		}
	}
}

// TestSeededSearchBitIdentical runs the failure search on the deadlock
// scenario with and without suspects at a seed where the unseeded search
// accepts a random-scheduler candidate: the accepted execution must be
// bit-identical and the seeded search must not work harder.
func TestSeededSearchBitIdentical(t *testing.T) {
	s, err := workload.ByName("deadlock")
	if err != nil {
		t.Fatal(err)
	}
	accept := func(v *scenario.RunView) bool {
		failed, sig := s.CheckFailure(v)
		return failed && sig == "deadlock:abba"
	}
	o := Options{Budget: 60, BaseSeed: 7, Workers: 1}
	base := Search(s, accept, o)
	o.Suspects = []sites.Suspect{{Locks: [2]string{"A", "B"}}}
	seeded := Search(s, accept, o)
	if !base.Ok || !seeded.Ok {
		t.Fatalf("search failed: base %v seeded %v", base.Note, seeded.Note)
	}
	if base.Note != seeded.Note {
		t.Fatalf("accepted candidates differ: %q vs %q", base.Note, seeded.Note)
	}
	if !trace.EventsEqual(base.View.Trace, seeded.View.Trace, false) {
		t.Fatal("accepted executions differ")
	}
	if seeded.Attempts > base.Attempts {
		t.Fatalf("seeding increased attempts: %d -> %d", base.Attempts, seeded.Attempts)
	}
}

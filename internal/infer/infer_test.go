package infer

import (
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

func TestSearchFindsFailureSignature(t *testing.T) {
	s := workload.Overflow()
	out := Search(s, func(v *scenario.RunView) bool {
		failed, sig := s.CheckFailure(v)
		return failed && sig == "overflow:segfault"
	}, Options{Budget: 100})
	if !out.Ok {
		t.Fatalf("search failed after %d attempts: %s", out.Attempts, out.Note)
	}
	if out.View == nil || out.WorkSteps == 0 || out.WorkCycles == 0 {
		t.Fatal("accepted outcome missing view or work accounting")
	}
}

func TestSearchBudgetExhaustion(t *testing.T) {
	s := workload.Sum()
	out := Search(s, func(*scenario.RunView) bool { return false }, Options{Budget: 17})
	if out.Ok || out.View != nil {
		t.Fatal("unsatisfiable search claimed success")
	}
	if out.Attempts != 17 {
		t.Fatalf("attempts = %d, want 17", out.Attempts)
	}
	if out.Note != "budget exhausted" {
		t.Fatalf("note = %q", out.Note)
	}
}

func TestSearchTriesShrinkFirst(t *testing.T) {
	s := workload.Overflow()
	sawShrink := false
	out := Search(s, func(v *scenario.RunView) bool {
		if v.Trace.Header.Params["requests"] == 1 {
			sawShrink = true
		}
		failed, _ := s.CheckFailure(v)
		return failed
	}, Options{
		Budget:       64,
		ShrinkParams: []scenario.Params{{"requests": 1}},
	})
	if !out.Ok {
		t.Fatalf("search failed: %s", out.Note)
	}
	if !sawShrink {
		t.Fatal("shrunken parameters were never attempted")
	}
	if out.AcceptedParams.Get("requests", -1) == 1 && out.View.Result.Steps >= 200 {
		t.Fatal("shrunken acceptance is implausibly long")
	}
}

func TestSearchIsDeterministicInSeed(t *testing.T) {
	s := workload.Overflow()
	accept := func(v *scenario.RunView) bool {
		failed, _ := s.CheckFailure(v)
		return failed
	}
	a := Search(s, accept, Options{Budget: 50, BaseSeed: 5})
	b := Search(s, accept, Options{Budget: 50, BaseSeed: 5})
	if a.Attempts != b.Attempts || a.WorkCycles != b.WorkCycles {
		t.Fatalf("same-seed searches diverged: %d/%d vs %d/%d",
			a.Attempts, a.WorkCycles, b.Attempts, b.WorkCycles)
	}
}

func TestForcedInputsAreRespected(t *testing.T) {
	s := workload.Sum()
	forced := map[string][]trace.Value{
		"in.a": {trace.Int(2)},
		"in.b": {trace.Int(2)},
	}
	out := Search(s, func(v *scenario.RunView) bool {
		// Every candidate must consume the forced inputs.
		a := v.Result.InputsUsed["in.a"]
		b := v.Result.InputsUsed["in.b"]
		if len(a) != 1 || a[0].AsInt() != 2 || len(b) != 1 || b[0].AsInt() != 2 {
			t.Fatalf("candidate ignored forced inputs: a=%v b=%v", a, b)
		}
		failed, _ := s.CheckFailure(v)
		return failed
	}, Options{Budget: 5, ForcedInputs: forced})
	if !out.Ok {
		t.Fatal("forced-input search did not accept the (2,2) failure")
	}
	if out.Attempts != 1 {
		t.Fatalf("forced-input search took %d attempts, want 1", out.Attempts)
	}
}

func TestForcedScheduleReplaysDeterministically(t *testing.T) {
	// Record a run, then search with the complete forced schedule: the
	// first candidate must already match.
	s := workload.Bank()
	v := s.Exec(scenario.ExecOptions{Seed: 3})
	sched := v.Trace.Schedule()
	total := v.Result.Outputs["bank.total"][0].AsInt()

	out := Search(s, func(c *scenario.RunView) bool {
		outs := c.Result.Outputs["bank.total"]
		return len(outs) == 1 && outs[0].AsInt() == total
	}, Options{
		Budget:   3,
		Schedule: sched,
		ForcedInputs: map[string][]trace.Value{
			"xfer.pick": v.Result.InputsUsed["xfer.pick"],
		},
	})
	if !out.Ok || out.Attempts != 1 {
		t.Fatalf("forced-schedule search: ok=%v attempts=%d (%s)", out.Ok, out.Attempts, out.Note)
	}
}

func TestCandidateSchedulerDiversity(t *testing.T) {
	// The search must mix PCT candidates in (every third attempt).
	o := Options{BaseSeed: 1}
	var names []string
	for i := int64(0); i < 6; i++ {
		names = append(names, candidateScheduler(o, i).Name())
	}
	sawPCT, sawRandom := false, false
	for _, n := range names {
		if n == "pct" {
			sawPCT = true
		}
		if n == "random" {
			sawRandom = true
		}
	}
	if !sawPCT || !sawRandom {
		t.Fatalf("scheduler mix missing a strategy: %v", names)
	}
}

func TestMixDistributes(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(0); i < 100; i++ {
		v := mix(7, i)
		if v < 0 {
			t.Fatalf("mix produced negative seed %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Fatalf("mix collides too much: %d distinct of 100", len(seen))
	}
}

var _ = vm.ZeroInputs // silence unused-import lint in minimal builds

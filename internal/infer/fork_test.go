package infer

import (
	"reflect"
	"strings"
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// acceptedEqual compares the fields the fork-equivalence contract pins:
// everything outcomesEqual covers except the work counters, which forked
// search deliberately reduces.
func acceptedEqual(t *testing.T, label string, a, b *Outcome) {
	t.Helper()
	if a.Ok != b.Ok || a.Attempts != b.Attempts || a.Note != b.Note {
		t.Fatalf("%s: outcomes differ: ok=%v attempts=%d note=%q vs ok=%v attempts=%d note=%q",
			label, a.Ok, a.Attempts, a.Note, b.Ok, b.Attempts, b.Note)
	}
	if a.AcceptedParams.String() != b.AcceptedParams.String() {
		t.Fatalf("%s: accepted params %q vs %q", label, a.AcceptedParams, b.AcceptedParams)
	}
	if (a.View == nil) != (b.View == nil) {
		t.Fatalf("%s: one search has a view, the other does not", label)
	}
	if a.View != nil {
		if a.View.Result.Outcome != b.View.Result.Outcome {
			t.Fatalf("%s: accepted outcomes %v vs %v", label, a.View.Result.Outcome, b.View.Result.Outcome)
		}
		if !trace.EventsEqual(a.View.Trace, b.View.Trace, false) {
			t.Fatalf("%s: accepted traces differ", label)
		}
		if !reflect.DeepEqual(a.View.Result.Outputs, b.View.Result.Outputs) {
			t.Fatalf("%s: accepted outputs differ", label)
		}
	}
}

// TestForkedSearchBitEquivalent is the tentpole contract: the forked
// search accepts the identical candidate, with identical Attempts, as the
// sequential from-scratch search — across scenario styles (ESD signature
// search with shrinking, ODR output search, deadlock search, exhaustion),
// snapshot intervals and worker counts.
func TestForkedSearchBitEquivalent(t *testing.T) {
	odr := workload.MsgDrop()
	orig := odr.Exec(scenario.ExecOptions{Seed: odr.DefaultSeed})
	want := orig.Result.Outputs
	acceptODR := func(v *scenario.RunView) bool {
		return reflect.DeepEqual(v.Result.Outputs, want)
	}

	esd := workload.Overflow()
	acceptESD := func(v *scenario.RunView) bool {
		failed, sig := esd.CheckFailure(v)
		return failed && sig == "overflow:segfault"
	}

	dead, err := workload.ByName("deadlock")
	if err != nil {
		t.Fatal(err)
	}
	acceptDead := func(v *scenario.RunView) bool {
		failed, _ := dead.CheckFailure(v)
		return failed
	}

	cases := map[string]struct {
		s      *scenario.Scenario
		accept func(*scenario.RunView) bool
		opts   Options
	}{
		"odr-msgdrop": {odr, acceptODR, Options{Budget: 120, BaseSeed: 7}},
		"esd-overflow": {esd, acceptESD, Options{
			Budget: 120, BaseSeed: 7,
			ShrinkParams: []scenario.Params{{"requests": 2}, {"requests": 4}},
		}},
		"deadlock":  {dead, acceptDead, Options{Budget: 60, BaseSeed: 7}},
		"exhausted": {esd, func(*scenario.RunView) bool { return false }, Options{Budget: 37, BaseSeed: 3}},
	}
	for name, tc := range cases {
		seqOpts := tc.opts
		seqOpts.Workers = 1
		seq := Search(tc.s, tc.accept, seqOpts)
		for _, cfg := range []struct {
			label    string
			workers  int
			interval int64
		}{
			{"fork-w1", 1, 0},
			{"fork-w1-i64", 1, 64},
			{"fork-w4", 4, 0},
			{"fork-w4-i64", 4, 64},
		} {
			forkOpts := tc.opts
			forkOpts.Workers = cfg.workers
			forkOpts.Fork = true
			forkOpts.ForkInterval = cfg.interval
			fork := Search(tc.s, tc.accept, forkOpts)
			acceptedEqual(t, name+"/"+cfg.label, seq, fork)
			if fork.WorkSteps > seq.WorkSteps {
				t.Fatalf("%s/%s: forked search executed more steps (%d) than scratch (%d)",
					name, cfg.label, fork.WorkSteps, seq.WorkSteps)
			}
		}
	}
}

// TestForkedForcedScheduleSavesWork pins the win on the RCSE-shaped
// search: with a complete forced schedule and forced control inputs every
// candidate is equivalent, so the forked search executes the trunk once
// and prunes the rest — at least halving WorkSteps (in practice dividing
// by the budget).
func TestForkedForcedScheduleSavesWork(t *testing.T) {
	s := workload.Bank()
	v := s.Exec(scenario.ExecOptions{Seed: 3})
	reject := func(*scenario.RunView) bool { return false }
	base := Options{
		Budget:       16,
		BaseSeed:     11,
		Workers:      1,
		Schedule:     v.Trace.Schedule(),
		ForcedInputs: map[string][]trace.Value{"xfer.pick": v.Result.InputsUsed["xfer.pick"]},
	}
	scratch := Search(s, reject, base)
	forkOpts := base
	forkOpts.Fork = true
	fork := Search(s, reject, forkOpts)
	acceptedEqual(t, "forced-schedule", scratch, fork)
	if fork.WorkSteps == 0 {
		t.Fatal("forked search executed nothing, not even the trunk")
	}
	if fork.WorkSteps*2 > scratch.WorkSteps {
		t.Fatalf("forked search saved too little: %d steps forked vs %d scratch",
			fork.WorkSteps, scratch.WorkSteps)
	}
}

// TestForkerBoundaries drives the Forker directly through the fork
// boundary cases: a candidate identical to a retained path (full reuse,
// zero executed work), a candidate diverging past every snapshot (suffix
// execution from a mid-trace snapshot), and a candidate with no usable
// snapshot at all (scratch fallback). Every case must stay bit-identical
// to a from-scratch execution of the same candidate.
func TestForkerBoundaries(t *testing.T) {
	s := workload.Bank()
	rec := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	sched := rec.Trace.Schedule()
	picks := rec.Result.InputsUsed["xfer.pick"]
	if len(picks) < 2 {
		t.Fatalf("recording consumed only %d picks", len(picks))
	}
	mk := func(seed int64, forced []trace.Value) Candidate {
		vals := map[string][]trace.Value{"xfer.pick": forced}
		return Candidate{
			Seed:      seed,
			Scheduler: func() vm.Scheduler { return vm.NewReplayScheduler(sched) },
			Inputs: func() vm.InputSource {
				return &vm.MapInputs{Values: vals, Base: s.SearchSource(9, s.DefaultParams)}
			},
		}
	}
	scratchOf := func(c Candidate) *scenario.RunView {
		return s.Exec(scenario.ExecOptions{Seed: c.Seed, Scheduler: c.Scheduler(), Inputs: c.Inputs()})
	}
	same := func(label string, got, want *scenario.RunView) {
		t.Helper()
		if got.Result.Outcome != want.Result.Outcome {
			t.Fatalf("%s: outcome %v, want %v", label, got.Result.Outcome, want.Result.Outcome)
		}
		if got.Result.Steps != want.Result.Steps || got.Result.Cycles != want.Result.Cycles {
			t.Fatalf("%s: steps/cycles %d/%d, want %d/%d", label,
				got.Result.Steps, got.Result.Cycles, want.Result.Steps, want.Result.Cycles)
		}
		if !trace.EventsEqual(got.Trace, want.Trace, false) {
			t.Fatalf("%s: traces differ", label)
		}
		if !reflect.DeepEqual(got.Result.Outputs, want.Result.Outputs) {
			t.Fatalf("%s: outputs differ", label)
		}
		if !reflect.DeepEqual(got.Result.InputsUsed, want.Result.InputsUsed) {
			t.Fatalf("%s: inputs differ", label)
		}
	}

	f := NewForker(ForkerConfig{Scenario: s, Interval: 16})
	trunk := mk(100, picks)
	tv, tSteps, _ := f.Run(trunk)
	same("trunk", tv, scratchOf(trunk))
	if tSteps != tv.Result.Steps {
		t.Fatalf("trunk executed %d of its %d steps; the first run has nothing to fork from",
			tSteps, tv.Result.Steps)
	}

	// Full reuse: an equivalent candidate is pruned to zero executed work.
	clone := mk(101, picks)
	cv, cSteps, cCycles := f.Run(clone)
	if cSteps != 0 || cCycles != 0 {
		t.Fatalf("equivalent candidate executed %d steps / %d cycles, want 0/0", cSteps, cCycles)
	}
	same("reuse", cv, scratchOf(clone))
	if cv.Trace.Header.Seed != 101 {
		t.Fatalf("reused view carries seed %d, want the candidate's 101", cv.Trace.Header.Seed)
	}

	// Late divergence: alter only the final input draw; the candidate must
	// restore from a mid-trace snapshot and execute just the suffix.
	altered := append(append([]trace.Value(nil), picks[:len(picks)-1]...),
		trace.Int(picks[len(picks)-1].AsInt()+1))
	late := mk(102, altered)
	lv, lSteps, _ := f.Run(late)
	same("late-divergence", lv, scratchOf(late))
	if lSteps == 0 || lSteps >= lv.Result.Steps {
		t.Fatalf("late divergence executed %d of %d steps, want a proper suffix",
			lSteps, lv.Result.Steps)
	}

	// Early divergence: alter the first draw. The first snapshot (seq 16)
	// lies past the divergence point, so the candidate must fall back to a
	// full from-scratch run — never a wrong snapshot, never a panic.
	first := append([]trace.Value(nil), picks...)
	first[0] = trace.Int(picks[0].AsInt() + 1)
	early := mk(103, first)
	ev, eSteps, _ := f.Run(early)
	same("early-divergence", ev, scratchOf(early))
	if eSteps != ev.Result.Steps {
		t.Fatalf("early divergence executed %d of %d steps, want a full scratch run",
			eSteps, ev.Result.Steps)
	}

	// No snapshots at all (interval beyond the trace): non-equivalent
	// candidates run from scratch, equivalent ones still prune.
	g := NewForker(ForkerConfig{Scenario: s, Interval: 1 << 30})
	g.Run(trunk)
	gv, gSteps, _ := g.Run(late)
	same("no-snapshot", gv, scratchOf(late))
	if gSteps != gv.Result.Steps {
		t.Fatalf("snapshot-free fork executed %d of %d steps, want full scratch",
			gSteps, gv.Result.Steps)
	}
	if _, rSteps, _ := g.Run(clone); rSteps != 0 {
		t.Fatalf("snapshot-free reuse executed %d steps, want 0", rSteps)
	}
}

// TestSearchValidatesOptions pins Options.Validate and its wiring into
// Search: out-of-domain knobs produce a clean error outcome instead of a
// silent reinterpretation (a negative Workers used to run sequentially).
func TestSearchValidatesOptions(t *testing.T) {
	s := workload.Sum()
	reject := func(*scenario.RunView) bool { return false }
	cases := map[string]Options{
		"workers":       {Workers: -1},
		"budget":        {Budget: -5},
		"fork-interval": {Fork: true, ForkInterval: -256},
		"fork-paths":    {Fork: true, ForkPaths: -2},
	}
	for name, o := range cases {
		out := Search(s, reject, o)
		if out.Err == nil || out.Ok || out.View != nil {
			t.Fatalf("%s: invalid options not rejected: err=%v ok=%v", name, out.Err, out.Ok)
		}
		if out.Attempts != 0 {
			t.Fatalf("%s: rejected search still ran %d candidates", name, out.Attempts)
		}
		if out.Note != "invalid options" {
			t.Fatalf("%s: note = %q", name, out.Note)
		}
		if !strings.Contains(out.Err.Error(), "infer:") {
			t.Fatalf("%s: error %q does not identify the package", name, out.Err)
		}
	}
	// The zero defaults all remain valid.
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

package infer

import (
	"debugdet/internal/checkpoint"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// This file implements checkpoint-forked candidate execution. The search
// over schedule and input non-determinism re-executes the same program
// hundreds of times, and most candidates agree with an earlier candidate
// on a long prefix of scheduling decisions and input draws: a random
// scheduler facing a singleton enabled set has no choice, a forced
// schedule pins every decision, forced input streams pin every draw. A
// from-scratch search pays for those shared prefixes over and over.
//
// The forker removes that cost without changing a single answer. It
// retains a bounded *prefix forest* of fully-executed candidates — each
// with its scheduling-round log (vm.SchedRound), periodic state snapshots
// (checkpoint.Writer) and full oracle trace. A new candidate is first
// *dry-run* against the forest: its scheduler is simulated over each
// retained execution's rounds (vm.SchedSim) and its input source probed at
// each recorded input draw, locating the first decision or value it
// disagrees on — the divergence point — without executing anything. The VM
// is deterministic, so the candidate's execution is bit-identical to the
// retained one up to that point. The candidate then restores from the best
// snapshot at or before the divergence (vm.Restore) and executes only the
// suffix; its oracle trace is stitched from the retained prefix and the
// executed suffix. A candidate that agrees with a whole retained execution
// is pruned outright — sleep-set-style reduction: an interleaving
// equivalent to one already explored costs zero executed work, and its
// finished view is shared.
type forkPath struct {
	// params are the effective build parameters (scenario defaults with
	// the candidate's overrides applied); only candidates with equal
	// effective parameters may fork off this path.
	params scenario.Params
	// rounds is the execution's scheduling-round log, one round per event.
	rounds []vm.SchedRound
	// events is the full oracle event stream (events[i].Seq == i).
	events []trace.Event
	// streams maps stream object IDs to names, for probing input sources.
	streams []string
	// snaps are the periodic snapshots, in trace order.
	snaps []*vm.Snapshot
	// plan is the shared feed derivation covering every snapshot.
	plan *checkpoint.FeedPlan
	// view is the finished execution, shared with reuse candidates.
	view *scenario.RunView
}

// ForkerConfig configures a Forker. Every candidate run through one
// Forker shares these bounds: fork soundness needs candidates that agree
// on a prefix to agree on how the run around it is configured.
type ForkerConfig struct {
	// Scenario is the program under search.
	Scenario *scenario.Scenario
	// Interval is the event interval between snapshots on retained
	// executions (0 = checkpoint.DefaultInterval).
	Interval uint64
	// MaxPaths bounds the prefix forest (0 = 8).
	MaxPaths int
	// MaxSteps bounds each candidate execution (0 = VM default).
	MaxSteps uint64
	// RelaxTime lifts time gates on sleeps and timeouts, as forced-schedule
	// replay requires (see vm.Config.RelaxTime).
	RelaxTime bool
}

// Forker runs candidate executions by forking them off retained prefixes
// instead of from scratch; see the package comment on forkPath for the
// mechanism. Its contract is bit-equivalence: Run's view is identical —
// same events, same outcome, same outputs — to what a from-scratch
// execution of the candidate would produce, while the returned work
// counts only what was actually executed.
//
// A Forker is not safe for concurrent use while the forest grows; call
// Freeze first, after which concurrent Runs share the forest read-only.
type Forker struct {
	s        *scenario.Scenario
	interval uint64
	maxPaths int
	maxSteps uint64
	relax    bool
	grow     bool
	forest   []*forkPath
}

// NewForker returns a forker with an empty forest.
func NewForker(cfg ForkerConfig) *Forker {
	interval := cfg.Interval
	if interval == 0 {
		interval = checkpoint.DefaultInterval
	}
	maxPaths := cfg.MaxPaths
	if maxPaths == 0 {
		maxPaths = 8
	}
	return &Forker{
		s:        cfg.Scenario,
		interval: interval,
		maxPaths: maxPaths,
		maxSteps: cfg.MaxSteps,
		relax:    cfg.RelaxTime,
		grow:     true,
	}
}

// Candidate is one candidate execution, described by constructors rather
// than instances: the forker dry-runs a candidate's scheduler and probes
// its input source several times (once per retained path, once more for
// the real run), and each use needs a fresh copy in its initial state.
// Both constructors must build the same deterministic scheduler and input
// source every call — exactly the property that makes candidates
// reproducible from their index in the first place.
type Candidate struct {
	// Seed is the VM seed (trace-header identity; candidates always carry
	// explicit schedulers and inputs, so it steers nothing else).
	Seed int64
	// Scheduler constructs the candidate's scheduler, fresh each call.
	Scheduler func() vm.Scheduler
	// Inputs constructs the candidate's input source, fresh each call.
	Inputs func() vm.InputSource
	// Params are the candidate's parameter overrides (nil keeps the
	// scenario defaults), as scenario.ExecOptions.Params.
	Params scenario.Params
}

// Freeze stops forest growth. After Freeze, concurrent Run calls are safe:
// the forest is shared read-only and all remaining state is per-call.
func (f *Forker) Freeze() { f.grow = false }

// Run executes one candidate, forking off the prefix forest when a
// retained execution shares a prefix with it. It returns the finished
// view — bit-identical to a from-scratch execution of the candidate — and
// the steps and virtual cycles actually executed (zero for a candidate
// pruned as equivalent to a retained execution; view.Result always holds
// whole-run totals).
func (f *Forker) Run(c Candidate) (view *scenario.RunView, steps, cycles uint64) {
	pEff := f.s.DefaultParams.Clone(c.Params)
	base, snap, complete := f.bestFork(c, pEff)
	if complete {
		return reuseView(base, c.Seed), 0, 0
	}
	if base != nil {
		if view, steps, cycles, ok := f.runForked(c, pEff, base, snap); ok {
			return view, steps, cycles
		}
	}
	return f.runScratch(c, pEff)
}

// bestFork dry-runs the candidate against every compatible retained path
// and picks the fork restoring the most state: the path whose usable
// snapshot (latest at or before the candidate's divergence point) has the
// highest sequence number, ties broken toward the oldest path. complete
// reports that the candidate agrees with all of base and needs no
// execution at all.
func (f *Forker) bestFork(c Candidate, pEff scenario.Params) (base *forkPath, snap *vm.Snapshot, complete bool) {
	sim := vm.NewSchedSim()
	for _, p := range f.forest {
		if !paramsEqual(p.params, pEff) {
			continue
		}
		d, whole := p.divergence(sim, c)
		if whole {
			return p, nil, true
		}
		s := checkpoint.Best(p.snaps, d)
		if s == nil {
			continue
		}
		if snap == nil || s.Seq > snap.Seq {
			base, snap = p, s
		}
	}
	return base, snap, false
}

// divergence walks the path's recorded rounds, dry-running a fresh copy of
// the candidate's scheduler and probing a fresh copy of its input source,
// and returns the sequence number of the first decision or input value the
// candidate disagrees on. The VM funnels every scheduling decision through
// one round and every environment read through one input draw, so
// agreement on both pins the candidate's execution bit-identically to the
// path's prefix. complete means the candidate agrees with the entire
// execution — unless the path ended in replay divergence, whose final,
// failed scheduler consultation is not in the round log and must be
// re-taken live.
func (p *forkPath) divergence(sim *vm.SchedSim, c Candidate) (d uint64, complete bool) {
	sched := c.Scheduler()
	inputs := c.Inputs()
	counts := make([]int, len(p.streams))
	for _, r := range p.rounds {
		if r.Seq >= uint64(len(p.events)) {
			return r.Seq, false
		}
		pick, ok := sim.Pick(sched, r.Seq, r.Enabled)
		if !ok || pick != r.Pick {
			return r.Seq, false
		}
		e := &p.events[r.Seq]
		if e.Kind == trace.EvInput {
			idx := counts[e.Obj]
			counts[e.Obj]++
			if !inputs.Next(p.streams[e.Obj], idx).Equal(e.Val) {
				return r.Seq, false
			}
		}
	}
	if p.view.Result.Outcome == vm.OutcomeDiverged {
		return uint64(len(p.events)), false
	}
	return 0, true
}

// reuseView shares a retained execution with a pruned candidate: the
// machine, result and events are the path's own (read-only by the
// RunView contract); only the trace header's seed is the candidate's.
func reuseView(p *forkPath, seed int64) *scenario.RunView {
	res := *p.view.Result
	tr := &trace.Log{Header: p.view.Trace.Header, Sites: p.view.Trace.Sites, Events: p.view.Trace.Events}
	tr.Header.Seed = seed
	res.Trace = tr
	return &scenario.RunView{Machine: p.view.Machine, Result: &res, Trace: tr}
}

// runForked restores base's state from snap and executes only the
// candidate's suffix. A false ok falls back to a from-scratch run — the
// fork machinery refusing (a feed-plan gap, a restore validation error, a
// dry-run disagreement below the snapshot) never costs correctness, only
// the shortcut.
func (f *Forker) runForked(c Candidate, pEff scenario.Params, base *forkPath, snap *vm.Snapshot) (view *scenario.RunView, steps, cycles uint64, ok bool) {
	feeds, err := base.plan.At(snap)
	if err != nil {
		return nil, 0, 0, false
	}
	// Fast-forward a fresh scheduler through the prefix's rounds: the
	// restored machine rebuilds thread state by feed replay without
	// consulting the scheduler, so its decision state must be advanced
	// here. The dry picks re-check what divergence established.
	sched := c.Scheduler()
	sim := vm.NewSchedSim()
	prefix := 0
	for _, r := range base.rounds {
		if r.Seq >= snap.Seq {
			break
		}
		pick, pok := sim.Pick(sched, r.Seq, r.Enabled)
		if !pok || pick != r.Pick {
			return nil, 0, 0, false
		}
		prefix++
	}
	insert := f.grow && len(f.forest) < f.maxPaths
	m, err := vm.Restore(vm.Config{
		Seed:         c.Seed,
		Scheduler:    sched,
		Inputs:       c.Inputs(),
		MaxSteps:     f.maxSteps,
		CollectTrace: true,
		RelaxTime:    f.relax,
		LogRounds:    insert,
	}, func(mm *vm.Machine) func(*vm.Thread) { return f.s.Build(mm, pEff) }, snap, feeds)
	if err != nil {
		return nil, 0, 0, false
	}
	var cw *checkpoint.Writer
	if insert {
		cw = checkpoint.NewWriter(m, f.interval)
		m.Attach(cw)
	}
	m.Continue(0)
	res := m.Finish()

	// Stitch the full oracle trace: the retained prefix is bit-identical
	// to what the candidate would have produced, and the restored machine
	// continues sequence numbers and virtual time exactly where the
	// snapshot left them. The header mirrors scenario.Exec's.
	events := make([]trace.Event, 0, int(snap.Seq)+len(res.Trace.Events))
	events = append(events, base.events[:snap.Seq]...)
	events = append(events, res.Trace.Events...)
	tr := &trace.Log{
		Header: trace.Header{Scenario: f.s.Name, Seed: c.Seed, Params: map[string]int64(pEff)},
		Sites:  m.Sites(),
		Events: events,
	}
	res.Trace = tr
	view = &scenario.RunView{Machine: m, Result: res, Trace: tr}
	if insert {
		rounds := make([]vm.SchedRound, 0, prefix+len(m.Rounds()))
		rounds = append(rounds, base.rounds[:prefix]...)
		rounds = append(rounds, m.Rounds()...)
		var snaps []*vm.Snapshot
		for _, s := range base.snaps {
			if s.Seq <= snap.Seq {
				snaps = append(snaps, s)
			}
		}
		snaps = append(snaps, cw.Snapshots()...)
		f.insert(pEff, view, rounds, snaps)
	}
	return view, res.Steps - snap.Seq, res.Cycles - snap.Clock, true
}

// runScratch executes the candidate from the beginning — the first
// candidate of every parameter group, candidates that diverge before the
// first snapshot, and any candidate the fork machinery refused.
func (f *Forker) runScratch(c Candidate, pEff scenario.Params) (*scenario.RunView, uint64, uint64) {
	insert := f.grow && len(f.forest) < f.maxPaths
	var cw *checkpoint.Writer
	eo := scenario.ExecOptions{
		Seed:      c.Seed,
		Params:    c.Params,
		Scheduler: c.Scheduler(),
		Inputs:    c.Inputs(),
		MaxSteps:  f.maxSteps,
		RelaxTime: f.relax,
		LogRounds: insert,
	}
	if insert {
		eo.ObserverFactory = func(m *vm.Machine) []vm.Observer {
			cw = checkpoint.NewWriter(m, f.interval)
			return []vm.Observer{cw}
		}
	}
	view := f.s.Exec(eo)
	if insert {
		f.insert(pEff, view, view.Machine.Rounds(), cw.Snapshots())
	}
	return view, view.Result.Steps, view.Result.Cycles
}

// insert retains a finished execution in the forest. A feed-plan failure
// (a trace that is not a complete event stream) just skips retention.
func (f *Forker) insert(pEff scenario.Params, view *scenario.RunView, rounds []vm.SchedRound, snaps []*vm.Snapshot) {
	plan, err := checkpoint.PlanFeeds(view.Trace.Events, snaps)
	if err != nil {
		return
	}
	f.forest = append(f.forest, &forkPath{
		params:  pEff,
		rounds:  rounds,
		events:  view.Trace.Events,
		streams: view.Machine.StreamNames(),
		snaps:   snaps,
		plan:    plan,
		view:    view,
	})
}

// paramsEqual reports whether two effective parameter sets are identical.
func paramsEqual(a, b scenario.Params) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

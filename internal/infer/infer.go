// Package infer implements the execution-synthesis engine behind the
// relaxed determinism models: it reconstructs the non-determinism a
// recorder chose not to persist.
//
// Output determinism (ODR) and failure determinism (ESD) both defer work
// from production to debug time: the replayer must find *some* execution
// consistent with what little was recorded — the same outputs, or just the
// same failure signature. This package realizes that inference as guided
// search over re-executions of the program on the deterministic VM:
//
//   - scheduling non-determinism is searched by enumerating scheduler
//     seeds, alternating uniform-random with PCT (priority-based) search,
//     which reaches rare interleavings with known probability;
//   - input non-determinism is searched by drawing candidate input
//     sequences from the scenario's declared input domains;
//   - recorded fragments (forced inputs, forced schedules) constrain each
//     candidate execution rather than being searched;
//   - ESD-style shrinking tries the scenario's reduced parameter sets
//     first, synthesizing executions shorter than the original — which is
//     how debugging efficiency can exceed 1 (§3.2).
//
// The search accounts its total work in virtual cycles across every
// attempted execution; that is the "analysis time" component of debugging
// efficiency.
package infer

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"debugdet/internal/lint/sites"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Options configures a search.
type Options struct {
	// Ctx cancels the search between candidate executions (nil =
	// context.Background()). A canceled search returns Ok=false with
	// Err set; candidates already accounted stay accounted, so the
	// Outcome of an uncanceled search is unaffected by the field.
	Ctx context.Context
	// Budget is the maximum number of candidate executions (default 200).
	Budget int
	// BaseSeed perturbs the search's own randomness so independent
	// searches explore differently.
	BaseSeed int64
	// Params are the execution parameters (scenario defaults if nil).
	Params scenario.Params
	// ShrinkParams are smaller parameter sets to try first, in order:
	// the ESD-style execution synthesis that can find a shorter
	// execution exhibiting the same failure.
	ShrinkParams []scenario.Params
	// ForcedInputs pins recorded streams: the replay draws these values
	// by (stream, index) and only searches the rest.
	ForcedInputs map[string][]trace.Value
	// Schedule, when non-nil, is a complete recorded schedule to force;
	// only input non-determinism is searched.
	Schedule []trace.ThreadID
	// MaxSteps bounds each candidate execution (0 = VM default).
	MaxSteps uint64
	// Suspects are statically implicated lock-order inversions (from
	// detlint's lockorder analysis via sites.Triage). When non-empty and
	// no schedule is forced, the search visits its uniform-random
	// candidates before its PCT ones: an ABBA deadlock fires only when
	// both threads are preempted inside the hold-one-wait-for-the-other
	// window, and PCT's long single-thread priority runs serialize the
	// critical sections right past it, while random interleaving samples
	// the window directly. Seeding is a stable reordering — every
	// candidate keeps its identity (seed, scheduler, inputs, note, all
	// keyed on the candidate's original index) — so whenever the
	// unseeded search would accept a random-scheduler candidate, the
	// seeded search accepts the bit-identical execution and only
	// Attempts/WorkCycles/WorkSteps shrink.
	Suspects []sites.Suspect
	// Workers is the number of candidate executions run concurrently
	// (default GOMAXPROCS; 1 opts out of parallelism; negative is rejected
	// by Validate). Candidates are bit-deterministic functions of their
	// index, so the Outcome — accepted execution, Attempts, WorkCycles,
	// WorkSteps, Note — is identical for every worker count; see Search
	// for the contract.
	Workers int
	// Fork enables checkpoint-forked candidate execution: completed
	// candidates are retained — with their scheduling rounds and periodic
	// state snapshots — in a bounded prefix forest, each later candidate
	// is dry-run against the forest to find where it first diverges, and
	// only its suffix is executed from the best snapshot at or before that
	// point; a candidate equivalent to a retained execution is pruned to
	// zero executed work (see Forker). The accepted execution, Ok,
	// Attempts, AcceptedParams and Note are bit-identical to the
	// non-forked search at every worker count; WorkCycles and WorkSteps
	// count only the work actually executed — the measured win — and so
	// depend on the forest policy (sequential searches grow the forest as
	// they go; parallel searches freeze it after the first candidate so
	// workers share it read-only, keeping the counts deterministic per
	// worker-count mode).
	Fork bool
	// ForkInterval is the event interval between snapshots on retained
	// executions (0 = checkpoint.DefaultInterval; negative is rejected by
	// Validate). Smaller intervals fork closer to the divergence point at
	// the price of more snapshot memory per retained path.
	ForkInterval int64
	// ForkPaths bounds the prefix forest (0 = 8; negative is rejected by
	// Validate).
	ForkPaths int
}

// Validate rejects option values outside their domain instead of silently
// reinterpreting them, mirroring flightrec.Options.Validate. A negative
// Workers previously fell through to the sequential path as if it were 1,
// hiding the caller's sign bug. Search calls Validate and surfaces the
// error through Outcome.Err.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("infer: Workers must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d", o.Workers)
	}
	if o.Budget < 0 {
		return fmt.Errorf("infer: Budget must be >= 0 (0 = default 200), got %d", o.Budget)
	}
	if o.ForkInterval < 0 {
		return fmt.Errorf("infer: ForkInterval must be >= 0 (0 = checkpoint default), got %d", o.ForkInterval)
	}
	if o.ForkPaths < 0 {
		return fmt.Errorf("infer: ForkPaths must be >= 0 (0 = default 8), got %d", o.ForkPaths)
	}
	return nil
}

// Outcome is a finished search.
type Outcome struct {
	// View is the accepted execution (nil when the search failed).
	View *scenario.RunView
	// Ok reports whether a consistent execution was found.
	Ok bool
	// Attempts is the number of candidate executions run.
	Attempts int
	// WorkCycles is the total virtual time across every attempt,
	// including the accepted one: the tool's analysis cost.
	WorkCycles uint64
	// WorkSteps is the total event count across every attempt — the
	// idle-time-free duration proxy debugging efficiency uses.
	WorkSteps uint64
	// AcceptedParams are the parameters of the accepted execution (they
	// differ from the original's when shrinking succeeded).
	AcceptedParams scenario.Params
	// Note summarizes how the result was found, for reports.
	Note string
	// Err is the context error when the search was canceled mid-flight or
	// the validation error when the options were rejected, nil otherwise.
	Err error
}

// paramTry is one slot of the candidate plan. idx is the candidate's
// original plan index, which — not the visiting position — keys the
// candidate's seed, scheduler, inputs and note, so reordering the plan
// (static seeding) changes what is tried first, never what is tried.
type paramTry struct {
	p    scenario.Params
	note string
	idx  int
}

// buildPlan lays out the parameter schedule: shrunken configurations first
// (a few tries each), then the full configuration for the remaining
// budget; static seeding then reorders the visiting order.
func buildPlan(s *scenario.Scenario, o Options) []paramTry {
	var plan []paramTry
	perShrink := o.Budget / 8
	if perShrink < 4 {
		perShrink = 4
	}
	for i, sp := range o.ShrinkParams {
		for j := 0; j < perShrink; j++ {
			plan = append(plan, paramTry{p: sp, note: fmt.Sprintf("shrink[%d]", i)})
		}
	}
	full := s.DefaultParams.Clone(o.Params)
	for len(plan) < o.Budget {
		plan = append(plan, paramTry{p: full, note: "full"})
	}
	if len(plan) > o.Budget {
		plan = plan[:o.Budget]
	}
	for i := range plan {
		plan[i].idx = i
	}
	return prioritize(plan, o)
}

// prioritize applies static seeding: with lock-order suspects in hand and
// no forced schedule, visit the uniform-random candidates first and defer
// the PCT ones (stable partition — relative order within each class is
// preserved; see Options.Suspects for why random wins on ABBA windows).
// Candidate identity is keyed on paramTry.idx, so this changes only the
// visiting order.
func prioritize(plan []paramTry, o Options) []paramTry {
	if len(o.Suspects) == 0 || o.Schedule != nil {
		return plan
	}
	out := make([]paramTry, 0, len(plan))
	for _, pt := range plan {
		if !usesPCT(int64(pt.idx)) {
			out = append(out, pt)
		}
	}
	for _, pt := range plan {
		if usesPCT(int64(pt.idx)) {
			out = append(out, pt)
		}
	}
	return out
}

// runCandidate executes one candidate of the plan. Candidates are
// bit-deterministic functions of (scenario, options, pt.idx) and share no
// mutable state, which is what makes the search embarrassingly parallel.
func runCandidate(s *scenario.Scenario, o Options, pt paramTry) *scenario.RunView {
	i := int64(pt.idx)
	return s.Exec(scenario.ExecOptions{
		Seed:      o.BaseSeed + i,
		Params:    pt.p,
		Scheduler: candidateScheduler(o, i),
		Inputs:    candidateInputs(s, o, pt.p, i),
		MaxSteps:  o.MaxSteps,
	})
}

// Search runs candidate executions of s until accept returns true or the
// budget is exhausted.
//
// With Workers > 1 candidates run concurrently, under a determinism
// contract that makes the parallel search indistinguishable from the
// sequential one: candidates keep their sequential indices, accept is
// invoked on the collector goroutine in strictly increasing index order
// (so accept needs no internal locking), the accepted candidate is the
// lowest-index accepted one, and Attempts/WorkCycles/WorkSteps count
// exactly the candidates at or before the accepted index. Workers may
// speculatively execute candidates beyond the eventually-accepted index;
// those executions are discarded unobserved, so their scheduling on the
// host has no effect on the Outcome.
func Search(s *scenario.Scenario, accept func(*scenario.RunView) bool, o Options) *Outcome {
	if err := o.Validate(); err != nil {
		return &Outcome{Err: err, Note: "invalid options"}
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.Budget == 0 {
		o.Budget = 200
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	plan := buildPlan(s, o)
	workers := o.Workers
	if workers > len(plan) {
		workers = len(plan)
	}
	if o.Fork {
		return searchForked(s, accept, o, plan, workers)
	}
	if workers <= 1 {
		return searchSeq(s, accept, o, plan)
	}
	return searchParallel(s, accept, o, plan, workers)
}

// searchSeq is the reference implementation: one candidate at a time, in
// index order. searchParallel is defined to be outcome-equivalent to it.
func searchSeq(s *scenario.Scenario, accept func(*scenario.RunView) bool, o Options, plan []paramTry) *Outcome {
	out := &Outcome{}
	for _, pt := range plan {
		if err := o.Ctx.Err(); err != nil {
			out.Err = err
			out.Note = "search canceled"
			return out
		}
		view := runCandidate(s, o, pt)
		out.Attempts++
		out.WorkCycles += view.Result.Cycles
		out.WorkSteps += view.Result.Steps
		if accept(view) {
			out.View = view
			out.Ok = true
			out.AcceptedParams = pt.p
			out.Note = fmt.Sprintf("%s attempt %d", pt.note, pt.idx)
			return out
		}
	}
	out.Note = "budget exhausted"
	return out
}

// runFunc executes one candidate of the plan, returning the finished view
// and the steps and virtual cycles of work actually executed (whole-run
// totals for a from-scratch run; the executed suffix for a forked one).
type runFunc func(pt paramTry) (view *scenario.RunView, steps, cycles uint64)

// searchParallel fans the candidate plan across a worker pool and folds
// results back in index order.
func searchParallel(s *scenario.Scenario, accept func(*scenario.RunView) bool, o Options, plan []paramTry, workers int) *Outcome {
	run := func(pt paramTry) (*scenario.RunView, uint64, uint64) {
		view := runCandidate(s, o, pt)
		return view, view.Result.Steps, view.Result.Cycles
	}
	return collectParallel(accept, o, plan, workers, run, &Outcome{})
}

// searchForked runs the search through a Forker; see Options.Fork. The
// sequential form grows the prefix forest as candidates complete. The
// parallel form executes the first candidate (the trunk) on the collector
// and freezes the forest before fanning the rest across the pool, so
// workers fork off a shared read-only trunk — keeping every count
// deterministic across worker schedules.
func searchForked(s *scenario.Scenario, accept func(*scenario.RunView) bool, o Options, plan []paramTry, workers int) *Outcome {
	f := NewForker(ForkerConfig{
		Scenario: s,
		Interval: uint64(o.ForkInterval),
		MaxPaths: o.ForkPaths,
		MaxSteps: o.MaxSteps,
	})
	run := func(pt paramTry) (*scenario.RunView, uint64, uint64) {
		return f.Run(forkCandidate(s, o, pt))
	}
	if workers <= 1 {
		out := &Outcome{}
		for _, pt := range plan {
			if err := o.Ctx.Err(); err != nil {
				out.Err = err
				out.Note = "search canceled"
				return out
			}
			view, steps, cycles := run(pt)
			out.Attempts++
			out.WorkCycles += cycles
			out.WorkSteps += steps
			if accept(view) {
				out.View = view
				out.Ok = true
				out.AcceptedParams = pt.p
				out.Note = fmt.Sprintf("%s attempt %d", pt.note, pt.idx)
				return out
			}
		}
		out.Note = "budget exhausted"
		return out
	}
	out := &Outcome{}
	if err := o.Ctx.Err(); err != nil {
		out.Err = err
		out.Note = "search canceled"
		return out
	}
	pt := plan[0]
	view, steps, cycles := run(pt)
	out.Attempts++
	out.WorkCycles += cycles
	out.WorkSteps += steps
	if accept(view) {
		out.View = view
		out.Ok = true
		out.AcceptedParams = pt.p
		out.Note = fmt.Sprintf("%s attempt %d", pt.note, pt.idx)
		return out
	}
	f.Freeze()
	rest := plan[1:]
	if len(rest) == 0 {
		out.Note = "budget exhausted"
		return out
	}
	if workers > len(rest) {
		workers = len(rest)
	}
	return collectParallel(accept, o, rest, workers, run, out)
}

// forkCandidate adapts a plan slot to the forker's candidate interface,
// preserving candidate identity: the same seed, scheduler and inputs
// runCandidate would construct for the slot.
func forkCandidate(s *scenario.Scenario, o Options, pt paramTry) Candidate {
	i := int64(pt.idx)
	return Candidate{
		Seed:      o.BaseSeed + i,
		Scheduler: func() vm.Scheduler { return candidateScheduler(o, i) },
		Inputs:    func() vm.InputSource { return candidateInputs(s, o, pt.p, i) },
		Params:    pt.p,
	}
}

// collectParallel is the shared parallel fan-out: candidates run on a
// worker pool, results fold back into out in strictly increasing index
// order (accept runs on the collector goroutine only), and accounting
// continues from whatever out already holds.
func collectParallel(accept func(*scenario.RunView) bool, o Options, plan []paramTry, workers int, run runFunc, out *Outcome) *Outcome {
	type candResult struct {
		idx    int
		view   *scenario.RunView
		steps  uint64
		cycles uint64
	}
	idxCh := make(chan int)
	resCh := make(chan candResult, workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Speculation window: the feeder may run at most this many candidates
	// ahead of the collector's cursor. Results hold full oracle traces, so
	// an unbounded window would let fast candidates pile up the whole
	// budget in memory (and burn the whole budget of CPU) while one slow
	// early candidate blocks consumption.
	window := 2 * workers
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	// Feeder: hands out candidate indices in order until the collector
	// accepts one (deterministic cancellation: only indices above the
	// accepted one can be cut off, and those are never accounted).
	go func() {
		defer close(idxCh)
		for i := range plan {
			select {
			case <-tokens:
			case <-stop:
				return
			case <-o.Ctx.Done():
				return
			}
			select {
			case idxCh <- i:
			case <-stop:
				return
			case <-o.Ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				view, steps, cycles := run(plan[i])
				select {
				case resCh <- candResult{idx: i, view: view, steps: steps, cycles: cycles}:
				case <-stop:
					return
				}
			}
		}()
	}

	// Collector: consume results in index order, calling accept exactly
	// as the sequential search would — same candidates, same order.
	pending := make(map[int]candResult, workers)
	cursor := 0
	for cursor < len(plan) {
		if err := o.Ctx.Err(); err != nil {
			close(stop)
			wg.Wait()
			out.Err = err
			out.Note = "search canceled"
			return out
		}
		cr, ok := pending[cursor]
		if !ok {
			select {
			case r := <-resCh:
				pending[r.idx] = r
			case <-o.Ctx.Done():
				// Loop around to the cancellation path above.
			}
			continue
		}
		delete(pending, cursor)
		tokens <- struct{}{} // consumed one: let the feeder dispatch one more
		pt := plan[cursor]
		view := cr.view
		cursor++
		out.Attempts++
		out.WorkCycles += cr.cycles
		out.WorkSteps += cr.steps
		if accept(view) {
			out.View = view
			out.Ok = true
			out.AcceptedParams = pt.p
			out.Note = fmt.Sprintf("%s attempt %d", pt.note, pt.idx)
			close(stop)
			wg.Wait()
			return out
		}
	}
	close(stop)
	wg.Wait()
	out.Note = "budget exhausted"
	return out
}

// candidateScheduler picks the i-th candidate's scheduler: the forced
// schedule when one is recorded, otherwise alternating random and PCT
// search.
func candidateScheduler(o Options, i int64) vm.Scheduler {
	if o.Schedule != nil {
		return vm.NewReplayScheduler(o.Schedule)
	}
	seed := mix(o.BaseSeed, i)
	if usesPCT(i) {
		return vm.NewPCTScheduler(seed, 4096, 3)
	}
	return vm.NewRandomScheduler(seed)
}

// usesPCT reports whether candidate i uses the PCT scheduler: every third
// candidate, to reach low-probability orderings that uniform random
// sampling misses. prioritize keys static seeding on the same predicate.
func usesPCT(i int64) bool { return i%3 == 2 }

// candidateInputs builds the i-th candidate's input source: forced
// recorded streams over a searched base.
func candidateInputs(s *scenario.Scenario, o Options, p scenario.Params, i int64) vm.InputSource {
	base := s.SearchSource(mix(o.BaseSeed, i*7919+13), p)
	if len(o.ForcedInputs) == 0 {
		return base
	}
	return &vm.MapInputs{Values: o.ForcedInputs, Base: base}
}

// mix combines two seeds into one (splitmix-style).
func mix(a, b int64) int64 {
	h := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	return int64(h &^ (1 << 63))
}

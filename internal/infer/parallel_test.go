package infer

import (
	"context"
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/workload"
)

// outcomesEqual compares every Outcome field the determinism contract
// covers, including the accepted execution's trace.
func outcomesEqual(t *testing.T, label string, a, b *Outcome) {
	t.Helper()
	if a.Ok != b.Ok || a.Attempts != b.Attempts ||
		a.WorkCycles != b.WorkCycles || a.WorkSteps != b.WorkSteps ||
		a.Note != b.Note {
		t.Fatalf("%s: outcomes differ:\n  workers=1: ok=%v attempts=%d cycles=%d steps=%d note=%q\n  workers=N: ok=%v attempts=%d cycles=%d steps=%d note=%q",
			label,
			a.Ok, a.Attempts, a.WorkCycles, a.WorkSteps, a.Note,
			b.Ok, b.Attempts, b.WorkCycles, b.WorkSteps, b.Note)
	}
	if a.AcceptedParams.String() != b.AcceptedParams.String() {
		t.Fatalf("%s: accepted params %q vs %q", label, a.AcceptedParams, b.AcceptedParams)
	}
	if (a.View == nil) != (b.View == nil) {
		t.Fatalf("%s: one search has a view, the other does not", label)
	}
	if a.View != nil {
		if a.View.Result.Outcome != b.View.Result.Outcome {
			t.Fatalf("%s: accepted outcomes %v vs %v", label, a.View.Result.Outcome, b.View.Result.Outcome)
		}
		if !trace.EventsEqual(a.View.Trace, b.View.Trace, false) {
			t.Fatalf("%s: accepted traces differ", label)
		}
	}
}

// TestParallelSearchDeterministic pins the worker-pool contract on an
// ODR-style cell (search for recorded outputs) and an ESD-style cell
// (search for a failure signature with shrinking): the Outcome is
// bit-identical for workers=1 and workers=N.
func TestParallelSearchDeterministic(t *testing.T) {
	// ODR cell: record a production run of msgdrop, then search for any
	// execution reproducing its outputs.
	odr := workload.MsgDrop()
	orig := odr.Exec(scenario.ExecOptions{Seed: odr.DefaultSeed})
	want := orig.Result.Outputs
	acceptODR := func(v *scenario.RunView) bool {
		got := v.Result.Outputs
		if len(got) != len(want) {
			return false
		}
		for name, ws := range want {
			gs := got[name]
			if len(gs) != len(ws) {
				return false
			}
			for i := range ws {
				if !ws[i].Equal(gs[i]) {
					return false
				}
			}
		}
		return true
	}

	// ESD cell: search for the overflow crash signature, shrunken
	// configurations first.
	esd := workload.Overflow()
	acceptESD := func(v *scenario.RunView) bool {
		failed, sig := esd.CheckFailure(v)
		return failed && sig == "overflow:segfault"
	}

	cases := map[string]struct {
		s      *scenario.Scenario
		accept func(*scenario.RunView) bool
		opts   Options
	}{
		"odr-msgdrop": {odr, acceptODR, Options{Budget: 120, BaseSeed: 7}},
		"esd-overflow": {esd, acceptESD, Options{
			Budget: 120, BaseSeed: 7,
			ShrinkParams: []scenario.Params{{"requests": 2}, {"requests": 4}},
		}},
		// Exhaustion: the contract must also hold when nothing accepts.
		"exhausted": {esd, func(*scenario.RunView) bool { return false }, Options{Budget: 37, BaseSeed: 3}},
	}
	for name, tc := range cases {
		seqOpts := tc.opts
		seqOpts.Workers = 1
		seq := Search(tc.s, tc.accept, seqOpts)
		for _, workers := range []int{2, 4, 7} {
			parOpts := tc.opts
			parOpts.Workers = workers
			par := Search(tc.s, tc.accept, parOpts)
			outcomesEqual(t, name, seq, par)
		}
	}
}

// TestSearchCanceled pins the cancellation contract for both pool shapes:
// a search whose context is canceled stops between candidates, reports
// Err, and never accepts.
func TestSearchCanceled(t *testing.T) {
	s := workload.Overflow()
	reject := func(*scenario.RunView) bool { return false }
	for _, workers := range []int{1, 4} {
		// Already canceled: no candidate may be accepted and Err must be
		// the context error.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		out := Search(s, reject, Options{Ctx: ctx, Budget: 40, BaseSeed: 5, Workers: workers})
		if out.Ok || out.Err != context.Canceled {
			t.Fatalf("workers=%d: ok=%v err=%v, want canceled", workers, out.Ok, out.Err)
		}
		if out.Note != "search canceled" {
			t.Fatalf("workers=%d: note = %q", workers, out.Note)
		}
	}

	// Cancel mid-search from the accept callback: the pool must drain and
	// stop well before the budget.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	out := Search(s, func(*scenario.RunView) bool {
		calls++
		if calls == 3 {
			cancel()
		}
		return false
	}, Options{Ctx: ctx, Budget: 500, BaseSeed: 5, Workers: 4})
	if out.Err != context.Canceled {
		t.Fatalf("mid-search cancel: err = %v", out.Err)
	}
	if out.Attempts >= 500 {
		t.Fatalf("canceled search ran the whole budget (%d attempts)", out.Attempts)
	}
}

// TestParallelSearchAcceptOrdering pins the accept-callback contract: the
// collector invokes accept in strictly increasing candidate order, exactly
// the indices the sequential search would have visited, so accept needs no
// locking even with many workers.
func TestParallelSearchAcceptOrdering(t *testing.T) {
	s := workload.Overflow()
	var order []int64
	accept := func(v *scenario.RunView) bool {
		// Candidate i runs with seed BaseSeed+i; recover i from the trace.
		order = append(order, v.Trace.Header.Seed-100)
		failed, _ := s.CheckFailure(v)
		return failed
	}
	out := Search(s, accept, Options{Budget: 60, BaseSeed: 100, Workers: 4})
	if !out.Ok {
		t.Fatalf("search failed: %s", out.Note)
	}
	if len(order) != out.Attempts {
		t.Fatalf("accept called %d times, attempts = %d", len(order), out.Attempts)
	}
	for i, idx := range order {
		if idx != int64(i) {
			t.Fatalf("accept call %d saw candidate %d; want strictly sequential order", i, idx)
		}
	}
}

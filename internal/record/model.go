// Package record implements the runtime recorders for every determinism
// model in the paper's spectrum (Fig. 1):
//
//   - perfect determinism: every event is persisted in full, including the
//     global scheduling order — the conservative baseline;
//   - value determinism (iDNA [5]): per-thread value logs — every value
//     read and written at every execution point, but no cross-thread
//     ordering;
//   - output determinism (ODR [2], lightest scheme): only the program's
//     outputs;
//   - failure determinism (ESD [12]): nothing at runtime — only the
//     failure signature extracted post-mortem from the bug report;
//   - debug determinism via RCSE (§3.1): the thread schedule plus full
//     fidelity for control-plane sites and trigger-selected regions (the
//     policy itself lives in the rcse package).
//
// A recorder is a vm.Observer: it sees every event, decides a fidelity
// level for it via its Policy, persists accordingly, and returns the
// virtual-cycle cost of that work — which is how recording overhead enters
// the execution's virtual time.
package record

import "fmt"

// Model identifies a determinism model.
type Model uint8

// Models, in the chronological order of Fig. 1.
const (
	Perfect Model = iota
	Value
	Output
	Failure
	DebugRCSE
)

var modelNames = [...]string{"perfect", "value", "output", "failure", "debug-rcse"}

// String returns the lower-case model name.
func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// ParseModel resolves a model name.
func ParseModel(s string) (Model, error) {
	for i, n := range modelNames {
		if n == s {
			return Model(i), nil
		}
	}
	return 0, fmt.Errorf("record: unknown model %q", s)
}

// AllModels lists every model, for sweeps.
func AllModels() []Model {
	return []Model{Perfect, Value, Output, Failure, DebugRCSE}
}

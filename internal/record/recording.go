package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"debugdet/internal/checkpoint"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Recording is the persisted artifact of one recorded production run: what
// the developer has available at debug time. Depending on the model it
// ranges from a complete event log (perfect) down to just a failure
// signature (failure determinism).
type Recording struct {
	Scenario string
	Model    Model
	Seed     int64 // scheduler seed of the original run (identity only)
	Params   scenario.Params

	// Full are the fully recorded events, in global order.
	Full []trace.Event
	// Sched is the schedule stream (thread per recorded decision).
	Sched []trace.ThreadID
	// SchedComplete reports whether Sched covers every event of the run,
	// i.e. whether it can drive a strict ReplayScheduler.
	SchedComplete bool

	// Failed and FailureSig describe the run's terminal condition as a
	// bug report would: the signature is produced by the scenario's
	// failure specification. Failure determinism records only this.
	Failed     bool
	FailureSig string

	// Streams maps stream object IDs to names, so replayers can resolve
	// recorded input/output events to streams before rebuilding the
	// machine.
	Streams []string

	// Checkpoints are the periodic VM state snapshots captured during the
	// recorded run (Options.CheckpointInterval; perfect-model recordings
	// only), in trace order. They power replay.Seek and replay.Segmented;
	// recordings without them — including every v1 format file — replay
	// front-to-back.
	Checkpoints []*vm.Snapshot
	// CheckpointBytes is the encoded volume of the checkpoints, kept
	// separate from LogBytes so the overhead tables can attribute it.
	CheckpointBytes int64

	// LogBytes is the recorded volume; Overhead the measured runtime
	// overhead ratio; BaseCycles/TotalCycles the run's virtual times;
	// EventCount the events observed.
	LogBytes    int64
	Overhead    float64
	BaseCycles  uint64
	TotalCycles uint64
	EventCount  uint64
}

// Capture finalizes a recording after the recorded run finished: it stores
// the recorder's streams and the run's failure identity and overhead
// numbers.
func Capture(s *scenario.Scenario, view *scenario.RunView, r *Recorder, model Model, seed int64, params scenario.Params) *Recording {
	failed, sig := s.CheckFailure(view)
	return &Recording{
		Scenario:      s.Name,
		Model:         model,
		Seed:          seed,
		Params:        params,
		Full:          r.full,
		Sched:         r.sched,
		SchedComplete: r.schedComplete,
		Streams:       view.Machine.StreamNames(),
		Failed:        failed,
		FailureSig:    sig,
		LogBytes:      r.bytes,
		Overhead:      view.Result.Overhead(),
		BaseCycles:    view.Result.BaseCycles(),
		TotalCycles:   view.Result.TotalCycles(),
		EventCount:    r.events,
	}
}

// StreamName resolves a stream object ID against the recorded table.
func (r *Recording) StreamName(id trace.ObjID) string {
	if int(id) < len(r.Streams) {
		return r.Streams[id]
	}
	return ""
}

// InputsByStream extracts the recorded input values per stream name, in
// recorded order. Only meaningful for streams the model recorded
// completely.
func (r *Recording) InputsByStream() map[string][]trace.Value {
	out := make(map[string][]trace.Value)
	for _, e := range r.Full {
		if e.Kind == trace.EvInput {
			name := r.StreamName(e.Obj)
			out[name] = append(out[name], e.Val)
		}
	}
	return out
}

// OutputsByStream extracts the recorded output values per stream name.
func (r *Recording) OutputsByStream() map[string][]trace.Value {
	out := make(map[string][]trace.Value)
	for _, e := range r.Full {
		if e.Kind == trace.EvOutput {
			name := r.StreamName(e.Obj)
			out[name] = append(out[name], e.Val)
		}
	}
	return out
}

// EventsByThread splits the fully recorded events per thread (the
// per-thread value logs value determinism replays against).
func (r *Recording) EventsByThread() map[trace.ThreadID][]trace.Event {
	out := make(map[trace.ThreadID][]trace.Event)
	for _, e := range r.Full {
		out[e.TID] = append(out[e.TID], e)
	}
	return out
}

// SegmentBounds returns the checkpoint-delimited segment starts of the
// recording: 0 plus every interior checkpoint sequence (a checkpoint
// landing exactly at the end of the event stream delimits nothing and is
// excluded). These are the [from, to) starts segmented replay and the
// flight-recorder store adapter partition the event stream on.
func (r *Recording) SegmentBounds() []uint64 {
	bounds := []uint64{0}
	for _, cp := range r.Checkpoints {
		if cp.Seq > 0 && cp.Seq < uint64(len(r.Full)) {
			bounds = append(bounds, cp.Seq)
		}
	}
	return bounds
}

// Summary renders the recording for logs and CLI output.
func (r *Recording) Summary() string {
	return fmt.Sprintf("%s/%s seed=%d events=%d full=%d sched=%d bytes=%d overhead=%.2fx failed=%v sig=%q",
		r.Scenario, r.Model, r.Seed, r.EventCount, len(r.Full), len(r.Sched),
		r.LogBytes, r.Overhead, r.Failed, r.FailureSig)
}

// Recording file format: magic, version, then a trace.Log (header carries
// scenario/model/params/labels; events are the Full stream), then the
// schedule stream as varint-delta thread IDs, then (v2) the checkpoint
// snapshot section. v1 files — written before checkpoints existed — load
// cleanly with no checkpoints; Save always writes the current version.
const (
	recMagic         = "DDRC"
	recVersion       = 2
	recVersionLegacy = 1
)

// ErrBadRecording reports a malformed recording file.
var ErrBadRecording = errors.New("record: malformed recording")

// Save writes the recording to w in the current format version.
func (r *Recording) Save(w io.Writer) error { return r.saveVersion(w, recVersion) }

// saveVersion writes the recording in a specific format version. Only the
// backward-compatibility tests write the legacy version; Save always
// writes the current one.
func (r *Recording) saveVersion(w io.Writer, ver byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(recMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(ver); err != nil {
		return err
	}
	l := trace.NewLog(trace.Header{
		Scenario: r.Scenario,
		Model:    r.Model.String(),
		Seed:     r.Seed,
		Params:   map[string]int64(r.Params),
		Labels: map[string]string{
			"failed":        fmt.Sprintf("%v", r.Failed),
			"failure_sig":   r.FailureSig,
			"sched_done":    fmt.Sprintf("%v", r.SchedComplete),
			"log_bytes":     fmt.Sprintf("%d", r.LogBytes),
			"overhead_mlli": fmt.Sprintf("%d", int64(r.Overhead*1000)),
			"base_cycles":   fmt.Sprintf("%d", r.BaseCycles),
			"total_cycles":  fmt.Sprintf("%d", r.TotalCycles),
			"event_count":   fmt.Sprintf("%d", r.EventCount),
			"ckpt_bytes":    fmt.Sprintf("%d", r.CheckpointBytes),
			"streams":       strings.Join(r.Streams, "\x1f"),
		},
	})
	l.Events = r.Full
	if _, err := trace.Encode(bw, l); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(r.Sched)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prev := int64(0)
	for _, tid := range r.Sched {
		n := binary.PutVarint(buf[:], int64(tid)-prev)
		prev = int64(tid)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if ver < recVersion {
		return nil
	}
	_, err := checkpoint.EncodeSnapshots(w, r.Checkpoints)
	return err
}

// Load reads a recording written by Save.
func Load(rd io.Reader) (*Recording, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecording, err)
	}
	if string(magic) != recMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadRecording)
	}
	ver, err := br.ReadByte()
	if err != nil || (ver != recVersion && ver != recVersionLegacy) {
		return nil, fmt.Errorf("%w: bad version", ErrBadRecording)
	}
	l, err := trace.Decode(br)
	if err != nil {
		return nil, err
	}
	model, err := ParseModel(l.Header.Model)
	if err != nil {
		return nil, err
	}
	r := &Recording{
		Scenario: l.Header.Scenario,
		Model:    model,
		Seed:     l.Header.Seed,
		Params:   scenario.Params(l.Header.Params),
		Full:     l.Events,
	}
	lab := l.Header.Labels
	r.Failed = lab["failed"] == "true"
	r.FailureSig = lab["failure_sig"]
	r.SchedComplete = lab["sched_done"] == "true"
	if lab["streams"] != "" {
		r.Streams = strings.Split(lab["streams"], "\x1f")
	}
	fmt.Sscanf(lab["log_bytes"], "%d", &r.LogBytes)
	var mil int64
	fmt.Sscanf(lab["overhead_mlli"], "%d", &mil)
	r.Overhead = float64(mil) / 1000
	fmt.Sscanf(lab["base_cycles"], "%d", &r.BaseCycles)
	fmt.Sscanf(lab["total_cycles"], "%d", &r.TotalCycles)
	fmt.Sscanf(lab["event_count"], "%d", &r.EventCount)
	fmt.Sscanf(lab["ckpt_bytes"], "%d", &r.CheckpointBytes)

	nSched, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: schedule count: %v", ErrBadRecording, err)
	}
	const maxSched = 1 << 30
	if nSched > maxSched {
		return nil, fmt.Errorf("%w: implausible schedule length %d", ErrBadRecording, nSched)
	}
	r.Sched = make([]trace.ThreadID, 0, nSched)
	prev := int64(0)
	for i := uint64(0); i < nSched; i++ {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: schedule entry %d: %v", ErrBadRecording, i, err)
		}
		prev += d
		r.Sched = append(r.Sched, trace.ThreadID(prev))
	}
	if ver >= recVersion {
		snaps, err := checkpoint.DecodeSnapshots(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRecording, err)
		}
		// The codec persists only the live-state portion of each snapshot;
		// the per-stream histories are projections of the event prefix and
		// are rebuilt from it here.
		if err := checkpoint.RehydrateStreams(snaps, r.Full); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRecording, err)
		}
		r.Checkpoints = snaps
	}
	return r, nil
}

// PolicyFactory builds a policy bound to a machine after the scenario's
// program has been constructed on it (so the policy can resolve stream and
// site identities), together with any companion observers the policy needs
// attached (online detectors feeding triggers). Stateless policies ignore
// the machine and return no observers.
type PolicyFactory func(m *vm.Machine) (Policy, []vm.Observer)

// FactoryFor wraps a stock policy in a constant factory.
func FactoryFor(p Policy) PolicyFactory {
	return func(*vm.Machine) (Policy, []vm.Observer) { return p, nil }
}

// Record runs the scenario once under the given model's stock policy and
// captures the recording. It is the one-call entry point for the
// non-RCSE models; RCSE recording is orchestrated by the core package
// because it needs a plane classification and triggers.
func Record(s *scenario.Scenario, model Model, seed int64, params scenario.Params, extra ...vm.Observer) (*Recording, *scenario.RunView, error) {
	policy := PolicyFor(model)
	if policy == nil {
		return nil, nil, fmt.Errorf("record: model %s needs an explicit policy", model)
	}
	return RecordWithPolicy(s, model, FactoryFor(policy), seed, params, extra...)
}

// RecordWithPolicy runs the scenario once with an explicit policy factory
// (used by RCSE) and captures the recording. Extra observers (triggers,
// monitors) are attached after the recorder.
func RecordWithPolicy(s *scenario.Scenario, model Model, factory PolicyFactory, seed int64, params scenario.Params, extra ...vm.Observer) (*Recording, *scenario.RunView, error) {
	p := s.DefaultParams.Clone(params)
	inputs := s.Inputs(seed, p)
	m := vm.New(vm.Config{
		Seed:         seed,
		Inputs:       inputs,
		CollectTrace: true,
	})
	main := s.Build(m, p)
	policy, companions := factory(m)
	rec := NewRecorder(m, policy)
	m.Attach(rec)
	for _, o := range companions {
		m.Attach(o)
	}
	for _, o := range extra {
		m.Attach(o)
	}
	res := m.Run(main)
	if res.Trace != nil {
		res.Trace.Header.Scenario = s.Name
		res.Trace.Header.Model = policy.Name()
		res.Trace.Header.Seed = seed
		res.Trace.Header.Params = map[string]int64(p)
	}
	view := &scenario.RunView{Machine: m, Result: res, Trace: res.Trace}
	rcd := Capture(s, view, rec, model, seed, p)
	return rcd, view, nil
}

package record

import (
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Level is the fidelity at which one event is persisted.
type Level uint8

// Levels.
const (
	// LevelSkip persists nothing.
	LevelSkip Level = iota
	// LevelSched persists only the scheduling decision (the thread ID):
	// one byte in the schedule stream.
	LevelSched
	// LevelFull persists the complete event including its value payload.
	LevelFull
)

// Policy decides the fidelity level for each event. Policies may be
// stateful (the RCSE policy dials levels up and down at runtime).
type Policy interface {
	Name() string
	Level(e *trace.Event) Level
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc struct {
	N string
	F func(e *trace.Event) Level
}

// Name implements Policy.
func (p PolicyFunc) Name() string { return p.N }

// Level implements Policy.
func (p PolicyFunc) Level(e *trace.Event) Level { return p.F(e) }

// fullEventBytes estimates the serialized size of a fully recorded event:
// kind, thread, site, object, sequence delta and payload.
func fullEventBytes(e *trace.Event) int { return 10 + e.Val.Size() }

// FullEventBytes is the serialized-size estimate of one fully recorded
// event — the unit both the stock full-level recorder and the flight
// recorder charge against the cost model, so the two record paths price
// identically and share one virtual schedule.
func FullEventBytes(e *trace.Event) int { return fullEventBytes(e) }

// Recorder persists an execution's events according to a policy. It
// implements vm.Observer; attach it to the machine before Run.
type Recorder struct {
	policy Policy
	cost   *vm.CostModel

	full  []trace.Event
	sched []trace.ThreadID

	// schedComplete stays true while every event so far has contributed
	// at least a schedule entry — the condition under which the schedule
	// stream can drive a ReplayScheduler.
	schedComplete bool

	events     uint64
	fullCount  uint64
	schedCount uint64
	bytes      int64
}

// NewRecorder builds a recorder pricing its work against the machine's
// cost model.
func NewRecorder(m *vm.Machine, policy Policy) *Recorder {
	return &Recorder{policy: policy, cost: m.Cost(), schedComplete: true}
}

// OnEvent implements vm.Observer.
func (r *Recorder) OnEvent(e *trace.Event) uint64 {
	r.events++
	switch r.policy.Level(e) {
	case LevelSkip:
		r.schedComplete = false
		return 0
	case LevelSched:
		r.sched = append(r.sched, e.TID)
		r.schedCount++
		r.bytes++
		return r.cost.RecordByteCycles
	default: // LevelFull
		r.full = append(r.full, *e)
		r.sched = append(r.sched, e.TID)
		r.fullCount++
		b := fullEventBytes(e)
		r.bytes += int64(b) + 1
		return r.cost.RecordCost(b)
	}
}

// Bytes returns the recorded log volume.
func (r *Recorder) Bytes() int64 { return r.bytes }

// Events returns how many events the recorder observed.
func (r *Recorder) Events() uint64 { return r.events }

// FullCount returns how many events were persisted in full.
func (r *Recorder) FullCount() uint64 { return r.fullCount }

// Perfect determinism: everything, in full.
func perfectPolicy() Policy {
	return PolicyFunc{N: "perfect", F: func(*trace.Event) Level { return LevelFull }}
}

// Value determinism: every value read or written at every execution point
// (loads, stores, sends, receives, inputs, outputs, probes), with no
// cross-thread ordering. Synchronization events are not persisted at all —
// replay must rediscover a consistent interleaving, which is exactly the
// extra work value-deterministic systems push to debug time.
func valuePolicy() Policy {
	return PolicyFunc{N: "value", F: func(e *trace.Event) Level {
		//lint:exhaustive-default the value policy persists exactly the payload-bearing kinds; skipping the rest is the scheme's definition (valueLogged mirrors this set)
		switch e.Kind {
		case trace.EvLoad, trace.EvStore, trace.EvSend, trace.EvRecv,
			trace.EvInput, trace.EvOutput, trace.EvObserve,
			trace.EvFail, trace.EvCrash,
			trace.EvDiskWrite, trace.EvDiskRead, trace.EvDiskFsync,
			trace.EvDiskBarrier, trace.EvDiskCrash:
			return LevelFull
		}
		return LevelSkip
	}}
}

// Output determinism, lightest ODR scheme: outputs only. Inputs, paths,
// schedules and race orders are all left to inference.
func outputPolicy() Policy {
	return PolicyFunc{N: "output", F: func(e *trace.Event) Level {
		//lint:exhaustive-default output determinism records outputs and failures only; every other kind is inferred at debug time
		switch e.Kind {
		case trace.EvOutput, trace.EvFail, trace.EvCrash:
			return LevelFull
		}
		return LevelSkip
	}}
}

// Failure determinism: nothing at runtime. The failure signature is
// extracted from the run result post-mortem (see Capture).
func failurePolicy() Policy {
	return PolicyFunc{N: "failure", F: func(*trace.Event) Level { return LevelSkip }}
}

// PolicyFor returns the stock policy for a model. DebugRCSE has no stock
// policy — it is built by the rcse package from a plane classification and
// triggers — so requesting it returns nil and the caller must supply one.
func PolicyFor(m Model) Policy {
	switch m {
	case Perfect:
		return perfectPolicy()
	case Value:
		return valuePolicy()
	case Output:
		return outputPolicy()
	case Failure:
		return failurePolicy()
	}
	return nil
}

package record

import (
	"bytes"
	"testing"

	"debugdet/internal/checkpoint"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

func TestModelNamesRoundTrip(t *testing.T) {
	for _, m := range AllModels() {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseModel(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseModel("nonsense"); err == nil {
		t.Fatal("ParseModel accepted nonsense")
	}
}

func TestStockPolicyLevels(t *testing.T) {
	cases := []struct {
		model Model
		kind  trace.EventKind
		want  Level
	}{
		{Perfect, trace.EvLoad, LevelFull},
		{Perfect, trace.EvLock, LevelFull},
		{Perfect, trace.EvYield, LevelFull},
		{Value, trace.EvLoad, LevelFull},
		{Value, trace.EvStore, LevelFull},
		{Value, trace.EvInput, LevelFull},
		{Value, trace.EvLock, LevelSkip},
		{Value, trace.EvYield, LevelSkip},
		{Value, trace.EvFail, LevelFull},
		{Output, trace.EvOutput, LevelFull},
		{Output, trace.EvInput, LevelSkip},
		{Output, trace.EvLoad, LevelSkip},
		{Output, trace.EvCrash, LevelFull},
		{Failure, trace.EvOutput, LevelSkip},
		{Failure, trace.EvFail, LevelSkip},
	}
	for _, c := range cases {
		p := PolicyFor(c.model)
		if p == nil {
			t.Fatalf("no stock policy for %v", c.model)
		}
		e := trace.Event{Kind: c.kind}
		if got := p.Level(&e); got != c.want {
			t.Errorf("%v policy level(%v) = %v, want %v", c.model, c.kind, got, c.want)
		}
	}
	if PolicyFor(DebugRCSE) != nil {
		t.Fatal("DebugRCSE must have no stock policy")
	}
}

func TestRecorderAccounting(t *testing.T) {
	m := vm.New(vm.Config{})
	rec := NewRecorder(m, PolicyFor(Perfect))
	e := trace.Event{Kind: trace.EvStore, Val: trace.Str("hello")}
	cost := rec.OnEvent(&e)
	if cost == 0 {
		t.Fatal("full recording charged no cost")
	}
	if rec.Bytes() == 0 || rec.Events() != 1 || rec.FullCount() != 1 {
		t.Fatalf("accounting: bytes=%d events=%d full=%d", rec.Bytes(), rec.Events(), rec.FullCount())
	}
	if !rec.schedComplete {
		t.Fatal("perfect recorder lost schedule completeness")
	}

	rec2 := NewRecorder(m, PolicyFor(Failure))
	if cost := rec2.OnEvent(&e); cost != 0 {
		t.Fatalf("skip-level recording charged %d", cost)
	}
	if rec2.schedComplete {
		t.Fatal("skipping recorder still claims a complete schedule")
	}
}

func TestSchedLevelCheaperThanFull(t *testing.T) {
	m := vm.New(vm.Config{})
	sched := NewRecorder(m, PolicyFunc{N: "s", F: func(*trace.Event) Level { return LevelSched }})
	full := NewRecorder(m, PolicyFunc{N: "f", F: func(*trace.Event) Level { return LevelFull }})
	e := trace.Event{Kind: trace.EvSend, Val: trace.Bytes_(make([]byte, 100))}
	cs := sched.OnEvent(&e)
	cf := full.OnEvent(&e)
	if cs >= cf {
		t.Fatalf("sched cost %d not below full cost %d", cs, cf)
	}
	if sched.Bytes() >= full.Bytes() {
		t.Fatalf("sched bytes %d not below full bytes %d", sched.Bytes(), full.Bytes())
	}
}

func TestRecordEndToEndOnSum(t *testing.T) {
	s := workload.Sum()
	rec, view, err := Record(s, Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Failed || rec.FailureSig != "sum:wrong-output" {
		t.Fatalf("recording failure identity: %v/%q", rec.Failed, rec.FailureSig)
	}
	if rec.EventCount != view.Result.Steps {
		t.Fatalf("event count %d != steps %d", rec.EventCount, view.Result.Steps)
	}
	if !rec.SchedComplete || len(rec.Sched) != int(rec.EventCount) {
		t.Fatalf("schedule: complete=%v len=%d events=%d", rec.SchedComplete, len(rec.Sched), rec.EventCount)
	}
	if rec.Overhead <= 1.0 {
		t.Fatalf("perfect recording overhead = %v, want > 1", rec.Overhead)
	}
	ins := rec.InputsByStream()
	if len(ins["in.a"]) != 1 || ins["in.a"][0].AsInt() != 2 {
		t.Fatalf("recorded inputs: %v", ins)
	}
	outs := rec.OutputsByStream()
	if len(outs["sum.out"]) != 1 || outs["sum.out"][0].AsInt() != 5 {
		t.Fatalf("recorded outputs: %v", outs)
	}
}

func TestOverheadOrderingAcrossModels(t *testing.T) {
	s := workload.Sum()
	get := func(m Model) float64 {
		rec, _, err := Record(s, m, s.DefaultSeed, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rec.Overhead
	}
	perfect, value, output, failure := get(Perfect), get(Value), get(Output), get(Failure)
	if !(perfect >= value && value > output && output >= failure && failure == 1.0) {
		t.Fatalf("overhead ordering violated: perfect=%v value=%v output=%v failure=%v",
			perfect, value, output, failure)
	}
}

func TestRecordingSaveLoadRoundTrip(t *testing.T) {
	s := workload.Overflow()
	rec, _, err := Record(s, Value, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Scenario != rec.Scenario || got.Model != rec.Model || got.Seed != rec.Seed {
		t.Fatalf("identity mismatch: %s vs %s", got.Summary(), rec.Summary())
	}
	if got.Failed != rec.Failed || got.FailureSig != rec.FailureSig {
		t.Fatal("failure identity did not round-trip")
	}
	if got.SchedComplete != rec.SchedComplete || got.LogBytes != rec.LogBytes ||
		got.EventCount != rec.EventCount {
		t.Fatal("metadata did not round-trip")
	}
	if len(got.Full) != len(rec.Full) {
		t.Fatalf("full events: %d vs %d", len(got.Full), len(rec.Full))
	}
	for i := range rec.Full {
		if !got.Full[i].Val.Equal(rec.Full[i].Val) || got.Full[i].Kind != rec.Full[i].Kind {
			t.Fatalf("event %d did not round-trip", i)
		}
	}
	if len(got.Sched) != len(rec.Sched) {
		t.Fatalf("schedule: %d vs %d", len(got.Sched), len(rec.Sched))
	}
	for i := range rec.Sched {
		if got.Sched[i] != rec.Sched[i] {
			t.Fatalf("sched[%d] = %d, want %d", i, got.Sched[i], rec.Sched[i])
		}
	}
	if len(got.Streams) != len(rec.Streams) {
		t.Fatalf("streams: %v vs %v", got.Streams, rec.Streams)
	}
	if got.Params.Get("requests", -1) != rec.Params.Get("requests", -2) {
		t.Fatal("params did not round-trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a recording"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("Load accepted empty input")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	s := workload.Sum()
	rec, _, err := Record(s, Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 10, len(full) / 2} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("Load accepted truncation at %d", cut)
		}
	}
}

func TestRecordingIsDeterministic(t *testing.T) {
	s := workload.Bank()
	r1, _, err := Record(s, Perfect, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Record(s, Perfect, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := r1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical runs produced different serialized recordings")
	}
}

func TestEventsByThreadPreservesOrder(t *testing.T) {
	s := workload.Bank()
	rec, _, err := Record(s, Value, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	byThread := rec.EventsByThread()
	for tid, evs := range byThread {
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("thread %d events out of order at %d", tid, i)
			}
		}
	}
}

// recordCheckpointedBank is the shared fixture for the format-compat
// tests: a perfect-model bank recording with checkpoints attached, the
// way core.RecordOnly builds one for Options.CheckpointInterval.
func recordCheckpointedBank(t *testing.T) *Recording {
	t.Helper()
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	var w *checkpoint.Writer
	factory := func(m *vm.Machine) (Policy, []vm.Observer) {
		w = checkpoint.NewWriter(m, 64)
		return PolicyFor(Perfect), []vm.Observer{w}
	}
	rec, _, err := RecordWithPolicy(s, Perfect, factory, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Checkpoints = w.Snapshots()
	rec.CheckpointBytes = w.Bytes()
	return rec
}

// TestLoadLegacyV1 pins backward compatibility: a recording written by the
// previous codec version (v1, before checkpoints existed) loads cleanly
// with no checkpoints — seek then falls back to replay-from-start.
func TestLoadLegacyV1(t *testing.T) {
	rec := recordCheckpointedBank(t)
	var buf bytes.Buffer
	if err := rec.saveVersion(&buf, recVersionLegacy); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 recording failed to load: %v", err)
	}
	if len(loaded.Checkpoints) != 0 {
		t.Fatalf("v1 recording loaded %d checkpoints", len(loaded.Checkpoints))
	}
	if loaded.Scenario != rec.Scenario || loaded.EventCount != rec.EventCount ||
		len(loaded.Full) != len(rec.Full) || len(loaded.Sched) != len(rec.Sched) {
		t.Fatalf("v1 load lost data: %s vs %s", loaded.Summary(), rec.Summary())
	}
}

// TestCheckpointSaveLoadRoundTrip pins the v2 persistence of checkpoints:
// snapshots survive save/load exactly, including the rehydrated stream
// histories.
func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	rec := recordCheckpointedBank(t)
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CheckpointBytes != rec.CheckpointBytes {
		t.Errorf("checkpoint bytes %d -> %d", rec.CheckpointBytes, loaded.CheckpointBytes)
	}
	if len(loaded.Checkpoints) != len(rec.Checkpoints) {
		t.Fatalf("checkpoints %d -> %d", len(rec.Checkpoints), len(loaded.Checkpoints))
	}
	for i := range rec.Checkpoints {
		if err := loaded.Checkpoints[i].EqualState(rec.Checkpoints[i]); err != nil {
			t.Fatalf("checkpoint %d differs after round-trip: %v", i, err)
		}
	}
}

// TestLoadRejectsCheckpointTruncation extends the truncation contract to
// the v2 checkpoint section: every strict prefix errors, never panics.
func TestLoadRejectsCheckpointTruncation(t *testing.T) {
	rec := recordCheckpointedBank(t)
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", cut, len(full))
		}
	}
}

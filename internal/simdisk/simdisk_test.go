package simdisk

import (
	"bytes"
	"testing"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{7},
		{1, 2, 3},
		{-1, 1 << 62, 0, 42},
	}
	for _, fields := range cases {
		b := Encode(fields...)
		if len(b) != fieldBytes*(len(fields)+1) {
			t.Fatalf("Encode(%v) = %d bytes, want %d", fields, len(b), fieldBytes*(len(fields)+1))
		}
		got, ok := Decode(b)
		if !ok {
			t.Fatalf("Decode rejected a whole record %v", fields)
		}
		if len(got) != len(fields) {
			t.Fatalf("Decode(%v) = %v", fields, got)
		}
		for i := range fields {
			if got[i] != fields[i] {
				t.Fatalf("Decode(%v)[%d] = %d", fields, i, got[i])
			}
		}
	}
}

// TestDecodeRejectsEveryTruncation: a record torn at any byte boundary —
// the VM's torn-write fault model — must fail the checksum path.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	b := Encode(3, 1000, 77, 512)
	for n := 0; n < len(b); n++ {
		if _, ok := Decode(b[:n]); ok {
			t.Fatalf("Decode accepted a %d-byte prefix of a %d-byte record", n, len(b))
		}
	}
}

func TestDecodeRejectsBitFlip(t *testing.T) {
	b := Encode(3, 1000, 77)
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x40
		if _, ok := Decode(mut); ok {
			t.Fatalf("Decode accepted a record with byte %d flipped", i)
		}
	}
}

// TestDecodeLooseAgreesOnWholeRecords: the buggy path is only buggy on
// torn input; on whole records it must agree with Decode, or the fixed
// and buggy recovery paths would diverge even without a fault.
func TestDecodeLooseAgreesOnWholeRecords(t *testing.T) {
	fields := []int64{2, 9, 4, 1}
	b := Encode(fields...)
	loose := DecodeLoose(b)
	strict, _ := Decode(b)
	if len(loose) != len(strict) {
		t.Fatalf("loose=%v strict=%v", loose, strict)
	}
	for i := range strict {
		if loose[i] != strict[i] {
			t.Fatalf("loose[%d]=%d strict[%d]=%d", i, loose[i], i, strict[i])
		}
	}
}

// TestDecodeLooseOnTornRecord: tearing a 4-field record at byte 28 (inside
// the fourth field) pads to 32 bytes, drops the presumed-checksum word, and
// yields the first three fields — the zero-default val installation the
// disk-tornwal scenario turns into visible corruption.
func TestDecodeLooseOnTornRecord(t *testing.T) {
	b := Encode(0, 1, 2, 513) // put-style record: tag, key, ver, val
	torn := b[:28]
	got := DecodeLoose(torn)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("DecodeLoose(torn 28B) = %v, want [0 1 2]", got)
	}
	if out := DecodeLoose(nil); len(out) != 0 {
		t.Fatalf("DecodeLoose(nil) = %v, want empty", out)
	}
	if out := DecodeLoose(b[:3]); len(out) != 0 {
		t.Fatalf("DecodeLoose(3B) = %v, want empty (single padded word is the trailer)", out)
	}
}

// TestAppendScanThroughMachine: Append/Scan are real VM disk operations —
// records survive an fsync+crash, torn tails come back as raw bytes, and
// the scan terminates on the end-of-log Nil.
func TestAppendScanThroughMachine(t *testing.T) {
	m := vm.New(vm.Config{Seed: 1, CollectTrace: true})
	d := m.NewDisk("wal", vm.DiskFaults{TornBytes: 28})
	s := m.Site("test.simdisk")
	var scanned [][]byte
	res := m.Run(func(th *vm.Thread) {
		Append(th, s, d, 0, 1, 1, 100)
		th.DiskFsync(s, d)
		Append(th, s, d, 0, 1, 2, 200) // volatile: torn to 28 bytes at crash
		Append(th, s, d, 0, 2, 1, 300) // volatile: dropped at crash
		th.DiskCrash(s, d)
		scanned = Scan(th, s, d)
	})
	if res.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if len(scanned) != 2 {
		t.Fatalf("scanned %d records, want 2 (durable + torn)", len(scanned))
	}
	f, ok := Decode(scanned[0])
	if !ok || len(f) != 4 || f[3] != 100 {
		t.Fatalf("durable record decoded to %v (ok=%v)", f, ok)
	}
	if len(scanned[1]) != 28 {
		t.Fatalf("torn record is %d bytes, want 28", len(scanned[1]))
	}
	if _, ok := Decode(scanned[1]); ok {
		t.Fatal("Decode accepted the torn record")
	}
	whole := Encode(0, 1, 2, 200)
	if !bytes.Equal(scanned[1], whole[:28]) {
		t.Fatal("torn record is not a byte prefix of the whole record")
	}
	reads := 0
	for _, e := range res.Trace.Events {
		if e.Kind == trace.EvDiskRead {
			reads++
		}
	}
	if reads != 3 { // two records + the Nil terminator
		t.Fatalf("scan issued %d DiskRead ops, want 3", reads)
	}
}

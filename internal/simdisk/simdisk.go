// Package simdisk is the programmer-facing layer over the VM's simulated
// disk resource (vm.NewDisk and the Thread disk operations): write-ahead-log
// record framing with a checksum trailer, and scan helpers recovery code
// uses to rebuild state after a crash.
//
// The framing exists to make torn writes *detectable*: the VM's torn-write
// fault truncates a record to a byte prefix, and only a recovery path that
// verifies the trailer can tell a torn record from a whole one. Decode is
// that careful path; DecodeLoose is the buggy one — it pads a short record
// with zeros and skips the checksum, deterministically turning a torn tail
// into garbage fields, which is exactly the defect the disk-tornwal
// scenario injects.
//
// Records are sequences of int64 fields, encoded big-endian fixed-width so
// a truncation point is always mid-field or between fields, never
// ambiguous.
package simdisk

import (
	"encoding/binary"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// fieldBytes is the encoded width of one record field; the checksum
// trailer is one more field-width word.
const fieldBytes = 8

// Encode frames the fields as one WAL record: each field big-endian in 8
// bytes, followed by an 8-byte FNV-1a checksum of the field bytes.
func Encode(fields ...int64) []byte {
	b := make([]byte, fieldBytes*(len(fields)+1))
	for i, f := range fields {
		binary.BigEndian.PutUint64(b[fieldBytes*i:], uint64(f))
	}
	binary.BigEndian.PutUint64(b[fieldBytes*len(fields):], checksum(b[:fieldBytes*len(fields)]))
	return b
}

// Decode unframes a record, verifying its checksum trailer. ok is false
// for torn, truncated or otherwise corrupt records — the signal a correct
// recovery path uses to stop at the last good record.
func Decode(b []byte) (fields []int64, ok bool) {
	if len(b) < fieldBytes || len(b)%fieldBytes != 0 {
		return nil, false
	}
	n := len(b)/fieldBytes - 1
	if checksum(b[:fieldBytes*n]) != binary.BigEndian.Uint64(b[fieldBytes*n:]) {
		return nil, false
	}
	fields = make([]int64, n)
	for i := range fields {
		fields[i] = int64(binary.BigEndian.Uint64(b[fieldBytes*i:]))
	}
	return fields, true
}

// DecodeLoose unframes a record without verifying anything: short records
// are zero-padded to whole fields and the last word is discarded as the
// presumed checksum. On a whole record it agrees with Decode; on a torn
// record it returns deterministic garbage. It exists to model recovery
// code that trusts the device — the injected defect of the torn-WAL
// scenario — and must never be used where corruption matters.
func DecodeLoose(b []byte) []int64 {
	padded := b
	if len(b)%fieldBytes != 0 {
		padded = make([]byte, (len(b)/fieldBytes+1)*fieldBytes)
		copy(padded, b)
	}
	words := len(padded) / fieldBytes
	n := words - 1 // drop the trailer word
	if n < 0 {
		n = 0
	}
	fields := make([]int64, n)
	for i := range fields {
		fields[i] = int64(binary.BigEndian.Uint64(padded[fieldBytes*i:]))
	}
	return fields
}

// checksum is 64-bit FNV-1a over the field bytes.
func checksum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Append frames the fields and writes them as one record on the disk. The
// write is volatile until an fsync or barrier.
func Append(t *vm.Thread, site trace.SiteID, disk trace.ObjID, fields ...int64) {
	t.DiskWrite(site, disk, trace.Bytes_(Encode(fields...)))
}

// Scan reads every record off the disk, oldest first, until the
// end-of-log Nil. Raw record bytes are returned — possibly torn, if a
// crash tore the tail — for the caller's Decode/DecodeLoose to interpret.
// Every read is a VM operation, so a recovery scan is replayed faithfully
// under every determinism model.
func Scan(t *vm.Thread, site trace.SiteID, disk trace.ObjID) [][]byte {
	var recs [][]byte
	for i := 0; ; i++ {
		v := t.DiskRead(site, disk, i)
		if v.IsNil() {
			return recs
		}
		recs = append(recs, v.Bytes)
	}
}

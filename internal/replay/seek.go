package replay

import (
	"errors"
	"fmt"

	"debugdet/internal/flightrec"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/vm"
)

// Checkpointed seek (DESIGN.md §5): position a replay at an arbitrary
// event of a recording without re-executing the whole prefix. The nearest
// checkpoint at or before the target is restored (vm.Restore: per-thread
// feed replay plus state install — no scheduling), and only the remainder
// — at most one checkpoint interval — is replayed under the forced
// schedule. The suffix trace a seeked replay produces is bit-identical to
// the corresponding slice of a full sequential replay; the seek
// equivalence tests pin that for every corpus scenario.
//
// Seek operates over the flightrec.Store interface, so it works the same
// on an in-memory recording (via flightrec.NewRecordingStore) and on a
// flight recorder's spill directory (flightrec.Open) — SeekStore is the
// store-backed entry point, Seek the recording-shaped convenience.

// ErrSeekUnsupported reports a recording that checkpointed seek cannot
// operate on: seek needs the complete schedule and every event value,
// which only perfect-determinism recordings persist.
var ErrSeekUnsupported = errors.New("replay: seek requires a perfect recording with a complete schedule")

// SeekSession is a replay positioned part-way through a recording. The
// underlying machine is paused and inspectable (threads, cells, channels,
// streams); Continue steps it forward, RunToEnd completes the execution
// and Close abandons it. Sessions are not safe for concurrent use.
type SeekSession struct {
	s    *scenario.Scenario
	meta flightrec.Meta

	// Machine is the paused replay machine. Its trace collects events
	// from SuffixFrom onward.
	Machine *vm.Machine
	// SuffixFrom is the sequence number of the first event the session's
	// machine emits: the checkpoint it was restored from, or 0 when the
	// session replayed from the start.
	SuffixFrom uint64
	// FromCheckpoint reports whether a checkpoint was used.
	FromCheckpoint bool
	// ReplaySteps counts the scheduled events executed by this session so
	// far — the seek-latency denominator checkpoints shrink.
	ReplaySteps uint64

	view *scenario.RunView
	ok   bool
}

// replayConfig assembles the machine configuration every replay machine
// of a perfect store shares: the forced schedule suffix, the recorded
// inputs, and the scenario build parameterized as recorded. Both shared
// pieces come from the store, which caches them — segmented replay
// restores many machines of one store, and the recorded-input map and
// schedule are immutable and safe to share.
func replayConfig(s *scenario.Scenario, st flightrec.Store, meta flightrec.Meta, o Options, schedFrom uint64) (vm.Config, func(*vm.Machine) func(*vm.Thread), error) {
	p := s.DefaultParams.Clone(meta.Params)
	sched, err := st.Sched(schedFrom)
	if err != nil {
		return vm.Config{}, nil, err
	}
	inputs, err := st.Inputs()
	if err != nil {
		return vm.Config{}, nil, err
	}
	cfg := vm.Config{
		Seed:         meta.Seed,
		Scheduler:    vm.NewReplayScheduler(sched),
		Inputs:       inputs,
		MaxSteps:     o.MaxSteps,
		CollectTrace: true,
		RelaxTime:    true,
	}
	setup := func(m *vm.Machine) func(*vm.Thread) {
		return s.Build(m, p)
	}
	return cfg, setup, nil
}

// recordedInputs builds the forced input source of a perfect recording.
func recordedInputs(rec *record.Recording) vm.InputSource {
	return &vm.MapInputs{Values: rec.InputsByStream(), Base: vm.ZeroInputs}
}

// Seek opens a session positioned at target: the execution state is that
// of the recorded run after target events, reached from the nearest
// checkpoint at or before target. A recording without a usable checkpoint
// (none captured, or none early enough) falls back to replaying from the
// start — same session, full-prefix cost. Targets beyond the end of the
// recording position at the end.
func Seek(s *scenario.Scenario, rec *record.Recording, target uint64, o Options) (*SeekSession, error) {
	return SeekStore(s, flightrec.NewRecordingStore(rec), target, o)
}

// SeekStore opens a seek session over a segment store — an in-memory
// recording adapter or a flight recorder's spill directory. For a spill
// directory under retention, any target at or past the first retained
// boundary snapshot restores as usual; earlier targets fall back to a
// full replay from the start, which the store's feed log always supports.
func SeekStore(s *scenario.Scenario, st flightrec.Store, target uint64, o Options) (*SeekSession, error) {
	meta := st.Meta()
	if meta.Model != record.Perfect || !meta.SchedComplete {
		return nil, ErrSeekUnsupported
	}
	sess := &SeekSession{s: s, meta: meta}
	cp, err := st.BestSnapshot(target)
	if err != nil {
		return nil, err
	}
	if cp != nil {
		feeds, err := st.Feeds(cp)
		if err != nil {
			return nil, err
		}
		cfg, setup, err := replayConfig(s, st, meta, o, cp.SchedPos)
		if err != nil {
			return nil, err
		}
		m, err := vm.Restore(cfg, setup, cp, feeds)
		if err != nil {
			return nil, fmt.Errorf("replay: seek restore at %d: %w", cp.Seq, err)
		}
		sess.Machine = m
		sess.SuffixFrom = cp.Seq
		sess.FromCheckpoint = true
	} else {
		cfg, setup, err := replayConfig(s, st, meta, o, 0)
		if err != nil {
			return nil, err
		}
		m := vm.New(cfg)
		main := setup(m)
		m.Start(main)
		sess.Machine = m
	}
	sess.Continue(target)
	return sess, nil
}

// Pos returns the session's position: events applied so far.
func (k *SeekSession) Pos() uint64 { return k.Machine.Seq() }

// Done reports whether the replayed execution has completed.
func (k *SeekSession) Done() bool { return k.Machine.Completed() }

// Continue advances the session to the given event number (no-op when the
// session is already there or past it) and reports whether the execution
// completed.
func (k *SeekSession) Continue(to uint64) bool {
	if k.view != nil {
		return true
	}
	before := k.Machine.Seq()
	if to <= before {
		return k.Machine.Completed()
	}
	done := k.Machine.Continue(to)
	k.ReplaySteps += k.Machine.Seq() - before
	return done
}

// RunToEnd completes the replay and returns the finished view. The view's
// trace holds the suffix events from SuffixFrom onward; its outputs,
// inputs-used and final state describe the whole execution (prefix state
// came from the checkpoint). ok reports the replay's acceptance condition:
// no divergence, and the recording's failure identity reproduced.
func (k *SeekSession) RunToEnd() (view *scenario.RunView, ok bool) {
	if k.view != nil {
		return k.view, k.ok
	}
	before := k.Machine.Seq()
	k.Machine.Continue(0)
	k.ReplaySteps += k.Machine.Seq() - before
	res := k.Machine.Finish()
	k.view = &scenario.RunView{Machine: k.Machine, Result: res, Trace: res.Trace}
	k.ok = res.Outcome != vm.OutcomeDiverged && matchesTerminal(k.s, k.meta.Failed, k.meta.FailureSig, k.view)
	return k.view, k.ok
}

// Close abandons the session, releasing the machine's threads. It is safe
// to call after RunToEnd (a no-op) and must be called otherwise.
func (k *SeekSession) Close() {
	if k.view == nil {
		res := k.Machine.Finish()
		k.view = &scenario.RunView{Machine: k.Machine, Result: res, Trace: res.Trace}
	}
}

package replay

import (
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// stagedInputs is the input source for value-deterministic replay. The
// guided scheduler stages the logged value for each Input operation just
// before the machine applies it; Next returns the staged value for the
// stream. Staging is idempotent between operations, so machine peeks are
// harmless.
type stagedInputs struct {
	staged map[string]trace.Value
	base   vm.InputSource
}

func newStagedInputs(base vm.InputSource) *stagedInputs {
	return &stagedInputs{staged: make(map[string]trace.Value), base: base}
}

// Next implements vm.InputSource.
func (s *stagedInputs) Next(stream string, index int) trace.Value {
	if v, ok := s.staged[stream]; ok {
		return v
	}
	return s.base.Next(stream, index)
}

// valueLogged mirrors the value recorder's policy: the event kinds present
// in per-thread logs.
func valueLogged(k trace.EventKind) bool {
	//lint:exhaustive-default mirrors the value recorder's policy set exactly; unlisted kinds are unlogged by design
	switch k {
	case trace.EvLoad, trace.EvStore, trace.EvSend, trace.EvRecv,
		trace.EvInput, trace.EvOutput, trace.EvObserve,
		trace.EvFail, trace.EvCrash,
		trace.EvDiskWrite, trace.EvDiskRead, trace.EvDiskFsync,
		trace.EvDiskBarrier, trace.EvDiskCrash:
		return true
	}
	return false
}

// valueGuidedScheduler rebuilds an interleaving consistent with the
// recorded per-thread value logs. The strategy is gated: the recording's
// value events are reproduced in their recorded order (the logs are kept
// with their global indexes), and between them threads may only perform
// unlogged operations — synchronization, yields, sleeps — which cannot
// change any logged value. By induction the machine state seen by each
// logged event equals the original, so every load, receive and input
// yields the recorded value: exactly the value-determinism guarantee. The
// replay may still interleave the unlogged operations differently than the
// original did, which is the cross-CPU ordering iDNA-style systems do not
// promise to reproduce.
type valueGuidedScheduler struct {
	logs map[trace.ThreadID][]trace.Event
	gidx map[trace.ThreadID][]int // recording-order index per logged event
	pos  map[trace.ThreadID]int
	next map[trace.ThreadID]int // global index of thread's next wanted event

	inputs  *stagedInputs
	streams []string // stream names by ObjID, from the recording

	rr       int // rotation for free-move fairness
	consumed int
	total    int
	// deadEnd records that matching became impossible (true divergence).
	deadEnd bool
}

func newValueGuidedScheduler(rec *record.Recording, inputs *stagedInputs) *valueGuidedScheduler {
	logs := make(map[trace.ThreadID][]trace.Event)
	gidx := make(map[trace.ThreadID][]int)
	for i, e := range rec.Full {
		logs[e.TID] = append(logs[e.TID], e)
		gidx[e.TID] = append(gidx[e.TID], i)
	}
	s := &valueGuidedScheduler{
		logs:    logs,
		gidx:    gidx,
		pos:     make(map[trace.ThreadID]int),
		next:    make(map[trace.ThreadID]int),
		inputs:  inputs,
		streams: rec.Streams,
		total:   len(rec.Full),
	}
	//lint:nondet-ok per-key map write guarded by a per-key predicate; order cannot be observed
	for tid, idx := range gidx {
		if len(idx) > 0 {
			s.next[tid] = idx[0]
		}
	}
	return s
}

// Name implements vm.Scheduler.
func (s *valueGuidedScheduler) Name() string { return "value-guided" }

// Done reports whether every logged event was matched.
func (s *valueGuidedScheduler) Done() bool { return s.consumed == s.total }

// wantedThread returns the thread owning the globally next unconsumed
// logged event.
func (s *valueGuidedScheduler) wantedThread() (trace.ThreadID, bool) {
	best := trace.ThreadID(-1)
	bestIdx := -1
	//lint:nondet-ok min-reduction over distinct global indexes (one owner per index); the minimum is unique
	for tid, idx := range s.next {
		if bestIdx == -1 || idx < bestIdx {
			best, bestIdx = tid, idx
		}
	}
	return best, bestIdx >= 0
}

// advance consumes thread tid's next logged event.
func (s *valueGuidedScheduler) advance(tid trace.ThreadID) {
	i := s.pos[tid]
	s.pos[tid] = i + 1
	s.consumed++
	if i+1 < len(s.gidx[tid]) {
		s.next[tid] = s.gidx[tid][i+1]
	} else {
		delete(s.next, tid)
	}
}

// Pick implements vm.Scheduler.
func (s *valueGuidedScheduler) Pick(m *vm.Machine, enabled []*vm.Thread) *vm.Thread {
	want, more := s.wantedThread()
	if !more {
		// Horizon passed: let the program run out naturally.
		s.rr++
		return enabled[s.rr%len(enabled)]
	}

	// If the wanted thread is enabled, it must either match its log entry
	// or be sitting at an unlogged op on the way to it.
	for _, t := range enabled {
		if t.ID() != want {
			continue
		}
		p, ok := m.PeekEvent(t)
		if !ok {
			break
		}
		if !valueLogged(p.Kind) {
			// The wanted thread first needs a free move of its own.
			return t
		}
		wantEv := s.logs[want][s.pos[want]]
		if wantEv.Kind != p.Kind || wantEv.Site != p.Site || wantEv.Obj != p.Obj {
			s.deadEnd = true
			return nil
		}
		if p.Kind != trace.EvInput && p.ValKnown && !p.Val.Equal(wantEv.Val) {
			s.deadEnd = true
			return nil
		}
		if wantEv.Kind == trace.EvInput {
			s.inputs.staged[s.streamName(wantEv.Obj)] = wantEv.Val
		}
		s.advance(want)
		return t
	}

	// The wanted thread is blocked (e.g. on a lock) or not yet spawned:
	// run free moves — threads whose pending op is unlogged — in rotation
	// until it wakes. Lock acquisitions are deferred behind every other
	// free move: an eager out-of-order acquire can manufacture a lock
	// cycle the original execution avoided and dead-end the replay in a
	// spurious deadlock (found by the progen differential oracles), while
	// releases, yields and spawns only ever unblock progress. Acquires
	// still run when they are the only move left — the wanted thread may
	// be waiting on a channel value from inside that critical section.
	var frees, acquires []*vm.Thread
	for _, t := range enabled {
		p, ok := m.PeekEvent(t)
		if !ok || valueLogged(p.Kind) {
			continue
		}
		if p.Kind == trace.EvLock {
			acquires = append(acquires, t)
		} else {
			frees = append(frees, t)
		}
	}
	if len(frees) > 0 {
		s.rr++
		return frees[s.rr%len(frees)]
	}
	if len(acquires) > 0 {
		s.rr++
		return acquires[s.rr%len(acquires)]
	}
	s.deadEnd = true
	return nil
}

func (s *valueGuidedScheduler) streamName(id trace.ObjID) string {
	if int(id) < len(s.streams) {
		return s.streams[id]
	}
	return ""
}

// replayValue replays a value-deterministic recording with gated guided
// scheduling. The replay is deterministic; a single attempt either
// consumes the whole log or reveals a genuine divergence.
func replayValue(s *scenario.Scenario, rec *record.Recording, o Options) *Result {
	res := &Result{Note: "value-guided gated scheduling"}
	inputs := newStagedInputs(s.SearchSource(o.SearchSeed, s.DefaultParams.Clone(rec.Params)))
	sched := newValueGuidedScheduler(rec, inputs)
	view := s.Exec(scenario.ExecOptions{
		Seed:      rec.Seed,
		Params:    rec.Params,
		Scheduler: sched,
		Inputs:    inputs,
		MaxSteps:  o.MaxSteps,
		RelaxTime: true,
	})
	res.Attempts = 1
	res.WorkCycles = view.Result.Cycles
	res.WorkSteps = view.Result.Steps
	res.View = view
	if sched.Done() && view.Result.Outcome != vm.OutcomeDiverged &&
		replayMatchesTerminal(s, rec, view) {
		res.Ok = true
	}
	return res
}

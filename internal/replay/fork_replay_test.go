package replay

import (
	"strings"
	"testing"

	"debugdet/internal/rcse"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// recordRCSE captures a debug-rcse recording of the scenario's default
// run: control streams forced, schedule complete, data plane re-drawn at
// replay time (what core.RecordOnly assembles, minus code selection).
func recordRCSE(t *testing.T, name string) (*scenario.Scenario, *record.Recording) {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rcse.Config{ControlStreams: s.ControlStreams}
	factory := func(m *vm.Machine) (record.Policy, []vm.Observer) {
		setup := cfg.Build(m)
		return setup.Policy, setup.Observers
	}
	rec, _, err := record.RecordWithPolicy(s, record.DebugRCSE, factory, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

// TestForkedReplayMatchesScratch pins the fork-equivalence contract at
// the replay layer: for every search-shaped model (debug-rcse, output,
// failure), Replay with Fork on accepts the identical result — same Ok,
// Attempts and Note, bit-identical view — as the from-scratch replay,
// while never executing more events.
func TestForkedReplayMatchesScratch(t *testing.T) {
	cases := []struct {
		scenario string
		model    record.Model
	}{
		{"bank", record.DebugRCSE},
		{"sum", record.Output},
		{"overflow", record.Failure},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario+"/"+tc.model.String(), func(t *testing.T) {
			var s *scenario.Scenario
			var rec *record.Recording
			if tc.model == record.DebugRCSE {
				s, rec = recordRCSE(t, tc.scenario)
			} else {
				s, rec, _ = recordScenario(t, tc.scenario, tc.model)
			}
			base := Replay(s, rec, Options{Budget: 120, Workers: 1})
			for _, fo := range []Options{
				{Budget: 120, Workers: 1, Fork: true},
				{Budget: 120, Workers: 1, Fork: true, ForkInterval: 64},
				{Budget: 120, Workers: 4, Fork: true},
			} {
				fork := Replay(s, rec, fo)
				if base.Ok != fork.Ok || base.Attempts != fork.Attempts || base.Note != fork.Note {
					t.Fatalf("forked replay diverges: ok=%v attempts=%d note=%q vs ok=%v attempts=%d note=%q",
						fork.Ok, fork.Attempts, fork.Note, base.Ok, base.Attempts, base.Note)
				}
				if (base.View == nil) != (fork.View == nil) {
					t.Fatal("one replay has a view, the other does not")
				}
				if base.View != nil && !trace.EventsEqual(base.View.Trace, fork.View.Trace, false) {
					t.Fatal("forked replay produced a different event sequence")
				}
				if fork.WorkSteps > base.WorkSteps {
					t.Fatalf("forked replay executed more steps (%d) than scratch (%d)",
						fork.WorkSteps, base.WorkSteps)
				}
			}
		})
	}
}

// TestReplayValidatesOptions pins Options.Validate wiring: out-of-domain
// knobs surface as a clean error result from every model dispatch,
// before any candidate executes.
func TestReplayValidatesOptions(t *testing.T) {
	s, rec := recordRCSE(t, "bank")
	for name, o := range map[string]Options{
		"workers":       {Workers: -1},
		"budget":        {Budget: -3},
		"fork-interval": {Fork: true, ForkInterval: -1},
		"fork-paths":    {Fork: true, ForkPaths: -9},
	} {
		res := Replay(s, rec, o)
		if res.Err == nil || res.Ok || res.View != nil || res.Attempts != 0 {
			t.Fatalf("%s: invalid options not rejected: err=%v ok=%v attempts=%d",
				name, res.Err, res.Ok, res.Attempts)
		}
		if res.Note != "invalid options" {
			t.Fatalf("%s: note = %q", name, res.Note)
		}
		if !strings.Contains(res.Err.Error(), "infer:") {
			t.Fatalf("%s: error %q does not identify the source", name, res.Err)
		}
	}
}

package replay

import (
	"testing"

	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/workload"
)

// recordScenario is a helper: record the named scenario's default failing
// run under a model.
func recordScenario(t *testing.T, name string, model record.Model) (*scenario.Scenario, *record.Recording, *scenario.RunView) {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	rec, view, err := record.Record(s, model, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec, view
}

func TestPerfectReplayAllScenarios(t *testing.T) {
	for _, name := range []string{"sum", "overflow", "msgdrop", "hyperkv-dataloss", "bank", "deadlock"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, rec, orig := recordScenario(t, name, record.Perfect)
			res := Replay(s, rec, Options{})
			if !res.Ok {
				t.Fatalf("replay not ok: %s", res.Note)
			}
			if res.Attempts != 1 {
				t.Fatalf("perfect replay took %d attempts", res.Attempts)
			}
			// The replay must be value-for-value identical to the
			// original (ignoring virtual time, which recording perturbs
			// only in the separate accounting).
			if !trace.EventsEqual(orig.Trace, res.View.Trace, true) {
				t.Fatal("perfect replay produced a different event sequence")
			}
		})
	}
}

func TestValueReplayReproducesFailures(t *testing.T) {
	for _, name := range []string{"sum", "overflow", "msgdrop", "hyperkv-dataloss", "bank"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, rec, orig := recordScenario(t, name, record.Value)
			res := Replay(s, rec, Options{})
			if !res.Ok {
				t.Fatalf("value replay not ok: %s", res.Note)
			}
			// Per-thread value sequences must match exactly.
			origFailed, origSig := s.CheckFailure(orig)
			repFailed, repSig := s.CheckFailure(res.View)
			if origFailed != repFailed || origSig != repSig {
				t.Fatalf("failure identity mismatch: %v/%q vs %v/%q",
					origFailed, origSig, repFailed, repSig)
			}
		})
	}
}

func TestValueReplayMatchesPerThreadValues(t *testing.T) {
	s, rec, _ := recordScenario(t, "bank", record.Value)
	res := Replay(s, rec, Options{})
	if !res.Ok {
		t.Fatalf("value replay not ok: %s", res.Note)
	}
	// Rebuild per-thread value logs from the replayed oracle trace and
	// compare against the recording: same kinds, sites, objects, values
	// per thread.
	replayByThread := make(map[trace.ThreadID][]trace.Event)
	for _, e := range res.View.Trace.Events {
		if valueLogged(e.Kind) {
			replayByThread[e.TID] = append(replayByThread[e.TID], e)
		}
	}
	for tid, want := range rec.EventsByThread() {
		got := replayByThread[tid]
		if len(got) < len(want) {
			t.Fatalf("thread %d replayed %d value events, want >= %d", tid, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.Kind != g.Kind || w.Site != g.Site || w.Obj != g.Obj || !w.Val.Equal(g.Val) {
				t.Fatalf("thread %d event %d mismatch: want %v got %v", tid, i, w, g)
			}
		}
	}
}

func TestOutputReplaySumFindsNonFailingExplanation(t *testing.T) {
	// The paper's 2+2=5 hazard: output determinism reproduces the output
	// (5) through inputs that are not a failure at all.
	s, rec, _ := recordScenario(t, "sum", record.Output)
	// SearchSeed 7 is the evaluation default; under it the first
	// output-matching execution is an innocent one (a+b really is 5), so
	// the narrative of §2 holds and is pinned here.
	res := Replay(s, rec, Options{Budget: 300, SearchSeed: 7})
	if !res.Ok {
		t.Fatalf("output replay not ok: %s", res.Note)
	}
	out := res.View.Result.Outputs["sum.out"]
	if len(out) != 1 || out[0].AsInt() != 5 {
		t.Fatalf("replay output = %v, want [5]", out)
	}
	a := res.View.Result.InputsUsed["in.a"][0].AsInt()
	b := res.View.Result.InputsUsed["in.b"][0].AsInt()
	if a+b != 5 {
		t.Fatalf("synthesized inputs %d+%d do not produce output 5 innocently", a, b)
	}
	if failed, _ := s.CheckFailure(res.View); failed {
		t.Fatal("the innocent explanation must not be a failure")
	}
}

func TestFailureReplayMatchesSignature(t *testing.T) {
	s, rec, _ := recordScenario(t, "hyperkv-dataloss", record.Failure)
	res := Replay(s, rec, Options{Budget: 150})
	if !res.Ok {
		t.Fatalf("failure replay not ok: %s", res.Note)
	}
	failed, sig := s.CheckFailure(res.View)
	if !failed || sig != rec.FailureSig {
		t.Fatalf("synthesized run: failed=%v sig=%q want %q", failed, sig, rec.FailureSig)
	}
}

func TestFailureReplayNothingToDoOnCleanRun(t *testing.T) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		t.Fatal(err)
	}
	// Seed 0 does not fail (verified by the hyperkv seed sweep).
	rec, view, err := record.Record(s, record.Failure, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failed, _ := s.CheckFailure(view); failed {
		t.Skip("seed 0 unexpectedly fails; sweep moved")
	}
	res := Replay(s, rec, Options{})
	if res.Ok || res.Attempts != 0 {
		t.Fatalf("clean-run failure replay should do nothing: %+v", res)
	}
}

func TestFailureReplayShrinksWhenAllowed(t *testing.T) {
	s, rec, orig := recordScenario(t, "overflow", record.Failure)
	res := Replay(s, rec, Options{
		Budget:       100,
		ShrinkParams: []scenario.Params{{"requests": 2}},
	})
	if !res.Ok {
		t.Fatalf("shrinking failure replay not ok: %s", res.Note)
	}
	if res.View.Result.Steps >= orig.Result.Steps {
		t.Logf("synthesized execution not shorter (%d vs %d); shrink attempt order note: %s",
			res.View.Result.Steps, orig.Result.Steps, res.Note)
	}
	failed, sig := s.CheckFailure(res.View)
	if !failed || sig != rec.FailureSig {
		t.Fatal("shrunk execution lost the failure signature")
	}
}

func TestPerfectReplayRefusesIncompleteSchedule(t *testing.T) {
	s, rec, _ := recordScenario(t, "sum", record.Perfect)
	rec.SchedComplete = false
	res := Replay(s, rec, Options{})
	if res.Ok {
		t.Fatal("replay accepted an incomplete schedule as perfect")
	}
}

func TestPerfectReplayDetectsTamperedSchedule(t *testing.T) {
	s, rec, _ := recordScenario(t, "bank", record.Perfect)
	// Corrupt the tail of the schedule so the forced order becomes
	// infeasible mid-run.
	if len(rec.Sched) < 30 {
		t.Fatal("schedule too short to tamper with")
	}
	for i := len(rec.Sched) / 2; i < len(rec.Sched); i++ {
		rec.Sched[i] = 99 // nonexistent thread
	}
	res := Replay(s, rec, Options{})
	if res.Ok {
		t.Fatal("replay accepted a tampered schedule")
	}
}

func TestValueReplayDetectsTamperedValues(t *testing.T) {
	s, rec, _ := recordScenario(t, "bank", record.Value)
	// Flip a recorded load value: the gated scheduler must hit a dead end
	// rather than silently reproduce something else.
	tampered := false
	for i := range rec.Full {
		if rec.Full[i].Kind == trace.EvLoad && rec.Full[i].Val.Kind == trace.VInt {
			rec.Full[i].Val = trace.Int(rec.Full[i].Val.AsInt() + 987654)
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no load event to tamper with")
	}
	res := Replay(s, rec, Options{})
	if res.Ok {
		t.Fatal("value replay accepted tampered values")
	}
}

func TestUnknownModelRejected(t *testing.T) {
	s, rec, _ := recordScenario(t, "sum", record.Perfect)
	rec2 := *rec
	rec2.Model = record.Model(99)
	res := Replay(s, &rec2, Options{})
	if res.Ok {
		t.Fatal("replay accepted an unknown model")
	}
}

package replay

import (
	"fmt"
	"sort"
	"strings"

	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// DebugValueReplay runs one value-guided replay attempt and reports where
// matching stalled: which threads still had unconsumed log entries and
// what their next wanted events were. Development aid used by cmd/probe
// and by tests diagnosing guided-scheduling regressions.
func DebugValueReplay(s *scenario.Scenario, rec *record.Recording, o Options) string {
	inputs := newStagedInputs(s.SearchSource(o.SearchSeed, s.DefaultParams.Clone(rec.Params)))
	sched := newValueGuidedScheduler(rec, inputs)
	view := s.Exec(scenario.ExecOptions{
		Seed:      rec.Seed,
		Params:    rec.Params,
		Scheduler: sched,
		Inputs:    inputs,
		MaxSteps:  o.MaxSteps,
		RelaxTime: true,
	})
	var b strings.Builder
	fmt.Fprintf(&b, "outcome=%s consumed=%d/%d done=%v\n",
		view.Result.Outcome, sched.consumed, sched.total, sched.Done())
	tids := make([]trace.ThreadID, 0, len(sched.logs))
	for tid := range sched.logs {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		q := sched.logs[tid]
		i := sched.pos[tid]
		if i >= len(q) {
			continue
		}
		name := view.Machine.ThreadName(tid)
		fmt.Fprintf(&b, "  tid=%d(%s) pos=%d/%d next-want=%v (site %s)\n",
			tid, name, i, len(q), q[i], view.Trace.SiteName(q[i].Site))
	}
	if ev, bad := view.Trace.Terminal(); bad {
		fmt.Fprintf(&b, "  terminal: %v\n", ev)
	}
	n := len(view.Trace.Events)
	lo := n - 6
	if lo < 0 {
		lo = 0
	}
	for _, e := range view.Trace.Events[lo:] {
		fmt.Fprintf(&b, "  tail: %v tname=%s site=%s\n", e,
			view.Machine.ThreadName(e.TID), view.Trace.SiteName(e.Site))
	}
	return b.String()
}

var _ = vm.OutcomeOK // keep vm imported for future debug helpers

package replay

import (
	"fmt"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Debugger is an interactive time-travel session over one recording: a
// cursor into the recorded execution that can step forward, seek to an
// arbitrary event, step backward (seek re-executes from the nearest
// checkpoint, so "back" is cheap), and inspect the machine state at the
// cursor — threads, cells, locks, channels, streams.
//
// Recordings that carry checkpoints use them directly; recordings without
// (older files, or runs recorded with checkpointing off) get in-memory
// checkpoints materialized by one initial full replay, so interactive
// navigation is fast either way. Only perfect-model recordings are
// debuggable: time travel needs the complete event stream.
//
// A Debugger is not safe for concurrent use. Close it to release the
// current replay machine.
type Debugger struct {
	s   *scenario.Scenario
	rec *record.Recording
	o   Options

	cps  []*vm.Snapshot
	sess *SeekSession
	end  uint64
}

// DebugOptions configures a debug session.
type DebugOptions struct {
	// Interval is the event interval for materializing checkpoints when
	// the recording has none (0 = checkpoint.DefaultInterval).
	Interval uint64
	// MaxSteps bounds each replayed execution (0 = VM default).
	MaxSteps uint64
	// Workers bounds nothing today; reserved so the session surface can
	// parallelize materialization without an API change.
	Workers int
}

// NewDebugger opens a time-travel session positioned at event 0.
func NewDebugger(s *scenario.Scenario, rec *record.Recording, o DebugOptions) (*Debugger, error) {
	if rec.Model != record.Perfect || !rec.SchedComplete {
		return nil, ErrSeekUnsupported
	}
	d := &Debugger{
		s:   s,
		rec: rec,
		o:   Options{MaxSteps: o.MaxSteps},
		cps: rec.Checkpoints,
		end: uint64(len(rec.Full)),
	}
	if len(d.cps) == 0 {
		// Materialize checkpoints with one full replay: attach a writer
		// to a replay machine and drive it to completion.
		cfg, setup := replayConfig(s, rec, d.o, 0, nil)
		m := vm.New(cfg)
		main := setup(m)
		w := checkpoint.NewWriter(m, o.Interval)
		m.Attach(w)
		m.Start(main)
		m.Continue(0)
		res := m.Finish()
		if res.Outcome == vm.OutcomeDiverged {
			return nil, fmt.Errorf("replay: debug: recording diverges at %d", res.DivergedAt)
		}
		d.cps = w.Snapshots()
	}
	if err := d.SeekTo(0); err != nil {
		return nil, err
	}
	return d, nil
}

// Pos returns the cursor: events applied so far.
func (d *Debugger) Pos() uint64 { return d.sess.Pos() }

// Len returns the recording's event count.
func (d *Debugger) Len() uint64 { return d.end }

// Done reports whether the cursor is at the end of the execution.
func (d *Debugger) Done() bool { return d.Pos() >= d.end || d.sess.Done() }

// Machine exposes the paused replay machine at the cursor for state
// inspection (cells, channels, threads, stream names).
func (d *Debugger) Machine() *vm.Machine { return d.sess.Machine }

// Step advances the cursor by n events (clamped to the end of the
// recording).
func (d *Debugger) Step(n uint64) error {
	if n == 0 {
		return nil
	}
	return d.SeekTo(d.Pos() + n)
}

// Back moves the cursor n events backward (clamped to 0), re-executing
// from the nearest checkpoint.
func (d *Debugger) Back(n uint64) error {
	pos := d.Pos()
	if n > pos {
		n = pos
	}
	return d.SeekTo(pos - n)
}

// SeekTo positions the cursor at the given event. Seeking backward
// replaces the replay machine (restoring from the nearest checkpoint);
// seeking forward advances the current one — unless a checkpoint lies
// between the cursor and the target, in which case restoring it is
// cheaper than replaying the distance.
func (d *Debugger) SeekTo(target uint64) error {
	if target > d.end {
		target = d.end
	}
	if d.sess != nil && target >= d.sess.Pos() {
		if cp := checkpoint.Best(d.cps, target); cp == nil || cp.Seq <= d.sess.Pos() {
			d.sess.Continue(target)
			return nil
		}
	}
	if d.sess != nil {
		d.sess.Close()
		d.sess = nil
	}
	rec := d.rec
	if len(rec.Checkpoints) == 0 && len(d.cps) > 0 {
		// Use the materialized checkpoints without mutating the caller's
		// recording.
		clone := *rec
		clone.Checkpoints = d.cps
		rec = &clone
	}
	sess, err := Seek(d.s, rec, target, d.o)
	if err != nil {
		return err
	}
	d.sess = sess
	return nil
}

// Event returns the recorded event at the cursor (the next event to
// execute), or false at the end of the recording.
func (d *Debugger) Event() (trace.Event, bool) {
	pos := d.Pos()
	if pos >= uint64(len(d.rec.Full)) {
		return trace.Event{}, false
	}
	return d.rec.Full[pos], true
}

// Events returns the recorded events in [lo, hi), clamped to the
// recording.
func (d *Debugger) Events(lo, hi uint64) []trace.Event {
	n := uint64(len(d.rec.Full))
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return nil
	}
	return d.rec.Full[lo:hi]
}

// Checkpoints returns the checkpoint positions available to this session.
func (d *Debugger) Checkpoints() []uint64 {
	out := make([]uint64, len(d.cps))
	for i, cp := range d.cps {
		out[i] = cp.Seq
	}
	return out
}

// Close releases the session's replay machine.
func (d *Debugger) Close() {
	if d.sess != nil {
		d.sess.Close()
		d.sess = nil
	}
}

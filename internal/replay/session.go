package replay

import (
	"fmt"

	"debugdet/internal/checkpoint"
	"debugdet/internal/flightrec"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Debugger is an interactive time-travel session over one recording or
// flight-recorder store: a cursor into the recorded execution that can
// step forward, seek to an arbitrary event, step backward (seek
// re-executes from the nearest checkpoint, so "back" is cheap), and
// inspect the machine state at the cursor — threads, cells, locks,
// channels, streams.
//
// Stores that carry boundary snapshots use them directly; stores without
// (older files, or runs recorded with checkpointing off) get in-memory
// checkpoints materialized by one initial full replay, so interactive
// navigation is fast either way. Only perfect-model sources are
// debuggable: time travel needs the complete event stream.
//
// A Debugger is not safe for concurrent use. Close it to release the
// current replay machine.
type Debugger struct {
	s  *scenario.Scenario
	st flightrec.Store
	o  Options

	cpSeqs []uint64
	sess   *SeekSession
	end    uint64
}

// DebugOptions configures a debug session.
type DebugOptions struct {
	// Interval is the event interval for materializing checkpoints when
	// the recording has none (0 = checkpoint.DefaultInterval).
	Interval uint64
	// MaxSteps bounds each replayed execution (0 = VM default).
	MaxSteps uint64
	// Workers bounds nothing today; reserved so the session surface can
	// parallelize materialization without an API change.
	Workers int
}

// NewDebugger opens a time-travel session over a recording, positioned at
// event 0.
func NewDebugger(s *scenario.Scenario, rec *record.Recording, o DebugOptions) (*Debugger, error) {
	return NewStoreDebugger(s, flightrec.NewRecordingStore(rec), o)
}

// NewStoreDebugger opens a time-travel session over a segment store,
// positioned at event 0. Over a spill directory under retention the
// cursor still spans the whole execution — positions before the retained
// tail replay from the start via the feed log; Event/Events return data
// only inside the retained range.
func NewStoreDebugger(s *scenario.Scenario, st flightrec.Store, o DebugOptions) (*Debugger, error) {
	meta := st.Meta()
	if meta.Model != record.Perfect || !meta.SchedComplete {
		return nil, ErrSeekUnsupported
	}
	d := &Debugger{
		s:   s,
		st:  st,
		o:   Options{MaxSteps: o.MaxSteps},
		end: meta.EventCount,
	}
	if len(st.SnapshotSeqs()) == 0 {
		// Materialize checkpoints with one full replay: attach a writer
		// to a replay machine and drive it to completion, then overlay
		// the snapshots on the store.
		cfg, setup, err := replayConfig(s, st, meta, d.o, 0)
		if err != nil {
			return nil, err
		}
		m := vm.New(cfg)
		main := setup(m)
		w := checkpoint.NewWriter(m, o.Interval)
		m.Attach(w)
		m.Start(main)
		m.Continue(0)
		res := m.Finish()
		if res.Outcome == vm.OutcomeDiverged {
			return nil, fmt.Errorf("replay: debug: recording diverges at %d", res.DivergedAt)
		}
		d.st = flightrec.WithSnapshots(st, w.Snapshots())
	}
	d.cpSeqs = d.st.SnapshotSeqs()
	if err := d.SeekTo(0); err != nil {
		return nil, err
	}
	return d, nil
}

// Pos returns the cursor: events applied so far.
func (d *Debugger) Pos() uint64 { return d.sess.Pos() }

// Len returns the recording's event count.
func (d *Debugger) Len() uint64 { return d.end }

// Done reports whether the cursor is at the end of the execution.
func (d *Debugger) Done() bool { return d.Pos() >= d.end || d.sess.Done() }

// Machine exposes the paused replay machine at the cursor for state
// inspection (cells, channels, threads, stream names).
func (d *Debugger) Machine() *vm.Machine { return d.sess.Machine }

// Step advances the cursor by n events (clamped to the end of the
// recording).
func (d *Debugger) Step(n uint64) error {
	if n == 0 {
		return nil
	}
	return d.SeekTo(d.Pos() + n)
}

// Back moves the cursor n events backward (clamped to 0), re-executing
// from the nearest checkpoint.
func (d *Debugger) Back(n uint64) error {
	pos := d.Pos()
	if n > pos {
		n = pos
	}
	return d.SeekTo(pos - n)
}

// SeekTo positions the cursor at the given event. Seeking backward
// replaces the replay machine (restoring from the nearest checkpoint);
// seeking forward advances the current one — unless a checkpoint lies
// between the cursor and the target, in which case restoring it is
// cheaper than replaying the distance.
func (d *Debugger) SeekTo(target uint64) error {
	if target > d.end {
		target = d.end
	}
	if d.sess != nil && target >= d.sess.Pos() {
		if cp, ok := bestSeq(d.cpSeqs, target); !ok || cp <= d.sess.Pos() {
			d.sess.Continue(target)
			return nil
		}
	}
	if d.sess != nil {
		d.sess.Close()
		d.sess = nil
	}
	sess, err := SeekStore(d.s, d.st, target, d.o)
	if err != nil {
		return err
	}
	d.sess = sess
	return nil
}

// bestSeq returns the largest seq ≤ target, mirroring checkpoint.Best
// over bare positions. Like Best, it makes no ordering assumption: store
// implementations that merge snapshot sources may report checkpoint seqs
// out of trace order.
func bestSeq(seqs []uint64, target uint64) (uint64, bool) {
	var best uint64
	found := false
	for _, q := range seqs {
		if q <= target && (!found || q > best) {
			best, found = q, true
		}
	}
	return best, found
}

// Event returns the recorded event at the cursor (the next event to
// execute), or false at the end of the execution or outside the store's
// retained range.
func (d *Debugger) Event() (trace.Event, bool) {
	pos := d.Pos()
	if pos >= d.end {
		return trace.Event{}, false
	}
	evs, err := flightrec.EventRange(d.st, pos, pos+1)
	if err != nil || len(evs) != 1 {
		return trace.Event{}, false
	}
	return evs[0], true
}

// Events returns the recorded events in [lo, hi), clamped to the store's
// retained range.
func (d *Debugger) Events(lo, hi uint64) []trace.Event {
	rlo, rhi := flightrec.Retained(d.st)
	if lo < rlo {
		lo = rlo
	}
	if hi > rhi {
		hi = rhi
	}
	if lo >= hi {
		return nil
	}
	evs, err := flightrec.EventRange(d.st, lo, hi)
	if err != nil {
		return nil
	}
	return evs
}

// Checkpoints returns the checkpoint positions available to this session.
func (d *Debugger) Checkpoints() []uint64 {
	return append([]uint64(nil), d.cpSeqs...)
}

// Close releases the session's replay machine.
func (d *Debugger) Close() {
	if d.sess != nil {
		d.sess.Close()
		d.sess = nil
	}
}

package replay

import (
	"fmt"
	"runtime"
	"sync"

	"debugdet/internal/flightrec"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
)

// Segmented parallel replay (DESIGN.md §5): the store's checkpoints split
// the trace into segments that replay — and validate against the recorded
// events — concurrently, each worker restoring its segment's boundary
// snapshot and replaying one interval. The result obeys a sequential
// equivalence contract like the inference and evaluation pools: the
// stitched trace, the final state and the validation verdict are
// deep-equal for every worker count, because segments share nothing
// mutable and the stitching is positional.

// SegmentedResult is a finished segmented replay.
type SegmentedResult struct {
	// View is the reconstructed execution: the final segment's machine
	// and result, carrying the full stitched trace.
	View *scenario.RunView
	// Ok reports whether every segment's replayed events matched the
	// recording bit-for-bit and the terminal identity reproduced.
	Ok bool
	// Segments is how many trace segments were replayed.
	Segments int
	// Mismatch is the sequence number of the first replayed event that
	// differed from the recording (-1 when none).
	Mismatch int64
	// WorkSteps is the total events executed across all segments —
	// the same as a sequential replay; the win is wall-clock.
	WorkSteps uint64
	// Note describes how the replay was obtained.
	Note string
}

// Segmented validates a perfect recording by replaying its checkpoint
// segments concurrently across o.Workers workers (0 = GOMAXPROCS, 1 =
// sequential). A recording without checkpoints degenerates to one segment
// — a sequential validated replay. Only perfect recordings are supported
// (ErrSeekUnsupported otherwise): segmentation needs the complete event
// stream both to restore from and to validate against.
func Segmented(s *scenario.Scenario, rec *record.Recording, o Options) (*SegmentedResult, error) {
	return SegmentedStore(s, flightrec.NewRecordingStore(rec), o)
}

// SegmentedStore is Segmented over a segment store. For a flight
// recorder's spill directory it replays and validates the retained tail:
// the first retained segment restores from its boundary snapshot (or
// from the start, when segment 0 is still retained) and the last one
// runs to the end of the execution.
func SegmentedStore(s *scenario.Scenario, st flightrec.Store, o Options) (*SegmentedResult, error) {
	meta := st.Meta()
	if meta.Model != record.Perfect || !meta.SchedComplete {
		return nil, ErrSeekUnsupported
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	infos := st.Segments()
	n := len(infos)
	if n == 0 {
		return nil, fmt.Errorf("replay: segmented: store retains no segments")
	}

	type segment struct {
		events []trace.Event // replayed events of the segment
		view   *scenario.RunView
		ok     bool
		err    error
	}
	segs := make([]segment, n)

	runSegment := func(i int) {
		from := infos[i].From
		var to uint64 // 0 = run to completion (the final segment)
		if i+1 < n {
			to = infos[i+1].From
		}
		sess, err := SeekStore(s, st, from, o)
		if err != nil {
			segs[i].err = fmt.Errorf("segment %d at %d: %w", i, from, err)
			return
		}
		if to > 0 {
			sess.Continue(to)
			segs[i].events = append([]trace.Event(nil), sess.Machine.Trace().Events...)
			sess.Close()
			segs[i].ok = true
			return
		}
		view, ok := sess.RunToEnd()
		segs[i].events = view.Trace.Events
		segs[i].view = view
		segs[i].ok = ok
	}

	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range segs {
			runSegment(i)
		}
	} else {
		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//lint:nondet-ok bounded worker pool over disjoint segments; results land in per-index slots and are joined after wg.Wait, so host scheduling is unobservable
			go func() {
				defer wg.Done()
				for i := range idxCh {
					runSegment(i)
				}
			}()
		}
		for i := range segs {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	}

	// Sequential-equivalence: surface the lowest-index error, stitch in
	// order, validate positionally against the stored events.
	for i := range segs {
		if segs[i].err != nil {
			return nil, segs[i].err
		}
	}
	res := &SegmentedResult{Segments: n, Mismatch: -1, Note: fmt.Sprintf("segmented replay over %d checkpoints", n-1)}
	final := segs[n-1]
	stitched := trace.NewLog(final.view.Trace.Header)
	stitched.Sites = final.view.Trace.Sites
	for i := range segs {
		res.WorkSteps += uint64(len(segs[i].events))
		stitched.Events = append(stitched.Events, segs[i].events...)
	}
	res.Ok = final.ok
	mismatch, err := validateStitched(st, infos, stitched.Events, infos[0].From)
	if err != nil {
		return nil, err
	}
	if mismatch >= 0 {
		res.Ok = false
		res.Mismatch = mismatch
	}

	// The final segment's machine carries the complete final state
	// (outputs and inputs accumulate across the restore); hand its view
	// out with the stitched trace substituted.
	finalRes := *final.view.Result
	finalRes.Trace = stitched
	res.View = &scenario.RunView{Machine: final.view.Machine, Result: &finalRes, Trace: stitched}
	return res, nil
}

// validateStitched compares the stitched replay positionally against the
// store's events, segment by segment (avoiding a concatenated copy of the
// reference stream). It returns the sequence number at which the replay
// first differs from the store — a differing event, a replay that ended
// early, or one that ran past the stored horizon — or -1 when the replay
// reproduces the stored stream exactly.
func validateStitched(st flightrec.Store, infos []flightrec.SegmentInfo, stitched []trace.Event, base uint64) (int64, error) {
	pos := 0
	for i := range infos {
		evs, err := st.Events(i)
		if err != nil {
			return 0, err
		}
		for j := range evs {
			if pos >= len(stitched) {
				return int64(base) + int64(pos), nil // replay ended early
			}
			if !EventsMatch(&stitched[pos], &evs[j]) {
				return int64(stitched[pos].Seq), nil
			}
			pos++
		}
	}
	if pos < len(stitched) {
		return int64(base) + int64(pos), nil // replay ran past the horizon
	}
	return -1, nil
}

// EventsMatch is logical event identity: every field including the value
// payload, excluding virtual time. Time is machine bookkeeping, not part
// of the logical execution — replays run under relaxed time gates, so
// their clocks legitimately drift from the recorded run's across sleep
// gaps (see vm.Config.RelaxTime and trace.EventsEqual's ignoreTime) while
// the event sequence stays bit-identical.
func EventsMatch(a, b *trace.Event) bool {
	return a.Seq == b.Seq && a.TID == b.TID &&
		a.Kind == b.Kind && a.Site == b.Site && a.Obj == b.Obj &&
		a.Taint == b.Taint && a.Val.Equal(b.Val)
}

package replay

import (
	"reflect"
	"runtime"
	"testing"

	"debugdet/internal/checkpoint"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// recordCheckpointed records one perfect-model run with checkpoints every
// interval events (what core.RecordOnly does for CheckpointInterval).
func recordCheckpointed(t testing.TB, s *scenario.Scenario, interval uint64) *record.Recording {
	t.Helper()
	var w *checkpoint.Writer
	factory := func(m *vm.Machine) (record.Policy, []vm.Observer) {
		w = checkpoint.NewWriter(m, interval)
		return record.PolicyFor(record.Perfect), []vm.Observer{w}
	}
	rec, _, err := record.RecordWithPolicy(s, record.Perfect, factory, s.DefaultSeed, nil)
	if err != nil {
		t.Fatalf("%s: record: %v", s.Name, err)
	}
	rec.Checkpoints = w.Snapshots()
	rec.CheckpointBytes = w.Bytes()
	return rec
}

// checkpointedCorpusRecording records the scenario with an interval
// adapted to its trace length, so short scenarios still get checkpoints
// and long ones get a handful.
func checkpointedCorpusRecording(t testing.TB, s *scenario.Scenario) *record.Recording {
	t.Helper()
	plain, _, err := record.Record(s, record.Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatalf("%s: record: %v", s.Name, err)
	}
	interval := plain.EventCount / 6
	if interval < 4 {
		interval = 4
	}
	return recordCheckpointed(t, s, interval)
}

// TestSeekEquivalence is the seek acceptance test: for every corpus
// scenario, a replay resumed from each checkpoint produces a suffix trace
// logically identical (EventsMatch: every field but virtual time) to the
// corresponding slice of a full sequential replay, and restoring a
// checkpoint reproduces its snapshotted machine state exactly.
func TestSeekEquivalence(t *testing.T) {
	for _, s := range workload.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rec := checkpointedCorpusRecording(t, s)
			if len(rec.Checkpoints) == 0 {
				t.Fatalf("no checkpoints captured over %d events", rec.EventCount)
			}

			full := replayPerfect(s, rec, Options{})
			if !full.Ok {
				t.Fatalf("sequential replay not ok: %s", full.Note)
			}
			ref := full.View.Trace.Events

			for _, cp := range rec.Checkpoints {
				sess, err := Seek(s, rec, cp.Seq, Options{})
				if err != nil {
					t.Fatalf("seek %d: %v", cp.Seq, err)
				}
				if !sess.FromCheckpoint || sess.SuffixFrom != cp.Seq {
					t.Fatalf("seek %d: restored from %d (checkpoint=%v)", cp.Seq, sess.SuffixFrom, sess.FromCheckpoint)
				}
				// The restored machine must be in exactly the snapshotted
				// state before a single suffix event runs.
				got := sess.Machine.Snapshot(vm.NoRunningThread)
				if err := got.EqualState(cp); err != nil {
					t.Fatalf("seek %d: restored state differs: %v", cp.Seq, err)
				}
				view, ok := sess.RunToEnd()
				if !ok {
					t.Fatalf("seek %d: suffix replay not ok (outcome %s)", cp.Seq, view.Result.Outcome)
				}
				suffix := view.Trace.Events
				want := ref[cp.Seq:]
				if len(suffix) != len(want) {
					t.Fatalf("seek %d: suffix has %d events, full replay suffix %d", cp.Seq, len(suffix), len(want))
				}
				for i := range suffix {
					if !EventsMatch(&suffix[i], &want[i]) {
						t.Fatalf("seek %d: event %d differs:\nseek %v\nfull %v", cp.Seq, suffix[i].Seq, suffix[i], want[i])
					}
				}
			}
		})
	}
}

// TestSeekFallback pins the compatibility contract: a recording without
// checkpoints (a v1-format file, or checkpointing off) still seeks — by
// replaying from the start — and produces the same suffix.
func TestSeekFallback(t *testing.T) {
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := record.Record(s, record.Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Checkpoints) != 0 {
		t.Fatalf("plain recording has %d checkpoints", len(rec.Checkpoints))
	}
	target := rec.EventCount / 2
	sess, err := Seek(s, rec, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.FromCheckpoint || sess.SuffixFrom != 0 {
		t.Fatalf("fallback seek used a checkpoint: from=%d", sess.SuffixFrom)
	}
	if sess.Pos() != target {
		t.Fatalf("fallback seek at %d, want %d", sess.Pos(), target)
	}
	if sess.ReplaySteps != target {
		t.Fatalf("fallback replayed %d events, want %d", sess.ReplaySteps, target)
	}
	if _, ok := sess.RunToEnd(); !ok {
		t.Fatal("fallback seek replay not ok")
	}
}

// TestSeekUnsupportedModels pins the gate: seek, segmented replay and the
// debugger refuse recordings that lack the complete event stream.
func TestSeekUnsupportedModels(t *testing.T) {
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []record.Model{record.Value, record.Output, record.Failure} {
		rec, _, err := record.Record(s, model, s.DefaultSeed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Seek(s, rec, 0, Options{}); err == nil {
			t.Errorf("%s: seek accepted an incomplete recording", model)
		}
		if _, err := Segmented(s, rec, Options{}); err == nil {
			t.Errorf("%s: segmented replay accepted an incomplete recording", model)
		}
		if _, err := NewDebugger(s, rec, DebugOptions{}); err == nil {
			t.Errorf("%s: debugger accepted an incomplete recording", model)
		}
	}
}

// segmentedFingerprint reduces a segmented result to the fields the
// sequential-equivalence contract pins.
type segmentedFingerprint struct {
	Ok        bool
	Segments  int
	Mismatch  int64
	WorkSteps uint64
	Events    int
	Outcome   vm.Outcome
	Steps     uint64
	Outputs   map[string][]int64
}

func fingerprint(res *SegmentedResult) segmentedFingerprint {
	fp := segmentedFingerprint{
		Ok:        res.Ok,
		Segments:  res.Segments,
		Mismatch:  res.Mismatch,
		WorkSteps: res.WorkSteps,
		Events:    len(res.View.Trace.Events),
		Outcome:   res.View.Result.Outcome,
		Steps:     res.View.Result.Steps,
		Outputs:   map[string][]int64{},
	}
	for name, vals := range res.View.Result.Outputs {
		for _, v := range vals {
			fp.Outputs[name] = append(fp.Outputs[name], v.AsInt())
		}
	}
	return fp
}

// TestSegmentedEquivalence is the segmented-replay acceptance test: on
// every corpus scenario the parallel segment validation succeeds, matches
// the sequential replay trace, and is deep-equal across worker counts
// (1, 4, GOMAXPROCS).
func TestSegmentedEquivalence(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, s := range workload.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rec := checkpointedCorpusRecording(t, s)
			full := replayPerfect(s, rec, Options{})
			if !full.Ok {
				t.Fatalf("sequential replay not ok: %s", full.Note)
			}

			var first *segmentedFingerprint
			for _, workers := range workerCounts {
				res, err := Segmented(s, rec, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !res.Ok {
					t.Fatalf("workers=%d: segmented replay not ok (mismatch at %d)", workers, res.Mismatch)
				}
				wantSegs := 1
				for _, cp := range rec.Checkpoints {
					if cp.Seq > 0 && cp.Seq < uint64(len(rec.Full)) {
						wantSegs++
					}
				}
				if res.Segments != wantSegs {
					t.Fatalf("workers=%d: %d segments, want %d", workers, res.Segments, wantSegs)
				}
				// The stitched trace must match the sequential replay
				// event for event.
				if len(res.View.Trace.Events) != len(full.View.Trace.Events) {
					t.Fatalf("workers=%d: stitched %d events, sequential %d",
						workers, len(res.View.Trace.Events), len(full.View.Trace.Events))
				}
				for i := range res.View.Trace.Events {
					if !EventsMatch(&res.View.Trace.Events[i], &full.View.Trace.Events[i]) {
						t.Fatalf("workers=%d: stitched event %d differs", workers, i)
					}
				}
				fp := fingerprint(res)
				if first == nil {
					first = &fp
				} else if !reflect.DeepEqual(*first, fp) {
					t.Fatalf("workers=%d: result differs from workers=%d:\n%+v\n%+v",
						workers, workerCounts[0], fp, *first)
				}
			}
		})
	}
}

// TestDebuggerNavigation drives the time-travel session over a recording:
// step, seek, back, inspection and checkpoint materialization for
// checkpoint-free recordings.
func TestDebuggerNavigation(t *testing.T) {
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	// A checkpoint-free recording: the debugger must materialize its own.
	rec, _, err := record.Record(s, record.Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDebugger(s, rec, DebugOptions{Interval: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.Checkpoints()) == 0 {
		t.Fatal("debugger materialized no checkpoints")
	}
	if d.Pos() != 0 {
		t.Fatalf("opened at %d, want 0", d.Pos())
	}
	if err := d.Step(10); err != nil {
		t.Fatal(err)
	}
	if d.Pos() != 10 {
		t.Fatalf("pos=%d after step 10", d.Pos())
	}
	mid := d.Len() / 2
	if err := d.SeekTo(mid); err != nil {
		t.Fatal(err)
	}
	if d.Pos() != mid {
		t.Fatalf("pos=%d after seek %d", d.Pos(), mid)
	}
	threads := d.Machine().Threads()
	if len(threads) == 0 {
		t.Fatal("no threads visible at cursor")
	}
	ev, ok := d.Event()
	if !ok || ev.Seq != mid {
		t.Fatalf("event at cursor = %v ok=%v, want seq %d", ev, ok, mid)
	}
	if err := d.Back(7); err != nil {
		t.Fatal(err)
	}
	if d.Pos() != mid-7 {
		t.Fatalf("pos=%d after back 7 from %d", d.Pos(), mid)
	}
	// Determinism check across travel: the event stream at the cursor is
	// the recorded one.
	if evs := d.Events(d.Pos(), d.Pos()+3); len(evs) != 3 || evs[0].Seq != d.Pos() {
		t.Fatalf("events window wrong: %v", evs)
	}
	if err := d.SeekTo(d.Len()); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("not done at end of recording")
	}
}

// TestSeekBoundaryTargets pins the edges of the seek target domain —
// target 0, the exact last event, and targets past the end of the
// recording — on both checkpointed and checkpoint-free recordings. Each
// boundary must yield the exact recorded state (never a wrong snapshot)
// and a clean completed replay, never a panic.
func TestSeekBoundaryTargets(t *testing.T) {
	s, err := workload.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := checkpointedCorpusRecording(t, s)
	if len(ckpt.Checkpoints) == 0 {
		t.Fatalf("no checkpoints captured over %d events", ckpt.EventCount)
	}
	plain, _, err := record.Record(s, record.Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	end := ckpt.EventCount
	if plain.EventCount != end {
		t.Fatalf("recordings disagree on length: %d vs %d events", plain.EventCount, end)
	}

	for _, tc := range []struct {
		label  string
		rec    *record.Recording
		target uint64
		pos    uint64
	}{
		{"checkpointed/zero", ckpt, 0, 0},
		{"checkpointed/last", ckpt, end, end},
		{"checkpointed/past-end", ckpt, end*2 + 1000, end},
		{"plain/zero", plain, 0, 0},
		{"plain/last", plain, end, end},
		{"plain/past-end", plain, end*2 + 1000, end},
	} {
		sess, err := Seek(s, tc.rec, tc.target, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if sess.Pos() != tc.pos {
			t.Fatalf("%s: positioned at %d, want %d", tc.label, sess.Pos(), tc.pos)
		}
		if sess.SuffixFrom > tc.pos {
			t.Fatalf("%s: restored from %d, past the position %d (wrong snapshot)",
				tc.label, sess.SuffixFrom, tc.pos)
		}
		if tc.target == 0 && sess.FromCheckpoint {
			t.Fatalf("%s: target 0 used a checkpoint; no snapshot precedes event 0", tc.label)
		}
		if sess.ReplaySteps != tc.pos-sess.SuffixFrom {
			t.Fatalf("%s: replayed %d events to cover %d..%d",
				tc.label, sess.ReplaySteps, sess.SuffixFrom, tc.pos)
		}
		view, ok := sess.RunToEnd()
		if !ok {
			t.Fatalf("%s: replay not ok (outcome %s)", tc.label, view.Result.Outcome)
		}
		if view.Result.Steps != end {
			t.Fatalf("%s: completed after %d steps, want %d", tc.label, view.Result.Steps, end)
		}
	}

	// The debugger clamps out-of-range cursors instead of erroring: seeking
	// or stepping past the end lands on the last event, and seeking back to
	// 0 restores the initial state exactly.
	d, err := NewDebugger(s, ckpt, DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.SeekTo(end + 500); err != nil {
		t.Fatalf("seek past end: %v", err)
	}
	if d.Pos() != end || !d.Done() {
		t.Fatalf("seek past end stopped at %d (done=%v), want %d", d.Pos(), d.Done(), end)
	}
	if ev, ok := d.Event(); ok {
		t.Fatalf("cursor at the end still reports event %v", ev)
	}
	if err := d.Step(7); err != nil {
		t.Fatalf("step past end: %v", err)
	}
	if d.Pos() != end {
		t.Fatalf("step past end moved the cursor to %d", d.Pos())
	}
	if err := d.SeekTo(0); err != nil {
		t.Fatalf("seek to 0: %v", err)
	}
	if d.Pos() != 0 || d.Done() {
		t.Fatalf("seek to 0 landed at %d (done=%v)", d.Pos(), d.Done())
	}
	ev, ok := d.Event()
	if !ok || ev.Seq != 0 {
		t.Fatalf("cursor at 0 reports event %v (ok=%v), want seq 0", ev, ok)
	}
}

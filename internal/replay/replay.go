// Package replay reconstructs executions from recordings, one replayer per
// determinism model:
//
//   - perfect: force the recorded schedule and recorded inputs; the replay
//     is bit-identical to the original in one attempt;
//   - value: greedy value-guided scheduling against the per-thread value
//     logs (the replay reads and writes the same values at the same
//     per-thread execution points, but may discover a different global
//     interleaving — exactly iDNA's guarantee);
//   - output: search (see the infer package) until some execution produces
//     the recorded outputs — it may reach them through different inputs
//     and interleavings, which is the paper's 2+2=5 hazard;
//   - failure: search until some execution exhibits the recorded failure
//     signature, trying shrunken configurations first (ESD);
//   - debug-rcse: force the recorded thread schedule and control-plane
//     inputs; re-draw unrecorded data-plane inputs from the search domain.
//     Control-plane behaviour — and with it the failure and its root cause,
//     when they live in the control plane — reproduces exactly.
package replay

import (
	"context"
	"fmt"

	"debugdet/internal/infer"
	"debugdet/internal/lint/sites"
	"debugdet/internal/record"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Options configures a replay.
type Options struct {
	// Ctx cancels the replay between candidate executions (nil =
	// context.Background()); it is plumbed into the inference worker
	// pool of search-based models. A canceled replay has Ok=false and
	// Err set.
	Ctx context.Context
	// Budget bounds inference attempts for search-based models
	// (default 200).
	Budget int
	// SearchSeed perturbs inference randomness.
	SearchSeed int64
	// ShrinkParams enables ESD-style shrinking for failure determinism.
	ShrinkParams []scenario.Params
	// MaxSteps bounds each candidate execution.
	MaxSteps uint64
	// Workers sets the inference worker-pool size for search-based
	// models (0 = GOMAXPROCS, 1 = sequential). Results are identical
	// for every worker count; see infer.Search.
	Workers int
	// Suspects are statically implicated lock-order inversions (from
	// detlint's lockorder analysis via sites.Triage); failure-determinism
	// search uses them to visit its PCT candidates first. See
	// infer.Options.Suspects for the bit-identity contract.
	Suspects []sites.Suspect
	// Fork enables checkpoint-forked candidate execution for every
	// search-shaped model (output, failure, debug-rcse): candidates that
	// share a prefix with an earlier candidate re-execute only their
	// suffix from a snapshot, and equivalent candidates are pruned
	// outright. Acceptance, Attempts and the replayed view are
	// bit-identical to the from-scratch replay; only
	// WorkCycles/WorkSteps shrink. See infer.Options.Fork.
	Fork bool
	// ForkInterval is the snapshot interval for forked execution
	// (0 = checkpoint default; negative rejected).
	ForkInterval int64
	// ForkPaths bounds the forked prefix forest (0 = 8; negative
	// rejected).
	ForkPaths int
}

// Validate rejects out-of-domain option values, delegating the knobs
// shared with the inference engine to infer.Options.Validate. Replay
// calls it and surfaces the error through Result.Err.
func (o Options) Validate() error {
	return infer.Options{
		Budget:       o.Budget,
		Workers:      o.Workers,
		Fork:         o.Fork,
		ForkInterval: o.ForkInterval,
		ForkPaths:    o.ForkPaths,
	}.Validate()
}

// Result is a finished replay.
type Result struct {
	// View is the replayed execution (nil if replay failed entirely).
	View *scenario.RunView
	// Ok reports whether the model's own acceptance condition was met
	// (schedule consumed, outputs matched, signature matched, ...).
	Ok bool
	// Attempts counts candidate executions (1 for deterministic
	// replayers).
	Attempts int
	// WorkCycles is total virtual time spent producing the replay,
	// across all attempts.
	WorkCycles uint64
	// WorkSteps is total events executed across all attempts: the
	// denominator of debugging efficiency (virtual time includes idle
	// waits that would unfairly favour replays that skip them).
	WorkSteps uint64
	// Note describes how the replay was obtained.
	Note string
	// Err is the context error when the replay was canceled, nil
	// otherwise.
	Err error
}

// Replay dispatches on the recording's model.
func Replay(s *scenario.Scenario, rec *record.Recording, o Options) *Result {
	if err := o.Validate(); err != nil {
		return &Result{Note: "invalid options", Err: err}
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.Budget == 0 {
		o.Budget = 200
	}
	if err := o.Ctx.Err(); err != nil {
		return &Result{Note: "replay canceled", Err: err}
	}
	switch rec.Model {
	case record.Perfect:
		return replayPerfect(s, rec, o)
	case record.Value:
		return replayValue(s, rec, o)
	case record.Output:
		return replayOutput(s, rec, o)
	case record.Failure:
		return replayFailure(s, rec, o)
	case record.DebugRCSE:
		return replayRCSE(s, rec, o)
	}
	return &Result{Note: fmt.Sprintf("unknown model %v", rec.Model)}
}

// replayPerfect forces the complete schedule and the recorded inputs.
func replayPerfect(s *scenario.Scenario, rec *record.Recording, o Options) *Result {
	if !rec.SchedComplete {
		return &Result{Note: "perfect recording lacks a complete schedule"}
	}
	view := s.Exec(scenario.ExecOptions{
		Seed:      rec.Seed,
		Params:    rec.Params,
		Scheduler: vm.NewReplayScheduler(rec.Sched),
		Inputs:    &vm.MapInputs{Values: rec.InputsByStream(), Base: vm.ZeroInputs},
		MaxSteps:  o.MaxSteps,
		RelaxTime: true,
	})
	ok := view.Result.Outcome != vm.OutcomeDiverged && replayMatchesTerminal(s, rec, view)
	return &Result{
		View:       view,
		Ok:         ok,
		Attempts:   1,
		WorkCycles: view.Result.Cycles,
		WorkSteps:  view.Result.Steps,
		Note:       "deterministic re-execution",
	}
}

// replayRCSE forces the schedule stream and the recorded control-plane
// inputs, re-drawing data-plane inputs from the search domain. A handful
// of data-input seeds are tried in case unrecorded values steer control
// flow (they do not in well-separated programs; the attempts guard
// pathological scenarios).
func replayRCSE(s *scenario.Scenario, rec *record.Recording, o Options) *Result {
	if !rec.SchedComplete {
		return &Result{Note: "rcse recording lacks a complete schedule"}
	}
	// Only the declared control streams are forced: the policy records
	// them completely, so their (stream, index) alignment is exact.
	// Trigger dial-ups may additionally capture fragments of data
	// streams, but those fragments have unknown stream offsets and are
	// used for inspection, not forcing.
	control := make(map[string]bool, len(s.ControlStreams))
	for _, name := range s.ControlStreams {
		control[name] = true
	}
	forced := rec.InputsByStream()
	//lint:nondet-ok per-key filter: each delete depends only on its own key, never on visit order
	for name := range forced {
		if !control[name] {
			delete(forced, name)
		}
	}
	res := &Result{Note: "forced schedule + control inputs"}
	tries := 8
	if o.Budget < tries {
		tries = o.Budget
	}
	// The tries share the complete forced schedule and all control-plane
	// inputs, so they diverge only at data-plane draws — often not at all.
	// Forked execution collapses that shared prefix: each try re-executes
	// only from its first differing data-input value, and tries without
	// data-plane draws are pruned to zero work.
	var forker *infer.Forker
	if o.Fork {
		forker = infer.NewForker(infer.ForkerConfig{
			Scenario:  s,
			Interval:  uint64(o.ForkInterval),
			MaxPaths:  o.ForkPaths,
			MaxSteps:  o.MaxSteps,
			RelaxTime: true,
		})
	}
	for i := 0; i < tries; i++ {
		if err := o.Ctx.Err(); err != nil {
			res.Err = err
			res.Note = "replay canceled"
			return res
		}
		searchSeed := o.SearchSeed + int64(i)
		inputs := func() vm.InputSource {
			return &vm.MapInputs{
				Values: forced,
				Base:   s.SearchSource(searchSeed, s.DefaultParams.Clone(rec.Params)),
			}
		}
		var view *scenario.RunView
		var steps, cycles uint64
		if forker != nil {
			view, steps, cycles = forker.Run(infer.Candidate{
				Seed:      rec.Seed,
				Scheduler: func() vm.Scheduler { return vm.NewReplayScheduler(rec.Sched) },
				Inputs:    inputs,
				Params:    rec.Params,
			})
		} else {
			view = s.Exec(scenario.ExecOptions{
				Seed:      rec.Seed,
				Params:    rec.Params,
				Scheduler: vm.NewReplayScheduler(rec.Sched),
				Inputs:    inputs(),
				MaxSteps:  o.MaxSteps,
				RelaxTime: true,
			})
			steps, cycles = view.Result.Steps, view.Result.Cycles
		}
		res.Attempts++
		res.WorkCycles += cycles
		res.WorkSteps += steps
		res.View = view
		if view.Result.Outcome != vm.OutcomeDiverged && replayMatchesTerminal(s, rec, view) {
			res.Ok = true
			return res
		}
	}
	return res
}

// replayOutput searches for an execution producing the recorded outputs.
func replayOutput(s *scenario.Scenario, rec *record.Recording, o Options) *Result {
	want := rec.OutputsByStream()
	out := infer.Search(s, func(v *scenario.RunView) bool {
		return outputsMatch(want, v)
	}, infer.Options{
		Ctx:          o.Ctx,
		Budget:       o.Budget,
		BaseSeed:     o.SearchSeed,
		Params:       rec.Params,
		MaxSteps:     o.MaxSteps,
		Workers:      o.Workers,
		Fork:         o.Fork,
		ForkInterval: o.ForkInterval,
		ForkPaths:    o.ForkPaths,
	})
	return &Result{
		View:       out.View,
		Ok:         out.Ok,
		Attempts:   out.Attempts,
		WorkCycles: out.WorkCycles,
		WorkSteps:  out.WorkSteps,
		Note:       "output-constrained search: " + out.Note,
		Err:        out.Err,
	}
}

// replayFailure searches for an execution with the recorded failure
// signature, shrunken configurations first.
func replayFailure(s *scenario.Scenario, rec *record.Recording, o Options) *Result {
	if !rec.Failed {
		return &Result{Note: "original run did not fail; nothing to synthesize"}
	}
	out := infer.Search(s, func(v *scenario.RunView) bool {
		failed, sig := s.CheckFailure(v)
		return failed && sig == rec.FailureSig
	}, infer.Options{
		Ctx:          o.Ctx,
		Budget:       o.Budget,
		BaseSeed:     o.SearchSeed,
		Params:       rec.Params,
		ShrinkParams: o.ShrinkParams,
		MaxSteps:     o.MaxSteps,
		Workers:      o.Workers,
		Suspects:     o.Suspects,
		Fork:         o.Fork,
		ForkInterval: o.ForkInterval,
		ForkPaths:    o.ForkPaths,
	})
	return &Result{
		View:       out.View,
		Ok:         out.Ok,
		Attempts:   out.Attempts,
		WorkCycles: out.WorkCycles,
		WorkSteps:  out.WorkSteps,
		Note:       "failure-signature search: " + out.Note,
		Err:        out.Err,
	}
}

// replayMatchesTerminal checks that the replay's failure identity matches
// the recording's: both failed with the same signature, or both finished
// clean.
func replayMatchesTerminal(s *scenario.Scenario, rec *record.Recording, v *scenario.RunView) bool {
	return matchesTerminal(s, rec.Failed, rec.FailureSig, v)
}

// matchesTerminal is replayMatchesTerminal against a bare terminal
// identity (shared with the store-backed seek, whose source may be a
// spill directory rather than a Recording).
func matchesTerminal(s *scenario.Scenario, failed bool, sig string, v *scenario.RunView) bool {
	gotFailed, gotSig := s.CheckFailure(v)
	return gotFailed == failed && gotSig == sig
}

// outputsMatch compares per-stream output sequences, resolving the
// recording's stream names against the replay machine.
func outputsMatch(want map[string][]trace.Value, v *scenario.RunView) bool {
	got := v.Result.Outputs
	if len(got) != len(want) {
		return false
	}
	//lint:nondet-ok pure all-keys conjunction: the result is the same whichever key fails first
	for name, ws := range want {
		gs, ok := got[name]
		if !ok || len(gs) != len(ws) {
			return false
		}
		for i := range ws {
			if !ws[i].Equal(gs[i]) {
				return false
			}
		}
	}
	return true
}

package workload

import (
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func TestCatalogIsStable(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("corpus has %d scenarios, want 17", len(all))
	}
	seen := make(map[string]bool)
	for _, s := range all {
		if s.Name == "" || s.Description == "" || s.Build == nil || s.Inputs == nil {
			t.Fatalf("scenario %q is underspecified", s.Name)
		}
		if s.Failure.Check == nil {
			t.Fatalf("scenario %q has no failure spec", s.Name)
		}
		if len(s.RootCauses) == 0 {
			t.Fatalf("scenario %q declares no root causes", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("hyperkv-fixed"); err != nil {
		t.Fatalf("variant lookup failed: %v", err)
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("ByName accepted garbage")
	}
}

// TestDynoKVFamilyRegistered pins the catalog contract for the replication
// family: every dynokv scenario and its fixed variant resolve by name.
func TestDynoKVFamilyRegistered(t *testing.T) {
	names := make(map[string]bool)
	for _, n := range Names() {
		names[n] = true
	}
	for _, want := range []string{
		"dynokv-staleread", "dynokv-resurrect", "dynokv-losthint",
		"dynokv-staleread-fixed", "dynokv-resurrect-fixed", "dynokv-losthint-fixed",
	} {
		if !names[want] {
			t.Errorf("Names() is missing %q", want)
		}
		if _, err := ByName(want); err != nil {
			t.Errorf("ByName(%q): %v", want, err)
		}
	}
}

// TestDurableFamilyRegistered pins the catalog contract for the
// durability family: every disk scenario and its fixed variant resolve by
// name.
func TestDurableFamilyRegistered(t *testing.T) {
	names := make(map[string]bool)
	for _, n := range Names() {
		names[n] = true
	}
	for _, want := range []string{
		"disk-tornwal", "disk-fsyncloss", "disk-snapres",
		"disk-tornwal-fixed", "disk-fsyncloss-fixed", "disk-snapres-fixed",
	} {
		if !names[want] {
			t.Errorf("Names() is missing %q", want)
		}
		if _, err := ByName(want); err != nil {
			t.Errorf("ByName(%q): %v", want, err)
		}
	}
}

// TestFuzzFamilyRegistered pins the catalog contract for the generated
// family: every fuzz scenario and its fixed variant resolve by name, and
// an arbitrary generator seed is reproducible through the "gen" param.
func TestFuzzFamilyRegistered(t *testing.T) {
	names := make(map[string]bool)
	for _, n := range Names() {
		names[n] = true
	}
	for _, want := range []string{
		"fuzz-atomicity", "fuzz-deadlock", "fuzz-lostmsg", "fuzz-oversell", "fuzz-crashpoint",
		"fuzz-atomicity-fixed", "fuzz-deadlock-fixed", "fuzz-lostmsg-fixed", "fuzz-oversell-fixed",
		"fuzz-crashpoint-fixed",
	} {
		if !names[want] {
			t.Errorf("Names() is missing %q", want)
		}
		if _, err := ByName(want); err != nil {
			t.Errorf("ByName(%q): %v", want, err)
		}
	}
	// Seed reproduction: the same scenario resolved from the catalog
	// regenerates any generator seed deterministically.
	s, err := ByName("fuzz-oversell")
	if err != nil {
		t.Fatal(err)
	}
	p := scenario.Params{"gen": 41}
	a := s.Exec(scenario.ExecOptions{Seed: 5, Params: p})
	b := s.Exec(scenario.ExecOptions{Seed: 5, Params: p})
	if !trace.EventsEqual(a.Trace, b.Trace, false) {
		t.Fatal("gen param does not reproduce the generated program")
	}
}

// TestSustainedVariantRegistered pins the long-running template's catalog
// contract: fuzz-sustained resolves by name but stays out of the corpus,
// so corpus-wide experiments never pay its ~10x run length.
func TestSustainedVariantRegistered(t *testing.T) {
	s, err := ByName("fuzz-sustained")
	if err != nil {
		t.Fatalf("ByName(fuzz-sustained): %v", err)
	}
	if s.Failure.Check == nil || s.Build == nil || s.Inputs == nil {
		t.Fatal("fuzz-sustained is underspecified")
	}
	for _, c := range All() {
		if c.Name == "fuzz-sustained" {
			t.Fatal("fuzz-sustained leaked into the corpus")
		}
	}
}

// TestDefaultSeedsFail pins every scenario's default seed to a failing run
// with exactly the expected original root cause.
func TestDefaultSeedsFail(t *testing.T) {
	wantCause := map[string]string{
		"sum":              "indexing-bug",
		"overflow":         "missing-length-check",
		"msgdrop":          "buffer-race",
		"hyperkv-dataloss": "migration-race",
		"bank":             "non-atomic-transfer",
		"deadlock":         "lock-order-inversion",
		"dynokv-staleread": "weak-quorum",
		"dynokv-resurrect": "tombstone-gc",
		"dynokv-losthint":  "hint-abandoned",
		"disk-tornwal":     "torn-loose-decode",
		"disk-fsyncloss":   "fsync-reordered",
		"disk-snapres":     "missing-tombstone",
		"fuzz-atomicity":   "unlocked-rmw",
		"fuzz-deadlock":    "lock-order-inversion",
		"fuzz-lostmsg":     "lossy-link",
		"fuzz-oversell":    "toctou-window",
		"fuzz-crashpoint":  "early-ack",
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
			failed, sig := s.CheckFailure(v)
			if !failed || sig == "" {
				t.Fatalf("default seed %d does not fail", s.DefaultSeed)
			}
			causes := s.PresentCauses(v)
			found := false
			for _, c := range causes {
				if c == wantCause[s.Name] {
					found = true
				}
			}
			if !found {
				t.Fatalf("causes = %v, want %q present", causes, wantCause[s.Name])
			}
		})
	}
}

// TestFixedVariantsDoNotFail: applying each scenario's fix predicate makes
// the failure disappear (the §3 definition of root cause).
func TestFixedVariantsDoNotFail(t *testing.T) {
	fixable := []string{"msgdrop", "bank"}
	for _, name := range fixable {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 15; seed++ {
				v := s.Exec(scenario.ExecOptions{
					Seed:   seed,
					Params: scenario.Params{"fixed": 1},
				})
				if failed, sig := s.CheckFailure(v); failed {
					t.Fatalf("fixed %s seed %d still fails with %q", name, seed, sig)
				}
			}
		})
	}
}

func TestSumProducesCorrectOutputOffTheBugPath(t *testing.T) {
	s := Sum()
	// Seeds that are not ≡ 0 mod 3 feed random inputs; the output must be
	// correct unless the inputs happen to sum to 4 (the corrupt entry).
	for seed := int64(1); seed < 20; seed++ {
		if seed%3 == 0 {
			continue
		}
		v := s.Exec(scenario.ExecOptions{Seed: seed})
		a := v.Result.InputsUsed["in.a"][0].AsInt()
		b := v.Result.InputsUsed["in.b"][0].AsInt()
		out := v.Result.Outputs["sum.out"][0].AsInt()
		if a+b == 4 {
			if out != 5 {
				t.Fatalf("seed %d: corrupt entry should yield 5, got %d", seed, out)
			}
			continue
		}
		if out != a+b {
			t.Fatalf("seed %d: %d+%d = %d?", seed, a, b, out)
		}
	}
}

func TestOverflowSmallRequestsNeverCrash(t *testing.T) {
	s := Overflow()
	v := s.Exec(scenario.ExecOptions{
		Seed: 1,
		Inputs: vm.InputSourceFunc(func(stream string, index int) trace.Value {
			return trace.Int(8) // tiny requests only
		}),
	})
	if v.Result.Outcome != vm.OutcomeOK {
		t.Fatalf("small-request run: %v", v.Result.Outcome)
	}
	if failed, _ := s.CheckFailure(v); failed {
		t.Fatal("small-request run flagged as failure")
	}
}

func TestMsgDropLossAccounting(t *testing.T) {
	s := MsgDrop()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	sent := v.Result.Outputs["report.sent"][0].AsInt()
	delivered := v.Result.Outputs["report.delivered"][0].AsInt()
	if delivered >= sent {
		t.Fatalf("default seed shows no loss: %d/%d", delivered, sent)
	}
	processed := v.Machine.CellByName("oracle.processed0").AsInt() +
		v.Machine.CellByName("oracle.processed1").AsInt()
	if processed != sent {
		t.Fatalf("healthy network lost packets: processed %d of %d", processed, sent)
	}
}

func TestBankConservationUnderFix(t *testing.T) {
	s := Bank()
	v := s.Exec(scenario.ExecOptions{Seed: 7, Params: scenario.Params{"fixed": 1}})
	total := v.Result.Outputs["bank.total"][0].AsInt()
	initial := v.Result.Outputs["bank.initial"][0].AsInt()
	if total != initial {
		t.Fatalf("fixed bank drifted: %d != %d", total, initial)
	}
}

func TestDeadlockAlternativeSeedsMayComplete(t *testing.T) {
	// The ABBA program does not deadlock under every interleaving; make
	// sure at least one seed completes (otherwise it is not a
	// hard-to-reproduce bug, just a broken program).
	s := Deadlock()
	completed := false
	for seed := int64(0); seed < 200 && !completed; seed++ {
		v := s.Exec(scenario.ExecOptions{Seed: seed})
		completed = v.Result.Outcome == vm.OutcomeOK
	}
	if !completed {
		t.Skip("no completing interleaving in 200 seeds; ABBA window is very wide")
	}
}

func TestScenarioSearchSourceCoversDomains(t *testing.T) {
	s := Overflow()
	src := s.SearchSource(5, s.DefaultParams)
	sawBig := false
	for i := 0; i < 200; i++ {
		v := src.Next("req.size", i).AsInt()
		if v < 1 || v > 2*overflowBufLen {
			t.Fatalf("domain violated: %d", v)
		}
		if v > overflowBufLen {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("search source never samples oversized requests")
	}
}

package workload

import (
	"debugdet/internal/plane"
	"debugdet/internal/scenario"
	"debugdet/internal/simnet"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// MsgDrop is the paper's §2 server example: a server drops messages at
// higher-than-expected rates. The true root cause is a race on the shared
// buffer index between the two worker threads draining the inbox — two
// workers read the same index, one message overwrites the other. The same
// observable failure can also arise from network congestion (the link may
// legitimately drop packets), which is beyond the developer's control. An
// over-relaxed replayer that only reproduces the failure may synthesize
// the congestion explanation, deceiving the developer into thinking
// nothing can be done — exactly the §2 hazard.
func MsgDrop() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "msgdrop",
		Description: "server loses messages: really a race on the receive buffer " +
			"between worker threads, but network congestion can produce the same " +
			"symptom (§2's wrong-root-cause example)",
		DefaultParams: scenario.Params{"messages": 36, "fixed": 0},
		DefaultSeed:   2, // verified racy by TestMsgDropDefaultSeed
		Build:         buildMsgDrop,
		Inputs: func(seed int64, p scenario.Params) vm.InputSource {
			return vm.InputSourceFunc(func(stream string, index int) trace.Value {
				if len(stream) >= 8 && stream[:8] == "net.drop" {
					return trace.Int(99) // production network is healthy
				}
				return trace.Int(vm.HashValue(seed, stream, index) % 1000)
			})
		},
		InputDomains: []scenario.InputDomain{
			{Stream: "src.payload", Min: 0, Max: 999},
			{Stream: "net.drop:src->server", Min: 0, Max: 99},
			{Stream: "net.lat:src->server", Min: 0, Max: 99},
		},
		Failure: scenario.FailureSpec{
			Name: "high-loss",
			Check: func(v *scenario.RunView) (bool, string) {
				sent, okS := lastOutput(v, "report.sent")
				delivered, okD := lastOutput(v, "report.delivered")
				if !okS || !okD {
					return false, ""
				}
				if delivered < sent {
					return true, "msgdrop:high-loss"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{
				ID:          "buffer-race",
				Description: "two workers race on the buffer index; concurrent updates overwrite a slot and lose its message",
				Present: func(v *scenario.RunView) bool {
					processed := v.Machine.CellByName("oracle.processed0").AsInt() +
						v.Machine.CellByName("oracle.processed1").AsInt()
					stored := v.Machine.CellByName("srv.count").AsInt()
					return stored < processed
				},
			},
			{
				ID:          "net-congestion",
				Description: "the network legitimately dropped packets under load (outside the developer's control)",
				Present: func(v *scenario.RunView) bool {
					sent, _ := lastOutput(v, "report.sent")
					processed := v.Machine.CellByName("oracle.processed0").AsInt() +
						v.Machine.CellByName("oracle.processed1").AsInt()
					return processed < sent
				},
			},
		},
		PlaneTruth: map[string]plane.Plane{
			"src.payload.in": plane.Data,
			"src.send":       plane.Data,
			"worker.recv":    plane.Data,
			"worker.slot":    plane.Data,
			"report.out":     plane.Data, // reports counts derived from the data path
		},
		ControlStreams: []string{"net.drop:src->server", "net.lat:src->server"},
	}
}

const msgdropSlots = 64

func buildMsgDrop(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	n := int(p.Get("messages", 36))
	fixed := p.Get("fixed", 0) != 0

	net := simnet.New(m, simnet.Options{
		DefaultLink:   simnet.LinkConfig{LatencyBase: 10, DropPercent: 8},
		InboxCapacity: 16,
	})
	net.AddNode("src")
	net.AddNode("server")
	net.Build()

	count := m.NewCell("srv.count", trace.Int(0))
	slots := m.NewCells("srv.slot", msgdropSlots, trace.Nil)
	mu := m.NewMutex("srv.mu")
	proc := []trace.ObjID{
		m.NewCell("oracle.processed0", trace.Int(0)),
		m.NewCell("oracle.processed1", trace.Int(0)),
	}

	payloadIn := m.DeclareStream("src.payload", trace.TaintData)
	sentOut := m.Stream("report.sent")
	deliveredOut := m.Stream("report.delivered")

	sPayload := m.Site("src.payload.in")
	sSend := m.Site("src.send")
	sRecv := m.Site("worker.recv")
	sIdx := m.Site("worker.index")
	sWindow := m.Site("worker.window")
	sSlot := m.Site("worker.slot")
	sCount := m.Site("worker.count")
	sLock := m.Site("worker.lock")
	sProc := m.Site("worker.processed")
	sReport := m.Site("report.out")
	sSpawn := m.Site("main.spawn")
	sPace := m.Site("main.pace")

	store := func(t *vm.Thread, w int, payload int64) {
		if fixed {
			t.Lock(sLock, mu)
		}
		// The unprotected window is the gap between reading the index and
		// publishing the new count: separate operations another worker
		// can interleave with.
		idx := t.Load(sIdx, count).AsInt()
		t.Store(sSlot, slots[idx%msgdropSlots], trace.Int(payload))
		t.Store(sCount, count, trace.Int(idx+1))
		if fixed {
			t.Unlock(sLock, mu)
		}
		t.Add(sProc, proc[w], 1)
	}

	// worker0 is the primary consumer; worker1 is a helper that polls
	// occasionally to absorb bursts. Their overlap — and hence the racy
	// window — is rare, which is what makes the bug hard to reproduce.
	primary := func(t *vm.Thread) {
		for {
			t.ClearTaint()
			msg := net.Recv(t, sRecv, "server")
			store(t, 0, msg.Num(0))
		}
	}
	helper := func(t *vm.Thread) {
		for {
			t.ClearTaint()
			t.Sleep(sWindow, 6500)
			if v, ok := t.TryRecv(sRecv, net.MustNode("server").Inbox); ok {
				msg := simnet.MustDecode(v)
				store(t, 1, msg.Num(0))
			}
		}
	}

	return func(t *vm.Thread) {
		net.Start(t)
		t.SpawnDaemon(sSpawn, "worker0", primary)
		t.SpawnDaemon(sSpawn, "worker1", helper)
		t.Spawn(sSpawn, "src", func(t *vm.Thread) {
			for i := 0; i < n; i++ {
				t.ClearTaint()
				payload := t.Input(sPayload, payloadIn).AsInt()
				net.Send(t, sSend, "src", "server", simnet.Message{
					Kind: "msg", From: "src", Nums: []int64{payload},
				})
				// Paced load: the inbox stays near-empty, so the helper's
				// polls rarely coincide with queued work.
				t.Sleep(sPace, 160)
			}
		})
		// Let the pipeline drain: the sleep wakes once the system
		// quiesces (virtual time jumps over idle gaps).
		t.Sleep(sPace, 300000)
		t.Output(sReport, sentOut, trace.Int(int64(n)))
		t.Output(sReport, deliveredOut, t.Load(sReport, count))
	}
}

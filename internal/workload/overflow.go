package workload

import (
	"debugdet/internal/plane"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// overflowBufLen is the fixed buffer the server copies requests into.
const overflowBufLen = 64

// Overflow is the paper's §3 example: a server copies each request into a
// fixed buffer without checking its length; a request longer than the
// buffer crashes the program. The root cause — the missing length check —
// is the negation of the fix's predicate ("reject the input when it
// exceeds the buffer"). It doubles as the data-based selection example:
// an RCSE threshold trigger on large request sizes dials fidelity up
// exactly when the dangerous inputs arrive.
func Overflow() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "overflow",
		Description: "fixed-size buffer copied without a bounds check; requests " +
			"longer than the buffer crash the server (§3's fix-predicate example)",
		DefaultParams: scenario.Params{"requests": 12},
		DefaultSeed:   2, // one oversized request in this environment
		Build:         buildOverflow,
		Inputs: func(seed int64, p scenario.Params) vm.InputSource {
			return vm.InputSourceFunc(func(stream string, index int) trace.Value {
				h := vm.HashValue(seed, stream, index)
				// Mostly small requests; occasionally an oversized one.
				if h%7 == 0 {
					return trace.Int(overflowBufLen + 1 + h%64)
				}
				return trace.Int(1 + h%overflowBufLen)
			})
		},
		InputDomains: []scenario.InputDomain{
			{Stream: "req.size", Min: 1, Max: 2 * overflowBufLen},
		},
		Failure: scenario.FailureSpec{
			Name: "crash",
			Check: func(v *scenario.RunView) (bool, string) {
				if v.Result.Outcome != vm.OutcomeCrashed {
					return false, ""
				}
				return true, "overflow:segfault"
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "missing-length-check",
			Description: "the copy loop never validates the request size against the buffer length",
			Present: func(v *scenario.RunView) bool {
				for _, val := range v.Result.InputsUsed["req.size"] {
					if val.AsInt() > overflowBufLen {
						return true
					}
				}
				return false
			},
		}},
		PlaneTruth: map[string]plane.Plane{
			"srv.copy":    plane.Data,
			"srv.sizein":  plane.Control,
			"srv.observe": plane.Control,
		},
		ControlStreams: []string{"req.size"},
	}
}

func buildOverflow(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	sizeIn := m.DeclareStream("req.size", trace.TaintControl)
	payloadIn := m.DeclareStream("req.payload", trace.TaintData)
	out := m.Stream("srv.served")
	sSize := m.Site("srv.sizein")
	sPayload := m.Site("srv.payloadin")
	sObserve := m.Site("srv.observe")
	sCopy := m.Site("srv.copy")
	sOut := m.Site("srv.out")
	buf := m.NewCells("srv.buf", overflowBufLen, trace.Int(0))
	requests := int(p.Get("requests", 12))

	return func(t *vm.Thread) {
		served := int64(0)
		for i := 0; i < requests; i++ {
			t.ClearTaint()
			size := t.Input(sSize, sizeIn).AsInt()
			// Invariant probe: healthy request sizes stay within the
			// buffer; the violation is what data-based selection keys on.
			t.Observe(sObserve, 0, trace.Int(size))
			t.ClearTaint()
			payload := t.Input(sPayload, payloadIn).AsInt()
			for j := int64(0); j < size; j++ {
				if j >= overflowBufLen {
					t.Crash(sCopy, "segfault: write %d past buffer of %d", j, overflowBufLen)
				}
				t.Store(sCopy, buf[j], trace.Int(j^payload))
			}
			served++
			t.Output(sOut, out, trace.Int(served))
		}
	}
}

package workload

import (
	"fmt"
	"sort"

	"debugdet/internal/hyperkv"
	"debugdet/internal/scenario"
)

// All returns the full scenario corpus, in a stable order: the paper's
// three motivating examples (§2's sum and message-drop server, §3's buffer
// overflow), the §4 Hypertable case study, and two breadth scenarios.
func All() []*scenario.Scenario {
	return []*scenario.Scenario{
		Sum(),
		Overflow(),
		MsgDrop(),
		hyperkv.Scenario(),
		Bank(),
		Deadlock(),
	}
}

// Names lists the catalog's scenario names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// ByName resolves a scenario.
func ByName(name string) (*scenario.Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	// Variant lookups.
	switch name {
	case "hyperkv-fixed":
		return hyperkv.FixedScenario(), nil
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
}

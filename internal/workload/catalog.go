package workload

import (
	"sort"

	"debugdet/internal/dynokv"
	"debugdet/internal/hyperkv"
	"debugdet/internal/progen"
	"debugdet/internal/scenario"
)

// All returns the full buggy-scenario corpus, in a stable order: the
// paper's three motivating examples (§2's sum and message-drop server,
// §3's buffer overflow), the §4 Hypertable case study, two breadth
// scenarios, the Dynamo-style replication family (stale reads under
// weak quorums, deleted-data resurrection, lost hinted-handoff writes),
// the durability family (torn-WAL corruption, fsync-reordering loss,
// snapshot resurrection — crash-restart bugs on the simulated disk), and
// the generated fuzz family (one seed-parameterized scenario per progen
// bug template, pinned to a failing default; any other generator seed is
// reproducible via Params{"gen": seed}).
func All() []*scenario.Scenario {
	out := []*scenario.Scenario{
		Sum(),
		Overflow(),
		MsgDrop(),
		hyperkv.Scenario(),
		Bank(),
		Deadlock(),
	}
	out = append(out, dynokv.Family()...)
	out = append(out, dynokv.DurableFamily()...)
	return append(out, progen.Corpus()...)
}

// Variants returns the scenarios that are resolvable by name (and listed
// by Names) but excluded from All: the healthy builds of the fixable
// scenarios — the program after each fix predicate is enforced — plus the
// sustained long-running template (fuzz-sustained), which stays out of
// the corpus so corpus-wide experiments don't pay its ~10x run length on
// every cell.
func Variants() []*scenario.Scenario {
	out := []*scenario.Scenario{hyperkv.FixedScenario()}
	out = append(out, dynokv.FixedVariants()...)
	out = append(out, dynokv.DurableFixedVariants()...)
	out = append(out, progen.FixedVariants()...)
	return append(out, progen.Sustained())
}

// Names lists every resolvable scenario name — the corpus plus the fixed
// variants — sorted.
func Names() []string {
	var names []string
	for _, s := range All() {
		names = append(names, s.Name)
	}
	for _, s := range Variants() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// ByName resolves a scenario or variant. An unknown name's error lists
// the available names and suggests the nearest match.
func ByName(name string) (*scenario.Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range Variants() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, scenario.UnknownNameError("workload", name, Names())
}

// Package workload catalogs the buggy-program corpus: every example the
// paper discusses plus additional scenarios for breadth. Each scenario
// declares its failure specification and its complete set of possible
// root causes, so the evaluation can compute debugging fidelity
// mechanically.
package workload

import (
	"debugdet/internal/plane"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Sum is the paper's §2 example: a program that outputs the sum of two
// numbers, except that for inputs 2 and 2 it outputs 5 (an indexing bug in
// a lookup table). An output-deterministic replayer that records only the
// output may synthesize inputs 1 and 4 — the output matches, but 1+4=5 is
// not a failure at all, so the true root cause stays hidden (DF = 0).
func Sum() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "sum",
		Description: "outputs a+b, but a bug makes 2+2 print 5; output-only " +
			"recording lets inference reproduce the output via 1+4, which is " +
			"not a failure (§2)",
		DefaultParams: scenario.Params{},
		DefaultSeed:   3, // production inputs are (2,2) for this seed
		Build:         buildSum,
		Inputs: func(seed int64, p scenario.Params) vm.InputSource {
			return vm.InputSourceFunc(func(stream string, index int) trace.Value {
				// One in three production environments feeds the buggy
				// pair; the default seed is one of them.
				if seed%3 == 0 {
					return trace.Int(2)
				}
				return trace.Int(vm.HashValue(seed, stream, index) % 10)
			})
		},
		InputDomains: []scenario.InputDomain{
			{Stream: "in.a", Min: 0, Max: 9},
			{Stream: "in.b", Min: 0, Max: 9},
		},
		Failure: scenario.FailureSpec{
			Name: "wrong-sum",
			Check: func(v *scenario.RunView) (bool, string) {
				a, okA := lastInput(v, "in.a")
				b, okB := lastInput(v, "in.b")
				out, okO := lastOutput(v, "sum.out")
				if !okA || !okB || !okO {
					return false, ""
				}
				if out != a+b {
					return true, "sum:wrong-output"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "indexing-bug",
			Description: "the lookup table's entry for sum 4 holds 5 (off-by-one population); any inputs summing to 4 hit it",
			Present: func(v *scenario.RunView) bool {
				a, okA := lastInput(v, "in.a")
				b, okB := lastInput(v, "in.b")
				return okA && okB && a+b == 4
			},
		}},
		PlaneTruth: map[string]plane.Plane{
			"sum.read":    plane.Data,
			"sum.compute": plane.Data,
			"sum.write":   plane.Data, // emits the data-derived result
		},
		ControlStreams: []string{"in.a", "in.b"},
	}
}

func buildSum(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	inA := m.DeclareStream("in.a", trace.TaintData)
	inB := m.DeclareStream("in.b", trace.TaintData)
	out := m.Stream("sum.out")
	sRead := m.Site("sum.read")
	sCompute := m.Site("sum.compute")
	sWrite := m.Site("sum.write")
	table := m.NewCells("sum.table", 20, trace.Int(0))

	return func(t *vm.Thread) {
		a := t.Input(sRead, inA).AsInt()
		b := t.Input(sRead, inB).AsInt()
		// The program materializes small sums through a lookup table; the
		// entry for 4 was populated with 5 (the indexing bug): writing
		// row i+1's value into row i for i == 4.
		for i := int64(0); i < 20; i++ {
			val := i
			if i == 4 {
				val = 5
			}
			t.Store(sCompute, table[i], trace.Int(val))
		}
		idx := a + b
		sum := t.Load(sCompute, table[idx]).AsInt()
		t.Output(sWrite, out, trace.Int(sum))
	}
}

// lastInput fetches the final consumed value on an input stream.
func lastInput(v *scenario.RunView, stream string) (int64, bool) {
	vals := v.Result.InputsUsed[stream]
	if len(vals) == 0 {
		return 0, false
	}
	return vals[len(vals)-1].AsInt(), true
}

// lastOutput fetches the final emitted value on an output stream.
func lastOutput(v *scenario.RunView, stream string) (int64, bool) {
	vals := v.Result.Outputs[stream]
	if len(vals) == 0 {
		return 0, false
	}
	return vals[len(vals)-1].AsInt(), true
}

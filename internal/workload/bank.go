package workload

import (
	"fmt"

	"debugdet/internal/plane"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Bank is an atomicity-violation scenario for corpus breadth: transfer
// threads move money between accounts with a read-compute-write sequence
// that is not atomic, so concurrent transfers lose updates and the bank's
// total drifts. It doubles as the invariant-trigger showcase: the total
// is probed after every transfer, healthy training runs teach the monitor
// "total == initial", and the first drift dials RCSE fidelity up.
func Bank() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "bank",
		Description: "non-atomic transfers between accounts lose updates and " +
			"violate the conservation-of-money invariant",
		DefaultParams: scenario.Params{
			"accounts": 4, "threads": 3, "transfers": 12, "fixed": 0,
		},
		DefaultSeed:    0, // verified by TestBankDefaultSeed
		TrainingParams: scenario.Params{"fixed": 1},
		Build:          buildBank,
		Inputs: func(seed int64, p scenario.Params) vm.InputSource {
			return vm.InputSourceFunc(func(stream string, index int) trace.Value {
				return trace.Int(vm.HashValue(seed, stream, index))
			})
		},
		InputDomains: []scenario.InputDomain{
			{Stream: "xfer.pick", Min: 0, Max: 1 << 30},
		},
		Failure: scenario.FailureSpec{
			Name: "imbalance",
			Check: func(v *scenario.RunView) (bool, string) {
				total, ok := lastOutput(v, "bank.total")
				initial, ok2 := lastOutput(v, "bank.initial")
				if !ok || !ok2 {
					return false, ""
				}
				if total != initial {
					return true, "bank:imbalance"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "non-atomic-transfer",
			Description: "the debit/credit pair runs unlocked; interleaved transfers overwrite each other's balances",
			Present: func(v *scenario.RunView) bool {
				// Lost updates are visible as a drift between the sum of
				// applied deltas (zero by construction) and the final
				// total.
				total, _ := lastOutput(v, "bank.total")
				initial, _ := lastOutput(v, "bank.initial")
				return total != initial
			},
		}},
		// The bank moves no bulk data: every site is metadata-driven and
		// low-rate, so the whole application is control plane. RCSE on a
		// control-plane-only program records (correctly) almost
		// everything — see the trigger-ablation discussion in
		// EXPERIMENTS.md.
		PlaneTruth: map[string]plane.Plane{
			"xfer.read":  plane.Control,
			"xfer.write": plane.Control,
			"bank.audit": plane.Control,
		},
		ControlStreams: []string{"xfer.pick"},
	}
}

const bankInitialBalance = 1000

func buildBank(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	nAcc := int(p.Get("accounts", 4))
	nThreads := int(p.Get("threads", 3))
	nTransfers := int(p.Get("transfers", 12))
	fixed := p.Get("fixed", 0) != 0

	accounts := m.NewCells("bank.acct", nAcc, trace.Int(bankInitialBalance))
	mu := m.NewMutex("bank.mu")
	doneCh := m.NewChan("bank.done", nThreads)
	pickIn := m.DeclareStream("xfer.pick", trace.TaintControl)

	totalOut := m.Stream("bank.total")
	initialOut := m.Stream("bank.initial")

	sPick := m.Site("xfer.pickin")
	sRead := m.Site("xfer.read")
	sWindow := m.Site("xfer.window")
	sWrite := m.Site("xfer.write")
	sLock := m.Site("xfer.lock")
	sAudit := m.Site("bank.audit")
	sSpawn := m.Site("main.spawn")
	sDone := m.Site("main.done")

	xfer := func(id int) func(*vm.Thread) {
		return func(t *vm.Thread) {
			for i := 0; i < nTransfers; i++ {
				pick := t.Input(sPick, pickIn).AsInt()
				from := int(pick) % nAcc
				to := int(pick>>8) % nAcc
				if to == from {
					to = (to + 1) % nAcc
				}
				amount := 1 + pick>>16%50
				if fixed {
					t.Lock(sLock, mu)
				}
				a := t.Load(sRead, accounts[from]).AsInt()
				b := t.Load(sRead, accounts[to]).AsInt()
				if !fixed {
					t.Yield(sWindow)
				}
				t.Store(sWrite, accounts[from], trace.Int(a-amount))
				t.Store(sWrite, accounts[to], trace.Int(b+amount))
				// Invariant probe: conservation of money. Healthy (fixed)
				// training runs audit inside the critical section and
				// always see the pristine total; the racy build audits
				// whatever state the interleaving left behind, and the
				// drift fires the data-based trigger.
				var total int64
				for _, acc := range accounts {
					total += t.Load(sAudit, acc).AsInt()
				}
				t.Observe(sAudit, 0, trace.Int(total))
				if fixed {
					t.Unlock(sLock, mu)
				}
			}
			t.Send(sDone, doneCh, trace.Int(int64(id)))
		}
	}

	return func(t *vm.Thread) {
		for w := 0; w < nThreads; w++ {
			t.Spawn(sSpawn, fmt.Sprintf("xfer%d", w), xfer(w))
		}
		for w := 0; w < nThreads; w++ {
			t.Recv(sDone, doneCh)
		}
		var total int64
		for _, acc := range accounts {
			total += t.Load(sAudit, acc).AsInt()
		}
		t.Output(sAudit, initialOut, trace.Int(int64(nAcc)*bankInitialBalance))
		t.Output(sAudit, totalOut, trace.Int(total))
	}
}

package workload

import (
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Deadlock is a classic ABBA lock-order inversion: two threads acquire the
// same pair of mutexes in opposite orders. Included for corpus breadth —
// it exercises the machine's deadlock detection and shows how determinism
// models differ on synchronization-only failures (value determinism logs
// no values worth replaying here, so it cannot pin the fatal order).
func Deadlock() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "deadlock",
		Description: "two threads lock mutexes A and B in opposite orders; some " +
			"interleavings deadlock",
		DefaultParams: scenario.Params{"iterations": 6},
		DefaultSeed:   1, // verified by TestDeadlockDefaultSeed
		Build:         buildDeadlock,
		Inputs: func(seed int64, p scenario.Params) vm.InputSource {
			return vm.ZeroInputs
		},
		Failure: scenario.FailureSpec{
			Name: "deadlock",
			Check: func(v *scenario.RunView) (bool, string) {
				if v.Result.Outcome != vm.OutcomeDeadlock {
					return false, ""
				}
				return true, "deadlock:abba"
			},
		},
		RootCauses: []scenario.RootCause{{
			ID:          "lock-order-inversion",
			Description: "thread 1 locks A then B while thread 2 locks B then A",
			Present: func(v *scenario.RunView) bool {
				// The inversion is present whenever both threads hold one
				// lock while waiting for the other — which is exactly the
				// machine's deadlock condition for this program.
				return v.Result.Outcome == vm.OutcomeDeadlock
			},
		}},
		// No plane ground truth: the program moves no payloads, so the
		// relative-rate heuristic has nothing meaningful to separate.
	}
}

func buildDeadlock(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	iters := int(p.Get("iterations", 6))
	a := m.NewMutex("A")
	b := m.NewMutex("B")
	work := m.NewCell("shared", trace.Int(0))
	sWork := m.Site("ab.work")
	sLock := m.Site("ab.lock")
	sSpawn := m.Site("main.spawn")

	locker := func(first, second trace.ObjID) func(*vm.Thread) {
		return func(t *vm.Thread) {
			for i := 0; i < iters; i++ {
				t.Lock(sLock, first)
				t.Yield(sWork)
				t.Lock(sLock, second)
				t.Add(sWork, work, 1)
				t.Unlock(sWork, second)
				t.Unlock(sWork, first)
			}
		}
	}

	return func(t *vm.Thread) {
		t.Spawn(sSpawn, "ab", locker(a, b))
		t.Spawn(sSpawn, "ba", locker(b, a))
	}
}

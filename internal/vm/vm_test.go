package vm

import (
	"testing"

	"debugdet/internal/trace"
)

// runCounter builds a machine where two threads increment a shared counter
// n times each under a mutex (or racily when locked is false).
func runCounter(seed int64, n int, locked bool, sched Scheduler) (*Result, *Machine) {
	m := New(Config{Seed: seed, Scheduler: sched, CollectTrace: true})
	cnt := m.NewCell("cnt", trace.Int(0))
	mu := m.NewMutex("mu")
	sLoad := m.Site("worker.load")
	sStore := m.Site("worker.store")
	sLock := m.Site("worker.lock")
	sUnlock := m.Site("worker.unlock")
	sSpawn := m.Site("main.spawn")

	worker := func(t *Thread) {
		for i := 0; i < n; i++ {
			if locked {
				t.Lock(sLock, mu)
			}
			v := t.Load(sLoad, cnt)
			t.Store(sStore, cnt, trace.Int(v.AsInt()+1))
			if locked {
				t.Unlock(sUnlock, mu)
			}
		}
	}
	res := m.Run(func(t *Thread) {
		t.Spawn(sSpawn, "w1", worker)
		t.Spawn(sSpawn, "w2", worker)
	})
	return res, m
}

func TestCounterLockedAlwaysCorrect(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res, m := runCounter(seed, 50, true, nil)
		if res.Outcome != OutcomeOK {
			t.Fatalf("seed %d: outcome = %v, want ok", seed, res.Outcome)
		}
		if got := m.CellValue(0).AsInt(); got != 100 {
			t.Fatalf("seed %d: counter = %d, want 100", seed, got)
		}
	}
}

func TestCounterRacyLosesUpdatesForSomeSeed(t *testing.T) {
	lost := false
	for seed := int64(0); seed < 50; seed++ {
		_, m := runCounter(seed, 20, false, nil)
		if m.CellValue(0).AsInt() < 40 {
			lost = true
			break
		}
	}
	if !lost {
		t.Fatal("no seed in [0,50) exhibited a lost update; the racy window is not schedulable")
	}
}

func TestDeterminismSameSeedSameTrace(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r1, _ := runCounter(seed, 30, false, NewRandomScheduler(seed))
		r2, _ := runCounter(seed, 30, false, NewRandomScheduler(seed))
		if !trace.EventsEqual(r1.Trace, r2.Trace, false) {
			t.Fatalf("seed %d: two runs with identical config produced different traces", seed)
		}
		if r1.Cycles != r2.Cycles {
			t.Fatalf("seed %d: cycles differ: %d vs %d", seed, r1.Cycles, r2.Cycles)
		}
	}
}

func TestDifferentSeedsDifferentInterleavings(t *testing.T) {
	r1, _ := runCounter(1, 30, false, NewRandomScheduler(1))
	r2, _ := runCounter(2, 30, false, NewRandomScheduler(2))
	if trace.EventsEqual(r1.Trace, r2.Trace, true) {
		t.Fatal("seeds 1 and 2 produced identical traces; scheduler seed has no effect")
	}
}

func TestReplayReproducesTraceExactly(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		orig, _ := runCounter(seed, 25, false, NewRandomScheduler(seed))
		rep, _ := runCounter(seed, 25, false, NewReplayScheduler(orig.Trace.Schedule()))
		if !trace.EventsEqual(orig.Trace, rep.Trace, false) {
			t.Fatalf("seed %d: replayed trace differs from original", seed)
		}
	}
}

func TestChannelFIFOAndBlocking(t *testing.T) {
	m := New(Config{Seed: 7, CollectTrace: true})
	ch := m.NewChan("ch", 2)
	out := m.Stream("out")
	sSend := m.Site("prod.send")
	sRecv := m.Site("cons.recv")
	sOut := m.Site("cons.out")
	sSpawn := m.Site("main.spawn")

	res := m.Run(func(t *Thread) {
		t.Spawn(sSpawn, "prod", func(t *Thread) {
			for i := 0; i < 10; i++ {
				t.Send(sSend, ch, trace.Int(int64(i)))
			}
		})
		t.Spawn(sSpawn, "cons", func(t *Thread) {
			for i := 0; i < 10; i++ {
				v := t.Recv(sRecv, ch)
				t.Output(sOut, out, v)
			}
		})
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want ok (terminal: %v)", res.Outcome, res.Terminal)
	}
	got := res.Outputs["out"]
	if len(got) != 10 {
		t.Fatalf("got %d outputs, want 10", len(got))
	}
	for i, v := range got {
		if v.AsInt() != int64(i) {
			t.Fatalf("output[%d] = %d, want %d (FIFO violated)", i, v.AsInt(), i)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := New(Config{Seed: 3, Scheduler: NewRoundRobinScheduler(), CollectTrace: true})
	a := m.NewMutex("a")
	b := m.NewMutex("b")
	s := m.Site("s")
	sp := m.Site("spawn")

	res := m.Run(func(t *Thread) {
		t.Spawn(sp, "t1", func(t *Thread) {
			t.Lock(s, a)
			t.Yield(s)
			t.Lock(s, b)
		})
		t.Spawn(sp, "t2", func(t *Thread) {
			t.Lock(s, b)
			t.Yield(s)
			t.Lock(s, a)
		})
	})
	if res.Outcome != OutcomeDeadlock {
		t.Fatalf("outcome = %v, want deadlock", res.Outcome)
	}
}

func TestUnlockByNonOwnerCrashes(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	mu := m.NewMutex("mu")
	s := m.Site("s")
	res := m.Run(func(t *Thread) {
		t.Unlock(s, mu)
	})
	if res.Outcome != OutcomeCrashed {
		t.Fatalf("outcome = %v, want crashed", res.Outcome)
	}
}

func TestFailStopsMachine(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	s := m.Site("s")
	ran := false
	res := m.Run(func(t *Thread) {
		t.Fail(s, "invariant broken: %d", 42)
		ran = true
	})
	if ran {
		t.Fatal("code after Fail executed")
	}
	if res.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %v, want failed", res.Outcome)
	}
	if res.Terminal.Val.AsString() != "invariant broken: 42" {
		t.Fatalf("terminal message = %q", res.Terminal.Val.AsString())
	}
}

func TestPanicBecomesCrash(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	sp := m.Site("spawn")
	res := m.Run(func(t *Thread) {
		t.Spawn(sp, "bad", func(t *Thread) {
			var p *int
			_ = *p // nil deref panics
		})
		t.Yield(sp)
		t.Yield(sp)
	})
	if res.Outcome != OutcomeCrashed {
		t.Fatalf("outcome = %v, want crashed", res.Outcome)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	s := m.Site("s")
	var before, after uint64
	res := m.Run(func(t *Thread) {
		before = t.Now()
		t.Sleep(s, 10000)
		after = t.Now()
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if after < before+10000 {
		t.Fatalf("sleep advanced clock by %d, want >= 10000", after-before)
	}
}

func TestRecvTimeout(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	ch := m.NewChan("ch", 1)
	s := m.Site("s")
	var ok bool
	res := m.Run(func(t *Thread) {
		_, ok = t.RecvTimeout(s, ch, 500)
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if ok {
		t.Fatal("RecvTimeout on empty channel reported a value")
	}
}

func TestTrySendTryRecv(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	ch := m.NewChan("ch", 1)
	s := m.Site("s")
	res := m.Run(func(t *Thread) {
		if _, ok := t.TryRecv(s, ch); ok {
			t.Fail(s, "recv from empty succeeded")
		}
		if !t.TrySend(s, ch, trace.Int(1)) {
			t.Fail(s, "send to empty failed")
		}
		if t.TrySend(s, ch, trace.Int(2)) {
			t.Fail(s, "send to full succeeded")
		}
		if v, ok := t.TryRecv(s, ch); !ok || v.AsInt() != 1 {
			t.Fail(s, "recv got %v/%v", v, ok)
		}
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Terminal.Val.AsString())
	}
}

func TestInputsAreDeterministicAndRecordedInTrace(t *testing.T) {
	run := func() *Result {
		m := New(Config{Seed: 9, Inputs: SeededInputs(9, 100), CollectTrace: true})
		in := m.DeclareStream("req", trace.TaintData)
		s := m.Site("s")
		return m.Run(func(t *Thread) {
			for i := 0; i < 5; i++ {
				t.Input(s, in)
			}
		})
	}
	r1, r2 := run(), run()
	if len(r1.InputsUsed["req"]) != 5 {
		t.Fatalf("inputs recorded = %d, want 5", len(r1.InputsUsed["req"]))
	}
	for i := range r1.InputsUsed["req"] {
		if !r1.InputsUsed["req"][i].Equal(r2.InputsUsed["req"][i]) {
			t.Fatal("inputs differ across identical runs")
		}
	}
}

func TestTaintPropagation(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	in := m.DeclareStream("payload", trace.TaintData)
	cell := m.NewCell("c", trace.Nil)
	s := m.Site("s")
	res := m.Run(func(t *Thread) {
		v := t.Input(s, in) // taints the thread with Data
		t.Store(s, cell, v)
		t.ClearTaint()
		t.Store(s, cell, trace.Int(1)) // untainted store
		t.Load(s, cell)                // reads untainted cell
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	stores := res.Trace.FilterKind(trace.EvStore)
	if len(stores) != 2 {
		t.Fatalf("stores = %d, want 2", len(stores))
	}
	if stores[0].Taint&trace.TaintData == 0 {
		t.Fatal("first store lost Data taint")
	}
	if stores[1].Taint != trace.TaintNone {
		t.Fatal("ClearTaint did not clear the register")
	}
}

func TestAtomicAddHasNoRaceWindow(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := New(Config{Seed: seed, CollectTrace: false})
		cnt := m.NewCell("cnt", trace.Int(0))
		s := m.Site("s")
		sp := m.Site("spawn")
		w := func(t *Thread) {
			for i := 0; i < 25; i++ {
				t.Add(s, cnt, 1)
			}
		}
		res := m.Run(func(t *Thread) {
			t.Spawn(sp, "a", w)
			t.Spawn(sp, "b", w)
		})
		if res.Outcome != OutcomeOK {
			t.Fatalf("seed %d: outcome %v", seed, res.Outcome)
		}
		if got := m.CellValue(cnt).AsInt(); got != 50 {
			t.Fatalf("seed %d: atomic adds lost updates: %d != 50", seed, got)
		}
	}
}

func TestMaxStepsAborts(t *testing.T) {
	m := New(Config{Seed: 0, MaxSteps: 100, CollectTrace: true})
	s := m.Site("s")
	res := m.Run(func(t *Thread) {
		for {
			t.Yield(s)
		}
	})
	if res.Outcome != OutcomeAborted {
		t.Fatalf("outcome = %v, want aborted", res.Outcome)
	}
}

func TestOverheadAccountsObserverCost(t *testing.T) {
	mkRun := func(obs Observer) *Result {
		m := New(Config{Seed: 4, CollectTrace: true})
		s := m.Site("s")
		c := m.NewCell("c", trace.Int(0))
		if obs != nil {
			m.Attach(obs)
		}
		return m.Run(func(t *Thread) {
			for i := 0; i < 100; i++ {
				t.Store(s, c, trace.Int(int64(i)))
			}
		})
	}
	base := mkRun(nil)
	rec := mkRun(ObserverFunc(func(e *trace.Event) uint64 { return 50 }))
	if base.Overhead() != 1.0 {
		t.Fatalf("baseline overhead = %v, want 1.0", base.Overhead())
	}
	if rec.Overhead() <= 1.0 {
		t.Fatalf("recorded overhead = %v, want > 1.0", rec.Overhead())
	}
	if rec.BaseCycles() != base.BaseCycles() {
		t.Fatalf("recording changed base cycles: %d vs %d", rec.BaseCycles(), base.BaseCycles())
	}
}

func TestSpawnOrderIsDeterministic(t *testing.T) {
	m := New(Config{Seed: 0, CollectTrace: true})
	sp := m.Site("spawn")
	var ids []trace.ThreadID
	res := m.Run(func(t *Thread) {
		for i := 0; i < 5; i++ {
			ids = append(ids, t.Spawn(sp, "w", func(t *Thread) {}))
		}
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	for i, id := range ids {
		if id != trace.ThreadID(i+1) {
			t.Fatalf("child %d got ID %d, want %d", i, id, i+1)
		}
	}
}

package vm

import (
	"fmt"

	"debugdet/internal/trace"
)

// This file implements deterministic VM state snapshots and mid-trace
// restore: the substrate of checkpointed seek and segmented parallel
// replay (see DESIGN.md §5).
//
// A Snapshot captures everything the machine itself owns at an event
// boundary: data state (cells, mutexes, channels, streams), counters
// (clock, seq, recording cycles), thread metadata and the schedule
// position. What it cannot capture is the Go stack of each thread body —
// bodies are ordinary closures — so Restore rebuilds thread positions by
// feed replay: every thread re-executes its body privately, with each VM
// operation returning the result recorded for it in the trace prefix
// instead of engaging the scheduler or touching shared state. Determinism
// guarantees the body's locals end up exactly as they were; the shared
// state is then installed from the snapshot, and the machine resumes
// normal scheduling from the checkpoint as if it had executed the prefix.
// Feed replay is much cheaper per operation than scheduled replay (no
// scheduling round, no event emission, no baton traffic), which is where
// checkpointed seek gets its speedup.

// SlotSnap is a snapshotted value with its provenance.
type SlotSnap struct {
	Val   trace.Value
	Taint trace.Taint
}

// ThreadSnap is the snapshotted metadata of one thread. The body's local
// state is not part of the snapshot (it is reconstructed by feed replay);
// the pending fields describe the operation the thread was parked on, for
// debugger inspection and restore-time validation.
type ThreadSnap struct {
	Name   string
	Daemon bool
	Done   bool
	Taint  trace.Taint
	// PendingValid reports whether the pending fields are meaningful: they
	// are not for done threads, nor for the thread that emitted the
	// checkpoint event (it had not issued its next operation yet when the
	// snapshot was taken — it re-issues it deterministically on restore).
	PendingValid bool
	// PendingCode is the raw operation code (see opNames for rendering).
	PendingCode uint8
	// PendingObj is the operation's object, when it has one.
	PendingObj trace.ObjID
	// PendingDeadline is the absolute virtual-time deadline of a pending
	// sleep or receive-timeout. It must be restored rather than recomputed:
	// the thread issued the operation at an earlier clock than the
	// checkpoint's.
	PendingDeadline uint64
}

// ChanSnap is the snapshotted buffer of one channel, oldest value first.
type ChanSnap struct {
	Slots []SlotSnap
}

// DiskSnap is the snapshotted state of one simulated disk: its record log
// (oldest first, volatile tail included), the durability watermark and the
// lifetime fsync count. The fault plane is program structure, rebuilt by
// setup, and is not part of the snapshot.
type DiskSnap struct {
	Recs    []SlotSnap
	Durable int
	Fsyncs  int
}

// StreamSnap is the snapshotted state of one environment stream. Streams
// may be registered lazily during execution, so the snapshot records the
// name table: restore re-registers missing streams in snapshot order,
// keeping object IDs stable.
type StreamSnap struct {
	Name    string
	InIndex int
	Inputs  []trace.Value
	Outputs []trace.Value
}

// Snapshot is a deterministic capture of machine state at an event
// boundary: after SchedPos scheduling decisions and Seq applied events.
// Snapshots are taken by checkpoint writers during recording (or by the
// debugger on a paused machine) and consumed by Restore.
type Snapshot struct {
	// Seq is the number of events applied when the snapshot was taken; the
	// first event a restored machine emits has this sequence number.
	Seq uint64
	// Clock is the virtual time at the snapshot.
	Clock uint64
	// RecordCycles is the recording work charged so far.
	RecordCycles uint64
	// SchedPos is the number of scheduling decisions consumed: the offset
	// into a recorded schedule stream at which a restored replay resumes.
	SchedPos uint64
	// Live and LiveNonDaemon are the machine's liveness counters.
	Live, LiveNonDaemon int

	Threads []ThreadSnap
	Cells   []SlotSnap
	// Mutexes holds each mutex's owner thread (-1 = free).
	Mutexes []trace.ThreadID
	Chans   []ChanSnap
	Streams []StreamSnap
	Disks   []DiskSnap
}

// NoRunningThread is the sentinel passed to Snapshot when no thread is
// mid-event — every live thread is parked with a valid pending operation
// (a paused machine).
const NoRunningThread trace.ThreadID = -1

// Snapshot captures the machine's current state. running identifies the
// thread that emitted the event being observed, whose pending operation is
// stale (it has not issued its next one yet); pass NoRunningThread on a
// paused machine, where every live thread is parked. Snapshot must only be
// called from an observer (between apply and resume) or while the machine
// is paused — never concurrently with running threads.
func (m *Machine) Snapshot(running trace.ThreadID) *Snapshot {
	s := &Snapshot{
		Seq:           m.seq,
		Clock:         m.clock,
		RecordCycles:  m.recordCycles,
		SchedPos:      m.seq,
		Live:          m.live,
		LiveNonDaemon: m.liveNonDaemon,
		Threads:       make([]ThreadSnap, len(m.threads)),
		Cells:         make([]SlotSnap, len(m.cells)),
		Mutexes:       make([]trace.ThreadID, len(m.mutexes)),
		Chans:         make([]ChanSnap, len(m.chans)),
		Streams:       make([]StreamSnap, len(m.streams)),
		Disks:         make([]DiskSnap, len(m.disks)),
	}
	for i, t := range m.threads {
		ts := ThreadSnap{Name: t.name, Daemon: t.daemon, Done: t.done, Taint: t.taint}
		if !t.done && t.id != running && t.pending.code != opNone {
			ts.PendingValid = true
			ts.PendingCode = uint8(t.pending.code)
			ts.PendingObj = t.pending.obj
			ts.PendingDeadline = t.pending.deadline
		}
		s.Threads[i] = ts
	}
	for i := range m.cells {
		s.Cells[i] = SlotSnap{Val: m.cells[i].slot.val, Taint: m.cells[i].slot.taint}
	}
	for i := range m.mutexes {
		s.Mutexes[i] = m.mutexes[i].owner
	}
	for i := range m.chans {
		c := &m.chans[i]
		var slots []SlotSnap
		for j := c.head; j < len(c.buf); j++ {
			slots = append(slots, SlotSnap{Val: c.buf[j].val, Taint: c.buf[j].taint})
		}
		s.Chans[i] = ChanSnap{Slots: slots}
	}
	for i := range m.streams {
		st := &m.streams[i]
		s.Streams[i] = StreamSnap{
			Name:    st.name,
			InIndex: st.inIndex,
			Inputs:  append([]trace.Value(nil), st.inputs...),
			Outputs: append([]trace.Value(nil), st.outputs...),
		}
	}
	for i := range m.disks {
		d := &m.disks[i]
		recs := make([]SlotSnap, len(d.recs))
		for j := range d.recs {
			recs[j] = SlotSnap{Val: d.recs[j].val, Taint: d.recs[j].taint}
		}
		s.Disks[i] = DiskSnap{Recs: recs, Durable: d.durable, Fsyncs: d.fsyncs}
	}
	return s
}

// EqualState compares the data-state portion of two snapshots — counters,
// cells, mutexes, channels, streams and thread liveness — and returns a
// descriptive error on the first difference. Thread pending operations are
// excluded: they legitimately differ between a snapshot taken mid-event
// and one taken on a paused machine (see Snapshot).
func (s *Snapshot) EqualState(o *Snapshot) error {
	switch {
	case s.Seq != o.Seq:
		return fmt.Errorf("seq %d != %d", s.Seq, o.Seq)
	case s.Clock != o.Clock:
		return fmt.Errorf("clock %d != %d", s.Clock, o.Clock)
	case s.SchedPos != o.SchedPos:
		return fmt.Errorf("sched pos %d != %d", s.SchedPos, o.SchedPos)
	case s.Live != o.Live || s.LiveNonDaemon != o.LiveNonDaemon:
		return fmt.Errorf("liveness %d/%d != %d/%d", s.Live, s.LiveNonDaemon, o.Live, o.LiveNonDaemon)
	case len(s.Threads) != len(o.Threads):
		return fmt.Errorf("thread count %d != %d", len(s.Threads), len(o.Threads))
	case len(s.Cells) != len(o.Cells):
		return fmt.Errorf("cell count %d != %d", len(s.Cells), len(o.Cells))
	case len(s.Mutexes) != len(o.Mutexes):
		return fmt.Errorf("mutex count %d != %d", len(s.Mutexes), len(o.Mutexes))
	case len(s.Chans) != len(o.Chans):
		return fmt.Errorf("chan count %d != %d", len(s.Chans), len(o.Chans))
	case len(s.Disks) != len(o.Disks):
		return fmt.Errorf("disk count %d != %d", len(s.Disks), len(o.Disks))
	}
	// Stream tables may differ by trailing untouched streams: the thread
	// mid-event at capture time registers its next streams during feed
	// replay, slightly ahead of when the snapshot saw them. Extras must be
	// pristine.
	if len(s.Streams) != len(o.Streams) {
		longer := s.Streams
		if len(o.Streams) > len(longer) {
			longer = o.Streams
		}
		for i := min(len(s.Streams), len(o.Streams)); i < len(longer); i++ {
			ex := longer[i]
			if ex.InIndex != 0 || len(ex.Inputs) != 0 || len(ex.Outputs) != 0 {
				return fmt.Errorf("stream count %d != %d with non-pristine extra %q", len(s.Streams), len(o.Streams), ex.Name)
			}
		}
	}
	for i := range s.Threads {
		a, b := s.Threads[i], o.Threads[i]
		if a.Name != b.Name || a.Daemon != b.Daemon || a.Done != b.Done {
			return fmt.Errorf("thread %d metadata differs: %+v != %+v", i, a, b)
		}
		// Taint registers are only comparable between parked observations:
		// the thread that emitted a checkpoint's event mutates its
		// register (body ClearTaint/AddTaint) before parking again.
		if a.PendingValid && b.PendingValid && a.Taint != b.Taint {
			return fmt.Errorf("thread %d taint %v != %v", i, a.Taint, b.Taint)
		}
	}
	for i := range s.Cells {
		if !s.Cells[i].Val.Equal(o.Cells[i].Val) || s.Cells[i].Taint != o.Cells[i].Taint {
			return fmt.Errorf("cell %d: %v != %v", i, s.Cells[i], o.Cells[i])
		}
	}
	for i := range s.Mutexes {
		if s.Mutexes[i] != o.Mutexes[i] {
			return fmt.Errorf("mutex %d owner %d != %d", i, s.Mutexes[i], o.Mutexes[i])
		}
	}
	for i := range s.Chans {
		a, b := s.Chans[i].Slots, o.Chans[i].Slots
		if len(a) != len(b) {
			return fmt.Errorf("chan %d depth %d != %d", i, len(a), len(b))
		}
		for j := range a {
			if !a[j].Val.Equal(b[j].Val) || a[j].Taint != b[j].Taint {
				return fmt.Errorf("chan %d slot %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
	for i := range s.Disks {
		a, b := s.Disks[i], o.Disks[i]
		if a.Durable != b.Durable || a.Fsyncs != b.Fsyncs || len(a.Recs) != len(b.Recs) {
			return fmt.Errorf("disk %d state %d/%d/%d != %d/%d/%d",
				i, len(a.Recs), a.Durable, a.Fsyncs, len(b.Recs), b.Durable, b.Fsyncs)
		}
		for j := range a.Recs {
			if !a.Recs[j].Val.Equal(b.Recs[j].Val) || a.Recs[j].Taint != b.Recs[j].Taint {
				return fmt.Errorf("disk %d record %d: %v != %v", i, j, a.Recs[j], b.Recs[j])
			}
		}
	}
	for i := 0; i < min(len(s.Streams), len(o.Streams)); i++ {
		a, b := s.Streams[i], o.Streams[i]
		if a.Name != b.Name || a.InIndex != b.InIndex || !valuesEqual(a.Inputs, b.Inputs) || !valuesEqual(a.Outputs, b.Outputs) {
			return fmt.Errorf("stream %d (%s) state differs", i, a.Name)
		}
	}
	return nil
}

func valuesEqual(a, b []trace.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// FeedEntry is the recorded outcome of one thread operation, used during
// restore: the value the operation returned and whether it succeeded (the
// try/timeout variants' second result). Kind is the event kind the
// operation produced, validated against the re-issued operation so a
// corrupted or mismatched feed surfaces as a restore error instead of a
// silently divergent execution. Taint is the provenance the operation
// added to the thread's taint register (the slot or stream taint of
// loads, receives and inputs) — feed replay ORs it in at the recorded
// program point, so the register interleaves correctly with the body's
// own ClearTaint/AddTaint calls.
type FeedEntry struct {
	Kind  trace.EventKind
	Val   trace.Value
	OK    bool
	Taint trace.Taint
}

// feedCompatible reports whether an operation issued during feed replay
// can have produced an event of the given kind.
func feedCompatible(code opCode, kind trace.EventKind) bool {
	//lint:exhaustive-default opNone and opPanic never appear in feeds; the fallthrough rejects them as incompatible
	switch code {
	case opLoad:
		return kind == trace.EvLoad
	case opStore:
		return kind == trace.EvStore
	case opLock:
		return kind == trace.EvLock
	case opUnlock:
		return kind == trace.EvUnlock
	case opSend:
		return kind == trace.EvSend
	case opRecv:
		return kind == trace.EvRecv
	case opTrySend:
		return kind == trace.EvSend || kind == trace.EvYield
	case opTryRecv, opRecvTimeout:
		return kind == trace.EvRecv || kind == trace.EvYield
	case opInput:
		return kind == trace.EvInput
	case opOutput:
		return kind == trace.EvOutput
	case opYield:
		return kind == trace.EvYield
	case opSleep:
		return kind == trace.EvSleep
	case opObserve:
		return kind == trace.EvObserve
	case opSpawn:
		return kind == trace.EvSpawn
	case opExit:
		return kind == trace.EvExit
	case opFail:
		return kind == trace.EvFail
	case opCrash:
		return kind == trace.EvCrash
	case opDiskWrite:
		return kind == trace.EvDiskWrite
	case opDiskRead:
		return kind == trace.EvDiskRead
	case opDiskFsync:
		return kind == trace.EvDiskFsync
	case opDiskBarrier:
		return kind == trace.EvDiskBarrier
	case opDiskCrash:
		return kind == trace.EvDiskCrash
	}
	return false
}

// restoreSpawn binds a feed-replayed spawn to its pre-created thread
// record: the child's identity comes from the feed (the recorded child
// ID), its body from the spawning site. It reports whether the binding is
// consistent with the snapshot.
func (m *Machine) restoreSpawn(req *opReq, fe FeedEntry) error {
	id := fe.Val.AsInt()
	if id < 0 || int(id) >= len(m.threads) {
		return fmt.Errorf("vm: restore: spawn of unknown thread %d", id)
	}
	child := m.threads[id]
	if child.name != req.childName {
		return fmt.Errorf("vm: restore: spawn name %q, snapshot has %q", req.childName, child.name)
	}
	child.body = req.childBody
	if req.msg == "daemon" {
		child.daemon = true
	}
	return nil
}

// Restore reconstructs a machine mid-execution: setup builds the program
// on the fresh machine (object and site registration must be deterministic,
// exactly as for a normal run) and returns the main thread body; snap is
// the state to restore; feeds holds, per thread ID, the outcomes of the
// operations that thread had applied before the snapshot (see FeedEntry —
// typically derived from a recorded trace prefix by the checkpoint
// package).
//
// Each thread body is re-executed privately against its feed — one thread
// at a time, in ID order, with no scheduling and no shared-state effects —
// until it parks at its first post-checkpoint operation (or finishes, for
// threads the snapshot marks done). The shared state is then installed
// from the snapshot. The returned machine is paused at snap.Seq: drive it
// with Continue / Finish, configured with a scheduler positioned at
// snap.SchedPos.
//
// Restore validates as it goes — feed/operation kind mismatches, spawn
// identity mismatches, threads parking when the snapshot says they
// finished (or vice versa) and structural differences between the built
// program and the snapshot all return errors, with the machine's
// goroutines released.
func Restore(cfg Config, setup func(*Machine) func(*Thread), snap *Snapshot, feeds [][]FeedEntry) (*Machine, error) {
	m := New(cfg)
	main := setup(m)
	if len(m.threads) != 0 {
		return nil, fmt.Errorf("vm: restore: setup started threads")
	}
	switch {
	case len(snap.Threads) == 0:
		return nil, fmt.Errorf("vm: restore: snapshot has no threads")
	case len(feeds) != len(snap.Threads):
		return nil, fmt.Errorf("vm: restore: %d feeds for %d threads", len(feeds), len(snap.Threads))
	case len(m.cells) != len(snap.Cells):
		return nil, fmt.Errorf("vm: restore: program has %d cells, snapshot %d", len(m.cells), len(snap.Cells))
	case len(m.mutexes) != len(snap.Mutexes):
		return nil, fmt.Errorf("vm: restore: program has %d mutexes, snapshot %d", len(m.mutexes), len(snap.Mutexes))
	case len(m.chans) != len(snap.Chans):
		return nil, fmt.Errorf("vm: restore: program has %d chans, snapshot %d", len(m.chans), len(snap.Chans))
	case len(m.disks) != len(snap.Disks):
		return nil, fmt.Errorf("vm: restore: program has %d disks, snapshot %d", len(m.disks), len(snap.Disks))
	case len(m.streams) > len(snap.Streams):
		// Streams may be registered lazily during execution, so the built
		// program can know fewer than the snapshot — never more.
		return nil, fmt.Errorf("vm: restore: program has %d streams, snapshot %d", len(m.streams), len(snap.Streams))
	}
	// Bring the stream table up to the snapshot's, in snapshot order, so
	// lazily registered streams keep their object IDs: streams the bodies
	// register during feed replay resolve to these slots, and any stream
	// registered beyond them (by the thread that was mid-event at capture
	// time, whose post-event code runs during feed replay) lands after —
	// exactly where the original run would have put it.
	for i, ss := range snap.Streams {
		if i < len(m.streams) {
			if m.streams[i].name != ss.Name {
				return nil, fmt.Errorf("vm: restore: stream %d is %q, snapshot has %q", i, m.streams[i].name, ss.Name)
			}
			continue
		}
		m.Stream(ss.Name)
	}

	// Pre-create every thread record the snapshot knows about. IDs are
	// dense and spawner IDs are strictly smaller than their children's, so
	// replaying feeds in ID order guarantees each body has been bound (by
	// its parent's spawn) before its turn.
	for i := range snap.Threads {
		ts := &snap.Threads[i]
		m.threads = append(m.threads, &Thread{
			m:        m,
			id:       trace.ThreadID(i),
			name:     ts.Name,
			daemon:   ts.Daemon,
			resumeCh: make(chan struct{}),
			unwound:  make(chan struct{}),
		})
	}
	m.threads[0].body = main
	m.running = true

	// parked collects live threads as they reach their first
	// post-checkpoint operation, so a failed restore can release exactly
	// the goroutines that exist.
	parked := make([]*Thread, 0, len(m.threads))
	fail := func(err error) (*Machine, error) {
		m.stopped = true
		for _, t := range parked {
			t.done = true
			t.resumeCh <- struct{}{}
			<-t.unwound
		}
		return nil, err
	}

	for i := range snap.Threads {
		ts := &snap.Threads[i]
		t := m.threads[i]
		if t.body == nil {
			return fail(fmt.Errorf("vm: restore: thread %d (%s) was never spawned during feed replay", i, ts.Name))
		}
		t.feed = feeds[i]
		//lint:nondet-ok VM threads are hosted on goroutines; the yieldCh handshake below serializes them under the machine's schedule
		go m.threadMain(t)
		select {
		case p := <-m.yieldCh:
			parked = append(parked, p)
			if p != t {
				return fail(fmt.Errorf("vm: restore: foreign thread %d parked while replaying %d", p.id, i))
			}
			if t.pending.code == opPanic {
				return fail(fmt.Errorf("vm: restore: thread %d (%s): %s", i, ts.Name, t.pending.msg))
			}
			if ts.Done {
				return fail(fmt.Errorf("vm: restore: thread %d (%s) parked but snapshot marks it done", i, ts.Name))
			}
			if t.feedPos != len(feeds[i]) {
				return fail(fmt.Errorf("vm: restore: thread %d (%s) parked after %d of %d feed entries", i, ts.Name, t.feedPos, len(feeds[i])))
			}
			if ts.PendingValid {
				if opCode(ts.PendingCode) != t.pending.code || ts.PendingObj != t.pending.obj {
					return fail(fmt.Errorf("vm: restore: thread %d (%s) parked at op %d obj %d, snapshot has op %d obj %d",
						i, ts.Name, t.pending.code, t.pending.obj, ts.PendingCode, ts.PendingObj))
				}
				t.pending.deadline = ts.PendingDeadline
			}
		case <-t.unwound:
			if !ts.Done {
				return fail(fmt.Errorf("vm: restore: thread %d (%s) finished but snapshot marks it live", i, ts.Name))
			}
			if t.feedPos != len(feeds[i]) {
				return fail(fmt.Errorf("vm: restore: thread %d (%s) finished after %d of %d feed entries", i, ts.Name, t.feedPos, len(feeds[i])))
			}
			t.done = true
		}
		// The taint register is not installed from the snapshot: feed
		// replay reproduces it exactly (entry taints interleaved with the
		// body's own ClearTaint/AddTaint calls), including body code that
		// ran after the snapshot event but before the thread's next
		// operation — which the snapshot cannot see.
	}

	// Feed replay left shared state untouched; install it from the
	// snapshot.
	for i := range m.cells {
		m.cells[i].slot = slot{val: snap.Cells[i].Val, taint: snap.Cells[i].Taint}
	}
	for i := range m.mutexes {
		m.mutexes[i].owner = snap.Mutexes[i]
	}
	for i := range m.chans {
		c := &m.chans[i]
		c.buf = c.buf[:0]
		c.head = 0
		for _, sl := range snap.Chans[i].Slots {
			c.push(slot{val: sl.Val, taint: sl.Taint})
		}
	}
	for i := range snap.Streams {
		// Streams past the snapshot (registered during feed replay by the
		// mid-event thread) stay pristine, as they were in the original.
		st := &m.streams[i]
		ss := &snap.Streams[i]
		st.inIndex = ss.InIndex
		st.inputs = append(st.inputs[:0], ss.Inputs...)
		st.outputs = append(st.outputs[:0], ss.Outputs...)
	}
	for i := range m.disks {
		d := &m.disks[i]
		ds := &snap.Disks[i]
		d.recs = d.recs[:0]
		for _, sl := range ds.Recs {
			d.recs = append(d.recs, slot{val: sl.Val, taint: sl.Taint})
		}
		d.durable = ds.Durable
		d.fsyncs = ds.Fsyncs
	}
	m.clock = snap.Clock
	m.seq = snap.Seq
	m.recordCycles = snap.RecordCycles
	m.live = snap.Live
	m.liveNonDaemon = snap.LiveNonDaemon
	return m, nil
}

// opNames renders operation codes for thread inspection.
var opNames = [...]string{
	opNone: "idle", opLoad: "load", opStore: "store", opLock: "lock",
	opUnlock: "unlock", opSend: "send", opRecv: "recv", opTrySend: "try-send",
	opTryRecv: "try-recv", opRecvTimeout: "recv-timeout", opInput: "input",
	opOutput: "output", opYield: "yield", opSleep: "sleep", opObserve: "observe",
	opSpawn: "spawn", opExit: "exit", opFail: "fail", opCrash: "crash",
	opPanic: "panic", opDiskWrite: "disk-write", opDiskRead: "disk-read",
	opDiskFsync: "disk-fsync", opDiskBarrier: "disk-barrier",
	opDiskCrash: "disk-crash",
}

// OpName renders a ThreadSnap.PendingCode as the operation's lower-case
// name.
func OpName(code uint8) string {
	if int(code) < len(opNames) && opNames[code] != "" {
		return opNames[code]
	}
	return fmt.Sprintf("op(%d)", code)
}

// ThreadInfo describes one thread of a paused machine for debugger
// inspection.
type ThreadInfo struct {
	ID     trace.ThreadID
	Name   string
	Daemon bool
	Done   bool
	// Status renders what the thread is doing: "done", or its pending
	// operation with the object's registered name.
	Status string
}

// Threads describes every thread for inspection. Meaningful on a paused
// (or finished) machine.
func (m *Machine) Threads() []ThreadInfo {
	out := make([]ThreadInfo, len(m.threads))
	for i, t := range m.threads {
		ti := ThreadInfo{ID: t.id, Name: t.name, Daemon: t.daemon, Done: t.done}
		switch {
		case t.done:
			ti.Status = "done"
		default:
			ti.Status = m.describePending(t)
		}
		out[i] = ti
	}
	return out
}

// describePending renders a parked thread's pending operation.
func (m *Machine) describePending(t *Thread) string {
	req := &t.pending
	obj := ""
	//lint:exhaustive-default ops without a named object render with an empty operand; description only
	switch req.code {
	case opLoad, opStore:
		obj = m.CellName(req.obj)
	case opLock, opUnlock:
		obj = m.MutexName(req.obj)
	case opSend, opRecv, opTrySend, opTryRecv, opRecvTimeout:
		obj = m.ChanName(req.obj)
	case opInput, opOutput:
		obj = m.StreamName(req.obj)
	case opDiskWrite, opDiskRead, opDiskFsync, opDiskBarrier, opDiskCrash:
		obj = m.DiskName(req.obj)
	}
	if obj == "" {
		return OpName(uint8(req.code))
	}
	return OpName(uint8(req.code)) + " " + obj
}

// NumCells returns how many cells the program registered.
func (m *Machine) NumCells() int { return len(m.cells) }

// NumMutexes returns how many mutexes the program registered.
func (m *Machine) NumMutexes() int { return len(m.mutexes) }

// NumChans returns how many channels the program registered.
func (m *Machine) NumChans() int { return len(m.chans) }

// NumStreams returns how many streams are registered so far.
func (m *Machine) NumStreams() int { return len(m.streams) }

// MutexOwner returns the owning thread of a mutex (-1 when free or
// unknown).
func (m *Machine) MutexOwner(id trace.ObjID) trace.ThreadID {
	if int(id) < len(m.mutexes) {
		return m.mutexes[id].owner
	}
	return -1
}

// ChanValues returns the buffered values of a channel, oldest first.
func (m *Machine) ChanValues(id trace.ObjID) []trace.Value {
	if int(id) >= len(m.chans) {
		return nil
	}
	c := &m.chans[id]
	out := make([]trace.Value, 0, c.size())
	for j := c.head; j < len(c.buf); j++ {
		out = append(out, c.buf[j].val)
	}
	return out
}

package vm

import (
	"math/rand"

	"debugdet/internal/trace"
)

// Observer receives every event the machine applies, in order. Observers
// implement recorders, online detectors and triggers. The returned value is
// the number of virtual cycles the observer's work costs at runtime
// (recording cost); the machine adds it to the clock and accounts it
// separately so overhead ratios can be computed. Pure analysis observers
// (oracles that a production system would not run) return 0.
//
// The *trace.Event points into a buffer the machine reuses for the next
// event: observers must read or copy it during OnEvent, never retain the
// pointer.
type Observer interface {
	OnEvent(e *trace.Event) uint64
}

// FinishObserver is an optional extension of Observer for observers that
// buffer state across events (segment recorders, streaming writers):
// OnFinish fires exactly once, from Machine.Finish, after the execution
// has stopped and before the Result is built. The machine is quiescent
// during the call, so the observer may inspect it (StreamNames, Seq) and
// flush whatever it buffered.
type FinishObserver interface {
	Observer
	OnFinish(outcome Outcome)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e *trace.Event) uint64

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e *trace.Event) uint64 { return f(e) }

// InputSource supplies the program's environment: the value returned by the
// i-th Input operation on a stream. Implementations must be deterministic
// functions of (stream, index) so that executions are reproducible from the
// seed alone.
type InputSource interface {
	Next(stream string, index int) trace.Value
}

// InputSourceFunc adapts a function to the InputSource interface.
type InputSourceFunc func(stream string, index int) trace.Value

// Next implements InputSource.
func (f InputSourceFunc) Next(stream string, index int) trace.Value { return f(stream, index) }

// ZeroInputs is an input source that returns zero for every request.
var ZeroInputs InputSource = InputSourceFunc(func(string, int) trace.Value { return trace.Int(0) })

// SeededInputs returns a deterministic pseudo-random input source: the
// value for (stream, index) is derived from hashing the stream name, the
// index and the seed, and is uniform in [0, limit). It is stateless, so the
// same (stream, index) always yields the same value regardless of
// consumption order.
func SeededInputs(seed int64, limit int64) InputSource {
	return InputSourceFunc(func(stream string, index int) trace.Value {
		return trace.Int(hashInput(seed, stream, index) % limit)
	})
}

// hashInput mixes (seed, stream, index) into a non-negative int64 using an
// FNV-1a/splitmix-style construction. It is the deterministic randomness
// primitive for input sources.
func hashInput(seed int64, stream string, index int) int64 {
	h := uint64(1469598103934665603) ^ uint64(seed)*1099511628211
	for i := 0; i < len(stream); i++ {
		h = (h ^ uint64(stream[i])) * 1099511628211
	}
	h = (h ^ uint64(index)) * 1099511628211
	// splitmix64 finalizer for avalanche.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	v := int64(h &^ (1 << 63))
	return v
}

// HashValue exposes the deterministic hash for workloads that need
// reproducible pseudo-random decisions outside the input mechanism (for
// example, sizing a payload from a request index).
func HashValue(seed int64, stream string, index int) int64 { return hashInput(seed, stream, index) }

// MapInputs is an input source backed by explicit per-stream value
// sequences, falling back to a base source when a stream runs out. It is
// how the inference engine forces candidate inputs during execution
// synthesis.
type MapInputs struct {
	Values map[string][]trace.Value
	Base   InputSource
}

// Next implements InputSource.
func (m *MapInputs) Next(stream string, index int) trace.Value {
	if vs, ok := m.Values[stream]; ok && index < len(vs) {
		return vs[index]
	}
	if m.Base != nil {
		return m.Base.Next(stream, index)
	}
	return trace.Int(0)
}

// newRand returns a rand.Rand seeded deterministically; all VM-internal
// randomness goes through this so runs are reproducible.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"debugdet/internal/trace"
)

// randomProgram builds a random multi-threaded program from a seed: a few
// threads performing random loads, stores, lock pairs, channel ops, inputs
// and outputs over shared state. Programs are constructed to terminate:
// loops are bounded and channel operations use try-variants.
type randomProgram struct {
	threads int
	ops     [][]randomOp
}

type randomOp struct {
	kind int // 0 load, 1 store, 2 lock/unlock pair, 3 trysend, 4 tryrecv, 5 input, 6 output, 7 yield, 8 add
	obj  int
	val  int64
}

func genProgram(r *rand.Rand) randomProgram {
	p := randomProgram{threads: 1 + r.Intn(4)}
	p.ops = make([][]randomOp, p.threads)
	for t := range p.ops {
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			p.ops[t] = append(p.ops[t], randomOp{
				kind: r.Intn(9),
				obj:  r.Intn(4),
				val:  int64(r.Intn(1000)),
			})
		}
	}
	return p
}

// build materializes the program on a machine.
func (p randomProgram) build(m *Machine) func(*Thread) {
	cells := m.NewCells("cell", 4, trace.Int(0))
	var mus, chans []trace.ObjID
	for i := 0; i < 4; i++ {
		mus = append(mus, m.NewMutex("mu"))
		chans = append(chans, m.NewChan("ch", 2))
	}
	in := m.DeclareStream("in", trace.TaintData)
	out := m.Stream("out")
	site := m.Site("op")
	spawn := m.Site("spawn")

	runOps := func(t *Thread, ops []randomOp) {
		for _, op := range ops {
			switch op.kind {
			case 0:
				t.Load(site, cells[op.obj])
			case 1:
				t.Store(site, cells[op.obj], trace.Int(op.val))
			case 2:
				t.Lock(site, mus[op.obj])
				t.Store(site, cells[op.obj], trace.Int(op.val))
				t.Unlock(site, mus[op.obj])
			case 3:
				t.TrySend(site, chans[op.obj], trace.Int(op.val))
			case 4:
				t.TryRecv(site, chans[op.obj])
			case 5:
				t.Input(site, in)
			case 6:
				t.Output(site, out, trace.Int(op.val))
			case 7:
				t.Yield(site)
			case 8:
				t.Add(site, cells[op.obj], 1)
			}
		}
	}
	return func(t *Thread) {
		for w := 1; w < p.threads; w++ {
			ops := p.ops[w]
			t.Spawn(spawn, "w", func(t *Thread) { runOps(t, ops) })
		}
		runOps(t, p.ops[0])
	}
}

func runProgram(p randomProgram, sched Scheduler, seed int64) *Result {
	m := New(Config{Seed: seed, Scheduler: sched, Inputs: SeededInputs(seed, 100), CollectTrace: true})
	main := p.build(m)
	return m.Run(main)
}

// TestQuickRandomProgramsTerminateCleanly: random programs built from the
// generator never wedge the machine.
func TestQuickRandomProgramsTerminateCleanly(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		res := runProgram(p, NewRandomScheduler(seed), seed)
		return res.Outcome == OutcomeOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism: same seed, same program — bit-identical traces.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		a := runProgram(p, NewRandomScheduler(seed), seed)
		b := runProgram(p, NewRandomScheduler(seed), seed)
		return trace.EventsEqual(a.Trace, b.Trace, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReplayFidelity: the schedule extracted from any execution
// replays to the identical execution — the foundational record/replay
// property, checked across random programs and schedulers.
func TestQuickReplayFidelity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		orig := runProgram(p, NewRandomScheduler(seed), seed)
		rep := runProgram(p, NewReplayScheduler(orig.Trace.Schedule()), seed)
		return trace.EventsEqual(orig.Trace, rep.Trace, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPCTReplayFidelity: the property holds for PCT-generated
// executions too (the inference engine relies on it).
func TestQuickPCTReplayFidelity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		orig := runProgram(p, NewPCTScheduler(seed, 256, 3), seed)
		rep := runProgram(p, NewReplayScheduler(orig.Trace.Schedule()), seed)
		return trace.EventsEqual(orig.Trace, rep.Trace, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickObserversDoNotPerturb: attaching a costly observer never
// changes the execution (probe-effect freedom).
func TestQuickObserversDoNotPerturb(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		plain := runProgram(p, NewRandomScheduler(seed), seed)

		m := New(Config{Seed: seed, Scheduler: NewRandomScheduler(seed), Inputs: SeededInputs(seed, 100), CollectTrace: true})
		main := p.build(m)
		m.Attach(ObserverFunc(func(*trace.Event) uint64 { return 1000 }))
		observed := m.Run(main)

		return trace.EventsEqual(plain.Trace, observed.Trace, true) &&
			observed.RecordCycles > 0 &&
			plain.Cycles == observed.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScheduleIsTotalOrderOfEvents: every event's thread appears in
// the schedule at its position — schedules and traces are two views of
// one decision sequence.
func TestQuickScheduleIsTotalOrderOfEvents(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		res := runProgram(p, NewRandomScheduler(seed), seed)
		sched := res.Trace.Schedule()
		if len(sched) != len(res.Trace.Events) {
			return false
		}
		for i, e := range res.Trace.Events {
			if sched[i] != e.TID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

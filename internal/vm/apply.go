package vm

import (
	"fmt"

	"debugdet/internal/trace"
)

// applyOp executes t's pending operation against machine state, emits the
// corresponding event, and deposits the result in t. The caller guarantees
// the op is enabled. All shared state is mutated here, on the machine's
// goroutine, so the VM needs no internal locking.
func (m *Machine) applyOp(t *Thread) {
	req := &t.pending
	t.result = trace.Nil
	t.resultOK = true

	switch req.code {
	case opLoad:
		c := &m.cells[req.obj]
		t.result = c.slot.val
		t.taint |= c.slot.taint
		m.emit(t, trace.EvLoad, req.site, req.obj, c.slot.val, c.slot.taint)

	case opStore:
		c := &m.cells[req.obj]
		v := req.val
		if req.msg == "add" {
			v = trace.Int(c.slot.val.AsInt() + req.val.AsInt())
		}
		c.slot = slot{val: v, taint: t.taint}
		t.result = v
		m.emit(t, trace.EvStore, req.site, req.obj, v, t.taint)

	case opLock:
		mu := &m.mutexes[req.obj]
		if mu.owner != -1 {
			panic("vm: lock applied while held")
		}
		mu.owner = t.id
		m.emit(t, trace.EvLock, req.site, req.obj, trace.Nil, trace.TaintNone)

	case opUnlock:
		mu := &m.mutexes[req.obj]
		if mu.owner != t.id {
			m.emit(t, trace.EvCrash, req.site, req.obj,
				trace.Str(fmt.Sprintf("unlock of %s by non-owner %s", mu.name, t.name)), trace.TaintNone)
			return
		}
		mu.owner = -1
		m.emit(t, trace.EvUnlock, req.site, req.obj, trace.Nil, trace.TaintNone)

	case opSend:
		ch := &m.chans[req.obj]
		if ch.full() {
			panic("vm: send applied while full")
		}
		ch.push(slot{val: req.val, taint: t.taint})
		m.emit(t, trace.EvSend, req.site, req.obj, req.val, t.taint)

	case opTrySend:
		ch := &m.chans[req.obj]
		if ch.full() {
			t.resultOK = false
			m.emit(t, trace.EvYield, req.site, req.obj, trace.Nil, trace.TaintNone)
			return
		}
		ch.push(slot{val: req.val, taint: t.taint})
		m.emit(t, trace.EvSend, req.site, req.obj, req.val, t.taint)

	case opRecv:
		ch := &m.chans[req.obj]
		if ch.empty() {
			panic("vm: recv applied while empty")
		}
		s := ch.pop()
		t.result = s.val
		t.taint |= s.taint
		m.emit(t, trace.EvRecv, req.site, req.obj, s.val, s.taint)

	case opTryRecv:
		ch := &m.chans[req.obj]
		if ch.empty() {
			t.resultOK = false
			m.emit(t, trace.EvYield, req.site, req.obj, trace.Nil, trace.TaintNone)
			return
		}
		s := ch.pop()
		t.result = s.val
		t.taint |= s.taint
		m.emit(t, trace.EvRecv, req.site, req.obj, s.val, s.taint)

	case opRecvTimeout:
		ch := &m.chans[req.obj]
		if ch.empty() {
			// Enabled via deadline expiry: timeout result.
			t.resultOK = false
			m.emit(t, trace.EvYield, req.site, req.obj, trace.Nil, trace.TaintNone)
			return
		}
		s := ch.pop()
		t.result = s.val
		t.taint |= s.taint
		m.emit(t, trace.EvRecv, req.site, req.obj, s.val, s.taint)

	case opInput:
		s := &m.streams[req.obj]
		v := m.inputs.Next(s.name, s.inIndex)
		s.inIndex++
		s.inputs = append(s.inputs, v)
		t.result = v
		t.taint |= s.inTaint
		m.emit(t, trace.EvInput, req.site, req.obj, v, s.inTaint)

	case opOutput:
		s := &m.streams[req.obj]
		s.outputs = append(s.outputs, req.val)
		m.emit(t, trace.EvOutput, req.site, req.obj, req.val, t.taint)

	case opYield:
		m.emit(t, trace.EvYield, req.site, 0, trace.Nil, trace.TaintNone)

	case opSleep:
		// The absolute deadline is machine bookkeeping, not part of the
		// logical execution: replays run on different clocks (recording
		// overhead absent, time gates relaxed) and must still produce
		// identical event sequences.
		m.emit(t, trace.EvSleep, req.site, 0, trace.Nil, trace.TaintNone)

	case opObserve:
		m.emit(t, trace.EvObserve, req.site, req.obj, req.val, t.taint)

	case opSpawn:
		child := m.newThread(req.childName, req.childBody)
		if req.msg == "daemon" {
			child.daemon = true
			m.liveNonDaemon--
		}
		t.result = trace.Int(int64(child.id))
		m.emit(t, trace.EvSpawn, req.site, trace.ObjID(child.id), trace.Str(req.childName), trace.TaintNone)
		if !m.stopped {
			m.startThread(child)
		}

	case opExit:
		t.done = true
		m.live--
		if !t.daemon {
			m.liveNonDaemon--
		}
		m.emit(t, trace.EvExit, req.site, 0, trace.Nil, trace.TaintNone)

	case opFail:
		m.emit(t, trace.EvFail, req.site, 0, trace.Str(req.msg), t.taint)

	case opCrash:
		m.emit(t, trace.EvCrash, req.site, 0, trace.Str(req.msg), t.taint)

	case opPanic:
		t.done = true
		m.live--
		if !t.daemon {
			m.liveNonDaemon--
		}
		m.emit(t, trace.EvCrash, trace.NoSite, 0, trace.Str("panic: "+req.msg), trace.TaintNone)

	case opDiskWrite:
		d := &m.disks[req.obj]
		d.recs = append(d.recs, slot{val: req.val, taint: t.taint})
		t.result = req.val
		m.emit(t, trace.EvDiskWrite, req.site, req.obj, req.val, t.taint)

	case opDiskRead:
		d := &m.disks[req.obj]
		idx := int(req.deadline)
		if idx >= 0 && idx < len(d.recs) {
			s := d.recs[idx]
			t.result = s.val
			t.taint |= s.taint
			m.emit(t, trace.EvDiskRead, req.site, req.obj, s.val, s.taint)
		} else {
			m.emit(t, trace.EvDiskRead, req.site, req.obj, trace.Nil, trace.TaintNone)
		}

	case opDiskFsync:
		d := &m.disks[req.obj]
		d.fsyncs++
		d.durable = d.fsyncDurable(d.fsyncs)
		t.result = trace.Int(int64(d.durable))
		m.emit(t, trace.EvDiskFsync, req.site, req.obj, t.result, trace.TaintNone)

	case opDiskBarrier:
		d := &m.disks[req.obj]
		d.durable = len(d.recs)
		t.result = trace.Int(int64(d.durable))
		m.emit(t, trace.EvDiskBarrier, req.site, req.obj, t.result, trace.TaintNone)

	case opDiskCrash:
		d := &m.disks[req.obj]
		keep, torn := d.crashKeep()
		if torn {
			r := &d.recs[keep-1]
			if len(r.val.Bytes) > d.faults.TornBytes {
				r.val = trace.Bytes_(append([]byte(nil), r.val.Bytes[:d.faults.TornBytes]...))
			}
		}
		d.recs = d.recs[:keep]
		d.durable = keep
		t.result = trace.Int(int64(keep))
		m.emit(t, trace.EvDiskCrash, req.site, req.obj, t.result, trace.TaintNone)

	//lint:exhaustive-default opNone never reaches apply (threads always park with a real op); the panic guards decode bugs
	default:
		panic(fmt.Sprintf("vm: unknown op code %d", req.code))
	}
}

package vm

import "debugdet/internal/trace"

// CostModel maps VM operations and recording work to virtual cycles.
//
// The model is the substitute for wall-clock measurement on real hardware
// (see DESIGN.md): every operation costs its base cycles plus ThinkCycles
// (standing in for the user code executed between scheduling points), and
// every byte a recorder persists costs recording cycles. Runtime overhead is
// then (base + recording) / base, a deterministic, hardware-independent
// ratio whose shape tracks the published numbers.
type CostModel struct {
	// ThinkCycles is charged on every operation, modelling the
	// uninstrumented computation a thread performs between two
	// scheduling points.
	ThinkCycles uint64
	// OpCycles is the base cost per event kind (indexed by EventKind).
	OpCycles [32]uint64
	// PayloadCyclesPerByte is charged per payload byte on send/recv and
	// input/output, modelling copy costs.
	PayloadCyclesPerByte uint64
	// RecordEventCycles is charged per event a recorder persists.
	RecordEventCycles uint64
	// RecordByteCycles is charged per payload byte a recorder persists.
	RecordByteCycles uint64
}

// DefaultCostModel returns the calibrated cost model used by the
// experiments. The constants are chosen so that the determinism models land
// in the overhead bands the paper reports (value determinism around 3x,
// RCSE slightly above 1x, failure determinism at 1x).
func DefaultCostModel() CostModel {
	c := CostModel{
		ThinkCycles:          28,
		PayloadCyclesPerByte: 1,
		RecordEventCycles:    30,
		RecordByteCycles:     2,
	}
	c.OpCycles[trace.EvSpawn] = 40
	c.OpCycles[trace.EvExit] = 10
	c.OpCycles[trace.EvLoad] = 2
	c.OpCycles[trace.EvStore] = 2
	c.OpCycles[trace.EvLock] = 6
	c.OpCycles[trace.EvUnlock] = 4
	c.OpCycles[trace.EvSend] = 12
	c.OpCycles[trace.EvRecv] = 12
	c.OpCycles[trace.EvInput] = 16
	c.OpCycles[trace.EvOutput] = 16
	c.OpCycles[trace.EvYield] = 1
	c.OpCycles[trace.EvSleep] = 1
	c.OpCycles[trace.EvObserve] = 2
	c.OpCycles[trace.EvFail] = 10
	c.OpCycles[trace.EvCrash] = 10
	c.OpCycles[trace.EvDeadlock] = 10
	// Disk operations: writes and reads price a device access plus payload
	// copy; fsync and barrier price a queue drain (the barrier's
	// write-through drain costs more); crash prices the device reset.
	c.OpCycles[trace.EvDiskWrite] = 80
	c.OpCycles[trace.EvDiskRead] = 40
	c.OpCycles[trace.EvDiskFsync] = 400
	c.OpCycles[trace.EvDiskBarrier] = 600
	c.OpCycles[trace.EvDiskCrash] = 100
	return c
}

// opCost returns the base cycles for an event, including think time and
// payload copy cost.
func (c *CostModel) opCost(kind trace.EventKind, payload int) uint64 {
	cost := c.ThinkCycles + c.OpCycles[kind]
	//lint:exhaustive-default only kinds that copy payloads pay the per-byte cost; the rest cost OpCycles alone
	switch kind {
	case trace.EvSend, trace.EvRecv, trace.EvInput, trace.EvOutput,
		trace.EvDiskWrite, trace.EvDiskRead:
		cost += uint64(payload) * c.PayloadCyclesPerByte
	}
	return cost
}

// RecordCost returns the cycles to charge for persisting one event whose
// serialized payload is the given number of bytes. Recorders call this to
// price their own work.
func (c *CostModel) RecordCost(payloadBytes int) uint64 {
	return c.RecordEventCycles + uint64(payloadBytes)*c.RecordByteCycles
}

package vm

import (
	"fmt"

	"debugdet/internal/trace"
)

// slot is a value together with its provenance, stored in memory cells and
// channel buffers.
type slot struct {
	val   trace.Value
	taint trace.Taint
}

// cellState is one shared-memory cell.
type cellState struct {
	name string
	slot slot
}

// mutexState is one mutex. owner is -1 when the mutex is free.
type mutexState struct {
	name  string
	owner trace.ThreadID
}

// chanState is one FIFO channel with a fixed capacity (capacity 0 is not
// supported; the VM has no rendezvous channels — use capacity 1 for
// near-synchronous handoff). The buffer is a compacting queue: pop
// advances a head index instead of reslicing, and push reuses the array
// once it drains (or compacts in place when it would otherwise grow), so
// steady-state channel traffic allocates nothing.
type chanState struct {
	name string
	cap  int
	buf  []slot
	head int
}

func (c *chanState) size() int   { return len(c.buf) - c.head }
func (c *chanState) full() bool  { return c.size() >= c.cap }
func (c *chanState) empty() bool { return c.size() == 0 }

func (c *chanState) front() slot { return c.buf[c.head] }

func (c *chanState) push(s slot) {
	if len(c.buf) == cap(c.buf) && c.head > 0 {
		n := copy(c.buf, c.buf[c.head:])
		c.buf = c.buf[:n]
		c.head = 0
	}
	c.buf = append(c.buf, s)
}

func (c *chanState) pop() slot {
	s := c.buf[c.head]
	c.buf[c.head] = slot{} // drop value references for GC
	c.head++
	if c.head == len(c.buf) {
		c.buf = c.buf[:0]
		c.head = 0
	}
	return s
}

// streamState is one input or output stream connecting the program to its
// environment.
type streamState struct {
	name     string
	inIndex  int           // next input index to consume
	inputs   []trace.Value // inputs consumed so far, in consumption order
	outputs  []trace.Value // outputs emitted so far
	inTaint  trace.Taint   // taint class applied to inputs from this stream
	declared bool          // registered explicitly (vs auto-created)
}

// NewCell registers a shared-memory cell with an initial value and returns
// its object ID. Cells must be created before Run.
func (m *Machine) NewCell(name string, init trace.Value) trace.ObjID {
	m.checkSetup("NewCell")
	id := trace.ObjID(len(m.cells))
	m.cells = append(m.cells, cellState{name: name, slot: slot{val: init}})
	if m.cellIDs == nil {
		m.cellIDs = make(map[string]trace.ObjID)
	}
	m.cellIDs[name] = id
	return id
}

// CellID resolves a cell by its registered name. Evaluation predicates use
// it to inspect final state by name.
func (m *Machine) CellID(name string) (trace.ObjID, bool) {
	id, ok := m.cellIDs[name]
	return id, ok
}

// CellByName returns the current value of the named cell (Nil when the
// name is unknown).
func (m *Machine) CellByName(name string) trace.Value {
	if id, ok := m.cellIDs[name]; ok {
		return m.CellValue(id)
	}
	return trace.Nil
}

// NewCells registers n cells named name[0..n) and returns their IDs.
func (m *Machine) NewCells(name string, n int, init trace.Value) []trace.ObjID {
	ids := make([]trace.ObjID, n)
	for i := range ids {
		ids[i] = m.NewCell(fmt.Sprintf("%s[%d]", name, i), init)
	}
	return ids
}

// NewMutex registers a mutex and returns its object ID.
func (m *Machine) NewMutex(name string) trace.ObjID {
	m.checkSetup("NewMutex")
	id := trace.ObjID(len(m.mutexes))
	m.mutexes = append(m.mutexes, mutexState{name: name, owner: -1})
	return id
}

// NewChan registers a FIFO channel with the given capacity (minimum 1) and
// returns its object ID.
func (m *Machine) NewChan(name string, capacity int) trace.ObjID {
	m.checkSetup("NewChan")
	if capacity < 1 {
		capacity = 1
	}
	id := trace.ObjID(len(m.chans))
	pre := capacity
	if pre > 8 {
		pre = 8 // push compacts in place, so deep channels grow at most once per high-water mark
	}
	m.chans = append(m.chans, chanState{name: name, cap: capacity, buf: make([]slot, 0, pre)})
	return id
}

// Stream returns the object ID for a named environment stream, registering
// it on first use with no input taint. Streams may be registered lazily.
func (m *Machine) Stream(name string) trace.ObjID {
	if id, ok := m.streamIDs[name]; ok {
		return id
	}
	id := trace.ObjID(len(m.streams))
	m.streams = append(m.streams, streamState{name: name})
	m.streamIDs[name] = id
	return id
}

// DeclareStream registers a stream and sets the taint class its inputs
// carry. Use trace.TaintData for bulk payload sources, trace.TaintControl
// for configuration and metadata, trace.TaintEnv for environment events
// such as fault injection.
func (m *Machine) DeclareStream(name string, taint trace.Taint) trace.ObjID {
	id := m.Stream(name)
	m.streams[id].inTaint = taint
	m.streams[id].declared = true
	return id
}

// CellName returns the registered name of a cell.
func (m *Machine) CellName(id trace.ObjID) string {
	if int(id) < len(m.cells) {
		return m.cells[id].name
	}
	return ""
}

// MutexName returns the registered name of a mutex.
func (m *Machine) MutexName(id trace.ObjID) string {
	if int(id) < len(m.mutexes) {
		return m.mutexes[id].name
	}
	return ""
}

// ChanName returns the registered name of a channel.
func (m *Machine) ChanName(id trace.ObjID) string {
	if int(id) < len(m.chans) {
		return m.chans[id].name
	}
	return ""
}

// StreamName returns the registered name of a stream.
func (m *Machine) StreamName(id trace.ObjID) string {
	if int(id) < len(m.streams) {
		return m.streams[id].name
	}
	return ""
}

// StreamID returns the ID of a registered stream and whether it exists,
// without registering it.
func (m *Machine) StreamID(name string) (trace.ObjID, bool) {
	id, ok := m.streamIDs[name]
	return id, ok
}

// StreamNames returns all stream names indexed by their object ID.
func (m *Machine) StreamNames() []string {
	out := make([]string, len(m.streams))
	for i := range m.streams {
		out[i] = m.streams[i].name
	}
	return out
}

// CellValue returns the current value of a cell. Intended for assertions in
// tests and for failure specifications evaluated after Run returns.
func (m *Machine) CellValue(id trace.ObjID) trace.Value {
	if int(id) < len(m.cells) {
		return m.cells[id].slot.val
	}
	return trace.Nil
}

// ChanLen returns the number of buffered values in a channel.
func (m *Machine) ChanLen(id trace.ObjID) int {
	if int(id) < len(m.chans) {
		return m.chans[id].size()
	}
	return 0
}

package vm

import (
	"errors"
	"fmt"

	"debugdet/internal/trace"
)

// errMachineStopped is panicked through a parked thread's stack when the
// machine halts, so the goroutine unwinds promptly. It never escapes
// threadMain.
var errMachineStopped = errors.New("vm: machine stopped")

// opCode identifies a pending thread operation. Codes are distinct from
// event kinds because several ops (try-variants, timeouts, panic) map onto
// the same event kinds with different blocking behaviour.
type opCode uint8

const (
	opNone opCode = iota
	opLoad
	opStore
	opLock
	opUnlock
	opSend
	opRecv
	opTrySend
	opTryRecv
	opRecvTimeout
	opInput
	opOutput
	opYield
	opSleep
	opObserve
	opSpawn
	opExit
	opFail
	opCrash
	opPanic
	opDiskWrite
	opDiskRead
	opDiskFsync
	opDiskBarrier
	opDiskCrash
)

// opReq is a pending operation, filled in by the thread before parking.
type opReq struct {
	code      opCode
	site      trace.SiteID
	obj       trace.ObjID
	val       trace.Value
	deadline  uint64 // absolute virtual time for sleep/timeout
	msg       string
	childName string
	childBody func(*Thread)
}

// Thread is a virtual thread. Program bodies receive a *Thread and perform
// all shared-state operations through it. A Thread must only be used from
// its own body function.
type Thread struct {
	m    *Machine
	id   trace.ThreadID
	name string
	body func(*Thread)

	resumeCh chan struct{}
	unwound  chan struct{}

	pending  opReq
	result   trace.Value
	resultOK bool

	// feed puts the thread in restore mode: operations return the recorded
	// outcomes in feed order instead of engaging the scheduler, until the
	// feed is exhausted and the thread parks at its first live operation.
	// See vm.Restore.
	feed    []FeedEntry
	feedPos int

	taint trace.Taint

	daemon bool
	done   bool
}

// Daemon reports whether the thread is a daemon (see SpawnDaemon).
func (t *Thread) Daemon() bool { return t.daemon }

// ID returns the thread's ID (main is 0; children are numbered in spawn
// order).
func (t *Thread) ID() trace.ThreadID { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Now returns the current virtual time. Reading the clock is not a
// scheduling point.
func (t *Thread) Now() uint64 { return t.m.clock }

// Taint returns the thread's accumulated taint register.
func (t *Thread) Taint() trace.Taint { return t.taint }

// ClearTaint resets the taint register. Programs call it at request
// boundaries so per-request provenance is meaningful.
func (t *Thread) ClearTaint() { t.taint = trace.TaintNone }

// AddTaint ORs bits into the taint register (used by workloads that model
// out-of-band provenance).
func (t *Thread) AddTaint(x trace.Taint) { t.taint |= x }

// syscall submits the thread's pending op and waits until it is applied.
//
// Fast path: when this thread holds the inline scheduling baton (the
// machine goroutine is parked inside resume), the thread runs the
// scheduling step itself — pick, then apply if the scheduler chose it
// again — with zero channel operations. The decision sequence, clock,
// event trace and scheduler state evolve exactly as on the slow path;
// only the goroutine executing the bookkeeping differs, and never more
// than one goroutine is unparked at a time.
//
// Slow path: park on yieldCh and wait for the machine to apply the op.
// Taken when the scheduler picks another thread (the decision is stashed
// in m.picked so it is not taken twice), when the op could end this
// thread or start another goroutine (exit, fail, crash, spawn — those
// need the machine goroutine to supervise the handoff), or when the
// machine stopped during an inline apply (releaseAll unwinds us).
func (t *Thread) syscall(req opReq) trace.Value {
	m := t.m
	if t.feed != nil {
		// Restore mode: the operation's outcome comes from the recorded
		// prefix; no scheduling, no event, no shared-state effect. The
		// kind check turns a mismatched feed (corrupted recording, or a
		// body whose locals depend on something outside the operation
		// results) into a restore error instead of silent divergence.
		if t.feedPos < len(t.feed) {
			fe := t.feed[t.feedPos]
			if !feedCompatible(req.code, fe.Kind) {
				t.parkRestoreError(fmt.Sprintf("restore divergence: op %s, feed has %s event",
					OpName(uint8(req.code)), fe.Kind))
			}
			t.feedPos++
			if req.code == opSpawn {
				if err := m.restoreSpawn(&req, fe); err != nil {
					t.parkRestoreError(err.Error())
				}
			}
			t.taint |= fe.Taint
			t.result, t.resultOK = fe.Val, fe.OK
			return t.result
		}
		t.feed = nil // exhausted: park below at the first live operation
	}
	t.pending = req
	if m.inlineOwner == t && inlineEligible(req.code) && !(m.pauseAt > 0 && m.seq >= m.pauseAt) {
		if next := m.pickNext(); next == t {
			m.applyOp(t)
			m.checkStepLimit()
			if !m.stopped {
				return t.result
			}
			// Terminal event applied inline: hand the baton back so the
			// machine can release every thread, ourselves included.
		} else {
			m.picked, m.pickedValid = next, true
		}
	}
	m.yieldCh <- t
	<-t.resumeCh
	if m.stopped {
		panic(errMachineStopped)
	}
	return t.result
}

// parkRestoreError aborts a feed replay from the thread's own goroutine:
// it parks with an opPanic pending op carrying the message, which the
// restore driver reports as the restore error, and unwinds once resumed.
func (t *Thread) parkRestoreError(msg string) {
	t.pending = opReq{code: opPanic, msg: msg}
	t.m.yieldCh <- t
	<-t.resumeCh
	panic(errMachineStopped)
}

// inlineEligible reports whether an op may be applied on the issuing
// thread's own goroutine. Excluded are ops that terminate the thread
// (exit, fail, crash — their apply must be followed by the machine-side
// unwind protocol) and spawn (startThread receives the child's first park
// on yieldCh, which must not race with the machine's own receive).
func inlineEligible(code opCode) bool {
	//lint:exhaustive-default the four excluded ops are listed exhaustively; every other op is inline-eligible
	switch code {
	case opExit, opFail, opCrash, opSpawn:
		return false
	}
	return true
}

// Load reads a memory cell.
func (t *Thread) Load(site trace.SiteID, cell trace.ObjID) trace.Value {
	return t.syscall(opReq{code: opLoad, site: site, obj: cell})
}

// Store writes a memory cell.
func (t *Thread) Store(site trace.SiteID, cell trace.ObjID, v trace.Value) {
	t.syscall(opReq{code: opStore, site: site, obj: cell, val: v})
}

// Add atomically adds delta to an integer cell and returns the new value.
// It is a single operation (no race window), modelling an atomic RMW
// instruction.
func (t *Thread) Add(site trace.SiteID, cell trace.ObjID, delta int64) trace.Value {
	return t.syscall(opReq{code: opStore, site: site, obj: cell, val: trace.Int(delta), msg: "add"})
}

// Lock acquires a mutex, blocking until it is free.
func (t *Thread) Lock(site trace.SiteID, mu trace.ObjID) {
	t.syscall(opReq{code: opLock, site: site, obj: mu})
}

// Unlock releases a mutex. Unlocking a mutex the thread does not own
// crashes the execution.
func (t *Thread) Unlock(site trace.SiteID, mu trace.ObjID) {
	t.syscall(opReq{code: opUnlock, site: site, obj: mu})
}

// Send enqueues v on a channel, blocking while it is full.
func (t *Thread) Send(site trace.SiteID, ch trace.ObjID, v trace.Value) {
	t.syscall(opReq{code: opSend, site: site, obj: ch, val: v})
}

// Recv dequeues from a channel, blocking while it is empty.
func (t *Thread) Recv(site trace.SiteID, ch trace.ObjID) trace.Value {
	return t.syscall(opReq{code: opRecv, site: site, obj: ch})
}

// TrySend enqueues v if the channel has room and reports whether it did.
// It never blocks; a full channel drops nothing and returns false.
func (t *Thread) TrySend(site trace.SiteID, ch trace.ObjID, v trace.Value) bool {
	t.syscall(opReq{code: opTrySend, site: site, obj: ch, val: v})
	return t.resultOK
}

// TryRecv dequeues if the channel is nonempty. It never blocks.
func (t *Thread) TryRecv(site trace.SiteID, ch trace.ObjID) (trace.Value, bool) {
	v := t.syscall(opReq{code: opTryRecv, site: site, obj: ch})
	return v, t.resultOK
}

// RecvTimeout dequeues from a channel, giving up after d virtual cycles.
// The second result is false on timeout.
func (t *Thread) RecvTimeout(site trace.SiteID, ch trace.ObjID, d uint64) (trace.Value, bool) {
	v := t.syscall(opReq{code: opRecvTimeout, site: site, obj: ch, deadline: t.m.clock + d})
	return v, t.resultOK
}

// Input obtains the next value from an environment stream. The value comes
// from the machine's InputSource (or, under replay, from the forcing
// layer); its taint class is the stream's declared class.
func (t *Thread) Input(site trace.SiteID, stream trace.ObjID) trace.Value {
	return t.syscall(opReq{code: opInput, site: site, obj: stream})
}

// Output emits a value on an environment stream. Outputs are the program's
// observable behaviour; failure specifications are predicates over them.
func (t *Thread) Output(site trace.SiteID, stream trace.ObjID, v trace.Value) {
	t.syscall(opReq{code: opOutput, site: site, obj: stream, val: v})
}

// Yield is a pure scheduling point.
func (t *Thread) Yield(site trace.SiteID) {
	t.syscall(opReq{code: opYield, site: site})
}

// Sleep blocks the thread for at least d virtual cycles.
func (t *Thread) Sleep(site trace.SiteID, d uint64) {
	t.syscall(opReq{code: opSleep, site: site, deadline: t.m.clock + d})
}

// Observe emits an invariant probe: a named value sample that the
// invariant-inference and monitoring passes consume. probe identifies the
// observation point within the site.
func (t *Thread) Observe(site trace.SiteID, probe trace.ObjID, v trace.Value) {
	t.syscall(opReq{code: opObserve, site: site, obj: probe, val: v})
}

// Spawn starts a new thread running body and returns its ID. The child is
// runnable immediately; whether it runs before the parent's next operation
// is a scheduling decision.
func (t *Thread) Spawn(site trace.SiteID, name string, body func(*Thread)) trace.ThreadID {
	v := t.syscall(opReq{code: opSpawn, site: site, childName: name, childBody: body})
	return trace.ThreadID(v.AsInt())
}

// SpawnDaemon starts a daemon thread: a service thread (network pump,
// server loop) that does not keep the machine alive. When every non-daemon
// thread has exited, the run completes cleanly regardless of daemon state,
// and daemons blocked forever do not count as a deadlock.
func (t *Thread) SpawnDaemon(site trace.SiteID, name string, body func(*Thread)) trace.ThreadID {
	v := t.syscall(opReq{code: opSpawn, site: site, childName: name, childBody: body, msg: "daemon"})
	return trace.ThreadID(v.AsInt())
}

// DiskWrite appends a record to a simulated disk. The record is volatile
// (lost on DiskCrash) until an fsync or barrier makes it durable.
func (t *Thread) DiskWrite(site trace.SiteID, disk trace.ObjID, v trace.Value) {
	t.syscall(opReq{code: opDiskWrite, site: site, obj: disk, val: v})
}

// DiskRead returns the disk record at index idx (0 = oldest), or Nil when
// idx is past the end of the log. Reading is how recovery code scans the
// device after a crash: records never hold Nil, so a Nil result is
// end-of-log. The record's provenance joins the thread's taint register.
func (t *Thread) DiskRead(site trace.SiteID, disk trace.ObjID, idx int) trace.Value {
	return t.syscall(opReq{code: opDiskRead, site: site, obj: disk, deadline: uint64(idx)})
}

// DiskFsync flushes the disk's volatile records and returns the durability
// watermark (how many records now survive a crash). Under the
// fsync-reordering fault one chosen fsync acknowledges with the newest
// record still volatile — a correct program compares the returned watermark
// against what it wrote, or uses DiskBarrier where durability is load-bearing.
func (t *Thread) DiskFsync(site trace.SiteID, disk trace.ObjID) int64 {
	return t.syscall(opReq{code: opDiskFsync, site: site, obj: disk}).AsInt()
}

// DiskBarrier is a full write-through flush: every record becomes durable,
// fault plane or not. It returns the durability watermark.
func (t *Thread) DiskBarrier(site trace.SiteID, disk trace.ObjID) int64 {
	return t.syscall(opReq{code: opDiskBarrier, site: site, obj: disk}).AsInt()
}

// DiskCrash models a whole-node power loss from the device's point of view:
// the volatile tail of the log disappears (modulo the torn-write fault,
// which may leave a truncated first volatile record behind) while durable
// records persist. It returns how many records survived. The calling thread
// keeps running — it plays the rebooted node, wiping its own volatile cells
// and re-reading the disk, so crash-restart stays inside one execution.
func (t *Thread) DiskCrash(site trace.SiteID, disk trace.ObjID) int64 {
	return t.syscall(opReq{code: opDiskCrash, site: site, obj: disk}).AsInt()
}

// Fail reports a program-detected failure (an assertion on the program's
// own I/O specification) and halts the machine.
func (t *Thread) Fail(site trace.SiteID, format string, args ...any) {
	t.syscall(opReq{code: opFail, site: site, msg: fmt.Sprintf(format, args...)})
	panic("unreachable: machine must stop on Fail")
}

// Crash models a fault (segfault, fatal error) at the given site and halts
// the machine.
func (t *Thread) Crash(site trace.SiteID, format string, args ...any) {
	t.syscall(opReq{code: opCrash, site: site, msg: fmt.Sprintf(format, args...)})
	panic("unreachable: machine must stop on Crash")
}

// exit is the implicit final op of every thread body.
func (t *Thread) exit() {
	t.syscall(opReq{code: opExit})
}

// newThread allocates a thread record; the goroutine starts in startThread.
func (m *Machine) newThread(name string, body func(*Thread)) *Thread {
	t := &Thread{
		m:        m,
		id:       trace.ThreadID(len(m.threads)),
		name:     name,
		body:     body,
		resumeCh: make(chan struct{}),
		unwound:  make(chan struct{}),
	}
	m.threads = append(m.threads, t)
	m.live++
	m.liveNonDaemon++
	return t
}

// startThread launches the goroutine for t and waits until it parks at its
// first operation (every thread parks at least once: exit is an op).
func (m *Machine) startThread(t *Thread) {
	//lint:nondet-ok VM threads are hosted on goroutines; the park handshake on yieldCh serializes them under the machine's schedule
	go m.threadMain(t)
	parked := <-m.yieldCh
	if parked != t {
		panic("vm: unexpected thread parked during start")
	}
}

// threadMain runs the thread body, converting returns into exit ops and
// panics into crash events. errMachineStopped unwinds silently.
func (m *Machine) threadMain(t *Thread) {
	defer close(t.unwound)
	defer func() {
		r := recover()
		if r == nil || r == errMachineStopped { //nolint:errorlint // sentinel identity
			return
		}
		// A genuine panic in workload code: surface it as a crash event
		// so the failure is part of the execution model rather than
		// tearing down the host process.
		t.pending = opReq{code: opPanic, msg: fmt.Sprint(r)}
		t.m.yieldCh <- t
		<-t.resumeCh
		// The machine stops on the crash; nothing more to do.
	}()
	t.body(t)
	t.exit()
}

// resume lets a thread continue after its op was applied. If the thread
// finished (exit, panic) the machine waits for its goroutine to unwind;
// otherwise it grants the thread the inline scheduling baton and waits for
// it to park at a future operation — possibly many inline steps later.
func (m *Machine) resume(t *Thread) {
	if t.done {
		t.resumeCh <- struct{}{}
		<-t.unwound
		return
	}
	if !m.cfg.DisableInline {
		m.inlineOwner = t
	}
	t.resumeCh <- struct{}{}
	parked := <-m.yieldCh
	m.inlineOwner = nil
	if parked != t {
		panic("vm: foreign thread parked during resume")
	}
}

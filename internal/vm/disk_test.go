package vm

import (
	"testing"

	"debugdet/internal/trace"
)

// runDisk executes body on a one-thread machine with a single disk
// configured with the given faults, then returns the machine.
func runDisk(t *testing.T, faults DiskFaults, body func(th *Thread, disk trace.ObjID, site trace.SiteID)) *Machine {
	t.Helper()
	m := New(Config{Seed: 1, CollectTrace: true})
	disk := m.NewDisk("d0", faults)
	site := m.Site("test.disk")
	res := m.Run(func(th *Thread) { body(th, disk, site) })
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Terminal)
	}
	return m
}

func TestDiskWriteReadFsync(t *testing.T) {
	runDisk(t, DiskFaults{}, func(th *Thread, d trace.ObjID, s trace.SiteID) {
		th.DiskWrite(s, d, trace.Int(10))
		th.DiskWrite(s, d, trace.Int(20))
		if got := th.DiskFsync(s, d); got != 2 {
			t.Errorf("fsync watermark = %d, want 2", got)
		}
		th.DiskWrite(s, d, trace.Int(30))
		if got := th.DiskRead(s, d, 2).AsInt(); got != 30 {
			t.Errorf("read[2] = %d, want 30", got)
		}
		if v := th.DiskRead(s, d, 3); !v.IsNil() {
			t.Errorf("read past end = %v, want Nil", v)
		}
		if v := th.DiskRead(s, d, -1); !v.IsNil() {
			t.Errorf("read[-1] = %v, want Nil", v)
		}
	})
}

func TestDiskCrashDropsUnsyncedWrites(t *testing.T) {
	m := runDisk(t, DiskFaults{}, func(th *Thread, d trace.ObjID, s trace.SiteID) {
		th.DiskWrite(s, d, trace.Int(1))
		th.DiskFsync(s, d)
		th.DiskWrite(s, d, trace.Int(2))
		th.DiskWrite(s, d, trace.Int(3))
		if keep := th.DiskCrash(s, d); keep != 1 {
			t.Errorf("crash kept %d records, want 1", keep)
		}
		if got := th.DiskRead(s, d, 0).AsInt(); got != 1 {
			t.Errorf("survivor = %d, want 1", got)
		}
		if v := th.DiskRead(s, d, 1); !v.IsNil() {
			t.Errorf("volatile record survived the crash: %v", v)
		}
	})
	id, ok := m.DiskID("d0")
	if !ok {
		t.Fatal("disk d0 not found")
	}
	if m.DiskLen(id) != 1 || m.DiskDurable(id) != 1 {
		t.Fatalf("len=%d durable=%d, want 1/1", m.DiskLen(id), m.DiskDurable(id))
	}
}

func TestDiskTornWriteTruncatesFirstVolatile(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	runDisk(t, DiskFaults{TornBytes: 3}, func(th *Thread, d trace.ObjID, s trace.SiteID) {
		th.DiskWrite(s, d, trace.Bytes_(payload))
		th.DiskFsync(s, d)
		th.DiskWrite(s, d, trace.Bytes_(payload)) // first volatile: torn
		th.DiskWrite(s, d, trace.Bytes_(payload)) // second volatile: dropped
		if keep := th.DiskCrash(s, d); keep != 2 {
			t.Errorf("crash kept %d records, want 2 (durable + torn)", keep)
		}
		if got := th.DiskRead(s, d, 0); len(got.Bytes) != 8 {
			t.Errorf("durable record truncated to %d bytes", len(got.Bytes))
		}
		torn := th.DiskRead(s, d, 1)
		if len(torn.Bytes) != 3 {
			t.Errorf("torn record has %d bytes, want 3", len(torn.Bytes))
		}
	})
	// The truncation copies: the original payload is untouched.
	if payload[3] != 4 {
		t.Fatal("torn-write truncation mutated the caller's bytes")
	}
}

func TestDiskTornWriteSkipsNonBytesRecords(t *testing.T) {
	runDisk(t, DiskFaults{TornBytes: 3}, func(th *Thread, d trace.ObjID, s trace.SiteID) {
		th.DiskWrite(s, d, trace.Int(7)) // volatile, not VBytes: no tear
		if keep := th.DiskCrash(s, d); keep != 0 {
			t.Errorf("crash kept %d records, want 0", keep)
		}
	})
}

func TestDiskFsyncReorderHoldsNewestRecordOnce(t *testing.T) {
	runDisk(t, DiskFaults{ReorderAt: 2}, func(th *Thread, d trace.ObjID, s trace.SiteID) {
		th.DiskWrite(s, d, trace.Int(1))
		if got := th.DiskFsync(s, d); got != 1 {
			t.Errorf("fsync#1 = %d, want 1", got)
		}
		th.DiskWrite(s, d, trace.Int(2))
		if got := th.DiskFsync(s, d); got != 1 {
			t.Errorf("fsync#2 = %d, want 1 (reordered past the newest record)", got)
		}
		th.DiskWrite(s, d, trace.Int(3))
		// The reorder fires exactly once: later fsyncs are honest again.
		if got := th.DiskFsync(s, d); got != 3 {
			t.Errorf("fsync#3 = %d, want 3", got)
		}
	})
}

func TestDiskBarrierIsNeverReordered(t *testing.T) {
	runDisk(t, DiskFaults{ReorderAt: 1}, func(th *Thread, d trace.ObjID, s trace.SiteID) {
		th.DiskWrite(s, d, trace.Int(1))
		if got := th.DiskFsync(s, d); got != 0 {
			t.Errorf("fsync#1 = %d, want 0 (reordered)", got)
		}
		if got := th.DiskBarrier(s, d); got != 1 {
			t.Errorf("barrier = %d, want 1", got)
		}
		if keep := th.DiskCrash(s, d); keep != 1 {
			t.Errorf("crash kept %d, want 1 after barrier", keep)
		}
	})
}

// snapAt snapshots the machine right after the event with sequence at-1 is
// applied — the checkpoint writer's capture point.
type snapAt struct {
	m    *Machine
	at   uint64
	snap *Snapshot
}

func (s *snapAt) OnEvent(e *trace.Event) uint64 {
	if s.snap == nil && e.Seq+1 == s.at {
		s.snap = s.m.Snapshot(e.TID)
	}
	return 0
}

// feedsFor derives per-thread feed entries from a complete event prefix —
// the same derivation the checkpoint package performs.
func feedsFor(events []trace.Event, seq uint64, threads int) [][]FeedEntry {
	feeds := make([][]FeedEntry, threads)
	for i := uint64(0); i < seq; i++ {
		e := &events[i]
		fe := FeedEntry{Kind: e.Kind, OK: true}
		switch e.Kind {
		case trace.EvLoad, trace.EvRecv, trace.EvInput, trace.EvDiskRead:
			fe.Val, fe.Taint = e.Val, e.Taint
		case trace.EvStore, trace.EvDiskWrite, trace.EvDiskFsync,
			trace.EvDiskBarrier, trace.EvDiskCrash:
			fe.Val = e.Val
		case trace.EvSpawn:
			fe.Val = trace.Int(int64(e.Obj))
		case trace.EvYield:
			fe.OK = false
		}
		feeds[e.TID] = append(feeds[e.TID], fe)
	}
	return feeds
}

// TestDiskSnapshotRestoreRoundTrip: a snapshot taken after a crash carries
// the disk image (including the dropped volatile tail), and Restore
// reinstalls it exactly — the contract checkpointed Seek relies on.
func TestDiskSnapshotRestoreRoundTrip(t *testing.T) {
	setup := func(m *Machine) func(*Thread) {
		d := m.NewDisk("d0", DiskFaults{})
		s := m.Site("test.disk")
		return func(th *Thread) {
			th.DiskWrite(s, d, trace.Int(11))
			th.DiskFsync(s, d)
			th.DiskWrite(s, d, trace.Bytes_([]byte{9, 9}))
			th.DiskCrash(s, d)
			th.DiskWrite(s, d, trace.Int(12))
		}
	}
	cfg := Config{Seed: 3, CollectTrace: true}
	m := New(cfg)
	body := setup(m)
	obs := &snapAt{m: m, at: 4} // right after the DiskCrash applies
	m.Attach(obs)
	res := m.Run(body)
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if obs.snap == nil {
		t.Fatal("snapshot point never reached")
	}
	snap := obs.snap
	if len(snap.Disks) != 1 {
		t.Fatalf("snapshot has %d disks, want 1", len(snap.Disks))
	}
	if d := snap.Disks[0]; d.Durable != 1 || len(d.Recs) != 1 || d.Fsyncs != 1 {
		t.Fatalf("snapshot disk = %+v, want 1 durable record after the crash", d)
	}

	feeds := feedsFor(res.Trace.Events, snap.Seq, len(snap.Threads))
	m2, err := Restore(cfg, setup, snap, feeds)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := snap.EqualState(m2.Snapshot(NoRunningThread)); err != nil {
		t.Fatalf("restored machine state differs from the snapshot: %v", err)
	}
	id, ok := m2.DiskID("d0")
	if !ok {
		t.Fatal("restored machine has no disk d0")
	}
	recs := m2.DiskRecords(id)
	if len(recs) != 1 || recs[0].AsInt() != 11 {
		t.Fatalf("restored records = %v, want [11]", recs)
	}
}

func TestDiskReadPropagatesTaint(t *testing.T) {
	m := New(Config{Seed: 1, CollectTrace: true})
	d := m.NewDisk("d0", DiskFaults{})
	in := m.DeclareStream("env.in", trace.TaintEnv)
	s := m.Site("test.disk")
	res := m.Run(func(th *Thread) {
		v := th.Input(s, in) // taints the thread with TaintEnv
		th.DiskWrite(s, d, v)
		th.ClearTaint()
		th.DiskRead(s, d, 0)
		if th.Taint()&trace.TaintEnv == 0 {
			t.Error("reading a tainted record did not taint the reader")
		}
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

package vm

import "debugdet/internal/trace"

// This file implements the deterministic disk resource (DESIGN.md §7): a
// per-machine simulated durable device with an injectable fault plane.
//
// A disk is an append-only sequence of records with a durability watermark:
// records at index < durable survive a device crash, the volatile tail does
// not. Fsync advances the watermark to the end of the log; the fault plane
// can hold the newest record back at one chosen fsync (modelling a device
// queue that acknowledges a flush before draining it) and can leave a torn
// prefix of the first volatile record behind at crash time (modelling a
// sector-spanning write interrupted by power loss). A sync barrier
// (write-through flush + drain) always makes everything durable — it is the
// operation a correct program uses where a plain fsync is not enough.
//
// Every disk operation is an ordinary VM operation: a scheduling point that
// emits exactly one event whose Val equals the operation's result, so the
// checkpoint feed derivation, value replay and segmented validation treat
// disks uniformly with memory cells.

// DiskFaults configures a disk's injectable fault plane. The zero value is
// a fault-free device. Faults are program structure (fixed at build time),
// not environment input: a scenario that wants a searchable fault draws its
// trigger from an input stream and picks the disk accordingly.
type DiskFaults struct {
	// TornBytes, when > 0, arms the torn-write fault: at a crash,
	// the first un-fsynced record — if it is a bytes record — survives as a
	// prefix of at most TornBytes bytes instead of disappearing, and is
	// counted durable. This is the sector-granularity artifact a recovery
	// path must detect with a checksum; 0 disables tearing.
	TornBytes int
	// ReorderAt, when > 0, arms the fsync-reordering fault: the ReorderAt'th
	// fsync on this disk (1-based, counted over the device's lifetime,
	// crashes included) leaves the newest volatile record volatile while
	// flushing everything before it — the device acknowledged the flush with
	// the last write still in its queue. 0 disables reordering. DiskBarrier
	// is never reordered.
	ReorderAt int
}

// diskState is one simulated durable device. recs[0:durable] survives a
// DiskCrash; the tail is volatile. The record log is append-only between
// crashes.
type diskState struct {
	name    string
	recs    []slot
	durable int
	fsyncs  int
	faults  DiskFaults
}

// NewDisk registers a simulated disk with the given fault plane and returns
// its object ID. Disks must be created before Run.
func (m *Machine) NewDisk(name string, faults DiskFaults) trace.ObjID {
	m.checkSetup("NewDisk")
	id := trace.ObjID(len(m.disks))
	m.disks = append(m.disks, diskState{name: name, faults: faults})
	if m.diskIDs == nil {
		m.diskIDs = make(map[string]trace.ObjID)
	}
	m.diskIDs[name] = id
	return id
}

// DiskID resolves a disk by its registered name.
func (m *Machine) DiskID(name string) (trace.ObjID, bool) {
	id, ok := m.diskIDs[name]
	return id, ok
}

// DiskName returns the registered name of a disk.
func (m *Machine) DiskName(id trace.ObjID) string {
	if int(id) < len(m.disks) {
		return m.disks[id].name
	}
	return ""
}

// NumDisks returns how many disks the program registered.
func (m *Machine) NumDisks() int { return len(m.disks) }

// DiskLen returns the number of records on a disk, durable or not.
// Intended for inspection and post-run assertions; thread bodies must read
// disk state through Thread.DiskRead so restore-by-feed-replay stays sound.
func (m *Machine) DiskLen(id trace.ObjID) int {
	if int(id) < len(m.disks) {
		return len(m.disks[id].recs)
	}
	return 0
}

// DiskDurable returns a disk's durability watermark: how many records
// would survive a crash right now.
func (m *Machine) DiskDurable(id trace.ObjID) int {
	if int(id) < len(m.disks) {
		return m.disks[id].durable
	}
	return 0
}

// DiskRecords returns a disk's records, oldest first (volatile tail
// included). Like DiskLen it is an inspection accessor, not a thread API.
func (m *Machine) DiskRecords(id trace.ObjID) []trace.Value {
	if int(id) >= len(m.disks) {
		return nil
	}
	d := &m.disks[id]
	out := make([]trace.Value, len(d.recs))
	for i := range d.recs {
		out[i] = d.recs[i].val
	}
	return out
}

// crashKeep computes how many records survive a crash of d right now, and
// whether the first volatile record would survive torn. It is shared by the
// crash apply and its peek prediction, which must agree exactly.
func (d *diskState) crashKeep() (keep int, torn bool) {
	keep = d.durable
	if d.faults.TornBytes > 0 && keep < len(d.recs) && d.recs[keep].val.Kind == trace.VBytes {
		return keep + 1, true
	}
	return keep, false
}

// fsyncDurable computes the watermark an fsync would set if it were the
// n'th fsync on d (1-based). Shared by the fsync apply and its prediction.
func (d *diskState) fsyncDurable(n int) int {
	if d.faults.ReorderAt > 0 && n == d.faults.ReorderAt && d.durable < len(d.recs) {
		return len(d.recs) - 1
	}
	return len(d.recs)
}

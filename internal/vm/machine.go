// Package vm implements a deterministic virtual machine for multi-threaded
// programs: the execution substrate on which all determinism models in this
// repository are built.
//
// Programs are Go functions written against the Thread API. Every
// shared-state operation (memory access, lock, channel op, input, output)
// is a VM operation and a scheduling point. Exactly one virtual thread runs
// between scheduling points — threads are goroutines, but a baton protocol
// guarantees only one is ever unparked — so given a scheduler seed and an
// input source the execution, and hence its event trace, is bit-identical
// across runs. That property is what record/replay needs and what the Go
// runtime scheduler cannot provide (see DESIGN.md §1).
package vm

import (
	"fmt"

	"debugdet/internal/trace"
)

// Outcome classifies how an execution ended.
type Outcome uint8

// Outcomes.
const (
	OutcomeOK       Outcome = iota // all threads exited normally
	OutcomeFailed                  // a thread reported a failure (EvFail)
	OutcomeCrashed                 // a thread crashed (EvCrash)
	OutcomeDeadlock                // no thread runnable, none sleeping
	OutcomeDiverged                // replay scheduler could not follow its log
	OutcomeAborted                 // step limit exceeded
)

var outcomeNames = [...]string{"ok", "failed", "crashed", "deadlock", "diverged", "aborted"}

// String returns the lower-case outcome name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Config parameterizes a Machine.
type Config struct {
	// Seed drives the scheduler's randomness (for seeded schedulers).
	Seed int64
	// Scheduler picks the next thread; nil means NewRandomScheduler(Seed).
	Scheduler Scheduler
	// Inputs supplies environment values; nil means ZeroInputs.
	Inputs InputSource
	// Cost is the virtual-cycle cost model; the zero value is replaced by
	// DefaultCostModel.
	Cost CostModel
	// MaxSteps aborts runaway executions; 0 means the default (4M events).
	MaxSteps uint64
	// CollectTrace controls whether the machine keeps the full oracle
	// trace of the run. Evaluation needs it; pure recording-throughput
	// benchmarks can disable it.
	CollectTrace bool
	// RelaxTime makes time-gated operations (sleep, receive timeouts)
	// always schedulable. Schedule-forcing replay sets it: the recorded
	// decision order, not the virtual clock, determines when sleepers
	// resume, so replays whose clocks differ from the original (recording
	// overhead is absent) still follow the schedule without spurious
	// divergence. Results stay consistent because timeout branches
	// depend on channel state, which evolves identically under the
	// forced schedule.
	RelaxTime bool
	// DisableInline turns off the inline run-to-next-schedule-point fast
	// path, forcing every operation through the yieldCh/resumeCh baton.
	// The fast path is bit-equivalent to the baton path (the equivalence
	// test pins this); the switch exists for benchmarking the handoff
	// cost and for debugging the VM itself.
	DisableInline bool
	// LogRounds makes the machine keep a log of every scheduling decision
	// — (seq, enabled set, pick) per round; see SchedRound — readable via
	// Rounds. Pure observation: the log perturbs neither the execution
	// nor its virtual clock. Checkpoint-forked search enables it on the
	// executions it forks candidates from.
	LogRounds bool
}

// Result describes a finished execution.
type Result struct {
	Outcome  Outcome
	Terminal trace.Event // the terminal event when Outcome != OutcomeOK
	// Trace is the full oracle trace (nil when Config.CollectTrace was
	// false). This is the evaluation's omniscient view; recorders keep
	// their own, possibly sparser, logs.
	Trace *trace.Log
	// Steps is the number of events applied.
	Steps uint64
	// Cycles is the execution's intrinsic virtual time (recording cost
	// excluded — see RecordCycles).
	Cycles uint64
	// RecordCycles is the virtual time observers charged for recording
	// work. It is accounted separately rather than added to the clock,
	// so attaching a recorder never perturbs the execution: every model
	// records the *same* production run, and timeout behaviour is
	// probe-effect free. Total production time is Cycles + RecordCycles.
	RecordCycles uint64
	// Outputs are the per-stream output sequences.
	Outputs map[string][]trace.Value
	// InputsUsed are the per-stream input sequences actually consumed.
	InputsUsed map[string][]trace.Value
	// DivergedAt holds the event index at which a replay scheduler
	// diverged, when Outcome == OutcomeDiverged.
	DivergedAt uint64
}

// BaseCycles returns the execution's intrinsic virtual time.
func (r *Result) BaseCycles() uint64 { return r.Cycles }

// TotalCycles returns production time including recording work.
func (r *Result) TotalCycles() uint64 { return r.Cycles + r.RecordCycles }

// Overhead returns the runtime-overhead ratio (total / base). It is 1.0
// when nothing was recorded.
func (r *Result) Overhead() float64 {
	if r.Cycles == 0 {
		return 1
	}
	return float64(r.TotalCycles()) / float64(r.Cycles)
}

// Machine is one deterministic virtual machine instance. A machine is
// single-use: configure it, build the program's objects and threads, call
// Run once.
type Machine struct {
	cfg   Config
	cost  CostModel
	sites *trace.SiteTable

	cells   []cellState
	cellIDs map[string]trace.ObjID
	mutexes []mutexState
	chans   []chanState
	streams []streamState
	disks   []diskState

	streamIDs map[string]trace.ObjID
	diskIDs   map[string]trace.ObjID

	threads       []*Thread
	live          int // threads not yet done
	liveNonDaemon int // non-daemon threads not yet done

	clock        uint64
	seq          uint64
	recordCycles uint64

	sched     Scheduler
	inputs    InputSource
	observers []Observer

	yieldCh chan *Thread // threads park by sending themselves here

	// inlineOwner is the thread currently holding the scheduling baton
	// inline (see syscall's fast path). While it is set the machine
	// goroutine is parked in resume's yieldCh receive, so exactly one
	// goroutine — the owner — touches machine state: the single-unparked
	// invariant holds with no channel traffic. All accesses are ordered
	// by the resumeCh/yieldCh handoffs themselves.
	inlineOwner *Thread
	// picked carries a scheduling decision taken inline by a thread that
	// then had to hand the baton back (the scheduler chose someone else).
	// The machine loop consumes it instead of re-asking the scheduler,
	// so stateful schedulers see each decision exactly once.
	picked      *Thread
	pickedValid bool

	running   bool
	stopped   bool
	completed bool
	finished  bool
	// pauseAt makes the scheduling loop return to its driver once seq
	// reaches it (0 = run to completion). Both the machine loop and the
	// inline fast path honour it; see Continue.
	pauseAt  uint64
	outcome  Outcome
	terminal trace.Event
	diverged uint64

	tr *trace.Log

	// rounds is the scheduling-decision log (Config.LogRounds).
	rounds []SchedRound

	// enabledBuf is reused across scheduling rounds.
	enabledBuf []*Thread
	// evBuf is the event staging buffer emit reuses; without it every
	// event heap-escapes through the observer interface call.
	evBuf trace.Event
}

// New returns a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewRandomScheduler(cfg.Seed)
	}
	if cfg.Inputs == nil {
		cfg.Inputs = ZeroInputs
	}
	zero := CostModel{}
	if cfg.Cost == zero {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 4 << 20
	}
	m := &Machine{
		cfg:        cfg,
		cost:       cfg.Cost,
		sites:      trace.NewSiteTable(),
		streamIDs:  make(map[string]trace.ObjID),
		sched:      cfg.Scheduler,
		inputs:     cfg.Inputs,
		yieldCh:    make(chan *Thread),
		enabledBuf: make([]*Thread, 0, 8),
	}
	if cfg.CollectTrace {
		m.tr = trace.NewLog(trace.Header{Seed: cfg.Seed})
		m.tr.Sites = m.sites
		// Pre-size for a typical execution so the hot loop appends
		// without growth reallocations.
		m.tr.Events = make([]trace.Event, 0, 1024)
	}
	return m
}

// Site registers (or looks up) a static program location by name.
func (m *Machine) Site(name string) trace.SiteID { return m.sites.Register(name) }

// Sites exposes the machine's site table (shared with the oracle trace).
func (m *Machine) Sites() *trace.SiteTable { return m.sites }

// Cost exposes the cost model, for recorders pricing their work.
func (m *Machine) Cost() *CostModel { return &m.cost }

// Clock returns the current virtual time.
func (m *Machine) Clock() uint64 { return m.clock }

// Seq returns the number of events applied so far.
func (m *Machine) Seq() uint64 { return m.seq }

// Seed returns the configured scheduler seed.
func (m *Machine) Seed() int64 { return m.cfg.Seed }

// Trace returns the oracle trace collected so far (nil when
// Config.CollectTrace is false). Read it only while the machine is paused
// or finished.
func (m *Machine) Trace() *trace.Log { return m.tr }

// Attach registers an observer. Observers run in attach order on every
// event.
func (m *Machine) Attach(o Observer) { m.observers = append(m.observers, o) }

func (m *Machine) checkSetup(op string) {
	if m.running {
		panic("vm: " + op + " called after Run started")
	}
}

// Run executes main as thread 0 and drives scheduling until all threads
// exit or a terminal event stops the machine. It must be called exactly
// once (and not combined with Start).
func (m *Machine) Run(main func(*Thread)) *Result {
	m.Start(main)
	m.loop()
	return m.Finish()
}

// Start begins a pausable execution: thread 0 is launched and parked at
// its first operation, but no events are applied. Drive the execution with
// Continue and end it with Finish. Run is equivalent to Start, one
// Continue(0), Finish.
func (m *Machine) Start(main func(*Thread)) {
	if m.running {
		panic("vm: Start/Run called twice")
	}
	m.running = true
	root := m.newThread("main", main)
	m.startThread(root)
}

// Continue resumes a started (or restored) execution until the number of
// applied events reaches stopAt, then pauses with every thread parked at a
// scheduling point. stopAt == 0 means no limit: run to completion. It
// reports whether the execution is over — further Continues are no-ops
// once it returns true. A paused machine is quiescent and safe to inspect
// (Snapshot, Threads, CellValue, ...).
func (m *Machine) Continue(stopAt uint64) bool {
	if !m.running {
		panic("vm: Continue before Start")
	}
	if m.completed || m.finished {
		return true
	}
	m.pauseAt = stopAt
	m.loop()
	m.pauseAt = 0
	return m.completed
}

// Completed reports whether the execution is over (all threads exited or a
// terminal event stopped the machine).
func (m *Machine) Completed() bool { return m.completed }

// loop drives scheduling rounds until the execution completes or pauseAt
// is reached.
func (m *Machine) loop() {
	for !m.stopped {
		if m.pauseAt > 0 && m.seq >= m.pauseAt {
			return
		}
		// A thread running inline may already have taken this round's
		// scheduling decision before handing the baton back; consume it
		// instead of consulting the scheduler twice.
		var t *Thread
		if m.pickedValid {
			t, m.picked, m.pickedValid = m.picked, nil, false
		} else {
			t = m.pickNext()
		}
		if t == nil {
			break
		}
		m.applyOp(t)
		m.checkStepLimit()
		if m.stopped {
			break
		}
		m.resume(t)
	}
	m.completed = true
}

// Finish ends the execution — releasing every parked thread, including
// daemons — and builds the Result. Finishing a paused execution abandons
// it: the outcome of an abandoned run is OutcomeAborted unless a terminal
// event already stopped the machine. Finish may be called once.
func (m *Machine) Finish() *Result {
	if m.finished {
		panic("vm: Finish called twice")
	}
	m.finished = true
	m.releaseAll()
	for _, o := range m.observers {
		if f, ok := o.(FinishObserver); ok {
			f.OnFinish(m.outcome)
		}
	}

	res := &Result{
		Outcome:      m.outcome,
		Terminal:     m.terminal,
		Trace:        m.tr,
		Steps:        m.seq,
		Cycles:       m.clock,
		RecordCycles: m.recordCycles,
		Outputs:      make(map[string][]trace.Value),
		InputsUsed:   make(map[string][]trace.Value),
		DivergedAt:   m.diverged,
	}
	for i := range m.streams {
		s := &m.streams[i]
		if len(s.outputs) > 0 {
			res.Outputs[s.name] = s.outputs
		}
		if len(s.inputs) > 0 {
			res.InputsUsed[s.name] = s.inputs
		}
	}
	return res
}

// pickNext selects the next thread to run among those whose pending op is
// enabled, advancing virtual time over sleep gaps. It returns nil when the
// execution is over (all threads done) after recording a deadlock if
// threads remain blocked forever.
func (m *Machine) pickNext() *Thread {
	for {
		if m.liveNonDaemon == 0 {
			// The program proper has finished; daemons (network pumps,
			// server loops) do not keep the machine alive.
			return nil
		}
		enabled := m.enabledThreads()
		if len(enabled) > 0 {
			t := m.sched.Pick(m, enabled)
			if t == nil {
				// Replay scheduler exhausted or diverged.
				m.stop(OutcomeDiverged, trace.Event{
					Seq: m.seq, Time: m.clock, Kind: trace.EvCrash,
					Val: trace.Str("schedule divergence"),
				})
				m.diverged = m.seq
				return nil
			}
			if m.cfg.LogRounds {
				m.logRound(enabled, t)
			}
			return t
		}
		// No thread enabled: either sleepers exist (advance time) or we
		// are deadlocked.
		wake, ok := m.earliestDeadline()
		if !ok {
			m.emitMachineEvent(trace.EvDeadlock, trace.Str(m.blockedSummary()))
			m.stop(OutcomeDeadlock, m.terminalFromLast())
			return nil
		}
		if wake > m.clock {
			m.clock = wake
		} else {
			// Deadline already passed yet nothing enabled: defensive;
			// treat as deadlock to avoid spinning.
			m.emitMachineEvent(trace.EvDeadlock, trace.Str("timer stall"))
			m.stop(OutcomeDeadlock, m.terminalFromLast())
			return nil
		}
	}
}

func (m *Machine) terminalFromLast() trace.Event {
	if m.tr != nil && len(m.tr.Events) > 0 {
		return m.tr.Events[len(m.tr.Events)-1]
	}
	return trace.Event{Seq: m.seq, Time: m.clock, Kind: trace.EvDeadlock}
}

// enabledThreads returns live, parked threads whose pending operation can
// proceed, sorted by thread ID for determinism.
func (m *Machine) enabledThreads() []*Thread {
	m.enabledBuf = m.enabledBuf[:0]
	for _, t := range m.threads {
		if t.done {
			continue
		}
		if m.enabled(t) {
			m.enabledBuf = append(m.enabledBuf, t)
		}
	}
	// threads are appended in ID order already; keep an insertion sort as
	// a defensive invariant. On sorted input it is a single comparison
	// pass, and unlike sort.Slice it allocates nothing — this runs on
	// every scheduling round.
	buf := m.enabledBuf
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j].id < buf[j-1].id; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return m.enabledBuf
}

// enabled reports whether t's pending operation can be applied now.
func (m *Machine) enabled(t *Thread) bool {
	req := &t.pending
	switch req.code {
	case opLock:
		return m.mutexes[req.obj].owner == -1
	case opSend:
		return !m.chans[req.obj].full()
	case opRecv:
		return !m.chans[req.obj].empty()
	case opSleep:
		return m.cfg.RelaxTime || m.clock >= req.deadline
	case opRecvTimeout:
		return m.cfg.RelaxTime || !m.chans[req.obj].empty() || m.clock >= req.deadline
	//lint:exhaustive-default every op without a listed wait condition is always eligible to apply
	default:
		return true
	}
}

// earliestDeadline returns the soonest wake time among blocked sleepers.
func (m *Machine) earliestDeadline() (uint64, bool) {
	var best uint64
	found := false
	for _, t := range m.threads {
		if t.done {
			continue
		}
		c := t.pending.code
		if c == opSleep || c == opRecvTimeout {
			if !found || t.pending.deadline < best {
				best = t.pending.deadline
				found = true
			}
		}
	}
	return best, found
}

// blockedSummary describes what each blocked thread is waiting on, for
// deadlock diagnostics.
func (m *Machine) blockedSummary() string {
	s := ""
	for _, t := range m.threads {
		if t.done {
			continue
		}
		if s != "" {
			s += "; "
		}
		switch t.pending.code {
		case opLock:
			s += fmt.Sprintf("%s waits lock %s", t.name, m.MutexName(t.pending.obj))
		case opSend:
			s += fmt.Sprintf("%s waits send %s", t.name, m.ChanName(t.pending.obj))
		case opRecv:
			s += fmt.Sprintf("%s waits recv %s", t.name, m.ChanName(t.pending.obj))
		//lint:exhaustive-default deadlock report names the three blocking ops; anything else prints its raw code
		default:
			s += fmt.Sprintf("%s waits %d", t.name, t.pending.code)
		}
	}
	return s
}

// emit finalizes an event: assigns sequence and time, charges base cost,
// appends to the oracle trace, and routes it through observers, charging
// their recording cost. The event is staged in a per-machine buffer
// (observers must copy, not retain, the pointer they receive — see
// Observer) so the hot loop performs no per-event allocation.
func (m *Machine) emit(t *Thread, kind trace.EventKind, site trace.SiteID, obj trace.ObjID, val trace.Value, taint trace.Taint) {
	m.clock += m.cost.opCost(kind, val.Size())
	m.evBuf = trace.Event{
		Seq:   m.seq,
		Time:  m.clock,
		TID:   t.id,
		Kind:  kind,
		Site:  site,
		Obj:   obj,
		Val:   val,
		Taint: taint,
	}
	m.seq++
	if m.tr != nil {
		m.tr.Append(m.evBuf)
	}
	for _, o := range m.observers {
		rc := o.OnEvent(&m.evBuf)
		m.recordCycles += rc
	}
	if kind.IsTerminal() {
		var oc Outcome
		//lint:exhaustive-default guarded by IsTerminal: the only terminal kinds are fail, crash and deadlock
		switch kind {
		case trace.EvFail:
			oc = OutcomeFailed
		case trace.EvCrash:
			oc = OutcomeCrashed
		default:
			oc = OutcomeDeadlock
		}
		m.stop(oc, m.evBuf)
	}
}

// emitMachineEvent emits an event attributed to the machine itself (thread
// -1), used for deadlock reporting.
func (m *Machine) emitMachineEvent(kind trace.EventKind, val trace.Value) {
	m.clock += m.cost.opCost(kind, val.Size())
	m.evBuf = trace.Event{
		Seq:  m.seq,
		Time: m.clock,
		TID:  -1,
		Kind: kind,
		Val:  val,
	}
	m.seq++
	if m.tr != nil {
		m.tr.Append(m.evBuf)
	}
	for _, o := range m.observers {
		rc := o.OnEvent(&m.evBuf)
		m.recordCycles += rc
	}
	m.terminal = m.evBuf
}

// checkStepLimit aborts a runaway execution. It runs after every applied
// op, on both the machine loop and the inline fast path — a single
// implementation, because the two paths must emit the identical abort
// event for the bit-equivalence contract to hold.
func (m *Machine) checkStepLimit() {
	if m.seq >= m.cfg.MaxSteps && !m.stopped {
		m.stop(OutcomeAborted, trace.Event{
			Seq: m.seq, Time: m.clock, Kind: trace.EvCrash,
			Val: trace.Str("step limit exceeded"),
		})
	}
}

// stop halts scheduling. Parked threads are released by releaseAll.
func (m *Machine) stop(oc Outcome, term trace.Event) {
	if m.stopped {
		return
	}
	m.stopped = true
	m.outcome = oc
	m.terminal = term
}

// releaseAll unparks every live thread so its goroutine can unwind; the
// syscall path panics with errMachineStopped which threadMain swallows.
func (m *Machine) releaseAll() {
	m.stopped = true
	if m.outcome == OutcomeOK && m.liveNonDaemon > 0 {
		// Live non-daemon threads with an OK outcome means the run was
		// abandoned mid-execution (Finish on a paused machine). Live
		// daemons at completion are normal (network pumps, server loops).
		m.outcome = OutcomeAborted
	}
	for _, t := range m.threads {
		if !t.done {
			t.done = true
			m.live--
			t.resumeCh <- struct{}{}
			<-t.unwound
		}
	}
}

package vm

import (
	"testing"

	"debugdet/internal/trace"
)

// schedProgram builds a 3-thread program whose trace reveals scheduling
// decisions.
func schedProgram(sched Scheduler, seed int64) *Result {
	m := New(Config{Seed: seed, Scheduler: sched, CollectTrace: true})
	c := m.NewCell("c", trace.Int(0))
	s := m.Site("s")
	sp := m.Site("spawn")
	w := func(t *Thread) {
		for i := 0; i < 10; i++ {
			t.Store(s, c, trace.Int(int64(i)))
		}
	}
	return m.Run(func(t *Thread) {
		t.Spawn(sp, "a", w)
		t.Spawn(sp, "b", w)
		t.Spawn(sp, "c", w)
	})
}

func TestRoundRobinIsFairAndDeterministic(t *testing.T) {
	r1 := schedProgram(NewRoundRobinScheduler(), 0)
	r2 := schedProgram(NewRoundRobinScheduler(), 0)
	if !trace.EventsEqual(r1.Trace, r2.Trace, false) {
		t.Fatal("round-robin runs differ")
	}
	// Every thread gets service: no starvation.
	counts := make(map[trace.ThreadID]int)
	for _, e := range r1.Trace.Events {
		counts[e.TID]++
	}
	for tid := trace.ThreadID(1); tid <= 3; tid++ {
		if counts[tid] == 0 {
			t.Fatalf("thread %d starved under round-robin", tid)
		}
	}
}

func TestPCTSchedulerDeterministicPerSeed(t *testing.T) {
	a := schedProgram(NewPCTScheduler(5, 256, 3), 5)
	b := schedProgram(NewPCTScheduler(5, 256, 3), 5)
	if !trace.EventsEqual(a.Trace, b.Trace, false) {
		t.Fatal("same-seed PCT runs differ")
	}
	c := schedProgram(NewPCTScheduler(6, 256, 3), 6)
	if trace.EventsEqual(a.Trace, c.Trace, true) {
		t.Fatal("different-seed PCT runs identical")
	}
}

func TestReplaySchedulerStrictDivergence(t *testing.T) {
	orig := schedProgram(NewRandomScheduler(3), 3)
	sched := orig.Trace.Schedule()
	// Corrupt one decision mid-stream to demand a thread that cannot run.
	sched[len(sched)/2] = 77
	res := schedProgram(NewReplayScheduler(sched), 3)
	if res.Outcome != OutcomeDiverged {
		t.Fatalf("outcome = %v, want diverged", res.Outcome)
	}
	if res.DivergedAt == 0 {
		t.Fatal("divergence position not reported")
	}
}

func TestReplaySchedulerExhaustionWithUniqueContinuation(t *testing.T) {
	// A single-threaded program replayed from a truncated schedule can
	// still finish: the continuation is unique.
	m := New(Config{Seed: 0, CollectTrace: true})
	c := m.NewCell("c", trace.Int(0))
	s := m.Site("s")
	orig := m.Run(func(t *Thread) {
		for i := 0; i < 10; i++ {
			t.Store(s, c, trace.Int(int64(i)))
		}
	})
	sched := orig.Trace.Schedule()[:3]

	m2 := New(Config{Seed: 0, Scheduler: NewReplayScheduler(sched), CollectTrace: true})
	c2 := m2.NewCell("c", trace.Int(0))
	s2 := m2.Site("s")
	res := m2.Run(func(t *Thread) {
		for i := 0; i < 10; i++ {
			t.Store(s2, c2, trace.Int(int64(i)))
		}
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want ok past the horizon", res.Outcome)
	}
}

func TestReplaySchedulerFallback(t *testing.T) {
	orig := schedProgram(NewRandomScheduler(4), 4)
	short := orig.Trace.Schedule()[:10]
	rs := NewReplayScheduler(short)
	rs.Fallback = NewRandomScheduler(99)
	res := schedProgram(rs, 4)
	if res.Outcome != OutcomeOK {
		t.Fatalf("fallback replay outcome = %v", res.Outcome)
	}
	if rs.Pos() != 10 {
		t.Fatalf("consumed %d decisions, want 10", rs.Pos())
	}
}

func TestSketchSchedulerForcesDecisions(t *testing.T) {
	orig := schedProgram(NewRandomScheduler(8), 8)
	// Force the first 20 decisions from the original; leave the rest to a
	// different random base. The prefix must match the original exactly.
	forced := make(map[uint64]trace.ThreadID)
	for i, tid := range orig.Trace.Schedule() {
		if i >= 20 {
			break
		}
		forced[uint64(i)] = tid
	}
	sk := NewSketchScheduler(forced, NewRandomScheduler(1234))
	res := schedProgram(sk, 8)
	for i := 0; i < 20 && i < len(res.Trace.Events); i++ {
		if res.Trace.Events[i].TID != orig.Trace.Events[i].TID {
			t.Fatalf("sketch prefix diverged at %d", i)
		}
	}
	if sk.Misses != 0 {
		t.Fatalf("sketch misses = %d on a feasible prefix", sk.Misses)
	}
}

func TestDaemonsDoNotCountForDeadlock(t *testing.T) {
	// A daemon blocked forever must not trip deadlock detection once the
	// program proper is done.
	m := New(Config{Seed: 0, CollectTrace: true})
	ch := m.NewChan("ch", 1)
	s := m.Site("s")
	sp := m.Site("spawn")
	res := m.Run(func(t *Thread) {
		t.SpawnDaemon(sp, "d", func(t *Thread) {
			t.Recv(s, ch) // blocks forever
		})
		t.Yield(s)
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want ok (daemon parked)", res.Outcome)
	}
}

func TestDaemonBlockingMainStillDeadlocks(t *testing.T) {
	// The converse: a non-daemon blocked forever IS a deadlock even when
	// daemons exist.
	m := New(Config{Seed: 0, CollectTrace: true})
	ch := m.NewChan("ch", 1)
	s := m.Site("s")
	sp := m.Site("spawn")
	res := m.Run(func(t *Thread) {
		t.SpawnDaemon(sp, "d", func(t *Thread) {
			t.Recv(s, ch)
		})
		t.Recv(s, ch) // main blocks forever too
	})
	if res.Outcome != OutcomeDeadlock {
		t.Fatalf("outcome = %v, want deadlock", res.Outcome)
	}
}

func TestRelaxTimeMakesSleepSchedulable(t *testing.T) {
	// Under RelaxTime a sleeping thread can be picked immediately; the
	// run completes without the clock having to jump.
	m := New(Config{Seed: 0, RelaxTime: true, CollectTrace: true})
	s := m.Site("s")
	res := m.Run(func(t *Thread) {
		t.Sleep(s, 1<<40) // absurd deadline; must not stall
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Cycles >= 1<<40 {
		t.Fatal("relaxed sleep still advanced the clock to the deadline")
	}
}

func TestRelaxTimeRecvTimeoutUsesChannelState(t *testing.T) {
	m := New(Config{Seed: 0, RelaxTime: true, CollectTrace: true})
	ch := m.NewChan("ch", 1)
	s := m.Site("s")
	var got trace.Value
	var ok bool
	res := m.Run(func(t *Thread) {
		t.Send(s, ch, trace.Int(7))
		got, ok = t.RecvTimeout(s, ch, 1)
	})
	if res.Outcome != OutcomeOK || !ok || got.AsInt() != 7 {
		t.Fatalf("relaxed RecvTimeout lost the message: ok=%v got=%v", ok, got)
	}
}

func TestMachineAccessors(t *testing.T) {
	m := New(Config{Seed: 42, CollectTrace: true})
	c := m.NewCell("cell", trace.Int(3))
	mu := m.NewMutex("mu")
	ch := m.NewChan("ch", 2)
	st := m.Stream("str")
	if m.Seed() != 42 {
		t.Fatal("Seed accessor broken")
	}
	if m.CellName(c) != "cell" || m.MutexName(mu) != "mu" || m.ChanName(ch) != "ch" || m.StreamName(st) != "str" {
		t.Fatal("name accessors broken")
	}
	if id, ok := m.CellID("cell"); !ok || id != c {
		t.Fatal("CellID broken")
	}
	if m.CellByName("cell").AsInt() != 3 {
		t.Fatal("CellByName broken")
	}
	if m.CellByName("nope").Kind != trace.VNil {
		t.Fatal("unknown cell must be nil")
	}
	if m.ChanLen(ch) != 0 {
		t.Fatal("ChanLen broken")
	}
	if _, ok := m.StreamID("str"); !ok {
		t.Fatal("StreamID broken")
	}
	names := m.StreamNames()
	if len(names) != 1 || names[0] != "str" {
		t.Fatalf("StreamNames = %v", names)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeOK: "ok", OutcomeFailed: "failed", OutcomeCrashed: "crashed",
		OutcomeDeadlock: "deadlock", OutcomeDiverged: "diverged", OutcomeAborted: "aborted",
	}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}

package vm

import (
	"testing"

	"debugdet/internal/trace"
)

// buildRacy constructs a small multi-threaded program with contention so
// schedulers face non-singleton enabled sets.
func buildRacy(m *Machine) func(*Thread) {
	site := m.Site("racy")
	mu := m.NewMutex("mu")
	cell := m.NewCell("counter", trace.Int(0))
	body := func(t *Thread) {
		for i := 0; i < 6; i++ {
			t.Lock(site, mu)
			v := t.Load(site, cell)
			t.Store(site, cell, trace.Int(v.Int+1))
			t.Unlock(site, mu)
		}
	}
	return func(t *Thread) {
		t.Spawn(site, "a", body)
		t.Spawn(site, "b", body)
		t.Spawn(site, "c", body)
		body(t)
	}
}

// TestLogRoundsMatchesTrace pins the round log's shape: one round per
// applied event, in order, with the pick equal to the event's thread and
// the enabled set sorted and containing the pick — on both the inline
// fast path and the baton path.
func TestLogRoundsMatchesTrace(t *testing.T) {
	for _, disableInline := range []bool{false, true} {
		m := New(Config{Seed: 3, CollectTrace: true, LogRounds: true, DisableInline: disableInline})
		main := buildRacy(m)
		res := m.Run(main)
		if res.Outcome != OutcomeOK {
			t.Fatalf("outcome = %v", res.Outcome)
		}
		rounds := m.Rounds()
		if uint64(len(rounds)) != res.Steps {
			t.Fatalf("disableInline=%v: %d rounds for %d events", disableInline, len(rounds), res.Steps)
		}
		for i, r := range rounds {
			ev := res.Trace.Events[i]
			if r.Seq != ev.Seq || r.Pick != ev.TID {
				t.Fatalf("disableInline=%v: round %d = (seq %d, pick %d), event (seq %d, tid %d)",
					disableInline, i, r.Seq, r.Pick, ev.Seq, ev.TID)
			}
			found := false
			for j, id := range r.Enabled {
				if j > 0 && r.Enabled[j-1] >= id {
					t.Fatalf("round %d enabled set not ascending: %v", i, r.Enabled)
				}
				if id == r.Pick {
					found = true
				}
			}
			if !found {
				t.Fatalf("round %d pick %d not in enabled set %v", i, r.Pick, r.Enabled)
			}
		}
	}
}

// TestLogRoundsNoPerturbation pins that keeping the round log changes
// nothing observable: trace, clock and step count are bit-identical with
// and without it.
func TestLogRoundsNoPerturbation(t *testing.T) {
	run := func(logRounds bool) *Result {
		m := New(Config{Seed: 5, CollectTrace: true, LogRounds: logRounds})
		return m.Run(buildRacy(m))
	}
	a, b := run(false), run(true)
	if a.Steps != b.Steps || a.Cycles != b.Cycles {
		t.Fatalf("round log perturbed the run: steps %d vs %d, cycles %d vs %d",
			a.Steps, b.Steps, a.Cycles, b.Cycles)
	}
	if !trace.EventsEqual(a.Trace, b.Trace, false) {
		t.Fatal("round log perturbed the event stream")
	}
}

// TestSchedSimReproducesPicks pins the dry-run contract: replaying a
// recorded execution's rounds through a fresh scheduler of the same
// construction via SchedSim reproduces every pick — for the random, PCT,
// round-robin and replay schedulers.
func TestSchedSimReproducesPicks(t *testing.T) {
	schedulers := map[string]func() Scheduler{
		"random":     func() Scheduler { return NewRandomScheduler(11) },
		"pct":        func() Scheduler { return NewPCTScheduler(11, 4096, 3) },
		"roundrobin": func() Scheduler { return NewRoundRobinScheduler() },
	}
	for name, mk := range schedulers {
		m := New(Config{Scheduler: mk(), CollectTrace: true, LogRounds: true})
		res := m.Run(buildRacy(m))
		if res.Outcome != OutcomeOK {
			t.Fatalf("%s: outcome = %v", name, res.Outcome)
		}
		rounds := m.Rounds()
		sim := NewSchedSim()
		fresh := mk()
		for i, r := range rounds {
			pick, ok := sim.Pick(fresh, r.Seq, r.Enabled)
			if !ok || pick != r.Pick {
				t.Fatalf("%s: dry pick %d = (%d, %v), recorded %d", name, i, pick, ok, r.Pick)
			}
		}

		// A replay scheduler over the recorded schedule also dry-runs.
		sched := make([]trace.ThreadID, len(rounds))
		for i, r := range rounds {
			sched[i] = r.Pick
		}
		rs := NewReplayScheduler(sched)
		for i, r := range rounds {
			pick, ok := sim.Pick(rs, r.Seq, r.Enabled)
			if !ok || pick != r.Pick {
				t.Fatalf("replay: dry pick %d = (%d, %v), recorded %d", i, pick, ok, r.Pick)
			}
		}
	}
}

// TestSchedSimDivergenceSignal pins that a replay scheduler off its log
// reports failure through SchedSim instead of panicking: the forked
// search treats that as a divergence point.
func TestSchedSimDivergenceSignal(t *testing.T) {
	sim := NewSchedSim()
	rs := NewReplayScheduler([]trace.ThreadID{2})
	if pick, ok := sim.Pick(rs, 0, []trace.ThreadID{0, 1}); ok {
		t.Fatalf("dry pick off-log = %d, want divergence", pick)
	}
	// Log exhausted with a singleton continuation still picks.
	rs2 := NewReplayScheduler(nil)
	if pick, ok := sim.Pick(rs2, 0, []trace.ThreadID{3}); !ok || pick != 3 {
		t.Fatalf("singleton continuation = (%d, %v), want (3, true)", pick, ok)
	}
}

package vm

import "debugdet/internal/trace"

// PendingOp is a read-only view of a parked thread's next operation, with
// the event it would produce if applied in the current machine state. The
// value-deterministic replayer uses it to pick, at every step, a thread
// whose next event matches the recorded per-thread log (greedy value-guided
// scheduling).
type PendingOp struct {
	Kind trace.EventKind
	Site trace.SiteID
	Obj  trace.ObjID
	// Val is the predicted event value: the value that would be read
	// (loads, receives, inputs), written (stores) or transmitted (sends,
	// outputs). ValKnown is false when the value cannot be predicted
	// without applying the op.
	Val      trace.Value
	ValKnown bool
}

// PeekEvent predicts the event thread t would emit if its pending op were
// applied now. The prediction is only meaningful while t is parked and its
// op is enabled; ok is false otherwise. Peeking never mutates machine
// state: in particular it does not consume inputs or channel slots.
func (m *Machine) PeekEvent(t *Thread) (PendingOp, bool) {
	if t.done {
		return PendingOp{}, false
	}
	req := &t.pending
	p := PendingOp{Site: req.site, Obj: req.obj}
	switch req.code {
	case opLoad:
		p.Kind = trace.EvLoad
		p.Val = m.cells[req.obj].slot.val
		p.ValKnown = true
	case opStore:
		p.Kind = trace.EvStore
		if req.msg == "add" {
			p.Val = trace.Int(m.cells[req.obj].slot.val.AsInt() + req.val.AsInt())
		} else {
			p.Val = req.val
		}
		p.ValKnown = true
	case opLock:
		p.Kind = trace.EvLock
	case opUnlock:
		p.Kind = trace.EvUnlock
	case opSend:
		p.Kind = trace.EvSend
		p.Val = req.val
		p.ValKnown = true
	case opTrySend:
		// A try-send against a full channel emits a yield, not a send.
		if m.chans[req.obj].full() {
			p.Kind = trace.EvYield
		} else {
			p.Kind = trace.EvSend
			p.Val = req.val
			p.ValKnown = true
		}
	case opRecv, opTryRecv, opRecvTimeout:
		if ch := &m.chans[req.obj]; !ch.empty() {
			p.Kind = trace.EvRecv
			p.Val = ch.front().val
			p.ValKnown = true
		} else if req.code == opRecv {
			p.Kind = trace.EvRecv
		} else {
			// Try/timeout variants fall through to a yield when empty.
			p.Kind = trace.EvYield
		}
	case opInput:
		p.Kind = trace.EvInput
		s := &m.streams[req.obj]
		p.Val = m.inputs.Next(s.name, s.inIndex)
		p.ValKnown = true
	case opOutput:
		p.Kind = trace.EvOutput
		p.Val = req.val
		p.ValKnown = true
	case opYield:
		p.Kind = trace.EvYield
	case opSleep:
		p.Kind = trace.EvSleep
	case opObserve:
		p.Kind = trace.EvObserve
		p.Val = req.val
		p.ValKnown = true
	case opSpawn:
		p.Kind = trace.EvSpawn
	case opExit:
		p.Kind = trace.EvExit
	case opFail:
		p.Kind = trace.EvFail
		p.Val = trace.Str(req.msg)
		p.ValKnown = true
	case opCrash, opPanic:
		p.Kind = trace.EvCrash
		p.Val = trace.Str(req.msg)
		p.ValKnown = true
	case opDiskWrite:
		p.Kind = trace.EvDiskWrite
		p.Val = req.val
		p.ValKnown = true
	case opDiskRead:
		p.Kind = trace.EvDiskRead
		d := &m.disks[req.obj]
		if idx := int(req.deadline); idx >= 0 && idx < len(d.recs) {
			p.Val = d.recs[idx].val
		} else {
			p.Val = trace.Nil
		}
		p.ValKnown = true
	case opDiskFsync:
		p.Kind = trace.EvDiskFsync
		d := &m.disks[req.obj]
		p.Val = trace.Int(int64(d.fsyncDurable(d.fsyncs + 1)))
		p.ValKnown = true
	case opDiskBarrier:
		p.Kind = trace.EvDiskBarrier
		p.Val = trace.Int(int64(len(m.disks[req.obj].recs)))
		p.ValKnown = true
	case opDiskCrash:
		p.Kind = trace.EvDiskCrash
		keep, _ := m.disks[req.obj].crashKeep()
		p.Val = trace.Int(int64(keep))
		p.ValKnown = true
	//lint:exhaustive-default opNone has no observable pending state; peeking it reports not-peekable
	default:
		return PendingOp{}, false
	}
	return p, true
}

// ThreadName returns the name of the thread with the given ID, or "".
func (m *Machine) ThreadName(id trace.ThreadID) string {
	if int(id) < len(m.threads) {
		return m.threads[id].name
	}
	return ""
}

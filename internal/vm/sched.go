package vm

import (
	"math/rand"

	"debugdet/internal/trace"
)

// Scheduler picks the next thread to run among the enabled set. enabled is
// nonempty and sorted by thread ID. Returning nil signals that the
// scheduler cannot continue (replay divergence); the machine then stops
// with OutcomeDiverged.
//
// A Pick must depend only on the scheduler's own state, m.Seq(), and the
// IDs of the enabled threads — never on other machine or thread state.
// Every built-in scheduler obeys this, and SchedSim relies on it: forked
// search dry-runs schedulers over recorded rounds using fabricated
// threads that carry nothing but their IDs.
type Scheduler interface {
	Name() string
	Pick(m *Machine, enabled []*Thread) *Thread
}

// RoundRobinScheduler runs threads in ID order, advancing on every pick.
// It is fully deterministic with no seed and useful as a baseline and in
// tests.
type RoundRobinScheduler struct {
	next int
}

// NewRoundRobinScheduler returns a round-robin scheduler.
func NewRoundRobinScheduler() *RoundRobinScheduler { return &RoundRobinScheduler{} }

// Name implements Scheduler.
func (s *RoundRobinScheduler) Name() string { return "roundrobin" }

// Pick implements Scheduler.
func (s *RoundRobinScheduler) Pick(_ *Machine, enabled []*Thread) *Thread {
	// Choose the first enabled thread with ID >= next, wrapping around.
	for _, t := range enabled {
		if int(t.id) >= s.next {
			s.next = int(t.id) + 1
			return t
		}
	}
	t := enabled[0]
	s.next = int(t.id) + 1
	return t
}

// RandomScheduler picks uniformly at random among enabled threads using a
// seeded generator: the production scheduler model. Same seed, same
// program, same inputs — same execution.
type RandomScheduler struct {
	rng *rand.Rand
}

// NewRandomScheduler returns a seeded random scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: newRand(seed)}
}

// Name implements Scheduler.
func (s *RandomScheduler) Name() string { return "random" }

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(_ *Machine, enabled []*Thread) *Thread {
	return enabled[s.rng.Intn(len(enabled))]
}

// PCTScheduler implements the probabilistic concurrency testing strategy:
// each thread gets a distinct random priority on arrival; the
// highest-priority enabled thread runs; at a small number of random change
// points the running thread's priority drops below everyone else's. PCT
// finds rare orderings with provable probability and is used by the
// inference engine to diversify its search.
type PCTScheduler struct {
	rng *rand.Rand
	// prio is dense, indexed by thread ID (IDs are assigned in spawn
	// order, so the slice stays compact). prioUnset marks threads that
	// have not arrived yet.
	prio []int
	// used tracks assigned ranks so arrivals redraw on collision:
	// priorities are guaranteed distinct, making every pick a unique
	// maximum (ties would make the ordering depend on iteration order).
	used        map[int]struct{}
	changeAt    []uint64
	lowWatermrk int
}

// prioUnset marks a thread with no assigned priority. Assigned ranks are
// always positive and demotions are always negative, so the sentinel can
// collide with neither.
const prioUnset = 0

// pctRankSpace is the rank space arrivals draw from. It is much larger
// than any plausible thread count, so collisions (and hence redraws) are
// rare, but the redraw loop makes distinctness unconditional.
const pctRankSpace = 1000000

// NewPCTScheduler returns a PCT scheduler with the given number of
// priority-change points spread over an expected execution length.
func NewPCTScheduler(seed int64, expectedLen uint64, changePoints int) *PCTScheduler {
	rng := newRand(seed)
	s := &PCTScheduler{
		rng:  rng,
		used: make(map[int]struct{}, 8),
	}
	if expectedLen == 0 {
		expectedLen = 1
	}
	for i := 0; i < changePoints; i++ {
		s.changeAt = append(s.changeAt, uint64(rng.Int63n(int64(expectedLen))))
	}
	return s
}

// Name implements Scheduler.
func (s *PCTScheduler) Name() string { return "pct" }

// rank draws a fresh, distinct, positive priority rank.
func (s *PCTScheduler) rank() int {
	for {
		r := s.rng.Intn(pctRankSpace) + 1
		if _, taken := s.used[r]; !taken {
			s.used[r] = struct{}{}
			return r
		}
	}
}

// changePoint reports whether seq is one of the priority-change points.
// The set is tiny (typically 3), so a linear scan beats a map lookup on
// this per-pick path.
func (s *PCTScheduler) changePoint(seq uint64) bool {
	for _, at := range s.changeAt {
		if at == seq {
			return true
		}
	}
	return false
}

// Pick implements Scheduler.
func (s *PCTScheduler) Pick(m *Machine, enabled []*Thread) *Thread {
	// Assign priorities lazily on arrival; each arrival gets a distinct
	// random rank (enabled is in thread-ID order, so assignment order is
	// deterministic).
	for _, t := range enabled {
		for int(t.id) >= len(s.prio) {
			s.prio = append(s.prio, prioUnset)
		}
		if s.prio[t.id] == prioUnset {
			s.prio[t.id] = s.rank()
		}
	}
	best := enabled[0]
	for _, t := range enabled[1:] {
		if s.prio[t.id] > s.prio[best.id] {
			best = t
		}
	}
	if s.changePoint(m.seq) {
		s.lowWatermrk--
		s.prio[best.id] = s.lowWatermrk
	}
	return best
}

// ReplayScheduler forces the thread order of a recorded schedule. When the
// log runs out or the demanded thread is not enabled, behaviour depends on
// Fallback: nil means divergence (machine stops with OutcomeDiverged);
// otherwise the fallback scheduler takes over, which is how sketch-guided
// inference completes partial schedules.
type ReplayScheduler struct {
	schedule []trace.ThreadID
	pos      int
	Fallback Scheduler
	// Diverged reports whether the scheduler ever had to abandon the log.
	Diverged bool
}

// NewReplayScheduler returns a scheduler that replays the given thread
// order strictly.
func NewReplayScheduler(schedule []trace.ThreadID) *ReplayScheduler {
	return &ReplayScheduler{schedule: schedule}
}

// Name implements Scheduler.
func (s *ReplayScheduler) Name() string { return "replay" }

// Pos returns how many decisions have been consumed.
func (s *ReplayScheduler) Pos() int { return s.pos }

// Pick implements Scheduler.
func (s *ReplayScheduler) Pick(m *Machine, enabled []*Thread) *Thread {
	if s.pos < len(s.schedule) {
		want := s.schedule[s.pos]
		for _, t := range enabled {
			if t.id == want {
				s.pos++
				return t
			}
		}
		// Demanded thread not enabled.
		s.Diverged = true
		if s.Fallback != nil {
			return s.Fallback.Pick(m, enabled)
		}
		return nil
	}
	// Log exhausted.
	if s.Fallback != nil {
		return s.Fallback.Pick(m, enabled)
	}
	if len(enabled) == 1 {
		// Unique continuation: allow runs to finish deterministically
		// past the recorded horizon.
		return enabled[0]
	}
	s.Diverged = true
	return nil
}

// SketchScheduler forces specific decisions at specific global steps and
// delegates everything else to a base scheduler. The inference engine uses
// it to pin down the ordering fragments it has already established while
// searching over the rest.
type SketchScheduler struct {
	Forced map[uint64]trace.ThreadID
	Base   Scheduler
	// Misses counts forced decisions that could not be honoured because
	// the demanded thread was not enabled.
	Misses int
}

// NewSketchScheduler returns a sketch scheduler over the given base.
func NewSketchScheduler(forced map[uint64]trace.ThreadID, base Scheduler) *SketchScheduler {
	return &SketchScheduler{Forced: forced, Base: base}
}

// Name implements Scheduler.
func (s *SketchScheduler) Name() string { return "sketch" }

// Pick implements Scheduler.
func (s *SketchScheduler) Pick(m *Machine, enabled []*Thread) *Thread {
	if want, ok := s.Forced[m.seq]; ok {
		for _, t := range enabled {
			if t.id == want {
				return t
			}
		}
		s.Misses++
	}
	return s.Base.Pick(m, enabled)
}

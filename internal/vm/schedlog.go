package vm

import "debugdet/internal/trace"

// SchedRound records one scheduling decision of a live execution: the
// event sequence number the decision was taken at, the enabled set the
// scheduler saw (thread IDs, ascending), and the thread it picked. A
// machine configured with Config.LogRounds appends one SchedRound per
// pick; the resulting log is what lets checkpoint-forked search dry-run a
// different scheduler over a finished execution without re-executing it
// (see SchedSim).
type SchedRound struct {
	// Seq is m.Seq() at pick time: the sequence number of the event this
	// decision produced.
	Seq uint64
	// Enabled is the enabled set presented to the scheduler, by thread
	// ID in ascending order.
	Enabled []trace.ThreadID
	// Pick is the chosen thread.
	Pick trace.ThreadID
}

// Rounds returns the scheduling-round log collected so far (nil unless
// Config.LogRounds was set). Read it only while the machine is paused or
// finished. The log is append-only: callers may retain slices of it.
func (m *Machine) Rounds() []SchedRound { return m.rounds }

// logRound appends one decision to the round log. Called from pickNext —
// the single funnel both the machine loop and the inline fast path route
// scheduling decisions through — so the log sees every decision exactly
// once, in order.
func (m *Machine) logRound(enabled []*Thread, pick *Thread) {
	ids := make([]trace.ThreadID, len(enabled))
	for i, t := range enabled {
		ids[i] = t.id
	}
	m.rounds = append(m.rounds, SchedRound{Seq: m.seq, Enabled: ids, Pick: pick.id})
}

// SchedSim replays scheduling decisions against a Scheduler without a
// live machine: it fabricates threads that carry only their IDs and a
// machine that carries only its event sequence number — exactly the
// state the Scheduler contract allows a Pick to read. Forked search uses
// it twice per candidate: to find where a candidate's scheduler first
// departs from a recorded execution's rounds, and to fast-forward a
// fresh scheduler to a checkpoint before restoring from it.
//
// A SchedSim is not safe for concurrent use; create one per goroutine
// (it exists to be cheap: fake threads are cached across calls).
type SchedSim struct {
	m       Machine
	threads []*Thread
	buf     []*Thread
}

// NewSchedSim returns an empty simulator.
func NewSchedSim() *SchedSim { return &SchedSim{} }

// thread returns the cached fake thread for an ID, growing the cache on
// demand. IDs are dense (spawn order), so a slice suffices.
func (ss *SchedSim) thread(id trace.ThreadID) *Thread {
	for int(id) >= len(ss.threads) {
		ss.threads = append(ss.threads, &Thread{id: trace.ThreadID(len(ss.threads))})
	}
	return ss.threads[id]
}

// Pick asks s for its decision at the given sequence number over the
// given enabled set (ascending thread IDs, as a live machine presents
// it), advancing s's internal state exactly as a live pick would. The
// second result is false when the scheduler cannot continue (a replay
// scheduler off its log) — the live machine would stop with
// OutcomeDiverged there.
func (ss *SchedSim) Pick(s Scheduler, seq uint64, enabled []trace.ThreadID) (trace.ThreadID, bool) {
	ss.m.seq = seq
	ss.buf = ss.buf[:0]
	for _, id := range enabled {
		ss.buf = append(ss.buf, ss.thread(id))
	}
	t := s.Pick(&ss.m, ss.buf)
	if t == nil {
		return 0, false
	}
	return t.id, true
}

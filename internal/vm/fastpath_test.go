package vm

import (
	"fmt"
	"testing"

	"debugdet/internal/trace"
)

// fastpathProgram exercises every inline-relevant op shape: lock convoys,
// channel ping-pong with try-variants and timeouts, sleeps, inputs,
// outputs, observes, spawns mid-run and daemons.
func fastpathProgram(disableInline bool, sched Scheduler, seed int64) *Result {
	m := New(Config{
		Seed:          seed,
		Scheduler:     sched,
		Inputs:        SeededInputs(seed, 100),
		CollectTrace:  true,
		DisableInline: disableInline,
	})
	mu := m.NewMutex("mu")
	c := m.NewCell("c", trace.Int(0))
	ping := m.NewChan("ping", 2)
	pong := m.NewChan("pong", 1)
	in := m.Stream("in")
	out := m.Stream("out")
	s := m.Site("s")
	sp := m.Site("spawn")

	worker := func(t *Thread) {
		for i := 0; i < 6; i++ {
			t.Lock(s, mu)
			v := t.Load(s, c)
			t.Store(s, c, trace.Int(v.AsInt()+1))
			t.Unlock(s, mu)
			t.Send(s, ping, trace.Int(int64(i)))
			if v, ok := t.RecvTimeout(s, pong, 40); ok {
				t.Output(s, out, v)
			}
			t.TrySend(s, ping, trace.Int(99))
			t.Yield(s)
		}
	}
	return m.Run(func(t *Thread) {
		t.Spawn(sp, "a", worker)
		t.Spawn(sp, "b", worker)
		t.SpawnDaemon(sp, "pump", func(t *Thread) {
			for {
				v := t.Recv(s, ping)
				t.TrySend(s, pong, v)
			}
		})
		for i := 0; i < 8; i++ {
			x := t.Input(s, in)
			t.Observe(s, 0, x)
			t.Sleep(s, 5)
			if _, ok := t.TryRecv(s, ping); ok {
				t.Output(s, out, trace.Int(int64(i)))
			}
		}
	})
}

// TestInlineFastPathEquivalence pins the fast path's contract: with the
// inline run-to-next-schedule-point optimisation on or off, an execution
// is bit-identical — same events, same clock, same outcome, same I/O —
// under every scheduler family.
func TestInlineFastPathEquivalence(t *testing.T) {
	scheds := map[string]func(seed int64) Scheduler{
		"random":     func(seed int64) Scheduler { return NewRandomScheduler(seed) },
		"pct":        func(seed int64) Scheduler { return NewPCTScheduler(seed, 1024, 3) },
		"roundrobin": func(seed int64) Scheduler { return NewRoundRobinScheduler() },
	}
	for name, mk := range scheds {
		for seed := int64(0); seed < 12; seed++ {
			slow := fastpathProgram(true, mk(seed), seed)
			fast := fastpathProgram(false, mk(seed), seed)
			if slow.Outcome != fast.Outcome {
				t.Fatalf("%s/seed=%d: outcome %v (baton) vs %v (inline)", name, seed, slow.Outcome, fast.Outcome)
			}
			if slow.Steps != fast.Steps || slow.Cycles != fast.Cycles {
				t.Fatalf("%s/seed=%d: steps/cycles %d/%d vs %d/%d",
					name, seed, slow.Steps, slow.Cycles, fast.Steps, fast.Cycles)
			}
			if !trace.EventsEqual(slow.Trace, fast.Trace, false) {
				t.Fatalf("%s/seed=%d: traces differ between baton and inline paths", name, seed)
			}
			if fmt.Sprint(slow.Outputs) != fmt.Sprint(fast.Outputs) ||
				fmt.Sprint(slow.InputsUsed) != fmt.Sprint(fast.InputsUsed) {
				t.Fatalf("%s/seed=%d: I/O differs between baton and inline paths", name, seed)
			}
		}
	}
}

// TestInlineFastPathTerminalOps pins the handback protocol for ops that
// stop the machine from inside an inline apply (non-owner unlock crash)
// and for terminal ops excluded from inlining (fail, deadlock, aborted).
func TestInlineFastPathTerminalOps(t *testing.T) {
	build := func(disable bool, body func(m *Machine) func(*Thread)) *Result {
		m := New(Config{Seed: 1, CollectTrace: true, DisableInline: disable, MaxSteps: 64})
		return m.Run(body(m))
	}
	cases := map[string]struct {
		body func(m *Machine) func(*Thread)
		want Outcome
	}{
		"fail": {func(m *Machine) func(*Thread) {
			s := m.Site("s")
			return func(t *Thread) { t.Yield(s); t.Fail(s, "boom") }
		}, OutcomeFailed},
		"crash-inline-unlock": {func(m *Machine) func(*Thread) {
			s := m.Site("s")
			mu := m.NewMutex("mu")
			return func(t *Thread) { t.Yield(s); t.Unlock(s, mu) }
		}, OutcomeCrashed},
		"deadlock": {func(m *Machine) func(*Thread) {
			s := m.Site("s")
			ch := m.NewChan("ch", 1)
			return func(t *Thread) { t.Yield(s); t.Recv(s, ch) }
		}, OutcomeDeadlock},
		"aborted": {func(m *Machine) func(*Thread) {
			s := m.Site("s")
			c := m.NewCell("c", trace.Int(0))
			return func(t *Thread) {
				for {
					t.Store(s, c, trace.Int(1))
				}
			}
		}, OutcomeAborted},
	}
	for name, tc := range cases {
		slow := build(true, tc.body)
		fast := build(false, tc.body)
		if slow.Outcome != tc.want || fast.Outcome != tc.want {
			t.Fatalf("%s: outcome %v (baton) / %v (inline), want %v", name, slow.Outcome, fast.Outcome, tc.want)
		}
		if !trace.EventsEqual(slow.Trace, fast.Trace, false) {
			t.Fatalf("%s: traces differ between baton and inline paths", name)
		}
	}
}

// TestPCTPrioritiesDistinct pins the collision-free priority scheme: every
// arrived thread holds a distinct rank, so the "highest-priority enabled
// thread" is always unique and the schedule never depends on tie-breaking.
func TestPCTPrioritiesDistinct(t *testing.T) {
	s := NewPCTScheduler(7, 1024, 3)
	m := New(Config{})
	var threads []*Thread
	// Enough arrivals that the rank space (1e6) sees birthday collisions
	// with high probability, exercising the redraw loop.
	for i := 0; i < 1500; i++ {
		threads = append(threads, m.newThread(fmt.Sprintf("t%d", i), nil))
	}
	s.Pick(m, threads)
	seen := make(map[int]bool, len(threads))
	for _, th := range threads {
		p := s.prio[th.id]
		if p == prioUnset {
			t.Fatalf("thread %d has no priority after arrival", th.id)
		}
		if seen[p] {
			t.Fatalf("priority %d assigned twice", p)
		}
		seen[p] = true
	}
}

package scenario

import (
	"testing"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func TestParamsCloneAndGet(t *testing.T) {
	base := Params{"a": 1, "b": 2}
	c := base.Clone(Params{"b": 9, "c": 3})
	if base["b"] != 2 {
		t.Fatal("Clone mutated the receiver")
	}
	if c["a"] != 1 || c["b"] != 9 || c["c"] != 3 {
		t.Fatalf("Clone = %v", c)
	}
	if c.Get("missing", 42) != 42 || c.Get("a", 0) != 1 {
		t.Fatal("Get defaults broken")
	}
	if s := c.String(); s != "a=1 b=9 c=3" {
		t.Fatalf("String = %q (must be sorted and stable)", s)
	}
}

func minimalScenario() *Scenario {
	return &Scenario{
		Name:          "mini",
		DefaultParams: Params{"n": 3},
		Build: func(m *vm.Machine, p Params) func(*vm.Thread) {
			in := m.DeclareStream("x", trace.TaintData)
			out := m.Stream("y")
			s := m.Site("s")
			n := int(p.Get("n", 1))
			return func(t *vm.Thread) {
				for i := 0; i < n; i++ {
					v := t.Input(s, in)
					t.Output(s, out, v)
				}
			}
		},
		Inputs: func(seed int64, p Params) vm.InputSource {
			return vm.SeededInputs(seed, 100)
		},
		InputDomains: []InputDomain{{Stream: "x", Min: 10, Max: 19}},
		Failure: FailureSpec{
			Name: "none",
			Check: func(v *RunView) (bool, string) {
				return false, ""
			},
		},
		RootCauses: []RootCause{{
			ID:      "rc",
			Present: func(v *RunView) bool { return false },
		}},
	}
}

func TestExecRunsAndStampsHeader(t *testing.T) {
	s := minimalScenario()
	v := s.Exec(ExecOptions{Seed: 4, Params: Params{"n": 5}})
	if v.Result.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v", v.Result.Outcome)
	}
	if len(v.Result.Outputs["y"]) != 5 {
		t.Fatalf("outputs = %d, want 5", len(v.Result.Outputs["y"]))
	}
	if v.Trace.Header.Scenario != "mini" || v.Trace.Header.Seed != 4 {
		t.Fatalf("header not stamped: %+v", v.Trace.Header)
	}
	if v.Trace.Header.Params["n"] != 5 {
		t.Fatal("params not stamped")
	}
}

func TestExecParamOverridesDoNotStick(t *testing.T) {
	s := minimalScenario()
	s.Exec(ExecOptions{Seed: 1, Params: Params{"n": 7}})
	if s.DefaultParams["n"] != 3 {
		t.Fatal("Exec mutated the scenario's defaults")
	}
}

func TestDomainInputsRespectDeclaredRanges(t *testing.T) {
	s := minimalScenario()
	src := s.DomainInputs(9)
	for i := 0; i < 100; i++ {
		v := src.Next("x", i).AsInt()
		if v < 10 || v > 19 {
			t.Fatalf("domain [10,19] violated: %d", v)
		}
	}
	// Undeclared streams still produce something bounded.
	v := src.Next("other", 0).AsInt()
	if v < 0 || v >= 1024 {
		t.Fatalf("undeclared stream value %d out of default bounds", v)
	}
}

func TestDomainInputsDeterministic(t *testing.T) {
	s := minimalScenario()
	a, b := s.DomainInputs(5), s.DomainInputs(5)
	for i := 0; i < 50; i++ {
		if !a.Next("x", i).Equal(b.Next("x", i)) {
			t.Fatal("same-seed domain inputs differ")
		}
	}
	c := s.DomainInputs(6)
	same := true
	for i := 0; i < 50; i++ {
		if !a.Next("x", i).Equal(c.Next("x", i)) {
			same = false
		}
	}
	if same {
		t.Fatal("different-seed domain inputs identical")
	}
}

func TestSearchSourcePrefersScenarioHook(t *testing.T) {
	s := minimalScenario()
	called := false
	s.SearchInputs = func(seed int64, p Params) vm.InputSource {
		called = true
		return vm.ZeroInputs
	}
	s.SearchSource(1, s.DefaultParams)
	if !called {
		t.Fatal("SearchInputs hook not used")
	}
}

func TestPresentCausesOrder(t *testing.T) {
	s := minimalScenario()
	s.RootCauses = []RootCause{
		{ID: "b", Present: func(*RunView) bool { return true }},
		{ID: "a", Present: func(*RunView) bool { return true }},
		{ID: "c", Present: func(*RunView) bool { return false }},
	}
	v := s.Exec(ExecOptions{Seed: 1})
	got := s.PresentCauses(v)
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("PresentCauses = %v, want declaration order [b a]", got)
	}
}

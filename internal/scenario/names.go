package scenario

import (
	"fmt"
	"strings"
)

// NearestName returns the candidate most plausibly meant by name, or ""
// when nothing is close enough to suggest. A candidate is close when name
// is a prefix of it (a truncated name, e.g. "dynokv-stale" for
// "dynokv-staleread") or its edit distance is small relative to the
// shorter of the two lengths. Ties break toward the lexicographically
// first candidate so error messages are deterministic.
func NearestName(name string, candidates []string) string {
	best, bestScore, found := "", 0, false
	for _, c := range candidates {
		if c == name {
			return c
		}
		score, ok := closeness(name, c)
		if !ok {
			continue
		}
		if !found || score > bestScore || (score == bestScore && c < best) {
			best, bestScore, found = c, score, true
		}
	}
	return best
}

// closeness scores how plausibly the user meant candidate c when typing
// name; higher is closer. ok is false when c is not worth suggesting.
func closeness(name, c string) (int, bool) {
	if strings.HasPrefix(c, name) && len(name) >= 3 {
		// Truncations are the most common typo class; rank by how much
		// of the candidate was typed.
		return 1000 + len(name) - len(c), true
	}
	d := editDistance(name, c)
	short := len(name)
	if len(c) < short {
		short = len(c)
	}
	if d > short/3 {
		return 0, false
	}
	return -d, true
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// UnknownNameError builds the standard unknown-scenario error: it names
// the nearest match when one exists and always lists what is available.
func UnknownNameError(pkg, name string, available []string) error {
	if near := NearestName(name, available); near != "" {
		return fmt.Errorf("%s: unknown scenario %q — did you mean %q? (available: %s)",
			pkg, name, near, strings.Join(available, ", "))
	}
	return fmt.Errorf("%s: unknown scenario %q (available: %s)",
		pkg, name, strings.Join(available, ", "))
}

// Package scenario defines the workload contract: how a buggy program, its
// environment, its failure specification and its possible root causes are
// described to the record/replay machinery.
//
// The definitions follow §3 of the paper directly. A failure is a
// violation of the program's I/O specification, expressed here as a
// predicate over a finished run that also yields a failure signature (the
// information a bug report or core dump would carry). A root cause is the
// negation of the predicate a fix would enforce; since scenarios are built
// around previously-solved bugs (as in the paper's §4 case study), each
// scenario declares the full set of root-cause predicates that can explain
// its failure, and evaluation checks which of them actually occurred in a
// given execution.
package scenario

import (
	"fmt"
	"sort"

	"debugdet/internal/plane"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Params are scenario parameters (sizes, client counts, toggles).
type Params map[string]int64

// Get returns the parameter or a default.
func (p Params) Get(key string, def int64) int64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Clone returns an independent copy with overrides applied.
func (p Params) Clone(overrides Params) Params {
	c := make(Params, len(p)+len(overrides))
	for k, v := range p {
		c[k] = v
	}
	for k, v := range overrides {
		c[k] = v
	}
	return c
}

// String renders parameters deterministically (sorted keys).
func (p Params) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, p[k])
	}
	return s
}

// RunView is what predicates and analyses see of a finished execution: the
// machine (for object names and final state), the result, and the oracle
// trace.
type RunView struct {
	Machine *vm.Machine
	Result  *vm.Result
	Trace   *trace.Log
}

// Failed reports whether the scenario's failure specification holds,
// delegating to the owning scenario.
type FailureSpec struct {
	// Name is a short identifier, e.g. "dataloss".
	Name string
	// Check inspects a finished run. failed reports whether the failure
	// occurred; signature is the failure class identity (what a bug
	// report would contain: same signature = same failure). The
	// signature must be "" when failed is false.
	Check func(v *RunView) (failed bool, signature string)
}

// RootCause is one possible explanation for the scenario's failure,
// expressed as a predicate over an execution (§3: the negation of the
// fix's predicate P held during the run).
type RootCause struct {
	// ID is a short stable identifier, e.g. "migration-race".
	ID string
	// Description explains the cause in the terms a developer would use.
	Description string
	// Present reports whether this root cause occurred in the run.
	Present func(v *RunView) bool
}

// InputDomain declares the value space of one environment stream, for the
// inference engine to search over when the stream's values were not
// recorded. Integer domains draw uniformly from [Min, Max].
type InputDomain struct {
	Stream string
	Min    int64
	Max    int64
}

// Scenario is one reproducible buggy program.
type Scenario struct {
	// Name identifies the scenario in catalogs and logs.
	Name string
	// Description is a one-paragraph summary (what the bug is, where it
	// comes from in the paper).
	Description string
	// DefaultParams are the parameters experiments use unless overridden.
	DefaultParams Params
	// DefaultSeed is a scheduler seed known to manifest the failure.
	DefaultSeed int64
	// Build constructs the program on a fresh machine and returns the
	// main thread body. Object and site registration must be
	// deterministic.
	Build func(m *vm.Machine, p Params) func(*vm.Thread)
	// Inputs returns the production environment for a seed: the input
	// source the original execution consumed. Replay-time machinery must
	// NOT call this — production inputs are not replayable from a seed;
	// the seed stands in for the outside world. Inference uses
	// SearchInputs instead.
	Inputs func(seed int64, p Params) vm.InputSource
	// SearchInputs returns an input source that samples the scenario's
	// input domains, for inference-based replay. Nil means inputs are
	// drawn uniformly from InputDomains via vm.SeededInputs-style
	// hashing.
	SearchInputs func(searchSeed int64, p Params) vm.InputSource
	// InputDomains declare per-stream search spaces (used when
	// SearchInputs is nil, and by documentation).
	InputDomains []InputDomain
	// Failure is the scenario's failure specification.
	Failure FailureSpec
	// RootCauses enumerates the possible root causes for the failure, in
	// a stable order. Debugging fidelity's 1/n uses n = len(RootCauses).
	RootCauses []RootCause
	// PlaneTruth is the ground-truth control/data classification of the
	// scenario's sites (by name), for evaluating the plane classifier.
	PlaneTruth map[string]plane.Plane
	// ControlStreams names the input streams whose values RCSE records
	// (control-plane inputs); all other streams are data-plane and are
	// re-drawn from the search domain at replay time.
	ControlStreams []string
	// TrainingParams override the defaults for invariant-training runs:
	// the healthy build the invariants are learned from (for example the
	// fixed variant of a racy program — training happens before the bug
	// ships, on code that passes its tests).
	TrainingParams Params
	// Stats optionally renders a one-line run summary for CLI output;
	// RunStats falls back to a generic summary when nil.
	Stats func(v *RunView) string
}

// ExecOptions parameterizes one execution of a scenario.
type ExecOptions struct {
	// Seed is the scheduler seed (and, via Inputs, the environment
	// identity).
	Seed int64
	// Params override the scenario defaults (nil keeps them).
	Params Params
	// Scheduler overrides the default seeded-random scheduler.
	Scheduler vm.Scheduler
	// Inputs overrides the scenario's production input source. Replay
	// and inference always set this.
	Inputs vm.InputSource
	// Observers are attached before the run (recorders, monitors,
	// detectors).
	Observers []vm.Observer
	// ObserverFactory constructs observers against the run's machine just
	// before execution, for observers that need the machine at
	// construction time (checkpoint writers). Its results are attached
	// after Observers.
	ObserverFactory func(*vm.Machine) []vm.Observer
	// MaxSteps bounds the execution (0 = VM default).
	MaxSteps uint64
	// CollectTrace controls oracle-trace collection (default true; only
	// micro-benchmarks disable it).
	DisableTrace bool
	// RelaxTime lifts time gates on sleeps and timeouts, required when a
	// complete recorded schedule is being forced (see vm.Config.RelaxTime).
	RelaxTime bool
	// LogRounds keeps the machine's scheduling-round log (see
	// vm.Config.LogRounds) — pure observation, read back through
	// RunView.Machine.Rounds(). Forked search sets it on the executions
	// it forks candidates from.
	LogRounds bool
}

// Exec builds and runs the scenario once, returning the finished view.
func (s *Scenario) Exec(o ExecOptions) *RunView {
	p := s.DefaultParams.Clone(o.Params)
	inputs := o.Inputs
	if inputs == nil {
		inputs = s.Inputs(o.Seed, p)
	}
	m := vm.New(vm.Config{
		Seed:         o.Seed,
		Scheduler:    o.Scheduler,
		Inputs:       inputs,
		MaxSteps:     o.MaxSteps,
		CollectTrace: !o.DisableTrace,
		RelaxTime:    o.RelaxTime,
		LogRounds:    o.LogRounds,
	})
	main := s.Build(m, p)
	for _, obs := range o.Observers {
		m.Attach(obs)
	}
	if o.ObserverFactory != nil {
		for _, obs := range o.ObserverFactory(m) {
			m.Attach(obs)
		}
	}
	res := m.Run(main)
	if res.Trace != nil {
		res.Trace.Header.Scenario = s.Name
		res.Trace.Header.Seed = o.Seed
		res.Trace.Header.Params = map[string]int64(p)
	}
	return &RunView{Machine: m, Result: res, Trace: res.Trace}
}

// RunStats renders the scenario's one-line run summary, falling back to a
// generic events/outcome line when the scenario declares none.
func (s *Scenario) RunStats(v *RunView) string {
	if s.Stats != nil {
		return s.Stats(v)
	}
	return fmt.Sprintf("events=%d cycles=%d outcome=%s",
		v.Result.Steps, v.Result.Cycles, v.Result.Outcome)
}

// CheckFailure evaluates the failure spec on a view.
func (s *Scenario) CheckFailure(v *RunView) (bool, string) {
	return s.Failure.Check(v)
}

// PresentCauses returns the IDs of the root causes present in the run, in
// declaration order.
func (s *Scenario) PresentCauses(v *RunView) []string {
	var out []string
	for _, rc := range s.RootCauses {
		if rc.Present(v) {
			out = append(out, rc.ID)
		}
	}
	return out
}

// DomainInputs builds the default search input source: every stream with a
// declared domain draws uniformly from it; undeclared streams draw small
// non-negative integers. Deterministic in (searchSeed, stream, index).
func (s *Scenario) DomainInputs(searchSeed int64) vm.InputSource {
	domains := make(map[string]InputDomain, len(s.InputDomains))
	for _, d := range s.InputDomains {
		domains[d.Stream] = d
	}
	return vm.InputSourceFunc(func(stream string, index int) trace.Value {
		h := vm.HashValue(searchSeed, stream, index)
		if d, ok := domains[stream]; ok && d.Max > d.Min {
			return trace.Int(d.Min + h%(d.Max-d.Min+1))
		}
		return trace.Int(h % 1024)
	})
}

// SearchSource resolves the scenario's search-input mechanism.
func (s *Scenario) SearchSource(searchSeed int64, p Params) vm.InputSource {
	if s.SearchInputs != nil {
		return s.SearchInputs(searchSeed, p)
	}
	return s.DomainInputs(searchSeed)
}

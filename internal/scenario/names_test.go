package scenario

import (
	"strings"
	"testing"
)

func TestNearestName(t *testing.T) {
	have := []string{"overflow", "dynokv-staleread", "dynokv-resurrect", "sum", "bank"}
	cases := []struct {
		in   string
		want string
	}{
		{"dynokv-stale", "dynokv-staleread"},     // truncation
		{"overfow", "overflow"},                  // dropped letter
		{"overflw", "overflow"},                  // dropped letter
		{"Sum", "sum"},                           // case slip: one substitution
		{"banana", ""},                           // nothing close
		{"dynokv-resurect", "dynokv-resurrect"},  // dropped letter mid-word
		{"dynokv-staleread", "dynokv-staleread"}, // exact
	}
	for _, c := range cases {
		if got := NearestName(c.in, have); got != c.want {
			t.Errorf("NearestName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnknownNameError(t *testing.T) {
	err := UnknownNameError("workload", "dynokv-stale",
		[]string{"dynokv-staleread", "sum"})
	msg := err.Error()
	for _, want := range []string{`did you mean "dynokv-staleread"?`, "sum", "workload:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	err = UnknownNameError("scen", "zzz", []string{"sum"})
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("no-suggestion error unexpectedly suggests: %v", err)
	}
}

package eval

import "testing"

// TestTableForkPins locks in the fork-equivalence contract across the
// T-FORK cases: the forked search produces the bit-identical outcome
// with identical attempt counts while never executing more events, and
// the control-only sensitivity sweep (bank) — where every candidate is
// equivalent to the trunk — is pruned by at least 2x (in practice to a
// single execution per search seed).
func TestTableForkPins(t *testing.T) {
	rows, err := TableFork(Options{ReplayBudget: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(forkCases) {
		t.Fatalf("rows = %d, want %d", len(rows), len(forkCases))
	}
	halved := false
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s/%s: forked search produced a different outcome", r.Scenario, r.Shape)
		}
		if r.ForkAttempts != r.BaseAttempts {
			t.Errorf("%s/%s: attempts %d -> %d, want identical counts",
				r.Scenario, r.Shape, r.BaseAttempts, r.ForkAttempts)
		}
		if r.ForkWorkSteps > r.BaseWorkSteps {
			t.Errorf("%s/%s: worksteps %d -> %d, forking must never add work",
				r.Scenario, r.Shape, r.BaseWorkSteps, r.ForkWorkSteps)
		}
		if r.ForkWorkSteps*2 <= r.BaseWorkSteps {
			halved = true
		}
		if r.Scenario == "bank" && r.Shape == "sweep" && r.Saving() < 2 {
			t.Errorf("bank sweep saved only %.2fx, want >= 2x", r.Saving())
		}
	}
	if !halved {
		t.Error("no case halved its worksteps; the fork table shows no win")
	}
}

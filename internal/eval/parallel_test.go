package eval

import (
	"context"
	"reflect"
	"testing"
)

// TestParallelGridMatchesSequential pins the grid determinism contract:
// the full result rows of the figure/table generators are deep-equal for
// workers=1 and workers=N. Run with -race in CI, this is also the data
// -race check for the concurrent evaluation path.
func TestParallelGridMatchesSequential(t *testing.T) {
	seqO := Options{ReplayBudget: 80, Scenarios: []string{"sum", "overflow"}, Workers: 1}
	parO := seqO
	parO.Workers = 4

	seqRows, err := Fig1(seqO)
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := Fig1(parO)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatalf("Fig1 rows differ between workers=1 and workers=4:\nseq: %+v\npar: %+v", seqRows, parRows)
	}

	seqCells, err := Fig2(Options{ReplayBudget: 80, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parCells, err := Fig2(Options{ReplayBudget: 80, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqCells, parCells) {
		t.Fatalf("Fig2 cells differ between workers=1 and workers=4")
	}
}

// TestRunGridErrorIsLowestIndex pins deterministic error reporting: a
// parallel grid surfaces the same (lowest-index) error a sequential loop
// would have hit first.
func TestRunGridErrorIsLowestIndex(t *testing.T) {
	boom := func(i int) error {
		if i == 3 || i == 7 {
			return errAt(i)
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		err := runGrid(context.Background(), 10, workers, boom)
		if err == nil || err.Error() != "cell 3" {
			t.Fatalf("workers=%d: error = %v, want cell 3", workers, err)
		}
	}
}

// TestRunGridCanceled pins cancellation: a grid run under an
// already-canceled context returns the context error without running any
// cell.
func TestRunGridCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran [10]bool // one slot per cell: no shared state across fn calls
		err := runGrid(ctx, 10, workers, func(i int) error { ran[i] = true; return nil })
		if err != context.Canceled {
			t.Fatalf("workers=%d: error = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran != [10]bool{} {
			t.Fatalf("sequential canceled grid ran cells: %v", ran)
		}
	}
}

type errAt int

func (e errAt) Error() string { return "cell " + string(rune('0'+int(e))) }

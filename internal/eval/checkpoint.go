package eval

import (
	"fmt"
	"strings"

	"debugdet/internal/core"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/workload"
)

// CkptRow is one point of the checkpoint-interval trade-off (T-CKPT):
// how much recording volume and overhead an interval costs, against how
// much replay work a seek and a segmented replay save. All quantities are
// deterministic (event counts, not wall-clock), so the table is
// reproducible; BenchmarkCheckpointSeek and BenchmarkSegmentedReplay
// measure the corresponding wall-clock on the same setup.
type CkptRow struct {
	// Interval is the checkpoint interval in events (0 = no checkpoints,
	// the baseline row).
	Interval uint64
	// Events is the recorded trace length.
	Events uint64
	// Overhead is the recording's runtime overhead including checkpoint
	// capture; LogBytes and CkptBytes are the recorded volumes.
	Overhead  float64
	LogBytes  int64
	CkptBytes int64
	// Checkpoints is how many snapshots were captured.
	Checkpoints int
	// SeekTarget is the event the seek probe jumps to (¾ of the trace);
	// SeekReplayed is how many events the seek had to re-execute under
	// the scheduler to get there — the seek-latency proxy that full
	// replay pays in full (SeekReplayed == SeekTarget at interval 0).
	SeekTarget   uint64
	SeekReplayed uint64
	// Segments is the segmented replay's segment count and CriticalPath
	// its longest segment in events: the wall-clock lower bound with
	// unlimited workers, as a fraction of Events.
	Segments     int
	CriticalPath uint64
}

// TableCheckpoint measures the checkpoint-interval vs recording-size vs
// seek-latency trade-off (T-CKPT) on the §4 Hypertable scenario under the
// perfect model, one row per interval, rows evaluated across the worker
// pool.
func TableCheckpoint(o Options) ([]CkptRow, error) {
	o = o.withDefaults()
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		return nil, err
	}
	intervals := []int64{0, 512, 256, 128, 64, 32}
	rows := make([]CkptRow, len(intervals))
	err = runGrid(o.Ctx, len(intervals), o.Workers, func(i int) error {
		interval := intervals[i]
		rec, _, _, err := core.RecordOnly(s, record.Perfect, core.Options{
			Ctx:                o.Ctx,
			CheckpointInterval: interval,
		})
		if err != nil {
			return fmt.Errorf("ckpt interval %d: %w", interval, err)
		}
		row := CkptRow{
			Interval:    uint64(interval),
			Events:      rec.EventCount,
			Overhead:    rec.Overhead,
			LogBytes:    rec.LogBytes,
			CkptBytes:   rec.CheckpointBytes,
			Checkpoints: len(rec.Checkpoints),
			SeekTarget:  rec.EventCount * 3 / 4,
		}
		sess, err := replay.Seek(s, rec, row.SeekTarget, replay.Options{})
		if err != nil {
			return fmt.Errorf("ckpt interval %d: seek: %w", interval, err)
		}
		row.SeekReplayed = sess.ReplaySteps
		sess.Close()
		seg, err := replay.Segmented(s, rec, replay.Options{Workers: 1})
		if err != nil {
			return fmt.Errorf("ckpt interval %d: segmented: %w", interval, err)
		}
		if !seg.Ok {
			return fmt.Errorf("ckpt interval %d: segmented replay diverged at %d", interval, seg.Mismatch)
		}
		row.Segments = seg.Segments
		prev := uint64(0)
		for _, cp := range rec.Checkpoints {
			if cp.Seq-prev > row.CriticalPath {
				row.CriticalPath = cp.Seq - prev
			}
			prev = cp.Seq
		}
		if rec.EventCount-prev > row.CriticalPath {
			row.CriticalPath = rec.EventCount - prev
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTableCheckpoint prints T-CKPT.
func RenderTableCheckpoint(rows []CkptRow) string {
	var b strings.Builder
	b.WriteString("Table CKPT — checkpoint interval vs recording size vs seek latency\n")
	b.WriteString("(hyperkv-dataloss, perfect model; seek probe jumps to 3/4 of the trace;\n")
	b.WriteString("replayed = events re-executed under the scheduler to get there; critical\n")
	b.WriteString("path = longest segment a parallel replay must execute sequentially)\n\n")
	fmt.Fprintf(&b, "%8s %7s %9s %6s %10s %10s %12s %5s %9s\n",
		"interval", "events", "overhead", "ckpts", "log bytes", "ckpt bytes", "seek replay", "segs", "critpath")
	for _, r := range rows {
		interval := "off"
		if r.Interval > 0 {
			interval = fmt.Sprintf("%d", r.Interval)
		}
		fmt.Fprintf(&b, "%8s %7d %8.2fx %6d %10d %10d %6d/%-5d %5d %9d\n",
			interval, r.Events, r.Overhead, r.Checkpoints, r.LogBytes, r.CkptBytes,
			r.SeekReplayed, r.SeekTarget, r.Segments, r.CriticalPath)
	}
	return b.String()
}

// Package eval is the experiment harness: it regenerates every figure and
// table of the paper's evaluation (see DESIGN.md §3 for the experiment
// index). Each experiment returns structured rows and has a text renderer
// that prints the series the paper plots.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"debugdet/internal/core"
	"debugdet/internal/dynokv"
	"debugdet/internal/lint/sites"
	"debugdet/internal/plane"
	"debugdet/internal/progen"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/workload"
)

// Options tunes experiment cost. The defaults match EXPERIMENTS.md.
type Options struct {
	// Ctx cancels the experiment between cells and at each in-flight
	// cell's phase boundaries (nil = context.Background()).
	Ctx context.Context
	// ReplayBudget bounds inference attempts per cell (default 200).
	ReplayBudget int
	// Scenarios restricts the corpus (nil = all).
	Scenarios []string
	// Workers is the number of (scenario, model) cells evaluated
	// concurrently (default GOMAXPROCS; 1 opts out). Cells share no
	// state and every cell is deterministic, so results are identical
	// for every worker count. When the grid runs in parallel each
	// cell's inner replay search stays sequential — the grid is the
	// outer parallelism and already saturates the cores.
	Workers int
	// CheckpointInterval captures VM state snapshots into perfect-model
	// recordings every that many events (0 = off, negative rejected by
	// the pipeline), so the overhead tables can report the checkpoint
	// volume and capture cost next to the log volume (T-OVH's checkpoint
	// column; the T-CKPT sweep varies it).
	CheckpointInterval int64
}

func (o Options) withDefaults() Options {
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.ReplayBudget == 0 {
		o.ReplayBudget = 200
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// runGrid evaluates n independent cells with fn(i) across the configured
// worker pool, preserving determinism: fn writes its result into slot i of
// a caller-owned slice, and the returned error is the lowest-index one, as
// a sequential loop would have surfaced. fn must not touch shared state.
// Cancelling ctx stops dispatch; the grid then reports the lowest-index
// cell error if one occurred, otherwise the context error.
func runGrid(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = fn(i)
			}
		}()
	}
	cut := false
dispatch:
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			cut = true
			break
		}
		select {
		case idxCh <- i:
		case <-ctx.Done():
			cut = true
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cut {
		// Some cells never ran; mirror the sequential loop, which would
		// have stopped at its next ctx check.
		return ctx.Err()
	}
	return nil
}

// corpus resolves the scenario list.
func (o Options) corpus() []*scenario.Scenario {
	all := workload.All()
	if len(o.Scenarios) == 0 {
		return all
	}
	want := make(map[string]bool, len(o.Scenarios))
	for _, n := range o.Scenarios {
		want[n] = true
	}
	var out []*scenario.Scenario
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// Cell is one (scenario, model) measurement.
type Cell struct {
	Scenario string
	Model    record.Model
	Overhead float64
	LogBytes int64
	DF       float64
	DE       float64
	DU       float64
	Attempts int
	// CkptCount and CkptBytes describe the checkpoints captured into the
	// recording (zero unless the cell ran with a checkpoint interval —
	// perfect model only).
	CkptCount int
	CkptBytes int64
	// OrigCause and ReplayCause summarize the fidelity evidence.
	OrigCause   string
	ReplayCause string
}

func cellOf(ev *core.Evaluation) Cell {
	return Cell{
		Scenario:    ev.Scenario,
		Model:       ev.Model,
		Overhead:    ev.Overhead,
		LogBytes:    ev.LogBytes,
		DF:          ev.Utility.DF,
		DE:          ev.Utility.DE,
		DU:          ev.Utility.DU,
		Attempts:    ev.Replay.Attempts,
		CkptCount:   len(ev.Recording.Checkpoints),
		CkptBytes:   ev.Recording.CheckpointBytes,
		OrigCause:   strings.Join(ev.Fidelity.OrigCauses, ","),
		ReplayCause: strings.Join(ev.Fidelity.ReplayCauses, ","),
	}
}

// runCell evaluates one (scenario, model) pair with the harness defaults.
// RCSE cells use code-based selection alone, matching §4 ("RCSE based on
// control-plane code selection"); the trigger variants are measured
// separately in the T-TRIG ablation. The inner replay search is pinned
// sequential: the grid is the parallel axis (see Options.Workers).
func runCell(s *scenario.Scenario, model record.Model, o Options) (Cell, error) {
	return runCellAt(s, model, o, 0, nil)
}

// runCellAt is runCell with an explicit production seed and parameter
// overrides (both zero-valued for the standard tables; T-FUZZ pins them
// to a regenerated program). All tables share this one cell constructor
// so they can never drift apart.
func runCellAt(s *scenario.Scenario, model record.Model, o Options, seed int64, params scenario.Params) (Cell, error) {
	ev, err := core.Evaluate(s, model, core.Options{
		Ctx:                o.Ctx,
		Seed:               seed,
		Params:             params,
		ReplayBudget:       o.ReplayBudget,
		Workers:            1,
		CheckpointInterval: o.CheckpointInterval,
	})
	if err != nil {
		return Cell{}, err
	}
	return cellOf(ev), nil
}

// Fig1Row aggregates one determinism model over the corpus: the point the
// paper's Fig. 1 places on the (debugging utility, runtime overhead)
// plane.
type Fig1Row struct {
	Model        record.Model
	MeanOverhead float64
	MeanDF       float64
	MeanDE       float64
	MeanDU       float64
	Cells        []Cell
}

// Fig1 reproduces Figure 1: the relaxation trend. Every model is evaluated
// on every corpus scenario — the cells run across the worker pool — and
// the row means are the plotted coordinates.
func Fig1(o Options) ([]Fig1Row, error) {
	o = o.withDefaults()
	models := record.AllModels()
	corpus := o.corpus()
	cells := make([]Cell, len(models)*len(corpus))
	err := runGrid(o.Ctx, len(cells), o.Workers, func(i int) error {
		model, s := models[i/len(corpus)], corpus[i%len(corpus)]
		c, err := runCell(s, model, o)
		if err != nil {
			return fmt.Errorf("fig1 %s/%s: %w", s.Name, model, err)
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig1Row
	for mi, model := range models {
		row := Fig1Row{Model: model}
		row.Cells = append(row.Cells, cells[mi*len(corpus):(mi+1)*len(corpus)]...)
		n := float64(len(row.Cells))
		for _, c := range row.Cells {
			row.MeanOverhead += c.Overhead / n
			row.MeanDF += c.DF / n
			row.MeanDE += c.DE / n
			row.MeanDU += c.DU / n
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig1 prints the Fig. 1 series.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1 — relaxation trend: runtime overhead vs debugging utility\n")
	b.WriteString("(each point is the mean over the scenario corpus)\n\n")
	fmt.Fprintf(&b, "%-12s %10s %8s %8s %8s\n", "model", "overhead", "DF", "DE", "DU")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.2fx %8.3f %8.3f %8.3f\n",
			r.Model, r.MeanOverhead, r.MeanDF, r.MeanDE, r.MeanDU)
	}
	b.WriteString("\nper-cell detail:\n")
	fmt.Fprintf(&b, "%-12s %-18s %9s %8s %8s %8s %9s\n",
		"model", "scenario", "overhead", "DF", "DE", "DU", "logbytes")
	for _, r := range rows {
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%-12s %-18s %8.2fx %8.3f %8.3f %8.3f %9d\n",
				c.Model, c.Scenario, c.Overhead, c.DF, c.DE, c.DU, c.LogBytes)
		}
	}
	return b.String()
}

// Fig2 reproduces Figure 2: the Hypertable data-loss case study. The paper
// plots value determinism, failure determinism and RCSE; perfect and
// output determinism are included as reference rows.
func Fig2(o Options) ([]Cell, error) {
	o = o.withDefaults()
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		return nil, err
	}
	models := []record.Model{
		record.Value, record.Failure, record.DebugRCSE,
		record.Perfect, record.Output,
	}
	cells := make([]Cell, len(models))
	err = runGrid(o.Ctx, len(models), o.Workers, func(i int) error {
		c, err := runCell(s, models[i], o)
		if err != nil {
			return fmt.Errorf("fig2 %s: %w", models[i], err)
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// RenderFig2 prints the Fig. 2 points.
func RenderFig2(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Figure 2 — Hypertable data-loss bug: recording overhead vs debugging fidelity\n")
	b.WriteString("(first three rows are the models the paper plots)\n\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %-18s %-18s\n",
		"model", "overhead", "fidelity", "log bytes", "orig cause", "replay cause")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-12s %9.2fx %10.3f %12d %-18s %-18s\n",
			c.Model, c.Overhead, c.DF, c.LogBytes, c.OrigCause, c.ReplayCause)
	}
	return b.String()
}

// TableDF reproduces the §4 fidelity numbers (T-DF).
func TableDF(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Table DF — §4 debugging fidelity on the Hypertable bug\n")
	b.WriteString("paper: value = 1, RCSE = 1, failure = 1/3 (three possible root causes)\n\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-12s DF = %.3f\n", c.Model, c.DF)
	}
	return b.String()
}

// TableOverhead reproduces the §4 recording-overhead comparison (T-OVH).
func TableOverhead(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Table OVH — §4 recording overhead on the Hypertable bug\n")
	b.WriteString("paper: value records all inputs and interleavings; RCSE records control-plane\n")
	b.WriteString("data and the thread schedule; failure determinism records only the failure state\n")
	b.WriteString("(checkpoints column is non-zero when the run was recorded with a checkpoint\n")
	b.WriteString("interval — perfect model only; see T-CKPT for the interval trade-off)\n\n")
	for _, c := range cells {
		ckpt := "-"
		if c.CkptCount > 0 {
			ckpt = fmt.Sprintf("%d ckpts / %d bytes", c.CkptCount, c.CkptBytes)
		}
		fmt.Fprintf(&b, "%-12s overhead = %5.2fx  log = %8d bytes  ckpt = %s\n", c.Model, c.Overhead, c.LogBytes, ckpt)
	}
	return b.String()
}

// DynoKVScenarios lists the Dynamo-style replication family measured by
// T-DYNO, derived from the family itself so the table can never drift
// from the catalog.
var DynoKVScenarios = func() []string {
	var names []string
	for _, s := range dynokv.Family() {
		names = append(names, s.Name)
	}
	return names
}()

// TableDynoKV evaluates every determinism model on the replication family
// (T-DYNO): the distributed-bug counterpart of Fig. 2. It extends the §4
// case study from one distributed scenario to a family whose root causes
// are cross-node and timing-dependent — quorum non-overlap, premature
// tombstone GC, abandoned hinted handoff.
func TableDynoKV(o Options) ([]Cell, error) {
	o = o.withDefaults()
	models := record.AllModels()
	cells := make([]Cell, len(DynoKVScenarios)*len(models))
	err := runGrid(o.Ctx, len(cells), o.Workers, func(i int) error {
		name, model := DynoKVScenarios[i/len(models)], models[i%len(models)]
		s, err := workload.ByName(name)
		if err != nil {
			return err
		}
		c, err := runCell(s, model, o)
		if err != nil {
			return fmt.Errorf("dynokv %s/%s: %w", name, model, err)
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// RenderTableDynoKV prints T-DYNO.
func RenderTableDynoKV(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Table DYNO — determinism models on the Dynamo-style replication family\n")
	b.WriteString("(debug determinism must match the best fidelity at near-native overhead)\n\n")
	fmt.Fprintf(&b, "%-18s %-12s %9s %9s %6s %7s %7s %-16s\n",
		"scenario", "model", "overhead", "logbytes", "DF", "DE", "DU", "replay cause")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-18s %-12s %8.2fx %9d %6.3f %7.3f %7.3f %-16s\n",
			c.Scenario, c.Model, c.Overhead, c.LogBytes, c.DF, c.DE, c.DU, c.ReplayCause)
	}
	return b.String()
}

// DiskScenarios lists the durability family measured by T-DISK, derived
// from the family itself so the table can never drift from the catalog.
var DiskScenarios = func() []string {
	var names []string
	for _, s := range dynokv.DurableFamily() {
		names = append(names, s.Name)
	}
	return names
}()

// TableDisk evaluates every determinism model on the durability family
// (T-DISK): crash-restart bugs on the simulated disk — torn-WAL
// corruption, fsync-reordering loss of acknowledged writes, and
// snapshot+log resurrection of a deleted key. The fsync-reordering row is
// the table's point: output and failure determinism satisfy their
// contracts with a device-loss explanation while debug determinism
// reproduces the real reordering.
func TableDisk(o Options) ([]Cell, error) {
	o = o.withDefaults()
	models := record.AllModels()
	cells := make([]Cell, len(DiskScenarios)*len(models))
	err := runGrid(o.Ctx, len(cells), o.Workers, func(i int) error {
		name, model := DiskScenarios[i/len(models)], models[i%len(models)]
		s, err := workload.ByName(name)
		if err != nil {
			return err
		}
		c, err := runCell(s, model, o)
		if err != nil {
			return fmt.Errorf("disk %s/%s: %w", name, model, err)
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// RenderTableDisk prints T-DISK.
func RenderTableDisk(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Table DISK — determinism models on the durability family\n")
	b.WriteString("(crash-restart bugs on the simulated disk: torn WAL, fsync reordering, snapshot resurrection)\n\n")
	fmt.Fprintf(&b, "%-18s %-12s %9s %9s %6s %7s %7s %-16s\n",
		"scenario", "model", "overhead", "logbytes", "DF", "DE", "DU", "replay cause")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-18s %-12s %8.2fx %9d %6.3f %7.3f %7.3f %-16s\n",
			c.Scenario, c.Model, c.Overhead, c.LogBytes, c.DF, c.DE, c.DU, c.ReplayCause)
	}
	return b.String()
}

// FuzzScenarios lists the generated fuzz family measured by T-FUZZ,
// derived from the progen corpus so the table can never drift from the
// catalog.
var FuzzScenarios = func() []string {
	var names []string
	for _, s := range progen.Corpus() {
		names = append(names, s.Name)
	}
	return names
}()

// TableFuzz evaluates every determinism model on the generated fuzz
// family (T-FUZZ). gen selects the generator seed: nil keeps each
// family's pinned failing default; any value — including 0 and the
// negative raw seeds go test -fuzz can report — regenerates all four
// programs from that seed AND runs them at the scheduler seed the fuzz
// targets derive from it (progen.ForSeed), so a fuzzer-found execution
// reproduces exactly through the full evaluation pipeline.
func TableFuzz(o Options, gen *int64) ([]Cell, error) {
	o = o.withDefaults()
	models := record.AllModels()
	var params scenario.Params
	var seed int64
	if gen != nil {
		p := progen.ForSeed(*gen)
		params = p.Params
		seed = p.Seed
	}
	cells := make([]Cell, len(FuzzScenarios)*len(models))
	err := runGrid(o.Ctx, len(cells), o.Workers, func(i int) error {
		name, model := FuzzScenarios[i/len(models)], models[i%len(models)]
		s, err := workload.ByName(name)
		if err != nil {
			return err
		}
		c, err := runCellAt(s, model, o, seed, params)
		if err != nil {
			return fmt.Errorf("fuzz %s/%s: %w", name, model, err)
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// RenderTableFuzz prints T-FUZZ.
func RenderTableFuzz(cells []Cell, gen *int64) string {
	var b strings.Builder
	b.WriteString("Table FUZZ — determinism models on the generated scenario family\n")
	if gen == nil {
		b.WriteString("(pinned failing defaults; rerun any fuzzer seed with -gen)\n\n")
	} else {
		fmt.Fprintf(&b, "(all four templates regenerated from generator seed %d)\n\n", progen.Normalize(*gen))
	}
	fmt.Fprintf(&b, "%-16s %-12s %9s %9s %6s %7s %7s %-16s\n",
		"scenario", "model", "overhead", "logbytes", "DF", "DE", "DU", "replay cause")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-16s %-12s %8.2fx %9d %6.3f %7.3f %7.3f %-16s\n",
			c.Scenario, c.Model, c.Overhead, c.LogBytes, c.DF, c.DE, c.DU, c.ReplayCause)
	}
	return b.String()
}

// PlaneRow is one scenario's classification-accuracy measurement (T-PLANE).
type PlaneRow struct {
	Scenario string
	Accuracy float64
	Verdicts []string
}

// TablePlane evaluates the control-plane classifier against each
// scenario's ground truth, supporting the paper's reliance on [3]'s "high
// accuracy" claim.
func TablePlane(o Options) ([]PlaneRow, error) {
	o = o.withDefaults()
	var subjects []*scenario.Scenario
	for _, s := range o.corpus() {
		if len(s.PlaneTruth) == 0 {
			continue
		}
		subjects = append(subjects, s)
	}
	rows := make([]PlaneRow, len(subjects))
	err := runGrid(o.Ctx, len(subjects), o.Workers, func(i int) error {
		s := subjects[i]
		v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed + 101})
		c := plane.ClassifyTrace(v.Trace, plane.Options{})
		acc, verdicts := plane.Accuracy(c, v.Machine.Sites(), s.PlaneTruth)
		rows[i] = PlaneRow{Scenario: s.Name, Accuracy: acc, Verdicts: verdicts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Scenario < rows[j].Scenario })
	return rows, nil
}

// RenderTablePlane prints T-PLANE.
func RenderTablePlane(rows []PlaneRow) string {
	var b strings.Builder
	b.WriteString("Table PLANE — control/data-plane classification accuracy vs ground truth\n\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s accuracy = %.2f\n", r.Scenario, r.Accuracy)
		for _, v := range r.Verdicts {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	return b.String()
}

// TableDU renders the corpus-wide DU = DF×DE comparison (T-DU) from Fig. 1
// rows, including the shrink-enabled failure-determinism row that shows
// DE > 1.
func TableDU(rows []Fig1Row, shrink Cell) string {
	var b strings.Builder
	b.WriteString("Table DU — §3.2 debugging utility (DU = DF × DE), corpus means\n\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "model", "DF", "DE", "DU")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f\n", r.Model.String(), r.MeanDF, r.MeanDE, r.MeanDU)
	}
	fmt.Fprintf(&b, "\nESD-style shrinking (failure determinism on %s):\n", shrink.Scenario)
	fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f  (DE > 1: synthesized execution shorter than original)\n",
		"failure+shrink", shrink.DF, shrink.DE, shrink.DU)
	return b.String()
}

// ShrinkCell evaluates failure determinism with shrink parameters on the
// overflow scenario, demonstrating DE > 1 (§3.2's execution-synthesis
// observation).
func ShrinkCell(o Options) (Cell, error) {
	o = o.withDefaults()
	s, err := workload.ByName("overflow")
	if err != nil {
		return Cell{}, err
	}
	// A single cell: here the replay search itself is the parallel axis.
	ev, err := core.Evaluate(s, record.Failure, core.Options{
		Ctx:          o.Ctx,
		ReplayBudget: o.ReplayBudget,
		ShrinkParams: []scenario.Params{{"requests": 2}, {"requests": 4}},
		Workers:      o.Workers,
	})
	if err != nil {
		return Cell{}, err
	}
	return cellOf(ev), nil
}

// TrigRow is one RCSE-configuration ablation measurement (T-TRIG).
type TrigRow struct {
	Scenario   string
	Config     string
	Overhead   float64
	LogBytes   int64
	FullEvents uint64
	DF         float64
	RaceFires  int
	InvFires   int
}

// TableTriggers runs the §3.1.3 ablation: each RCSE heuristic alone and
// combined, on the scenarios that exercise it.
func TableTriggers(o Options) ([]TrigRow, error) {
	o = o.withDefaults()
	type cfg struct {
		name string
		opts core.RCSEOptions
	}
	cfgs := []cfg{
		{"code-only", core.RCSEOptions{}},
		{"code+race", core.RCSEOptions{RaceTrigger: true}},
		{"code+invariant", core.RCSEOptions{InvariantTrigger: true}},
		{"race-only", core.RCSEOptions{DisableCodeSelection: true, RaceTrigger: true}},
		{"code+race+inv", core.RCSEOptions{RaceTrigger: true, InvariantTrigger: true}},
	}
	scenarios := []string{"hyperkv-dataloss", "msgdrop", "bank"}
	rows := make([]TrigRow, len(scenarios)*len(cfgs))
	err := runGrid(o.Ctx, len(rows), o.Workers, func(i int) error {
		name, c := scenarios[i/len(cfgs)], cfgs[i%len(cfgs)]
		s, err := workload.ByName(name)
		if err != nil {
			return err
		}
		ev, err := core.Evaluate(s, record.DebugRCSE, core.Options{
			Ctx:          o.Ctx,
			ReplayBudget: o.ReplayBudget,
			RCSE:         c.opts,
			Workers:      1,
		})
		if err != nil {
			return fmt.Errorf("triggers %s/%s: %w", name, c.name, err)
		}
		row := TrigRow{
			Scenario:   name,
			Config:     c.name,
			Overhead:   ev.Overhead,
			LogBytes:   ev.LogBytes,
			FullEvents: uint64(len(ev.Recording.Full)),
			DF:         ev.Utility.DF,
		}
		if ev.RCSESetup != nil {
			if ev.RCSESetup.RaceTrigger != nil {
				row.RaceFires = ev.RCSESetup.RaceTrigger.Fired()
			}
			if ev.RCSESetup.InvariantTrigger != nil {
				row.InvFires = ev.RCSESetup.InvariantTrigger.Fired()
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTableTriggers prints T-TRIG.
func RenderTableTriggers(rows []TrigRow) string {
	var b strings.Builder
	b.WriteString("Table TRIG — §3.1 selector ablation (RCSE configurations)\n\n")
	fmt.Fprintf(&b, "%-18s %-15s %9s %9s %7s %6s %6s %6s\n",
		"scenario", "config", "overhead", "logbytes", "full", "DF", "race", "inv")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-15s %8.2fx %9d %7d %6.2f %6d %6d\n",
			r.Scenario, r.Config, r.Overhead, r.LogBytes, r.FullEvents, r.DF,
			r.RaceFires, r.InvFires)
	}
	return b.String()
}

// StatScenarios lists the deadlock family measured by T-STAT: the corpus
// scenarios whose root cause is a lock-order inversion, which is the bug
// class detlint's static lockorder analysis can implicate ahead of time.
var StatScenarios = []string{"deadlock", "fuzz-deadlock"}

// statSearchSeeds are the inference seeds T-STAT aggregates over: one
// seed would measure a single search trajectory; summing a handful shows
// the expected saving rather than a lucky draw.
var statSearchSeeds = []int64{7, 8, 9, 10, 11, 12, 13, 14}

// statTriageOffset starts the triage scan just past the failing default
// seed, so the triage evidence comes from runs other than the one being
// debugged — the static-seeding claim is that suspects known *before* the
// failure speed up its reconstruction.
const statTriageOffset = 1

// statIterations measures the family at a single lock round per thread.
// At the corpus defaults (several rounds) nearly every schedule deadlocks
// and the search accepts its first candidate — no search to speed up. One
// round makes the inversion window rare, which is the regime the paper
// cares about and the regime where deferring deadlock-blind PCT
// candidates pays.
const statIterations = 1

// statRecordScan bounds the scan for a failing production seed at the
// T-STAT parameterization.
const statRecordScan = 64

// StatRow is one deadlock-family measurement of static search seeding
// (T-STAT): the same failure-determinism replay with and without
// detlint-derived lock-order suspects.
type StatRow struct {
	Scenario string
	// Suspects is the number of suspect lock pairs triage produced;
	// TriageRuns is the executions the triage scan spent.
	Suspects   int
	TriageRuns int
	// BaseAttempts/BaseWorkSteps measure the unseeded search;
	// SeededAttempts/SeededWorkSteps the suspect-seeded one. Each is
	// summed over statSearchSeeds.
	BaseAttempts    int
	SeededAttempts  int
	BaseWorkSteps   uint64
	SeededWorkSteps uint64
	// Identical reports that for every search seed both searches
	// accepted the bit-identical execution (same note, same event
	// stream): the seeding changed how fast the answer was found, not
	// the answer.
	Identical bool
}

// TableStat measures how static lock-order triage seeds the
// failure-determinism search (T-STAT). For each deadlock-family scenario
// it triages default-parameter runs into suspects, records a failing
// production run at the rare-inversion parameterization under the failure
// model, and replays it twice per search seed — without and with the
// suspects — comparing total search work and accepted executions.
func TableStat(o Options) ([]StatRow, error) {
	o = o.withDefaults()
	rows := make([]StatRow, len(StatScenarios))
	err := runGrid(o.Ctx, len(rows), o.Workers, func(i int) error {
		name := StatScenarios[i]
		s, err := workload.ByName(name)
		if err != nil {
			return err
		}
		suspects, triageRuns := sites.TriageSeeds(s, s.DefaultSeed+statTriageOffset, 0, nil)
		if len(suspects) == 0 {
			return fmt.Errorf("stat %s: triage produced no suspects", name)
		}
		// The two family members name their round-count parameter
		// differently; setting both keys configures either.
		params := scenario.Params{"iterations": statIterations, "iters": statIterations}
		failSeed, ok := statFailingSeed(s, params)
		if !ok {
			return fmt.Errorf("stat %s: no failing seed in %d tries", name, statRecordScan)
		}
		rec, _, _, err := core.RecordOnly(s, record.Failure, core.Options{
			Ctx:    o.Ctx,
			Seed:   failSeed,
			Params: params,
		})
		if err != nil {
			return fmt.Errorf("stat %s: %w", name, err)
		}
		row := StatRow{
			Scenario:   name,
			Suspects:   len(suspects),
			TriageRuns: triageRuns,
			Identical:  true,
		}
		for _, seed := range statSearchSeeds {
			ro := replay.Options{
				Ctx:        o.Ctx,
				Budget:     o.ReplayBudget,
				SearchSeed: seed,
				Workers:    1,
			}
			base := replay.Replay(s, rec, ro)
			ro.Suspects = suspects
			seeded := replay.Replay(s, rec, ro)
			if base.Err != nil {
				return base.Err
			}
			if seeded.Err != nil {
				return seeded.Err
			}
			if !base.Ok || !seeded.Ok {
				return fmt.Errorf("stat %s seed %d: search failed (base %q, seeded %q)",
					name, seed, base.Note, seeded.Note)
			}
			row.BaseAttempts += base.Attempts
			row.SeededAttempts += seeded.Attempts
			row.BaseWorkSteps += base.WorkSteps
			row.SeededWorkSteps += seeded.WorkSteps
			row.Identical = row.Identical && sameAccepted(base, seeded)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// statFailingSeed scans for a production seed that exhibits the failure
// at the T-STAT parameterization.
func statFailingSeed(s *scenario.Scenario, p scenario.Params) (int64, bool) {
	for i := int64(0); i < statRecordScan; i++ {
		seed := s.DefaultSeed + i
		v := s.Exec(scenario.ExecOptions{Seed: seed, Params: p})
		if failed, _ := s.CheckFailure(v); failed {
			return seed, true
		}
	}
	return 0, false
}

// sameAccepted reports whether two replays accepted the bit-identical
// execution: same search note (which encodes the accepted candidate's
// original plan index) and same event stream.
func sameAccepted(a, b *replay.Result) bool {
	return a.Ok && b.Ok && a.Note == b.Note &&
		trace.EventsEqual(a.View.Trace, b.View.Trace, false)
}

// RenderTableStat prints T-STAT.
func RenderTableStat(rows []StatRow) string {
	var b strings.Builder
	b.WriteString("Table STAT — static lock-order triage seeding the failure-determinism search\n")
	b.WriteString("(identical = seeded search accepted the bit-identical execution)\n\n")
	fmt.Fprintf(&b, "%-16s %8s %7s %14s %20s %10s\n",
		"scenario", "suspects", "triage", "attempts", "worksteps", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %7d %6d -> %5d %9d -> %8d %10v\n",
			r.Scenario, r.Suspects, r.TriageRuns,
			r.BaseAttempts, r.SeededAttempts,
			r.BaseWorkSteps, r.SeededWorkSteps, r.Identical)
	}
	return b.String()
}

package eval

import "testing"

// TestTableStatPins locks in the static-seeding contract on the deadlock
// family: the seeded search accepts the bit-identical execution as the
// unseeded one while spending strictly less work, for every family member
// and every aggregated search seed. The attempt totals are pinned exactly
// — the whole pipeline is deterministic, so a drift here means candidate
// identity or the partition order changed.
func TestTableStatPins(t *testing.T) {
	rows, err := TableStat(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(StatScenarios) {
		t.Fatalf("rows = %d, want %d", len(rows), len(StatScenarios))
	}
	want := map[string][2]int{
		"deadlock":      {12, 11},
		"fuzz-deadlock": {14, 13},
	}
	for _, r := range rows {
		if r.Suspects < 1 {
			t.Errorf("%s: no suspects", r.Scenario)
		}
		if !r.Identical {
			t.Errorf("%s: seeded search accepted a different execution", r.Scenario)
		}
		if r.SeededAttempts >= r.BaseAttempts {
			t.Errorf("%s: attempts %d -> %d, want a reduction",
				r.Scenario, r.BaseAttempts, r.SeededAttempts)
		}
		if r.SeededWorkSteps >= r.BaseWorkSteps {
			t.Errorf("%s: worksteps %d -> %d, want a reduction",
				r.Scenario, r.BaseWorkSteps, r.SeededWorkSteps)
		}
		if w, ok := want[r.Scenario]; !ok {
			t.Errorf("unexpected scenario %s", r.Scenario)
		} else if r.BaseAttempts != w[0] || r.SeededAttempts != w[1] {
			t.Errorf("%s: attempts %d -> %d, want %d -> %d",
				r.Scenario, r.BaseAttempts, r.SeededAttempts, w[0], w[1])
		}
	}
}

package eval

import (
	"strings"
	"testing"

	"debugdet/internal/record"
)

// small keeps evaluation tests quick; qualitative outcomes are unaffected
// (the search-based cells converge well within this budget on the default
// seeds).
var small = Options{ReplayBudget: 120}

func TestFig2ReproducesPaperShape(t *testing.T) {
	cells, err := Fig2(small)
	if err != nil {
		t.Fatal(err)
	}
	byModel := make(map[record.Model]Cell)
	for _, c := range cells {
		byModel[c.Model] = c
	}
	v, f, r := byModel[record.Value], byModel[record.Failure], byModel[record.DebugRCSE]
	if v.DF != 1 || r.DF != 1 {
		t.Fatalf("value/rcse DF = %v/%v, want 1/1", v.DF, r.DF)
	}
	if f.DF < 0.3 || f.DF > 0.34 {
		t.Fatalf("failure DF = %v, want 1/3", f.DF)
	}
	if !(f.Overhead <= r.Overhead && r.Overhead < v.Overhead) {
		t.Fatalf("overhead ordering: failure=%v rcse=%v value=%v", f.Overhead, r.Overhead, v.Overhead)
	}
	out := RenderFig2(cells)
	for _, want := range []string{"value", "failure", "debug-rcse", "migration-race"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered Fig2 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(TableDF(cells), "DF") {
		t.Fatal("TableDF rendering broken")
	}
	if !strings.Contains(TableOverhead(cells), "overhead") {
		t.Fatal("TableOverhead rendering broken")
	}
}

func TestFig1TrendOnSubset(t *testing.T) {
	// Use a fast subset: the full corpus is exercised by cmd/figures and
	// the benchmarks.
	o := Options{ReplayBudget: 120, Scenarios: []string{"sum", "overflow"}}
	rows, err := Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 models", len(rows))
	}
	byModel := make(map[record.Model]Fig1Row)
	for _, r := range rows {
		byModel[r.Model] = r
	}
	// Overhead must decrease along the relaxation sequence perfect →
	// value → output → failure (Fig. 1's y axis), with RCSE far below
	// value.
	p, v, out, f, rc := byModel[record.Perfect], byModel[record.Value],
		byModel[record.Output], byModel[record.Failure], byModel[record.DebugRCSE]
	if !(p.MeanOverhead >= v.MeanOverhead && v.MeanOverhead > out.MeanOverhead &&
		out.MeanOverhead >= f.MeanOverhead) {
		t.Fatalf("relaxation overhead trend broken: %v %v %v %v",
			p.MeanOverhead, v.MeanOverhead, out.MeanOverhead, f.MeanOverhead)
	}
	if f.MeanOverhead != 1.0 {
		t.Fatalf("failure overhead = %v, want 1.0", f.MeanOverhead)
	}
	// Debug determinism: utility at (or near) the high-fidelity models,
	// cost near the ultra-relaxed ones.
	if rc.MeanDF != 1.0 {
		t.Fatalf("rcse mean DF = %v, want 1.0", rc.MeanDF)
	}
	if rc.MeanOverhead >= v.MeanOverhead {
		t.Fatalf("rcse overhead %v not below value %v", rc.MeanOverhead, v.MeanOverhead)
	}
	// The ultra-relaxed models must show the utility loss the paper
	// warns about on this subset (the sum hazard drives output's DF down).
	if out.MeanDF >= 1.0 {
		t.Fatalf("output mean DF = %v; the 2+2=5 hazard is gone", out.MeanDF)
	}
	if txt := RenderFig1(rows); !strings.Contains(txt, "per-cell detail") {
		t.Fatal("Fig1 rendering broken")
	}
}

func TestTableDynoKVSweetSpot(t *testing.T) {
	cells, err := TableDynoKV(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(DynoKVScenarios)*len(record.AllModels()) {
		t.Fatalf("dynokv table has %d cells", len(cells))
	}
	type pair struct {
		scenario string
		model    record.Model
	}
	byCell := make(map[pair]Cell)
	for _, c := range cells {
		byCell[pair{c.Scenario, c.Model}] = c
	}
	for _, name := range DynoKVScenarios {
		v := byCell[pair{name, record.Value}]
		f := byCell[pair{name, record.Failure}]
		r := byCell[pair{name, record.DebugRCSE}]
		if r.DF != 1 {
			t.Errorf("%s: rcse DF = %v, want 1", name, r.DF)
		}
		if r.DU < f.DU {
			t.Errorf("%s: rcse DU %.3f below failure DU %.3f", name, r.DU, f.DU)
		}
		if !(r.Overhead < v.Overhead && r.LogBytes < v.LogBytes) {
			t.Errorf("%s: rcse cost (%.2fx, %dB) not below value (%.2fx, %dB)",
				name, r.Overhead, r.LogBytes, v.Overhead, v.LogBytes)
		}
	}
	if !strings.Contains(RenderTableDynoKV(cells), "dynokv-staleread") {
		t.Fatal("dynokv table rendering broken")
	}
}

// TestTableDiskMisattribution pins the durability family's story: RCSE
// reproduces every disk bug's true root cause at DF 1 for a fraction of
// value recording's cost, while the relaxed models can satisfy the
// fsync-reordering scenario's failure signature with the wrong
// explanation (generic device loss) — the misattribution the paper warns
// weaker determinism levels invite.
func TestTableDiskMisattribution(t *testing.T) {
	cells, err := TableDisk(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(DiskScenarios)*len(record.AllModels()) {
		t.Fatalf("disk table has %d cells", len(cells))
	}
	type pair struct {
		scenario string
		model    record.Model
	}
	byCell := make(map[pair]Cell)
	for _, c := range cells {
		byCell[pair{c.Scenario, c.Model}] = c
	}
	for _, name := range DiskScenarios {
		v := byCell[pair{name, record.Value}]
		r := byCell[pair{name, record.DebugRCSE}]
		if r.DF != 1 {
			t.Errorf("%s: rcse DF = %v, want 1", name, r.DF)
		}
		if !(r.Overhead < v.Overhead && r.LogBytes < v.LogBytes) {
			t.Errorf("%s: rcse cost (%.2fx, %dB) not below value (%.2fx, %dB)",
				name, r.Overhead, r.LogBytes, v.Overhead, v.LogBytes)
		}
	}
	for _, m := range []record.Model{record.Output, record.Failure} {
		c := byCell[pair{"disk-fsyncloss", m}]
		if c.DF != 0.5 || c.ReplayCause != "device-loss" {
			t.Errorf("disk-fsyncloss/%s: DF=%v cause=%q, want 0.5/device-loss", m, c.DF, c.ReplayCause)
		}
	}
	if byCell[pair{"disk-fsyncloss", record.DebugRCSE}].ReplayCause != "fsync-reordered" {
		t.Error("rcse did not recover the true fsync-reordering cause")
	}
	if !strings.Contains(RenderTableDisk(cells), "disk-tornwal") {
		t.Fatal("disk table rendering broken")
	}
}

func TestTableFuzzConverges(t *testing.T) {
	cells, err := TableFuzz(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(FuzzScenarios)*len(record.AllModels()) {
		t.Fatalf("fuzz table has %d cells", len(cells))
	}
	// On the pinned defaults every model reproduces the generated failure
	// within the harness budget; the wider seed space (where relaxed
	// models start missing) is swept by the progen oracles.
	for _, c := range cells {
		if c.DF != 1 {
			t.Errorf("%s/%s: DF = %v, want 1", c.Scenario, c.Model, c.DF)
		}
		if c.Model == record.Failure && c.LogBytes != 0 {
			t.Errorf("%s/failure recorded %d bytes", c.Scenario, c.LogBytes)
		}
	}
	if !strings.Contains(RenderTableFuzz(cells, nil), "fuzz-atomicity") {
		t.Fatal("fuzz table rendering broken")
	}
	// A non-default generator seed regenerates all four programs; the
	// grid must still evaluate cleanly (fidelity is seed-dependent).
	gen := int64(77)
	regen, err := TableFuzz(Options{ReplayBudget: 40, Workers: 2}, &gen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderTableFuzz(regen, &gen), "generator seed 77") {
		t.Fatal("fuzz table gen annotation missing")
	}
}

func TestTablePlaneHighAccuracy(t *testing.T) {
	rows, err := TablePlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no plane rows")
	}
	for _, r := range rows {
		if r.Accuracy < 0.9 {
			t.Errorf("%s classification accuracy %.2f below 0.9:\n%s",
				r.Scenario, r.Accuracy, strings.Join(r.Verdicts, "\n"))
		}
	}
	if txt := RenderTablePlane(rows); !strings.Contains(txt, "accuracy") {
		t.Fatal("plane rendering broken")
	}
}

func TestShrinkCellExceedsUnitEfficiency(t *testing.T) {
	c, err := ShrinkCell(small)
	if err != nil {
		t.Fatal(err)
	}
	if c.DE <= 1 {
		t.Fatalf("shrink DE = %v, want > 1", c.DE)
	}
	if c.DF != 1 {
		t.Fatalf("shrink DF = %v, want 1", c.DF)
	}
}

func TestTableTriggersAblation(t *testing.T) {
	rows, err := TableTriggers(Options{ReplayBudget: 60})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]TrigRow)
	for _, r := range rows {
		byKey[r.Scenario+"/"+r.Config] = r
	}
	// Code-based selection alone keeps the Hypertable bug's fidelity at 1
	// with the smallest log.
	codeOnly := byKey["hyperkv-dataloss/code-only"]
	if codeOnly.DF != 1 {
		t.Fatalf("code-only DF = %v", codeOnly.DF)
	}
	// Adding the race trigger grows the log (it fires on the injected
	// race) but never hurts fidelity.
	codeRace := byKey["hyperkv-dataloss/code+race"]
	if codeRace.RaceFires == 0 {
		t.Fatal("race trigger never fired on the racy cluster")
	}
	if codeRace.LogBytes <= codeOnly.LogBytes {
		t.Fatal("race-trigger dial-up did not grow the log")
	}
	if codeRace.DF != 1 {
		t.Fatalf("code+race DF = %v", codeRace.DF)
	}
	// The invariant trigger fires on the drifting bank.
	bankInv := byKey["bank/code+invariant"]
	if bankInv.InvFires == 0 {
		t.Fatal("invariant trigger never fired on the drifting bank")
	}
	if txt := RenderTableTriggers(rows); !strings.Contains(txt, "code-only") {
		t.Fatal("trigger table rendering broken")
	}
}

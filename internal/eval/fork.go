package eval

import (
	"fmt"
	"strings"

	"debugdet/internal/core"
	"debugdet/internal/infer"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/workload"
)

// T-FORK measures checkpoint-forked candidate execution (infer.Forker)
// on two search shapes:
//
//   - search: the Fig1-class model reconstructions (output- and
//     failure-determinism replay), whose candidates explore free
//     schedules. These diverge at their first scheduling pick, so forking
//     cannot share work — the rows pin that it never *adds* work.
//   - sweep: the T-TRIG/RCSE-class data-plane sensitivity sweep (§3.1):
//     the recorded schedule and control-plane inputs are forced, and the
//     budget re-executes the run across data seeds to confirm unrecorded
//     data does not steer the outcome. Candidates share the whole forced
//     prefix up to their first differing data draw; on control-only
//     scenarios (bank) every candidate is equivalent and forking prunes
//     the sweep to a single execution.
var forkCases = []struct {
	Scenario string
	Shape    string       // "search" or "sweep"
	Model    record.Model // the recording model for search rows
}{
	{"bank", "sweep", record.Perfect},
	{"overflow", "sweep", record.Perfect},
	{"msgdrop", "sweep", record.Perfect},
	{"msgdrop", "search", record.Output},
	{"overflow", "search", record.Failure},
}

// forkSearchSeeds are the inference seeds T-FORK aggregates over,
// mirroring statSearchSeeds: a handful of trajectories show the expected
// saving rather than a lucky draw.
var forkSearchSeeds = []int64{7, 8, 9, 10}

// forkSweepBudget is the number of data seeds each sensitivity sweep
// covers per search seed.
const forkSweepBudget = 40

// ForkRow is one T-FORK measurement: the same search with and without
// checkpoint-forked candidate execution.
type ForkRow struct {
	Scenario string
	Shape    string
	// BaseAttempts/ForkAttempts count candidate executions per mode,
	// summed over forkSearchSeeds. The fork-equivalence contract demands
	// they be equal: forking changes what each attempt costs, never which
	// attempt is accepted.
	BaseAttempts int
	ForkAttempts int
	// BaseWorkSteps/ForkWorkSteps total the events executed across all
	// attempts — the debugging-efficiency denominator forking shrinks.
	BaseWorkSteps uint64
	ForkWorkSteps uint64
	// Identical reports that for every search seed both modes produced
	// the bit-identical outcome: same acceptance, same note, and (when a
	// candidate was accepted) the same event stream.
	Identical bool
}

// Saving is the work-reduction factor (scratch worksteps over forked).
func (r ForkRow) Saving() float64 {
	if r.ForkWorkSteps == 0 {
		return 0
	}
	return float64(r.BaseWorkSteps) / float64(r.ForkWorkSteps)
}

// TableFork runs T-FORK: each case twice per search seed — from scratch
// and with Fork enabled — comparing outcomes, attempts and total search
// work.
func TableFork(o Options) ([]ForkRow, error) {
	o = o.withDefaults()
	rows := make([]ForkRow, len(forkCases))
	err := runGrid(o.Ctx, len(rows), o.Workers, func(i int) error {
		tc := forkCases[i]
		s, err := workload.ByName(tc.Scenario)
		if err != nil {
			return err
		}
		switch tc.Shape {
		case "sweep":
			rows[i], err = forkSweepRow(s, o)
		default:
			rows[i], err = forkSearchRow(s, tc.Model, o)
		}
		if err != nil {
			return fmt.Errorf("fork %s/%s: %w", tc.Scenario, tc.Shape, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// forkSearchRow measures a Fig1-class model reconstruction.
func forkSearchRow(s *scenario.Scenario, model record.Model, o Options) (ForkRow, error) {
	rec, _, _, err := core.RecordOnly(s, model, core.Options{Ctx: o.Ctx})
	if err != nil {
		return ForkRow{}, err
	}
	row := ForkRow{Scenario: s.Name, Shape: "search", Identical: true}
	for _, seed := range forkSearchSeeds {
		ro := replay.Options{
			Ctx:        o.Ctx,
			Budget:     o.ReplayBudget,
			SearchSeed: seed,
			Workers:    1,
		}
		base := replay.Replay(s, rec, ro)
		ro.Fork = true
		fork := replay.Replay(s, rec, ro)
		if base.Err != nil {
			return row, base.Err
		}
		if fork.Err != nil {
			return row, fork.Err
		}
		if !base.Ok || !fork.Ok {
			return row, fmt.Errorf("seed %d: search failed (base %q, fork %q)", seed, base.Note, fork.Note)
		}
		row.BaseAttempts += base.Attempts
		row.ForkAttempts += fork.Attempts
		row.BaseWorkSteps += base.WorkSteps
		row.ForkWorkSteps += fork.WorkSteps
		row.Identical = row.Identical && sameAccepted(base, fork)
	}
	return row, nil
}

// forkSweepRow measures the RCSE-class data-plane sensitivity sweep: the
// recorded schedule and control-plane inputs are forced, and the sweep
// budget re-executes the run across data seeds. The accept callback
// rejects everything so that every candidate runs — a real sweep inspects
// each view for outcome drift; the work cost is the same.
func forkSweepRow(s *scenario.Scenario, o Options) (ForkRow, error) {
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	forced := make(map[string][]trace.Value, len(s.ControlStreams))
	for _, cs := range s.ControlStreams {
		forced[cs] = v.Result.InputsUsed[cs]
	}
	reject := func(*scenario.RunView) bool { return false }
	row := ForkRow{Scenario: s.Name, Shape: "sweep", Identical: true}
	for _, seed := range forkSearchSeeds {
		io := infer.Options{
			Ctx:          o.Ctx,
			Budget:       forkSweepBudget,
			BaseSeed:     seed,
			Workers:      1,
			Schedule:     v.Trace.Schedule(),
			ForcedInputs: forced,
		}
		base := infer.Search(s, reject, io)
		io.Fork = true
		fork := infer.Search(s, reject, io)
		if base.Err != nil {
			return row, base.Err
		}
		if fork.Err != nil {
			return row, fork.Err
		}
		row.BaseAttempts += base.Attempts
		row.ForkAttempts += fork.Attempts
		row.BaseWorkSteps += base.WorkSteps
		row.ForkWorkSteps += fork.WorkSteps
		row.Identical = row.Identical &&
			base.Ok == fork.Ok && base.Note == fork.Note && base.Attempts == fork.Attempts
	}
	return row, nil
}

// RenderTableFork prints T-FORK.
func RenderTableFork(rows []ForkRow) string {
	var b strings.Builder
	b.WriteString("Table FORK — checkpoint-forked candidate execution vs from-scratch search\n")
	b.WriteString("(identical = forked search produced the bit-identical outcome;\n")
	b.WriteString(" sweep = forced schedule + control inputs across data seeds, §3.1)\n\n")
	fmt.Fprintf(&b, "%-12s %-8s %14s %20s %8s %10s\n",
		"scenario", "shape", "attempts", "worksteps", "saving", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-8s %6d -> %5d %9d -> %8d %7.1fx %10v\n",
			r.Scenario, r.Shape,
			r.BaseAttempts, r.ForkAttempts,
			r.BaseWorkSteps, r.ForkWorkSteps, r.Saving(), r.Identical)
	}
	return b.String()
}

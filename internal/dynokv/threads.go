package dynokv

import (
	"debugdet/internal/simnet"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// --- storage node ---

// writerThread is a storage node's write-path loop (puts, deletes,
// anti-entropy, handoff). A node marked down still drains its inbox but
// discards every message unanswered, which is how the VM models an
// unreachable host: senders observe only silence.
func (cl *Cluster) writerThread(t *vm.Thread, n int) {
	st := &cl.sites
	me := nodeName(n)
	for {
		t.ClearTaint()
		msg := cl.Net.Recv(t, st.nodeRecv, me)
		if t.Load(st.nodeDown, cl.down[n]).AsInt() != 0 {
			continue
		}
		switch msg.Kind {
		case MsgPut, MsgSync:
			cl.handleInstall(t, n, msg)
		case MsgDel:
			cl.handleDelete(t, n, msg)
		case MsgPush:
			cl.handlePush(t, n, msg)
		}
	}
}

// readThread serves the node's read path from its own inbox, sharing the
// store with the writer — reads race in-flight replication exactly as they
// would across separate connections on a real host.
func (cl *Cluster) readThread(t *vm.Thread, n int) {
	st := &cl.sites
	me := readNodeName(n)
	for {
		t.ClearTaint()
		msg := cl.Net.Recv(t, st.nodeRecv, me)
		if t.Load(st.nodeDown, cl.down[n]).AsInt() != 0 {
			continue
		}
		if msg.Kind == MsgGet {
			cl.handleGet(t, n, msg)
		}
	}
}

// effective returns the node's current (version, dead) claim for a key,
// purging the tombstone first if its grace period has lapsed. Expiry is
// measured in anti-entropy epochs — logical time — because branching on
// the virtual clock would diverge under schedule-forcing replay.
func (cl *Cluster) effective(t *vm.Thread, n, key int) (int64, bool) {
	st := &cl.sites
	dead := t.Load(st.nodeLoad, cl.dead[n][key]).AsInt() != 0
	ver := t.Load(st.nodeLoad, cl.ver[n][key]).AsInt()
	if dead && cl.Cfg.GCGraceEpochs > 0 {
		created := t.Load(st.nodeLoad, cl.deadEpoch[n][key]).AsInt()
		now := t.Load(st.nodeLoad, cl.epoch).AsInt()
		if now-created >= cl.Cfg.GCGraceEpochs {
			// The defect: the tombstone ages out while a replica that
			// missed the delete still holds the live value.
			t.Store(st.nodeGC, cl.dead[n][key], trace.Int(0))
			t.Store(st.nodeGC, cl.ver[n][key], trace.Int(0))
			t.Store(st.nodeGC, cl.val[n][key], trace.Int(0))
			return 0, false
		}
	}
	return ver, dead
}

// handleInstall applies a put, read-repair put, handoff put or
// anti-entropy sync: install iff the incoming version beats the node's
// effective claim. Only MsgPut is acknowledged.
func (cl *Cluster) handleInstall(t *vm.Thread, n int, msg simnet.Message) {
	st := &cl.sites
	key := int(msg.Num(0))
	ver := msg.Num(1)
	val := msg.Num(2)
	eff, _ := cl.effective(t, n, key)
	if ver > eff {
		// Oracle: a sync or repair that reinstalls a value older than an
		// acknowledged delete is a resurrection — the grace period above
		// must have purged the tombstone for this branch to be reachable.
		if msg.Kind == MsgSync || msg.Num(4) != 0 {
			if t.Load(st.oracle, cl.deletedVer[key]).AsInt() > ver {
				t.Add(st.oracle, cl.resurrected, 1)
			}
		}
		t.Store(st.nodeStore, cl.ver[n][key], trace.Int(ver))
		t.Store(st.nodeStore, cl.val[n][key], trace.Int(val))
		t.Store(st.nodeStore, cl.dead[n][key], trace.Int(0))
	}
	if msg.Kind == MsgPut {
		cl.Net.Send(t, st.nodeReply, nodeName(n), msg.From, simnet.Message{
			Kind: MsgPutAck, From: nodeName(n),
			Nums: []int64{msg.Num(3), int64(n), int64(key), ver},
		})
	}
}

// handleDelete installs a tombstone, stamping it with the current
// anti-entropy epoch for grace accounting.
func (cl *Cluster) handleDelete(t *vm.Thread, n int, msg simnet.Message) {
	st := &cl.sites
	key := int(msg.Num(0))
	ver := msg.Num(1)
	eff, _ := cl.effective(t, n, key)
	if ver > eff {
		t.Store(st.nodeStore, cl.ver[n][key], trace.Int(ver))
		t.Store(st.nodeStore, cl.val[n][key], trace.Int(0))
		t.Store(st.nodeStore, cl.dead[n][key], trace.Int(1))
		t.Store(st.nodeStore, cl.deadEpoch[n][key], t.Load(st.nodeLoad, cl.epoch))
	}
	cl.Net.Send(t, st.nodeReply, nodeName(n), msg.From, simnet.Message{
		Kind: MsgDelAck, From: nodeName(n),
		Nums: []int64{msg.Num(2), int64(n), int64(key), ver},
	})
}

// handleGet serves a read. In stale mode the node first consults its wipe
// fault switch — a replica that loses its storage and restarts empty is
// the environment's way of producing the same stale-read signature the
// weak quorum produces, which is exactly the ambiguity inference-based
// replay can fall into.
func (cl *Cluster) handleGet(t *vm.Thread, n int, msg simnet.Message) {
	st := &cl.sites
	cfg := cl.Cfg
	key := int(msg.Num(0))
	if cfg.Mode == ModeStaleRead && cfg.WipeDomain > 0 {
		w := t.Input(st.nodeWipeIn, t.Machine().Stream(StreamWipe+nodeName(n))).AsInt()
		if w == cfg.WipeDomain-1 && t.Load(st.nodeWipeClear, cl.wiped[n]).AsInt() == 0 {
			for k := 0; k < cfg.TotalKeys(); k++ {
				t.Store(st.nodeWipeClear, cl.ver[n][k], trace.Int(0))
				t.Store(st.nodeWipeClear, cl.val[n][k], trace.Int(0))
				t.Store(st.nodeWipeClear, cl.dead[n][k], trace.Int(0))
			}
			t.Store(st.nodeWipeClear, cl.wiped[n], trace.Int(1))
		}
	}
	ver, dead := cl.effective(t, n, key)
	deadN := int64(0)
	if dead {
		deadN = 1
	}
	cl.Net.Send(t, st.nodeReply, readNodeName(n), msg.From, simnet.Message{
		Kind: MsgGetR, From: readNodeName(n),
		Nums: []int64{
			msg.Num(1), int64(n), int64(key), ver,
			t.Load(st.nodeLoad, cl.val[n][key]).AsInt(),
			deadN,
			t.Load(st.nodeLoad, cl.wiped[n]).AsInt(),
		},
	})
}

// handlePush runs the sending half of one anti-entropy round: stream every
// live entry to the chosen peer replica. Tombstones are not exchanged —
// with a sane grace period the peer's own tombstone version still wins,
// but once the grace period has purged it the stream happily reinstalls
// deleted data.
func (cl *Cluster) handlePush(t *vm.Thread, n int, msg simnet.Message) {
	st := &cl.sites
	dst := int(msg.Num(0))
	if dst == n || dst < 0 || dst >= cl.Cfg.Nodes {
		return
	}
	for key := 0; key < cl.Cfg.TotalKeys(); key++ {
		ver, dead := cl.effective(t, n, key)
		if ver == 0 || dead {
			continue
		}
		cl.Net.Send(t, st.nodePushScan, nodeName(n), nodeName(dst), simnet.Message{
			Kind: MsgSync, From: nodeName(n),
			Nums: []int64{int64(key), ver, t.Load(st.nodeLoad, cl.val[n][key]).AsInt()},
		})
	}
}

// --- coordinator-side helpers (clients, reader, hint agents) ---

// collect gathers replies of the given kind and request id on a
// coordinator's inbox. Replies from superseded requests are discarded.
// timeout 0 blocks (safe in lossless configurations); otherwise the first
// expiry ends collection with whatever arrived.
func (cl *Cluster) collect(t *vm.Thread, site trace.SiteID, me, kind string, reqid int64, need int, timeout uint64) []simnet.Message {
	var got []simnet.Message
	for len(got) < need {
		var msg simnet.Message
		if timeout == 0 {
			msg = cl.Net.Recv(t, site, me)
		} else {
			m2, ok := cl.Net.RecvTimeout(t, site, me, timeout)
			if !ok {
				break
			}
			msg = m2
		}
		if msg.Kind == kind && msg.Num(0) == reqid {
			got = append(got, msg)
		}
	}
	return got
}

// bestReply resolves a read: the highest version among the replies. A
// tombstone is a versioned claim of absence; the zero reply means the key
// was never seen.
type readResult struct {
	node  int64
	ver   int64
	val   int64
	dead  bool
	wiped bool
}

func bestReply(reps []simnet.Message) readResult {
	var best readResult
	for _, r := range reps {
		if v := r.Num(3); v >= best.ver {
			best = readResult{
				node: r.Num(1), ver: v, val: r.Num(4),
				dead: r.Num(5) != 0, wiped: r.Num(6) != 0,
			}
		}
	}
	return best
}

// sendPuts fans a write out to the key's preference list.
func (cl *Cluster) sendPuts(t *vm.Thread, site trace.SiteID, me string, key int, ver, val, reqid int64) []int {
	prefs := cl.Ring.Preference(key, cl.Cfg.N)
	for _, n := range prefs {
		cl.Net.Send(t, site, me, nodeName(n), simnet.Message{
			Kind: MsgPut, From: me,
			Nums: []int64{int64(key), ver, val, reqid, 0},
		})
	}
	return prefs
}

// readQuorum queries the preference list and waits for R replies.
func (cl *Cluster) readQuorum(t *vm.Thread, sendSite, replySite trace.SiteID, me string, key int, reqid int64, timeout uint64) ([]simnet.Message, readResult) {
	for _, n := range cl.Ring.Preference(key, cl.Cfg.N) {
		cl.Net.Send(t, sendSite, me, readNodeName(n), simnet.Message{
			Kind: MsgGet, From: me, Nums: []int64{int64(key), reqid},
		})
	}
	reps := cl.collect(t, replySite, me, MsgGetR, reqid, cl.Cfg.R, timeout)
	return reps, bestReply(reps)
}

// readRepair pushes the freshest live value back to any stale responder.
func (cl *Cluster) readRepair(t *vm.Thread, me string, key int, best readResult, reps []simnet.Message, reqid int64) {
	if best.ver == 0 || best.dead {
		return
	}
	st := &cl.sites
	for _, r := range reps {
		if r.Num(3) < best.ver {
			cl.Net.Send(t, st.cliRepair, me, nodeName(int(r.Num(1))), simnet.Message{
				Kind: MsgPut, From: me,
				Nums: []int64{int64(key), best.ver, best.val, reqid, 1},
			})
		}
	}
}

// --- client workloads ---

// clientThread dispatches to the mode's workload.
func (cl *Cluster) clientThread(t *vm.Thread, c int) {
	switch cl.Cfg.Mode {
	case ModeStaleRead:
		cl.staleClient(t, c)
	case ModeResurrect:
		cl.resurrectClient(t, c)
	case ModeLostHint:
		cl.lostHintClient(t, c)
	}
	t.Send(cl.sites.done, cl.doneCh, trace.Int(int64(c)))
}

// staleClient runs write-then-read rounds over its keys and checks its own
// writes read back: the canonical read-your-writes probe. With W=1 the ack
// races the fan-out replication, with R=1 the read takes the fastest
// single reply — the two relaxations whose composition lets an
// acknowledged write go missing from its own author's next read.
func (cl *Cluster) staleClient(t *vm.Thread, c int) {
	cfg := cl.Cfg
	st := &cl.sites
	me := clientName(c)
	reqid := int64(c+1) << 20
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < cfg.KeysPerClient; i++ {
			key := c*cfg.KeysPerClient + i
			t.ClearTaint()
			payload := t.Input(st.cliPayload, cl.payloadIn).AsInt()
			ver := t.Add(st.cliSeq, cl.seqgen, 1).AsInt()
			reqid++
			cl.sendPuts(t, st.cliPutSend, me, key, ver, payload, reqid)
			acks := cl.collect(t, st.cliReply, me, MsgPutAck, reqid, cfg.W, 0)
			if len(acks) >= cfg.W {
				if ver > t.Load(st.oracle, cl.latest[key]).AsInt() {
					t.Store(st.oracle, cl.latest[key], trace.Int(ver))
				}
				t.Add(st.cliAck, cl.ackedPuts, 1)
			}

			reqid++
			reps, best := cl.readQuorum(t, st.cliGetSend, st.cliReply, me, key, reqid, 0)
			t.Add(st.oracle, cl.reads, 1)
			latest := t.Load(st.oracle, cl.latest[key]).AsInt()
			if best.ver < latest {
				// Stale read. Attribute: a wiped replica lost the write it
				// had; an un-wiped one simply had not received it yet.
				if best.wiped {
					t.Add(st.oracle, cl.staleWiped, 1)
				} else {
					t.Add(st.oracle, cl.staleUnrep, 1)
				}
			}
			cl.readRepair(t, me, key, best, reps, reqid)
			t.Sleep(st.cliPace, cfg.ClientPace)
		}
	}
}

// resurrectClient writes then deletes each of its keys. The delete is
// acknowledged at W of N; the remaining replica's tombstone install rides
// the network while anti-entropy rounds run concurrently. The rewrite
// input is the environment's alternative explanation: the application
// itself legitimately re-creating the key after the delete.
func (cl *Cluster) resurrectClient(t *vm.Thread, c int) {
	cfg := cl.Cfg
	st := &cl.sites
	me := clientName(c)
	reqid := int64(c+1) << 20
	for i := 0; i < cfg.KeysPerClient; i++ {
		key := c*cfg.KeysPerClient + i
		t.ClearTaint()
		payload := t.Input(st.cliPayload, cl.payloadIn).AsInt()
		ver := t.Add(st.cliSeq, cl.seqgen, 1).AsInt()
		reqid++
		cl.sendPuts(t, st.cliPutSend, me, key, ver, payload, reqid)
		cl.collect(t, st.cliReply, me, MsgPutAck, reqid, cfg.W, 0)
		t.Sleep(st.cliPace, cfg.ClientPace)

		dver := t.Add(st.cliSeq, cl.seqgen, 1).AsInt()
		reqid++
		for _, n := range cl.Ring.Preference(key, cfg.N) {
			cl.Net.Send(t, st.cliDelSend, me, nodeName(n), simnet.Message{
				Kind: MsgDel, From: me, Nums: []int64{int64(key), dver, reqid},
			})
		}
		acks := cl.collect(t, st.cliReply, me, MsgDelAck, reqid, cfg.W, 0)
		if len(acks) >= cfg.W {
			t.Store(st.oracle, cl.deletedVer[key], trace.Int(dver))
		}

		if cfg.RewriteDomain > 0 {
			rw := t.Input(st.cliRewriteIn, t.Machine().Stream(StreamRewrite)).AsInt()
			if rw == cfg.RewriteDomain-1 {
				// Application-level re-create: out of the developer's hands.
				rver := t.Add(st.cliSeq, cl.seqgen, 1).AsInt()
				reqid++
				cl.sendPuts(t, st.cliPutSend, me, key, rver, payload, reqid)
				cl.collect(t, st.cliReply, me, MsgPutAck, reqid, cfg.W, 0)
				t.Add(st.oracle, cl.rewrites, 1)
			}
		}
		t.Sleep(st.cliPace, cfg.ClientPace)
	}
}

// lostHintClient writes each of its keys once under the outage: preference
// nodes that fail to acknowledge within the timeout are covered by hints
// on their fallback agents, and the hint acknowledgements count toward W —
// the sloppy quorum that makes the write "durable" on paper only.
func (cl *Cluster) lostHintClient(t *vm.Thread, c int) {
	cfg := cl.Cfg
	st := &cl.sites
	me := clientName(c)
	reqid := int64(c+1) << 20
	for i := 0; i < cfg.KeysPerClient; i++ {
		key := c*cfg.KeysPerClient + i
		t.ClearTaint()
		payload := t.Input(st.cliPayload, cl.payloadIn).AsInt()
		ver := t.Add(st.cliSeq, cl.seqgen, 1).AsInt()
		reqid++
		prefs := cl.sendPuts(t, st.cliPutSend, me, key, ver, payload, reqid)
		acks := cl.collect(t, st.cliReply, me, MsgPutAck, reqid, cfg.W, cfg.AckTimeout)
		acked := make(map[int]bool, len(acks))
		for _, a := range acks {
			acked[int(a.Num(1))] = true
		}
		total := len(acks)
		if total < cfg.W {
			var missing []int
			for _, n := range prefs {
				if !acked[n] {
					missing = append(missing, n)
				}
			}
			fallbacks := cl.Ring.Fallbacks(key, cfg.N, len(missing))
			if len(fallbacks) > 0 {
				reqid++
				sent := 0
				for j, target := range missing {
					f := fallbacks[j%len(fallbacks)]
					cl.Net.Send(t, st.hintSend, me, hintAgentName(f), simnet.Message{
						Kind: MsgHint, From: me,
						Nums: []int64{int64(key), ver, payload, reqid, int64(target)},
					})
					sent++
				}
				hacks := cl.collect(t, st.cliReply, me, MsgHintAck, reqid, sent, cfg.AckTimeout)
				total += len(hacks)
			}
		}
		if total >= cfg.W {
			t.Store(st.oracle, cl.ackedVer[key], trace.Int(ver))
			t.Add(st.cliAck, cl.ackedPuts, 1)
		}
		t.Sleep(st.cliPace, cfg.ClientPace)
	}
}

// --- controllers and agents ---

// syncThread paces anti-entropy rounds: each round advances the epoch
// (against which tombstone grace is measured) and tells one replica to
// push its live entries to another, both drawn from the plan stream.
func (cl *Cluster) syncThread(t *vm.Thread) {
	cfg := cl.Cfg
	st := &cl.sites
	plan := t.Machine().Stream(StreamSyncPlan)
	for g := 0; g < cfg.Syncs; g++ {
		t.Sleep(st.syncPace, cfg.SyncEvery)
		t.Add(st.syncEpoch, cl.epoch, 1)
		pick := t.Input(st.syncPlan, plan).AsInt()
		src := int(pick) % cfg.Nodes
		dst := (src + 1 + int(pick>>8)%(cfg.Nodes-1)) % cfg.Nodes
		cl.Net.Send(t, st.syncPushSend, "syncer", nodeName(src), simnet.Message{
			Kind: MsgPush, From: "syncer", Nums: []int64{int64(dst)},
		})
	}
	t.Send(st.done, cl.doneCh, trace.Int(-1))
}

// faultThread scripts the outage: the preference list of the victim key
// (drawn from the down plan) becomes unreachable at start and recovers
// after DownTime.
func (cl *Cluster) faultThread(t *vm.Thread) {
	cfg := cl.Cfg
	st := &cl.sites
	pick := t.Input(st.faultPlan, t.Machine().Stream(StreamDownPlan)).AsInt()
	victim := int(pick) % cfg.TotalKeys()
	if victim < 0 {
		victim = -victim
	}
	downSet := cl.Ring.Preference(victim, cfg.N)
	for _, n := range downSet {
		t.Store(st.faultDown, cl.down[n], trace.Int(1))
	}
	t.Sleep(st.faultDown, cfg.DownTime)
	for _, n := range downSet {
		t.Store(st.faultUp, cl.down[n], trace.Int(0))
	}
	t.Send(st.done, cl.doneCh, trace.Int(-2))
}

// pendingHint is a hint parked on an agent, thread-local state.
type pendingHint struct {
	key, ver, val, target int64
}

// hintAgentThread is node n's hint subsystem. Arriving hints are
// acknowledged immediately (that acknowledgement is what the sloppy
// quorum counts). After a quiet period the agent attempts handoff; an
// owner that does not answer is — in the buggy build — assumed dead and
// the hint is abandoned, silently discarding an acknowledged write. The
// fixed build keeps the hint and retries. The hint-wipe input is the
// environment's alternative: the agent host loses its memory outright.
func (cl *Cluster) hintAgentThread(t *vm.Thread, n int) {
	cfg := cl.Cfg
	st := &cl.sites
	me := hintAgentName(n)
	inbox := cl.Net.MustNode(me).Inbox
	wipeStream := t.Machine().Stream(StreamHintWipe + nodeName(n))
	var pending []pendingHint
	reqid := int64(n+1) << 28

	absorb := func(msg simnet.Message) {
		if msg.Kind != MsgHint {
			return
		}
		pending = append(pending, pendingHint{
			key: msg.Num(0), ver: msg.Num(1), val: msg.Num(2), target: msg.Num(4),
		})
		cl.Net.Send(t, st.hintAck, me, msg.From, simnet.Message{
			Kind: MsgHintAck, From: me,
			Nums: []int64{msg.Num(3), int64(n), msg.Num(0), msg.Num(1)},
		})
	}

	for {
		t.ClearTaint()
		v, ok := t.RecvTimeout(st.hintRecv, inbox, cfg.DrainEvery)
		if ok {
			absorb(simnet.MustDecode(v))
			continue
		}
		if len(pending) == 0 {
			continue
		}
		if cfg.HintWipeDomain > 0 {
			w := t.Input(st.hintWipeIn, wipeStream).AsInt()
			if w == cfg.HintWipeDomain-1 {
				t.Add(st.oracle, cl.hintsWiped, int64(len(pending)))
				pending = nil
				continue
			}
		}
		// Hints can arrive while a handoff attempt is waiting for its ack;
		// absorb appends them to pending, so the batch being attempted is
		// split off first and survivors are merged back afterwards.
		batch := pending
		pending = nil
		var keep []pendingHint
		for _, h := range batch {
			reqid++
			cl.Net.Send(t, st.hintDeliver, me, nodeName(int(h.target)), simnet.Message{
				Kind: MsgPut, From: me,
				Nums: []int64{h.key, h.ver, h.val, reqid, 0},
			})
			delivered := false
			for {
				v, ok := t.RecvTimeout(st.hintDeliver, inbox, cfg.HandoffTimeout)
				if !ok {
					break
				}
				msg := simnet.MustDecode(v)
				if msg.Kind == MsgPutAck && msg.Num(0) == reqid {
					delivered = true
					break
				}
				absorb(msg) // a hint that raced the handoff attempt
			}
			switch {
			case delivered:
				t.Add(st.oracle, cl.handoffs, 1)
			case cfg.DurableHints:
				keep = append(keep, h) // the fix: hold the hint, retry next cycle
			default:
				t.Add(st.hintDrop, cl.abandoned, 1)
			}
		}
		pending = append(keep, pending...)
	}
}

// --- verification reads (main thread) ---

// readBackDeleted re-reads every key whose delete was acknowledged and
// counts the ones that have come back to life.
func (cl *Cluster) readBackDeleted(t *vm.Thread) (deleted, live int64) {
	cfg := cl.Cfg
	st := &cl.sites
	reqid := int64(1) << 40
	for key := 0; key < cfg.TotalKeys(); key++ {
		if t.Load(st.rdNote, cl.deletedVer[key]).AsInt() == 0 {
			continue
		}
		deleted++
		reqid++
		_, best := cl.readQuorum(t, st.rdSend, st.rdReply, "reader", key, reqid, 0)
		if best.ver > 0 && !best.dead {
			live++
		}
	}
	return deleted, live
}

// readBackAcked re-reads every key whose write was acknowledged and counts
// the ones whose acknowledged version is visible on no replica the read
// quorum reached: the acked-but-lost writes.
func (cl *Cluster) readBackAcked(t *vm.Thread) (lost int64) {
	cfg := cl.Cfg
	st := &cl.sites
	reqid := int64(2) << 40
	for key := 0; key < cfg.TotalKeys(); key++ {
		want := t.Load(st.rdNote, cl.ackedVer[key]).AsInt()
		if want == 0 {
			continue
		}
		reqid++
		_, best := cl.readQuorum(t, st.rdSend, st.rdReply, "reader", key, reqid, 0)
		if best.ver < want {
			lost++
		}
	}
	return lost
}

// Durable storage substrate: a disk-backed single-node store on the VM's
// simulated disk (vm.NewDisk + the Thread disk operations), serving the
// durability scenario family (disk-tornwal, disk-fsyncloss, disk-snapres).
//
// The store is a WAL-structured key-value node: every put appends one
// framed record (see package simdisk) to the write-ahead log, group-commits
// with fsync, and rebuilds its in-memory table by scanning the log after a
// crash. Snapshot records are written inline into the log (log-structured),
// so recovery is a single ordered replay with last-version-wins semantics.
// The crash itself is part of the workload: the node draws a crash point
// from a control input stream, calls DiskCrash at that point — the disk
// image keeps exactly the fsynced prefix, plus whatever the configured
// fault plane adds or removes — wipes its volatile memory cells, runs
// recovery, verifies the recovered state against the acknowledgment oracle,
// and keeps serving as the rebooted node.
//
// Three injected durability defects live in this one substrate, each gated
// by its scenario's configuration:
//
//   - torn-write corruption: the disk tears the first unsynced record at a
//     byte offset on crash; the buggy recovery path decodes records without
//     verifying the checksum trailer (simdisk.DecodeLoose), turning the
//     torn tail into a zero value under a real version (disk-tornwal; the
//     fix verifies the trailer and truncates the log at the first bad
//     record);
//   - acknowledged-write loss: the device reorders one fsync, leaving the
//     newest record volatile while fsync's caller assumes the whole log is
//     durable and acknowledges the client (disk-fsyncloss; the fix issues a
//     sync barrier — which the device never reorders — before
//     acknowledging);
//   - tombstone resurrection: delete is applied to memory only, with no
//     tombstone record in the log, so crash recovery replays the old puts
//     and the deleted key comes back to life (disk-snapres; the fix logs
//     tombstones durably before acknowledging the delete).
//
// Every environment effect — payloads, the crash point, recovery-time bit
// rot, device-side record loss, application re-writes — enters through
// declared VM input streams, mirroring the cluster scenarios above.
package dynokv

import (
	"fmt"

	"debugdet/internal/simdisk"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// DurableMode selects which durability defect the disk-backed node runs.
type DurableMode uint8

// Durable modes, one per scenario.
const (
	DurTornWAL DurableMode = iota
	DurFsyncLoss
	DurSnapRes
)

// WAL record tags (the first field of every framed record).
const (
	recPut  = 0 // (tag, key, ver, val)
	recTomb = 1 // (tag, key, ver)
	recSnap = 2 // (tag, key, ver, val, dead)
)

// Op kinds on the client→node channel (packed into one integer).
const (
	durOpPut  = 0
	durOpDel  = 1
	durOpStop = 2
)

// Durable input stream names.
const (
	StreamDurPayload = "durable.payload"   // per-put payload content (data)
	StreamCrashPlan  = "durable.crashplan" // where the crash lands (control)
	StreamBitRot     = "fault.bitrot"      // recovery-time record rot (env)
	StreamDevLoss    = "fault.devloss"     // device loses a durable record (env)
	StreamDurRewrite = "durable.rewrite"   // application re-write after delete (env)
)

// Durable oracle cells.
const (
	CellDurAcked      = "oracle.durAcked"
	CellTornInstall   = "oracle.tornInstalls"
	CellBitRot        = "oracle.bitRot"
	CellReorderHeld   = "oracle.reorderHeld"
	CellReorderLost   = "oracle.reorderLost"
	CellDevLost       = "oracle.devLost"
	CellDiskResurrect = "oracle.diskResurrects"
	CellDurRewrites   = "oracle.durRewrites"
	CellDurCorrupt    = "oracle.durCorrupt"
	CellDurAlive      = "oracle.durAlive"
)

// Durable output streams.
const (
	OutDurAcked   = "durable.acked"
	OutDurCorrupt = "durable.corrupt"
	OutDurLost    = "durable.lost"
	OutDurAlive   = "durable.alive"
)

// DurableConfig sizes one disk-backed store instance.
type DurableConfig struct {
	Mode DurableMode

	Clients       int
	KeysPerClient int
	Puts          int // puts per key
	GroupCommit   int // fsync every N appended records
	SnapEvery     int // snapshot every N applied ops (snapres; 0 = never)

	// Fixed applies the scenario's fix predicate: checksum-verified
	// recovery (tornwal), barrier-before-ack (fsyncloss), durable
	// tombstones (snapres).
	Fixed bool

	// Disk fault plane, passed to vm.NewDisk.
	TornBytes int // torn-write truncation point (tornwal)
	ReorderAt int // which fsync ordinal the device holds back (fsyncloss)

	// Fault input domains: a draw equal to domain-1 triggers the fault, so
	// inference synthesizes it with probability 1/domain per draw. 0
	// disables the fault path entirely.
	BitRotDomain  int64 // recovery-time record rot (tornwal)
	DevLossDomain int64 // device-side durable record loss (fsyncloss)
	RewriteDomain int64 // application re-write after delete (snapres)

	ClientPace uint64 // pause between a client's operations
}

// Norm applies defaults.
func (c DurableConfig) Norm() DurableConfig {
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.KeysPerClient == 0 {
		c.KeysPerClient = 2
	}
	if c.Puts == 0 {
		c.Puts = 3
	}
	if c.GroupCommit == 0 {
		c.GroupCommit = 1
	}
	if c.ClientPace == 0 {
		c.ClientPace = 300
	}
	return c
}

// TotalKeys returns the keyspace size; key k belongs to client k/KeysPerClient.
func (c DurableConfig) TotalKeys() int { return c.Clients * c.KeysPerClient }

// baseOps is the production op count: puts, plus one delete per key in
// snapres mode. Environment-injected re-writes add ops beyond this, which
// is why the node loop terminates on client stop markers, not a count.
func (c DurableConfig) baseOps() int {
	ops := c.TotalKeys() * c.Puts
	if c.Mode == DurSnapRes {
		ops += c.TotalKeys()
	}
	return ops
}

// maxVer is the highest version any key can reach: its puts, plus a delete
// and an environment re-write in snapres mode.
func (c DurableConfig) maxVer() int64 { return int64(c.Puts) + 2 }

// durSites holds every instrumentation site, named for the plane classifier.
type durSites struct {
	cliPayload, cliSend, cliAck, cliRewriteIn, cliPace trace.SiteID
	nodeRecv, nodeAck, memStore                        trace.SiteID
	walAppend, walFsync, walBarrier, snapScan          trace.SiteID
	crashPlan, crashPoint, recoverScan, recoverInstall trace.SiteID
	bitRotIn, devLossIn, verify, oracle, spawn         trace.SiteID
	done, report                                       trace.SiteID
}

func registerDurSites(m *vm.Machine) durSites {
	return durSites{
		cliPayload:     m.Site("dur.payload.in"),
		cliSend:        m.Site("dur.op.send"),
		cliAck:         m.Site("dur.op.ack"),
		cliRewriteIn:   m.Site("dur.rewrite.in"),
		cliPace:        m.Site("dur.pace"),
		nodeRecv:       m.Site("dur.node.recv"),
		nodeAck:        m.Site("dur.node.ack"),
		memStore:       m.Site("dur.mem.store"),
		walAppend:      m.Site("dur.wal.append"),
		walFsync:       m.Site("dur.wal.fsync"),
		walBarrier:     m.Site("dur.wal.barrier"),
		snapScan:       m.Site("dur.snap.scan"),
		crashPlan:      m.Site("dur.crash.plan"),
		crashPoint:     m.Site("dur.crash.point"),
		recoverScan:    m.Site("dur.recover.scan"),
		recoverInstall: m.Site("dur.recover.install"),
		bitRotIn:       m.Site("dur.bitrot.in"),
		devLossIn:      m.Site("dur.devloss.in"),
		verify:         m.Site("dur.verify"),
		oracle:         m.Site("oracle.note"),
		spawn:          m.Site("main.spawn"),
		done:           m.Site("main.done"),
		report:         m.Site("report.out"),
	}
}

// DurableStore is one built disk-backed store instance.
type DurableStore struct {
	Cfg DurableConfig

	disk trace.ObjID

	// In-memory table, one cell triple per key: the node's volatile state,
	// wiped on crash and rebuilt by recovery.
	memVer, memVal, memDead []trace.ObjID

	// Acknowledgment oracle: per-key, what the client has been told is
	// durable, plus ground-truth accounting cells. Ordinary VM state — no
	// recorder is ever required to persist it.
	ackedVer, ackedVal []trace.ObjID
	everDel, delVer    []trace.ObjID
	devLostK           []trace.ObjID
	written            [][]trace.ObjID // written[k][v]: value put at version v

	acked, tornInstall, bitRot        trace.ObjID
	reorderHeld, reorderLost, devLost trace.ObjID
	resurrect, rewrites               trace.ObjID
	corrupt, alive                    trace.ObjID

	opCh   trace.ObjID
	ackCh  []trace.ObjID
	doneCh trace.ObjID

	payloadIn, crashIn trace.ObjID

	sites durSites
	m     *vm.Machine
}

// packOp packs one client→node operation into an integer channel value.
func packOp(kind, client, key, val int64) int64 {
	return kind<<40 | client<<32 | key<<16 | val
}

func unpackOp(op int64) (kind, client, key, val int64) {
	return op >> 40, (op >> 32) & 0xff, (op >> 16) & 0xffff, op & 0xffff
}

// BuildDurable constructs the store's objects on a machine. Call before
// vm.Run; registration order is deterministic.
func BuildDurable(m *vm.Machine, cfg DurableConfig) *DurableStore {
	cfg = cfg.Norm()
	s := &DurableStore{Cfg: cfg, m: m, sites: registerDurSites(m)}

	s.disk = m.NewDisk("wal0", vm.DiskFaults{
		TornBytes: cfg.TornBytes,
		ReorderAt: cfg.ReorderAt,
	})

	k := cfg.TotalKeys()
	s.memVer = make([]trace.ObjID, k)
	s.memVal = make([]trace.ObjID, k)
	s.memDead = make([]trace.ObjID, k)
	s.ackedVer = make([]trace.ObjID, k)
	s.ackedVal = make([]trace.ObjID, k)
	s.everDel = make([]trace.ObjID, k)
	s.delVer = make([]trace.ObjID, k)
	s.devLostK = make([]trace.ObjID, k)
	s.written = make([][]trace.ObjID, k)
	for i := 0; i < k; i++ {
		s.memVer[i] = m.NewCell(fmt.Sprintf("mem.ver[%d]", i), trace.Int(0))
		s.memVal[i] = m.NewCell(fmt.Sprintf("mem.val[%d]", i), trace.Int(0))
		s.memDead[i] = m.NewCell(fmt.Sprintf("mem.dead[%d]", i), trace.Int(0))
		s.ackedVer[i] = m.NewCell(fmt.Sprintf("oracle.ackver[%d]", i), trace.Int(0))
		s.ackedVal[i] = m.NewCell(fmt.Sprintf("oracle.ackval[%d]", i), trace.Int(0))
		s.everDel[i] = m.NewCell(fmt.Sprintf("oracle.everdel[%d]", i), trace.Int(0))
		s.delVer[i] = m.NewCell(fmt.Sprintf("oracle.delver[%d]", i), trace.Int(0))
		s.devLostK[i] = m.NewCell(fmt.Sprintf("oracle.devlost[%d]", i), trace.Int(0))
		s.written[i] = make([]trace.ObjID, cfg.maxVer()+1)
		for v := range s.written[i] {
			s.written[i][v] = m.NewCell(fmt.Sprintf("oracle.written[%d][%d]", i, v), trace.Int(0))
		}
	}

	s.acked = m.NewCell(CellDurAcked, trace.Int(0))
	s.tornInstall = m.NewCell(CellTornInstall, trace.Int(0))
	s.bitRot = m.NewCell(CellBitRot, trace.Int(0))
	s.reorderHeld = m.NewCell(CellReorderHeld, trace.Int(0))
	s.reorderLost = m.NewCell(CellReorderLost, trace.Int(0))
	s.devLost = m.NewCell(CellDevLost, trace.Int(0))
	s.resurrect = m.NewCell(CellDiskResurrect, trace.Int(0))
	s.rewrites = m.NewCell(CellDurRewrites, trace.Int(0))
	s.corrupt = m.NewCell(CellDurCorrupt, trace.Int(0))
	s.alive = m.NewCell(CellDurAlive, trace.Int(0))

	s.opCh = m.NewChan("dur.ops", 16)
	s.ackCh = make([]trace.ObjID, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		s.ackCh[c] = m.NewChan(fmt.Sprintf("dur.ack[%d]", c), 1)
	}
	s.doneCh = m.NewChan("dur.done", cfg.Clients+1)

	s.payloadIn = m.DeclareStream(StreamDurPayload, trace.TaintData)
	s.crashIn = m.DeclareStream(StreamCrashPlan, trace.TaintControl)
	m.DeclareStream(StreamBitRot, trace.TaintEnv)
	m.DeclareStream(StreamDevLoss, trace.TaintEnv)
	m.DeclareStream(StreamDurRewrite, trace.TaintEnv)
	return s
}

// Main returns the main-thread body: it starts the node and the clients,
// waits for the workload (which includes the crash, recovery and
// verification), and emits the outputs.
func (s *DurableStore) Main() func(*vm.Thread) {
	return func(t *vm.Thread) {
		st := &s.sites
		t.Spawn(st.spawn, "store0", s.nodeThread)
		for c := 0; c < s.Cfg.Clients; c++ {
			c := c
			t.Spawn(st.spawn, clientName(c), func(t *vm.Thread) { s.durClientThread(t, c) })
		}
		for i := 0; i < s.Cfg.Clients+1; i++ {
			t.Recv(st.done, s.doneCh)
		}
		// The report reads oracle cells at the oracle site and emits plain
		// summaries with a clean register: the report channel is control
		// plane, whatever provenance the counters accumulated.
		emit := func(stream string, cell trace.ObjID) {
			v := t.Load(st.oracle, cell).AsInt()
			t.ClearTaint()
			t.Output(st.report, s.m.Stream(stream), trace.Int(v))
		}
		emit(OutDurAcked, s.acked)
		switch s.Cfg.Mode {
		case DurTornWAL:
			emit(OutDurCorrupt, s.corrupt)
		case DurFsyncLoss:
			lost := t.Load(st.oracle, s.reorderLost).AsInt() + t.Load(st.oracle, s.devLost).AsInt()
			t.ClearTaint()
			t.Output(st.report, s.m.Stream(OutDurLost), trace.Int(lost))
		case DurSnapRes:
			emit(OutDurAlive, s.alive)
		}
	}
}

// durClientThread issues the client's puts (and, in snapres mode, deletes
// plus possible environment-injected re-writes), one acknowledged op at a
// time.
func (s *DurableStore) durClientThread(t *vm.Thread, c int) {
	cfg, st := s.Cfg, &s.sites
	pace := func() {
		if cfg.ClientPace > 0 {
			t.Sleep(st.cliPace, cfg.ClientPace)
		}
	}
	put := func(key int64) {
		val := 1 + t.Input(st.cliPayload, s.payloadIn).AsInt()%1023
		t.Send(st.cliSend, s.opCh, trace.Int(packOp(durOpPut, int64(c), key, val)))
		t.Recv(st.cliAck, s.ackCh[c])
	}
	for k := 0; k < cfg.KeysPerClient; k++ {
		key := int64(c*cfg.KeysPerClient + k)
		for r := 0; r < cfg.Puts; r++ {
			put(key)
			pace()
		}
		if cfg.Mode == DurSnapRes {
			t.Send(st.cliSend, s.opCh, trace.Int(packOp(durOpDel, int64(c), key, 0)))
			t.Recv(st.cliAck, s.ackCh[c])
			if cfg.RewriteDomain > 0 {
				rw := t.Input(st.cliRewriteIn, t.Machine().Stream(StreamDurRewrite)).AsInt()
				if rw == cfg.RewriteDomain-1 {
					// The application re-creates the key it just deleted —
					// a legitimate later write, outside the store's control.
					t.Add(st.oracle, s.rewrites, 1)
					put(key)
				}
			}
			pace()
		}
	}
	t.Send(st.cliSend, s.opCh, trace.Int(packOp(durOpStop, int64(c), 0, 0)))
	t.Send(st.done, s.doneCh, trace.Int(int64(c)))
}

// nodeThread is the disk-backed store: it serves the op stream, appends WAL
// records with group commit, crashes at the planned point, recovers from
// the disk image, verifies the recovered state against the acknowledgment
// oracle, and keeps serving as the rebooted node.
func (s *DurableStore) nodeThread(t *vm.Thread) {
	cfg, st := s.Cfg, &s.sites

	// The crash plan is a control input: where in the op sequence the node
	// goes down. +1 keeps it in [1, baseOps], so the crash always lands
	// inside the production workload.
	plan := t.Input(st.crashPlan, s.crashIn).AsInt()
	crashAfter := 1 + plan%int64(cfg.baseOps())

	ver := make([]int64, cfg.TotalKeys())
	recs := 0 // disk record count (mirrors the log length across crashes)
	var winK, winV, winVal []int64
	applied := int64(0)
	crashed := false
	stops := 0

	fsync := func() {
		w := t.DiskFsync(st.walFsync, s.disk)
		if int(w) < recs {
			// The device held back the newest record: fsync's watermark is
			// short of the append count. The buggy build never looks.
			t.Add(st.oracle, s.reorderHeld, 1)
		}
		if cfg.Fixed && cfg.Mode == DurFsyncLoss {
			t.DiskBarrier(st.walBarrier, s.disk)
		}
	}
	// ackWindow acknowledges every record since the last fsync as durable:
	// the group-commit contract. In fsyncloss mode the acknowledgment can
	// be a lie — the reordered fsync left the record volatile.
	ackWindow := func() {
		for i := range winK {
			t.Store(st.oracle, s.ackedVer[winK[i]], trace.Int(winV[i]))
			t.Store(st.oracle, s.ackedVal[winK[i]], trace.Int(winVal[i]))
			t.Add(st.oracle, s.acked, 1)
		}
		winK, winV, winVal = winK[:0], winV[:0], winVal[:0]
	}

	for stops < cfg.Clients {
		t.ClearTaint()
		op := t.Recv(st.nodeRecv, s.opCh).AsInt()
		kind, client, key, val := unpackOp(op)
		if kind == durOpStop {
			stops++
			continue
		}
		applied++
		switch kind {
		case durOpPut:
			ver[key]++
			v := ver[key]
			t.Store(st.memStore, s.memVer[key], trace.Int(v))
			t.Store(st.memStore, s.memVal[key], trace.Int(val))
			t.Store(st.memStore, s.memDead[key], trace.Int(0))
			t.Store(st.oracle, s.written[key][v], trace.Int(val))
			simdisk.Append(t, st.walAppend, s.disk, recPut, key, v, val)
			recs++
			winK, winV, winVal = append(winK, key), append(winV, v), append(winVal, val)
			if recs%cfg.GroupCommit == 0 {
				fsync()
				ackWindow()
			}
		case durOpDel:
			ver[key]++
			v := ver[key]
			t.Store(st.memStore, s.memVer[key], trace.Int(v))
			t.Store(st.memStore, s.memVal[key], trace.Int(0))
			t.Store(st.memStore, s.memDead[key], trace.Int(1))
			if cfg.Fixed {
				// The fix: the tombstone is durable before the delete is
				// acknowledged. The buggy build applies it to memory only.
				simdisk.Append(t, st.walAppend, s.disk, recTomb, key, v)
				recs++
				fsync()
			}
			t.Store(st.oracle, s.ackedVer[key], trace.Int(v))
			t.Store(st.oracle, s.ackedVal[key], trace.Int(0))
			t.Store(st.oracle, s.everDel[key], trace.Int(1))
			t.Store(st.oracle, s.delVer[key], trace.Int(v))
			t.Add(st.oracle, s.acked, 1)
		}
		if cfg.Mode == DurSnapRes && cfg.SnapEvery > 0 && applied%int64(cfg.SnapEvery) == 0 {
			recs += s.writeSnapshot(t)
			fsync()
		}
		if !crashed && applied == crashAfter {
			recs = s.crashAndRecover(t)
			winK, winV, winVal = winK[:0], winV[:0], winVal[:0]
			crashed = true
		}
		t.Send(st.nodeAck, s.ackCh[client], trace.Int(1))
	}
	if !crashed {
		// Environment re-writes can push the plan past the op count the
		// node actually saw; the crash still happens, at shutdown.
		s.crashAndRecover(t)
	}
	t.Send(st.done, s.doneCh, trace.Int(-1))
}

// writeSnapshot dumps the in-memory table into the log as snapshot records
// and returns how many it appended. Snapshots are honest about memory —
// including the (possibly unlogged) dead flags — so a buggy-build tombstone
// survives a crash only if a snapshot happened to land between the delete
// and the crash.
func (s *DurableStore) writeSnapshot(t *vm.Thread) int {
	st := &s.sites
	n := 0
	for key := 0; key < s.Cfg.TotalKeys(); key++ {
		mv := t.Load(st.snapScan, s.memVer[key]).AsInt()
		if mv == 0 {
			continue
		}
		mval := t.Load(st.snapScan, s.memVal[key]).AsInt()
		mdead := t.Load(st.snapScan, s.memDead[key]).AsInt()
		simdisk.Append(t, st.walAppend, s.disk, recSnap, int64(key), mv, mval, mdead)
		n++
	}
	return n
}

// crashAndRecover is the whole-node crash: the disk keeps its durable image
// (as modified by the fault plane), volatile memory is wiped, the log is
// scanned and replayed, and the recovered state is verified against the
// acknowledgment oracle. Returns the surviving record count so the caller
// can keep its log-length mirror accurate.
func (s *DurableStore) crashAndRecover(t *vm.Thread) int {
	cfg, st := s.Cfg, &s.sites
	// The crash is control-plane provenance: where the node goes down came
	// from the crash-plan input, not from any payload.
	t.ClearTaint()
	t.AddTaint(trace.TaintControl)
	keep := t.DiskCrash(st.crashPoint, s.disk)
	k := cfg.TotalKeys()
	for i := 0; i < k; i++ {
		t.Store(st.crashPoint, s.memVer[i], trace.Int(0))
		t.Store(st.crashPoint, s.memVal[i], trace.Int(0))
		t.Store(st.crashPoint, s.memDead[i], trace.Int(0))
	}

	t.ClearTaint()
	for _, raw := range simdisk.Scan(t, st.recoverScan, s.disk) {
		f, ok := simdisk.Decode(raw)
		if cfg.Mode == DurTornWAL && !cfg.Fixed {
			// The defect: recovery trusts the device. Records are decoded
			// without the checksum trailer, and missing fields default to
			// zero — a torn tail becomes a zero value under a real version.
			if !ok {
				t.Add(st.oracle, s.tornInstall, 1)
			}
			f, ok = simdisk.DecodeLoose(raw), true
		}
		if !ok {
			// Checksum mismatch: the record is torn; the log is valid only
			// up to here. This is the fix the torn-WAL scenario withholds.
			break
		}
		get := func(i int) int64 {
			if i < len(f) {
				return f[i]
			}
			return 0
		}
		tag, key, v := get(0), get(1), get(2)
		if key < 0 || key >= int64(k) {
			continue
		}
		val, dead := get(3), int64(0)
		if tag == recTomb {
			val, dead = 0, 1
		}
		if tag == recSnap {
			dead = get(4)
		}
		if cfg.BitRotDomain > 0 {
			br := t.Input(st.bitRotIn, t.Machine().Stream(StreamBitRot)).AsInt()
			if br == cfg.BitRotDomain-1 {
				// Environment fault: the medium rotted this record; the
				// payload read back is garbage outside the written domain.
				t.Add(st.oracle, s.bitRot, 1)
				val += 1024
			}
		}
		if cfg.DevLossDomain > 0 {
			dl := t.Input(st.devLossIn, t.Machine().Stream(StreamDevLoss)).AsInt()
			if dl == cfg.DevLossDomain-1 {
				// Environment fault: the device lost this durable record.
				t.Add(st.oracle, s.devLost, 1)
				t.Store(st.oracle, s.devLostK[key], trace.Int(1))
				continue
			}
		}
		if v <= t.Load(st.recoverInstall, s.memVer[key]).AsInt() {
			continue
		}
		if dead != 0 {
			val = 0
		}
		if dead == 0 && tag != recPut && tag != recSnap {
			continue
		}
		t.Store(st.recoverInstall, s.memVer[key], trace.Int(v))
		t.Store(st.recoverInstall, s.memVal[key], trace.Int(val))
		t.Store(st.recoverInstall, s.memDead[key], trace.Int(dead))
		if dead == 0 && t.Load(st.recoverInstall, s.everDel[key]).AsInt() != 0 &&
			v <= t.Load(st.recoverInstall, s.delVer[key]).AsInt() {
			// Recovery just reinstalled a value older than an acknowledged
			// delete: the tombstone that should have masked it is missing.
			t.Add(st.oracle, s.resurrect, 1)
		}
	}

	s.verifyRecovered(t)
	return int(keep)
}

// verifyRecovered compares the rebuilt table against the acknowledgment
// oracle: the recovered state must contain every acknowledged write (and
// delete) and nothing that was never written. Runs exactly once, right
// after recovery — before post-crash traffic can mask what the crash did.
func (s *DurableStore) verifyRecovered(t *vm.Thread) {
	cfg, st := s.Cfg, &s.sites
	for key := 0; key < cfg.TotalKeys(); key++ {
		mv := t.Load(st.verify, s.memVer[key]).AsInt()
		mval := t.Load(st.verify, s.memVal[key]).AsInt()
		mdead := t.Load(st.verify, s.memDead[key]).AsInt()
		av := t.Load(st.verify, s.ackedVer[key]).AsInt()
		switch cfg.Mode {
		case DurTornWAL:
			if mv == 0 {
				continue
			}
			if mv > cfg.maxVer() || (mdead == 0 && mval != t.Load(st.verify, s.written[key][mv]).AsInt()) {
				t.Add(st.oracle, s.corrupt, 1)
			}
		case DurFsyncLoss:
			if mv < av {
				// An acknowledged write is missing from the recovered
				// state. Attribute it: device-side loss if the environment
				// dropped this key's record, fsync reordering otherwise.
				if t.Load(st.verify, s.devLostK[key]).AsInt() != 0 {
					continue // already counted in devLost at scan time
				}
				t.Add(st.oracle, s.reorderLost, 1)
			}
		case DurSnapRes:
			if t.Load(st.verify, s.everDel[key]).AsInt() != 0 && mdead == 0 && mv > 0 {
				t.Add(st.oracle, s.alive, 1)
			}
		}
	}
}

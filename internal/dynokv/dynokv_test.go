package dynokv

import (
	"bytes"
	"strings"
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// expectCauses asserts the run failed with the given signature and exactly
// the given root causes.
func expectCauses(t *testing.T, s *scenario.Scenario, v *scenario.RunView, wantSig string, want ...string) {
	t.Helper()
	failed, sig := s.CheckFailure(v)
	if !failed || sig != wantSig {
		t.Fatalf("failed=%v sig=%q, want %q (%s)", failed, sig, wantSig, Stats(v))
	}
	causes := s.PresentCauses(v)
	if len(causes) != len(want) {
		t.Fatalf("causes = %v, want %v (%s)", causes, want, Stats(v))
	}
	for i := range want {
		if causes[i] != want[i] {
			t.Fatalf("causes = %v, want %v", causes, want)
		}
	}
}

func TestStaleReadDefaultSeed(t *testing.T) {
	s := StaleRead()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	expectCauses(t, s, v, "dynokv:staleread", "weak-quorum")
	if v.Result.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v; staleness must be silent", v.Result.Outcome)
	}
}

func TestResurrectDefaultSeed(t *testing.T) {
	s := Resurrect()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	expectCauses(t, s, v, "dynokv:resurrect", "tombstone-gc")
	if v.Machine.CellByName(CellRewrites).AsInt() != 0 {
		t.Fatal("production run must not contain application rewrites")
	}
}

func TestLostHintDefaultSeed(t *testing.T) {
	s := LostHint()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	expectCauses(t, s, v, "dynokv:lostwrite", "hint-abandoned")
	if v.Machine.CellByName(CellAckedPuts).AsInt() == 0 {
		t.Fatal("no write was ever acknowledged; the loss must be of acked writes")
	}
}

func TestFixedVariantsNeverFail(t *testing.T) {
	for _, f := range FixedVariants() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				v := f.Exec(scenario.ExecOptions{Seed: seed})
				if v.Result.Outcome != vm.OutcomeOK {
					t.Fatalf("seed %d: outcome %v (%v)", seed, v.Result.Outcome, v.Result.Terminal)
				}
				if failed, sig := f.CheckFailure(v); failed {
					t.Fatalf("seed %d: fixed build fails with %q (%s)", seed, sig, Stats(v))
				}
			}
		})
	}
}

// TestClusterRunsAreDeterministic: same seed ⇒ identical event trace and
// identical serialized bytes (the trace-hash property record/replay needs).
func TestClusterRunsAreDeterministic(t *testing.T) {
	for _, s := range Family() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
			b := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
			if !trace.EventsEqual(a.Trace, b.Trace, false) {
				t.Fatal("identical cluster runs produced different traces")
			}
			var ba, bb bytes.Buffer
			if _, err := trace.Encode(&ba, a.Trace); err != nil {
				t.Fatal(err)
			}
			if _, err := trace.Encode(&bb, b.Trace); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
				t.Fatal("trace serializations differ between identical runs")
			}
		})
	}
}

// The injection tests below force each scenario's environment fault on a
// seed where the code defect does not manifest, showing the alternative
// root cause produces the same failure signature — the ambiguity
// inference-based replay can fall into.

func TestWipeInjectionProducesWipeCause(t *testing.T) {
	s := StaleRead()
	prod := productionInputs(0, s.DefaultParams)
	v := s.Exec(scenario.ExecOptions{
		Seed: 0, // verified non-manifesting for the quorum bug
		Inputs: vm.InputSourceFunc(func(stream string, index int) trace.Value {
			if strings.HasPrefix(stream, StreamWipe) {
				return trace.Int(wipeDomain - 1)
			}
			return prod.Next(stream, index)
		}),
	})
	expectCauses(t, s, v, "dynokv:staleread", "replica-wipe")
}

func TestRewriteInjectionProducesRewriteCause(t *testing.T) {
	s := Resurrect()
	// Seed 3: the injected rewrites alone explain the failure (the extra
	// rewrite traffic perturbs timing, so on many seeds the GC bug fires
	// too; this seed keeps the causes separable).
	prod := productionInputs(3, s.DefaultParams)
	v := s.Exec(scenario.ExecOptions{
		Seed: 3,
		Inputs: vm.InputSourceFunc(func(stream string, index int) trace.Value {
			if stream == StreamRewrite {
				return trace.Int(rewriteDomain - 1)
			}
			return prod.Next(stream, index)
		}),
	})
	expectCauses(t, s, v, "dynokv:resurrect", "app-rewrite")
}

func TestHintWipeInjectionProducesWipeCause(t *testing.T) {
	s := LostHint()
	prod := productionInputs(0, s.DefaultParams)
	v := s.Exec(scenario.ExecOptions{
		Seed: 0,
		Inputs: vm.InputSourceFunc(func(stream string, index int) trace.Value {
			if strings.HasPrefix(stream, StreamHintWipe) {
				return trace.Int(hintWipeDomain - 1)
			}
			return prod.Next(stream, index)
		}),
	})
	expectCauses(t, s, v, "dynokv:lostwrite", "hint-agent-wipe")
}

func TestLostHintAcksAreSloppy(t *testing.T) {
	// Every acknowledged write in the buggy default run must have reached
	// W somehow — real replicas or hints — and the run's losses must be a
	// subset of the acked writes.
	s := LostHint()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	acked, _ := lastInt(v.Result.Outputs[OutAcked])
	lost, _ := lastInt(v.Result.Outputs[OutLost])
	if acked == 0 || lost == 0 || lost > acked {
		t.Fatalf("acked=%d lost=%d: losses must be of acknowledged writes", acked, lost)
	}
}

func TestScalesWithParameters(t *testing.T) {
	s := StaleRead()
	small := s.Exec(scenario.ExecOptions{Seed: 3, Params: scenario.Params{"clients": 2, "keys": 1, "rounds": 1}})
	big := s.Exec(scenario.ExecOptions{Seed: 3, Params: scenario.Params{"clients": 4, "keys": 3, "rounds": 4}})
	if big.Result.Steps <= small.Result.Steps {
		t.Fatalf("workload does not scale: %d vs %d steps", big.Result.Steps, small.Result.Steps)
	}
}

func TestSearchDomainsCoverFaults(t *testing.T) {
	// The declared input domains must make every fault value reachable for
	// inference (that is how the wrong-root-cause hazard arises) while the
	// production inputs keep the faults off.
	for _, s := range Family() {
		prod := s.Inputs(s.DefaultSeed, s.DefaultParams)
		src := s.SearchSource(11, s.DefaultParams)
		for _, d := range s.InputDomains {
			sawMax := false
			for i := 0; i < 400 && !sawMax; i++ {
				v := src.Next(d.Stream, i).AsInt()
				if v < d.Min || v > d.Max {
					t.Fatalf("%s: domain violated for %s: %d", s.Name, d.Stream, v)
				}
				sawMax = v == d.Max
			}
			faulty := strings.HasPrefix(d.Stream, StreamWipe) ||
				strings.HasPrefix(d.Stream, StreamHintWipe) || d.Stream == StreamRewrite
			if faulty {
				if !sawMax {
					t.Errorf("%s: search never samples the fault value of %s", s.Name, d.Stream)
				}
				for i := 0; i < 50; i++ {
					if prod.Next(d.Stream, i).AsInt() != 0 {
						t.Fatalf("%s: production inputs trigger fault stream %s", s.Name, d.Stream)
					}
				}
			}
		}
	}
}

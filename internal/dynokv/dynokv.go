// Package dynokv implements a Dynamo-style quorum-replicated key-value
// cluster on the deterministic VM and virtual network: the substrate for
// the distributed-consistency scenario family (dynokv-staleread,
// dynokv-resurrect, dynokv-losthint).
//
// The cluster is a consistent-hashing ring with virtual nodes. Every key
// has a preference list of N replica holders; coordination is
// client-driven: the writing client sends the update to all N replicas and
// acknowledges after W replies, the reading client queries the replicas
// and returns the highest version among the first R replies, repairing
// stale responders (read repair). Deletes are tombstone writes. When a
// replica is unreachable, writers fall back to a sloppy quorum: the update
// is parked as a hint on the next healthy node's hint agent, which hands
// it off to the intended owner after recovery (hinted handoff). A
// background anti-entropy process pushes live entries between replicas.
//
// Three injected defect families live in this one substrate, each gated by
// its scenario's configuration:
//
//   - stale reads: with R+W <= N the read and write quorums need not
//     intersect, so an acknowledged write can be invisible to the very
//     client that made it while replication is still in flight
//     (dynokv-staleread; the fix raises both quorums to majorities);
//   - deleted-data resurrection: tombstones are garbage-collected after
//     too short a grace period, so anti-entropy or read repair from a
//     replica that missed the delete reinstalls the dead value
//     (dynokv-resurrect; the fix retains tombstones);
//   - lost acknowledged writes: hints are held only in the agent's
//     memory and abandoned when the first handoff attempt finds the owner
//     still down, so a write acknowledged entirely through hints can
//     vanish (dynokv-losthint; the fix retries handoff until delivery).
//
// Every environment effect — payload contents, anti-entropy pairing, the
// outage plan, replica wipes, hint-storage wipes, application re-writes —
// enters through declared VM input streams, so the recorders persist
// exactly what their determinism model claims and inference-based replay
// searches the same space the paper's §2 warns about.
package dynokv

import (
	"fmt"

	"debugdet/internal/simnet"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Message kinds on the wire.
const (
	MsgPut     = "put"     // coordinator → node: Nums[key, ver, val, reqid, repair]
	MsgPutAck  = "putack"  // node → coordinator: Nums[reqid, node, key, ver]
	MsgGet     = "get"     // coordinator → node: Nums[key, reqid]
	MsgGetR    = "getr"    // node → coordinator: Nums[reqid, node, key, ver, val, dead, wiped]
	MsgDel     = "del"     // coordinator → node: Nums[key, ver, reqid]
	MsgDelAck  = "delack"  // node → coordinator: Nums[reqid, node, key, ver]
	MsgHint    = "hint"    // coordinator → hint agent: Nums[key, ver, val, reqid, target]
	MsgHintAck = "hintack" // hint agent → coordinator: Nums[reqid, node, key, ver]
	MsgPush    = "push"    // syncer → node: Nums[dst] (anti-entropy: push live keys to dst)
	MsgSync    = "sync"    // node → node: Nums[key, ver, val]
)

// Input stream names. The payload stream is the only data-plane input;
// everything else steers control flow and is part of every scenario's
// ControlStreams.
const (
	StreamPayload  = "client.payload"  // per-write payload content (data plane)
	StreamSyncPlan = "sync.plan"       // anti-entropy pairing (control)
	StreamDownPlan = "fault.downplan"  // which preference list the outage takes down (control)
	StreamRewrite  = "client.rewrite"  // application re-write after delete (env)
	StreamWipe     = "fault.wipe."     // replica storage wipe; full name StreamWipe + node name
	StreamHintWipe = "fault.hintwipe." // hint-agent storage wipe; full name StreamHintWipe + node name
)

// Oracle cells: ground-truth accounting the evaluation reads after a run.
// They are part of the program (their updates are ordinary VM operations)
// but no recorder is ever required to persist them.
const (
	CellStaleUnrep  = "oracle.staleUnreplicated"
	CellStaleWiped  = "oracle.staleWiped"
	CellReads       = "oracle.reads"
	CellResurrected = "oracle.resurrectInstalls"
	CellRewrites    = "oracle.rewrites"
	CellAckedPuts   = "oracle.ackedPuts"
	CellAbandoned   = "oracle.hintsAbandoned"
	CellHintsWiped  = "oracle.hintsWiped"
	CellHandoffs    = "oracle.handoffs"
)

// Output streams: the observable behaviour a bug report quotes.
const (
	OutReads       = "reads.total"
	OutStale       = "reads.stale"
	OutDeleted     = "deletes.total"
	OutResurrected = "deletes.resurrected"
	OutAcked       = "writes.acked"
	OutLost        = "writes.lost"
)

// Mode selects which workload phases the cluster runs.
type Mode uint8

// Modes, one per scenario.
const (
	ModeStaleRead Mode = iota
	ModeResurrect
	ModeLostHint
)

// Config sizes one cluster instance.
type Config struct {
	Mode   Mode
	Nodes  int // physical storage nodes
	Vnodes int // ring tokens per physical node
	N      int // replication factor
	R      int // read quorum
	W      int // write quorum

	Clients       int
	KeysPerClient int
	Rounds        int // write/read rounds per key (stale mode)
	Syncs         int // anti-entropy rounds (resurrect mode)

	// GCGraceEpochs is the tombstone lifetime measured in anti-entropy
	// epochs: a tombstone created at epoch e is purged once the epoch
	// counter reaches e + GCGraceEpochs. 0 means tombstones are never
	// purged (the resurrect fix). Epochs are logical time — wall-clock
	// expiry would diverge under schedule-forcing replay, whose virtual
	// clock legitimately differs from the original's.
	GCGraceEpochs int64
	// DurableHints makes hint agents retry handoff until the owner
	// accepts (the losthint fix); false abandons a hint on the first
	// failed attempt.
	DurableHints bool

	// Timing knobs (virtual cycles).
	AckTimeout uint64 // quorum collection timeout (0 = block)
	// HandoffTimeout is how long a hint agent waits for the owner to
	// acknowledge a handoff attempt. It is longer than AckTimeout because
	// a freshly recovered owner drains a backlog; a delivered-but-slowly-
	// acknowledged handoff must not be mistaken for a dead owner.
	HandoffTimeout uint64
	DownTime       uint64 // outage duration (losthint)
	DrainEvery     uint64 // hint agent quiet period between handoff attempts
	ClientPace     uint64 // pause between a client's operations
	SyncEvery      uint64 // pause between anti-entropy rounds
	Settle         uint64 // main-thread pause before the verification reads

	// WriteJitter, when nonzero, overrides the latency jitter of the
	// client→node write links only: the replication and delete fan-out
	// spreads out while acks, reads and anti-entropy stay prompt. The
	// resurrect scenario uses it to let one replica's delete delivery
	// straddle an anti-entropy round.
	WriteJitter uint64

	// Fault input domains: an input equal to domain-1 triggers the fault,
	// so inference synthesizes it with probability 1/domain per draw.
	// 0 disables the fault path entirely.
	WipeDomain     int64 // replica storage wipe (stale mode)
	RewriteDomain  int64 // application re-write after delete (resurrect mode)
	HintWipeDomain int64 // hint-agent storage wipe (losthint mode)
}

// Norm applies defaults and clamps the quorum arithmetic into range.
func (c Config) Norm() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Vnodes == 0 {
		c.Vnodes = 5
	}
	if c.N == 0 {
		c.N = c.Nodes
	}
	if c.N > c.Nodes {
		c.N = c.Nodes
	}
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.KeysPerClient == 0 {
		c.KeysPerClient = 2
	}
	if c.R < 1 {
		c.R = 1
	}
	if c.R > c.N {
		c.R = c.N
	}
	if c.W < 1 {
		c.W = 1
	}
	if c.W > c.N {
		c.W = c.N
	}
	if c.ClientPace == 0 {
		c.ClientPace = 400
	}
	return c
}

// TotalKeys returns the keyspace size; key k belongs to client k/KeysPerClient.
func (c Config) TotalKeys() int { return c.Clients * c.KeysPerClient }

// Cluster is one built instance: all VM object handles plus topology.
type Cluster struct {
	Cfg  Config
	Net  *simnet.Network
	Ring *Ring

	// Per-node per-key store: version, value, tombstone flag, and the
	// anti-entropy epoch at which the tombstone was created.
	ver       [][]trace.ObjID
	val       [][]trace.ObjID
	dead      [][]trace.ObjID
	deadEpoch [][]trace.ObjID

	wiped []trace.ObjID // per-node "storage was wiped" flag
	down  []trace.ObjID // per-node "unreachable" flag

	seqgen trace.ObjID // global version sequencer
	epoch  trace.ObjID // anti-entropy epoch counter

	// Oracles.
	latest     []trace.ObjID // latest acked write version per key
	deletedVer []trace.ObjID // latest acked delete version per key
	ackedVer   []trace.ObjID // version the client considers durable per key

	staleUnrep  trace.ObjID
	staleWiped  trace.ObjID
	reads       trace.ObjID
	resurrected trace.ObjID
	rewrites    trace.ObjID
	ackedPuts   trace.ObjID
	abandoned   trace.ObjID
	hintsWiped  trace.ObjID
	handoffs    trace.ObjID

	doneCh trace.ObjID

	payloadIn trace.ObjID

	sites sites
	m     *vm.Machine
}

// sites holds every instrumentation site, named for the plane classifier.
type sites struct {
	cliPayload, cliSeq, cliPutSend, cliGetSend, cliDelSend trace.SiteID
	cliReply, cliAck, cliRepair, cliRewriteIn, cliPace     trace.SiteID
	nodeRecv, nodeDown, nodeLoad, nodeStore, nodeReply     trace.SiteID
	nodeGC, nodeWipeIn, nodeWipeClear                      trace.SiteID
	syncPlan, syncPace, syncEpoch, syncPushSend            trace.SiteID
	nodePushScan, nodeSyncInstall                          trace.SiteID
	faultPlan, faultDown, faultUp                          trace.SiteID
	hintSend, hintRecv, hintAck, hintWipeIn                trace.SiteID
	hintDeliver, hintDrop, hintPace                        trace.SiteID
	rdSend, rdReply, rdNote                                trace.SiteID
	oracle, spawn, done, report                            trace.SiteID
}

func registerSites(m *vm.Machine) sites {
	return sites{
		cliPayload:      m.Site("client.payload.in"),
		cliSeq:          m.Site("client.seq"),
		cliPutSend:      m.Site("client.put.send"),
		cliGetSend:      m.Site("client.get.send"),
		cliDelSend:      m.Site("client.del.send"),
		cliReply:        m.Site("client.reply"),
		cliAck:          m.Site("client.ackcount"),
		cliRepair:       m.Site("client.repair"),
		cliRewriteIn:    m.Site("client.rewrite.in"),
		cliPace:         m.Site("client.pace"),
		nodeRecv:        m.Site("node.recv"),
		nodeDown:        m.Site("node.down"),
		nodeLoad:        m.Site("node.load"),
		nodeStore:       m.Site("node.store"),
		nodeReply:       m.Site("node.reply"),
		nodeGC:          m.Site("node.gc"),
		nodeWipeIn:      m.Site("node.wipe.in"),
		nodeWipeClear:   m.Site("node.wipe.clear"),
		syncPlan:        m.Site("sync.plan"),
		syncPace:        m.Site("sync.pace"),
		syncEpoch:       m.Site("sync.epoch"),
		syncPushSend:    m.Site("sync.push.send"),
		nodePushScan:    m.Site("node.push.scan"),
		nodeSyncInstall: m.Site("node.sync.install"),
		faultPlan:       m.Site("fault.plan"),
		faultDown:       m.Site("fault.down"),
		faultUp:         m.Site("fault.up"),
		hintSend:        m.Site("hint.send"),
		hintRecv:        m.Site("hint.recv"),
		hintAck:         m.Site("hint.ack"),
		hintWipeIn:      m.Site("hint.wipe.in"),
		hintDeliver:     m.Site("hint.deliver"),
		hintDrop:        m.Site("hint.drop"),
		hintPace:        m.Site("hint.pace"),
		rdSend:          m.Site("read.send"),
		rdReply:         m.Site("read.reply"),
		rdNote:          m.Site("read.note"),
		oracle:          m.Site("oracle.note"),
		spawn:           m.Site("main.spawn"),
		done:            m.Site("main.done"),
		report:          m.Site("report.out"),
	}
}

// nodeName is a storage node's write-path network name (put, delete,
// anti-entropy, handoff).
func nodeName(n int) string { return fmt.Sprintf("n%d", n) }

// readNodeName is the node's read-path inbox. Reads travel their own links
// so a get genuinely races the write fan-out instead of queuing behind it
// on one connection — the race the weak-quorum bug needs.
func readNodeName(n int) string { return fmt.Sprintf("n%d.read", n) }

// hintAgentName is the hint subsystem of node n (its own inbox, so hints
// and handoff acks never contend with the storage server's).
func hintAgentName(n int) string { return fmt.Sprintf("h%d", n) }

func clientName(c int) string { return fmt.Sprintf("c%d", c) }

// Build constructs the cluster's objects and topology on a machine. Call
// before vm.Run; registration order is deterministic.
func Build(m *vm.Machine, cfg Config) *Cluster {
	cfg = cfg.Norm()
	cl := &Cluster{Cfg: cfg, m: m, sites: registerSites(m), Ring: NewRing(cfg.Nodes, cfg.Vnodes)}

	cl.Net = simnet.New(m, simnet.Options{
		DefaultLink:   simnet.LinkConfig{LatencyBase: 20, LatencyJitter: cfg.jitter()},
		InboxCapacity: 128,
	})
	for n := 0; n < cfg.Nodes; n++ {
		cl.Net.AddNode(nodeName(n))
		cl.Net.AddNode(readNodeName(n))
	}
	if cfg.Mode == ModeLostHint {
		for n := 0; n < cfg.Nodes; n++ {
			cl.Net.AddNode(hintAgentName(n))
		}
	}
	for c := 0; c < cfg.Clients; c++ {
		cl.Net.AddNode(clientName(c))
	}
	if cfg.Mode == ModeResurrect {
		cl.Net.AddNode("syncer")
	}
	cl.Net.AddNode("reader")
	cl.Net.Build()
	if cfg.WriteJitter > 0 {
		for c := 0; c < cfg.Clients; c++ {
			for n := 0; n < cfg.Nodes; n++ {
				cl.Net.SetLink(clientName(c), nodeName(n), simnet.LinkConfig{
					LatencyBase: 20, LatencyJitter: cfg.WriteJitter,
				})
			}
		}
	}

	k := cfg.TotalKeys()
	cl.ver = make([][]trace.ObjID, cfg.Nodes)
	cl.val = make([][]trace.ObjID, cfg.Nodes)
	cl.dead = make([][]trace.ObjID, cfg.Nodes)
	cl.deadEpoch = make([][]trace.ObjID, cfg.Nodes)
	cl.wiped = make([]trace.ObjID, cfg.Nodes)
	cl.down = make([]trace.ObjID, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		cl.ver[n] = make([]trace.ObjID, k)
		cl.val[n] = make([]trace.ObjID, k)
		cl.dead[n] = make([]trace.ObjID, k)
		cl.deadEpoch[n] = make([]trace.ObjID, k)
		for i := 0; i < k; i++ {
			cl.ver[n][i] = m.NewCell(fmt.Sprintf("ver[%s][%d]", nodeName(n), i), trace.Int(0))
			cl.val[n][i] = m.NewCell(fmt.Sprintf("val[%s][%d]", nodeName(n), i), trace.Int(0))
			cl.dead[n][i] = m.NewCell(fmt.Sprintf("dead[%s][%d]", nodeName(n), i), trace.Int(0))
			cl.deadEpoch[n][i] = m.NewCell(fmt.Sprintf("deadepoch[%s][%d]", nodeName(n), i), trace.Int(0))
		}
		cl.wiped[n] = m.NewCell("wiped:"+nodeName(n), trace.Int(0))
		cl.down[n] = m.NewCell("down:"+nodeName(n), trace.Int(0))
	}

	cl.seqgen = m.NewCell("seqgen", trace.Int(0))
	cl.epoch = m.NewCell("sync.epochcell", trace.Int(0))

	cl.latest = make([]trace.ObjID, k)
	cl.deletedVer = make([]trace.ObjID, k)
	cl.ackedVer = make([]trace.ObjID, k)
	for i := 0; i < k; i++ {
		cl.latest[i] = m.NewCell(fmt.Sprintf("oracle.latest[%d]", i), trace.Int(0))
		cl.deletedVer[i] = m.NewCell(fmt.Sprintf("oracle.deletedver[%d]", i), trace.Int(0))
		cl.ackedVer[i] = m.NewCell(fmt.Sprintf("oracle.ackedver[%d]", i), trace.Int(0))
	}
	cl.staleUnrep = m.NewCell(CellStaleUnrep, trace.Int(0))
	cl.staleWiped = m.NewCell(CellStaleWiped, trace.Int(0))
	cl.reads = m.NewCell(CellReads, trace.Int(0))
	cl.resurrected = m.NewCell(CellResurrected, trace.Int(0))
	cl.rewrites = m.NewCell(CellRewrites, trace.Int(0))
	cl.ackedPuts = m.NewCell(CellAckedPuts, trace.Int(0))
	cl.abandoned = m.NewCell(CellAbandoned, trace.Int(0))
	cl.hintsWiped = m.NewCell(CellHintsWiped, trace.Int(0))
	cl.handoffs = m.NewCell(CellHandoffs, trace.Int(0))

	cl.doneCh = m.NewChan("phase.done", cfg.Clients+2)

	cl.payloadIn = m.DeclareStream(StreamPayload, trace.TaintData)
	m.DeclareStream(StreamSyncPlan, trace.TaintControl)
	m.DeclareStream(StreamDownPlan, trace.TaintControl)
	m.DeclareStream(StreamRewrite, trace.TaintEnv)
	for n := 0; n < cfg.Nodes; n++ {
		m.DeclareStream(StreamWipe+nodeName(n), trace.TaintEnv)
		m.DeclareStream(StreamHintWipe+nodeName(n), trace.TaintEnv)
	}
	return cl
}

// jitter is the link latency jitter for the mode's workload.
func (c Config) jitter() uint64 {
	switch c.Mode {
	case ModeLostHint:
		return 120
	default:
		return 150
	}
}

// Main returns the main-thread body: it starts the network and the mode's
// system threads, waits for the workload, runs the verification reads and
// emits the outputs.
func (cl *Cluster) Main() func(*vm.Thread) {
	return func(t *vm.Thread) {
		cfg := cl.Cfg
		st := &cl.sites
		cl.Net.Start(t)
		for n := 0; n < cfg.Nodes; n++ {
			n := n
			t.SpawnDaemon(st.spawn, nodeName(n), func(t *vm.Thread) { cl.writerThread(t, n) })
			t.SpawnDaemon(st.spawn, readNodeName(n), func(t *vm.Thread) { cl.readThread(t, n) })
		}
		waiters := cfg.Clients
		switch cfg.Mode {
		case ModeResurrect:
			t.Spawn(st.spawn, "syncer", cl.syncThread)
			waiters++
		case ModeLostHint:
			for n := 0; n < cfg.Nodes; n++ {
				n := n
				t.SpawnDaemon(st.spawn, hintAgentName(n), func(t *vm.Thread) { cl.hintAgentThread(t, n) })
			}
			t.Spawn(st.spawn, "faultctl", cl.faultThread)
			waiters++
		}
		for c := 0; c < cfg.Clients; c++ {
			c := c
			t.Spawn(st.spawn, clientName(c), func(t *vm.Thread) { cl.clientThread(t, c) })
		}
		for i := 0; i < waiters; i++ {
			t.Recv(st.done, cl.doneCh)
		}

		switch cfg.Mode {
		case ModeStaleRead:
			stale := t.Load(st.report, cl.staleUnrep).AsInt() + t.Load(st.report, cl.staleWiped).AsInt()
			t.Output(st.report, cl.m.Stream(OutReads), t.Load(st.report, cl.reads))
			t.Output(st.report, cl.m.Stream(OutStale), trace.Int(stale))
		case ModeResurrect:
			if cfg.Settle > 0 {
				t.Sleep(st.rdNote, cfg.Settle)
			}
			deleted, live := cl.readBackDeleted(t)
			t.Output(st.report, cl.m.Stream(OutDeleted), trace.Int(deleted))
			t.Output(st.report, cl.m.Stream(OutResurrected), trace.Int(live))
		case ModeLostHint:
			if cfg.Settle > 0 {
				t.Sleep(st.rdNote, cfg.Settle)
			}
			lost := cl.readBackAcked(t)
			t.Output(st.report, cl.m.Stream(OutAcked), t.Load(st.report, cl.ackedPuts))
			t.Output(st.report, cl.m.Stream(OutLost), trace.Int(lost))
		}
	}
}

package dynokv

import (
	"fmt"
	"strings"

	"debugdet/internal/plane"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Fault input domain sizes: a draw equal to domain-1 triggers the fault,
// so inference synthesizes each with probability 1/domain per draw.
const (
	wipeDomain     = 16 // replica storage wipe (per node, per served read)
	rewriteDomain  = 16 // application re-write after a delete (per delete)
	hintWipeDomain = 32 // hint-agent memory wipe (per drain cycle)
)

// configFromParams maps scenario parameters onto a cluster config for the
// given mode. The "fixed" parameter applies the scenario's fix predicate:
// majority quorums for staleread, tombstone retention for resurrect,
// durable hints for losthint.
func configFromParams(mode Mode, p scenario.Params) Config {
	fixed := p.Get("fixed", 0) != 0
	cfg := Config{
		Mode:   mode,
		Vnodes: int(p.Get("vnodes", 5)),
	}
	switch mode {
	case ModeStaleRead:
		cfg.Nodes = int(p.Get("nodes", 3))
		cfg.N = int(p.Get("replicas", 3))
		cfg.Clients = int(p.Get("clients", 3))
		cfg.KeysPerClient = int(p.Get("keys", 2))
		cfg.Rounds = int(p.Get("rounds", 3))
		if fixed {
			cfg.R, cfg.W = cfg.N/2+1, cfg.N/2+1
		} else {
			cfg.R = int(p.Get("readq", 1))
			cfg.W = int(p.Get("writeq", 1))
		}
		cfg.WipeDomain = wipeDomain
		cfg.ClientPace = 300
	case ModeResurrect:
		cfg.Nodes = int(p.Get("nodes", 3))
		cfg.N = int(p.Get("replicas", 3))
		cfg.Clients = int(p.Get("clients", 2))
		cfg.KeysPerClient = int(p.Get("keys", 2))
		cfg.Syncs = int(p.Get("syncs", 6))
		cfg.R = int(p.Get("readq", 2))
		cfg.W = int(p.Get("writeq", 2))
		if !fixed {
			cfg.GCGraceEpochs = 1
		}
		cfg.RewriteDomain = rewriteDomain
		cfg.SyncEvery = 7300
		cfg.ClientPace = 400
		cfg.Settle = 4000
		cfg.WriteJitter = 700
	case ModeLostHint:
		cfg.Nodes = int(p.Get("nodes", 4))
		cfg.N = int(p.Get("replicas", 2))
		cfg.Clients = int(p.Get("clients", 2))
		cfg.KeysPerClient = int(p.Get("keys", 4))
		cfg.R = int(p.Get("readq", 2))
		cfg.W = int(p.Get("writeq", 2))
		cfg.DurableHints = fixed
		cfg.HintWipeDomain = hintWipeDomain
		cfg.AckTimeout = 2000
		cfg.HandoffTimeout = 4000
		cfg.DownTime = 9000
		cfg.DrainEvery = 3200
		cfg.ClientPace = 300
		cfg.Settle = 16000
	}
	return cfg.Norm()
}

// buildFor returns a scenario Build function for the mode.
func buildFor(mode Mode) func(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	return func(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
		return Build(m, configFromParams(mode, p)).Main()
	}
}

// productionInputs models the real world during the recorded run: healthy
// replicas, no hint-storage loss, no application re-writes; payloads,
// anti-entropy pairing and the outage plan derive from the seed.
func productionInputs(seed int64, p scenario.Params) vm.InputSource {
	return vm.InputSourceFunc(func(stream string, index int) trace.Value {
		h := vm.HashValue(seed, stream, index)
		switch {
		case stream == StreamPayload:
			return trace.Int(h % 1024)
		case stream == StreamSyncPlan, stream == StreamDownPlan:
			return trace.Int(h)
		case stream == StreamRewrite:
			return trace.Int(0)
		case strings.HasPrefix(stream, StreamWipe), strings.HasPrefix(stream, StreamHintWipe):
			return trace.Int(0)
		}
		return trace.Int(h % 256)
	})
}

// faultDomains declares the per-node fault stream domains, covering any
// plausible node count.
func faultDomains(prefix string, max int64) []scenario.InputDomain {
	var out []scenario.InputDomain
	for n := 0; n < 8; n++ {
		out = append(out, scenario.InputDomain{
			Stream: prefix + nodeName(n), Min: 0, Max: max,
		})
	}
	return out
}

func lastInt(vs []trace.Value) (int64, bool) {
	if len(vs) == 0 {
		return 0, false
	}
	return vs[len(vs)-1].AsInt(), true
}

// StaleRead returns the dynokv-staleread scenario: with R+W <= N an
// acknowledged write can be invisible to its own author's next read.
func StaleRead() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "dynokv-staleread",
		Description: "Dynamo-style cluster configured with R=W=1 on N=3: the read " +
			"and write quorums need not intersect, so under replication lag a " +
			"client's acknowledged write is missing from its own next read. The " +
			"same stale-read symptom can also come from a replica that lost its " +
			"storage and restarted empty (environment fault).",
		DefaultParams: scenario.Params{
			"nodes": 3, "vnodes": 5, "replicas": 3, "readq": 1, "writeq": 1,
			"clients": 3, "keys": 2, "rounds": 3, "fixed": 0,
		},
		DefaultSeed: 8, // verified by TestStaleReadDefaultSeed
		Build:       buildFor(ModeStaleRead),
		Stats:       Stats,
		Inputs:      productionInputs,
		InputDomains: append([]scenario.InputDomain{
			{Stream: StreamPayload, Min: 0, Max: 1023},
		}, faultDomains(StreamWipe, wipeDomain-1)...),
		Failure: scenario.FailureSpec{
			Name: "staleread",
			Check: func(v *scenario.RunView) (bool, string) {
				stale, ok := lastInt(v.Result.Outputs[OutStale])
				if !ok {
					return false, ""
				}
				if stale > 0 {
					return true, "dynokv:staleread"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{
				ID: "weak-quorum",
				Description: "R+W <= N: the write was acknowledged by a quorum the " +
					"read quorum never intersected, so the read was served by a " +
					"replica the replication fan-out had not reached yet",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellStaleUnrep).AsInt() > 0
				},
			},
			{
				ID: "replica-wipe",
				Description: "a replica lost its storage and restarted empty, so " +
					"it served reads for writes it had acknowledged before the wipe " +
					"(an environment fault, not a configuration bug)",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellStaleWiped).AsInt() > 0
				},
			},
		},
		PlaneTruth: map[string]plane.Plane{
			"client.payload.in": plane.Data,
			"client.put.send":   plane.Data,
			"client.get.send":   plane.Data,
			"client.reply":      plane.Data,
			"node.recv":         plane.Data,
			"node.store":        plane.Data,
			"node.load":         plane.Data,
			"node.reply":        plane.Data,
			"node.wipe.in":      plane.Control,
			"node.wipe.clear":   plane.Control,
			"client.repair":     plane.Control,
		},
		ControlStreams: controlStreams(ModeStaleRead, 3),
		TrainingParams: scenario.Params{"fixed": 1},
	}
}

// Resurrect returns the dynokv-resurrect scenario: a too-short tombstone
// grace period lets anti-entropy reinstall deleted data.
func Resurrect() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "dynokv-resurrect",
		Description: "Dynamo-style cluster with sound majority quorums but a " +
			"tombstone grace period shorter than one anti-entropy round: once a " +
			"tombstone is purged, a replica that has not yet processed the delete " +
			"pushes the old live value back during anti-entropy and the deleted " +
			"key comes back to life. An application-level re-write after the " +
			"delete produces the same symptom legitimately.",
		DefaultParams: scenario.Params{
			"nodes": 3, "vnodes": 5, "replicas": 3, "readq": 2, "writeq": 2,
			"clients": 2, "keys": 2, "syncs": 6, "fixed": 0,
		},
		DefaultSeed: 1, // verified by TestResurrectDefaultSeed
		Build:       buildFor(ModeResurrect),
		Stats:       Stats,
		Inputs:      productionInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: StreamPayload, Min: 0, Max: 1023},
			{Stream: StreamSyncPlan, Min: 0, Max: 1 << 30},
			{Stream: StreamRewrite, Min: 0, Max: rewriteDomain - 1},
		},
		Failure: scenario.FailureSpec{
			Name: "resurrect",
			Check: func(v *scenario.RunView) (bool, string) {
				live, ok := lastInt(v.Result.Outputs[OutResurrected])
				if !ok {
					return false, ""
				}
				if live > 0 {
					return true, "dynokv:resurrect"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{
				ID: "tombstone-gc",
				Description: "the tombstone was garbage-collected before every " +
					"replica had processed the delete, so anti-entropy (or read " +
					"repair) from a lagging replica reinstalled the dead value",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellResurrected).AsInt() > 0
				},
			},
			{
				ID: "app-rewrite",
				Description: "the application itself re-created the key after " +
					"deleting it (outside the storage system's control)",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellRewrites).AsInt() > 0
				},
			},
		},
		PlaneTruth: map[string]plane.Plane{
			"client.payload.in": plane.Data,
			"client.put.send":   plane.Data,
			"client.del.send":   plane.Data,
			"client.reply":      plane.Data,
			"node.recv":         plane.Data,
			"node.store":        plane.Data,
			"node.reply":        plane.Data,
			"sync.plan":         plane.Control,
			"sync.push.send":    plane.Control,
			"node.push.scan":    plane.Control,
			"report.out":        plane.Control,
			// node.gc and the verification-read sites are deliberately
			// undeclared: they run rarely but handle per-key data, so
			// their plane is genuinely ambiguous under [3]'s definition.
		},
		ControlStreams: controlStreams(ModeResurrect, 3),
		TrainingParams: scenario.Params{"fixed": 1},
	}
}

// LostHint returns the dynokv-losthint scenario: a write acknowledged
// through a sloppy quorum of hints is lost when the hint agents abandon
// handoff.
func LostHint() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "dynokv-losthint",
		Description: "Dynamo-style cluster under a scripted outage: writes whose " +
			"whole preference list is unreachable are acknowledged via hinted " +
			"handoff, but the hint agent abandons a hint whose first delivery " +
			"attempt finds the owner still down — so an acknowledged write " +
			"silently vanishes. A hint agent losing its memory outright " +
			"(environment fault) produces the same lost-write symptom.",
		DefaultParams: scenario.Params{
			"nodes": 4, "vnodes": 5, "replicas": 2, "readq": 2, "writeq": 2,
			"clients": 2, "keys": 4, "fixed": 0,
		},
		DefaultSeed: 1, // verified by TestLostHintDefaultSeed
		Build:       buildFor(ModeLostHint),
		Stats:       Stats,
		Inputs:      productionInputs,
		InputDomains: append([]scenario.InputDomain{
			{Stream: StreamPayload, Min: 0, Max: 1023},
			{Stream: StreamDownPlan, Min: 0, Max: 1 << 30},
		}, faultDomains(StreamHintWipe, hintWipeDomain-1)...),
		Failure: scenario.FailureSpec{
			Name: "lostwrite",
			Check: func(v *scenario.RunView) (bool, string) {
				lost, ok := lastInt(v.Result.Outputs[OutLost])
				if !ok {
					return false, ""
				}
				if lost > 0 {
					return true, "dynokv:lostwrite"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{
				ID: "hint-abandoned",
				Description: "the hint agent gave up after its first handoff " +
					"attempt found the owner still down, discarding the only " +
					"copies of a write the sloppy quorum had acknowledged",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellAbandoned).AsInt() > 0
				},
			},
			{
				ID: "hint-agent-wipe",
				Description: "the hint agent's host lost its memory before " +
					"handoff, destroying the parked hints (an environment fault " +
					"beyond the storage system's control)",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellHintsWiped).AsInt() > 0
				},
			},
		},
		PlaneTruth: map[string]plane.Plane{
			"client.payload.in": plane.Data,
			"client.put.send":   plane.Data,
			"client.reply":      plane.Data,
			"node.recv":         plane.Data,
			"node.store":        plane.Data,
			"node.reply":        plane.Data,
			"fault.plan":        plane.Control,
			"fault.down":        plane.Control,
			"fault.up":          plane.Control,
			"hint.recv":         plane.Control,
			"report.out":        plane.Control,
			// The hint transfer sites (hint.send, hint.deliver) copy write
			// payloads at low rate — ambiguous under [3]'s definition —
			// and are deliberately undeclared.
		},
		ControlStreams: controlStreams(ModeLostHint, 4),
		TrainingParams: scenario.Params{"fixed": 1},
	}
}

// controlStreams lists the streams RCSE must record for the mode: every
// input whose value steers control flow. Payloads are data plane and are
// re-drawn at replay time; link jitter feeds only sleep durations, which
// schedule-forcing replay does not consult.
func controlStreams(mode Mode, nodes int) []string {
	var out []string
	switch mode {
	case ModeStaleRead:
		for n := 0; n < nodes; n++ {
			out = append(out, StreamWipe+nodeName(n))
		}
	case ModeResurrect:
		out = append(out, StreamSyncPlan, StreamRewrite)
	case ModeLostHint:
		out = append(out, StreamDownPlan)
		for n := 0; n < nodes; n++ {
			out = append(out, StreamHintWipe+nodeName(n))
		}
	}
	return out
}

// Family returns the three buggy scenarios, in catalog order.
func Family() []*scenario.Scenario {
	return []*scenario.Scenario{StaleRead(), Resurrect(), LostHint()}
}

// FixedVariants returns the healthy builds, one per scenario, named
// "<scenario>-fixed": majority quorums, retained tombstones, durable
// hints. Tests and invariant training use them.
func FixedVariants() []*scenario.Scenario {
	var out []*scenario.Scenario
	for _, s := range Family() {
		f := s
		f.Name = s.Name + "-fixed"
		f.DefaultParams = s.DefaultParams.Clone(scenario.Params{"fixed": 1})
		out = append(out, f)
	}
	return out
}

// Stats summarizes a finished run for CLI output.
func Stats(v *scenario.RunView) string {
	m := v.Machine
	cell := func(name string) int64 { return m.CellByName(name).AsInt() }
	out := func(name string) int64 {
		n, _ := lastInt(v.Result.Outputs[name])
		return n
	}
	return fmt.Sprintf(
		"acked=%d reads=%d stale=%d/%d resurrected=%d rewrites=%d lost=%d abandoned=%d wipedHints=%d handoffs=%d outcome=%s",
		cell(CellAckedPuts), out(OutReads),
		cell(CellStaleUnrep), cell(CellStaleWiped),
		out(OutResurrected), cell(CellRewrites),
		out(OutLost), cell(CellAbandoned), cell(CellHintsWiped), cell(CellHandoffs),
		v.Result.Outcome)
}

package dynokv

import (
	"bytes"
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

func TestTornWALDefaultSeed(t *testing.T) {
	s := TornWAL()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	expectCauses(t, s, v, "dynokv:corruptread", "torn-loose-decode")
	if v.Result.Outcome != vm.OutcomeOK {
		t.Fatalf("outcome = %v; the corruption must be silent", v.Result.Outcome)
	}
	if v.Machine.CellByName(CellBitRot).AsInt() != 0 {
		t.Fatal("production run must not contain media rot")
	}
}

func TestFsyncLossDefaultSeed(t *testing.T) {
	s := FsyncLoss()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	expectCauses(t, s, v, "dynokv:lostdurable", "fsync-reordered")
	if v.Machine.CellByName(CellDurAcked).AsInt() == 0 {
		t.Fatal("no write was ever acknowledged; the loss must be of acked writes")
	}
	if v.Machine.CellByName(CellDevLost).AsInt() != 0 {
		t.Fatal("production run must not contain device-side record loss")
	}
}

func TestSnapResDefaultSeed(t *testing.T) {
	s := SnapRes()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	expectCauses(t, s, v, "dynokv:diskresurrect", "missing-tombstone")
	if v.Machine.CellByName(CellDurRewrites).AsInt() != 0 {
		t.Fatal("production run must not contain application rewrites")
	}
}

// TestDurableFixedVariantsNeverFail: the fixed builds survive the same
// crash plans (and torn-write / fsync-reordering fault plane) cleanly.
func TestDurableFixedVariantsNeverFail(t *testing.T) {
	for _, f := range DurableFixedVariants() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				v := f.Exec(scenario.ExecOptions{Seed: seed})
				if v.Result.Outcome != vm.OutcomeOK {
					t.Fatalf("seed %d: outcome %v (%v)", seed, v.Result.Outcome, v.Result.Terminal)
				}
				if failed, sig := f.CheckFailure(v); failed {
					t.Fatalf("seed %d: fixed build fails with %q (%s)", seed, sig, DurableStats(v))
				}
			}
		})
	}
}

// TestDurableRunsAreDeterministic: same seed ⇒ identical event trace,
// including the disk-operation events the crash-recovery path emits.
func TestDurableRunsAreDeterministic(t *testing.T) {
	for _, s := range DurableFamily() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
			b := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
			if !trace.EventsEqual(a.Trace, b.Trace, false) {
				t.Fatal("identical durable runs produced different traces")
			}
			var ab, bb bytes.Buffer
			if _, err := trace.Encode(&ab, a.Trace); err != nil {
				t.Fatal(err)
			}
			if _, err := trace.Encode(&bb, b.Trace); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
				t.Fatal("serialized traces differ across identical runs")
			}
		})
	}
}

// TestDurableEmitsDiskEvents: the durability scenarios genuinely exercise
// the disk plane — every disk event kind, including the crash, appears in
// the default-seed trace.
func TestDurableEmitsDiskEvents(t *testing.T) {
	for _, s := range DurableFamily() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
			seen := map[trace.EventKind]int{}
			for _, e := range v.Trace.Events {
				seen[e.Kind]++
			}
			want := []trace.EventKind{
				trace.EvDiskWrite, trace.EvDiskRead, trace.EvDiskFsync, trace.EvDiskCrash,
			}
			if s.Name == "disk-fsyncloss" {
				// Only the fixed build barriers; the buggy one never does.
				if seen[trace.EvDiskBarrier] != 0 {
					t.Fatal("buggy fsyncloss build must not issue barriers")
				}
			}
			for _, k := range want {
				if seen[k] == 0 {
					t.Fatalf("trace has no %v events (%v)", k, seen)
				}
			}
		})
	}
}

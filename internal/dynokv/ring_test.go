package dynokv

import "testing"

func TestRingPreferenceProperties(t *testing.T) {
	r := NewRing(4, 5)
	for key := 0; key < 64; key++ {
		prefs := r.Preference(key, 2)
		if len(prefs) != 2 {
			t.Fatalf("key %d: preference list has %d nodes, want 2", key, len(prefs))
		}
		if prefs[0] == prefs[1] {
			t.Fatalf("key %d: duplicate preference %v", key, prefs)
		}
		fb := r.Fallbacks(key, 2, 2)
		if len(fb) != 2 {
			t.Fatalf("key %d: %d fallbacks, want 2", key, len(fb))
		}
		for _, f := range fb {
			for _, p := range prefs {
				if f == p {
					t.Fatalf("key %d: fallback %d is already a preference node %v", key, f, prefs)
				}
			}
		}
	}
}

func TestRingIsDeterministic(t *testing.T) {
	a, b := NewRing(5, 7), NewRing(5, 7)
	for key := 0; key < 32; key++ {
		pa, pb := a.Preference(key, 3), b.Preference(key, 3)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("key %d: rings disagree: %v vs %v", key, pa, pb)
			}
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	// With virtual nodes, every physical node should own some keys as the
	// first preference.
	r := NewRing(4, 5)
	first := make(map[int]int)
	for key := 0; key < 128; key++ {
		first[r.Preference(key, 1)[0]]++
	}
	if len(first) != 4 {
		t.Fatalf("only %d of 4 nodes ever lead a preference list: %v", len(first), first)
	}
}

func TestRingWalkClamps(t *testing.T) {
	r := NewRing(3, 4)
	if got := r.Preference(1, 9); len(got) != 3 {
		t.Fatalf("over-asking yields %v, want all 3 nodes", got)
	}
	if got := r.Fallbacks(1, 3, 2); len(got) != 0 {
		t.Fatalf("no nodes remain past a full preference list, got %v", got)
	}
}

package dynokv

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hashing ring with virtual nodes, as in Dynamo §4.2:
// each physical node owns Vnodes tokens on a 64-bit ring, and a key's
// replica set is the first N distinct physical nodes encountered walking
// clockwise from the key's position. Virtual nodes smooth the load split
// and make the walk order differ per key, which is what gives each key its
// own preference list.
//
// The ring is pure data (no VM objects): its layout depends only on the
// node count and vnode count, never on execution state, so lookups are
// deterministic and free of scheduling points.
type Ring struct {
	tokens []ringToken
	nodes  int
}

type ringToken struct {
	pos  uint64
	node int
}

// hash64 is FNV-1a with a murmur-style finalizer, fixed here so ring
// placement never varies across Go versions or hosts. The finalizer
// matters: plain FNV-1a barely diffuses the last byte of short strings, so
// near-identical names ("key:1", "key:2", ...) would cluster on one arc.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds the ring for nodes physical nodes with vnodes tokens each.
func NewRing(nodes, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{nodes: nodes}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			r.tokens = append(r.tokens, ringToken{
				pos:  hash64(fmt.Sprintf("vnode:%d#%d", n, v)),
				node: n,
			})
		}
	}
	sort.Slice(r.tokens, func(i, j int) bool {
		if r.tokens[i].pos != r.tokens[j].pos {
			return r.tokens[i].pos < r.tokens[j].pos
		}
		return r.tokens[i].node < r.tokens[j].node
	})
	return r
}

// walk returns count distinct physical nodes clockwise from the key's
// position, after skipping the first skip distinct nodes.
func (r *Ring) walk(key, skip, count int) []int {
	if count < 0 {
		count = 0
	}
	if max := r.nodes - skip; count > max {
		count = max
	}
	pos := hash64(fmt.Sprintf("key:%d", key))
	start := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].pos >= pos })
	seen := make([]bool, r.nodes)
	out := make([]int, 0, count)
	skipped := 0
	for i := 0; i < len(r.tokens) && len(out) < count; i++ {
		tk := r.tokens[(start+i)%len(r.tokens)]
		if seen[tk.node] {
			continue
		}
		seen[tk.node] = true
		if skipped < skip {
			skipped++
			continue
		}
		out = append(out, tk.node)
	}
	return out
}

// Preference returns the key's preference list: the n replica holders.
func (r *Ring) Preference(key, n int) []int { return r.walk(key, 0, n) }

// Fallbacks returns count healthy-write fallback candidates for the key:
// the next distinct nodes on the ring after the preference list, in walk
// order. Sloppy quorums hint to these when preference nodes are
// unreachable.
func (r *Ring) Fallbacks(key, n, count int) []int { return r.walk(key, n, count) }

package dynokv

import (
	"fmt"

	"debugdet/internal/plane"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// Durable fault input domain sizes: a draw equal to domain-1 triggers the
// fault, so inference synthesizes each with probability 1/domain per draw.
const (
	bitRotDomain     = 24 // recovery-time record rot (per scanned record)
	devLossDomain    = 24 // device loses a durable record (per scanned record)
	durRewriteDomain = 16 // application re-write after a delete (per delete)
)

// tornAt is the default torn-write truncation point: inside the value field
// of a framed put record (tag, key, ver, val, checksum — 8 bytes each), so
// a loose decode keeps the real tag, key and version but loses the value.
const tornAt = 28

// durableConfigFromParams maps scenario parameters onto a store config for
// the given mode. The "fixed" parameter applies the scenario's fix:
// checksum-verified recovery, barrier-before-ack, durable tombstones.
func durableConfigFromParams(mode DurableMode, p scenario.Params) DurableConfig {
	cfg := DurableConfig{
		Mode:          mode,
		Fixed:         p.Get("fixed", 0) != 0,
		Clients:       int(p.Get("clients", 2)),
		KeysPerClient: int(p.Get("keys", 2)),
		Puts:          int(p.Get("puts", 3)),
		ClientPace:    uint64(p.Get("pace", 300)),
	}
	switch mode {
	case DurTornWAL:
		cfg.GroupCommit = int(p.Get("group", 3))
		cfg.TornBytes = int(p.Get("torn", tornAt))
		cfg.BitRotDomain = bitRotDomain
	case DurFsyncLoss:
		cfg.Puts = int(p.Get("puts", 4))
		cfg.ReorderAt = int(p.Get("reorder", 9))
		cfg.DevLossDomain = devLossDomain
	case DurSnapRes:
		cfg.SnapEvery = int(p.Get("snapevery", 4))
		cfg.RewriteDomain = durRewriteDomain
	}
	return cfg.Norm()
}

// buildDurableFor returns a scenario Build function for the mode.
func buildDurableFor(mode DurableMode) func(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
	return func(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
		return BuildDurable(m, durableConfigFromParams(mode, p)).Main()
	}
}

// durableInputs models the real world during the recorded run: a healthy
// medium and device, no application re-writes; payloads and the crash point
// derive from the seed.
func durableInputs(seed int64, p scenario.Params) vm.InputSource {
	return vm.InputSourceFunc(func(stream string, index int) trace.Value {
		h := vm.HashValue(seed, stream, index)
		switch stream {
		case StreamDurPayload:
			return trace.Int(h % 1024)
		case StreamCrashPlan:
			return trace.Int(h)
		case StreamBitRot, StreamDevLoss, StreamDurRewrite:
			return trace.Int(0)
		}
		return trace.Int(h % 256)
	})
}

// durablePlaneTruth is the ground-truth site classification shared by the
// durability scenarios. The verification and snapshot-scan sites are
// deliberately undeclared: they run rarely but touch per-key data, so their
// plane is genuinely ambiguous under [3]'s definition.
func durablePlaneTruth() map[string]plane.Plane {
	return map[string]plane.Plane{
		"dur.payload.in":      plane.Data,
		"dur.op.send":         plane.Data,
		"dur.node.recv":       plane.Data,
		"dur.mem.store":       plane.Data,
		"dur.wal.append":      plane.Data,
		"dur.recover.scan":    plane.Data,
		"dur.recover.install": plane.Data,
		"dur.wal.fsync":       plane.Control,
		"dur.crash.plan":      plane.Control,
		"dur.crash.point":     plane.Control,
		"report.out":          plane.Control,
	}
}

// TornWAL returns the disk-tornwal scenario: crash recovery decodes a torn
// WAL record without verifying its checksum trailer and installs garbage.
func TornWAL() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "disk-tornwal",
		Description: "WAL-structured store with group commit: a crash mid-window " +
			"tears the first unsynced record at a byte offset, and the recovery " +
			"path decodes records without verifying the checksum trailer — the " +
			"torn tail becomes a zero value installed under a real version. " +
			"Recovery-time media rot on an intact record produces the same " +
			"corrupt-read symptom (environment fault).",
		DefaultParams: scenario.Params{
			"clients": 2, "keys": 2, "puts": 3, "group": 3, "torn": tornAt, "fixed": 0,
		},
		DefaultSeed: 1, // verified by TestTornWALDefaultSeed
		Build:       buildDurableFor(DurTornWAL),
		Stats:       DurableStats,
		Inputs:      durableInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: StreamDurPayload, Min: 0, Max: 1023},
			{Stream: StreamCrashPlan, Min: 0, Max: 1 << 30},
			{Stream: StreamBitRot, Min: 0, Max: bitRotDomain - 1},
		},
		Failure: scenario.FailureSpec{
			Name: "corruptread",
			Check: func(v *scenario.RunView) (bool, string) {
				bad, ok := lastInt(v.Result.Outputs[OutDurCorrupt])
				if !ok {
					return false, ""
				}
				if bad > 0 {
					return true, "dynokv:corruptread"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{
				ID: "torn-loose-decode",
				Description: "recovery decoded a torn WAL record without verifying " +
					"its checksum trailer, installing a zero value under the torn " +
					"record's real version instead of truncating the log there",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellTornInstall).AsInt() > 0
				},
			},
			{
				ID: "media-rot",
				Description: "the storage medium rotted an intact, fsynced record " +
					"before recovery read it back (an environment fault no decode " +
					"discipline can repair)",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellBitRot).AsInt() > 0
				},
			},
		},
		PlaneTruth:     durablePlaneTruth(),
		ControlStreams: []string{StreamCrashPlan},
		TrainingParams: scenario.Params{"fixed": 1},
	}
}

// FsyncLoss returns the disk-fsyncloss scenario: the device reorders one
// fsync past a write, and the store acknowledges the write anyway.
func FsyncLoss() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "disk-fsyncloss",
		Description: "WAL-structured store that acknowledges each put right after " +
			"fsync without checking the returned durability watermark: the device " +
			"reorders one fsync past the newest record, and a crash in that window " +
			"silently loses an acknowledged write. The device outright losing a " +
			"durable record produces the same lost-write symptom (environment " +
			"fault). The fix issues a sync barrier before acknowledging.",
		DefaultParams: scenario.Params{
			"clients": 2, "keys": 2, "puts": 4, "reorder": 9, "fixed": 0,
		},
		DefaultSeed: 15, // verified by TestFsyncLossDefaultSeed
		Build:       buildDurableFor(DurFsyncLoss),
		Stats:       DurableStats,
		Inputs:      durableInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: StreamDurPayload, Min: 0, Max: 1023},
			{Stream: StreamCrashPlan, Min: 0, Max: 1 << 30},
			{Stream: StreamDevLoss, Min: 0, Max: devLossDomain - 1},
		},
		Failure: scenario.FailureSpec{
			Name: "lostdurable",
			Check: func(v *scenario.RunView) (bool, string) {
				lost, ok := lastInt(v.Result.Outputs[OutDurLost])
				if !ok {
					return false, ""
				}
				if lost > 0 {
					return true, "dynokv:lostdurable"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{
				ID: "fsync-reordered",
				Description: "the device held the newest record back past its " +
					"fsync; the store trusted fsync's completion instead of its " +
					"watermark and acknowledged a write the crash then discarded",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellReorderLost).AsInt() > 0
				},
			},
			{
				ID: "device-loss",
				Description: "the device lost a correctly fsynced record outright " +
					"(an environment fault no write ordering can prevent)",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellDevLost).AsInt() > 0
				},
			},
		},
		PlaneTruth:     durablePlaneTruth(),
		ControlStreams: []string{StreamCrashPlan},
		TrainingParams: scenario.Params{"fixed": 1},
	}
}

// SnapRes returns the disk-snapres scenario: deletes are applied to memory
// only, so snapshot+log replay resurrects the tombstoned key after a crash.
func SnapRes() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "disk-snapres",
		Description: "WAL-structured store with inline snapshots whose delete path " +
			"updates memory but logs no tombstone record: after a crash, replaying " +
			"the snapshot and log resurrects the deleted key from its old puts. " +
			"The application re-creating the key after its delete produces the " +
			"same alive-after-delete symptom legitimately (environment fault).",
		DefaultParams: scenario.Params{
			"clients": 2, "keys": 2, "puts": 3, "snapevery": 4, "fixed": 0,
		},
		DefaultSeed: 9, // verified by TestSnapResDefaultSeed
		Build:       buildDurableFor(DurSnapRes),
		Stats:       DurableStats,
		Inputs:      durableInputs,
		InputDomains: []scenario.InputDomain{
			{Stream: StreamDurPayload, Min: 0, Max: 1023},
			{Stream: StreamCrashPlan, Min: 0, Max: 1 << 30},
			{Stream: StreamDurRewrite, Min: 0, Max: durRewriteDomain - 1},
		},
		Failure: scenario.FailureSpec{
			Name: "diskresurrect",
			Check: func(v *scenario.RunView) (bool, string) {
				alive, ok := lastInt(v.Result.Outputs[OutDurAlive])
				if !ok {
					return false, ""
				}
				if alive > 0 {
					return true, "dynokv:diskresurrect"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{
				ID: "missing-tombstone",
				Description: "the delete was applied to the in-memory table only; " +
					"with no tombstone record in the log, crash recovery replayed " +
					"the key's earlier puts and brought the deleted value back",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellDiskResurrect).AsInt() > 0
				},
			},
			{
				ID: "app-rewrite",
				Description: "the application re-created the key after deleting " +
					"it (outside the storage system's control)",
				Present: func(v *scenario.RunView) bool {
					return v.Machine.CellByName(CellDurRewrites).AsInt() > 0
				},
			},
		},
		PlaneTruth:     durablePlaneTruth(),
		ControlStreams: []string{StreamCrashPlan},
		TrainingParams: scenario.Params{"fixed": 1},
	}
}

// DurableFamily returns the three durability scenarios, in catalog order.
func DurableFamily() []*scenario.Scenario {
	return []*scenario.Scenario{TornWAL(), FsyncLoss(), SnapRes()}
}

// DurableFixedVariants returns the healthy builds, one per scenario, named
// "<scenario>-fixed": checksum-verified recovery, barrier-before-ack,
// durable tombstones. Tests and invariant training use them.
func DurableFixedVariants() []*scenario.Scenario {
	var out []*scenario.Scenario
	for _, s := range DurableFamily() {
		f := s
		f.Name = s.Name + "-fixed"
		f.DefaultParams = s.DefaultParams.Clone(scenario.Params{"fixed": 1})
		out = append(out, f)
	}
	return out
}

// DurableStats summarizes a finished durability run for CLI output.
func DurableStats(v *scenario.RunView) string {
	m := v.Machine
	cell := func(name string) int64 { return m.CellByName(name).AsInt() }
	return fmt.Sprintf(
		"acked=%d corrupt=%d torn=%d rot=%d lost=%d/%d held=%d alive=%d res=%d rewrites=%d outcome=%s",
		cell(CellDurAcked), cell(CellDurCorrupt), cell(CellTornInstall), cell(CellBitRot),
		cell(CellReorderLost), cell(CellDevLost), cell(CellReorderHeld),
		cell(CellDurAlive), cell(CellDiskResurrect), cell(CellDurRewrites),
		v.Result.Outcome)
}
